(* tsms — command-line front end.

   Subcommands:
     schedule    run SMS and TMS on a .ddg loop and print both kernels
     simulate    schedule a .ddg loop and simulate it on the SpMT machine
     compare     all four schedulers plus the single core, one table
     dot         emit Graphviz for a .ddg loop
     suite       print scheduling statistics for a synthetic benchmark
     check       differential-fuzz the schedulers, checker and simulator
     experiments regenerate the paper's tables and figures
     serve       long-running scheduler-as-a-service daemon (ts_serve)
     client      send one request to a running serve daemon *)

open Cmdliner

let read_loop path =
  try Ok (Ts_ddg.Parse.of_file path) with
  | Ts_ddg.Parse.Error (ln, msg) ->
      Error (Printf.sprintf "%s:%d: %s" path ln msg)
  | Sys_error msg -> Error msg

let loop_arg =
  let doc = "Loop description in the .ddg format (see Ts_ddg.Parse)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"LOOP.ddg" ~doc)

(* --cores accepts either a bare core count or a heterogeneous mix; both
   are validated (1..max_ncore) at parse time so a bad value is a CLI
   error, not a library exception later. *)
let mix_conv =
  let parse s =
    match Ts_isa.Spmt_params.mix_of_string s with
    | Ok m -> Ok m
    | Error e -> Error (`Msg e)
  in
  let print ppf m =
    Format.pp_print_string ppf
      (Ts_isa.Spmt_params.mix_to_string
         (Ts_isa.Spmt_params.apply_mix Ts_isa.Spmt_params.default m))
  in
  Arg.conv (parse, print) ~docv:"MIX"

let ncore_arg =
  let doc =
    "SpMT machine: a core count (e.g. $(b,4)) or a heterogeneous mix of \
     '+'-separated groups of $(b,fast)/$(b,slow) cores in ring order (e.g. \
     $(b,2fast+2slow), $(b,fast+3slow)). At most 64 cores."
  in
  Arg.(value & opt mix_conv (4, [||]) & info [ "cores" ] ~docv:"MIX" ~doc)

let placement_conv =
  let parse s =
    match Ts_isa.Placement.policy_of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown placement policy %S (expected round-robin, locality \
                or sync)"
               s))
  in
  Arg.conv (parse, Ts_isa.Placement.pp_policy) ~docv:"POLICY"

let placement_arg =
  let doc =
    "Thread-to-core allocation policy: $(b,round-robin) (the paper's thread \
     j on core j mod N), $(b,locality) (weighted ring walk that loads fast \
     cores harder on asymmetric mixes) or $(b,sync) (round-robin over the \
     fastest tier only). All three coincide on homogeneous machines."
  in
  Arg.(
    value
    & opt placement_conv Ts_isa.Placement.Round_robin
    & info [ "placement" ] ~docv:"POLICY" ~doc)

(* Print the compiled thread→core map — but only when it differs from the
   paper's machine, keeping the default homogeneous round-robin output
   byte-identical to what it always was. *)
let print_placement placement (params : Ts_isa.Spmt_params.t) =
  if
    placement <> Ts_isa.Placement.Round_robin
    || Ts_isa.Spmt_params.heterogeneous params
  then
    Printf.printf "placement %s\n"
      (Ts_isa.Placement.describe (Ts_isa.Placement.make placement params))

let p_max_arg =
  let doc = "Misspeculation threshold P_max for TMS (0..1)." in
  Arg.(value & opt (some float) None & info [ "p-max" ] ~docv:"P" ~doc)

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("tsms: " ^ msg);
      exit 1

(* --- Parallelism flag shared across subcommands --- *)

let jobs_arg =
  let doc =
    "Worker domains for the parallel sweeps (per-P_max TMS searches, \
     per-benchmark and per-loop harness tasks). Defaults to the \
     $(b,TSMS_JOBS) environment variable, else to the machine's \
     recommended domain count minus one. Results are identical at every \
     jobs level; $(docv)=1 disables the pool."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let apply_jobs = function
  | None -> (
      (* Surface a malformed TSMS_JOBS now, as a CLI error, rather than as
         an uncaught exception from the first parallel map. *)
      try ignore (Ts_base.Parallel.env_jobs ())
      with Invalid_argument msg ->
        prerr_endline ("tsms: " ^ msg);
        exit 1)
  | Some n ->
      if n < 1 then begin
        prerr_endline "tsms: --jobs must be >= 1";
        exit 1
      end;
      Ts_base.Parallel.set_jobs n

(* --- Result-cache flags shared by the sweep subcommands --- *)

let cache_dir_arg =
  let doc =
    "Root of the persistent result cache (schedules and steady-state \
     simulations, keyed by loop + configuration content). Defaults to \
     $(b,TSMS_CACHE_DIR), else $(b,XDG_CACHE_HOME)/tsms, else \
     ~/.cache/tsms."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let no_cache_arg =
  let doc = "Disable the persistent result cache (recompute everything)." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let resume_arg =
  let doc =
    "Resume an interrupted sweep from its journal: loops the killed run \
     completed are replayed from disk, the rest are recomputed. Requires \
     the cache (incompatible with $(b,--no-cache))."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let no_warm_start_arg =
  let doc =
    "Disable warm-started TMS searches (reuse of persisted per-grid-point \
     attempt outcomes). Purely a performance knob: warm-started searches \
     return bit-identical schedules."
  in
  Arg.(value & flag & info [ "no-warm-start" ] ~doc)

let apply_warm_start ~no_warm_start =
  Ts_harness.Cached.set_warm_start (not no_warm_start)

let apply_cache ~no_cache ~dir ~resume =
  if no_cache then begin
    if resume then begin
      prerr_endline "tsms: --resume needs the cache (drop --no-cache)";
      exit 1
    end;
    Ts_harness.Cached.set_store None
  end
  else begin
    let dir =
      match dir with Some d -> d | None -> Ts_persist.default_dir ()
    in
    match Ts_persist.open_store ~dir with
    | s ->
        Ts_harness.Cached.set_store (Some s);
        Ts_harness.Cached.set_resume resume
    | exception e ->
        (* An unopenable cache costs speed (and resumability), never the
           run: degrade to uncached with one warning. *)
        Ts_obs.Metrics.incr
          (Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.degraded");
        Ts_resil.Warn.once ~key:"cli.cache"
          (Printf.sprintf
             "cannot open cache directory %s (%s); continuing uncached%s" dir
             (Printexc.to_string e)
             (if resume then " — the sweep will not resume or journal" else ""));
        Ts_harness.Cached.set_store None
  end

(* --- Resilience flags shared by the sweep subcommands --- *)

let keep_going_arg =
  let doc =
    "Let a sweep record per-loop failures and finish the remaining loops. \
     The failed loops are summarised on stderr at the end and the exit \
     status is non-zero; the surviving numbers are identical to what a \
     fault-free run would report for them."
  in
  Arg.(value & flag & info [ "keep-going" ] ~doc)

let max_retries_arg =
  let doc =
    "Retry a failed sweep task up to $(docv) extra times, with \
     deterministic exponential backoff (100 ms base)."
  in
  Arg.(value & opt int 0 & info [ "max-retries" ] ~docv:"N" ~doc)

let task_timeout_arg =
  let doc =
    "Soft per-task deadline in milliseconds: a sweep task that runs longer \
     is reported (one warning and the supervise.deadline_exceeded metric) \
     but its result is kept — hard enforcement would make results \
     timing-dependent."
  in
  Arg.(value & opt (some int) None & info [ "task-timeout" ] ~docv:"MS" ~doc)

let fault_plan_arg =
  let doc =
    "Arm a deterministic fault-injection plan to exercise the failure \
     paths (see Ts_resil.Fault for the format, e.g. \
     $(b,persist.write@*,worker@3)). Also read from $(b,TSMS_FAULT_PLAN)."
  in
  Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"PLAN" ~doc)

let apply_resil ~keep_going ~max_retries ~task_timeout ~fault_plan =
  if max_retries < 0 then begin
    prerr_endline "tsms: --max-retries must be >= 0";
    exit 1
  end;
  Ts_resil.Supervise.set_keep_going keep_going;
  Ts_resil.Supervise.set_policy
    {
      Ts_resil.Supervise.default_policy with
      max_retries;
      deadline_ms = task_timeout;
    };
  match fault_plan with
  | Some s -> (
      match Ts_resil.Fault.parse s with
      | Ok plan -> Ts_resil.Fault.arm plan
      | Error msg ->
          prerr_endline ("tsms: --fault-plan: " ^ msg);
          exit 1)
  | None -> (
      match Ts_resil.Fault.arm_from_env () with
      | Ok () -> ()
      | Error msg ->
          prerr_endline ("tsms: " ^ msg);
          exit 1)

(* --- Observability flags shared across subcommands --- *)

let metrics_arg =
  let fmt = Arg.enum [ ("table", `Table); ("json", `Json) ] in
  let doc =
    "After the subcommand finishes, dump the metrics registry (scheduler \
     attempts, slot rejections, simulator totals) to stdout as $(docv): \
     $(b,table) or $(b,json)."
  in
  Arg.(value & opt (some fmt) None & info [ "metrics" ] ~docv:"FMT" ~doc)

let metrics_out_arg =
  let doc =
    "Write a JSON snapshot of the metrics registry to $(docv) when the \
     subcommand finishes (on the failure path too). Independent of \
     $(b,--metrics), which prints to stdout."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let profile_arg =
  let fmt = Arg.enum [ ("table", `Table); ("json", `Json) ] in
  let doc =
    "Enable the span profiler and print a phase report ($(b,table) or \
     $(b,json)) when the subcommand finishes: per-span calls, total and \
     self wall-time, allocation and GC counts (see Ts_obs.Prof)."
  in
  Arg.(value & opt (some fmt) None & info [ "profile" ] ~docv:"FMT" ~doc)

let profile_out_arg =
  let doc =
    "Write the profile report to $(docv) instead of stdout (implies \
     profiling; format defaults to json unless $(b,--profile table))."
  in
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Print a throttled heartbeat line to stderr while a sweep runs: \
     done/total, elapsed, ETA, cache hit-rate, retry and failure counts."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

type obs = {
  metrics : [ `Table | `Json ] option;
  metrics_out : string option;
  profile : [ `Table | `Json ] option;
  profile_out : string option;
  progress : bool;
}

let obs_term =
  let mk metrics metrics_out profile profile_out progress =
    { metrics; metrics_out; profile; profile_out; progress }
  in
  Term.(
    const mk $ metrics_arg $ metrics_out_arg $ profile_arg $ profile_out_arg
    $ progress_arg)

let apply_obs obs =
  Ts_obs.Progress.set_enabled obs.progress;
  if obs.profile <> None || obs.profile_out <> None then
    Ts_obs.Prof.set_enabled true

let dump_metrics = function
  | None -> ()
  | Some `Table ->
      print_newline ();
      print_string (Ts_obs.Metrics.render_table Ts_obs.Metrics.default)
  | Some `Json ->
      print_endline
        (Ts_obs.Json.to_string (Ts_obs.Metrics.to_json Ts_obs.Metrics.default))

let write_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Telemetry dump shared by every exit path. File-writing problems are
   reported but never mask the run's own outcome. *)
let dump_obs obs =
  dump_metrics obs.metrics;
  (match obs.metrics_out with
  | None -> ()
  | Some path -> (
      try
        write_file path
          (Ts_obs.Json.to_string (Ts_obs.Metrics.to_json Ts_obs.Metrics.default)
          ^ "\n")
      with Sys_error msg -> prerr_endline ("tsms: --metrics-out: " ^ msg)));
  if obs.profile <> None || obs.profile_out <> None then begin
    let r = Ts_obs.Prof.report () in
    let fmt = match obs.profile with Some f -> f | None -> `Json in
    let s =
      match fmt with
      | `Table -> Ts_obs.Prof.render_table r
      | `Json -> Ts_obs.Json.to_string (Ts_obs.Prof.to_json r) ^ "\n"
    in
    match obs.profile_out with
    | Some path -> (
        try write_file path s
        with Sys_error msg -> prerr_endline ("tsms: --profile-out: " ^ msg))
    | None ->
        print_newline ();
        print_string s
  end

(* Run a subcommand body under the supervision contract: without
   --keep-going a sweep failure aborts with the aggregated per-task
   summary; with it the body finishes, the summary follows the output,
   and the exit status is non-zero. The telemetry (metrics, profile,
   --metrics-out snapshot) is dumped on every path — including arbitrary
   exceptions, where a crashed run would otherwise lose exactly the
   counters that explain the crash. *)
let supervised ~obs f =
  (match f () with
  | () -> ()
  | exception e -> (
      dump_obs obs;
      match Ts_resil.Supervise.failures_of_exn e with
      | None -> raise e
      | Some fs ->
          prerr_string (Ts_resil.Supervise.render_failures fs);
          exit 1));
  dump_obs obs;
  match Ts_resil.Supervise.summary () with
  | None -> ()
  | Some s ->
      prerr_string s;
      exit 1

(* Invalid_argument from the libraries (e.g. an invalid --trace combination)
   and Sys_error (e.g. an unwritable --trace path) are user errors, not
   internal ones. *)
let or_invalid f =
  try f ()
  with Invalid_argument msg | Sys_error msg ->
    prerr_endline ("tsms: " ^ msg);
    exit 1

(* Open a tracer for [path] (or the null sink), run [f], always close. *)
let with_trace ?format path f =
  let trace =
    match path with
    | None -> Ts_obs.Trace.null
    | Some path -> Ts_obs.Trace.to_file ?format path
  in
  Fun.protect ~finally:(fun () -> Ts_obs.Trace.close trace) (fun () -> f trace)

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON file of the simulated execution to \
     $(docv) (open in Perfetto or chrome://tracing): per-core exec/commit \
     spans, squash and sync-stall instant events, sampled MDT/write-buffer \
     occupancy."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let print_kernel tag (k : Ts_modsched.Kernel.t) ~c_reg_com =
  Format.printf "%s %a" tag Ts_modsched.Kernel.pp k;
  Printf.printf
    "%s: II=%d, stages=%d, MaxLive=%d, C_delay=%d, copies=%d, SEND/RECV pairs/iter=%d\n\n"
    tag k.Ts_modsched.Kernel.ii k.Ts_modsched.Kernel.n_stages
    (Ts_modsched.Kernel.max_live k)
    (Ts_modsched.Kernel.c_delay k ~c_reg_com)
    (Ts_modsched.Kernel.copies_needed k)
    (Ts_modsched.Kernel.send_recv_pairs_per_iter k)

let code_arg =
  let doc = "Also print the generated thread program (SEND/RECV/copies)." in
  Arg.(value & flag & info [ "code" ] ~doc)

let unroll_arg =
  let doc = "Unroll the loop body this many times before scheduling." in
  Arg.(value & opt int 1 & info [ "unroll" ] ~docv:"K" ~doc)

let schedule_cmd =
  let search_log_arg =
    let doc =
      "Write a JSONL log of the TMS search to $(docv): one tms.attempt event \
       per (II, C_delay) point tried, plus SMS phase spans and the final \
       tms.result event."
    in
    Arg.(value & opt (some string) None & info [ "search-log" ] ~docv:"FILE" ~doc)
  in
  let run jobs loop mix placement p_max code unroll search_log obs =
    apply_jobs jobs;
    apply_obs obs;
    let g = or_die (read_loop loop) in
    let g = if unroll > 1 then Ts_ddg.Unroll.by g ~factor:unroll else g in
    let params = Ts_isa.Spmt_params.apply_mix Ts_isa.Spmt_params.default mix in
    print_placement placement params;
    Printf.printf "loop %s: %d instructions, ResII=%d, RecII=%d, MII=%d, LDP=%d, SCCs=%d\n\n"
      g.Ts_ddg.Ddg.name (Ts_ddg.Ddg.n_nodes g) (Ts_ddg.Mii.res_ii g)
      (Ts_ddg.Mii.rec_ii g) (Ts_ddg.Mii.mii g) (Ts_ddg.Mii.ldp g)
      (Ts_ddg.Scc.count_non_trivial g);
    or_invalid @@ fun () ->
    supervised ~obs @@ fun () ->
    with_trace ~format:Ts_obs.Trace.Jsonl search_log (fun trace ->
        let sms = Ts_sms.Sms.schedule ~trace g in
        print_kernel "SMS" sms.Ts_sms.Sms.kernel ~c_reg_com:params.c_reg_com;
        let tms =
          match p_max with
          | Some p -> Ts_tms.Tms.schedule ~trace ~placement ~p_max:p ~params g
          | None -> Ts_tms.Tms.schedule_sweep ~trace ~placement ~params g
        in
        print_kernel "TMS" tms.Ts_tms.Tms.kernel ~c_reg_com:params.c_reg_com;
        Printf.printf
          "TMS search: P_max=%g, F_min=%.2f, threshold C_delay=%d, misspec P_M=%.4f, %d attempts%s\n"
          tms.Ts_tms.Tms.p_max tms.Ts_tms.Tms.f_min tms.Ts_tms.Tms.c_delay_threshold
          tms.Ts_tms.Tms.misspec tms.Ts_tms.Tms.attempts
          (if tms.Ts_tms.Tms.fell_back then " (fell back to SMS)" else "");
        if code then begin
          print_newline ();
          Format.printf "%a" Ts_modsched.Codegen.pp
            (Ts_modsched.Codegen.of_kernel tms.Ts_tms.Tms.kernel)
        end)
  in
  let doc = "Schedule a loop with SMS and TMS and print both kernels." in
  Cmd.v (Cmd.info "schedule" ~doc)
    Term.(
      const run $ jobs_arg $ loop_arg $ ncore_arg $ placement_arg $ p_max_arg
      $ code_arg $ unroll_arg $ search_log_arg $ obs_term)

let simulate_cmd =
  let trip_arg =
    Arg.(value & opt int 2000 & info [ "trip" ] ~docv:"N" ~doc:"Iterations to simulate.")
  in
  let warmup_arg =
    (* The one shared warm-up constant (Ts_harness.Defaults.warmup): the
       CLI, the serve protocol and the harness drivers must all default
       to the same warmed measurement. *)
    Arg.(value & opt int Ts_harness.Defaults.warmup
         & info [ "warmup" ] ~docv:"N" ~doc:"Warmup iterations excluded from the numbers.")
  in
  let timeline_arg =
    Arg.(value & flag & info [ "timeline" ] ~doc:"Draw an ASCII execution timeline of the TMS run.")
  in
  let run jobs loop mix placement trip warmup timeline trace_file obs =
    apply_jobs jobs;
    apply_obs obs;
    let g = or_die (read_loop loop) in
    let params = Ts_isa.Spmt_params.apply_mix Ts_isa.Spmt_params.default mix in
    let cfg =
      Ts_spmt.Config.with_placement
        { Ts_spmt.Config.default with params }
        placement
    in
    let ncore = params.Ts_isa.Spmt_params.ncore in
    or_invalid @@ fun () ->
    supervised ~obs @@ fun () ->
    let plan = Ts_spmt.Address_plan.create g in
    let sms = Ts_sms.Sms.schedule g in
    let tms = Ts_tms.Tms.schedule_sweep ~placement ~params g in
    let report tag (st : Ts_spmt.Sim.stats) =
      Printf.printf
        "%-6s %8d cycles (%6.2f/iter)  sync stalls %7d  SEND/RECV %6d  squashes %4d (%.3f%%)\n"
        tag st.cycles
        (float_of_int st.cycles /. float_of_int trip)
        st.sync_stall_cycles st.send_recv_pairs st.squashes
        (st.misspec_rate *. 100.0)
    in
    Printf.printf "simulating %s for %d iterations on %d cores (warmup %d):\n"
      g.Ts_ddg.Ddg.name trip ncore warmup;
    print_placement placement params;
    with_trace trace_file (fun trace ->
        (* One trace process per scheduler variant, one track per core. *)
        if Ts_obs.Trace.enabled trace then begin
          Ts_obs.Trace.process_name trace ~pid:0 "SMS";
          Ts_obs.Trace.process_name trace ~pid:1 "TMS"
        end;
        report "SMS"
          (Ts_spmt.Sim.run ~plan ~warmup ~trace ~trace_pid:0 cfg
             sms.Ts_sms.Sms.kernel ~trip);
        report "TMS"
          (Ts_spmt.Sim.run ~plan ~warmup ~trace ~trace_pid:1 cfg
             tms.Ts_tms.Tms.kernel ~trip));
    let single = Ts_spmt.Single.run ~plan ~warmup cfg g ~trip in
    Printf.printf "%-6s %8d cycles (%6.2f/iter)\n" "1T" single.Ts_spmt.Single.cycles
      (float_of_int single.Ts_spmt.Single.cycles /. float_of_int trip);
    if timeline then begin
      print_newline ();
      let tl =
        Ts_spmt.Timeline.collect ~n_threads:(4 * ncore) ~warmup:(min warmup 512)
          cfg tms.Ts_tms.Tms.kernel
      in
      print_string (Ts_spmt.Timeline.render ~ncore tl)
    end
  in
  let doc = "Schedule a loop and simulate SMS/TMS/single-threaded execution." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ jobs_arg $ loop_arg $ ncore_arg $ placement_arg $ trip_arg
      $ warmup_arg $ timeline_arg $ trace_arg $ obs_term)

let dot_cmd =
  let run loop =
    let g = or_die (read_loop loop) in
    print_string (Ts_ddg.Dot.to_string g)
  in
  let doc = "Emit Graphviz DOT for a loop's data dependence graph." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ loop_arg)

let suite_cmd =
  let bench_arg =
    let doc = "Benchmark name (wupwise, swim, ... apsi) or 'all'." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"BENCH" ~doc)
  in
  let limit_arg =
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc:"Loops per benchmark.")
  in
  let run jobs bench limit cache_dir no_cache no_warm_start keep_going
      max_retries task_timeout fault_plan obs =
    apply_jobs jobs;
    apply_obs obs;
    apply_cache ~no_cache ~dir:cache_dir ~resume:false;
    apply_warm_start ~no_warm_start;
    apply_resil ~keep_going ~max_retries ~task_timeout ~fault_plan;
    let params = Ts_isa.Spmt_params.default in
    let benches =
      if bench = "all" then Ts_workload.Spec_suite.benchmarks
      else
        match
          List.find_opt
            (fun (b : Ts_workload.Spec_suite.bench) -> b.name = bench)
            Ts_workload.Spec_suite.benchmarks
        with
        | Some b -> [ b ]
        | None ->
            prerr_endline ("tsms: unknown benchmark " ^ bench);
            exit 1
    in
    supervised ~obs (fun () ->
        let rows =
          List.map
            (fun b ->
              Ts_harness.Table2.row_of_runs ~params b
                (Ts_harness.Suite.run_bench ?limit ~params b))
            benches
        in
        print_string (Ts_harness.Table2.render rows))
  in
  let doc = "Schedule a synthetic benchmark's loops and print Table 2 rows." in
  Cmd.v (Cmd.info "suite" ~doc)
    Term.(
      const run $ jobs_arg $ bench_arg $ limit_arg $ cache_dir_arg
      $ no_cache_arg $ no_warm_start_arg $ keep_going_arg $ max_retries_arg
      $ task_timeout_arg $ fault_plan_arg $ obs_term)

let compare_cmd =
  let run jobs loop mix placement trace_file obs =
    apply_jobs jobs;
    apply_obs obs;
    let g = or_die (read_loop loop) in
    let params = Ts_isa.Spmt_params.apply_mix Ts_isa.Spmt_params.default mix in
    let cfg =
      Ts_spmt.Config.with_placement
        { Ts_spmt.Config.default with params }
        placement
    in
    let ncore = params.Ts_isa.Spmt_params.ncore in
    let plan = Ts_spmt.Address_plan.create g in
    let trip = 2000 and warmup = 512 in
    let variants =
      [
        ("sms", (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel);
        ("ims", (Ts_sms.Ims.schedule g).Ts_sms.Ims.kernel);
        ( "ts-sms",
          (Ts_tms.Tms.schedule_sweep ~placement ~params g).Ts_tms.Tms.kernel );
        ( "ts-ims",
          (Ts_tms.Tms_ims.schedule ~placement ~params g).Ts_tms.Tms.kernel );
      ]
    in
    print_placement placement params;
    let open Ts_base.Tablefmt in
    let t =
      create
        ~title:(Printf.sprintf "%s on %d cores, %d iterations" g.Ts_ddg.Ddg.name ncore trip)
        [ ("scheduler", Left); ("II", Right); ("C_delay", Right); ("MaxLive", Right);
          ("cycles/iter", Right); ("sync stalls", Right); ("misspec", Right) ]
    in
    or_invalid @@ fun () ->
    supervised ~obs @@ fun () ->
    with_trace trace_file (fun trace ->
        List.iteri
          (fun i (name, k) ->
            if Ts_obs.Trace.enabled trace then
              Ts_obs.Trace.process_name trace ~pid:i name;
            let st = Ts_spmt.Sim.run ~plan ~warmup ~trace ~trace_pid:i cfg k ~trip in
            add_row t
              [ name; cell_int k.Ts_modsched.Kernel.ii;
                cell_int (Ts_modsched.Kernel.c_delay k ~c_reg_com:params.c_reg_com);
                cell_int (Ts_modsched.Kernel.max_live k);
                cell_f2 (float_of_int st.Ts_spmt.Sim.cycles /. float_of_int trip);
                cell_int st.Ts_spmt.Sim.sync_stall_cycles;
                Printf.sprintf "%.3f%%" (st.Ts_spmt.Sim.misspec_rate *. 100.0) ])
          variants);
    let single = Ts_spmt.Single.run ~plan ~warmup cfg g ~trip in
    add_sep t;
    add_row t
      [ "1-core"; "-"; "-"; "-";
        cell_f2 (float_of_int single.Ts_spmt.Single.cycles /. float_of_int trip);
        "-"; "-" ];
    print t
  in
  let doc = "Compare all four schedulers (and the single core) on one loop." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      const run $ jobs_arg $ loop_arg $ ncore_arg $ placement_arg $ trace_arg
      $ obs_term)

let check_cmd =
  let seeds_arg =
    Arg.(value & opt int Ts_fuzz.Fuzz.default_config.seeds
         & info [ "seeds" ] ~docv:"N" ~doc:"Fuzz seeds to run (0 .. N-1).")
  in
  let trip_arg =
    Arg.(value & opt int Ts_fuzz.Fuzz.default_config.trip
         & info [ "trip" ] ~docv:"N" ~doc:"Measured iterations per simulation.")
  in
  let warmup_arg =
    Arg.(value & opt int Ts_fuzz.Fuzz.default_config.warmup
         & info [ "warmup" ] ~docv:"N" ~doc:"Warmup iterations per simulation.")
  in
  let out_arg =
    let doc =
      "Directory to write the shrunken counterexample into (as \
       $(b,counterexample-SEED.ddg), replayable with the other \
       subcommands) when the sweep fails."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let run jobs seeds trip warmup out obs =
    apply_jobs jobs;
    apply_obs obs;
    if seeds < 1 then begin
      prerr_endline "tsms: --seeds must be >= 1";
      exit 1
    end;
    let cfg = { Ts_fuzz.Fuzz.default_config with seeds; trip; warmup } in
    let t0 = Unix.gettimeofday () in
    let result =
      or_invalid (fun () ->
          Ts_fuzz.Fuzz.run ~log:(fun line -> Printf.printf "[check] %s\n%!" line) cfg)
    in
    let dt = Unix.gettimeofday () -. t0 in
    (match result with
    | None ->
        Printf.printf
          "[check] PASS: %d seeds x %d machine points clean in %.1fs\n" seeds
          (List.length cfg.points) dt
    | Some f ->
        Format.printf "%a@." Ts_fuzz.Fuzz.pp_failure f;
        (match (out, f.ddg) with
        | Some dir, Some g ->
            let path =
              Filename.concat dir (Printf.sprintf "counterexample-%d.ddg" f.seed)
            in
            (try
               if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
               let oc = open_out path in
               output_string oc (Ts_ddg.Parse.to_string g);
               close_out oc;
               Printf.printf "[check] counterexample written to %s\n" path
             with Sys_error msg ->
               prerr_endline ("tsms: cannot write counterexample: " ^ msg))
        | _ -> ());
        dump_obs obs;
        exit 1);
    dump_obs obs
  in
  let doc =
    "Differential fuzzing of the schedulers, the checker and the simulator: \
     generated loops are scheduled with SMS/TMS/TMS-IMS across machine \
     points, every kernel is re-validated from first principles (C1/C2 \
     included), simulated with runtime invariants mirrored against naive \
     reference models, and compared to the analytic cost model. A failure \
     is shrunk to a minimal .ddg counterexample."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ jobs_arg $ seeds_arg $ trip_arg $ warmup_arg $ out_arg $ obs_term)

let experiments_cmd =
  let names_arg =
    let doc =
      "Experiments to run: table1 fig2 table2 fig4 table3 fig5 fig6 ablation \
       unroll schedulers scaling hetero, or 'all'."
    in
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"NAME" ~doc)
  in
  let limit_arg =
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc:"Loops per benchmark for table2/fig4.")
  in
  let run jobs names limit cache_dir no_cache no_warm_start resume keep_going
      max_retries task_timeout fault_plan obs =
    apply_jobs jobs;
    apply_obs obs;
    apply_cache ~no_cache ~dir:cache_dir ~resume;
    apply_warm_start ~no_warm_start;
    apply_resil ~keep_going ~max_retries ~task_timeout ~fault_plan;
    supervised ~obs (fun () ->
        try
          Ts_harness.Experiments.run ?limit ~names (fun block ->
              print_string block;
              print_newline ())
        with Invalid_argument msg ->
          prerr_endline ("tsms: " ^ msg);
          exit 1)
  in
  let doc = "Regenerate the paper's tables and figures." in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(
      const run $ jobs_arg $ names_arg $ limit_arg $ cache_dir_arg
      $ no_cache_arg $ no_warm_start_arg $ resume_arg $ keep_going_arg
      $ max_retries_arg $ task_timeout_arg $ fault_plan_arg $ obs_term)

(* --- serve / client ------------------------------------------------- *)

let default_listen = "tcp:127.0.0.1:7433"

let addr_conv what s =
  match Ts_serve.Server.addr_of_string s with
  | Ok a -> a
  | Error msg ->
      prerr_endline (Printf.sprintf "tsms: %s: %s" what msg);
      exit 1

let serve_cmd =
  let listen_arg =
    let doc =
      "Address to listen on: $(b,unix:PATH), $(b,tcp:HOST:PORT), \
       $(b,HOST:PORT) or a bare port number (loopback). Port 0 binds an \
       ephemeral port and prints it."
    in
    Arg.(value & opt string default_listen & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let max_inflight_arg =
    let doc =
      "Compute requests executing concurrently on the worker pool. 0 \
       (the default) means the pool's job count ($(b,--jobs))."
    in
    Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let queue_depth_arg =
    let doc =
      "Requests allowed to wait beyond $(b,--max-inflight); anything \
       past that is answered immediately with a $(b,shed_load) error."
    in
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N" ~doc)
  in
  let lru_entries_arg =
    let doc =
      "Capacity (entries) of the in-memory LRU in front of the on-disk \
       result cache; repeat requests are served without touching the \
       filesystem. 0 disables it."
    in
    Arg.(value & opt int 256 & info [ "lru-entries" ] ~docv:"N" ~doc)
  in
  let run jobs listen max_inflight queue_depth lru_entries cache_dir no_cache
      no_warm_start keep_going max_retries task_timeout fault_plan obs =
    apply_jobs jobs;
    apply_obs obs;
    apply_cache ~no_cache ~dir:cache_dir ~resume:false;
    apply_warm_start ~no_warm_start;
    apply_resil ~keep_going ~max_retries ~task_timeout ~fault_plan;
    Ts_harness.Cached.set_lru (if lru_entries > 0 then Some lru_entries else None);
    let addr = addr_conv "--listen" listen in
    let cfg = Ts_serve.Server.default_config addr in
    let cfg =
      {
        cfg with
        Ts_serve.Server.queue_depth;
        max_inflight =
          (if max_inflight > 0 then max_inflight
           else cfg.Ts_serve.Server.max_inflight);
      }
    in
    let t =
      match Ts_serve.Server.create cfg with
      | t -> t
      | exception Unix.Unix_error (e, fn, arg) ->
          prerr_endline
            (Printf.sprintf "tsms: cannot listen on %s: %s (%s %s)" listen
               (Unix.error_message e) fn arg);
          exit 1
      | exception Invalid_argument msg ->
          prerr_endline ("tsms: " ^ msg);
          exit 1
    in
    let stop _ = Ts_serve.Server.stop t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Printf.printf "tsms: serving on %s (max-inflight %d, queue-depth %d, lru %d)\n%!"
      (Ts_serve.Server.addr_to_string (Ts_serve.Server.bound_addr t))
      cfg.Ts_serve.Server.max_inflight queue_depth lru_entries;
    Ts_serve.Server.run t;
    prerr_endline "tsms: serve: shut down cleanly";
    dump_obs obs
  in
  let doc =
    "Run the scheduler as a long-lived daemon: schedule/simulate requests \
     over a length-prefixed JSON socket protocol, executed on the resident \
     worker pool behind admission control, with the LRU + on-disk cache \
     tier shared across requests (see also $(b,tsms client))."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ jobs_arg $ listen_arg $ max_inflight_arg $ queue_depth_arg
      $ lru_entries_arg $ cache_dir_arg $ no_cache_arg $ no_warm_start_arg
      $ keep_going_arg $ max_retries_arg $ task_timeout_arg $ fault_plan_arg
      $ obs_term)

let client_cmd =
  let connect_arg =
    let doc = "Server address (same forms as $(b,tsms serve --listen))." in
    Arg.(value & opt string default_listen & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let op_arg =
    let ops =
      [ ("schedule", `Schedule); ("simulate", `Simulate); ("metrics", `Metrics);
        ("health", `Health); ("ping", `Ping) ]
    in
    let doc = "Operation: schedule, simulate, metrics, health or ping." in
    Arg.(required & pos 0 (some (enum ops)) None & info [] ~docv:"OP" ~doc)
  in
  let loop_opt_arg =
    let doc = "Loop (.ddg) for schedule/simulate requests." in
    Arg.(value & pos 1 (some file) None & info [] ~docv:"LOOP.ddg" ~doc)
  in
  let trip_arg =
    Arg.(value & opt int 2000 & info [ "trip" ] ~docv:"N" ~doc:"Iterations to simulate.")
  in
  let warmup_arg =
    Arg.(value & opt int 512
         & info [ "warmup" ] ~docv:"N" ~doc:"Warmup iterations excluded from the numbers.")
  in
  let req_retries_arg =
    let doc = "Per-request retry override sent to the server." in
    Arg.(value & opt (some int) None & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Per-request soft deadline (ms) sent to the server." in
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let raw_arg =
    let doc = "Print the raw JSON response instead of rendering it." in
    Arg.(value & flag & info [ "raw" ] ~doc)
  in
  let jfloat j name =
    (* Prefer the %h copy (exact) over the JSON float (%.12g). *)
    match Option.bind (Ts_obs.Json.member (name ^ "_hex") j) Ts_obs.Json.to_str with
    | Some s -> ( try Some (float_of_string s) with Failure _ -> None)
    | None -> (
        match Ts_obs.Json.member name j with
        | Some (Ts_obs.Json.Float f) -> Some f
        | Some (Ts_obs.Json.Int i) -> Some (float_of_int i)
        | _ -> None)
  in
  let jint j name = Option.bind (Ts_obs.Json.member name j) Ts_obs.Json.to_int in
  let need what = function
    | Some v -> v
    | None ->
        prerr_endline ("tsms: client: server response is missing " ^ what);
        exit 1
  in
  (* Rebuild the kernel from the response's (ii, time) against the same
     locally parsed loop and print it through the same pretty-printer as
     [tsms schedule] — the e2e check compares the two outputs byte for
     byte. [Kernel.of_times] revalidates every dependence constraint, so
     a server/client mismatch fails loudly here. *)
  let render_schedule g ~c_reg_com resp =
    let kj = need "kernel" (Ts_obs.Json.member "kernel" resp) in
    let ii = need "kernel.ii" (jint kj "ii") in
    let time =
      match Ts_obs.Json.member "time" kj with
      | Some (Ts_obs.Json.List xs) ->
          Array.of_list (List.map (fun x -> need "kernel.time" (Ts_obs.Json.to_int x)) xs)
      | _ ->
          prerr_endline "tsms: client: server response is missing kernel.time";
          exit 1
    in
    let k = or_invalid (fun () -> Ts_modsched.Kernel.of_times g ~ii time) in
    print_kernel "TMS" k ~c_reg_com;
    let sj = need "search" (Ts_obs.Json.member "search" resp) in
    Printf.printf
      "TMS search: P_max=%g, F_min=%.2f, threshold C_delay=%d, misspec P_M=%.4f, %d attempts%s\n"
      (need "search.p_max" (jfloat sj "p_max"))
      (need "search.f_min" (jfloat sj "f_min"))
      (need "search.c_delay_threshold" (jint sj "c_delay_threshold"))
      (need "search.misspec" (jfloat sj "misspec"))
      (need "search.attempts" (jint sj "attempts"))
      (match Ts_obs.Json.member "fell_back" sj with
      | Some (Ts_obs.Json.Bool true) -> " (fell back to SMS)"
      | _ -> "")
  in
  let render_simulate ~trip resp =
    let stj = need "stats" (Ts_obs.Json.member "stats" resp) in
    Printf.printf
      "TMS    %8d cycles (%6.2f/iter)  sync stalls %7d  SEND/RECV %6d  squashes %4d (%.3f%%)\n"
      (need "stats.cycles" (jint stj "cycles"))
      (float_of_int (need "stats.cycles" (jint stj "cycles")) /. float_of_int trip)
      (need "stats.sync_stall_cycles" (jint stj "sync_stall_cycles"))
      (need "stats.send_recv_pairs" (jint stj "send_recv_pairs"))
      (need "stats.squashes" (jint stj "squashes"))
      (need "stats.misspec_rate" (jfloat stj "misspec_rate") *. 100.0)
  in
  let run connect op loop mix placement p_max unroll trip warmup req_retries
      deadline raw =
    let addr = addr_conv "--connect" connect in
    let need_loop () =
      match loop with
      | Some l -> l
      | None ->
          prerr_endline "tsms: client: schedule and simulate need a LOOP.ddg";
          exit 1
    in
    let read_text path =
      try In_channel.with_open_text path In_channel.input_all
      with Sys_error msg ->
        prerr_endline ("tsms: " ^ msg);
        exit 1
    in
    let op_v =
      match op with
      | `Schedule ->
          Ts_serve.Protocol.Schedule
            { Ts_serve.Protocol.ddg = read_text (need_loop ()); cores = mix;
              placement; p_max; unroll }
      | `Simulate ->
          Ts_serve.Protocol.Simulate
            { Ts_serve.Protocol.s_ddg = read_text (need_loop ());
              s_cores = mix; s_placement = placement; trip; warmup }
      | `Metrics -> Ts_serve.Protocol.Metrics
      | `Health -> Ts_serve.Protocol.Health
      | `Ping -> Ts_serve.Protocol.Ping
    in
    let req =
      { Ts_serve.Protocol.id = 1; op = op_v; max_retries = req_retries;
        deadline_ms = deadline }
    in
    match Ts_serve.Client.round_trip addr req with
    | Error msg ->
        prerr_endline ("tsms: client: " ^ msg);
        exit 1
    | Ok resp -> (
        if raw then print_endline (Ts_obs.Json.to_string resp);
        if not (Ts_serve.Protocol.response_ok resp) then begin
          (match Ts_serve.Protocol.response_error resp with
          | Some (code, msg) ->
              prerr_endline (Printf.sprintf "tsms: server error [%s]: %s" code msg)
          | None -> prerr_endline "tsms: client: malformed server response");
          (* Shed load is backpressure, not failure: a distinct status so
             scripts (and the CI flood check) can tell the two apart. *)
          exit
            (match Ts_serve.Protocol.response_error resp with
            | Some ("shed_load", _) -> 75
            | _ -> 1)
        end
        else if not raw then
          match op with
          | `Ping -> print_endline "pong"
          | `Health -> print_endline (Ts_obs.Json.to_string resp)
          | `Metrics ->
              print_string
                (Option.value ~default:""
                   (Option.bind (Ts_obs.Json.member "prom" resp) Ts_obs.Json.to_str))
          | `Schedule ->
              let g = or_die (read_loop (need_loop ())) in
              let g = if unroll > 1 then Ts_ddg.Unroll.by g ~factor:unroll else g in
              let params =
                Ts_isa.Spmt_params.apply_mix Ts_isa.Spmt_params.default mix
              in
              render_schedule g ~c_reg_com:params.Ts_isa.Spmt_params.c_reg_com resp
          | `Simulate -> render_simulate ~trip resp)
  in
  let doc =
    "Send one request to a running $(b,tsms serve) daemon and render the \
     response. For $(b,schedule), the kernel is rebuilt locally from the \
     response and printed exactly as $(b,tsms schedule) would print it."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ connect_arg $ op_arg $ loop_opt_arg $ ncore_arg
      $ placement_arg $ p_max_arg $ unroll_arg $ trip_arg $ warmup_arg
      $ req_retries_arg $ deadline_arg $ raw_arg)

let () =
  let doc = "thread-sensitive modulo scheduling for SpMT multicores (ICPP'08 reproduction)" in
  let info = Cmd.info "tsms" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ schedule_cmd; simulate_cmd; compare_cmd; dot_cmd; suite_cmd;
            check_cmd; experiments_cmd; serve_cmd; client_cmd ]))
