(* bench/main.exe — regenerates every table and figure of the paper and
   (optionally) times the pipeline stages with Bechamel.

   Usage:
     bench/main.exe                      reproduce everything (full suite)
     bench/main.exe table2 fig4          specific experiments
     bench/main.exe --limit 8 all        cap loops per benchmark
     bench/main.exe micro                Bechamel micro-benchmarks
                                         (one Test.make per table/figure)
     bench/main.exe --jobs 4 search      TMS grid-search wall-clock bench;
                                         writes BENCH_search.json
     bench/main.exe sim                  simulator fast-path + result-cache
                                         wall-clock bench; writes
                                         BENCH_sim.json *)

let usage () =
  prerr_endline
    "usage: main.exe [--limit N] [--jobs N] [--repeat N] [--out FILE] \
     [--keep-going] [--max-retries N] [--task-timeout MS] [--fault-plan S] \
     [--check DIR] [--check-tolerance F] [--progress] [--metrics-out FILE] \
     [all|table1|fig2|table2|fig4|table3|fig5|fig6|ablation|micro|search|sim|pool]...";
  exit 2

(* ------------------------------------------------------------------ *)
(* The `search` group: wall-clock the TMS grid search itself (the unit
   future perf PRs must not regress). Workloads: the equake DOACROSS loop
   of Table 3 and the first applu loops of the Table 2 suite — both
   resource-bound bodies with real memory-dependence grids. Each
   workload is measured cold and warm-started (the same sweep replaying
   a populated point-outcome table, see {!Ts_tms.Tms.point_memo}); the
   warm leg returns bit-identical results, so its speedup is pure
   grid-walk savings. Emits BENCH_search.json: per-workload wall
   seconds (best of --repeat), attempts and attempts/sec, the warm wall
   seconds and warm/cold ratio, plus the pool size used. *)

let search_workloads () =
  let applu = Ts_workload.Spec_suite.find "applu" in
  let applu_loops =
    List.filteri (fun i _ -> i < 8) (Ts_workload.Spec_suite.loops applu)
  in
  [
    ("equake", Ts_workload.Doacross.equake.Ts_workload.Doacross.loops);
    ("applu", applu_loops);
  ]

(* One grid search finishes in milliseconds, so each measurement runs the
   sweep over [rounds] copies of the loop set — enough independent tasks
   to keep a 4-domain pool busy and lift wall time out of timer noise. *)
let search_rounds = 24

let search ~repeat ~out () =
  let params = Ts_isa.Spmt_params.default in
  let jobs = Ts_base.Parallel.get_jobs () in
  let time_once loops =
    let tasks =
      List.concat (List.init search_rounds (fun _ -> loops))
    in
    let t0 = Unix.gettimeofday () in
    let results =
      Ts_base.Parallel.map
        (fun g ->
          (* Fault point inside the timed window: an armed slow fault here
             (e.g. bench.search.task@*:slow5) shows up as a genuine
             wall-clock regression, which is how the --check gate's
             failure path is exercised. *)
          Ts_resil.Fault.guard "bench.search.task";
          Ts_tms.Tms.schedule_sweep ~params g)
        tasks
    in
    let wall = Unix.gettimeofday () -. t0 in
    let attempts =
      List.fold_left (fun a (r : Ts_tms.Tms.result) -> a + r.attempts) 0 results
    in
    (wall, attempts)
  in
  (* The warm leg: one point-outcome table per distinct loop, populated
     by an untimed sweep, then every timed round replays from it. The
     tables live in memory only (no store involved), so this measures
     the grid-walk savings alone. *)
  let time_once_warm memos =
    let tasks = List.concat (List.init search_rounds (fun _ -> memos)) in
    let t0 = Unix.gettimeofday () in
    let results =
      Ts_base.Parallel.map
        (fun (g, point_memo) ->
          Ts_resil.Fault.guard "bench.search.task";
          Ts_tms.Tms.schedule_sweep ?point_memo ~params g)
        tasks
    in
    let wall = Unix.gettimeofday () -. t0 in
    let attempts =
      List.fold_left (fun a (r : Ts_tms.Tms.result) -> a + r.attempts) 0 results
    in
    (wall, attempts)
  in
  let best runs =
    List.fold_left (fun (bw, ba) (w, a) -> if w < bw then (w, a) else (bw, ba))
      (List.hd runs) (List.tl runs)
  in
  let bench_one (name, loops) =
    (* Warm once (fills no caches across runs — the search is pure — but
       pays domain-pool startup), then keep the best of [repeat]. *)
    ignore (time_once loops);
    let runs = List.init (max 1 repeat) (fun _ -> time_once loops) in
    let wall, attempts = best runs in
    let rate = float_of_int attempts /. wall in
    let memos =
      List.map
        (fun g ->
          match Ts_harness.Cached.point_memo ~engine:"tms" ~params g with
          | Some (pm, _flush) ->
              ignore (Ts_tms.Tms.schedule_sweep ~point_memo:pm ~params g);
              (g, Some pm)
          | None -> (g, None))
        loops
    in
    let warm_runs = List.init (max 1 repeat) (fun _ -> time_once_warm memos) in
    let warm_wall, warm_attempts = best warm_runs in
    let ratio = warm_wall /. wall in
    Printf.printf
      "  search:%-8s %8.4f s  %6d attempts  %10.0f attempts/s  warm %8.4f s (%.3fx)\n%!"
      name wall attempts rate warm_wall ratio;
    if warm_attempts <> attempts then
      Printf.printf
        "  WARNING search:%s warm leg replayed %d attempts (cold %d)\n%!" name
        warm_attempts attempts;
    ( name,
      Ts_obs.Json.Obj
        [
          ("wall_s", Ts_obs.Json.Float wall);
          ("attempts", Ts_obs.Json.Int attempts);
          ("attempts_per_sec", Ts_obs.Json.Float rate);
          ("warm_wall_s", Ts_obs.Json.Float warm_wall);
          ("warm_over_cold", Ts_obs.Json.Float ratio);
          ("loops", Ts_obs.Json.Int (List.length loops));
        ] )
  in
  Printf.printf "TMS grid-search benchmark (jobs=%d, best of %d):\n%!" jobs repeat;
  let t0 = Unix.gettimeofday () in
  let rows = List.map bench_one (search_workloads ()) in
  let total = Unix.gettimeofday () -. t0 in
  let json =
    Ts_obs.Json.Obj
      [
        ("bench", Ts_obs.Json.Str "search");
        ("jobs", Ts_obs.Json.Int jobs);
        ("repeat", Ts_obs.Json.Int repeat);
        ("workloads", Ts_obs.Json.Obj rows);
        ("total_wall_s", Ts_obs.Json.Float total);
      ]
  in
  let oc = open_out out in
  output_string oc (Ts_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" out

(* ------------------------------------------------------------------ *)
(* The `sim` group: wall-clock the simulator on the Fig. 4 / Fig. 5
   regeneration workloads (each loop simulated under its SMS and TMS
   kernels at the drivers' trip and warmup), three ways:

     exact          the cycle-by-cycle simulator (fast path off)
     fast           the steady-state fast path (stats proven identical)
     cache cold/warm one full schedule+simulate regeneration into an
                    empty result store, then the same regeneration again

   Scheduling is done up front and not timed in the exact/fast legs, so
   their ratio is the simulator speedup alone. Emits BENCH_sim.json. *)

let sim_workloads ~limit () =
  let take l =
    match limit with
    | None -> List.filteri (fun i _ -> i < 3) l
    | Some k -> List.filteri (fun i _ -> i < k) l
  in
  let fig4 =
    List.concat_map
      (fun (b : Ts_workload.Spec_suite.bench) ->
        List.map (fun g -> (g, b.trip)) (take (Ts_workload.Spec_suite.loops b)))
      Ts_workload.Spec_suite.benchmarks
  in
  let fig5 =
    List.concat_map
      (fun (sel : Ts_workload.Doacross.selected) ->
        List.map (fun g -> (g, sel.trip)) sel.loops)
      Ts_workload.Doacross.all
  in
  [ ("fig4", fig4); ("fig5", fig5) ]

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let sim_bench ~limit ~repeat ~out () =
  let params = Ts_isa.Spmt_params.default in
  let cfg = Ts_spmt.Config.default in
  let warmup = Ts_harness.Defaults.warmup in
  let jobs = Ts_base.Parallel.get_jobs () in
  let groups = sim_workloads ~limit () in
  Printf.printf "simulator benchmark (jobs=%d, best of %d):\n%!" jobs repeat;
  (* Schedule everything once, untimed: the legs below time simulation. *)
  let scheduled =
    List.map
      (fun (name, loops) ->
        ( name,
          Ts_base.Parallel.map
            (fun ((g : Ts_ddg.Ddg.t), trip) ->
              ( g,
                trip,
                (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel,
                (Ts_tms.Tms.schedule_sweep ~params g).Ts_tms.Tms.kernel ))
            loops ))
      groups
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let best f =
    ignore (time f);
    List.fold_left min max_float (List.init (max 1 repeat) (fun _ -> time f))
  in
  let leg ~fast tasks () =
    ignore
      (Ts_base.Parallel.map
         (fun ((g : Ts_ddg.Ddg.t), trip, sms_k, tms_k) ->
           (* Same trick as bench.search.task: a timed fault point so the
              regression gate can be demonstrated to fail. *)
           Ts_resil.Fault.guard "bench.sim.task";
           let plan = Ts_spmt.Address_plan.create g in
           let s = Ts_spmt.Sim.run ~plan ~warmup ~fast cfg sms_k ~trip in
           let t = Ts_spmt.Sim.run ~plan ~warmup ~fast cfg tms_k ~trip in
           s.Ts_spmt.Sim.cycles + t.Ts_spmt.Sim.cycles)
         tasks)
  in
  let rows =
    List.map
      (fun (name, tasks) ->
        let exact_s = best (leg ~fast:false tasks) in
        let fast_s = best (leg ~fast:true tasks) in
        let speedup = exact_s /. fast_s in
        Printf.printf
          "  sim:%-6s %3d loops  exact %7.3f s  fast %7.3f s  speedup %4.2fx\n%!"
          name (List.length tasks) exact_s fast_s speedup;
        ( name,
          Ts_obs.Json.Obj
            [
              ("loops", Ts_obs.Json.Int (List.length tasks));
              ("exact_wall_s", Ts_obs.Json.Float exact_s);
              ("fast_wall_s", Ts_obs.Json.Float fast_s);
              ("speedup", Ts_obs.Json.Float speedup);
            ] ))
      scheduled
  in
  (* Cache legs: one full regeneration (schedules + simulations through
     the result store) cold, then again warm. Single-shot — a "best of"
     warm pass against a cold store would not be cold. *)
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tsms-bench-cache-%d" (Unix.getpid ()))
  in
  rm_rf cache_dir;
  Ts_harness.Cached.set_store (Some (Ts_persist.open_store ~dir:cache_dir));
  let regen () =
    List.iter
      (fun (_, loops) ->
        ignore
          (Ts_base.Parallel.map
             (fun ((g : Ts_ddg.Ddg.t), trip) ->
               let r = Ts_harness.Suite.schedule_loop ~params g in
               let s =
                 Ts_harness.Cached.sim ~warmup cfg
                   r.Ts_harness.Suite.sms.Ts_sms.Sms.kernel ~trip
               in
               let t =
                 Ts_harness.Cached.sim ~warmup cfg
                   r.Ts_harness.Suite.tms.Ts_tms.Tms.kernel ~trip
               in
               s.Ts_spmt.Sim.cycles + t.Ts_spmt.Sim.cycles)
             loops))
      groups
  in
  let cold_s = time regen in
  let warm_s = time regen in
  Ts_harness.Cached.set_store None;
  rm_rf cache_dir;
  let ratio = warm_s /. cold_s in
  Printf.printf
    "  cache       regen cold %7.3f s  warm %7.3f s  warm/cold %4.1f%%\n%!"
    cold_s warm_s (100.0 *. ratio);
  let json =
    Ts_obs.Json.Obj
      [
        ("bench", Ts_obs.Json.Str "sim");
        ("jobs", Ts_obs.Json.Int jobs);
        ("repeat", Ts_obs.Json.Int repeat);
        ("warmup", Ts_obs.Json.Int warmup);
        ("workloads", Ts_obs.Json.Obj rows);
        ( "cache",
          Ts_obs.Json.Obj
            [
              ("cold_wall_s", Ts_obs.Json.Float cold_s);
              ("warm_wall_s", Ts_obs.Json.Float warm_s);
              ("warm_over_cold", Ts_obs.Json.Float ratio);
            ] );
      ]
  in
  let oc = open_out out in
  output_string oc (Ts_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" out

(* ------------------------------------------------------------------ *)
(* The `pool` group: resident work-stealing pool vs spawn-per-call on
   fine-grained tasks — the per-map overhead the pool removes.
   [spawn_map] replicates the pre-pool Parallel.map shape (Domain.spawn
   per call, one shared Atomic cursor); the pool side is Parallel.map
   itself. Both sides run the same workload and produce the same values;
   wall seconds are best of --repeat. Emits BENCH_pool.json. *)

let spawn_map jobs f xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  let out = Array.make n 0 in
  if jobs <= 1 || n <= 1 then
    Array.iteri (fun i x -> out.(i) <- f x) input
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- f input.(i);
          go ()
        end
      in
      go ()
    in
    let doms = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join doms
  end;
  Array.to_list out

(* A fine-grained task: a few hundred integer ops, far below the cost of
   one Domain.spawn — the regime where per-call spawn overhead dominates
   and a resident pool pays off. *)
let pool_task seed =
  let x = ref seed in
  for _ = 1 to 200 do
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF
  done;
  !x

let pool_bench ~repeat ~out () =
  (* Force at least two domains so the spawn side actually spawns and the
     pool side actually crosses domains, whatever the default jobs. *)
  let jobs = max 2 (Ts_base.Parallel.get_jobs ()) in
  (* (name, parallel-map calls, tasks per call) *)
  let workloads = [ ("fine", 400, 16); ("wide", 100, 128) ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let best f =
    ignore (time f);
    List.fold_left min max_float (List.init (max 1 repeat) (fun _ -> time f))
  in
  Printf.printf "pool benchmark (jobs=%d, best of %d):\n%!" jobs repeat;
  let rows =
    List.map
      (fun (name, calls, tasks) ->
        let items = List.init tasks (fun i -> i) in
        let checksum m = List.fold_left ( + ) 0 (m pool_task items) in
        let expected = checksum (fun f xs -> List.map f xs) in
        let run m () =
          for _ = 1 to calls do
            if checksum m <> expected then failwith "pool bench: wrong result"
          done
        in
        let pool_s = best (run (fun f xs -> Ts_base.Parallel.map ~jobs f xs)) in
        let spawn_s = best (run (spawn_map jobs)) in
        let speedup = spawn_s /. pool_s in
        Printf.printf
          "  pool:%-6s %4d calls x %3d tasks  pool %7.4f s  spawn %7.4f s  \
           speedup %4.2fx\n\
           %!"
          name calls tasks pool_s spawn_s speedup;
        ( name,
          Ts_obs.Json.Obj
            [
              ("calls", Ts_obs.Json.Int calls);
              ("tasks_per_call", Ts_obs.Json.Int tasks);
              ("pool_wall_s", Ts_obs.Json.Float pool_s);
              ("spawn_wall_s", Ts_obs.Json.Float spawn_s);
              ("speedup", Ts_obs.Json.Float speedup);
            ] ))
      workloads
  in
  let json =
    Ts_obs.Json.Obj
      [
        ("bench", Ts_obs.Json.Str "pool");
        ("jobs", Ts_obs.Json.Int jobs);
        ("repeat", Ts_obs.Json.Int repeat);
        ("workloads", Ts_obs.Json.Obj rows);
      ]
  in
  let oc = open_out out in
  output_string oc (Ts_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" out

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure, timing the unit of
   work that experiment repeats (a schedule, a simulation, ...). *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let params = Ts_isa.Spmt_params.default in
  let cfg4 = Ts_spmt.Config.default in
  let motivating = Ts_workload.Motivating.ddg () in
  let swim = List.hd (Ts_workload.Spec_suite.loops (Ts_workload.Spec_suite.find "swim")) in
  let equake = List.hd Ts_workload.Doacross.equake.Ts_workload.Doacross.loops in
  let equake_kernel =
    (Ts_tms.Tms.schedule_sweep ~params equake).Ts_tms.Tms.kernel
  in
  let equake_sms = (Ts_sms.Sms.schedule equake).Ts_sms.Sms.kernel in
  let plan = Ts_spmt.Address_plan.create equake in
  let tests =
    [
      (* Table 1 is configuration only: time its pretty-printer. *)
      Test.make ~name:"table1:render-config"
        (Staged.stage (fun () ->
             ignore (Format.asprintf "%a" Ts_spmt.Config.pp Ts_spmt.Config.default)));
      (* Figure 2: SMS and TMS on the motivating example. *)
      Test.make ~name:"fig2:sms+tms-motivating"
        (Staged.stage (fun () ->
             ignore (Ts_sms.Sms.schedule motivating);
             ignore (Ts_tms.Tms.schedule_sweep ~params motivating)));
      (* Table 2's unit of work: scheduling one suite loop both ways. *)
      Test.make ~name:"table2:schedule-suite-loop"
        (Staged.stage (fun () ->
             ignore (Ts_sms.Sms.schedule swim);
             ignore (Ts_tms.Tms.schedule_sweep ~params swim)));
      (* Figure 4's unit of work: one SpMT simulation of a scheduled loop. *)
      Test.make ~name:"fig4:simulate-400-iters"
        (Staged.stage (fun () ->
             ignore (Ts_spmt.Sim.run ~plan cfg4 equake_kernel ~trip:400)));
      (* Table 3: DOACROSS analysis metrics. *)
      Test.make ~name:"table3:loop-metrics"
        (Staged.stage (fun () ->
             ignore (Ts_ddg.Mii.mii equake);
             ignore (Ts_ddg.Mii.ldp equake);
             ignore (Ts_ddg.Scc.count_non_trivial equake)));
      (* Figure 5: the single-threaded baseline simulation. *)
      Test.make ~name:"fig5:single-threaded-400-iters"
        (Staged.stage (fun () ->
             ignore (Ts_spmt.Single.run ~plan cfg4 equake ~trip:400)));
      (* Figure 6: stall/communication accounting (simulation + analysis). *)
      Test.make ~name:"fig6:sim-with-accounting"
        (Staged.stage (fun () ->
             let st = Ts_spmt.Sim.run ~plan cfg4 equake_sms ~trip:400 in
             ignore st.Ts_spmt.Sim.stall_breakdown));
      (* Ablation: TMS at P_max = 0 plus a synchronised-memory run. *)
      Test.make ~name:"ablation:nospec-schedule+sim"
        (Staged.stage (fun () ->
             let r = Ts_tms.Tms.schedule ~p_max:0.0 ~params equake in
             ignore
               (Ts_spmt.Sim.run ~plan ~sync_mem:true cfg4 r.Ts_tms.Tms.kernel
                  ~trip:400)));
    ]
  in
  let test = Test.make_grouped ~name:"tsms" ~fmt:"%s %s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  (* Plain-text report: nanoseconds per run, OLS estimate. *)
  print_endline "Bechamel micro-benchmarks (monotonic clock, ns/run):";
  Hashtbl.iter
    (fun _ tbl ->
      let rows =
        Hashtbl.fold (fun name result acc -> (name, result) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun (name, result) ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-40s %12.0f\n" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        rows)
    results

(* ------------------------------------------------------------------ *)

(* Write the recorded sweep failures next to the numbers, so a CI archive
   of a --keep-going run says exactly which loops are missing and why. *)
let write_failures_json path failures =
  let open Ts_obs.Json in
  let json =
    Obj
      [
        ("bench", Str "failures");
        ( "failures",
          List
            (List.map
               (fun (f : Ts_resil.Supervise.failure) ->
                 Obj
                   [
                     ("index", Int f.index);
                     ("label", Str f.label);
                     ("attempts", Int f.attempts);
                     ("error", Str f.error);
                   ])
               failures) );
      ]
  in
  let oc = open_out path in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "  wrote %s\n%!" path

let () =
  (* Surface a malformed TSMS_JOBS or TSMS_FAULT_PLAN now, as a startup
     error, rather than as an uncaught exception mid-sweep. *)
  (try ignore (Ts_base.Parallel.env_jobs ())
   with Invalid_argument msg ->
     prerr_endline ("bench: " ^ msg);
     exit 2);
  (match Ts_resil.Fault.arm_from_env () with
  | Ok () -> ()
  | Error msg ->
      prerr_endline ("bench: " ^ msg);
      exit 2);
  let args = Array.to_list Sys.argv |> List.tl in
  let limit = ref None in
  let repeat = ref 3 in
  let out = ref None in
  let names = ref [] in
  let max_retries = ref 0 in
  let task_timeout = ref None in
  let check_dir = ref None in
  let check_tolerance = ref 1.5 in
  let metrics_out = ref None in
  let rec parse = function
    | [] -> ()
    | "--limit" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v > 0 -> limit := Some v
        | _ -> usage ());
        parse rest
    | "--jobs" :: n :: rest | "-j" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v >= 1 -> Ts_base.Parallel.set_jobs v
        | _ -> usage ());
        parse rest
    | "--repeat" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v >= 1 -> repeat := v
        | _ -> usage ());
        parse rest
    | "--out" :: path :: rest ->
        out := Some path;
        parse rest
    | "--keep-going" :: rest ->
        Ts_resil.Supervise.set_keep_going true;
        parse rest
    | "--max-retries" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v >= 0 -> max_retries := v
        | _ -> usage ());
        parse rest
    | "--task-timeout" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v > 0 -> task_timeout := Some v
        | _ -> usage ());
        parse rest
    | "--fault-plan" :: s :: rest ->
        (match Ts_resil.Fault.parse s with
        | Ok plan -> Ts_resil.Fault.arm plan
        | Error msg ->
            prerr_endline ("bench: --fault-plan: " ^ msg);
            exit 2);
        parse rest
    | "--check" :: dir :: rest ->
        check_dir := Some dir;
        parse rest
    | "--check-tolerance" :: f :: rest ->
        (match float_of_string_opt f with
        | Some v when v >= 1.0 -> check_tolerance := v
        | _ -> usage ());
        parse rest
    | "--progress" :: rest ->
        Ts_obs.Progress.set_enabled true;
        parse rest
    | "--metrics-out" :: path :: rest ->
        metrics_out := Some path;
        parse rest
    | "--help" :: _ | "-h" :: _ -> usage ()
    | name :: rest ->
        names := name :: !names;
        parse rest
  in
  parse args;
  Ts_resil.Supervise.set_policy
    {
      Ts_resil.Supervise.default_policy with
      max_retries = !max_retries;
      deadline_ms = !task_timeout;
    };
  let names =
    match List.rev !names with
    | [] -> if !check_dir <> None then [ "search"; "sim"; "pool" ] else [ "all" ]
    | ns -> ns
  in
  (* Fresh result files produced this run, by group — the check step
     below compares each against the committed baseline of the same
     name. *)
  let written = ref [] in
  List.iter
    (fun name ->
      if name = "micro" then micro ()
      else if name = "search" then begin
        let out = Option.value !out ~default:"BENCH_search.json" in
        search ~repeat:!repeat ~out ();
        written := ("search", out) :: !written
      end
      else if name = "sim" then begin
        let out = Option.value !out ~default:"BENCH_sim.json" in
        sim_bench ~limit:!limit ~repeat:!repeat ~out ();
        written := ("sim", out) :: !written
      end
      else if name = "pool" then begin
        let out = Option.value !out ~default:"BENCH_pool.json" in
        pool_bench ~repeat:!repeat ~out ();
        written := ("pool", out) :: !written
      end
      else
        try
          Ts_harness.Experiments.run ?limit:!limit ~names:[ name ] (fun block ->
              print_string block;
              print_newline ())
        with
        | Invalid_argument msg ->
            prerr_endline ("bench: " ^ msg);
            usage ()
        | e when Ts_resil.Supervise.failures_of_exn e <> None ->
            (* Without --keep-going a sweep failure aborts the run; report
               the aggregated per-task failures and stop here. *)
            let fs = Option.get (Ts_resil.Supervise.failures_of_exn e) in
            prerr_string (Ts_resil.Supervise.render_failures fs);
            write_failures_json "BENCH_failures.json" fs;
            exit 1)
    names;
  (match !metrics_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Ts_obs.Json.to_string (Ts_obs.Metrics.to_json Ts_obs.Metrics.default));
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "  wrote %s\n%!" path);
  (match !check_dir with
  | None -> ()
  | Some dir ->
      let read_json what path =
        let contents =
          try
            let ic = open_in_bin path in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            s
          with Sys_error msg ->
            Printf.eprintf "bench --check: cannot read %s for %s: %s\n%!" path
              what msg;
            exit 1
        in
        match Ts_obs.Json.parse contents with
        | Ok j -> j
        | Error msg ->
            Printf.eprintf "bench --check: %s: malformed JSON: %s\n%!" path msg;
            exit 1
      in
      let outcomes =
        List.rev_map
          (fun (group, fresh_path) ->
            let base_path =
              Filename.concat dir ("BENCH_" ^ group ^ ".json")
            in
            let outcome =
              Ts_harness.Regress.compare_json ~what:group
                ~tolerance:!check_tolerance
                ~baseline:(read_json "baseline" base_path)
                ~fresh:(read_json "fresh results" fresh_path)
            in
            print_string (Ts_harness.Regress.render outcome);
            print_newline ();
            outcome)
          !written
      in
      if outcomes = [] then begin
        Printf.eprintf
          "bench --check: nothing to check (run the search/sim groups)\n%!";
        exit 1
      end;
      let bad = List.filter (fun o -> not (Ts_harness.Regress.ok o)) outcomes in
      if bad <> [] then begin
        List.iter
          (fun (o : Ts_harness.Regress.outcome) ->
            (match o.Ts_harness.Regress.missing with
            | [] -> ()
            | ms ->
                Printf.eprintf
                  "bench --check: %s: %d baseline metric(s) missing from the \
                   fresh run (%s)\n%!"
                  o.Ts_harness.Regress.what (List.length ms)
                  (String.concat ", " ms));
            match Ts_harness.Regress.worst o with
            | Some w when not w.Ts_harness.Regress.ok ->
                Printf.eprintf
                  "bench --check: REGRESSION in %s: %s is %.2fx baseline \
                   (%.4g s vs %.4g s, tolerance %.2fx)\n%!"
                  o.Ts_harness.Regress.what w.Ts_harness.Regress.path
                  w.Ts_harness.Regress.ratio w.Ts_harness.Regress.fresh
                  w.Ts_harness.Regress.baseline o.Ts_harness.Regress.tolerance
            | _ -> ())
          bad;
        exit 1
      end;
      Printf.printf "bench --check: PASS (tolerance %.2fx, baseline %s)\n%!"
        !check_tolerance dir);
  match Ts_resil.Supervise.failures () with
  | [] -> ()
  | fs ->
      prerr_string (Ts_resil.Supervise.render_failures fs);
      write_failures_json "BENCH_failures.json" fs;
      exit 1
