type policy = Round_robin | Locality | Sync_aware

let all = [ Round_robin; Locality; Sync_aware ]

let policy_to_string = function
  | Round_robin -> "round-robin"
  | Locality -> "locality"
  | Sync_aware -> "sync"

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "round-robin" | "rr" | "roundrobin" -> Some Round_robin
  | "locality" | "locality-aware" -> Some Locality
  | "sync" | "sync-aware" -> Some Sync_aware
  | _ -> None

let pp_policy ppf p = Format.pp_print_string ppf (policy_to_string p)

type t = {
  policy : policy;
  ncore : int;
  period : int;
  seq : int array;
  scales : int array;
  c_reg_com : int;
}

let max_weight = 8

let scales_of (p : Spmt_params.t) =
  Array.init p.Spmt_params.ncore (fun i ->
      (Spmt_params.core_desc p i).Spmt_params.lat_scale)

(* Thread slots a core receives per period, proportional to its speed:
   a core running at half speed gets half the threads. Weights are
   capped so adversarial [lat_scale]s cannot explode the period. *)
let weights scales =
  let max_scale = Array.fold_left max 1 scales in
  Array.map (fun s -> min max_weight (max 1 (max_scale / s))) scales

let make policy (p : Spmt_params.t) =
  Spmt_params.validate ~who:"Placement.make" p;
  let ncore = p.Spmt_params.ncore in
  let scales = scales_of p in
  let seq =
    match policy with
    | Round_robin -> Array.init ncore (fun i -> i)
    | Locality ->
        (* Weighted ring walk: visit cores in ring order, giving fast
           cores proportionally more rounds. Consecutive iterations land
           on ring-adjacent cores (1-hop SEND/RECV) except at round
           boundaries; homogeneous machines degenerate to round-robin. *)
        let w = weights scales in
        let maxw = Array.fold_left max 1 w in
        let buf = Buffer.create 16 in
        for r = 0 to maxw - 1 do
          for c = 0 to ncore - 1 do
            if r < w.(c) then Buffer.add_char buf (Char.chr c)
          done
        done;
        Array.init (Buffer.length buf) (fun i -> Char.code (Buffer.nth buf i))
    | Sync_aware ->
        (* Keep dependent iterations on fast cores: the cross-thread sync
           chain pays the receiver's latency scale on every RECV, so the
           policy refuses to place threads on scaled-down cores at all
           and round-robins over the fastest tier only. Homogeneous
           machines degenerate to round-robin. *)
        let min_scale = Array.fold_left min max_int scales in
        let fast =
          List.filter
            (fun c -> scales.(c) = min_scale)
            (List.init ncore (fun i -> i))
        in
        Array.of_list fast
  in
  { policy; ncore; period = Array.length seq; seq; scales;
    c_reg_com = p.Spmt_params.c_reg_com }

let policy t = t.policy
let period t = t.period
let seq t = Array.copy t.seq
let core t j = t.seq.(j mod t.period)
let legacy_comm t = t.policy = Round_robin

let hops t ~src_core ~dst_core =
  (dst_core - src_core + t.ncore) mod t.ncore

(* Distance-[dk] communication latency into consumer thread [dst].

   Round-robin keeps the paper's thread-forwarding model ([dk] hops of
   [c_reg_com] — Definition 2) untouched, which is what pins the
   homogeneous golden outputs. The explicit policies charge the physical
   unidirectional-ring distance between the two assigned cores (1 cycle
   when the threads share a core — a register-file forward) plus the
   receiving core's slowdown on the RECV. *)
let comm_cycles t ~dk ~dst =
  if t.policy = Round_robin then dk * t.c_reg_com
  else begin
    let dst_pos = dst mod t.period in
    let src_pos = ((dst_pos - dk) mod t.period + t.period) mod t.period in
    let dst_core = t.seq.(dst_pos) and src_core = t.seq.(src_pos) in
    let h = hops t ~src_core ~dst_core in
    (if h = 0 then 1 else h * t.c_reg_com) + (t.scales.(dst_core) - 1)
  end

let cores_used t =
  let seen = Array.make t.ncore false in
  Array.iter (fun c -> seen.(c) <- true) t.seq;
  Array.fold_left (fun n b -> if b then n + 1 else n) 0 seen

(* What the cost model should price in (Definition 2 under the placement):
   the worst distance-1 SEND/RECV cost anywhere in the period, and the
   core count actually reachable. Round-robin on any machine keeps the
   paper's parameters verbatim — the legacy comm model is unchanged. *)
let effective_params pol (p : Spmt_params.t) =
  match pol with
  | Round_robin -> p
  | Locality | Sync_aware ->
      let t = make pol p in
      let worst = ref 0 in
      for dst = 0 to t.period - 1 do
        worst := max !worst (comm_cycles t ~dk:1 ~dst)
      done;
      (* The scheduler has no per-core resource model — only the comm
         cost and the reachable parallelism survive into its view. *)
      { p with Spmt_params.c_reg_com = !worst; ncore = cores_used t;
        cores = [||] }

let describe t =
  let b = Buffer.create 32 in
  Buffer.add_string b (policy_to_string t.policy);
  Buffer.add_string b ": [";
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int c))
    t.seq;
  Buffer.add_char b ']';
  Buffer.contents b
