(** Thread-to-core allocation policies for the SpMT ring.

    The paper spawns thread [j] on core [j mod ncore]. On a homogeneous
    ring that is also ring-order optimal (every distance-1 dependence
    travels one hop), but on an asymmetric machine *which core a thread
    lands on* becomes a first-class performance axis (ROADMAP item 4; cf.
    SYNPA and the thread-to-core allocation-policy family in PAPERS.md).

    A policy compiles, against a machine description, into a periodic
    placement map: thread [j] runs on [seq.(j mod period)]. Periods may
    exceed [ncore] — a weighted map visits fast cores more often than
    slow ones. All policies degenerate to round-robin on a homogeneous
    machine. *)

type policy =
  | Round_robin
      (** the paper's [j mod ncore], with the legacy thread-forwarding
          communication model — bit-identical to the pre-policy code *)
  | Locality
      (** weighted ring walk: consecutive iterations land on
          ring-adjacent cores (minimal SEND/RECV hop distance) and fast
          cores receive proportionally more threads *)
  | Sync_aware
      (** keep dependent iterations on fast cores: round-robin over the
          fastest core tier only, so no RECV on the cross-iteration sync
          chain ever pays a slow core's latency scale *)

val all : policy list

val policy_to_string : policy -> string
(** ["round-robin"], ["locality"], ["sync"]. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_to_string}; also accepts ["rr"],
    ["locality-aware"], ["sync-aware"]. *)

val pp_policy : Format.formatter -> policy -> unit

type t
(** A policy compiled against a machine: the periodic thread→core map. *)

val make : policy -> Spmt_params.t -> t
(** Compile. @raise Invalid_argument on malformed params
    ({!Spmt_params.validate}). *)

val policy : t -> policy

val period : t -> int
(** Length of the placement cycle ([>= 1]; [ncore] for round-robin). *)

val core : t -> int -> int
(** [core t j] — the core thread [j] runs on. *)

val seq : t -> int array
(** One period of the map (a copy). *)

val legacy_comm : t -> bool
(** [true] iff the map uses the paper's thread-forwarding communication
    model ([dk * c_reg_com]) — exactly the round-robin policy. *)

val comm_cycles : t -> dk:int -> dst:int -> int
(** Cycles for a synchronised register value to travel a kernel distance
    of [dk] into consumer thread [dst]. Round-robin: [dk * c_reg_com]
    (Definition 2, unchanged). Other policies: the unidirectional-ring
    hop distance between the assigned cores times [c_reg_com] (1 cycle
    when the threads share a core), plus the receiving core's
    [lat_scale - 1] slowdown on the RECV. *)

val cores_used : t -> int
(** Distinct cores the map touches ([<= ncore]; smaller for
    {!Sync_aware} on an asymmetric machine). *)

val effective_params : policy -> Spmt_params.t -> Spmt_params.t
(** The machine as the TMS/TMS-IMS cost model should see it under the
    policy: [c_reg_com] becomes the worst distance-1 {!comm_cycles}
    anywhere in the period (so C1/C_delay admission and the F objective
    price the real hop distances and target-core speeds), and [ncore]
    becomes {!cores_used}. {!Round_robin} returns the params unchanged —
    scheduling stays bit-identical to the pre-policy code. *)

val describe : t -> string
(** E.g. ["locality: [0 1 2 3 0 1]"] — one period of the map. *)
