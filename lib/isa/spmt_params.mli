(** SpMT cost parameters shared by the TMS cost model and the simulator.

    These are the Table 1 values the scheduler itself needs: the number of
    cores, the SEND/RECV register-communication latency [c_reg_com]
    (Definition 2), and the spawn / commit / invalidation overheads of the
    Section 4.2 cost model. The full simulator configuration (caches, MDT,
    write buffer) lives in [Ts_spmt.Config] and embeds one of these.

    The paper's machine is a homogeneous quad-core; {!core} descriptors
    generalise it to big.LITTLE-style asymmetric rings (ROADMAP item 4)
    while keeping the homogeneous case as the degenerate — and
    bit-identical — default. *)

type core = {
  issue_width : int;
      (** instructions the core may start per cycle; [0] = unbounded
          (the idealised out-of-order issue the paper assumes) *)
  lat_scale : int;
      (** multiplier on functional-unit latencies ([>= 1]); cache and
          memory latencies are shared-system properties and stay
          unscaled *)
}
(** One core's execution resources. *)

val default_core : core
(** [{ issue_width = 0; lat_scale = 1 }] — the paper's idealised core. *)

val fast_core : core
(** [{ issue_width = 4; lat_scale = 1 }] — the "big" core of a mix: Table
    1's 4-wide issue, full speed. *)

val slow_core : core
(** [{ issue_width = 2; lat_scale = 2 }] — the "LITTLE" core: 2-wide,
    functional-unit latencies doubled. *)

type t = {
  ncore : int;  (** cores participating in the loop (paper: 4) *)
  c_reg_com : int;  (** SEND + hop + RECV latency (paper: 3) *)
  c_spawn : int;  (** thread spawn overhead [C_spn] (paper: 3) *)
  c_commit : int;  (** head-thread commit overhead [C_ci] (paper: 2) *)
  c_inv : int;  (** squash/invalidation overhead [C_inv] (paper: 15) *)
  cores : core array;
      (** per-core descriptors in ring order; [[||]] means [ncore]
          copies of {!default_core} (the homogeneous machine). When
          non-empty the length equals [ncore]. *)
}

val max_ncore : int
(** 64 — the largest ring the simulator (and the domain pool sizing)
    supports; {!with_ncore} and the CLI reject larger requests. *)

val default : t
(** The Table 1 quad-core configuration. *)

val two_core : t
(** The Figure 2 walkthrough uses two cores; identical costs otherwise. *)

val heterogeneous : t -> bool
(** [true] iff [cores] is non-empty, i.e. at least one core differs from
    {!default_core} (all-default arrays are normalised away). *)

val core_desc : t -> int -> core
(** Descriptor of core [i] (the homogeneous default when [cores] is
    empty). *)

val with_ncore : t -> int -> t
(** Same costs, different core count (used by the scaling ablations).
    An explicit core mix is re-tiled cyclically onto the new count.
    @raise Invalid_argument when [ncore] is outside [1, max_ncore]. *)

val with_cores : t -> core array -> t
(** Replace the per-core descriptors; [ncore] becomes the array length.
    @raise Invalid_argument on an empty/oversized array or a malformed
    descriptor ([issue_width < 0] or [lat_scale < 1]). *)

val validate : who:string -> t -> unit
(** Boundary check: core count in range, descriptor array consistent.
    @raise Invalid_argument otherwise, prefixed with [who]. *)

val mix_of_string : string -> (int * core array, string) result
(** Parse a core-count specification: a bare integer ["8"] (homogeneous)
    or a '+'-separated mix of [\[count\]fast] / [\[count\]slow] groups —
    ["2fast+2slow"], ["fast+3slow"], ["4fast"]. Returns the total core
    count and the descriptor array ([[||]] for homogeneous). *)

val apply_mix : t -> int * core array -> t
(** Install a parsed {!mix_of_string} result into [t]. *)

val mix_to_string : t -> string
(** Render the machine back into the {!mix_of_string} grammar ("4",
    "2fast+2slow", ...). *)

val pp : Format.formatter -> t -> unit
