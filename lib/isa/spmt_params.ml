type core = { issue_width : int; lat_scale : int }

let default_core = { issue_width = 0; lat_scale = 1 }
let fast_core = { issue_width = 4; lat_scale = 1 }
let slow_core = { issue_width = 2; lat_scale = 2 }

type t = {
  ncore : int;
  c_reg_com : int;
  c_spawn : int;
  c_commit : int;
  c_inv : int;
  cores : core array;
}

let max_ncore = 64

let check_ncore ~who ncore =
  if ncore < 1 || ncore > max_ncore then
    invalid_arg
      (Printf.sprintf "%s: ncore must be in [1, %d], got %d" who max_ncore
         ncore)

let default =
  {
    ncore = 4;
    c_reg_com = 3;
    c_spawn = 3;
    c_commit = 2;
    c_inv = 15;
    cores = [||];
  }

let two_core = { default with ncore = 2 }
let heterogeneous t = t.cores <> [||]
let core_desc t i = if t.cores = [||] then default_core else t.cores.(i)

(* All-default descriptor arrays normalise to [[||]] so that spelling the
   homogeneous machine out explicitly cannot disable the homogeneous fast
   paths downstream. *)
let normalise cores =
  if Array.for_all (fun c -> c = default_core) cores then [||] else cores

let check_descs ~who cores =
  Array.iter
    (fun c ->
      if c.issue_width < 0 || c.lat_scale < 1 then
        invalid_arg
          (Printf.sprintf
             "%s: malformed core descriptor (issue_width %d, lat_scale %d)"
             who c.issue_width c.lat_scale))
    cores

let with_cores t cores =
  let ncore = Array.length cores in
  check_ncore ~who:"Spmt_params.with_cores" ncore;
  check_descs ~who:"Spmt_params.with_cores" cores;
  { t with ncore; cores = normalise (Array.copy cores) }

let with_ncore t ncore =
  check_ncore ~who:"Spmt_params.with_ncore" ncore;
  let cores =
    if t.cores = [||] then [||]
    else
      (* Re-tile an explicit mix onto the new core count. *)
      let n = Array.length t.cores in
      normalise (Array.init ncore (fun i -> t.cores.(i mod n)))
  in
  { t with ncore; cores }

let validate ~who t =
  check_ncore ~who t.ncore;
  if t.cores <> [||] && Array.length t.cores <> t.ncore then
    invalid_arg
      (Printf.sprintf "%s: %d core descriptors for ncore = %d" who
         (Array.length t.cores) t.ncore);
  check_descs ~who t.cores

(* ---- core-mix grammar ------------------------------------------------- *)

let kind_of_string = function
  | "fast" -> Some fast_core
  | "slow" -> Some slow_core
  | _ -> None

let mix_of_string s =
  let s = String.trim s in
  if s = "" then Error "empty core specification"
  else
    match int_of_string_opt s with
    | Some n ->
        if n < 1 || n > max_ncore then
          Error
            (Printf.sprintf "core count must be in [1, %d], got %d" max_ncore n)
        else Ok (n, [||])
    | None -> (
        let parse_group g =
          let g = String.trim g in
          let digits = ref 0 in
          while
            !digits < String.length g
            &&
            match g.[!digits] with '0' .. '9' -> true | _ -> false
          do
            incr digits
          done;
          let count =
            if !digits = 0 then Some 1
            else int_of_string_opt (String.sub g 0 !digits)
          in
          let kind = String.sub g !digits (String.length g - !digits) in
          match (count, kind_of_string kind) with
          | Some n, Some c when n >= 1 -> Ok (n, c)
          | _ ->
              Error
                (Printf.sprintf
                   "bad core group %S (expected e.g. \"2fast\" or \"slow\")" g)
        in
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | g :: rest -> (
              match parse_group g with
              | Ok p -> go (p :: acc) rest
              | Error _ as e -> e)
        in
        match go [] (String.split_on_char '+' s) with
        | Error e -> Error e
        | Ok parsed ->
            let total = List.fold_left (fun a (n, _) -> a + n) 0 parsed in
            if total < 1 || total > max_ncore then
              Error
                (Printf.sprintf "core mix %S has %d cores (allowed: 1-%d)" s
                   total max_ncore)
            else begin
              let cores = Array.make total default_core in
              let i = ref 0 in
              List.iter
                (fun (n, c) ->
                  for _ = 1 to n do
                    cores.(!i) <- c;
                    incr i
                  done)
                parsed;
              Ok (total, normalise cores)
            end)

let apply_mix t (ncore, cores) =
  if cores = [||] then with_ncore { t with cores = [||] } ncore
  else with_cores t cores

let mix_to_string t =
  if t.cores = [||] then string_of_int t.ncore
  else begin
    let buf = Buffer.create 16 in
    let flush_run kind n =
      if n > 0 then begin
        if Buffer.length buf > 0 then Buffer.add_char buf '+';
        Buffer.add_string buf (string_of_int n);
        Buffer.add_string buf kind
      end
    in
    let name c =
      if c = fast_core then "fast"
      else if c = slow_core then "slow"
      else Printf.sprintf "w%dx%d" c.issue_width c.lat_scale
    in
    let run_kind = ref (name t.cores.(0)) and run_len = ref 0 in
    Array.iter
      (fun c ->
        let k = name c in
        if k = !run_kind then incr run_len
        else begin
          flush_run !run_kind !run_len;
          run_kind := k;
          run_len := 1
        end)
      t.cores;
    flush_run !run_kind !run_len;
    Buffer.contents buf
  end

let pp ppf t =
  Format.fprintf ppf
    "{ ncore = %d; c_reg_com = %d; c_spawn = %d; c_commit = %d; c_inv = %d%s }"
    t.ncore t.c_reg_com t.c_spawn t.c_commit t.c_inv
    (if t.cores = [||] then "" else "; cores = " ^ mix_to_string t)
