(** The [tsms serve] wire protocol: length-prefixed JSON frames.

    A connection carries a stream of frames in both directions. Each
    frame is a 4-byte big-endian unsigned payload length followed by
    exactly that many bytes of UTF-8 JSON. Requests and responses are
    single JSON objects; a connection may pipeline requests and every
    response carries the request's [id], so responses can complete out
    of order.

    Request object:

    {v { "id": 7, "op": "schedule",
         "ddg": "loop dotprod\n...",      // the .ddg text, verbatim
         "cores": 4,                      // optional, default 4; also a
                                          // mix string: "2fast+2slow"
         "placement": "locality",         // optional, default round-robin
         "p_max": 0.05,                   // optional, default: sweep
         "unroll": 1,                     // optional, default 1
         "trip": 2000, "warmup": 512,     // simulate only
         "max_retries": 1,                // optional per-request policy
         "deadline_ms": 5000 }            // optional, report-only v}

    Ops: [schedule], [simulate], [metrics] (Prometheus exposition of the
    whole registry), [health] (server counters), [ping].

    Success response: [{ "id": 7, "ok": true, ... }] with op-specific
    members. Error response:

    {v { "id": 7, "ok": false,
         "error": { "code": "shed_load", "message": "..." } } v}

    [id] is [null] when the request was too malformed to carry one.
    Codes: [parse_error] (not JSON), [bad_request] (JSON, but not a
    valid request — unknown op, unparseable DDG), [shed_load] (admission
    control refused: queue full), [shutting_down], [internal] (the
    computation failed after exhausting its retry budget).

    Malformed JSON in a well-formed frame is answered with a structured
    [parse_error] response and the connection stays open — framing is
    still in sync. An oversized length prefix is different: the stream
    can only be resynchronised by closing, so the server answers
    [parse_error] and closes. *)

val default_max_frame : int
(** 4 MiB — bounds both what the decoder will buffer and what a peer can
    make the server allocate. *)

val max_frame_limit : int
(** Hard ceiling (64 MiB) on any configured [max_frame]. *)

(** {1 Framing} *)

val encode_frame : string -> string
(** The 4-byte big-endian length prefix followed by the payload.
    @raise Invalid_argument when the payload exceeds {!max_frame_limit}. *)

exception Frame_too_large of int
(** A length prefix announced this many bytes, over the decoder's
    [max_frame]. The stream is unrecoverable: close the connection. *)

type decoder
(** Incremental frame reassembler. Feed it whatever chunk sizes the
    socket delivers — single bytes, torn headers, several frames at
    once — and pull complete payloads. Allocation is bounded: an
    oversized announced length raises from {!next} before any
    payload-sized buffer exists. *)

val decoder : ?max_frame:int -> unit -> decoder
(** [max_frame] defaults to {!default_max_frame}. *)

val feed : decoder -> string -> unit
(** Append raw bytes from the stream. *)

val next : decoder -> string option
(** The next complete frame payload, if one is buffered.
    @raise Frame_too_large as documented above (sticky: the decoder
    stays poisoned). *)

val buffered : decoder -> int
(** Bytes currently held by the decoder (tests assert boundedness). *)

val write_frame : Unix.file_descr -> string -> unit
(** [encode_frame] + a full write loop. Raises [Unix.Unix_error] on a
    dead peer (callers treat the connection as gone). *)

val read_frame : ?max_frame:int -> Unix.file_descr -> string option
(** Blocking read of one frame ([None] on clean EOF before a header
    byte). Reads exactly one frame's bytes and nothing more, so
    back-to-back calls on the same descriptor never lose a pipelined
    frame that coalesced into the kernel's socket buffer.
    @raise Frame_too_large on an oversized announcement
    @raise End_of_file on EOF mid-frame. *)

(** {1 Requests} *)

type sched_args = {
  ddg : string;  (** the loop in .ddg text format *)
  cores : int * Ts_isa.Spmt_params.core array;
      (** parsed machine: count plus per-core descriptors ([[||]] =
          homogeneous). On the wire, ["cores"] is either a bare count
          (the historical shape) or a {!Ts_isa.Spmt_params.mix_of_string}
          string like ["2fast+2slow"]; both are validated against
          [[1, max_ncore]] at decode time. *)
  placement : Ts_isa.Placement.policy;
      (** optional ["placement"] member ("round-robin", "locality" or
          "sync"); omitted means round-robin. *)
  p_max : float option;  (** [None] = the paper's P_max sweep *)
  unroll : int;
}

type sim_args = {
  s_ddg : string;
  s_cores : int * Ts_isa.Spmt_params.core array;
  s_placement : Ts_isa.Placement.policy;
  trip : int;
  warmup : int;
}

type op =
  | Schedule of sched_args
  | Simulate of sim_args
  | Metrics
  | Health
  | Ping

type request = {
  id : int;
  op : op;
  max_retries : int option;  (** per-request override of the server policy *)
  deadline_ms : int option;  (** report-only, as everywhere in ts_resil *)
}

val request_to_json : request -> Ts_obs.Json.t
val request_of_json : Ts_obs.Json.t -> (request, string) result

val is_control : op -> bool
(** [Metrics], [Health] and [Ping] are control ops: answered inline by
    the server's event loop, never queued, never shed — a flooded server
    still answers its health checks. *)

(** {1 Responses} *)

val ok : id:int -> (string * Ts_obs.Json.t) list -> Ts_obs.Json.t
(** [{ "id": id, "ok": true, <members> }] *)

val error : id:int option -> code:string -> string -> Ts_obs.Json.t
(** [{ "id": id|null, "ok": false, "error": { "code", "message" } }] *)

val response_id : Ts_obs.Json.t -> int option
val response_ok : Ts_obs.Json.t -> bool
val response_error : Ts_obs.Json.t -> (string * string) option
(** [(code, message)] of an error response. *)

val peek_id : string -> int option
(** Best-effort request id from raw (possibly malformed) payload text,
    so even a shed or unparseable request can be answered with its id. *)
