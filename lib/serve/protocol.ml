module Json = Ts_obs.Json

let default_max_frame = 4 * 1024 * 1024
let max_frame_limit = 64 * 1024 * 1024

(* ---- framing --------------------------------------------------------- *)

let encode_frame payload =
  let n = String.length payload in
  if n > max_frame_limit then
    invalid_arg
      (Printf.sprintf "Protocol.encode_frame: payload of %d bytes exceeds %d"
         n max_frame_limit);
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

exception Frame_too_large of int

(* The reassembly buffer: fed chunks append at the end, [pos] walks
   forward as frames are consumed, and the dead prefix is compacted away
   once it outweighs the live tail. Holds at most max_frame + one feed
   chunk — the oversized-length check fires before any payload bytes
   for a rejected frame are waited for. *)
type decoder = {
  max_frame : int;
  mutable buf : Buffer.t;
  mutable pos : int;
  mutable poisoned : int option;  (* announced size that broke the stream *)
}

let decoder ?(max_frame = default_max_frame) () =
  if max_frame < 1 || max_frame > max_frame_limit then
    invalid_arg "Protocol.decoder: max_frame out of range";
  { max_frame; buf = Buffer.create 4096; pos = 0; poisoned = None }

let feed d s = Buffer.add_string d.buf s

let buffered d = Buffer.length d.buf - d.pos

let compact d =
  if d.pos > 0 && (d.pos >= Buffer.length d.buf || d.pos > 65536) then begin
    let live = Buffer.sub d.buf d.pos (Buffer.length d.buf - d.pos) in
    let b = Buffer.create (max 4096 (String.length live)) in
    Buffer.add_string b live;
    d.buf <- b;
    d.pos <- 0
  end

let next d =
  match d.poisoned with
  | Some n -> raise (Frame_too_large n)
  | None ->
      if buffered d < 4 then None
      else begin
        let byte i = Char.code (Buffer.nth d.buf (d.pos + i)) in
        let n = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
        if n > d.max_frame then begin
          d.poisoned <- Some n;
          raise (Frame_too_large n)
        end;
        if buffered d < 4 + n then None
        else begin
          let payload = Buffer.sub d.buf (d.pos + 4) n in
          d.pos <- d.pos + 4 + n;
          compact d;
          Some payload
        end
      end

let rec write_all fd b off len =
  if len > 0 then begin
    let k = Unix.write fd b off len in
    write_all fd b (off + k) (len - k)
  end

let write_frame fd payload =
  let s = encode_frame payload in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

(* Reads must be exact: over-reading into a throwaway buffer would
   silently drop any following frame that coalesced into the same
   chunk (pipelined responses on a stream socket routinely do). *)
let really_read fd buf off len =
  let rec go off len =
    if len > 0 then
      match Unix.read fd buf off len with
      | 0 -> raise End_of_file
      | k -> go (off + k) (len - k)
  in
  go off len

let read_frame ?(max_frame = default_max_frame) fd =
  if max_frame < 1 || max_frame > max_frame_limit then
    invalid_arg "Protocol.read_frame: max_frame out of range";
  let hdr = Bytes.create 4 in
  match Unix.read fd hdr 0 4 with
  | 0 -> None
  | k ->
      if k < 4 then really_read fd hdr k (4 - k);
      let byte i = Char.code (Bytes.get hdr i) in
      let n =
        (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
      in
      if n > max_frame then raise (Frame_too_large n);
      let payload = Bytes.create n in
      really_read fd payload 0 n;
      Some (Bytes.unsafe_to_string payload)

(* ---- requests -------------------------------------------------------- *)

type sched_args = {
  ddg : string;
  cores : int * Ts_isa.Spmt_params.core array;
  placement : Ts_isa.Placement.policy;
  p_max : float option;
  unroll : int;
}

type sim_args = {
  s_ddg : string;
  s_cores : int * Ts_isa.Spmt_params.core array;
  s_placement : Ts_isa.Placement.policy;
  trip : int;
  warmup : int;
}

type op =
  | Schedule of sched_args
  | Simulate of sim_args
  | Metrics
  | Health
  | Ping

type request = {
  id : int;
  op : op;
  max_retries : int option;
  deadline_ms : int option;
}

let is_control = function
  | Metrics | Health | Ping -> true
  | Schedule _ | Simulate _ -> false

let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ]

(* A homogeneous machine goes on the wire as the bare core count (the
   historical shape, so old servers keep working); a heterogeneous one as
   the mix string. The optional "placement" member is likewise omitted
   for round-robin. *)
let cores_json (n, mix) =
  if mix = [||] then Json.Int n
  else
    Json.Str
      (Ts_isa.Spmt_params.mix_to_string
         (Ts_isa.Spmt_params.apply_mix Ts_isa.Spmt_params.default (n, mix)))

let placement_members pol =
  if pol = Ts_isa.Placement.Round_robin then []
  else [ ("placement", Json.Str (Ts_isa.Placement.policy_to_string pol)) ]

let request_to_json r =
  let op_members =
    match r.op with
    | Schedule a ->
        [ ("op", Json.Str "schedule"); ("ddg", Json.Str a.ddg);
          ("cores", cores_json a.cores); ("unroll", Json.Int a.unroll) ]
        @ placement_members a.placement
        @ opt "p_max" a.p_max (fun p -> Json.Float p)
    | Simulate a ->
        [ ("op", Json.Str "simulate"); ("ddg", Json.Str a.s_ddg);
          ("cores", cores_json a.s_cores); ("trip", Json.Int a.trip);
          ("warmup", Json.Int a.warmup) ]
        @ placement_members a.s_placement
    | Metrics -> [ ("op", Json.Str "metrics") ]
    | Health -> [ ("op", Json.Str "health") ]
    | Ping -> [ ("op", Json.Str "ping") ]
  in
  Json.Obj
    ((("id", Json.Int r.id) :: op_members)
    @ opt "max_retries" r.max_retries (fun n -> Json.Int n)
    @ opt "deadline_ms" r.deadline_ms (fun n -> Json.Int n))

let mem_int name j = Option.bind (Json.member name j) Json.to_int
let mem_str name j = Option.bind (Json.member name j) Json.to_str

let mem_num name j =
  match Json.member name j with
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some (Json.Float f) -> Some f
  | _ -> None

let ( let* ) = Result.bind

let required what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed member %S" what)

let pos_int what v =
  let* n = required what v in
  if n < 1 then Error (Printf.sprintf "%S must be >= 1" what) else Ok n

let request_of_json j =
  match j with
  | Json.Obj _ ->
      let* id = required "id" (mem_int "id" j) in
      let* opname = required "op" (mem_str "op" j) in
      let max_retries = mem_int "max_retries" j in
      let deadline_ms = mem_int "deadline_ms" j in
      let* () =
        match max_retries with
        | Some n when n < 0 -> Error "\"max_retries\" must be >= 0"
        | _ -> Ok ()
      in
      let cores () =
        (* Validated here, at the trust boundary: a request can neither
           under- nor over-size the machine (the simulator allocates
           per-core state proportional to this). *)
        match Json.member "cores" j with
        | None -> Ok (4, [||])
        | Some (Json.Int n) ->
            if n >= 1 && n <= Ts_isa.Spmt_params.max_ncore then Ok (n, [||])
            else
              Error
                (Printf.sprintf "\"cores\" must be in [1, %d]"
                   Ts_isa.Spmt_params.max_ncore)
        | Some (Json.Str s) -> (
            match Ts_isa.Spmt_params.mix_of_string s with
            | Ok m -> Ok m
            | Error e -> Error (Printf.sprintf "\"cores\": %s" e))
        | Some _ -> Error "\"cores\" must be an int or a core-mix string"
      in
      let placement () =
        match Json.member "placement" j with
        | None -> Ok Ts_isa.Placement.Round_robin
        | Some (Json.Str s) -> (
            match Ts_isa.Placement.policy_of_string s with
            | Some p -> Ok p
            | None ->
                Error
                  (Printf.sprintf
                     "\"placement\": unknown policy %S (round-robin, locality \
                      or sync)"
                     s))
        | Some _ -> Error "\"placement\" must be a string"
      in
      let* op =
        match opname with
        | "schedule" ->
            let* ddg = required "ddg" (mem_str "ddg" j) in
            let* cores = cores () in
            let* placement = placement () in
            let* unroll =
              match mem_int "unroll" j with
              | None -> Ok 1
              | Some n when n >= 1 -> Ok n
              | Some _ -> Error "\"unroll\" must be >= 1"
            in
            let* p_max =
              match mem_num "p_max" j with
              | Some p when p <= 0.0 || p > 1.0 ->
                  Error "\"p_max\" must be in (0, 1]"
              | p -> Ok p
            in
            Ok (Schedule { ddg; cores; placement; p_max; unroll })
        | "simulate" ->
            let* s_ddg = required "ddg" (mem_str "ddg" j) in
            let* s_cores = cores () in
            let* s_placement = placement () in
            let* trip =
              match mem_int "trip" j with None -> Ok 2000 | n -> pos_int "trip" n
            in
            let* warmup =
              match mem_int "warmup" j with
              (* Shared constant, not a literal: a request that omits
                 warmup gets the same warmed measurement as the harness
                 drivers and the CLI. *)
              | None -> Ok Ts_harness.Defaults.warmup
              | Some n when n >= 0 -> Ok n
              | Some _ -> Error "\"warmup\" must be >= 0"
            in
            Ok (Simulate { s_ddg; s_cores; s_placement; trip; warmup })
        | "metrics" -> Ok Metrics
        | "health" -> Ok Health
        | "ping" -> Ok Ping
        | other -> Error (Printf.sprintf "unknown op %S" other)
      in
      Ok { id; op; max_retries; deadline_ms }
  | _ -> Error "request must be a JSON object"

(* ---- responses ------------------------------------------------------- *)

let ok ~id members = Json.Obj (("id", Json.Int id) :: ("ok", Json.Bool true) :: members)

let error ~id ~code message =
  let id = match id with Some i -> Json.Int i | None -> Json.Null in
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj [ ("code", Json.Str code); ("message", Json.Str message) ] );
    ]

let response_id j = mem_int "id" j

let response_ok j =
  match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false

let response_error j =
  match Json.member "error" j with
  | Some e -> (
      match (mem_str "code" e, mem_str "message" e) with
      | Some c, Some m -> Some (c, m)
      | _ -> None)
  | None -> None

let peek_id payload =
  match Json.parse payload with
  | Ok j -> mem_int "id" j
  | Error _ -> None
