(** The [tsms serve] daemon: a long-running scheduler-as-a-service front
    end over {!Protocol}.

    One event-loop domain owns the listening socket, every connection's
    read side and all admission control; the actual scheduling and
    simulation runs as tasks on the resident {!Ts_base.Pool} — no
    [Domain.spawn] per request, ever. Control ops ([metrics], [health],
    [ping]) are answered inline by the loop so a saturated server still
    answers its health checks.

    Admission control and backpressure: at most [max_inflight] compute
    requests execute (or sit in the pool) at once; up to [queue_depth]
    more wait in an explicit pending queue; anything beyond that is shed
    immediately with a structured [shed_load] error response — the
    server never crashes or stalls under flood, it says no. A request
    admitted is never lost: its response (success or error) is always
    written, and responses to pipelined requests may complete out of
    order (matched by [id]).

    Each compute request runs under {!Ts_resil.Supervise.attempt_task}
    with the process policy, overridable per request ([max_retries],
    [deadline_ms]); the whole existing degradation machinery (persist
    write failures, fault plans, warn-once) applies per request instead
    of per sweep.

    Results are served from the shared cache tier: the in-memory LRU
    front (see {!Ts_harness.Cached.set_lru}) first, then the
    content-addressed {!Ts_persist} store, then computed on the pool.

    Server metrics (on {!Ts_obs.Metrics.default}, so the [metrics] op's
    Prometheus exposition includes them): [serve.connections],
    [serve.requests], [serve.accepted], [serve.shed], [serve.responses],
    [serve.errors], [serve.graveyard] counters, [serve.inflight] /
    [serve.queue] gauges and the [serve.request_ms] latency histogram. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** [unix:PATH], [tcp:HOST:PORT], [HOST:PORT], or a bare port number
    (= [tcp:127.0.0.1:PORT]). *)

val addr_to_string : addr -> string

type config = {
  addr : addr;
  max_inflight : int;  (** concurrent compute requests on the pool *)
  queue_depth : int;  (** pending requests beyond inflight before shedding *)
  max_frame : int;  (** per-frame byte bound, see {!Protocol} *)
  drain_timeout_s : float;  (** graceful-shutdown wait for inflight work *)
}

val default_config : addr -> config
(** [max_inflight] = the pool's configured jobs, [queue_depth] = 64,
    [max_frame] = {!Protocol.default_max_frame}, [drain_timeout_s] =
    10. *)

type t

val create : config -> t
(** Bind and listen (for a unix-domain address, a stale socket file from
    a dead server is replaced). Raises [Unix.Unix_error] or
    [Invalid_argument] on a bad configuration — before [run], so the CLI
    can report startup failures cleanly. *)

val bound_addr : t -> addr
(** The actual address: for [Tcp (host, 0)] the kernel-assigned port. *)

val run : t -> unit
(** The event loop. Blocks until {!stop}, then drains inflight requests
    (up to [drain_timeout_s]), closes every connection and the listener,
    and removes the unix socket file. A request still running when the
    drain deadline passes does not leak its descriptors: the connection
    moves to a graveyard and the worker that writes its last pending
    response closes the fd itself (counted on [serve.graveyard]); the
    last such worker also closes the internal self-pipe. Such late
    responses still reach their clients. Idempotent cleanup: safe to
    call once per [t]. *)

val stop : t -> unit
(** Request shutdown. Async-signal-safe (an atomic flag and a self-pipe
    write), so it can be called from a SIGTERM/SIGINT handler or from
    another domain. Queued-but-unstarted requests are answered with
    [shutting_down] errors; inflight ones complete and their responses
    are written before the connections close. *)
