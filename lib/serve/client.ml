module Json = Ts_obs.Json

type t = { fd : Unix.file_descr }

let connect (addr : Server.addr) =
  let domain, sockaddr =
    match addr with
    | Server.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Server.Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | h when Array.length h.Unix.h_addr_list > 0 ->
                h.Unix.h_addr_list.(0)
            | _ | (exception Not_found) ->
                raise
                  (Unix.Unix_error (Unix.EADDRNOTAVAIL, "gethostbyname", host)))
        in
        (Unix.PF_INET, Unix.ADDR_INET (ip, port))
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     Unix.close fd;
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request ?max_frame t json =
  match
    Protocol.write_frame t.fd (Json.to_string json);
    Protocol.read_frame ?max_frame t.fd
  with
  | Some payload -> (
      match Json.parse payload with
      | Ok j -> Ok j
      | Error msg -> Error ("response is not valid JSON: " ^ msg))
  | None -> Error "connection closed by server"
  | exception End_of_file -> Error "connection closed mid-response"
  | exception Protocol.Frame_too_large n ->
      Error (Printf.sprintf "oversized response frame (%d bytes)" n)
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let with_connection addr f =
  let t = connect addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let round_trip ?max_frame addr req =
  match with_connection addr (fun t -> request ?max_frame t (Protocol.request_to_json req))
  with
  | r -> r
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s (%s %s)"
           (Server.addr_to_string addr) (Unix.error_message e) fn arg)
