(** Minimal blocking client for the {!Protocol} socket protocol — the
    [tsms client] subcommand, the CI smoke driver and the tests all go
    through this. One request/response at a time per connection (the
    protocol itself allows pipelining; this client does not need it). *)

type t

val connect : Server.addr -> t
(** Raises [Unix.Unix_error] when the server is not there. *)

val request : ?max_frame:int -> t -> Ts_obs.Json.t -> (Ts_obs.Json.t, string) result
(** Send one frame, block for one response frame. [Error] covers a
    closed connection, an oversized response and a response that is not
    JSON — transport errors; a server-side failure comes back as
    [Ok json] with ["ok": false] (see {!Protocol.response_error}). *)

val close : t -> unit

val with_connection : Server.addr -> (t -> 'a) -> 'a
(** Connect, run, always close. *)

val round_trip :
  ?max_frame:int ->
  Server.addr ->
  Protocol.request ->
  (Ts_obs.Json.t, string) result
(** One-shot: connect, send, receive, close. *)
