module Json = Ts_obs.Json
module Metrics = Ts_obs.Metrics

(* ---- addresses ------------------------------------------------------- *)

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  let invalid () =
    Error
      (Printf.sprintf
         "cannot parse address %S (expected unix:PATH, tcp:HOST:PORT, \
          HOST:PORT or a bare port number)"
         s)
  in
  match String.index_opt s ':' with
  | None -> (
      match int_of_string_opt s with
      | Some p when p >= 0 && p < 65536 -> Ok (Tcp ("127.0.0.1", p))
      | _ -> invalid ())
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" -> if rest = "" then invalid () else Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> invalid ()
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when host <> "" && p >= 0 && p < 65536 ->
                  Ok (Tcp (host, p))
              | _ -> invalid ()))
      | host -> (
          match int_of_string_opt rest with
          | Some p when p >= 0 && p < 65536 -> Ok (Tcp (host, p))
          | _ -> invalid ()))

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

(* ---- metrics --------------------------------------------------------- *)

let m_connections = Metrics.counter Metrics.default "serve.connections"
let m_requests = Metrics.counter Metrics.default "serve.requests"
let m_accepted = Metrics.counter Metrics.default "serve.accepted"
let m_shed = Metrics.counter Metrics.default "serve.shed"
let m_responses = Metrics.counter Metrics.default "serve.responses"
let m_errors = Metrics.counter Metrics.default "serve.errors"
let g_inflight = Metrics.gauge Metrics.default "serve.inflight"
let g_queue = Metrics.gauge Metrics.default "serve.queue"
let m_request_ms = Metrics.histogram Metrics.default "serve.request_ms"
let m_graveyard = Metrics.counter Metrics.default "serve.graveyard"

(* ---- configuration --------------------------------------------------- *)

type config = {
  addr : addr;
  max_inflight : int;
  queue_depth : int;
  max_frame : int;
  drain_timeout_s : float;
}

let default_config addr =
  {
    addr;
    max_inflight = Ts_base.Pool.get_jobs ();
    queue_depth = 64;
    max_frame = Protocol.default_max_frame;
    drain_timeout_s = 10.0;
  }

(* ---- connections ----------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  wlock : Mutex.t;
  mutable alive : bool;  (* read side still open; loop-owned *)
  dead : bool Atomic.t;  (* a write failed: close as soon as drained *)
  pending : int Atomic.t;  (* worker responses not yet written *)
  gy : bool Atomic.t;
      (* in the shutdown graveyard: the worker that takes [pending] to 0
         closes the fd itself (see [finish_conn]) *)
  closed : bool Atomic.t;  (* fd-close CAS — exactly one closer, ever *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  stopping : bool Atomic.t;
  inflight : int Atomic.t;
  waiting : (conn * Protocol.request) Queue.t;  (* loop-owned *)
  mutable conns : conn list;  (* loop-owned *)
  graveyard_left : int Atomic.t;  (* graveyard conns not yet closed *)
  pipes_deferred : bool Atomic.t;
      (* shutdown left stragglers: the last graveyard closer also
         closes the self-pipe *)
  pipes_closed : bool Atomic.t;
  sock_path : string option;
  bound : addr;
  started : float;
}

(* A connection fd is closed only when no worker holds a pending
   response for it ([pending] = 0) — so a worker writing under [wlock]
   can never race a close or hit a recycled descriptor. While the loop
   runs, the loop is the only closer; after shutdown, stragglers move to
   a graveyard and the worker that writes the last pending response
   closes the fd itself (the [closed] CAS makes the close exactly-once
   either way). A failed write just marks the connection dead. *)
let send t c json =
  let s = Json.to_string json in
  Mutex.lock c.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.wlock)
    (fun () ->
      if not (Atomic.get c.dead) then
        try
          Protocol.write_frame c.fd s;
          Metrics.incr m_responses
        with Unix.Unix_error _ | Sys_error _ -> Atomic.set c.dead true);
  ignore t

let notify t =
  if not (Atomic.get t.pipes_closed) then
    try ignore (Unix.write t.pipe_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

let close_fd_once c =
  if Atomic.exchange c.closed true then false
  else begin
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    true
  end

let close_pipes t =
  if not (Atomic.exchange t.pipes_closed true) then begin
    (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
    try Unix.close t.pipe_w with Unix.Unix_error _ -> ()
  end

(* A graveyard close: a straggler's fd is released the moment its last
   pending response has been written, and the final straggler overall
   also releases the self-pipe (every graveyard worker's [notify]
   happens before its [pending] decrement, so no worker can touch the
   pipe afterwards). Callable from worker domains and from the shutdown
   sweep — the [closed] CAS arbitrates. *)
let finish_conn t c =
  if not (Atomic.exchange c.closed true) then begin
    (* Count before closing: the close is externally observable (the
       client reads EOF), so anything a client may poll for afterwards
       must already be published. *)
    Metrics.incr m_graveyard;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    if
      Atomic.fetch_and_add t.graveyard_left (-1) = 1
      && Atomic.get t.pipes_deferred
    then close_pipes t
  end

(* ---- request execution (pool workers) -------------------------------- *)

let kernel_members (k : Ts_modsched.Kernel.t) ~c_reg_com =
  [
    ("ii", Json.Int k.Ts_modsched.Kernel.ii);
    ("n_stages", Json.Int k.Ts_modsched.Kernel.n_stages);
    ( "time",
      Json.List
        (Array.to_list
           (Array.map (fun t -> Json.Int t) k.Ts_modsched.Kernel.time)) );
    ("max_live", Json.Int (Ts_modsched.Kernel.max_live k));
    ("c_delay", Json.Int (Ts_modsched.Kernel.c_delay k ~c_reg_com));
    ("copies", Json.Int (Ts_modsched.Kernel.copies_needed k));
    ( "send_recv_pairs_per_iter",
      Json.Int (Ts_modsched.Kernel.send_recv_pairs_per_iter k) );
  ]

let tms_members (r : Ts_tms.Tms.result) ~c_reg_com =
  [
    ("kernel", Json.Obj (kernel_members r.Ts_tms.Tms.kernel ~c_reg_com));
    ( "search",
      Json.Obj
        [
          ("mii", Json.Int r.Ts_tms.Tms.mii);
          ("p_max", Json.Float r.Ts_tms.Tms.p_max);
          ("f_min", Json.Float r.Ts_tms.Tms.f_min);
          (* JSON floats render at %.12g; the hex copies let a client
             reprint the search line bit-identically to [tsms schedule]. *)
          ("p_max_hex", Json.Str (Printf.sprintf "%h" r.Ts_tms.Tms.p_max));
          ("f_min_hex", Json.Str (Printf.sprintf "%h" r.Ts_tms.Tms.f_min));
          ("misspec_hex", Json.Str (Printf.sprintf "%h" r.Ts_tms.Tms.misspec));
          ("c_delay_threshold", Json.Int r.Ts_tms.Tms.c_delay_threshold);
          ("achieved_c_delay", Json.Int r.Ts_tms.Tms.achieved_c_delay);
          ("misspec", Json.Float r.Ts_tms.Tms.misspec);
          ("attempts", Json.Int r.Ts_tms.Tms.attempts);
          ("fell_back", Json.Bool r.Ts_tms.Tms.fell_back);
        ] );
  ]

let stats_members (st : Ts_spmt.Sim.stats) ~trip =
  [
    ("cycles", Json.Int st.Ts_spmt.Sim.cycles);
    ( "cycles_per_iter",
      Json.Float (float_of_int st.Ts_spmt.Sim.cycles /. float_of_int trip) );
    ("committed", Json.Int st.Ts_spmt.Sim.committed);
    ("squashes", Json.Int st.Ts_spmt.Sim.squashes);
    ("misspec_rate", Json.Float st.Ts_spmt.Sim.misspec_rate);
    ("sync_stall_cycles", Json.Int st.Ts_spmt.Sim.sync_stall_cycles);
    ("spawn_stall_cycles", Json.Int st.Ts_spmt.Sim.spawn_stall_cycles);
    ("send_recv_pairs", Json.Int st.Ts_spmt.Sim.send_recv_pairs);
    ("wb_peak", Json.Int st.Ts_spmt.Sim.wb_peak);
    ("mdt_peak", Json.Int st.Ts_spmt.Sim.mdt_peak);
  ]

exception Bad_request of string

let parse_ddg text =
  try Ts_ddg.Parse.of_string text with
  | Ts_ddg.Parse.Error (ln, msg) ->
      raise (Bad_request (Printf.sprintf "ddg line %d: %s" ln msg))
  | Invalid_argument msg | Failure msg -> raise (Bad_request msg)

(* The per-request policy: the process policy (CLI [--max-retries] /
   [--task-timeout]) with the request's own overrides on top. *)
let request_policy (r : Protocol.request) =
  let base = Ts_resil.Supervise.policy () in
  {
    base with
    Ts_resil.Supervise.max_retries =
      Option.value r.Protocol.max_retries
        ~default:base.Ts_resil.Supervise.max_retries;
    deadline_ms =
      (match r.Protocol.deadline_ms with
      | Some d -> Some d
      | None -> base.Ts_resil.Supervise.deadline_ms);
  }

let exec_request (r : Protocol.request) =
  let id = r.Protocol.id in
  match
    let compute () =
      match r.Protocol.op with
      | Protocol.Schedule a ->
          let g = parse_ddg a.Protocol.ddg in
          let g =
            if a.Protocol.unroll > 1 then
              Ts_ddg.Unroll.by g ~factor:a.Protocol.unroll
            else g
          in
          let params =
            Ts_isa.Spmt_params.apply_mix Ts_isa.Spmt_params.default
              a.Protocol.cores
          in
          (* The cache keys on the params it is given, so hand it the
             placement's effective machine (identity for round-robin). *)
          let eff =
            Ts_isa.Placement.effective_params a.Protocol.placement params
          in
          let run () =
            match a.Protocol.p_max with
            | Some p -> Ts_harness.Cached.tms ~p_max:p ~params:eff g
            | None -> Ts_harness.Cached.tms_sweep ~params:eff g
          in
          let label = Printf.sprintf "serve/%d/%s" id g.Ts_ddg.Ddg.name in
          (match
             Ts_resil.Supervise.attempt_task ~policy:(request_policy r)
               ~point:"serve.request" ~label ~index:id run ()
           with
          | Ok tms ->
              Protocol.ok ~id
                (("loop", Json.Str g.Ts_ddg.Ddg.name)
                :: tms_members tms
                     ~c_reg_com:params.Ts_isa.Spmt_params.c_reg_com)
          | Error f ->
              Metrics.incr m_errors;
              Protocol.error ~id:(Some id) ~code:"internal"
                (Printf.sprintf "%s (after %d attempt%s)"
                   f.Ts_resil.Supervise.error f.Ts_resil.Supervise.attempts
                   (if f.Ts_resil.Supervise.attempts = 1 then "" else "s")))
      | Protocol.Simulate a ->
          let g = parse_ddg a.Protocol.s_ddg in
          let params =
            Ts_isa.Spmt_params.apply_mix Ts_isa.Spmt_params.default
              a.Protocol.s_cores
          in
          let cfg =
            Ts_spmt.Config.with_placement
              { Ts_spmt.Config.default with params }
              a.Protocol.s_placement
          in
          let run () =
            let tms =
              Ts_harness.Cached.tms_sweep
                ~params:
                  (Ts_isa.Placement.effective_params a.Protocol.s_placement
                     params)
                g
            in
            let st =
              Ts_harness.Cached.sim ~warmup:a.Protocol.warmup cfg
                tms.Ts_tms.Tms.kernel ~trip:a.Protocol.trip
            in
            (tms, st)
          in
          let label = Printf.sprintf "serve/%d/%s" id g.Ts_ddg.Ddg.name in
          (match
             Ts_resil.Supervise.attempt_task ~policy:(request_policy r)
               ~point:"serve.request" ~label ~index:id run ()
           with
          | Ok (tms, st) ->
              Protocol.ok ~id
                (("loop", Json.Str g.Ts_ddg.Ddg.name)
                 :: ("stats", Json.Obj (stats_members st ~trip:a.Protocol.trip))
                 :: tms_members tms
                      ~c_reg_com:params.Ts_isa.Spmt_params.c_reg_com)
          | Error f ->
              Metrics.incr m_errors;
              Protocol.error ~id:(Some id) ~code:"internal"
                (Printf.sprintf "%s (after %d attempt%s)"
                   f.Ts_resil.Supervise.error f.Ts_resil.Supervise.attempts
                   (if f.Ts_resil.Supervise.attempts = 1 then "" else "s")))
      | Protocol.Metrics | Protocol.Health | Protocol.Ping ->
          (* Control ops are answered inline by the loop; a compute
             dispatch of one is a bug, not a client error. *)
          assert false
    in
    compute ()
  with
  | resp -> resp
  | exception Bad_request msg ->
      Metrics.incr m_errors;
      Protocol.error ~id:(Some id) ~code:"bad_request" msg
  | exception e ->
      Metrics.incr m_errors;
      Protocol.error ~id:(Some id) ~code:"internal" (Printexc.to_string e)

(* ---- control ops (event loop) ---------------------------------------- *)

let health_members t =
  [
    ("status", Json.Str (if Atomic.get t.stopping then "stopping" else "ok"));
    ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
    ("inflight", Json.Int (Atomic.get t.inflight));
    ("queue", Json.Int (Queue.length t.waiting));
    ("max_inflight", Json.Int t.cfg.max_inflight);
    ("queue_depth", Json.Int t.cfg.queue_depth);
    ("connections", Json.Int (Metrics.counter_value m_connections));
    ("requests", Json.Int (Metrics.counter_value m_requests));
    ("accepted", Json.Int (Metrics.counter_value m_accepted));
    ("shed", Json.Int (Metrics.counter_value m_shed));
    ("responses", Json.Int (Metrics.counter_value m_responses));
    ("errors", Json.Int (Metrics.counter_value m_errors));
  ]

(* ---- lifecycle ------------------------------------------------------- *)

let create cfg =
  if cfg.max_inflight < 1 then invalid_arg "Server.create: max_inflight < 1";
  if cfg.queue_depth < 0 then invalid_arg "Server.create: queue_depth < 0";
  if cfg.max_frame < 1 || cfg.max_frame > Protocol.max_frame_limit then
    invalid_arg "Server.create: max_frame out of range";
  let domain, sockaddr, sock_path =
    match cfg.addr with
    | Unix_sock path ->
        (* A stale socket file from a dead server would make bind fail
           forever; only ever unlink something that is a socket. *)
        (match Unix.lstat path with
        | { Unix.st_kind = Unix.S_SOCK; _ } -> (
            try Unix.unlink path with Unix.Unix_error _ -> ())
        | _ -> ()
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
        (Unix.PF_UNIX, Unix.ADDR_UNIX path, Some path)
    | Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "gethostbyname", host))
            | h -> h.Unix.h_addr_list.(0)
            | exception Not_found ->
                raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "gethostbyname", host)))
        in
        (Unix.PF_INET, Unix.ADDR_INET (ip, port), None)
  in
  let listen_fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     if sock_path = None then Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd sockaddr;
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound =
    match cfg.addr with
    | Unix_sock _ as a -> a
    | Tcp (host, _) -> (
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> Tcp (host, port)
        | _ -> cfg.addr)
  in
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock pipe_w;
  Unix.set_nonblock pipe_r;
  {
    cfg;
    listen_fd;
    pipe_r;
    pipe_w;
    stopping = Atomic.make false;
    inflight = Atomic.make 0;
    waiting = Queue.create ();
    conns = [];
    graveyard_left = Atomic.make 0;
    pipes_deferred = Atomic.make false;
    pipes_closed = Atomic.make false;
    sock_path;
    bound;
    started = Unix.gettimeofday ();
  }

let bound_addr t = t.bound

let stop t =
  Atomic.set t.stopping true;
  notify t

(* ---- the event loop -------------------------------------------------- *)

let dispatch t c (req : Protocol.request) =
  Atomic.incr t.inflight;
  Atomic.incr c.pending;
  Metrics.incr m_accepted;
  ignore
    (Ts_base.Pool.submit (fun () ->
         let t0 = Unix.gettimeofday () in
         let resp = exec_request req in
         Metrics.observe m_request_ms ((Unix.gettimeofday () -. t0) *. 1000.0);
         send t c resp;
         Atomic.decr t.inflight;
         (* The self-pipe kick precedes the [pending] decrement: once a
            graveyard conn's counter hits 0 the pipe may be closed, so
            nothing may touch it afterwards. *)
         notify t;
         if Atomic.fetch_and_add c.pending (-1) = 1 && Atomic.get c.gy then
           finish_conn t c))

let handle_request t c j =
  match Protocol.request_of_json j with
  | Error msg ->
      Metrics.incr m_errors;
      send t c
        (Protocol.error
           ~id:(Option.bind (Json.member "id" j) Json.to_int)
           ~code:"bad_request" msg)
  | Ok req -> (
      let id = req.Protocol.id in
      match req.Protocol.op with
      | Protocol.Ping -> send t c (Protocol.ok ~id [ ("pong", Json.Bool true) ])
      | Protocol.Health -> send t c (Protocol.ok ~id (health_members t))
      | Protocol.Metrics ->
          send t c
            (Protocol.ok ~id
               [ ("prom", Json.Str (Metrics.render_prom Metrics.default)) ])
      | Protocol.Schedule _ | Protocol.Simulate _ ->
          if Atomic.get t.stopping then
            send t c
              (Protocol.error ~id:(Some id) ~code:"shutting_down"
                 "server is shutting down")
          else if Atomic.get t.inflight < t.cfg.max_inflight then dispatch t c req
          else if Queue.length t.waiting < t.cfg.queue_depth then
            Queue.push (c, req) t.waiting
          else begin
            Metrics.incr m_shed;
            send t c
              (Protocol.error ~id:(Some id) ~code:"shed_load"
                 (Printf.sprintf
                    "server at capacity (%d inflight, %d queued); retry later"
                    (Atomic.get t.inflight) (Queue.length t.waiting)))
          end)

let handle_frame t c payload =
  Metrics.incr m_requests;
  match Json.parse payload with
  | Error msg ->
      Metrics.incr m_errors;
      send t c
        (Protocol.error
           ~id:(Protocol.peek_id payload)
           ~code:"parse_error" ("request is not valid JSON: " ^ msg))
  | Ok j -> handle_request t c j

let read_conn t c chunk =
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> c.alive <- false
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error (_, _, _) ->
      c.alive <- false;
      Atomic.set c.dead true
  | k -> (
      Protocol.feed c.dec (Bytes.sub_string chunk 0 k);
      try
        let rec frames () =
          match Protocol.next c.dec with
          | Some payload ->
              handle_frame t c payload;
              frames ()
          | None -> ()
        in
        frames ()
      with Protocol.Frame_too_large n ->
        (* The stream cannot be resynchronised after an oversized
           announcement; answer once, then close (after any inflight
           responses drain). Crucially the [n]-byte allocation never
           happened. *)
        Metrics.incr m_errors;
        send t c
          (Protocol.error ~id:None ~code:"parse_error"
             (Printf.sprintf
                "frame of %d bytes exceeds the server's %d-byte limit" n
                t.cfg.max_frame));
        c.alive <- false)

let drain_pipe t =
  let b = Bytes.create 256 in
  let rec go () =
    match Unix.read t.pipe_r b 0 (Bytes.length b) with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  in
  go ()

let close_conn c =
  Atomic.set c.dead true;
  ignore (close_fd_once c)

(* Close connections whose read side is gone (or whose write side died)
   once no worker still owes them a response. *)
let reap t =
  let closable c = (not c.alive || Atomic.get c.dead) && Atomic.get c.pending = 0 in
  let gone, live = List.partition closable t.conns in
  List.iter close_conn gone;
  t.conns <- live

let accept_new t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        Metrics.incr m_connections;
        let c =
          {
            fd;
            dec = Protocol.decoder ~max_frame:t.cfg.max_frame ();
            wlock = Mutex.create ();
            alive = true;
            dead = Atomic.make false;
            pending = Atomic.make 0;
            gy = Atomic.make false;
            closed = Atomic.make false;
          }
        in
        t.conns <- c :: t.conns;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  in
  go ()

let admit_waiting t =
  while
    (not (Queue.is_empty t.waiting))
    && Atomic.get t.inflight < t.cfg.max_inflight
  do
    let c, req = Queue.pop t.waiting in
    (* A connection that died while its request waited still gets the
       work skipped, not the server crashed. *)
    if Atomic.get c.dead then ()
    else dispatch t c req
  done

let run t =
  (* A client vanishing mid-write must degrade to a dead connection, not
     kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let chunk = Bytes.create 65536 in
  let rec loop () =
    admit_waiting t;
    Metrics.set_gauge g_inflight (float_of_int (Atomic.get t.inflight));
    Metrics.set_gauge g_queue (float_of_int (Queue.length t.waiting));
    if Atomic.get t.stopping then ()
    else begin
      let fds =
        t.listen_fd :: t.pipe_r
        :: List.filter_map (fun c -> if c.alive then Some c.fd else None) t.conns
      in
      (match Unix.select fds [] [] 0.5 with
      | readable, _, _ ->
          if List.mem t.pipe_r readable then drain_pipe t;
          if List.mem t.listen_fd readable then accept_new t;
          List.iter
            (fun c -> if c.alive && List.mem c.fd readable then read_conn t c chunk)
            t.conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      reap t;
      loop ()
    end
  in
  loop ();
  (* Graceful shutdown: refuse the queue, drain inflight, close, unlink. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Queue.iter
    (fun (c, (req : Protocol.request)) ->
      send t c
        (Protocol.error ~id:(Some req.Protocol.id) ~code:"shutting_down"
           "server is shutting down"))
    t.waiting;
  Queue.clear t.waiting;
  let deadline = Unix.gettimeofday () +. t.cfg.drain_timeout_s in
  let rec drain () =
    if Atomic.get t.inflight > 0 && Unix.gettimeofday () < deadline then begin
      (match Unix.select [ t.pipe_r ] [] [] 0.1 with
      | [ _ ], _, _ -> drain_pipe t
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      drain ()
    end
  in
  drain ();
  (* Stragglers past the drain deadline: their workers may yet write
     responses, so the loop cannot close their fds here (a write under
     [wlock] must never hit a recycled descriptor). Each goes to the
     graveyard instead — the worker that writes the last pending
     response closes the fd itself, and the last straggler overall also
     closes the self-pipe. Nothing leaks, and a response finished after
     the deadline still reaches its client before the close. *)
  let clean, stragglers =
    List.partition (fun c -> Atomic.get c.pending = 0) t.conns
  in
  List.iter close_conn clean;
  t.conns <- [];
  (match stragglers with
  | [] -> close_pipes t
  | _ ->
      Atomic.set t.graveyard_left (List.length stragglers);
      Atomic.set t.pipes_deferred true;
      List.iter (fun c -> Atomic.set c.gy true) stragglers;
      (* A worker may have taken [pending] to 0 before its [gy] flag was
         visible; sweep once so such conns are not orphaned (the CAS in
         [finish_conn] keeps a racing worker harmless). *)
      List.iter
        (fun c -> if Atomic.get c.pending = 0 then finish_conn t c)
        stragglers);
  match t.sock_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ()
