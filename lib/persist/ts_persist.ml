(* On-disk layout:

     <dir>/version        human-readable store format stamp
     <dir>/objects/<k0k1>/<key>.bin
     <dir>/journals/<name>.j

   Entry format ("tsp1" magic):

     tsp1 <payload-digest-hex>\n<marshalled payload>

   Journal format ("tsj1" magic):

     tsj1 <fingerprint-hex>\n
     r <id-length> <payload-length>\n<id><marshalled payload>\n  (repeated)

   The magics double as the format version: bumping them makes every old
   entry unreadable, which the readers below treat as a miss. *)

module Lru = Lru

let m_hits = Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.hits"
let m_misses = Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.misses"
let m_stores = Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.stores"

let m_replayed =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.journal.replayed"

let m_degraded =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.degraded"

let m_j_degraded =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.journal.degraded"

let m_j_discarded =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.journal.discarded"

(* [tmp_seq] must be atomic, not a plain field: under the resident
   domain pool every worker shares one pid, so the pid alone cannot
   distinguish two concurrent [store]s of different keys — a raced
   plain counter could hand both the same temp path and let their
   atomic renames corrupt each other. *)
type t = { root : string; tmp_seq : int Atomic.t }

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    (try Sys.mkdir path 0o755
     with Sys_error _ when Sys.file_exists path -> ())
  end

let entry_magic = "tsp1"
let journal_magic = "tsj1"

let open_store ~dir =
  Ts_resil.Fault.guard "persist.open";
  mkdir_p (Filename.concat dir "objects");
  mkdir_p (Filename.concat dir "journals");
  let vfile = Filename.concat dir "version" in
  if not (Sys.file_exists vfile) then begin
    let oc = open_out vfile in
    output_string oc "tsms result store, entry format tsp1, journal tsj1\n";
    close_out oc
  end;
  { root = dir; tmp_seq = Atomic.make 0 }

let dir t = t.root

(* Always absolute: a --resume run started from a different cwd must find
   the same cache and journal the killed run wrote. *)
let absolutize d =
  if Filename.is_relative d then Filename.concat (Sys.getcwd ()) d else d

let default_dir () =
  match Sys.getenv_opt "TSMS_CACHE_DIR" with
  | Some d when d <> "" -> absolutize d
  | _ -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> absolutize (Filename.concat d "tsms")
      | _ -> (
          match Sys.getenv_opt "HOME" with
          | Some h when h <> "" ->
              absolutize (Filename.concat (Filename.concat h ".cache") "tsms")
          | _ ->
              let d = absolutize "_tsms_cache" in
              Ts_resil.Warn.once ~key:"persist.default_dir"
                (Printf.sprintf
                   "no $HOME or $XDG_CACHE_HOME; the result cache falls back \
                    to %s (set $TSMS_CACHE_DIR to pin it)"
                   d);
              d))

let digest_hex s = Digest.to_hex (Digest.string s)

let entry_path t key =
  let shard = if String.length key >= 2 then String.sub key 0 2 else "xx" in
  Filename.concat
    (Filename.concat (Filename.concat t.root "objects") shard)
    (key ^ ".bin")

(* I/O latency distributions: [find] (open+read+digest+unmarshal) and
   [store_exn] (marshal+digest+write+rename) wall time. *)
let m_read_ms =
  Ts_obs.Metrics.histogram Ts_obs.Metrics.default "persist.read_ms"

let m_write_ms =
  Ts_obs.Metrics.histogram Ts_obs.Metrics.default "persist.write_ms"

let m_j_write_ms =
  Ts_obs.Metrics.histogram Ts_obs.Metrics.default "persist.journal.write_ms"

let read_file path =
  Ts_resil.Fault.guard "persist.read";
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every failure mode — missing file, bad magic, digest mismatch,
   truncated marshal — is a miss; a cache must never take the computation
   down with it. *)
let find (type a) t ~key : a option =
  Ts_obs.Prof.span "persist.read" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let path = entry_path t key in
  let parsed =
    try
      let s = read_file path in
      (* "tsp1 " ^ 32 hex ^ "\n" *)
      let hdr = String.length entry_magic + 1 + 32 + 1 in
      if
        String.length s >= hdr
        && String.sub s 0 (String.length entry_magic) = entry_magic
        && s.[hdr - 1] = '\n'
      then begin
        let want = String.sub s (String.length entry_magic + 1) 32 in
        let payload = String.sub s hdr (String.length s - hdr) in
        if Digest.to_hex (Digest.string payload) = want then
          Some (Marshal.from_string payload 0 : a)
        else None
      end
      else None
    with _ -> None
  in
  (match parsed with
  | Some _ -> Ts_obs.Metrics.incr m_hits
  | None ->
      Ts_obs.Metrics.incr m_misses;
      if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ()));
  Ts_obs.Metrics.observe m_read_ms ((Unix.gettimeofday () -. t0) *. 1000.0);
  parsed

let store_exn t ~key v =
  Ts_obs.Prof.span "persist.write" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let payload = Marshal.to_string v [] in
  (* A torn fault simulates a crash or short write that still left a file
     behind: the truncated payload fails its digest check on the next
     [find], which must treat it as a miss and delete it. *)
  let torn =
    match Ts_resil.Fault.check "persist.write" with
    | None -> false
    | Some Ts_resil.Fault.Torn -> true
    | Some (Ts_resil.Fault.Slow ms) ->
        Ts_resil.Fault.sleep (float_of_int ms /. 1000.0);
        false
    | Some Ts_resil.Fault.Exn -> raise (Ts_resil.Fault.Injected "persist.write")
  in
  let path = entry_path t key in
  mkdir_p (Filename.dirname path);
  let tmp =
    let seq = Atomic.fetch_and_add t.tmp_seq 1 in
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) seq
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc entry_magic;
     output_char oc ' ';
     output_string oc (Digest.to_hex (Digest.string payload));
     output_char oc '\n';
     if torn then
       output_string oc (String.sub payload 0 (String.length payload / 2))
     else output_string oc payload;
     close_out oc;
     Ts_resil.Fault.guard "persist.rename";
     Sys.rename tmp path
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Ts_obs.Metrics.observe m_write_ms ((Unix.gettimeofday () -. t0) *. 1000.0);
  Ts_obs.Metrics.incr m_stores

(* A cache must never take the computation down with it: a failed write
   (disk full, unwritable store, injected fault) degrades the run to
   uncached — warned once, counted every time. *)
let store t ~key v =
  try store_exn t ~key v
  with e ->
    Ts_obs.Metrics.incr m_degraded;
    Ts_resil.Warn.once ~key:"persist.store"
      (Printf.sprintf
         "result-cache write failed (%s); continuing uncached"
         (Printexc.to_string e))

let memo t ~key f =
  match t with
  | None -> f ()
  | Some t -> (
      match find t ~key with
      | Some v -> v
      | None ->
          let v = f () in
          store t ~key v;
          v)

module Journal = struct
  type j = {
    path : string;
    done_ : (string, string) Hashtbl.t; (* id -> marshalled payload *)
    mutable oc : out_channel option;
    jlock : Mutex.t;
  }

  let journal_path t name = Filename.concat (Filename.concat t.root "journals") (name ^ ".j")

  (* Parse as much of the log as is well formed — whatever fingerprint it
     was written under, so a mismatch can still report what it is
     discarding. A crash mid-append leaves a truncated tail, which just
     ends the replay early. *)
  let parse s =
    let mlen = String.length journal_magic in
    let hlen = mlen + 1 + 32 + 1 in
    (* "tsj1 " ^ 32 hex ^ "\n" *)
    if
      String.length s < hlen
      || String.sub s 0 mlen <> journal_magic
      || s.[mlen] <> ' '
      || s.[hlen - 1] <> '\n'
    then None
    else begin
      let disk_fp = String.sub s (mlen + 1) 32 in
      let tbl = Hashtbl.create 64 in
      let pos = ref hlen and ok = ref true in
      while !ok do
        match String.index_from_opt s !pos '\n' with
        | None -> ok := false
        | Some nl -> (
            let line = String.sub s !pos (nl - !pos) in
            match Scanf.sscanf_opt line "r %d %d" (fun a b -> (a, b)) with
            | Some (idl, pl)
              when idl >= 0 && pl >= 0 && nl + 1 + idl + pl + 1 <= String.length s
                   && s.[nl + 1 + idl + pl] = '\n' ->
                let id = String.sub s (nl + 1) idl in
                Hashtbl.replace tbl id (String.sub s (nl + 1 + idl) pl);
                pos := nl + 1 + idl + pl + 1
            | _ -> ok := false)
      done;
      Some (disk_fp, tbl)
    end

  let load t ~name ~fingerprint ~resume =
    Ts_obs.Prof.span "persist.journal.load" @@ fun () ->
    Ts_resil.Fault.guard "journal.open";
    let path = journal_path t name in
    let fingerprint = digest_hex fingerprint in
    let fresh () =
      let oc = open_out_bin path in
      output_string oc (journal_magic ^ " " ^ fingerprint ^ "\n");
      flush oc;
      { path; done_ = Hashtbl.create 64; oc = Some oc; jlock = Mutex.create () }
    in
    if not (resume && Sys.file_exists path) then fresh ()
    else
      match (try parse (read_file path) with _ -> None) with
      | Some (disk_fp, done_) when disk_fp = fingerprint ->
          Ts_obs.Metrics.incr ~by:(Hashtbl.length done_) m_replayed;
          (* Keep appending to the same log: ids recorded twice are fine,
             the last record wins at the next replay. *)
          let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
          { path; done_; oc = Some oc; jlock = Mutex.create () }
      | Some (disk_fp, stale) ->
          (* The journal is real but was written by a run with different
             inputs (configuration, limit or code version): its items
             would be stale. Say what is being thrown away — a silent
             discard looks exactly like a lost journal. *)
          Ts_obs.Metrics.incr m_j_discarded;
          Ts_resil.Warn.once
            ~key:("persist.journal.fingerprint:" ^ name)
            (Printf.sprintf
               "discarding journal %s: its fingerprint %s… does not match \
                this run's %s… — %d completed item(s) were recorded under a \
                different configuration or code version and will be recomputed"
               path (String.sub disk_fp 0 8)
               (String.sub fingerprint 0 8)
               (Hashtbl.length stale));
          fresh ()
      | None ->
          Ts_obs.Metrics.incr m_j_discarded;
          Ts_resil.Warn.once
            ~key:("persist.journal.corrupt:" ^ name)
            (Printf.sprintf
               "discarding journal %s: unreadable or corrupt header; the \
                sweep restarts from scratch"
               path);
          fresh ()

  let find (type a) j ~id : a option =
    match Hashtbl.find_opt j.done_ id with
    | None -> None
    | Some payload -> ( try Some (Marshal.from_string payload 0 : a) with _ -> None)

  (* A journal write failure (disk full, injected fault) degrades the
     sweep to journal-less: the computation continues, later records are
     dropped, and a --resume recomputes whatever went unrecorded. *)
  let record j ~id v =
    Ts_obs.Prof.span "persist.journal.write" @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let payload = Marshal.to_string v [] in
    Fun.protect ~finally:(fun () ->
        Ts_obs.Metrics.observe m_j_write_ms
          ((Unix.gettimeofday () -. t0) *. 1000.0))
    @@ fun () ->
    Mutex.lock j.jlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock j.jlock)
      (fun () ->
        match j.oc with
        | None -> ()
        | Some oc -> (
            try
              Ts_resil.Fault.guard "journal.write";
              Printf.fprintf oc "r %d %d\n" (String.length id)
                (String.length payload);
              output_string oc id;
              output_string oc payload;
              output_char oc '\n';
              flush oc
            with e ->
              close_out_noerr oc;
              j.oc <- None;
              Ts_obs.Metrics.incr m_j_degraded;
              Ts_resil.Warn.once ~key:"persist.journal.write"
                (Printf.sprintf
                   "journal write failed (%s); the sweep continues without a \
                    journal (a --resume will recompute unrecorded items)"
                   (Printexc.to_string e))))

  let finish j =
    (match j.oc with Some oc -> close_out_noerr oc | None -> ());
    j.oc <- None;
    try Sys.remove j.path with Sys_error _ -> ()
end
