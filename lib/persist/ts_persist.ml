(* On-disk layout:

     <dir>/version        human-readable store format stamp
     <dir>/objects/<k0k1>/<key>.bin
     <dir>/journals/<name>.j

   Entry format ("tsp1" magic):

     tsp1 <payload-digest-hex>\n<marshalled payload>

   Journal format ("tsj1" magic):

     tsj1 <fingerprint-hex>\n
     r <id-length> <payload-length>\n<id><marshalled payload>\n  (repeated)

   The magics double as the format version: bumping them makes every old
   entry unreadable, which the readers below treat as a miss. *)

let m_hits = Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.hits"
let m_misses = Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.misses"
let m_stores = Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.stores"

let m_replayed =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.journal.replayed"

type t = { root : string; lock : Mutex.t; mutable tmp_seq : int }

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    (try Sys.mkdir path 0o755
     with Sys_error _ when Sys.file_exists path -> ())
  end

let entry_magic = "tsp1"
let journal_magic = "tsj1"

let open_store ~dir =
  mkdir_p (Filename.concat dir "objects");
  mkdir_p (Filename.concat dir "journals");
  let vfile = Filename.concat dir "version" in
  if not (Sys.file_exists vfile) then begin
    let oc = open_out vfile in
    output_string oc "tsms result store, entry format tsp1, journal tsj1\n";
    close_out oc
  end;
  { root = dir; lock = Mutex.create (); tmp_seq = 0 }

let dir t = t.root

let default_dir () =
  match Sys.getenv_opt "TSMS_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Filename.concat d "tsms"
      | _ -> (
          match Sys.getenv_opt "HOME" with
          | Some h when h <> "" ->
              Filename.concat (Filename.concat h ".cache") "tsms"
          | _ -> "_tsms_cache"))

let digest_hex s = Digest.to_hex (Digest.string s)

let entry_path t key =
  let shard = if String.length key >= 2 then String.sub key 0 2 else "xx" in
  Filename.concat
    (Filename.concat (Filename.concat t.root "objects") shard)
    (key ^ ".bin")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every failure mode — missing file, bad magic, digest mismatch,
   truncated marshal — is a miss; a cache must never take the computation
   down with it. *)
let find (type a) t ~key : a option =
  let path = entry_path t key in
  let parsed =
    try
      let s = read_file path in
      (* "tsp1 " ^ 32 hex ^ "\n" *)
      let hdr = String.length entry_magic + 1 + 32 + 1 in
      if
        String.length s >= hdr
        && String.sub s 0 (String.length entry_magic) = entry_magic
        && s.[hdr - 1] = '\n'
      then begin
        let want = String.sub s (String.length entry_magic + 1) 32 in
        let payload = String.sub s hdr (String.length s - hdr) in
        if Digest.to_hex (Digest.string payload) = want then
          Some (Marshal.from_string payload 0 : a)
        else None
      end
      else None
    with _ -> None
  in
  (match parsed with
  | Some _ -> Ts_obs.Metrics.incr m_hits
  | None ->
      Ts_obs.Metrics.incr m_misses;
      if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ()));
  parsed

let store t ~key v =
  let payload = Marshal.to_string v [] in
  let path = entry_path t key in
  mkdir_p (Filename.dirname path);
  let tmp =
    Mutex.lock t.lock;
    let seq = t.tmp_seq in
    t.tmp_seq <- seq + 1;
    Mutex.unlock t.lock;
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) seq
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc entry_magic;
     output_char oc ' ';
     output_string oc (Digest.to_hex (Digest.string payload));
     output_char oc '\n';
     output_string oc payload;
     close_out oc;
     Sys.rename tmp path
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Ts_obs.Metrics.incr m_stores

let memo t ~key f =
  match t with
  | None -> f ()
  | Some t -> (
      match find t ~key with
      | Some v -> v
      | None ->
          let v = f () in
          store t ~key v;
          v)

module Journal = struct
  type j = {
    path : string;
    done_ : (string, string) Hashtbl.t; (* id -> marshalled payload *)
    mutable oc : out_channel option;
    jlock : Mutex.t;
  }

  let journal_path t name = Filename.concat (Filename.concat t.root "journals") (name ^ ".j")

  (* Parse as much of the log as is well formed; a crash mid-append leaves
     a truncated tail, which just ends the replay early. *)
  let parse ~fingerprint s =
    let tbl = Hashtbl.create 64 in
    let header = journal_magic ^ " " ^ fingerprint ^ "\n" in
    let hlen = String.length header in
    if String.length s < hlen || String.sub s 0 hlen <> header then None
    else begin
      let pos = ref hlen and ok = ref true in
      while !ok do
        match String.index_from_opt s !pos '\n' with
        | None -> ok := false
        | Some nl -> (
            let line = String.sub s !pos (nl - !pos) in
            match Scanf.sscanf_opt line "r %d %d" (fun a b -> (a, b)) with
            | Some (idl, pl)
              when idl >= 0 && pl >= 0 && nl + 1 + idl + pl + 1 <= String.length s
                   && s.[nl + 1 + idl + pl] = '\n' ->
                let id = String.sub s (nl + 1) idl in
                Hashtbl.replace tbl id (String.sub s (nl + 1 + idl) pl);
                pos := nl + 1 + idl + pl + 1
            | _ -> ok := false)
      done;
      Some tbl
    end

  let load t ~name ~fingerprint ~resume =
    let path = journal_path t name in
    let fingerprint = digest_hex fingerprint in
    let recovered =
      if resume && Sys.file_exists path then
        try parse ~fingerprint (read_file path) with _ -> None
      else None
    in
    match recovered with
    | Some done_ ->
        Ts_obs.Metrics.incr ~by:(Hashtbl.length done_) m_replayed;
        (* Keep appending to the same log: ids recorded twice are fine,
           the last record wins at the next replay. *)
        let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
        { path; done_; oc = Some oc; jlock = Mutex.create () }
    | None ->
        let oc = open_out_bin path in
        output_string oc (journal_magic ^ " " ^ fingerprint ^ "\n");
        flush oc;
        { path; done_ = Hashtbl.create 64; oc = Some oc; jlock = Mutex.create () }

  let find (type a) j ~id : a option =
    match Hashtbl.find_opt j.done_ id with
    | None -> None
    | Some payload -> ( try Some (Marshal.from_string payload 0 : a) with _ -> None)

  let record j ~id v =
    match j.oc with
    | None -> ()
    | Some oc ->
        let payload = Marshal.to_string v [] in
        Mutex.lock j.jlock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock j.jlock)
          (fun () ->
            Printf.fprintf oc "r %d %d\n" (String.length id)
              (String.length payload);
            output_string oc id;
            output_string oc payload;
            output_char oc '\n';
            flush oc)

  let finish j =
    (match j.oc with Some oc -> close_out_noerr oc | None -> ());
    j.oc <- None;
    try Sys.remove j.path with Sys_error _ -> ()
end
