(** Persistent, content-addressed result store with resumable sweep
    journals.

    Scheduling a loop and simulating it to steady state is deterministic:
    the result is a pure function of the loop's DDG, the machine
    configuration, the address-plan seed and the trip/warmup counts. This
    store memoises those results on disk so regenerating an experiment
    table is a cache lookup per loop instead of a schedule search plus a
    few hundred thousand simulated cycles, and so a killed sweep resumes
    from its last completed loop instead of from scratch.

    Keys are caller-supplied digests (see {!digest_hex}); the store never
    interprets them. Values go through [Marshal], so they must be plain
    data (no closures) and are only readable by the binary that wrote
    them — both restrictions are fine for a cache, where the worst case
    of a mismatch is a recompute.

    Robustness guarantees:

    - {b Atomic writes}: entries are written to a tempfile in the store
      and renamed into place, so readers (including concurrent processes)
      never see a partial entry.
    - {b Corruption tolerance}: every entry carries a format magic and a
      digest of its payload. A truncated, corrupted or
      wrong-binary-version entry reads as [None] (and is deleted best
      effort) — the caller recomputes; nothing ever escalates to an
      exception.
    - {b Crash-safe journals}: sweep journals are append-only and flushed
      per record; a journal with a truncated tail replays every record
      before the truncation point.
    - {b Write degradation}: a failed entry write (disk full, unwritable
      store) never aborts the computation — {!store} warns once, counts
      [persist.degraded], and the run continues uncached. A failed
      journal append likewise degrades the sweep to journal-less
      ([persist.journal.degraded]).

    Every I/O path is instrumented with {!Ts_resil.Fault} counter points
    ([persist.open], [persist.read], [persist.write] — kind [torn]
    supported — [persist.rename], [journal.open], [journal.write]), so
    each degradation above is exercisable deterministically in tests.

    Hit/miss/store counters land on {!Ts_obs.Metrics.default} under
    [persist.*]. All operations are domain-safe. *)

module Lru = Lru
(** The in-memory LRU front for this store (re-exported:
    [Ts_persist.Lru]). See {!Lru}. *)

type t
(** An open store rooted at a directory. *)

val open_store : dir:string -> t
(** Open (creating directories as needed) the store rooted at [dir].
    Raises [Sys_error] if the directory cannot be created. *)

val dir : t -> string

val default_dir : unit -> string
(** Where the CLI puts the store unless told otherwise:
    [$TSMS_CACHE_DIR], else [$XDG_CACHE_HOME/tsms], else
    [$HOME/.cache/tsms], else [_tsms_cache] in the working directory
    (warned once — resumes started elsewhere would miss it). The result
    is always an absolute path, so a [--resume] run finds the same cache
    and journal whatever directory it starts from. *)

val digest_hex : string -> string
(** Hex digest of an arbitrary (binary) string — the key constructor.
    Callers serialise whatever identifies a computation (loop structure,
    config, trip counts, a code-version stamp) and digest it. *)

val find : t -> key:string -> 'a option
(** Look the key up. [None] on absence or corruption (the unreadable
    entry is removed best effort). The ['a] is whatever {!store} put
    there — callers keep key spaces for different result types disjoint
    by construction (a kind tag inside the digested string). *)

val store : t -> key:string -> 'a -> unit
(** Write atomically (tempfile + rename; concurrent writers of the same
    key are safe, last rename wins). Never raises: a write failure warns
    once, increments [persist.degraded] and leaves the run uncached for
    this entry — the cache must never take the computation down with
    it. *)

val memo : t option -> key:string -> (unit -> 'a) -> 'a
(** [memo (Some s) ~key f] is [find]-else-[f ()]-and-[store]; [memo None]
    is just [f ()] — callers thread an optional store through without
    branching. *)

(** {2 Sweep journals}

    A journal is an append-only log of per-item results for one sweep
    (one experiment driver run). Drivers record each item as it
    completes; a resumed run replays completed items and recomputes only
    the rest. The journal is deleted when the sweep {!Journal.finish}es,
    so a journal file on disk means an interrupted run. *)

module Journal : sig
  type j

  val load : t -> name:string -> fingerprint:string -> resume:bool -> j
  (** Open the journal [name]. With [resume:false], or when the on-disk
      journal was written with a different [fingerprint] (different
      config, limit or code version — its items would be stale), any
      existing log is discarded and the journal starts empty. A
      [resume:true] discard is never silent: the warning names the
      journal, both fingerprints and how many completed items are being
      thrown away, and [persist.journal.discarded] counts it. With
      [resume:true] and a matching fingerprint, previously recorded items
      become available to {!find}. *)

  val find : j -> id:string -> 'a option
  (** The recorded result of item [id], if the (possibly resumed) sweep
      already completed it. [None] on absence or a corrupt record. *)

  val record : j -> id:string -> 'a -> unit
  (** Append item [id]'s result and flush, so it survives a kill at any
      later point. Domain-safe. A write failure degrades the journal to
      journal-less (warned once, [persist.journal.degraded]); the sweep
      itself continues. *)

  val finish : j -> unit
  (** Close and delete the journal: the sweep completed, there is nothing
      to resume. *)
end
