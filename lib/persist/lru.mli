(** Size-bounded in-memory LRU map, keyed by string.

    The in-memory front of the result-cache tier: the content-addressed
    {!Ts_persist} store stays the durable, shared layer, and an [Lru.t]
    in front of it keeps the hottest entries out of the filesystem
    entirely — a hit costs a hashtable probe and two pointer swaps, never
    an [open]/[read]/digest pass (and never a [persist.read_ms]
    observation).

    All operations are domain-safe (one mutex per cache; the critical
    sections are a few pointer updates). Eviction is strict LRU: [put]
    beyond capacity evicts the least recently used entry, and both [put]
    and a [find] hit refresh recency. *)

type 'a t

val create : ?metrics_prefix:string -> capacity:int -> unit -> 'a t
(** New cache holding at most [capacity] entries. When [metrics_prefix]
    is given (e.g. ["serve.lru"]), registers
    [<prefix>.hits]/[<prefix>.misses]/[<prefix>.evictions] counters and
    an [<prefix>.entries] gauge on {!Ts_obs.Metrics.default} and keeps
    them current.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Look up a key, refreshing its recency on a hit. Counts one hit or
    miss. *)

val put : 'a t -> string -> 'a -> unit
(** Insert or replace a binding as the most recently used entry,
    evicting the least recently used one when the cache is full. *)

val keys_mru_first : 'a t -> string list
(** Current keys, most recently used first — the exact eviction order
    reversed. For tests and introspection. *)

val clear : 'a t -> unit
