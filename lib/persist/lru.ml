(* Hashtable + intrusive doubly-linked recency list under one mutex.
   [sentinel.next] is the MRU end, [sentinel.prev] the LRU end; the
   sentinel is its own neighbour when the cache is empty. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node;
  mutable next : 'a node;
}

type 'a metrics = {
  hits : Ts_obs.Metrics.counter;
  misses : Ts_obs.Metrics.counter;
  evictions : Ts_obs.Metrics.counter;
  entries : Ts_obs.Metrics.gauge;
}

type 'a t = {
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  sentinel : 'a node;
  lock : Mutex.t;
  m : 'a metrics option;
}

let create ?metrics_prefix ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  let rec sentinel =
    { key = ""; value = Obj.magic (); prev = sentinel; next = sentinel }
  in
  let m =
    match metrics_prefix with
    | None -> None
    | Some p ->
        let r = Ts_obs.Metrics.default in
        Some
          {
            hits = Ts_obs.Metrics.counter r (p ^ ".hits");
            misses = Ts_obs.Metrics.counter r (p ^ ".misses");
            evictions = Ts_obs.Metrics.counter r (p ^ ".evictions");
            entries = Ts_obs.Metrics.gauge r (p ^ ".entries");
          }
  in
  { cap = capacity; tbl = Hashtbl.create (2 * capacity); sentinel; lock = Mutex.create (); m }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

(* Insert [n] at the MRU end, just after the sentinel. *)
let link_mru t n =
  n.prev <- t.sentinel;
  n.next <- t.sentinel.next;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let set_entries t =
  match t.m with
  | None -> ()
  | Some m ->
      Ts_obs.Metrics.set_gauge m.entries (float_of_int (Hashtbl.length t.tbl))

let find t key =
  let r =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | None -> None
        | Some n ->
            unlink n;
            link_mru t n;
            Some n.value)
  in
  (match (t.m, r) with
  | Some m, Some _ -> Ts_obs.Metrics.incr m.hits
  | Some m, None -> Ts_obs.Metrics.incr m.misses
  | None, _ -> ());
  r

let put t key value =
  let evicted =
    locked t (fun () ->
        (match Hashtbl.find_opt t.tbl key with
        | Some n ->
            n.value <- value;
            unlink n;
            link_mru t n
        | None ->
            let rec n = { key; value; prev = n; next = n } in
            Hashtbl.replace t.tbl key n;
            link_mru t n);
        if Hashtbl.length t.tbl > t.cap then begin
          let lru = t.sentinel.prev in
          unlink lru;
          Hashtbl.remove t.tbl lru.key;
          true
        end
        else false)
  in
  (match t.m with
  | Some m when evicted -> Ts_obs.Metrics.incr m.evictions
  | _ -> ());
  set_entries t

let keys_mru_first t =
  locked t (fun () ->
      let rec go acc n =
        if n == t.sentinel then List.rev acc else go (n.key :: acc) n.next
      in
      go [] t.sentinel.next)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.sentinel.next <- t.sentinel;
      t.sentinel.prev <- t.sentinel);
  set_entries t
