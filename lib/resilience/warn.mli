(** Process-wide warn-once.

    Infrastructure degradations (a cache write failing on a full disk, a
    discarded journal) should tell the user what happened exactly once
    and then stay quiet: the event is still counted by its metric, but a
    778-loop sweep must not print 778 copies of the same warning.

    Warnings go to [stderr] by default ("tsms: warning: ..."); tests
    install a capturing sink with {!set_sink}. All operations are
    domain-safe. *)

val once : key:string -> string -> unit
(** [once ~key msg] emits [msg] the first time [key] is seen and is a
    no-op on every later call with the same [key]. *)

val set_sink : (string -> unit) option -> unit
(** Replace the output sink ([None] restores the default stderr
    printer). The sink receives the raw message, without the
    ["tsms: warning: "] prefix the default printer adds. *)

val reset : unit -> unit
(** Forget every seen key, so the next {!once} per key emits again.
    For tests. *)
