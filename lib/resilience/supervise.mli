(** Supervised parallel sweeps: retries, deadlines, full failure
    aggregation and keep-going degradation over {!Ts_base.Parallel}.

    The experiment harness runs hundreds of independent loop tasks per
    sweep. A bare [Parallel.map] turns one failing task into an aborted
    sweep; this module gives every task a retry budget with deterministic
    backoff, reports {e every} failed task (with its input index and
    label, not just the first exception), and — in keep-going mode — lets
    the sweep finish the surviving tasks and report the casualties at the
    end.

    Determinism: retries re-run the same pure task, and backoff delays
    are a fixed function of the policy ([backoff_ms * 2^(attempt-1)]), so
    an injected-fault run whose retries all eventually succeed returns
    bit-identical results to a fault-free run. Per-task deadlines are
    {e reported, never enforced}: OCaml domains cannot be safely
    preempted, and discarding a completed result on wall-clock grounds
    would make results timing-dependent — an overrun increments
    [supervise.deadline_exceeded] and warns once per task label, keeping
    the result.

    Metrics: [supervise.retries], [supervise.failures],
    [supervise.deadline_exceeded] on {!Ts_obs.Metrics.default}. *)

type policy = {
  max_retries : int;  (** extra attempts after the first (0 = no retry) *)
  backoff_ms : int;  (** attempt [k+1] waits [backoff_ms * 2^(k-1)] ms *)
  deadline_ms : int option;  (** soft per-task deadline, report-only *)
}

val default_policy : policy
(** [{ max_retries = 0; backoff_ms = 100; deadline_ms = None }] *)

type failure = {
  index : int;  (** input position in the sweep *)
  label : string;  (** human-readable task id, e.g. ["fig4/applu/loop3"] *)
  attempts : int;  (** attempts made (1 + retries) *)
  error : string;  (** [Printexc.to_string] of the last exception *)
}

exception Failures of failure list
(** Every failed task of a sweep, aggregated, in input order. *)

val backoff_delays_ms : policy -> int list
(** The deterministic backoff sequence: the delay before each retry. *)

val attempt_task :
  policy:policy ->
  point:string ->
  label:string ->
  index:int ->
  ('a -> 'b) ->
  'a ->
  ('b, failure) result
(** One supervised task, inline on the calling domain: up to
    [1 + max_retries] attempts with the deterministic backoff, the
    report-only deadline, and the [(index, attempt)] {!Fault} task keys —
    the single-item building block the server uses to give every request
    its own retry/deadline policy without a sweep. Domain-safe: the
    retry/failure/deadline counters are atomic and the warn-once table is
    locked, so concurrent pool workers can each run their own. *)

val map :
  ?jobs:int ->
  ?policy:policy ->
  ?point:string ->
  ?label:(int -> string) ->
  ('a -> 'b) ->
  'a list ->
  ('b, failure) result list
(** [map f xs] runs every task under the policy (default
    {!default_policy}) on the {!Ts_base.Parallel} pool and returns
    per-task outcomes in input order — no exception short-circuits the
    sweep. [point] (default ["worker"]) is the {!Fault} task point
    checked before each attempt; [label] names tasks in failures and
    warnings (default: the index). *)

(** {2 Run context}

    Process-wide sweep configuration, set once by the CLI front ends
    ([--keep-going], [--max-retries], [--task-timeout]) and consulted by
    every driver's {!sweep_map}. *)

val set_keep_going : bool -> unit
val keep_going : unit -> bool

val set_policy : policy -> unit
(** The policy {!sweep_map} uses. *)

val policy : unit -> policy

val sweep_map :
  ?jobs:int ->
  what:string ->
  label:(int -> 'a -> string) ->
  ('a -> 'b) ->
  'a list ->
  'b option list
(** The drivers' entry point. Like {!map} with the run-context policy and
    labels prefixed ["what/"], then:

    - keep-going off (default): if any task failed, raises {!Failures}
      with {e all} of them (every task still ran or was retried first);
    - keep-going on: failed tasks come back as [None], their failures are
      recorded in the run context for the end-of-run {!summary}, and the
      sweep completes. *)

val failures : unit -> failure list
(** Failures recorded by keep-going sweeps since the last
    {!reset_failures}, in arrival order. *)

val reset_failures : unit -> unit

val render_failures : failure list -> string
(** The human failure summary ("sweep failures: N task(s) failed" plus
    one line per task). *)

val summary : unit -> string option
(** [render_failures] of the recorded failures; [None] when the run was
    clean. *)

val failures_of_exn : exn -> failure list option
(** Recognise sweep failures in a caught exception: {!Failures} directly,
    or a {!Ts_base.Parallel.Map_errors} whose items wrap nested
    {!Failures} (an outer pool level re-raising an inner sweep's). The
    CLIs use this to print one summary and exit non-zero. *)
