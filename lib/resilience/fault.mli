(** Deterministic, plan-driven fault injection.

    Every recovery path in the system — cache write failures, torn
    entries, worker exceptions, slow tasks, journal I/O errors — is
    reachable on demand through a {e fault plan}: a list of (point, key)
    pairs naming exactly which occurrences of which instrumented points
    must fail. Plans are explicit data (armed once, process-wide), so an
    injected-fault run is reproducible bit for bit, in the spirit of the
    fuzz subsystem's seeded generators.

    Instrumented points come in two keyings:

    - {b counter points} ({!check}, {!guard}): each call consumes one
      occurrence of the point, numbered from 1 in call order. Used by the
      persist layer ([persist.write], [persist.read], [persist.rename],
      [persist.open], [journal.open], [journal.write]) and the cached
      reconstruction path ([cached.reconstruct]). Occurrence numbering is
      deterministic for sequential callers (tests run with [--jobs 1]);
      under a domain pool only [*]-keyed entries are order-independent.
    - {b task points} ({!check_task}): the key is a caller-supplied task
      index plus a retry-attempt ordinal, so injection into the
      [worker] point of a supervised sweep hits the same input at any
      pool size.

    The plan text format (CLI [--fault-plan], [$TSMS_FAULT_PLAN] — comma
    separated entries):

    {v point@key[#attempt][:kind]
       key     = occurrence/index number, or * for every occurrence
       attempt = fail only this retry attempt (1-based; task points only)
       kind    = exn (default) | torn | slowMS   e.g. slow50 v}

    Examples: [persist.write@*] (every cache write fails),
    [worker@3] (sweep task 3 fails every attempt),
    [worker@*#1] (every task fails its first attempt, retries succeed),
    [persist.write@2:torn] (the second write leaves a torn entry). *)

type kind =
  | Exn  (** raise {!Injected} at the point *)
  | Torn  (** persist writes only: write a truncated payload "successfully" *)
  | Slow of int  (** sleep this many milliseconds, then proceed *)

type entry = {
  point : string;
  key : int option;  (** [None] = every occurrence / index *)
  attempt : int option;  (** [None] = every attempt *)
  kind : kind;
}

type plan = entry list

exception Injected of string
(** Raised (carrying the point name) by {!guard} and by supervised
    workers when an armed entry fires with kind {!Exn}. *)

val parse : string -> (plan, string) result
(** Parse the plan text format above. The empty string is the empty
    plan. *)

val to_string : plan -> string
(** Render a plan back to the text format ([parse]-[to_string] round
    trips). *)

val seeded : seed:int -> point:string -> n:int -> out_of:int -> plan
(** A seed-driven plan: [n] distinct occurrences of [point] drawn
    uniformly from [1..out_of] by a {!Ts_base.Rng} stream derived from
    [seed] — the same seed always yields the same plan. *)

val arm : plan -> unit
(** Install [plan] process-wide and reset every occurrence counter. *)

val disarm : unit -> unit
(** Remove the plan: every check becomes a no-op. *)

val armed : unit -> bool

val arm_from_env : unit -> (unit, string) result
(** Arm the plan in [$TSMS_FAULT_PLAN], if set and non-empty; [Error]
    describes a malformed plan (the CLIs turn it into a clean startup
    error). *)

val check : string -> kind option
(** Consume one occurrence of counter point [point] and return the armed
    fault for it, if any. Unarmed: [None] without counting. Each
    injection increments the [fault.injected] counter. *)

val check_task : string -> index:int -> attempt:int -> kind option
(** The armed fault for task [index]'s [attempt] at a task point, if
    any. Consumes nothing. *)

val guard : string -> unit
(** [guard point] acts on [check point]: raises {!Injected} for [Exn]
    (and [Torn], which only write sites interpret specially), sleeps for
    [Slow]. *)

val set_sleep : (float -> unit) option -> unit
(** Replace the sleep used by [Slow] faults and by supervised-retry
    backoff ([None] restores [Unix.sleepf]). Tests install a recorder:
    backoff sequences are then observable and instantaneous. *)

val sleep : float -> unit
(** The current sleep function (seconds). *)
