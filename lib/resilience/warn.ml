let seen : (string, unit) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let default_sink msg = Printf.eprintf "tsms: warning: %s\n%!" msg
let sink = Atomic.make default_sink

let set_sink = function
  | None -> Atomic.set sink default_sink
  | Some f -> Atomic.set sink f

let once ~key msg =
  let fresh =
    Mutex.lock lock;
    let fresh = not (Hashtbl.mem seen key) in
    if fresh then Hashtbl.replace seen key ();
    Mutex.unlock lock;
    fresh
  in
  if fresh then (Atomic.get sink) msg

let reset () =
  Mutex.lock lock;
  Hashtbl.reset seen;
  Mutex.unlock lock
