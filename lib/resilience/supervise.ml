type policy = { max_retries : int; backoff_ms : int; deadline_ms : int option }

let default_policy = { max_retries = 0; backoff_ms = 100; deadline_ms = None }

type failure = { index : int; label : string; attempts : int; error : string }

exception Failures of failure list

let () =
  Printexc.register_printer (function
    | Failures fs ->
        Some
          (Printf.sprintf "sweep failures (%d task(s)): %s"
             (List.length fs)
             (String.concat "; "
                (List.map (fun f -> f.label ^ ": " ^ f.error) fs)))
    | _ -> None)

let m_retries = Ts_obs.Metrics.counter Ts_obs.Metrics.default "supervise.retries"

let m_failures =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "supervise.failures"

let m_deadline =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "supervise.deadline_exceeded"

let backoff_delays_ms policy =
  List.init (max 0 policy.max_retries) (fun k -> policy.backoff_ms * (1 lsl k))

(* One attempt: a Fault check before it (so injected task faults can
   target a specific attempt) and the soft deadline measured around it —
   injected [Slow] time included. *)
let one_attempt ~policy ~point ~label ~index ~attempt f x =
  match
    let t0 = Unix.gettimeofday () in
    (match Fault.check_task point ~index ~attempt with
    | None -> ()
    | Some (Fault.Exn | Fault.Torn) -> raise (Fault.Injected point)
    | Some (Fault.Slow ms) -> Fault.sleep (float_of_int ms /. 1000.0));
    let v = f x in
    (match policy.deadline_ms with
    | Some d when (Unix.gettimeofday () -. t0) *. 1000.0 > float_of_int d ->
        Ts_obs.Metrics.incr m_deadline;
        Warn.once
          ~key:("supervise.deadline:" ^ label)
          (Printf.sprintf
             "task %s exceeded its %d ms deadline (completed; result kept)"
             label d)
    | _ -> ());
    v
  with
  | v -> Ok v
  | exception e -> Error e

(* One task, inline: up to [1 + max_retries] attempts with exponential
   backoff, all on the calling worker.  [sweep_map] uses the wave-based
   pool resubmission below instead. *)
let attempt_task ~policy ~point ~label ~index f x =
  let rec go attempt =
    match one_attempt ~policy ~point ~label ~index ~attempt f x with
    | Ok v -> Ok v
    | Error e ->
        if attempt <= policy.max_retries then begin
          Ts_obs.Metrics.incr m_retries;
          Fault.sleep
            (float_of_int (policy.backoff_ms * (1 lsl (attempt - 1))) /. 1000.0);
          go (attempt + 1)
        end
        else begin
          Ts_obs.Metrics.incr m_failures;
          Error { index; label; attempts = attempt; error = Printexc.to_string e }
        end
  in
  go 1

let map ?jobs ?(policy = default_policy) ?(point = "worker")
    ?(label = string_of_int) f xs =
  Ts_base.Parallel.map ?jobs
    (fun (i, x) -> attempt_task ~policy ~point ~label:(label i) ~index:i f x)
    (List.mapi (fun i x -> (i, x)) xs)

(* ---- run context ---- *)

let keep_going_flag = Atomic.make false
let set_keep_going b = Atomic.set keep_going_flag b
let keep_going () = Atomic.get keep_going_flag

let the_policy = Atomic.make default_policy
let set_policy p = Atomic.set the_policy p
let policy () = Atomic.get the_policy

let recorded : failure list ref = ref []
let recorded_lock = Mutex.create ()

let record fs =
  Mutex.lock recorded_lock;
  recorded := !recorded @ fs;
  Mutex.unlock recorded_lock

let failures () =
  Mutex.lock recorded_lock;
  let fs = !recorded in
  Mutex.unlock recorded_lock;
  fs

let reset_failures () =
  Mutex.lock recorded_lock;
  recorded := [];
  Mutex.unlock recorded_lock

(* Sweep retries ride the pool as resubmission waves: a failed attempt
   does not hold its worker through a backoff-and-retry loop.  Wave 1
   attempts every item; each failure with retries remaining becomes a
   fresh pool task in the next wave, which sleeps its own backoff before
   re-running — so surviving items keep the workers busy while
   stragglers back off.  Attempt numbering, backoff values, metric
   totals and the [(index, attempt)] fault-injection keys are identical
   to the inline loop in [attempt_task]. *)
let sweep_map ?jobs ~what ~label f xs =
  let policy = policy () in
  let items = Array.of_list xs in
  let n = Array.length items in
  let progress = Ts_obs.Progress.start ~what ~total:n in
  let results = Array.make n None in
  let rec waves pending =
    if pending <> [] then begin
      let outcomes =
        Ts_base.Parallel.map ?jobs
          (fun (i, attempt) ->
            (* The backoff before attempt [k] belongs to the retry's own
               task, not to the worker that ran attempt [k - 1]. *)
            if attempt > 1 then
              Fault.sleep
                (float_of_int (policy.backoff_ms * (1 lsl (attempt - 2)))
                /. 1000.0);
            one_attempt ~policy ~point:"worker"
              ~label:(what ^ "/" ^ label i items.(i))
              ~index:i ~attempt f
              items.(i))
          pending
      in
      let next =
        List.filter_map
          (fun ((i, attempt), r) ->
            match r with
            | Ok v ->
                results.(i) <- Some (Ok v);
                Ts_obs.Progress.step progress;
                None
            | Error _ when attempt <= policy.max_retries ->
                Ts_obs.Metrics.incr m_retries;
                Some (i, attempt + 1)
            | Error e ->
                Ts_obs.Metrics.incr m_failures;
                results.(i) <-
                  Some
                    (Error
                       {
                         index = i;
                         label = what ^ "/" ^ label i items.(i);
                         attempts = attempt;
                         error = Printexc.to_string e;
                       });
                Ts_obs.Progress.step progress;
                None)
          (List.combine pending outcomes)
      in
      waves next
    end
  in
  waves (List.init n (fun i -> (i, 1)));
  Ts_obs.Progress.finish progress;
  let results =
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  in
  let fails =
    List.filter_map (function Error f -> Some f | Ok _ -> None) results
  in
  if fails <> [] then
    if keep_going () then record fails else raise (Failures fails);
  List.map (function Ok v -> Some v | Error _ -> None) results

let render_failures fs =
  let b = Buffer.create 256 in
  Printf.bprintf b "sweep failures: %d task(s) failed\n" (List.length fs);
  List.iter
    (fun f ->
      Printf.bprintf b "  %s: %s (after %d attempt%s)\n" f.label f.error
        f.attempts
        (if f.attempts = 1 then "" else "s"))
    fs;
  Buffer.contents b

let summary () =
  match failures () with [] -> None | fs -> Some (render_failures fs)

let failures_of_exn = function
  | Failures fs -> Some fs
  | Ts_base.Parallel.Map_errors ies ->
      Some
        (List.concat_map
           (fun (i, e) ->
             match e with
             | Failures fs -> fs
             | e ->
                 [
                   {
                     index = i;
                     label = Printf.sprintf "task %d" i;
                     attempts = 1;
                     error = Printexc.to_string e;
                   };
                 ])
           ies)
  | _ -> None
