type kind = Exn | Torn | Slow of int

type entry = {
  point : string;
  key : int option;
  attempt : int option;
  kind : kind;
}

type plan = entry list

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected point -> Some (Printf.sprintf "injected fault at %s" point)
    | _ -> None)

let m_injected = Ts_obs.Metrics.counter Ts_obs.Metrics.default "fault.injected"

let the_plan : plan Atomic.t = Atomic.make []

(* Occurrence counters, one per counter point, reset on every [arm]. *)
let counters : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16
let counters_lock = Mutex.create ()

let counter_for point =
  Mutex.lock counters_lock;
  let c =
    match Hashtbl.find_opt counters point with
    | Some c -> c
    | None ->
        let c = Atomic.make 0 in
        Hashtbl.replace counters point c;
        c
  in
  Mutex.unlock counters_lock;
  c

let arm plan =
  Mutex.lock counters_lock;
  Hashtbl.reset counters;
  Mutex.unlock counters_lock;
  Atomic.set the_plan plan

let disarm () = arm []
let armed () = Atomic.get the_plan <> []

(* ---- plan text format ---- *)

let kind_to_string = function
  | Exn -> ""
  | Torn -> ":torn"
  | Slow ms -> Printf.sprintf ":slow%d" ms

let entry_to_string e =
  Printf.sprintf "%s@%s%s%s" e.point
    (match e.key with None -> "*" | Some k -> string_of_int k)
    (match e.attempt with None -> "" | Some a -> "#" ^ string_of_int a)
    (kind_to_string e.kind)

let to_string plan = String.concat "," (List.map entry_to_string plan)

let parse_kind = function
  | "" | "exn" -> Ok Exn
  | "torn" -> Ok Torn
  | s when String.length s > 4 && String.sub s 0 4 = "slow" -> (
      match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
      | Some ms when ms >= 0 -> Ok (Slow ms)
      | _ -> Error (Printf.sprintf "bad slow duration in %S" s))
  | "slow" -> Ok (Slow 50)
  | s -> Error (Printf.sprintf "unknown fault kind %S (want exn, torn or slowMS)" s)

let parse_entry s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "fault entry %S: expected point@key" s)
  | Some at -> (
      let point = String.sub s 0 at in
      let rest = String.sub s (at + 1) (String.length s - at - 1) in
      if point = "" then Error (Printf.sprintf "fault entry %S: empty point" s)
      else
        let keypart, kindpart =
          match String.index_opt rest ':' with
          | None -> (rest, "")
          | Some c ->
              ( String.sub rest 0 c,
                String.sub rest (c + 1) (String.length rest - c - 1) )
        in
        let keystr, attempt =
          match String.index_opt keypart '#' with
          | None -> (keypart, Ok None)
          | Some h -> (
              let a = String.sub keypart (h + 1) (String.length keypart - h - 1) in
              ( String.sub keypart 0 h,
                match int_of_string_opt a with
                | Some n when n >= 1 -> Ok (Some n)
                | _ -> Error (Printf.sprintf "bad attempt %S in %S" a s) ))
        in
        let key =
          match keystr with
          | "*" -> Ok None
          | k -> (
              match int_of_string_opt k with
              | Some n when n >= 0 -> Ok (Some n)
              | _ -> Error (Printf.sprintf "bad key %S in %S (want N or *)" k s))
        in
        match (key, attempt, parse_kind kindpart) with
        | Ok key, Ok attempt, Ok kind -> Ok { point; key; attempt; kind }
        | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)

let parse s =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  List.fold_left
    (fun acc p ->
      match (acc, parse_entry p) with
      | Error e, _ -> Error e
      | _, Error e -> Error e
      | Ok plan, Ok e -> Ok (plan @ [ e ]))
    (Ok []) parts

let arm_from_env () =
  match Sys.getenv_opt "TSMS_FAULT_PLAN" with
  | None | Some "" -> Ok ()
  | Some s -> (
      match parse s with
      | Ok plan ->
          arm plan;
          Ok ()
      | Error e -> Error (Printf.sprintf "TSMS_FAULT_PLAN: %s" e))

let seeded ~seed ~point ~n ~out_of =
  let rng = Ts_base.Rng.of_string (Printf.sprintf "fault:%s:%d" point seed) in
  let picked = Hashtbl.create 16 in
  let n = min n out_of in
  while Hashtbl.length picked < n do
    Hashtbl.replace picked (1 + Ts_base.Rng.int rng out_of) ()
  done;
  Hashtbl.fold (fun occ () acc -> occ :: acc) picked []
  |> List.sort compare
  |> List.map (fun occ -> { point; key = Some occ; attempt = None; kind = Exn })

(* ---- matching ---- *)

let find_fault ~point ~at ~attempt =
  List.find_map
    (fun e ->
      if
        e.point = point
        && (match e.key with None -> true | Some k -> k = at)
        && match e.attempt with None -> true | Some a -> a = attempt
      then Some e.kind
      else None)
    (Atomic.get the_plan)

let check point =
  if Atomic.get the_plan = [] then None
  else
    let occ = 1 + Atomic.fetch_and_add (counter_for point) 1 in
    match find_fault ~point ~at:occ ~attempt:1 with
    | Some k ->
        Ts_obs.Metrics.incr m_injected;
        Some k
    | None -> None

let check_task point ~index ~attempt =
  if Atomic.get the_plan = [] then None
  else
    match find_fault ~point ~at:index ~attempt with
    | Some k ->
        Ts_obs.Metrics.incr m_injected;
        Some k
    | None -> None

(* ---- sleep hook (shared with supervised-retry backoff) ---- *)

let default_sleep s = if s > 0.0 then Unix.sleepf s
let sleep_fn = Atomic.make default_sleep

let set_sleep = function
  | None -> Atomic.set sleep_fn default_sleep
  | Some f -> Atomic.set sleep_fn f

let sleep s = (Atomic.get sleep_fn) s

let guard point =
  match check point with
  | None -> ()
  | Some (Exn | Torn) -> raise (Injected point)
  | Some (Slow ms) -> sleep (float_of_int ms /. 1000.0)
