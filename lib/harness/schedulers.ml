module K = Ts_modsched.Kernel

type row = {
  loop : string;
  variant : string;
  ii : int;
  c_delay : int;
  misspec_static : float;
  cycles_per_iter : float;
  misspec_dynamic : float;
}

let compute ~cfg =
  let params = cfg.Ts_spmt.Config.params in
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
  let trip = 1500 and warmup = Defaults.warmup in
  List.concat_map
    (fun (sel : Ts_workload.Doacross.selected) ->
      match Scaling.first_loop ~where:"Schedulers.compute" sel with
      | None -> []
      | Some g ->
      let variants =
        [
          ("sms", (Cached.sms g).Ts_sms.Sms.kernel);
          ("ims", (Cached.ims g).Ts_sms.Ims.kernel);
          ("ts-sms", (Cached.tms_sweep ~params g).Ts_tms.Tms.kernel);
          ("ts-sms-c1", (Cached.tms ~p_max:1.0 ~params g).Ts_tms.Tms.kernel);
          ("ts-ims", (Cached.tms_ims ~params g).Ts_tms.Tms.kernel);
        ]
      in
      List.map
        (fun (variant, k) ->
          let st = Cached.sim ~warmup cfg k ~trip in
          {
            loop = g.Ts_ddg.Ddg.name;
            variant;
            ii = k.K.ii;
            c_delay = K.c_delay k ~c_reg_com;
            misspec_static = Ts_tms.Overheads.misspec_prob k ~c_reg_com;
            cycles_per_iter = float_of_int st.Ts_spmt.Sim.cycles /. float_of_int trip;
            misspec_dynamic = st.Ts_spmt.Sim.misspec_rate;
          })
        variants)
    Ts_workload.Doacross.all

let render rows =
  let open Ts_base.Tablefmt in
  let t =
    create
      ~title:
        "Scheduler ablation: base algorithm (SMS vs IMS) and admission conditions"
      [
        ("Loop", Left); ("Variant", Left); ("II", Right); ("C_delay", Right);
        ("P_M", Right); ("cycles/iter", Right); ("misspec", Right);
      ]
  in
  let last = ref "" in
  List.iter
    (fun r ->
      if !last <> "" && !last <> r.loop then add_sep t;
      last := r.loop;
      add_row t
        [
          r.loop; r.variant; cell_int r.ii; cell_int r.c_delay;
          Printf.sprintf "%.3f" r.misspec_static;
          cell_f2 r.cycles_per_iter;
          Printf.sprintf "%.3f%%" (r.misspec_dynamic *. 100.0);
        ])
    rows;
  render t
