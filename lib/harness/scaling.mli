(** Insights experiment: core-count scaling.

    Section 5 closes by analysing where further speedups would come from;
    the cost model says the serial component [max(C_spn, C_ci, C_delay)]
    caps scaling once [T_lb / ncore] falls below it. This bench measures
    the DOACROSS loops on 2/4/8/16 cores under SMS and TMS: TMS keeps
    scaling until its small C_delay becomes the wall, while SMS hits its
    large C_delay almost immediately — the gap between the two grows with
    the core count. *)

type row = {
  bench : string;
  ncore : int;
  sms_cpi : float;  (** SMS cycles per iteration *)
  tms_cpi : float;
  tms_gain : float;  (** percent speedup of TMS over SMS *)
  model_floor : float;  (** the cost model's serial floor for the TMS schedule *)
}

val first_loop :
  where:string -> Ts_workload.Doacross.selected -> Ts_ddg.Ddg.t option
(** The benchmark's representative loop, or [None] (after a once-per-run
    warning naming the bench and [where]) when the selection is empty —
    the guard the harness drivers share instead of a bare [List.hd]. *)

val compute : ?ncores:int list -> unit -> row list
(** Default core counts: 2, 4, 8, 16. One representative loop per DOACROSS
    benchmark; schedules are re-derived per core count (the cost model
    depends on [ncore]). An empty benchmark selection is skipped with a
    warning rather than dying with [Failure "hd"]. *)

val render : row list -> string

(** {1 Placement × core-mix ablation}

    The heterogeneous-machine counterpart: each DOACROSS loop is
    scheduled and simulated on each core mix under each thread-to-core
    allocation policy. On the asymmetric mixes the policies produce
    different placement maps — locality's weighted ring walk loads the
    fast cores harder, sync keeps the dependence chain off the slow tier
    entirely — and the CPI column quantifies what each buys over the
    paper's round-robin. *)

type hrow = {
  h_bench : string;
  h_mix : string;  (** {!Ts_isa.Spmt_params.mix_of_string} grammar *)
  h_policy : Ts_isa.Placement.policy;
  h_map : string;  (** one period of the compiled thread→core map *)
  h_cpi : float;  (** TMS cycles per iteration under the policy *)
  h_sync_stalls : int;
  h_spawn_stalls : int;
}

val default_mixes : string list
(** ["4"] (the paper's machine) and ["2fast+2slow"]. *)

val compute_hetero :
  ?mixes:string list -> ?policies:Ts_isa.Placement.policy list -> unit ->
  hrow list
(** Schedules come from {!Ts_harness.Cached.tms_sweep} against the
    policy's {!Ts_isa.Placement.effective_params}; simulation runs under
    the policy itself. *)

val render_hetero : hrow list -> string
