(** Shared scheduling pass over the synthetic SPECfp2000 suite.

    Table 2 and Figure 4 both need every loop of every benchmark scheduled
    by SMS and by TMS; this module runs that once and the experiment
    modules aggregate it. *)

type loop_run = {
  g : Ts_ddg.Ddg.t;
  sms : Ts_sms.Sms.result;
  tms : Ts_tms.Tms.result;
}

val schedule_loop : params:Ts_isa.Spmt_params.t -> Ts_ddg.Ddg.t -> loop_run
(** SMS plus the TMS [P_max] sweep on one loop. *)

val run_bench :
  ?limit:int ->
  params:Ts_isa.Spmt_params.t ->
  Ts_workload.Spec_suite.bench ->
  loop_run list
(** All (or the first [limit]) loops of a benchmark, scheduled both ways,
    as a supervised sweep: under {!Ts_resil.Supervise.keep_going} a loop
    whose search fails is recorded and dropped from the result. *)
