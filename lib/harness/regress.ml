(* Bench regression gate: compare a fresh BENCH_*.json against a
   committed baseline.

   Only time-like numeric leaves are compared ([*wall_s], [*_ms] and the
   cache [warm_over_cold] ratio) and only one-sidedly — fresh must not
   exceed baseline by more than the tolerance factor. Derived
   higher-is-better numbers (speedups, attempts/sec) are redundant with
   the times they are computed from, and machines differ enough that a
   two-sided "too fast is also a failure" check would only produce
   noise. A time-like leaf present in the baseline but missing from the
   fresh run is a failure: silently dropping a workload is exactly how a
   regression hides. *)

module J = Ts_obs.Json

type verdict = {
  path : string;
  baseline : float;
  fresh : float;
  ratio : float;
  ok : bool;
}

type outcome = {
  what : string;
  tolerance : float;
  verdicts : verdict list;
  missing : string list;
}

let time_like key =
  let ends_with suf = String.length key >= String.length suf
    && String.sub key (String.length key - String.length suf) (String.length suf) = suf
  in
  ends_with "wall_s" || ends_with "_ms" || key = "warm_over_cold"

(* Flatten a JSON document to its time-like numeric leaves, keyed by a
   dotted path ("workloads[3].wall_s"). Array elements keep their index:
   bench output order is deterministic, so paths line up between runs. *)
let leaves (j : J.t) =
  let acc = ref [] in
  let rec go path key j =
    match j with
    | J.Obj fields ->
        List.iter (fun (k, v) -> go (path ^ (if path = "" then "" else ".") ^ k) k v) fields
    | J.List items ->
        List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" path i) key v) items
    | J.Int n -> if time_like key then acc := (path, float_of_int n) :: !acc
    | J.Float f -> if time_like key then acc := (path, f) :: !acc
    | J.Null | J.Bool _ | J.Str _ -> ()
  in
  go "" "" j;
  List.rev !acc

let compare_json ~what ~tolerance ~baseline ~fresh =
  if tolerance < 1.0 then
    invalid_arg "Regress.compare_json: tolerance must be >= 1.0";
  let base = leaves baseline in
  let fresh_tbl = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace fresh_tbl p v) (leaves fresh);
  let verdicts, missing =
    List.fold_left
      (fun (vs, ms) (path, b) ->
        match Hashtbl.find_opt fresh_tbl path with
        | None -> (vs, path :: ms)
        | Some f when b <= 0.0 ->
            (* Zero-time baselines (degenerate workloads) carry no signal;
               record them as passing with a neutral ratio. *)
            ({ path; baseline = b; fresh = f; ratio = 1.0; ok = true } :: vs, ms)
        | Some f ->
            let ratio = f /. b in
            ({ path; baseline = b; fresh = f; ratio; ok = ratio <= tolerance }
             :: vs, ms))
      ([], []) base
  in
  { what; tolerance; verdicts = List.rev verdicts; missing = List.rev missing }

let ok o = o.missing = [] && List.for_all (fun v -> v.ok) o.verdicts

let worst o =
  List.fold_left
    (fun acc v ->
      match acc with
      | Some w when w.ratio >= v.ratio -> acc
      | _ -> Some v)
    None o.verdicts

let render o =
  let open Ts_base.Tablefmt in
  let t =
    create
      ~title:(Printf.sprintf "bench check: %s (tolerance %.2fx)" o.what o.tolerance)
      [ ("metric", Left); ("baseline", Right); ("fresh", Right);
        ("ratio", Right); ("verdict", Left) ]
  in
  List.iter
    (fun v ->
      add_row t
        [ v.path; Printf.sprintf "%.4g" v.baseline;
          Printf.sprintf "%.4g" v.fresh; Printf.sprintf "%.2fx" v.ratio;
          (if v.ok then "ok" else "REGRESSION") ])
    o.verdicts;
  List.iter
    (fun path -> add_row t [ path; "-"; "missing"; "-"; "MISSING" ])
    o.missing;
  add_sep t;
  let failed =
    List.length o.missing
    + List.fold_left (fun n v -> if v.ok then n else n + 1) 0 o.verdicts
  in
  add_row t
    [ Printf.sprintf "%d compared, %d failed"
        (List.length o.verdicts) failed; ""; ""; "";
      (if ok o then "PASS" else "FAIL") ];
  render t
