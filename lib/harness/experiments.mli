(** Top-level experiment driver: regenerates every table and figure of the
    paper's evaluation (plus the Section 5.2 speculation ablation) and
    prints them in the paper's layout. Used by [bench/main.exe] and the
    [tsms experiments] CLI command. *)

val table1 : unit -> string
(** The simulated architecture (Table 1 / [Ts_spmt.Config.default]). *)

val fig2 : unit -> string
(** The Figures 1-2 walkthrough: the motivating DDG's MII breakdown, the
    SMS and TMS kernels, their synchronisation delays, and a two-core
    simulation of both. *)

val table2 : ?limit:int -> unit -> string
val fig4 : ?limit:int -> unit -> string
val table3 : unit -> string
val fig5 : unit -> string
val fig6 : unit -> string
val ablation : unit -> string

val unroll : unit -> string
(** The Section 6 future-work study: TMS over unrolled bodies
    ({!Unrolling}). *)

val schedulers : unit -> string
(** The Section 4.1 generality study: TMS over SMS vs over IMS, plus the
    C1/C2 condition ablation ({!Schedulers}). *)

val scaling : unit -> string
(** Core-count scaling and the cost model's serial floor ({!Scaling}). *)

val hetero : unit -> string
(** Placement policy × core-mix ablation on heterogeneous (big.LITTLE)
    rings ({!Scaling.compute_hetero}). *)

val run :
  ?limit:int -> names:string list -> (string -> unit) -> unit
(** Run the named experiments ("table1", "fig2", "table2", "fig4",
    "table3", "fig5", "fig6", "ablation", "unroll", "schedulers",
    "scaling", "hetero" or "all"), feeding each rendered block to the
    printer. Raises
    [Invalid_argument] on an unknown name. [limit] caps loops per
    benchmark in the suite experiments. *)

val all_names : string list
