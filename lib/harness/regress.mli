(** Bench regression gate: compare fresh [BENCH_*.json] results against a
    committed baseline with a multiplicative tolerance.

    Only time-like numeric leaves are compared — keys ending in [wall_s]
    or [_ms], plus the cache [warm_over_cold] ratio — and only one-sided:
    fresh time must satisfy [fresh <= baseline * tolerance]. Derived
    higher-is-better values (speedups, attempts/sec) are skipped as
    redundant, and being faster than baseline is never a failure. A
    time-like leaf present in the baseline but missing from the fresh
    run fails the gate: a silently dropped workload is a hidden
    regression. Used by [bench --check DIR] and the CI smoke job. *)

type verdict = {
  path : string;  (** dotted JSON path, e.g. [workloads\[3\].wall_s] *)
  baseline : float;
  fresh : float;
  ratio : float;  (** [fresh / baseline] *)
  ok : bool;
}

type outcome = {
  what : string;
  tolerance : float;
  verdicts : verdict list;  (** in baseline document order *)
  missing : string list;  (** baseline paths absent from the fresh run *)
}

val time_like : string -> bool
(** Does this JSON key name a lower-is-better duration? *)

val compare_json :
  what:string ->
  tolerance:float ->
  baseline:Ts_obs.Json.t ->
  fresh:Ts_obs.Json.t ->
  outcome
(** Compare every time-like leaf of [baseline] against the same path in
    [fresh]. Zero/negative baseline values pass with a neutral ratio.
    @raise Invalid_argument when [tolerance < 1.0]. *)

val ok : outcome -> bool
(** No regressions and no missing leaves. *)

val worst : outcome -> verdict option
(** The leaf with the highest fresh/baseline ratio — the named offender
    for the failure message. [None] when nothing was compared. *)

val render : outcome -> string
(** Aligned verdict table with a PASS/FAIL summary row. *)
