module K = Ts_modsched.Kernel

let table1 () =
  Format.asprintf "Table 1: architecture simulated@.%a@." Ts_spmt.Config.pp
    Ts_spmt.Config.default

let fig2 () =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let g = Ts_workload.Motivating.ddg () in
  let cfg = Ts_spmt.Config.two_core in
  let params = cfg.Ts_spmt.Config.params in
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
  pr "Figures 1-2: the motivating example on a two-core SpMT machine\n\n";
  pr "ResII = %d, RecII = %d, MII = %d (paper: 4, 8, 8)\n\n"
    (Ts_ddg.Mii.res_ii g) (Ts_ddg.Mii.rec_ii g) (Ts_ddg.Mii.mii g);
  let sms = (Cached.sms g).Ts_sms.Sms.kernel in
  pr "%s\n" (Format.asprintf "SMS %a" K.pp sms);
  pr "SMS: II=%d, C_delay=%d (paper: 11), MaxLive=%d\n\n" sms.K.ii
    (K.c_delay sms ~c_reg_com) (K.max_live sms);
  let tms = Cached.tms_sweep ~params g in
  let tk = tms.Ts_tms.Tms.kernel in
  pr "%s\n" (Format.asprintf "TMS %a" K.pp tk);
  pr "TMS: II=%d, C_delay=%d (paper: 1 + C_reg_com + slack), P_M=%.4f\n\n" tk.K.ii
    tms.Ts_tms.Tms.achieved_c_delay tms.Ts_tms.Tms.misspec;
  let trip = 2000 in
  let s1 = Cached.sim cfg sms ~trip in
  let s2 = Cached.sim cfg tk ~trip in
  pr "two-core simulation over %d iterations:\n" trip;
  pr "  SMS: %d cycles (%.2f/iter), %d sync-stall cycles, %d squashes\n"
    s1.Ts_spmt.Sim.cycles
    (float_of_int s1.Ts_spmt.Sim.cycles /. float_of_int trip)
    s1.Ts_spmt.Sim.sync_stall_cycles s1.Ts_spmt.Sim.squashes;
  pr "  TMS: %d cycles (%.2f/iter), %d sync-stall cycles, %d squashes\n"
    s2.Ts_spmt.Sim.cycles
    (float_of_int s2.Ts_spmt.Sim.cycles /. float_of_int trip)
    s2.Ts_spmt.Sim.sync_stall_cycles s2.Ts_spmt.Sim.squashes;
  pr "  TMS-over-SMS speedup: %.1f%%\n"
    (Ts_base.Stats.speedup_percent
       ~baseline:(float_of_int s1.Ts_spmt.Sim.cycles)
       ~improved:(float_of_int s2.Ts_spmt.Sim.cycles));
  Buffer.contents buf

let params = Ts_isa.Spmt_params.default
let cfg = Ts_spmt.Config.default

let table2 ?limit () = Table2.render (Table2.compute ?limit ~params ())
let fig4 ?limit () = Fig4.render (Fig4.compute ?limit ~cfg ())

let doacross = lazy (Doacross_runs.compute ~cfg)

let table3 () = Table3.render (Table3.compute (Lazy.force doacross))
let fig5 () = Fig5.render (Fig5.compute (Lazy.force doacross))
let fig6 () = Fig6.render (Fig6.compute (Lazy.force doacross))
let ablation () = Ablation.render (Ablation.compute ~cfg (Lazy.force doacross))
let unroll () = Unrolling.render (Unrolling.compute ~cfg ())
let schedulers () = Schedulers.render (Schedulers.compute ~cfg)
let scaling () = Scaling.render (Scaling.compute ())
let hetero () = Scaling.render_hetero (Scaling.compute_hetero ())

let all_names =
  [
    "table1"; "fig2"; "table2"; "fig4"; "table3"; "fig5"; "fig6"; "ablation";
    "unroll"; "schedulers"; "scaling"; "hetero";
  ]

let run ?limit ~names print =
  let names = if List.mem "all" names then all_names else names in
  List.iter
    (fun name ->
      let block =
        Ts_obs.Prof.span ("exp." ^ name) @@ fun () ->
        match name with
        | "table1" -> table1 ()
        | "fig2" -> fig2 ()
        | "table2" -> table2 ?limit ()
        | "fig4" -> fig4 ?limit ()
        | "table3" -> table3 ()
        | "fig5" -> fig5 ()
        | "fig6" -> fig6 ()
        | "ablation" -> ablation ()
        | "unroll" -> unroll ()
        | "schedulers" -> schedulers ()
        | "scaling" -> scaling ()
        | "hetero" -> hetero ()
        | other ->
            invalid_arg
              (Printf.sprintf "Experiments.run: unknown experiment %S" other)
      in
      print block)
    names
