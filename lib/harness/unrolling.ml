module K = Ts_modsched.Kernel

type row = {
  bench : string;
  factor : int;
  ii : int;
  ii_per_iter : float;
  pairs_per_iter : float;
  c_delay : int;
  cycles_per_iter : float;
  misspec : float;
}

let compute ?(factors = [ 1; 2; 3; 4 ]) ~cfg () =
  let params = cfg.Ts_spmt.Config.params in
  let iterations = 2400 in
  List.concat_map
    (fun (sel : Ts_workload.Doacross.selected) ->
      match Scaling.first_loop ~where:"Unrolling.compute" sel with
      | None -> []
      | Some g0 ->
      List.filter_map
        (fun factor ->
          let g = Ts_ddg.Unroll.by g0 ~factor in
          match Cached.tms_sweep ~params g with
          | exception Ts_sms.Sms.No_schedule _ -> None
          | r ->
              let k = r.Ts_tms.Tms.kernel in
              let trip = iterations / factor in
              let st =
                Cached.sim ~warmup:(Defaults.warmup / factor) cfg k ~trip
              in
              Some
                {
                  bench = sel.bench;
                  factor;
                  ii = k.K.ii;
                  ii_per_iter = float_of_int k.K.ii /. float_of_int factor;
                  pairs_per_iter =
                    float_of_int (K.send_recv_pairs_per_iter k)
                    /. float_of_int factor;
                  c_delay = r.Ts_tms.Tms.achieved_c_delay;
                  cycles_per_iter =
                    float_of_int st.Ts_spmt.Sim.cycles
                    /. float_of_int (trip * factor);
                  misspec = st.Ts_spmt.Sim.misspec_rate;
                })
        factors)
    Ts_workload.Doacross.all

let render rows =
  let open Ts_base.Tablefmt in
  let t =
    create
      ~title:
        "Unrolling sweep (future work, Sec 6): thread granularity vs communication"
      [
        ("Benchmark", Left); ("x", Right); ("II", Right); ("II/iter", Right);
        ("pairs/iter", Right); ("C_delay", Right); ("cycles/iter", Right);
        ("misspec", Right);
      ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.bench; cell_int r.factor; cell_int r.ii; cell_f1 r.ii_per_iter;
          cell_f1 r.pairs_per_iter; cell_int r.c_delay;
          cell_f2 r.cycles_per_iter;
          Printf.sprintf "%.3f%%" (r.misspec *. 100.0);
        ])
    rows;
  render t
