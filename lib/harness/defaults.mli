(** Shared measurement parameters for the experiment drivers. *)

val warmup : int
(** Warm-up iterations simulated (and excluded from counters) before any
    steady-state measurement: 512, one full wrap of the longest address
    stream. Hoisted here so every driver warms caches identically. *)
