(** Content-addressed caching of schedules and simulations.

    Every experiment driver funnels its schedule searches and simulator
    runs through this module. When a {!Ts_persist} store has been
    configured (the CLI's [--cache-dir], default on), each result is
    keyed by a digest of everything that determines it — the loop's full
    DDG (nodes, edges, machine parameters), the SpMT configuration, the
    address-plan seed, trip and warmup counts, and a code-version stamp —
    so regenerating an experiment reuses every loop whose inputs did not
    change, across runs and across drivers (Fig. 4 and Table 2 share
    schedule entries, the DOACROSS studies share simulations).

    Cached values store only plain data: kernels are persisted as their
    [(ii, time)] vectors and rebuilt with {!Ts_modsched.Kernel.of_times},
    which revalidates every dependence constraint — a corrupt or stale
    entry fails reconstruction and is recomputed.

    With no store configured every function here is exactly its uncached
    counterpart. Nothing in this module changes results: cache keys
    separate all inputs, and a cold-cache run equals a warm-cache run
    equals an uncached run (regression-tested). *)

val code_version : int
(** Stamped into every key; bump when scheduler or simulator semantics
    change so stale entries miss instead of resurfacing. *)

val set_store : Ts_persist.t option -> unit
(** Install the store used by all functions below (default [None] =
    caching off). Set once, before spawning parallel work. *)

val get_store : unit -> Ts_persist.t option

val set_resume : bool -> unit
(** When [true], {!journal} resumes from an interrupted sweep's journal
    instead of starting fresh (the CLI's [--resume]). Default [false]. *)

val get_resume : unit -> bool

val set_lru : int option -> unit
(** Install an in-memory LRU front of the given capacity (entries) ahead
    of the store — a repeat lookup is answered without touching the
    filesystem. [None] or a non-positive capacity disables it (the
    default). Works with or without a persist store; safe to call from
    any domain (hits/misses/evictions are exposed as [lru.*] metrics).
    Calling it again replaces the cache with an empty one. *)

val get_lru : unit -> int option
(** The installed LRU's capacity, if one is installed. *)

(** {2 Fingerprints and keys} *)

val ddg_fp : Ts_ddg.Ddg.t -> string
(** Canonical serialisation of a loop: name, machine scalars, nodes and
    edges (everything except the machine's closures). *)

val cfg_fp : Ts_spmt.Config.t -> string

(** {2 Warm-started searches}

    Even when a search {e result} misses the cache (a new [p_max], a
    changed core count), its grid walk revisits (II, C_delay) points
    whose attempt outcomes are already on disk: attempts depend only on
    the DDG, [c_reg_com] and — through the recorded C2 envelope — the
    requested [P_max] ({!Ts_tms.Tms.point_memo}). The TMS wrappers below
    therefore seed each search from one persisted point table per
    (engine, DDG, [c_reg_com]) and flush the grown table back after the
    search. Warm-started searches return bit-identical results to cold
    ones — they replay recorded outcomes, never approximate neighbours —
    and hits are counted on [tms.warm.point_hits]. *)

val set_warm_start : bool -> unit
(** Enable/disable warm-started searches (default enabled; the CLI's
    [--no-warm-start]). Purely a performance knob — results are
    identical either way. *)

val get_warm_start : unit -> bool

val point_memo :
  engine:string ->
  params:Ts_isa.Spmt_params.t ->
  Ts_ddg.Ddg.t ->
  (Ts_tms.Tms.point_memo * (unit -> unit)) option
(** The provider itself: [Some (memo, flush)] when warm-start is
    enabled, with [flush] persisting the table (call it once after the
    search; no-op without a store). [engine] keys the table — use
    ["tms"] for swing-based searches and ["tms_ims"] for IMS-based ones;
    the two engines disagree at the same grid point and must never share
    entries. Both callbacks are safe to invoke from pool worker
    domains. Exposed for the search benchmark and the warm-start
    regression tests; normal callers just use {!tms} / {!tms_sweep} /
    {!tms_ims}. *)

(** {2 Cached schedulers} *)

val sms : Ts_ddg.Ddg.t -> Ts_sms.Sms.result
val ims : Ts_ddg.Ddg.t -> Ts_sms.Ims.result

val tms_sweep : params:Ts_isa.Spmt_params.t -> Ts_ddg.Ddg.t -> Ts_tms.Tms.result

val tms :
  ?p_max:float -> params:Ts_isa.Spmt_params.t -> Ts_ddg.Ddg.t -> Ts_tms.Tms.result

val tms_ims : params:Ts_isa.Spmt_params.t -> Ts_ddg.Ddg.t -> Ts_tms.Tms.result

(** {2 Cached simulations}

    Both create the address plan from [seed] (default: the loop name, as
    everywhere else) rather than taking one, so the plan identity is part
    of the key by construction. The SpMT simulation runs with the
    steady-state fast path on — proven (and regression-tested) to return
    stats identical to exact execution; pass [fast:false] to force the
    exact path (the simulator benchmark measures one against the
    other).

    [warmup] defaults to {!Defaults.warmup} (512), the same warm-up every
    harness driver and the CLI use — omitting the argument must never
    silently publish cold-cache numbers. Pass [~warmup:0] explicitly to
    measure the cold ramp. *)

val sim :
  ?sync_mem:bool ->
  ?seed:string ->
  ?warmup:int ->
  ?fast:bool ->
  Ts_spmt.Config.t ->
  Ts_modsched.Kernel.t ->
  trip:int ->
  Ts_spmt.Sim.stats

val sim_single :
  ?seed:string ->
  ?warmup:int ->
  Ts_spmt.Config.t ->
  Ts_ddg.Ddg.t ->
  trip:int ->
  Ts_spmt.Single.stats

(** {2 Plain schedule projections}

    Marshal-safe images of scheduler results (DDGs and kernels carry
    machine closures, so the results themselves cannot be persisted).
    Reconstruction takes the DDG the schedule was built from; it raises
    if the stored times do not form a valid schedule for that DDG. *)

type sms_plain
type tms_plain

val sms_to_plain : Ts_sms.Sms.result -> sms_plain
val sms_of_plain : Ts_ddg.Ddg.t -> sms_plain -> Ts_sms.Sms.result
val tms_to_plain : Ts_tms.Tms.result -> tms_plain
val tms_of_plain : Ts_ddg.Ddg.t -> tms_plain -> Ts_tms.Tms.result

(** {2 Sweep journals}

    Thin wrappers over {!Ts_persist.Journal} that no-op without a store.
    A driver opens a journal named after itself, records each loop's row
    as it completes, and {!j_finish}es on success; a run killed mid-sweep
    leaves the journal behind, and the next [--resume] run replays the
    completed rows. *)

val journal : name:string -> fingerprint:string -> Ts_persist.Journal.j option
(** [None] when no store is configured. The fingerprint (any string
    identifying the sweep's inputs; {!code_version} is appended) guards
    against resuming a sweep whose configuration changed. *)

val j_item : Ts_persist.Journal.j option -> id:string -> (unit -> 'a) -> 'a
(** Replay item [id] from the journal, or compute and record it. *)

val j_finish : Ts_persist.Journal.j option -> unit
