module K = Ts_modsched.Kernel

type row = {
  bench : string;
  n_loops : int;
  avg_inst : float;
  avg_mii : float;
  sms_ii : float;
  sms_maxlive : float;
  sms_c_delay : float;
  tms_ii : float;
  tms_maxlive : float;
  tms_c_delay : float;
}

let row_of_runs ~params bench runs =
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
  let favg f = Ts_base.Stats.mean (List.map f runs) in
  {
    bench = bench.Ts_workload.Spec_suite.name;
    n_loops = List.length runs;
    avg_inst = favg (fun r -> float_of_int (Ts_ddg.Ddg.n_nodes r.Suite.g));
    avg_mii = favg (fun r -> float_of_int (Ts_ddg.Mii.mii r.Suite.g));
    sms_ii = favg (fun r -> float_of_int r.Suite.sms.Ts_sms.Sms.kernel.K.ii);
    sms_maxlive =
      favg (fun r -> float_of_int (K.max_live r.Suite.sms.Ts_sms.Sms.kernel));
    sms_c_delay =
      favg (fun r ->
          float_of_int (K.c_delay r.Suite.sms.Ts_sms.Sms.kernel ~c_reg_com));
    tms_ii = favg (fun r -> float_of_int r.Suite.tms.Ts_tms.Tms.kernel.K.ii);
    tms_maxlive =
      favg (fun r -> float_of_int (K.max_live r.Suite.tms.Ts_tms.Tms.kernel));
    tms_c_delay = favg (fun r -> float_of_int r.Suite.tms.Ts_tms.Tms.achieved_c_delay);
  }

let compute ?limit ~params () =
  (* One pool task per benchmark (rows stay in Table 2 order); the
     per-loop parallelism inside [run_bench] only kicks in when this
     outer level runs sequentially. *)
  Ts_base.Parallel.map
    (fun bench -> row_of_runs ~params bench (Suite.run_bench ?limit ~params bench))
    Ts_workload.Spec_suite.benchmarks

let render rows =
  let open Ts_base.Tablefmt in
  let t =
    create
      ~title:
        "Table 2: SMS vs TMS, traditional modulo scheduling metrics (averages per benchmark)"
      [
        ("Benchmark", Left); ("#Loops", Right); ("AVG #Inst", Right);
        ("AVG MII", Right); ("SMS II", Right); ("SMS MaxLive", Right);
        ("SMS Cdelay", Right); ("TMS II", Right); ("TMS MaxLive", Right);
        ("TMS Cdelay", Right);
      ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.bench; cell_int r.n_loops; cell_f1 r.avg_inst; cell_f1 r.avg_mii;
          cell_f1 r.sms_ii; cell_f1 r.sms_maxlive; cell_f1 r.sms_c_delay;
          cell_f1 r.tms_ii; cell_f1 r.tms_maxlive; cell_f1 r.tms_c_delay;
        ])
    rows;
  render t
