(** Shared scheduling + simulation pass over the Table 3 DOACROSS loops,
    reused by Table 3, Figure 5, Figure 6 and the speculation ablation. *)

type loop_data = {
  g : Ts_ddg.Ddg.t;
  plan : Ts_spmt.Address_plan.t;
  sms : Ts_sms.Sms.result;
  tms : Ts_tms.Tms.result;
  sim_sms : Ts_spmt.Sim.stats;
  sim_tms : Ts_spmt.Sim.stats;
  sim_single : Ts_spmt.Single.stats;
}

type t = { sel : Ts_workload.Doacross.selected; loops : loop_data list }

val compute : cfg:Ts_spmt.Config.t -> t list
(** Schedule and simulate all seven loops (SMS, TMS, single-threaded, one
    shared address plan per loop, {!Defaults.warmup} warm-up iterations).
    Results go through {!Cached} and a ["doacross"] sweep journal, so an
    interrupted run resumes per loop. The sweep is supervised: under
    {!Ts_resil.Supervise.keep_going} a failed loop is recorded and its
    benchmark aggregates the survivors (the journal is kept so a
    [--resume] can fill the gap). *)
