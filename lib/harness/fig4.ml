type row = {
  bench : string;
  loop_speedup : float;
  program_speedup : float;
  sms_cycles : int;
  tms_cycles : int;
}

let program_speedup_of ~coverage ~loop_speedup_pct =
  let s = 1.0 +. (loop_speedup_pct /. 100.0) in
  ((1.0 /. ((coverage /. s) +. (1.0 -. coverage))) -. 1.0) *. 100.0

let compute ?limit ~cfg () =
  let params = cfg.Ts_spmt.Config.params in
  (* One pool task per benchmark: schedule + simulate its loops. *)
  Ts_base.Parallel.map
    (fun (bench : Ts_workload.Spec_suite.bench) ->
      let runs = Suite.run_bench ?limit ~params bench in
      let totals =
        List.map
          (fun (r : Suite.loop_run) ->
            let plan = Ts_spmt.Address_plan.create r.g in
            let trip = bench.trip in
            let warmup = 512 in
            let sms = Ts_spmt.Sim.run ~plan ~warmup cfg r.sms.Ts_sms.Sms.kernel ~trip in
            let tms = Ts_spmt.Sim.run ~plan ~warmup cfg r.tms.Ts_tms.Tms.kernel ~trip in
            (sms.Ts_spmt.Sim.cycles, tms.Ts_spmt.Sim.cycles))
          runs
      in
      let sms_cycles = List.fold_left (fun a (s, _) -> a + s) 0 totals in
      let tms_cycles = List.fold_left (fun a (_, t) -> a + t) 0 totals in
      let loop_speedup =
        Ts_base.Stats.speedup_percent
          ~baseline:(float_of_int sms_cycles)
          ~improved:(float_of_int tms_cycles)
      in
      {
        bench = bench.name;
        loop_speedup;
        program_speedup =
          program_speedup_of ~coverage:bench.coverage ~loop_speedup_pct:loop_speedup;
        sms_cycles;
        tms_cycles;
      })
    Ts_workload.Spec_suite.benchmarks

let averages rows =
  ( Ts_base.Stats.mean (List.map (fun r -> r.loop_speedup) rows),
    Ts_base.Stats.mean (List.map (fun r -> r.program_speedup) rows) )

let render rows =
  let open Ts_base.Tablefmt in
  let t =
    create ~title:"Figure 4: speedups of TMS over SMS (quad-core SpMT)"
      [
        ("Benchmark", Left); ("SMS cycles", Right); ("TMS cycles", Right);
        ("Loop speedup", Right); ("Program speedup", Right);
      ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.bench; cell_int r.sms_cycles; cell_int r.tms_cycles;
          cell_pct r.loop_speedup; cell_pct r.program_speedup;
        ])
    rows;
  let lavg, pavg = averages rows in
  add_sep t;
  add_row t [ "average"; ""; ""; cell_pct lavg; cell_pct pavg ];
  render t
