type row = {
  bench : string;
  loop_speedup : float;
  program_speedup : float;
  sms_cycles : int;
  tms_cycles : int;
}

let program_speedup_of ~coverage ~loop_speedup_pct =
  let s = 1.0 +. (loop_speedup_pct /. 100.0) in
  ((1.0 /. ((coverage /. s) +. (1.0 -. coverage))) -. 1.0) *. 100.0

let compute ?limit ~cfg () =
  let params = cfg.Ts_spmt.Config.params in
  let take l =
    match limit with
    | None -> l
    | Some k -> List.filteri (fun i _ -> i < k) l
  in
  (* One pool task per loop (flattened across benchmarks, so the pool
     stays busy through the tail of the big suites), each journalled: a
     killed run resumes from its last completed loop. *)
  let tasks =
    List.concat_map
      (fun (bench : Ts_workload.Spec_suite.bench) ->
        List.map
          (fun g -> (bench, g))
          (take (Ts_workload.Spec_suite.loops bench)))
      Ts_workload.Spec_suite.benchmarks
  in
  let j =
    Cached.journal ~name:"fig4"
      ~fingerprint:
        (Cached.cfg_fp cfg
        ^ match limit with None -> "" | Some k -> string_of_int k)
  in
  (* Supervised: a failing loop is retried under the run policy; with
     --keep-going it is reported and excluded (its bench aggregates the
     survivors), without it the sweep raises the full failure list. *)
  let totals =
    Ts_resil.Supervise.sweep_map ~what:"fig4"
      ~label:(fun _ ((bench : Ts_workload.Spec_suite.bench), (g : Ts_ddg.Ddg.t)) ->
        bench.name ^ "/" ^ g.name)
      (fun ((bench : Ts_workload.Spec_suite.bench), (g : Ts_ddg.Ddg.t)) ->
        Cached.j_item j ~id:(bench.name ^ "/" ^ g.name) (fun () ->
            let r = Suite.schedule_loop ~params g in
            let trip = bench.trip and warmup = Defaults.warmup in
            let sms = Cached.sim ~warmup cfg r.Suite.sms.Ts_sms.Sms.kernel ~trip in
            let tms = Cached.sim ~warmup cfg r.Suite.tms.Ts_tms.Tms.kernel ~trip in
            (sms.Ts_spmt.Sim.cycles, tms.Ts_spmt.Sim.cycles)))
      tasks
  in
  (* A partial sweep keeps its journal: the failed loops are exactly what
     a --resume run still needs to compute. *)
  if List.for_all Option.is_some totals then Cached.j_finish j;
  List.map
    (fun (bench : Ts_workload.Spec_suite.bench) ->
      let mine =
        List.filter_map
          (fun ((b : Ts_workload.Spec_suite.bench), t) ->
            if b.name = bench.name then t else None)
          (List.combine (List.map fst tasks) totals)
      in
      let sms_cycles = List.fold_left (fun a (s, _) -> a + s) 0 mine in
      let tms_cycles = List.fold_left (fun a (_, t) -> a + t) 0 mine in
      let loop_speedup =
        Ts_base.Stats.speedup_percent
          ~baseline:(float_of_int sms_cycles)
          ~improved:(float_of_int tms_cycles)
      in
      {
        bench = bench.name;
        loop_speedup;
        program_speedup =
          program_speedup_of ~coverage:bench.coverage ~loop_speedup_pct:loop_speedup;
        sms_cycles;
        tms_cycles;
      })
    Ts_workload.Spec_suite.benchmarks

let averages rows =
  ( Ts_base.Stats.mean (List.map (fun r -> r.loop_speedup) rows),
    Ts_base.Stats.mean (List.map (fun r -> r.program_speedup) rows) )

let render rows =
  let open Ts_base.Tablefmt in
  let t =
    create ~title:"Figure 4: speedups of TMS over SMS (quad-core SpMT)"
      [
        ("Benchmark", Left); ("SMS cycles", Right); ("TMS cycles", Right);
        ("Loop speedup", Right); ("Program speedup", Right);
      ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.bench; cell_int r.sms_cycles; cell_int r.tms_cycles;
          cell_pct r.loop_speedup; cell_pct r.program_speedup;
        ])
    rows;
  let lavg, pavg = averages rows in
  add_sep t;
  add_row t [ "average"; ""; ""; cell_pct lavg; cell_pct pavg ];
  render t
