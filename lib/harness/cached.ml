module K = Ts_modsched.Kernel

let code_version = 1
let store : Ts_persist.t option ref = ref None
let resume = ref false
let set_store s = store := s
let get_store () = !store
let set_resume b = resume := b
let get_resume () = !resume

(* ---- in-memory LRU front ----

   A size-bounded LRU of marshalled plain projections sits in front of
   the on-disk store: a repeat request under the serve daemon (or a
   repeated loop inside one sweep) is answered without touching the
   filesystem at all — no [persist.read_ms] observation, just an
   [lru.hits] increment. Values are kept marshalled (the same bytes the
   store would hold) so the cache is type-agnostic and every hit still
   goes through the validating [of_plain] reconstruction. *)

let lru : string Ts_persist.Lru.t option Atomic.t = Atomic.make None

let set_lru = function
  | Some n when n > 0 ->
      Atomic.set lru
        (Some (Ts_persist.Lru.create ~metrics_prefix:"lru" ~capacity:n ()))
  | Some _ | None -> Atomic.set lru None

let get_lru () =
  match Atomic.get lru with
  | None -> None
  | Some l -> Some (Ts_persist.Lru.capacity l)

let lru_find k =
  match Atomic.get lru with None -> None | Some l -> Ts_persist.Lru.find l k

let lru_put k s =
  match Atomic.get lru with None -> () | Some l -> Ts_persist.Lru.put l k s

(* ---- fingerprints ---- *)

(* A DDG's machine record holds a closure, so serialise its scalar fields
   and the node/edge arrays (plain records) instead of the whole value. *)
let ddg_fp (g : Ts_ddg.Ddg.t) =
  let m = g.machine in
  Marshal.to_string
    ( g.name,
      m.Ts_isa.Machine.name,
      m.Ts_isa.Machine.issue_width,
      m.Ts_isa.Machine.fu_counts,
      m.Ts_isa.Machine.n_registers,
      g.nodes,
      g.edges )
    []

let cfg_fp (cfg : Ts_spmt.Config.t) = Marshal.to_string cfg []
let kernel_fp (k : K.t) = Marshal.to_string (k.K.ii, k.K.time) []

let key ~kind parts =
  Ts_persist.digest_hex
    (String.concat "\x00" (kind :: string_of_int code_version :: parts))

(* ---- plain schedule projections ---- *)

type sms_plain = { s_ii : int; s_time : int array; s_mii : int; s_attempts : int }

type ims_plain = {
  i_ii : int;
  i_time : int array;
  i_mii : int;
  i_attempts : int;
  i_placements : int;
}

type tms_plain = {
  t_ii : int;
  t_time : int array;
  t_mii : int;
  t_cdt : int;
  t_acd : int;
  t_pmax : float;
  t_misspec : float;
  t_fmin : float;
  t_attempts : int;
  t_fell_back : bool;
}

let sms_to_plain (r : Ts_sms.Sms.result) =
  {
    s_ii = r.kernel.K.ii;
    s_time = r.kernel.K.time;
    s_mii = r.mii;
    s_attempts = r.attempts;
  }

let sms_of_plain g (p : sms_plain) : Ts_sms.Sms.result =
  {
    kernel = K.of_times g ~ii:p.s_ii p.s_time;
    mii = p.s_mii;
    attempts = p.s_attempts;
  }

let ims_to_plain (r : Ts_sms.Ims.result) =
  {
    i_ii = r.kernel.K.ii;
    i_time = r.kernel.K.time;
    i_mii = r.mii;
    i_attempts = r.attempts;
    i_placements = r.placements;
  }

let ims_of_plain g (p : ims_plain) : Ts_sms.Ims.result =
  {
    kernel = K.of_times g ~ii:p.i_ii p.i_time;
    mii = p.i_mii;
    attempts = p.i_attempts;
    placements = p.i_placements;
  }

let tms_to_plain (r : Ts_tms.Tms.result) =
  {
    t_ii = r.kernel.K.ii;
    t_time = r.kernel.K.time;
    t_mii = r.mii;
    t_cdt = r.c_delay_threshold;
    t_acd = r.achieved_c_delay;
    t_pmax = r.p_max;
    t_misspec = r.misspec;
    t_fmin = r.f_min;
    t_attempts = r.attempts;
    t_fell_back = r.fell_back;
  }

let tms_of_plain g (p : tms_plain) : Ts_tms.Tms.result =
  {
    kernel = K.of_times g ~ii:p.t_ii p.t_time;
    mii = p.t_mii;
    c_delay_threshold = p.t_cdt;
    achieved_c_delay = p.t_acd;
    p_max = p.t_pmax;
    misspec = p.t_misspec;
    f_min = p.t_fmin;
    attempts = p.t_attempts;
    fell_back = p.t_fell_back;
  }

(* ---- cached computations ----

   [cached] adds a reconstruction layer over {!Ts_persist.memo}: values
   are stored as plain projections and rebuilt per hit; a reconstruction
   failure (stale entry whose times no longer validate against today's
   generator output, or an injected cached.reconstruct fault) falls back
   to recomputing and overwriting. *)

let m_reconstruct_failed =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.reconstruct_failed"

let cached ?(span = "cached.driver") ~key:k ~to_plain ~of_plain f =
  Ts_obs.Prof.span span @@ fun () ->
  let from_lru =
    match lru_find k with
    | None -> None
    | Some s -> (
        match of_plain (Marshal.from_string s 0) with
        | v -> Some v
        | exception _ ->
            (* A poisoned in-memory entry falls through to the store /
               recompute path, same as a stale disk entry. *)
            Ts_obs.Metrics.incr m_reconstruct_failed;
            None)
  in
  match from_lru with
  | Some v -> v
  | None -> (
      match !store with
      | None ->
          let v = f () in
          lru_put k (Marshal.to_string (to_plain v) []);
          v
      | Some s -> (
          match Ts_persist.find s ~key:k with
          | Some p -> (
              match
                Ts_resil.Fault.guard "cached.reconstruct";
                of_plain p
              with
              | v ->
                  lru_put k (Marshal.to_string p []);
                  v
              | exception _ ->
                  Ts_obs.Metrics.incr m_reconstruct_failed;
                  let v = f () in
                  Ts_persist.store s ~key:k (to_plain v);
                  lru_put k (Marshal.to_string (to_plain v) []);
                  v)
          | None ->
              let v = f () in
              Ts_persist.store s ~key:k (to_plain v);
              lru_put k (Marshal.to_string (to_plain v) []);
              v))

let sms g =
  cached ~span:"cached.sms"
    ~key:(key ~kind:"sms" [ ddg_fp g ])
    ~to_plain:sms_to_plain
    ~of_plain:(sms_of_plain g)
    (fun () -> Ts_sms.Sms.schedule g)

let ims g =
  cached ~span:"cached.ims"
    ~key:(key ~kind:"ims" [ ddg_fp g ])
    ~to_plain:ims_to_plain
    ~of_plain:(ims_of_plain g)
    (fun () -> Ts_sms.Ims.schedule g)

let params_fp (p : Ts_isa.Spmt_params.t) = Marshal.to_string p []

(* ---- warm-start point memo ----

   A search result that misses the result cache (a new [p_max], a
   changed core count, a widened sweep) still walks an (II, C_delay)
   grid whose individual attempt outcomes may all be on disk: a grid
   attempt depends on the DDG and [c_reg_com] only, plus [p_max] through
   the C2 envelope recorded with each outcome ({!Ts_tms.Tms.point_memo}).
   The provider below keeps those outcomes in a mutexed in-memory table
   (shared live across a sweep's parallel per-[p_max] searches), seeded
   from one persist entry per (engine, DDG, c_reg_com) and flushed back
   once after the search — not per attempt, so the store sees one read
   and one write per search instead of one per grid point. Warm-started
   searches are bit-identical to cold ones (the search replays recorded
   outcomes; regression-tested across the fuzz corpus). *)

let warm = Atomic.make true
let set_warm_start b = Atomic.set warm b
let get_warm_start () = Atomic.get warm

type point_plain = {
  pp_times : int array option;
  pp_reject : Ts_tms.Tms.reject option;
  pp_tally : int * int * int * int;
  pp_admit_max : float;
  pp_reject_min : float;
}

(* Envelopes kept per grid point: each entry answers an interval of
   P_max values, and sweeps use a handful of values, so a short list
   scanned under the lock is plenty. Newest first, oldest dropped. *)
let max_envelopes = 8

let point_memo ~engine ~params g =
  if not (Atomic.get warm) then None
  else begin
    let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
    let skey =
      key ~kind:(engine ^ "_points") [ string_of_int c_reg_com; ddg_fp g ]
    in
    (* Two-layer encoding, like [cached]'s plain entries: the persist
       store holds a marshalled *string* whose inner decode re-checks
       marshal's own magic and size headers. An entry clobbered with a
       marshalled value of some other type then degrades to a cold table
       — traversing it directly as this float-bearing record type would
       be undefined behaviour (the reconstruction-guard test overwrites
       entries with exactly such values). *)
    let tbl : (int * int, point_plain list) Hashtbl.t =
      match
        match !store with
        | None -> None
        | Some s -> Ts_persist.find s ~key:skey
      with
      | Some (payload : string) -> (
          match
            (Marshal.from_string payload 0
              : ((int * int) * point_plain list) list)
          with
          | entries ->
              let h = Hashtbl.create (max 64 (2 * List.length entries)) in
              List.iter (fun (k, v) -> Hashtbl.replace h k v) entries;
              h
          | exception _ -> Hashtbl.create 64)
      | None | (exception _) -> Hashtbl.create 64
    in
    let lock = Mutex.create () in
    let locked f =
      Mutex.lock lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
    in
    let dirty = ref false in
    let pm =
      {
        Ts_tms.Tms.pm_find =
          (fun ~ii ~c_delay ~p_max ->
            locked @@ fun () ->
            match Hashtbl.find_opt tbl (ii, c_delay) with
            | None -> None
            | Some entries ->
                List.find_opt
                  (fun e ->
                    Ts_tms.Tms.envelope_covers ~admit_max:e.pp_admit_max
                      ~reject_min:e.pp_reject_min p_max)
                  entries
                |> Option.map (fun e ->
                       {
                         (* Fresh copies: the search hands these arrays to
                            [Kernel.of_times], and the table outlives any
                            one search. *)
                         Ts_tms.Tms.po_times = Option.map Array.copy e.pp_times;
                         po_reject = e.pp_reject;
                         po_tally = e.pp_tally;
                         po_c2_admit_max = e.pp_admit_max;
                         po_c2_reject_min = e.pp_reject_min;
                       }));
        pm_store =
          (fun ~ii ~c_delay ~p_max:_ (o : Ts_tms.Tms.point_outcome) ->
            locked @@ fun () ->
            let e =
              {
                pp_times = Option.map Array.copy o.po_times;
                pp_reject = o.po_reject;
                pp_tally = o.po_tally;
                pp_admit_max = o.po_c2_admit_max;
                pp_reject_min = o.po_c2_reject_min;
              }
            in
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt tbl (ii, c_delay))
            in
            let rec cap n = function
              | [] -> []
              | _ when n <= 0 -> []
              | x :: tl -> x :: cap (n - 1) tl
            in
            Hashtbl.replace tbl (ii, c_delay) (e :: cap (max_envelopes - 1) cur);
            dirty := true)
      }
    in
    let flush () =
      if !dirty then
        match !store with
        | None -> ()
        | Some s ->
            let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
            Ts_persist.store s ~key:skey (Marshal.to_string entries [])
    in
    Some (pm, flush)
  end

let with_point_memo ~engine ~params g f =
  match point_memo ~engine ~params g with
  | None -> f None
  | Some (pm, flush) -> Fun.protect ~finally:flush (fun () -> f (Some pm))

let tms_sweep ~params g =
  cached ~span:"cached.tms_sweep"
    ~key:(key ~kind:"tms_sweep" [ params_fp params; ddg_fp g ])
    ~to_plain:tms_to_plain
    ~of_plain:(tms_of_plain g)
    (fun () ->
      with_point_memo ~engine:"tms" ~params g (fun point_memo ->
          Ts_tms.Tms.schedule_sweep ?point_memo ~params g))

let tms ?p_max ~params g =
  let pm =
    match p_max with None -> "default" | Some x -> Printf.sprintf "%h" x
  in
  cached ~span:"cached.tms"
    ~key:(key ~kind:"tms" [ pm; params_fp params; ddg_fp g ])
    ~to_plain:tms_to_plain
    ~of_plain:(tms_of_plain g)
    (fun () ->
      with_point_memo ~engine:"tms" ~params g (fun point_memo ->
          Ts_tms.Tms.schedule ?p_max ?point_memo ~params g))

let tms_ims ~params g =
  cached ~span:"cached.tms_ims"
    ~key:(key ~kind:"tms_ims" [ params_fp params; ddg_fp g ])
    ~to_plain:tms_to_plain
    ~of_plain:(tms_of_plain g)
    (fun () ->
      with_point_memo ~engine:"tms_ims" ~params g (fun point_memo ->
          Ts_tms.Tms_ims.schedule ?point_memo ~params g))

(* Simulator stats are plain records: no projection needed, so the LRU
   front wraps the persist memo directly. *)
let lru_memo ~key:k f =
  let compute () =
    let v = f () in
    lru_put k (Marshal.to_string v []);
    v
  in
  match lru_find k with
  | None -> compute ()
  | Some s -> (
      match Marshal.from_string s 0 with
      | v -> v
      | exception _ ->
          Ts_obs.Metrics.incr m_reconstruct_failed;
          compute ())

(* [warmup] defaults to {!Defaults.warmup}, NOT 0: every harness driver
   wants the warmed measurement, and a caller that forgets the argument
   must not silently publish cold-cache numbers (a fig2 run did exactly
   that before the default was routed through the shared constant). *)
let sim ?(sync_mem = false) ?seed ?(warmup = Defaults.warmup) ?(fast = true)
    cfg (k : K.t) ~trip =
  let g = k.K.g in
  let seed = match seed with Some s -> s | None -> g.Ts_ddg.Ddg.name in
  let k' =
    key ~kind:"sim"
      [
        cfg_fp cfg;
        ddg_fp g;
        kernel_fp k;
        seed;
        string_of_bool sync_mem;
        string_of_int warmup;
        string_of_int trip;
      ]
  in
  Ts_obs.Prof.span "cached.sim" @@ fun () ->
  lru_memo ~key:k' (fun () ->
      Ts_persist.memo !store ~key:k' (fun () ->
          Ts_spmt.Sim.run ~seed ~sync_mem ~warmup ~fast cfg k ~trip))

let sim_single ?seed ?(warmup = Defaults.warmup) cfg g ~trip =
  let seed = match seed with Some s -> s | None -> g.Ts_ddg.Ddg.name in
  let k' =
    key ~kind:"single"
      [ cfg_fp cfg; ddg_fp g; seed; string_of_int warmup; string_of_int trip ]
  in
  Ts_obs.Prof.span "cached.sim_single" @@ fun () ->
  lru_memo ~key:k' (fun () ->
      Ts_persist.memo !store ~key:k' (fun () ->
          Ts_spmt.Single.run ~seed ~warmup cfg g ~trip))

(* ---- journals ---- *)

(* A journal that cannot even be opened (read-only store, injected
   journal.open fault) costs resumability, not correctness: degrade to
   journal-less with a warning. *)
let journal ~name ~fingerprint =
  match !store with
  | None -> None
  | Some s -> (
      match
        Ts_persist.Journal.load s ~name
          ~fingerprint:(fingerprint ^ "\x00" ^ string_of_int code_version)
          ~resume:!resume
      with
      | j -> Some j
      | exception e ->
          Ts_obs.Metrics.incr
            (Ts_obs.Metrics.counter Ts_obs.Metrics.default
               "persist.journal.degraded");
          Ts_resil.Warn.once
            ~key:("cached.journal:" ^ name)
            (Printf.sprintf
               "cannot open the %s sweep journal (%s); continuing without one \
                (the sweep will not be resumable)"
               name (Printexc.to_string e));
          None)

let j_item j ~id f =
  match j with
  | None -> f ()
  | Some j -> (
      match Ts_persist.Journal.find j ~id with
      | Some v -> v
      | None ->
          let v = f () in
          Ts_persist.Journal.record j ~id v;
          v)

let j_finish = function None -> () | Some j -> Ts_persist.Journal.finish j
