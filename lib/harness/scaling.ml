module K = Ts_modsched.Kernel
module P = Ts_isa.Placement

type row = {
  bench : string;
  ncore : int;
  sms_cpi : float;
  tms_cpi : float;
  tms_gain : float;
  model_floor : float;
}

(* An empty benchmark selection is a workload-definition bug, not a
   reason to die with a bare [Failure "hd"]: warn once (with the bench
   name) and skip the benchmark. *)
let first_loop ~where (sel : Ts_workload.Doacross.selected) =
  match sel.loops with
  | g :: _ -> Some g
  | [] ->
      Ts_resil.Warn.once
        ~key:(where ^ ".empty:" ^ sel.bench)
        (Printf.sprintf "%s: benchmark %S selected no loops; skipping" where
           sel.bench);
      None

let compute ?(ncores = [ 2; 4; 8; 16 ]) () =
  let trip = 1500 and warmup = Defaults.warmup in
  List.concat_map
    (fun (sel : Ts_workload.Doacross.selected) ->
      match first_loop ~where:"Scaling.compute" sel with
      | None -> []
      | Some g ->
          let sms = (Cached.sms g).Ts_sms.Sms.kernel in
          List.map
            (fun ncore ->
              let cfg = Ts_spmt.Config.with_ncore Ts_spmt.Config.default ncore in
              let params = cfg.Ts_spmt.Config.params in
              let tms = Cached.tms_sweep ~params g in
              let tk = tms.Ts_tms.Tms.kernel in
              let s_sms = Cached.sim ~warmup cfg sms ~trip in
              let s_tms = Cached.sim ~warmup cfg tk ~trip in
              let cpi (st : Ts_spmt.Sim.stats) =
                float_of_int st.cycles /. float_of_int trip
              in
              {
                bench = sel.bench;
                ncore;
                sms_cpi = cpi s_sms;
                tms_cpi = cpi s_tms;
                tms_gain =
                  Ts_base.Stats.speedup_percent
                    ~baseline:(float_of_int s_sms.Ts_spmt.Sim.cycles)
                    ~improved:(float_of_int s_tms.Ts_spmt.Sim.cycles);
                model_floor =
                  Ts_tms.Cost_model.f_value params ~ii:tk.K.ii
                    ~c_delay:(max 1 tms.Ts_tms.Tms.achieved_c_delay);
              })
            ncores)
    Ts_workload.Doacross.all

let render rows =
  let open Ts_base.Tablefmt in
  let t =
    create ~title:"Core-count scaling (insight: the serial C_delay floor)"
      [
        ("Benchmark", Left); ("cores", Right); ("SMS c/i", Right);
        ("TMS c/i", Right); ("TMS gain", Right); ("model floor", Right);
      ]
  in
  let last = ref "" in
  List.iter
    (fun r ->
      if !last <> "" && !last <> r.bench then add_sep t;
      last := r.bench;
      add_row t
        [
          r.bench; cell_int r.ncore; cell_f1 r.sms_cpi; cell_f1 r.tms_cpi;
          cell_pct r.tms_gain; cell_f1 r.model_floor;
        ])
    rows;
  render t

(* ---- placement × core-mix ablation (heterogeneous machines) ---------- *)

type hrow = {
  h_bench : string;
  h_mix : string;
  h_policy : P.policy;
  h_map : string;  (** one period of the compiled placement *)
  h_cpi : float;
  h_sync_stalls : int;
  h_spawn_stalls : int;
}

let default_mixes = [ "4"; "2fast+2slow" ]

let compute_hetero ?(mixes = default_mixes) ?(policies = P.all) () =
  let trip = 1500 and warmup = Defaults.warmup in
  List.concat_map
    (fun (sel : Ts_workload.Doacross.selected) ->
      match first_loop ~where:"Scaling.compute_hetero" sel with
      | None -> []
      | Some g ->
          List.concat_map
            (fun mix ->
              let params =
                match Ts_isa.Spmt_params.mix_of_string mix with
                | Ok m -> Ts_isa.Spmt_params.apply_mix Ts_isa.Spmt_params.default m
                | Error e ->
                    invalid_arg
                      (Printf.sprintf "Scaling.compute_hetero: bad mix %S (%s)"
                         mix e)
              in
              let base_cfg = { Ts_spmt.Config.default with params } in
              List.map
                (fun pol ->
                  (* Schedule against the policy's effective machine (the
                     cache keys on the effective params), then simulate
                     under the policy itself. *)
                  let eff = P.effective_params pol params in
                  let tms = Cached.tms_sweep ~params:eff g in
                  let k = tms.Ts_tms.Tms.kernel in
                  let cfg = Ts_spmt.Config.with_placement base_cfg pol in
                  let st = Cached.sim ~warmup cfg k ~trip in
                  {
                    h_bench = sel.bench;
                    h_mix = mix;
                    h_policy = pol;
                    h_map =
                      (let s = P.seq (P.make pol params) in
                       "["
                       ^ String.concat " "
                           (List.map string_of_int (Array.to_list s))
                       ^ "]");
                    h_cpi =
                      float_of_int st.Ts_spmt.Sim.cycles /. float_of_int trip;
                    h_sync_stalls = st.Ts_spmt.Sim.sync_stall_cycles;
                    h_spawn_stalls = st.Ts_spmt.Sim.spawn_stall_cycles;
                  })
                policies)
            mixes)
    Ts_workload.Doacross.all

let render_hetero rows =
  let open Ts_base.Tablefmt in
  let t =
    create
      ~title:
        "Placement × core-mix ablation (big.LITTLE rings; TMS, P_max sweep)"
      [
        ("Benchmark", Left); ("cores", Left); ("placement", Left);
        ("map", Left); ("TMS c/i", Right); ("sync stalls", Right);
        ("spawn stalls", Right);
      ]
  in
  let last = ref "" in
  List.iter
    (fun r ->
      let key = r.h_bench ^ "/" ^ r.h_mix in
      if !last <> "" && !last <> key then add_sep t;
      last := key;
      add_row t
        [
          r.h_bench; r.h_mix; P.policy_to_string r.h_policy; r.h_map;
          cell_f1 r.h_cpi; cell_int r.h_sync_stalls; cell_int r.h_spawn_stalls;
        ])
    rows;
  render t
