module K = Ts_modsched.Kernel

type row = {
  bench : string;
  ncore : int;
  sms_cpi : float;
  tms_cpi : float;
  tms_gain : float;
  model_floor : float;
}

let compute ?(ncores = [ 2; 4; 8; 16 ]) () =
  let trip = 1500 and warmup = Defaults.warmup in
  List.concat_map
    (fun (sel : Ts_workload.Doacross.selected) ->
      let g = List.hd sel.loops in
      let sms = (Cached.sms g).Ts_sms.Sms.kernel in
      List.map
        (fun ncore ->
          let cfg = Ts_spmt.Config.with_ncore Ts_spmt.Config.default ncore in
          let params = cfg.Ts_spmt.Config.params in
          let tms = Cached.tms_sweep ~params g in
          let tk = tms.Ts_tms.Tms.kernel in
          let s_sms = Cached.sim ~warmup cfg sms ~trip in
          let s_tms = Cached.sim ~warmup cfg tk ~trip in
          let cpi (st : Ts_spmt.Sim.stats) =
            float_of_int st.cycles /. float_of_int trip
          in
          {
            bench = sel.bench;
            ncore;
            sms_cpi = cpi s_sms;
            tms_cpi = cpi s_tms;
            tms_gain =
              Ts_base.Stats.speedup_percent
                ~baseline:(float_of_int s_sms.Ts_spmt.Sim.cycles)
                ~improved:(float_of_int s_tms.Ts_spmt.Sim.cycles);
            model_floor =
              Ts_tms.Cost_model.f_value params ~ii:tk.K.ii
                ~c_delay:(max 1 tms.Ts_tms.Tms.achieved_c_delay);
          })
        ncores)
    Ts_workload.Doacross.all

let render rows =
  let open Ts_base.Tablefmt in
  let t =
    create ~title:"Core-count scaling (insight: the serial C_delay floor)"
      [
        ("Benchmark", Left); ("cores", Right); ("SMS c/i", Right);
        ("TMS c/i", Right); ("TMS gain", Right); ("model floor", Right);
      ]
  in
  let last = ref "" in
  List.iter
    (fun r ->
      if !last <> "" && !last <> r.bench then add_sep t;
      last := r.bench;
      add_row t
        [
          r.bench; cell_int r.ncore; cell_f1 r.sms_cpi; cell_f1 r.tms_cpi;
          cell_pct r.tms_gain; cell_f1 r.model_floor;
        ])
    rows;
  render t
