type loop_run = {
  g : Ts_ddg.Ddg.t;
  sms : Ts_sms.Sms.result;
  tms : Ts_tms.Tms.result;
}

let schedule_loop ~params g =
  let sms = Cached.sms g in
  let tms = Cached.tms_sweep ~params g in
  { g; sms; tms }

let run_bench ?limit ~params bench =
  let loops = Ts_workload.Spec_suite.loops bench in
  let loops =
    match limit with
    | None -> loops
    | Some k -> List.filteri (fun i _ -> i < k) loops
  in
  (* One pool task per loop; results stay in loop order. *)
  Ts_base.Parallel.map (schedule_loop ~params) loops
