type loop_run = {
  g : Ts_ddg.Ddg.t;
  sms : Ts_sms.Sms.result;
  tms : Ts_tms.Tms.result;
}

let schedule_loop ~params g =
  let sms = Cached.sms g in
  let tms = Cached.tms_sweep ~params g in
  { g; sms; tms }

let run_bench ?limit ~params bench =
  let loops = Ts_workload.Spec_suite.loops bench in
  let loops =
    match limit with
    | None -> loops
    | Some k -> List.filteri (fun i _ -> i < k) loops
  in
  (* One pool task per loop; results stay in loop order. Supervised: with
     --keep-going a loop whose schedule search fails is reported and
     dropped, and the bench aggregates the survivors. *)
  List.filter_map Fun.id
    (Ts_resil.Supervise.sweep_map
       ~what:("suite:" ^ bench.Ts_workload.Spec_suite.name)
       ~label:(fun _ (g : Ts_ddg.Ddg.t) ->
         bench.Ts_workload.Spec_suite.name ^ "/" ^ g.name)
       (schedule_loop ~params) loops)
