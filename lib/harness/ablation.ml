type row = {
  bench : string;
  spec_gain : float;
  nospec_gain : float;
  gain_reduction : float;
  misspec_rate : float;
}

let compute ~cfg (runs : Doacross_runs.t list) =
  let params = cfg.Ts_spmt.Config.params in
  List.map
    (fun (r : Doacross_runs.t) ->
      let trip = r.sel.trip in
      let nospec_cycles =
        List.fold_left
          (fun acc l ->
            let tms0 = Cached.tms ~p_max:0.0 ~params l.Doacross_runs.g in
            let st =
              Cached.sim ~sync_mem:true ~warmup:Defaults.warmup cfg
                tms0.Ts_tms.Tms.kernel ~trip
            in
            acc + st.Ts_spmt.Sim.cycles)
          0 r.loops
      in
      let sum f = List.fold_left (fun a l -> a + f l) 0 r.loops in
      let single = sum (fun l -> l.Doacross_runs.sim_single.Ts_spmt.Single.cycles) in
      let tms = sum (fun l -> l.Doacross_runs.sim_tms.Ts_spmt.Sim.cycles) in
      let squashes = sum (fun l -> l.Doacross_runs.sim_tms.Ts_spmt.Sim.squashes) in
      let committed = sum (fun l -> l.Doacross_runs.sim_tms.Ts_spmt.Sim.committed) in
      let spec_gain =
        Ts_base.Stats.speedup_percent ~baseline:(float_of_int single)
          ~improved:(float_of_int tms)
      in
      let nospec_gain =
        Ts_base.Stats.speedup_percent ~baseline:(float_of_int single)
          ~improved:(float_of_int nospec_cycles)
      in
      {
        bench = r.sel.bench;
        spec_gain;
        nospec_gain;
        gain_reduction =
          (if spec_gain <= 0.0 then 0.0
           else (spec_gain -. nospec_gain) /. spec_gain *. 100.0);
        misspec_rate = float_of_int squashes /. float_of_int (max 1 committed);
      })
    runs

let render rows =
  let open Ts_base.Tablefmt in
  let t =
    create
      ~title:
        "Speculation ablation (Sec 5.2): TMS gain over single-threaded, with and without data speculation"
      [
        ("Benchmark", Left); ("Gain (spec)", Right); ("Gain (no spec)", Right);
        ("Gain reduction", Right); ("Misspec rate", Right);
      ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.bench; cell_pct r.spec_gain; cell_pct r.nospec_gain;
          cell_pct r.gain_reduction;
          Printf.sprintf "%.3f%%" (r.misspec_rate *. 100.0);
        ])
    rows;
  render t
