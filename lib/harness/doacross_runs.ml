type loop_data = {
  g : Ts_ddg.Ddg.t;
  plan : Ts_spmt.Address_plan.t;
  sms : Ts_sms.Sms.result;
  tms : Ts_tms.Tms.result;
  sim_sms : Ts_spmt.Sim.stats;
  sim_tms : Ts_spmt.Sim.stats;
  sim_single : Ts_spmt.Single.stats;
}

type t = { sel : Ts_workload.Doacross.selected; loops : loop_data list }

let compute_loop ~cfg ~params ~trip g =
  let warmup = Defaults.warmup in
  let plan = Ts_spmt.Address_plan.create g in
  let sms = Cached.sms g in
  let tms = Cached.tms_sweep ~params g in
  {
    g;
    plan;
    sms;
    tms;
    sim_sms = Cached.sim ~warmup cfg sms.Ts_sms.Sms.kernel ~trip;
    sim_tms = Cached.sim ~warmup cfg tms.Ts_tms.Tms.kernel ~trip;
    sim_single = Cached.sim_single ~warmup cfg g ~trip;
  }

(* The journal stores a loop's row as plain data (schedules as (II, time)
   projections); the DDG and address plan are regenerated — they are
   deterministic functions of the workload seed. A row that fails to
   reconstruct (stale generator output) is recomputed. *)
let loop_via_journal j ~cfg ~params ~trip ~id g =
  let compute () = compute_loop ~cfg ~params ~trip g in
  match j with
  | None -> compute ()
  | Some j -> (
      let rebuild (sp, tp, ss, st, sg) =
        Ts_resil.Fault.guard "cached.reconstruct";
        {
          g;
          plan = Ts_spmt.Address_plan.create g;
          sms = Cached.sms_of_plain g sp;
          tms = Cached.tms_of_plain g tp;
          sim_sms = ss;
          sim_tms = st;
          sim_single = sg;
        }
      in
      match Ts_persist.Journal.find j ~id with
      | Some row -> (
          match rebuild row with
          | ld -> ld
          | exception _ -> compute ())
      | None ->
          let ld = compute () in
          Ts_persist.Journal.record j ~id
            ( Cached.sms_to_plain ld.sms,
              Cached.tms_to_plain ld.tms,
              ld.sim_sms,
              ld.sim_tms,
              ld.sim_single );
          ld)

let compute ~cfg =
  let params = cfg.Ts_spmt.Config.params in
  (* Flatten to one pool task per loop (art alone holds four of the seven),
     then regroup the ordered results under their benchmarks. *)
  let tasks =
    List.concat_map
      (fun (sel : Ts_workload.Doacross.selected) ->
        List.map (fun g -> (sel, g)) sel.loops)
      Ts_workload.Doacross.all
  in
  let j = Cached.journal ~name:"doacross" ~fingerprint:(Cached.cfg_fp cfg) in
  (* Supervised like the other sweeps: with --keep-going a failed loop is
     reported and its benchmark aggregates the survivors. *)
  let datas =
    Ts_resil.Supervise.sweep_map ~what:"doacross"
      ~label:(fun _ ((sel : Ts_workload.Doacross.selected), (g : Ts_ddg.Ddg.t)) ->
        sel.bench ^ "/" ^ g.name)
      (fun ((sel : Ts_workload.Doacross.selected), (g : Ts_ddg.Ddg.t)) ->
        loop_via_journal j ~cfg ~params ~trip:sel.trip
          ~id:(sel.bench ^ "/" ^ g.name)
          g)
      tasks
  in
  if List.for_all Option.is_some datas then Cached.j_finish j;
  let rec regroup sels datas =
    match sels with
    | [] -> []
    | (sel : Ts_workload.Doacross.selected) :: rest ->
        let k = List.length sel.loops in
        let mine = List.filteri (fun i _ -> i < k) datas in
        let others = List.filteri (fun i _ -> i >= k) datas in
        { sel; loops = List.filter_map Fun.id mine } :: regroup rest others
  in
  regroup Ts_workload.Doacross.all datas
