type loop_data = {
  g : Ts_ddg.Ddg.t;
  plan : Ts_spmt.Address_plan.t;
  sms : Ts_sms.Sms.result;
  tms : Ts_tms.Tms.result;
  sim_sms : Ts_spmt.Sim.stats;
  sim_tms : Ts_spmt.Sim.stats;
  sim_single : Ts_spmt.Single.stats;
}

type t = { sel : Ts_workload.Doacross.selected; loops : loop_data list }

(* Longest address-stream wrap is 2KB / 4B = 512 iterations: after that
   every stream is cache-resident and the measurement is steady-state. *)
let warmup = 512

let compute_loop ~cfg ~params ~trip g =
  let plan = Ts_spmt.Address_plan.create g in
  let sms = Ts_sms.Sms.schedule g in
  let tms = Ts_tms.Tms.schedule_sweep ~params g in
  {
    g;
    plan;
    sms;
    tms;
    sim_sms = Ts_spmt.Sim.run ~plan ~warmup cfg sms.Ts_sms.Sms.kernel ~trip;
    sim_tms = Ts_spmt.Sim.run ~plan ~warmup cfg tms.Ts_tms.Tms.kernel ~trip;
    sim_single = Ts_spmt.Single.run ~plan ~warmup cfg g ~trip;
  }

let compute ~cfg =
  let params = cfg.Ts_spmt.Config.params in
  (* Flatten to one pool task per loop (art alone holds four of the seven),
     then regroup the ordered results under their benchmarks. *)
  let tasks =
    List.concat_map
      (fun (sel : Ts_workload.Doacross.selected) ->
        List.map (fun g -> (sel, g)) sel.loops)
      Ts_workload.Doacross.all
  in
  let datas =
    Ts_base.Parallel.map
      (fun ((sel : Ts_workload.Doacross.selected), g) ->
        compute_loop ~cfg ~params ~trip:sel.trip g)
      tasks
  in
  let rec regroup sels datas =
    match sels with
    | [] -> []
    | (sel : Ts_workload.Doacross.selected) :: rest ->
        let k = List.length sel.loops in
        let mine = List.filteri (fun i _ -> i < k) datas in
        let others = List.filteri (fun i _ -> i >= k) datas in
        { sel; loops = mine } :: regroup rest others
  in
  regroup Ts_workload.Doacross.all datas
