(* Shared measurement parameters for the experiment drivers. *)

(* Warm-up iterations simulated before counters start. The longest
   address-stream wrap is 2 KB working set / 4 B stride = 512 iterations:
   after that every stream has been walked end to end, the caches hold
   their steady-state residents, and the measurement no longer sees the
   cold-miss ramp. Every driver uses this value (scaled down only when a
   loop body is unrolled, since one iteration then covers [factor]
   original iterations), so SMS, TMS and single-core runs of the same
   loop are always compared on identical cache state. *)
let warmup = 512
