type t = {
  set_mask : int; (* n_sets - 1 *)
  line_shift : int; (* log2 line *)
  assoc : int;
  tags : int array; (* flat [set * assoc + way]: block tag or -1 *)
  lru : int array; (* flat [set * assoc + way]: age; 0 = most recent *)
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let log2 x =
  let rec go acc x = if x = 1 then acc else go (acc + 1) (x lsr 1) in
  go 0 x

let create ~size ~assoc ~line =
  if not (is_pow2 size && is_pow2 assoc && is_pow2 line) then
    invalid_arg "Cache.create: size, assoc and line must be powers of two";
  if size < assoc * line then invalid_arg "Cache.create: size too small";
  let n_sets = size / (assoc * line) in
  {
    set_mask = n_sets - 1;
    line_shift = log2 line;
    assoc;
    tags = Array.make (n_sets * assoc) (-1);
    lru = Array.init (n_sets * assoc) (fun i -> i mod assoc);
    hits = 0;
    misses = 0;
  }

(* The paths below run once per simulated cache access, which makes them
   the hottest code in the whole simulator; flat arrays, shift/mask set
   selection and unsafe indexing (offsets are in range by construction)
   keep them cheap. LRU semantics are the textbook aging scheme the naive
   {!Ts_check.Ref_models} mirror implements: ages count up from 0 = most
   recent, the victim is the highest age (lowest way on ties). *)

let[@inline] base_of t addr =
  let block = addr lsr t.line_shift in
  (block, (block land t.set_mask) * t.assoc)

let[@inline] find_way t base block =
  let rec go i =
    if i = t.assoc then -1
    else if Array.unsafe_get t.tags (base + i) = block then i
    else go (i + 1)
  in
  go 0

let touch_at t base way =
  let old = Array.unsafe_get t.lru (base + way) in
  for i = base to base + t.assoc - 1 do
    let a = Array.unsafe_get t.lru i in
    if a < old then Array.unsafe_set t.lru i (a + 1)
  done;
  Array.unsafe_set t.lru (base + way) 0

let[@inline] victim t base =
  let best = ref 0 and best_age = ref (Array.unsafe_get t.lru base) in
  for i = 1 to t.assoc - 1 do
    let a = Array.unsafe_get t.lru (base + i) in
    if a > !best_age then begin
      best := i;
      best_age := a
    end
  done;
  !best

let access t addr =
  let block, base = base_of t addr in
  let way = find_way t base block in
  if way >= 0 then begin
    t.hits <- t.hits + 1;
    touch_at t base way;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let way = victim t base in
    Array.unsafe_set t.tags (base + way) block;
    touch_at t base way;
    false
  end

let probe t addr =
  let block, base = base_of t addr in
  find_way t base block >= 0

let invalidate t addr =
  let block, base = base_of t addr in
  let way = find_way t base block in
  if way >= 0 then Array.unsafe_set t.tags (base + way) (-1)

let fill t addr =
  let block, base = base_of t addr in
  let way = find_way t base block in
  if way >= 0 then touch_at t base way
  else begin
    let way = victim t base in
    Array.unsafe_set t.tags (base + way) block;
    touch_at t base way
  end

let stats t = (t.hits, t.misses)

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  for i = 0 to Array.length t.lru - 1 do
    Array.unsafe_set t.lru i (i mod t.assoc)
  done;
  t.hits <- 0;
  t.misses <- 0
