(** Cycle-level simulation of a modulo-scheduled loop on the SpMT multicore.

    Threads (one kernel iteration each) are spawned round-robin across the
    ring. Within a thread, instructions issue dataflow-style no earlier
    than their kernel row: intra-thread dependences wait for producer
    completion, synchronised register dependences wait for the value to
    arrive over the ring ([k] hops of [c_reg_com] for a kernel distance of
    [k]), and speculated memory dependences do not wait at all — the MDT
    detects premature loads and the offending thread is squashed,
    invalidated ([c_inv]) and re-executed with its register inputs already
    present. Commits are sequential in thread order ([c_commit] each), a
    core is reusable only after its previous thread has committed, and
    spawns chain with [c_spawn].

    The counters below are exactly the quantities Section 5 plots:
    synchronisation stalls (Fig. 6a), dynamic SEND/RECV pairs (Fig. 6b),
    communication overhead (Fig. 6c), and misspeculation frequency. *)

type stats = {
  cycles : int;  (** first spawn to last commit *)
  committed : int;  (** threads committed (= trip count) *)
  squashes : int;  (** threads squashed and re-executed *)
  misspec_rate : float;  (** squashes / committed *)
  sync_stall_cycles : int;  (** cycles threads spent stalled at a RECV *)
  spawn_stall_cycles : int;  (** spawn delayed because no core was free *)
  send_recv_pairs : int;  (** dynamic SEND/RECV pairs in committed threads *)
  send_recv_cycles : int;  (** [c_reg_com * send_recv_pairs] *)
  communication_overhead : int;  (** sync stalls + SEND/RECV cycles *)
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  wb_peak : int;
      (** peak speculative-write-buffer occupancy across all in-flight
          threads: entries are allocated at each store's issue and drain at
          the owning thread's commit end (or at the invalidation end when
          the thread is squashed). Covers the whole run including warmup. *)
  mdt_peak : int;  (** most MDT entries live at once *)
  stall_breakdown : ((int * int) * int) list;
      (** total RECV stall cycles per synchronised dependence
          [(producer, consumer)], largest first — which dependences
          serialise the loop *)
}

type thread_obs = {
  index : int;  (** kernel iteration / thread number *)
  core : int;
  start : int;  (** absolute cycle the thread began executing *)
  end_exec : int;  (** last instruction completion *)
  commit_start : int;
  commit_end : int;
  squashed : bool;  (** this thread was squashed and re-executed *)
}
(** One committed thread's lifecycle, as seen by an [observe] callback. *)

val run :
  ?seed:string ->
  ?plan:Address_plan.t ->
  ?sync_mem:bool ->
  ?warmup:int ->
  ?check:bool ->
  ?observe:(thread_obs -> unit) ->
  ?trace:Ts_obs.Trace.t ->
  ?trace_pid:int ->
  ?fast:bool ->
  Config.t ->
  Ts_modsched.Kernel.t ->
  trip:int ->
  stats
(** Execute [trip] kernel iterations. [plan] (or a fresh one derived from
    [seed], default the loop name) supplies the address streams, so passing
    the same plan to SMS- and TMS-scheduled runs of the same loop compares
    them on identical memory behaviour.

    [sync_mem] (default false) disables data speculation, as in the
    Section 5.2 ablation: every inter-thread memory dependence is
    synchronised like a register dependence (post/wait over the ring, same
    [c_reg_com] cost) and the MDT never squashes anything.

    [check] (default false) turns on the {!Ts_check} runtime invariants:
    every cache access and MDT operation is mirrored onto the naive
    reference models of {!Ts_check.Ref_models} and compared, commits are
    checked to be sequential and no earlier than execution end, squash
    restarts to honour the invalidation overhead, per-node issue/finish
    times to be well-ordered, stall totals to be non-negative, and the
    write buffer to drain completely. Any violation raises
    {!Ts_check.Invariant.Check_failed}. A checked run returns stats
    byte-identical to an unchecked one (regression-tested) — the checks
    observe, they never steer.

    [warmup] (default 0) executes that many extra iterations first and
    excludes them from every counter, so [stats] describe the steady state
    (warm caches) rather than the cold-miss ramp — the paper simulates its
    benchmarks to completion, where steady state dominates.

    [trace] (default {!Ts_obs.Trace.null}) receives the cycle-attribution
    event stream for the measured (post-warmup) iterations, on one track
    per core (process [trace_pid], default 0; pass distinct pids to put
    several runs in one file):

    - ["exec"]/["commit"] spans per thread, plus ["exec (squashed)"] and
      ["re-exec"] spans when the MDT squashes a thread;
    - ["squash"] instant events at the detection cycle, and ["sync-stall"]
      instants carrying the blamed producer→consumer dependence edge and
      the stalled cycles;
    - an ["occupancy"] counter track sampling, every 32 threads, the live
      MDT entries and the speculative-write-buffer occupancy across all
      in-flight threads (the latter as of the sampling thread's start, the
      latest instant the occupancy sweep has fully resolved);
    - ["sim.start"]/["sim.end"] markers with the run configuration and
      totals.

    Tracing does not perturb the simulation: a traced run returns stats
    byte-identical to a null-sink run (regression-tested).

    [fast] (default false) enables the steady-state fast path: once two
    consecutive windows of threads repeat the same timing signature at a
    constant shift, remaining threads are extrapolated from the signature
    instead of replayed cycle-by-cycle. Load cache accesses are still
    replayed (the address sequence is timing-independent), and any
    deviation — a latency mismatch, a probabilistic-dependence coin, a
    squash — drops back to exact execution, so the returned stats are
    identical to a [fast:false] run. When the signature is pure L1 hits
    and every line the load streams can touch probes resident, even the
    cache replay is elided. Between engagements, threads unaffected by
    probabilistic-dependence coins are memoised: their timing relative to
    the start cycle is a pure function of the cross-thread arrival offsets
    (clamped to the threshold below which an arrival cannot influence the
    schedule) and the replayed load-latency vector, so recurring
    (offsets, latencies) pairs skip the instruction-level replay even when
    the cache behaviour never becomes periodic. The fast path quietly
    disables itself under
    [trace]/[observe] (which need every thread), for
    always-realised memory dependences, and off the uniform round-robin
    machine (a heterogeneous core mix or a non-round-robin
    {!Config.placement}): the detection windows, memo keys and residency
    arguments all assume thread [j] runs on core [j mod ncore] at unit
    speed. Combining [fast] with [check]
    runs {e both} paths on the same address plan and raises
    {!Ts_check.Invariant.Check_failed} on any stats field divergence.
    Engagement, extrapolation, mismatch and memo-hit counters land on
    {!Ts_obs.Metrics.default} under [sim.fastpath.*].

    Identical totals are also accumulated on {!Ts_obs.Metrics.default}
    under [sim.*]: counters plus the [sim.run_ms] and [sim.ns_per_cycle]
    latency histograms, and a [sim.run.fast]/[sim.run.exact]
    {!Ts_obs.Prof} span per call.

    The legacy [TS_SIM_TRACE]/[TS_SIM_TRACE_NODES] env-var debugging
    (deprecated since the structured tracer landed) has been removed;
    setting either variable makes [run] raise [Invalid_argument] with a
    pointer at [--trace] rather than silently ignore it. *)

val ipc : Ts_modsched.Kernel.t -> stats -> float
(** Committed instructions per cycle (excludes squashed work). *)
