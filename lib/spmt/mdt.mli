(** Memory disambiguation table (Krishnan & Torrellas).

    Sits between the L1 caches and the shared L2 and remembers which
    speculative thread touched which address, so that a store executing in
    a less speculative thread can detect a premature load in a more
    speculative one. The simulator processes threads in program order, so
    detection is phrased from the consumer side: a load asks whether any
    in-flight earlier thread stored to its address {e after} the load's
    issue time — exactly the condition under which the hardware's
    store-side check would have fired and squashed the loading thread. *)

type t

val create : horizon:int -> t
(** [horizon] is the maximum number of threads simultaneously in flight
    (the core count): entries older than that are architecturally
    committed and can no longer conflict. *)

val clear : t -> horizon:int -> unit
(** Empty the table and counters, keeping the underlying bucket storage:
    equivalent to a fresh [create ~horizon] but allocation-free, for the
    simulator's per-domain scratch arena. *)

val record_store : t -> thread:int -> addr:int -> finish:int -> unit
(** Note that [thread]'s store to [addr] completes at absolute cycle
    [finish]. *)

val conflicting_store : t -> thread:int -> addr:int -> issue:int -> int option
(** For a load in [thread] issued at [issue]: the latest completion time of
    a store to [addr] by a thread in [(thread - horizon, thread)] that
    completes after [issue], if any — i.e. the time at which the violation
    is detected. *)

val retire : t -> upto:int -> unit
(** Forget stores of threads [< upto] (committed). *)

val peak_entries : t -> int
(** High-water mark of live entries (to compare against a hardware MDT's
    capacity). *)

val live_entries : t -> int
(** Entries currently live (sampled by the simulator's occupancy trace). *)
