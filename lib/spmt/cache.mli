(** Set-associative cache with LRU replacement.

    Used for the per-core L1 data caches and the shared L2. Timing is not
    kept here — the simulator translates hit/miss answers into latencies —
    so the structure is a pure content model. *)

type t

val create : size:int -> assoc:int -> line:int -> t
(** [size] bytes, [assoc] ways, [line]-byte blocks. All three must be
    powers of two with [size >= assoc * line]. *)

val access : t -> int -> bool
(** [access t addr] is [true] on hit. On miss the block is filled (and the
    LRU way evicted). Always touches LRU state. *)

val probe : t -> int -> bool
(** Hit test without state change. *)

val invalidate : t -> int -> unit
(** Drop the block containing [addr] if present (cross-core invalidation on
    commit, and thread-squash cleanup). *)

val fill : t -> int -> unit
(** Insert the block containing [addr] without reading (store commit). *)

val stats : t -> int * int
(** [(hits, misses)] accumulated by [access]. *)

val reset_stats : t -> unit
(** Zero the hit/miss counters (content untouched) — used to exclude a
    warmup phase from the reported numbers. *)

val reset : t -> unit
(** Return the cache to its freshly-created state: every line invalid,
    the LRU permutation re-initialised, counters zeroed. Lets the
    simulator's scratch arena reuse one allocation across runs instead of
    re-creating the tag/age arrays per sweep point; observationally
    identical to [create] with the same geometry. *)
