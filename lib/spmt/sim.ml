module K = Ts_modsched.Kernel
module Trace = Ts_obs.Trace
module J = Ts_obs.Json
module Chk = Ts_check.Invariant
module Ref = Ts_check.Ref_models

(* Simulator totals on the default metrics registry ([tsms --metrics]). *)
let m_threads = Ts_obs.Metrics.counter Ts_obs.Metrics.default "sim.threads"
let m_squashes = Ts_obs.Metrics.counter Ts_obs.Metrics.default "sim.squashes"

let m_sync_stalls =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "sim.sync_stall_cycles"

let m_spawn_stalls =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "sim.spawn_stall_cycles"

let m_mdt_peak = Ts_obs.Metrics.gauge Ts_obs.Metrics.default "sim.mdt_peak"

(* Steady-state fast path engagement (see [run]'s [fast]). *)
let m_fp_engaged =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "sim.fastpath.engagements"

let m_fp_extrap =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default
    "sim.fastpath.extrapolated_threads"

let m_fp_mismatch =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "sim.fastpath.mismatches"

let m_fp_memo =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "sim.fastpath.memo_hits"

type stats = {
  cycles : int;
  committed : int;
  squashes : int;
  misspec_rate : float;
  sync_stall_cycles : int;
  spawn_stall_cycles : int;
  send_recv_pairs : int;
  send_recv_cycles : int;
  communication_overhead : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  wb_peak : int;
  mdt_peak : int;
  stall_breakdown : ((int * int) * int) list;
}

(* One recorded thread of a fast-path detection window: everything the
   extrapolator needs to replay the thread's observable effects at a
   fixed time shift. Times are absolute (of the recorded thread); the
   extrapolated thread at the same window offset adds a multiple of the
   window period. The arrays are arena-pooled with capacity >= the run's
   node count; every reader bounds itself by the run's [n]. *)
type fp_rec = {
  mutable r_valid : bool;
  mutable r_start : int;
  mutable r_end_exec : int;
  mutable r_commit_end : int;
  mutable r_spawn : int; (* spawn-stall cycles (recorded even in warmup) *)
  mutable r_squashed : bool;
  mutable r_coin : bool; (* a probabilistic mem-dep coin touches this thread *)
  mutable r_stalls : ((int * int) option * int * int) list;
      (* RECV stalls: (blamed producer/consumer, cycles, stall instant) *)
  r_finish : int array;
  r_issue : int array;
  r_lats : int array; (* per-load cache latency, the window's miss pattern *)
}

(* Thread-timing memoisation (fast path, every regime). A thread's timing
   is a max-plus function: each issue/finish time is a max of
   [start + constant] and [input arrival + constant] terms, so shifting
   the start and every arrival by one constant shifts the whole thread by
   that constant. On a coin-free thread no load is redirected, so (with
   per-node stream regions disjoint) no MDT conflict and hence no squash
   is possible, and the timing relative to [start] is a pure function of
   (cross-thread arrival offsets, load latency vector) — the key below.
   Distinct configurations are few even when the window signature never
   converges (the L1-thrashing regime cycles with the lcm of the stream
   periods), so the O(nodes + edges) dataflow replay collapses to a table
   lookup. The caches are still accessed for real — the latency vector is
   the key's second half — so cache state and counters stay exact. *)
module Memo_key = struct
  type t = int array

  let equal (a : int array) b = a = b

  let hash (a : int array) =
    Array.fold_left (fun h x -> ((h lsl 5) + h + x) land max_int) 5381 a
end

module Memo_tbl = Hashtbl.Make (Memo_key)

type memo_val = {
  mv_issue : int array; (* per node, relative to the thread's start *)
  mv_finish : int array;
  mv_end : int; (* end_exec - start *)
  mv_stalls : ((int * int) option * int * int) list; (* instant relative *)
}

type thread_obs = {
  index : int;
  core : int;
  start : int;
  end_exec : int;
  commit_start : int;
  commit_end : int;
  squashed : bool;
}

(* ---- per-domain scratch arena ----

   Everything the per-cycle core touches per thread lives in flat [int
   array] scratch owned by a per-domain arena: the history ring is a
   struct-of-arrays (kind/shift tags plus flat [horizon * n] issue/finish
   planes), dependences are CSR index arrays, RECV-stall accounting is a
   flat [n * n] counter plane with a touched-list for O(touched) scrub,
   and the speculative-write-buffer event sweep is an int-keyed binary
   min-heap. The arena (including the caches, the MDT and the
   thread-timing memo table) is acquired at the top of every [run] and
   reused across sweep points on the same domain — the resident pool
   workers are domains, so a TMS sweep's thousands of simulations share
   one allocation. Capacities only grow; every loop bounds itself by the
   current run's sizes.

   Lifetime rules: an arena is owned by exactly one running [run] at a
   time ([in_use]; a re-entrant call from an [observe] hook gets a fresh
   transient arena). All scratch is scrubbed on acquire, not release, so
   a run that dies mid-flight (a [check] failure, a user hook raising)
   cannot poison the next run on that domain. Nothing in the returned
   [stats] aliases arena storage. *)
type arena = {
  mutable in_use : bool;
  mutable cap_n : int; (* capacity of every node-indexed scratch array *)
  (* per-thread scratch *)
  mutable lat_buf : int array;
  (* CSR views of the kernel's dependence structure (refilled per run) *)
  mutable by_row : int array;
  mutable loads : int array;
  mutable stores : int array;
  mutable reg_off : int array;
  mutable reg_src : int array;
  mutable reg_dk : int array;
  mutable intra_off : int array;
  mutable intra_src : int array;
  mutable redir_off : int array;
  mutable redir_iter : int array;
  mutable redir_addr : int array;
  (* RECV-stall accumulation, flat [producer * n + consumer] *)
  mutable stall_cnt : int array;
  mutable stall_touched : int array;
  mutable stall_ntouched : int;
  (* history ring, struct-of-arrays *)
  mutable h_kind : int array; (* 0 empty / 1 real / 2 extrapolated *)
  mutable h_shift : int array;
  mutable h_rec : fp_rec array;
  mutable h_issue : int array; (* flat [slot * n + node] *)
  mutable h_finish : int array;
  (* write-buffer event min-heap; key = instant*2 + (1 iff allocation) *)
  mutable wb_heap : int array;
  mutable wb_len : int;
  (* reusable stateful models *)
  mutable cache_geom : int * int * int * int * int * int;
  mutable l1 : Cache.t array;
  mutable l2 : Cache.t;
  mdt : Mdt.t;
  memo : memo_val Memo_tbl.t;
  (* fast-path detection window pool (arrays have capacity [cap_n]) *)
  mutable win_len : int;
  mutable win_pool : fp_rec array list;
}

let dummy_rec =
  {
    r_valid = false;
    r_start = 0;
    r_end_exec = 0;
    r_commit_end = 0;
    r_spawn = 0;
    r_squashed = false;
    r_coin = false;
    r_stalls = [];
    r_finish = [||];
    r_issue = [||];
    r_lats = [||];
  }

let arena_create () =
  {
    in_use = false;
    cap_n = 0;
    lat_buf = [||];
    by_row = [||];
    loads = [||];
    stores = [||];
    reg_off = [| 0 |];
    reg_src = [||];
    reg_dk = [||];
    intra_off = [| 0 |];
    intra_src = [||];
    redir_off = [| 0 |];
    redir_iter = [||];
    redir_addr = [||];
    stall_cnt = [||];
    stall_touched = [||];
    stall_ntouched = 0;
    h_kind = [||];
    h_shift = [||];
    h_rec = [||];
    h_issue = [||];
    h_finish = [||];
    wb_heap = [||];
    wb_len = 0;
    cache_geom = (0, 0, 0, 0, 0, 0);
    l1 = [||];
    l2 = Cache.create ~size:32 ~assoc:1 ~line:32;
    mdt = Mdt.create ~horizon:1;
    memo = Memo_tbl.create 256;
    win_len = 0;
    win_pool = [];
  }

(* Scrub on acquire (see the lifetime rules above): O(touched) for the
   stall plane, O(horizon) for the ring tags, O(1) for the heap. *)
let arena_scrub a =
  for i = 0 to a.stall_ntouched - 1 do
    a.stall_cnt.(a.stall_touched.(i)) <- 0
  done;
  a.stall_ntouched <- 0;
  a.wb_len <- 0;
  Array.fill a.h_kind 0 (Array.length a.h_kind) 0;
  Memo_tbl.clear a.memo

let arena_slot : arena option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let arena_acquire () =
  let slot = Domain.DLS.get arena_slot in
  match !slot with
  | Some a when not a.in_use ->
      a.in_use <- true;
      arena_scrub a;
      a
  | held ->
      let a = arena_create () in
      if held = None then slot := Some a;
      a.in_use <- true;
      a

let arena_release a = a.in_use <- false

let grown len cur = if len <= cur then cur else max len ((2 * cur) + 8)

let arena_ensure_n a n =
  if n > a.cap_n then begin
    let c = grown n a.cap_n in
    a.cap_n <- c;
    a.lat_buf <- Array.make c 0;
    a.by_row <- Array.make c 0;
    a.loads <- Array.make c 0;
    a.stores <- Array.make c 0;
    a.reg_off <- Array.make (c + 1) 0;
    a.intra_off <- Array.make (c + 1) 0;
    a.redir_off <- Array.make (c + 1) 0;
    a.stall_cnt <- Array.make (c * c) 0;
    (* pooled windows carry node-capacity arrays: drop the stale pool *)
    a.win_pool <- []
  end

let arena_ensure_edges a ~n_reg ~n_intra =
  if n_reg > Array.length a.reg_src then begin
    a.reg_src <- Array.make (grown n_reg (Array.length a.reg_src)) 0;
    a.reg_dk <- Array.make (Array.length a.reg_src) 0
  end;
  if n_intra > Array.length a.intra_src then
    a.intra_src <- Array.make (grown n_intra (Array.length a.intra_src)) 0

let arena_ensure_redir a len =
  if len > Array.length a.redir_iter then begin
    a.redir_iter <- Array.make (grown len (Array.length a.redir_iter)) 0;
    a.redir_addr <- Array.make (Array.length a.redir_iter) 0
  end

let arena_ensure_hist a ~slots ~n =
  if slots > Array.length a.h_kind then begin
    a.h_kind <- Array.make slots 0;
    a.h_shift <- Array.make slots 0;
    a.h_rec <- Array.make slots dummy_rec
  end;
  if slots * n > Array.length a.h_issue then begin
    a.h_issue <- Array.make (grown (slots * n) (Array.length a.h_issue)) 0;
    a.h_finish <- Array.make (Array.length a.h_issue) 0
  end

let wb_push a key =
  let len = a.wb_len in
  if len >= Array.length a.wb_heap then begin
    let bigger = Array.make (grown (len + 1) (Array.length a.wb_heap)) 0 in
    Array.blit a.wb_heap 0 bigger 0 len;
    a.wb_heap <- bigger
  end;
  let h = a.wb_heap in
  a.wb_len <- len + 1;
  let i = ref len in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    if Array.unsafe_get h parent > key then begin
      Array.unsafe_set h !i (Array.unsafe_get h parent);
      i := parent;
      true
    end
    else false
  do
    ()
  done;
  Array.unsafe_set h !i key

let wb_pop a =
  let h = a.wb_heap in
  let top = Array.unsafe_get h 0 in
  let len = a.wb_len - 1 in
  a.wb_len <- len;
  let last = Array.unsafe_get h len in
  let i = ref 0 in
  let stop = ref false in
  while not !stop do
    let l = (2 * !i) + 1 in
    if l >= len then stop := true
    else begin
      let c =
        if l + 1 < len && Array.unsafe_get h (l + 1) < Array.unsafe_get h l
        then l + 1
        else l
      in
      if Array.unsafe_get h c < last then begin
        Array.unsafe_set h !i (Array.unsafe_get h c);
        i := c
      end
      else stop := true
    end
  done;
  Array.unsafe_set h !i last;
  top

(* The TS_SIM_TRACE / TS_SIM_TRACE_NODES env vars (removed after a
   deprecation cycle) used to dump per-thread timings to stderr. Setting
   them is now a hard error rather than a silent no-op, so an old
   debugging recipe fails loudly with a pointer at the replacement. *)
let reject_legacy_trace_env () =
  (* An empty value counts as unset: there is no unsetenv in the stdlib,
     so callers (and tests) clear the variable with [putenv var ""]. *)
  let set var =
    match Sys.getenv_opt var with Some s -> s <> "" | None -> false
  in
  if set "TS_SIM_TRACE" then
    invalid_arg
      "Sim.run: TS_SIM_TRACE has been removed; use the structured tracer \
       instead (tsms simulate --trace FILE, or --trace-format jsonl)";
  if set "TS_SIM_TRACE_NODES" then
    invalid_arg
      "Sim.run: TS_SIM_TRACE_NODES has been removed; use the structured \
       tracer instead (tsms simulate --trace FILE)"

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let run_internal ?seed ?plan ~sync_mem ~warmup ~check ?observe ~trace ~trace_pid
    ~fast cfg (k : K.t) ~trip =
  if trip <= 0 then invalid_arg "Sim.run: trip must be positive";
  if warmup < 0 then invalid_arg "Sim.run: warmup must be non-negative";
  let total = warmup + trip in
  let g = k.K.g in
  let n = Ts_ddg.Ddg.n_nodes g in
  let p = cfg.Config.params in
  Ts_isa.Spmt_params.validate ~who:"Sim.run" p;
  let ncore = p.ncore in
  (* The compiled thread→core map. [uniform_rr] — round-robin placement on
     a homogeneous machine — is the paper's configuration and the only one
     the steady-state machinery below (windows, memoisation, residency)
     reasons about; everything else runs the exact path. *)
  let place = Ts_isa.Placement.make cfg.Config.placement p in
  let place_period = Ts_isa.Placement.period place in
  let place_seq = Ts_isa.Placement.seq place in
  let core_of j = Array.unsafe_get place_seq (j mod place_period) in
  let uniform_rr =
    cfg.Config.placement = Ts_isa.Placement.Round_robin
    && not (Ts_isa.Spmt_params.heterogeneous p)
  in
  let core_width =
    Array.init ncore (fun i ->
        (Ts_isa.Spmt_params.core_desc p i).Ts_isa.Spmt_params.issue_width)
  in
  let core_scale =
    Array.init ncore (fun i ->
        (Ts_isa.Spmt_params.core_desc p i).Ts_isa.Spmt_params.lat_scale)
  in
  let has_width = Array.exists (fun w -> w > 0) core_width in
  reject_legacy_trace_env ();
  let traced = Trace.enabled trace in
  if traced then begin
    for c = 0 to ncore - 1 do
      Trace.thread_name trace ~pid:trace_pid ~tid:c (Printf.sprintf "core %d" c)
    done;
    Trace.instant trace ~pid:trace_pid ~ts:0 "sim.start"
      ~args:
        ([
           ("loop", J.Str g.Ts_ddg.Ddg.name);
           ("trip", J.Int trip);
           ("warmup", J.Int warmup);
           ("ncore", J.Int ncore);
           ("ii", J.Int k.K.ii);
         ]
        @
        (* Only the non-paper machines announce their placement, so
           default-config trace goldens stay stable. *)
        (if uniform_rr then []
         else [ ("placement", J.Str (Ts_isa.Placement.describe place)) ]))
  end;
  let plan =
    match plan with Some pl -> pl | None -> Address_plan.create ?seed g
  in
  let a = arena_acquire () in
  Fun.protect ~finally:(fun () -> arena_release a) @@ fun () ->
  arena_ensure_n a n;
  (* Caches: reuse the arena's allocation when the geometry matches
     ([Cache.reset] restores the freshly-created state), else rebuild. *)
  let geom =
    (ncore, cfg.l1_size, cfg.l1_assoc, cfg.l2_size, cfg.l2_assoc, cfg.line)
  in
  if a.cache_geom <> geom then begin
    a.l1 <-
      Array.init ncore (fun _ ->
          Cache.create ~size:cfg.l1_size ~assoc:cfg.l1_assoc ~line:cfg.line);
    a.l2 <- Cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc ~line:cfg.line;
    a.cache_geom <- geom
  end
  else begin
    Array.iter Cache.reset a.l1;
    Cache.reset a.l2
  end;
  let l1 = a.l1 and l2 = a.l2 in
  (* Shadow reference models for [check] mode, built only when checking.
     Every cache and MDT operation below goes through a wrapper that
     mirrors it onto the naive model and compares the answers; the
     wrappers are the only way the hot loop touches these structures, so
     an unchecked run is byte-identical to a checked one. The singleton
     arrays stand in for "present iff [check]" without an option match on
     the hot path. *)
  let rl1 =
    if check then
      Array.init ncore (fun _ ->
          Ref.Cache.create ~size:cfg.l1_size ~assoc:cfg.l1_assoc ~line:cfg.line)
    else [||]
  in
  let rl2 =
    if check then
      [| Ref.Cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc ~line:cfg.line |]
    else [||]
  in
  let l1_access core addr =
    let hit = Cache.access (Array.unsafe_get l1 core) addr in
    if check then begin
      let expect = Ref.Cache.access rl1.(core) addr in
      if hit <> expect then
        Chk.failf "Sim.run: L1 (core %d) access at addr %d was a %s but the \
                   reference LRU model says %s"
          core addr
          (if hit then "hit" else "miss")
          (if expect then "hit" else "miss")
    end;
    hit
  in
  let l2_access addr =
    let hit = Cache.access l2 addr in
    if check then begin
      let expect = Ref.Cache.access rl2.(0) addr in
      if hit <> expect then
        Chk.failf "Sim.run: L2 access at addr %d was a %s but the reference \
                   LRU model says %s"
          addr
          (if hit then "hit" else "miss")
          (if expect then "hit" else "miss")
    end;
    hit
  in
  let l2_fill addr =
    Cache.fill l2 addr;
    if check then Ref.Cache.fill rl2.(0) addr
  in
  let l1_invalidate c addr =
    Cache.invalidate l1.(c) addr;
    if check then Ref.Cache.invalidate rl1.(c) addr
  in
  let check_cache_stats ~what real refm =
    if check then begin
      let h, m = Cache.stats real and h', m' = Ref.Cache.stats refm in
      if (h, m) <> (h', m') then
        Chk.failf "Sim.run: %s counted %d hits / %d misses but the reference \
                   LRU model counted %d / %d"
          what h m h' m'
    end
  in
  (* Inter-thread register dependences, grouped by consumer node. The
     lists are per-run scaffolding; the hot loop reads the CSR arrays
     flattened from them below (in identical per-consumer order). *)
  let reg_in = Array.make n [] in
  let mem_nonempty = Array.make n false in
  List.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      reg_in.(e.dst) <- (e, K.d_ker k e) :: reg_in.(e.dst))
    (K.inter_iter_reg_deps k);
  List.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      if sync_mem then reg_in.(e.dst) <- (e, K.d_ker k e) :: reg_in.(e.dst)
      else mem_nonempty.(e.dst) <- true)
    (K.inter_iter_mem_deps k);
  let intra_in = Array.make n [] in
  Array.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      if K.d_ker k e = 0 then intra_in.(e.dst) <- e :: intra_in.(e.dst))
    g.edges;
  let n_reg = Array.fold_left (fun acc l -> acc + List.length l) 0 reg_in in
  let n_intra =
    Array.fold_left (fun acc l -> acc + List.length l) 0 intra_in
  in
  arena_ensure_edges a ~n_reg ~n_intra;
  let reg_off = a.reg_off
  and reg_src = a.reg_src
  and reg_dk = a.reg_dk
  and intra_off = a.intra_off
  and intra_src = a.intra_src in
  let off = ref 0 in
  for v = 0 to n - 1 do
    reg_off.(v) <- !off;
    List.iter
      (fun ((e : Ts_ddg.Ddg.edge), dk) ->
        reg_src.(!off) <- e.src;
        reg_dk.(!off) <- dk;
        incr off)
      reg_in.(v)
  done;
  reg_off.(n) <- !off;
  off := 0;
  for v = 0 to n - 1 do
    intra_off.(v) <- !off;
    List.iter
      (fun (e : Ts_ddg.Ddg.edge) ->
        intra_src.(!off) <- e.src;
        incr off)
      intra_in.(v)
  done;
  intra_off.(n) <- !off;
  (* Nodes in issue (row) order within a thread. *)
  let by_row_l =
    List.sort
      (fun x y ->
        if k.K.row.(x) <> k.K.row.(y) then compare k.K.row.(x) k.K.row.(y)
        else compare x y)
      (List.init n Fun.id)
  in
  let by_row = a.by_row and loads = a.loads and stores = a.stores in
  List.iteri (fun i v -> by_row.(i) <- v) by_row_l;
  let n_loads = ref 0 in
  List.iter
    (fun v ->
      if (Ts_ddg.Ddg.node g v).Ts_ddg.Ddg.op = Ts_isa.Opcode.Load then begin
        loads.(!n_loads) <- v;
        incr n_loads
      end)
    by_row_l;
  let n_loads = !n_loads in
  let store_l =
    List.filter
      (fun v -> (Ts_ddg.Ddg.node g v).Ts_ddg.Ddg.op = Ts_isa.Opcode.Store)
      (List.init n Fun.id)
  in
  let n_stores = ref 0 in
  List.iter
    (fun v ->
      stores.(!n_stores) <- v;
      incr n_stores)
    store_l;
  let n_stores = !n_stores in
  let max_lookback =
    List.fold_left
      (fun acc (e : Ts_ddg.Ddg.edge) -> max acc (K.d_ker k e))
      1
      (K.inter_iter_reg_deps k @ K.inter_iter_mem_deps k)
  in
  let horizon = max ncore (max_lookback + 1) in
  arena_ensure_hist a ~slots:horizon ~n;
  let h_kind = a.h_kind
  and h_shift = a.h_shift
  and h_rec = a.h_rec
  and h_issue = a.h_issue
  and h_finish = a.h_finish in
  (* A grown history ring may carry tags from a smaller previous run past
     the slots [arena_scrub] wiped; re-wipe at the current width. *)
  Array.fill h_kind 0 (Array.length h_kind) 0;
  Mdt.clear a.mdt ~horizon:ncore;
  let mdt = a.mdt in
  let rmdt = if check then [| Ref.Mdt.create ~horizon:ncore |] else [||] in
  let mdt_record ~thread ~addr ~finish =
    Mdt.record_store mdt ~thread ~addr ~finish;
    if check then begin
      Ref.Mdt.record_store rmdt.(0) ~thread ~addr ~finish;
      if Mdt.live_entries mdt <> Ref.Mdt.live_entries rmdt.(0) then
        Chk.failf "Sim.run: after a store by thread %d at addr %d the MDT \
                   holds %d live entries but the reference model holds %d"
          thread addr (Mdt.live_entries mdt)
          (Ref.Mdt.live_entries rmdt.(0));
      if Mdt.peak_entries mdt <> Ref.Mdt.peak_entries rmdt.(0) then
        Chk.failf "Sim.run: MDT peak %d diverged from the reference model's %d"
          (Mdt.peak_entries mdt)
          (Ref.Mdt.peak_entries rmdt.(0))
    end
  in
  let mdt_conflict ~thread ~addr ~issue =
    let got = Mdt.conflicting_store mdt ~thread ~addr ~issue in
    if check then begin
      let expect = Ref.Mdt.conflicting_store rmdt.(0) ~thread ~addr ~issue in
      if got <> expect then
        Chk.failf "Sim.run: MDT conflict query (thread %d, addr %d, issue %d) \
                   answered %s but the reference model says %s"
          thread addr issue
          (match got with None -> "none" | Some f -> string_of_int f)
          (match expect with None -> "none" | Some f -> string_of_int f)
    end;
    got
  in
  let mdt_retire ~upto =
    Mdt.retire mdt ~upto;
    if check then begin
      Ref.Mdt.retire rmdt.(0) ~upto;
      if Mdt.live_entries mdt <> Ref.Mdt.live_entries rmdt.(0) then
        Chk.failf "Sim.run: after retiring below thread %d the MDT holds %d \
                   live entries but the reference model holds %d"
          upto (Mdt.live_entries mdt)
          (Ref.Mdt.live_entries rmdt.(0))
    end
  in
  let pairs_per_iter = K.send_recv_pairs_per_iter k in
  (* Speculative write-buffer occupancy, tracked as an event sweep: each
     executed store allocates an entry at its issue and frees it when the
     thread's commit drains the buffer (or when a squash invalidates it).
     Later threads both issue stores and commit after earlier threads'
     *starts* but not after their *commits*, so events cannot be swept in
     thread order directly; instead they accumulate in the arena's event
     heap and are folded into the running occupancy once the sweep point
     (the newest thread's start, a monotonically non-decreasing bound
     below every future event) passes them. The heap key is
     [instant*2 + (1 iff allocation)], so releases sort before
     allocations at the same instant and a drain concurrent with an
     issue never inflates the peak. *)
  let wb_cur = ref 0 in
  let wb_peak = ref 0 in
  let wb_finalize upto =
    let bound = if upto > max_int asr 1 then max_int else upto lsl 1 in
    while a.wb_len > 0 && Array.unsafe_get a.wb_heap 0 < bound do
      let key = wb_pop a in
      let d = if key land 1 = 1 then 1 else -1 in
      wb_cur := !wb_cur + d;
      if !wb_cur > !wb_peak then wb_peak := !wb_cur
    done
  in
  let wb_stores ~base ~drain =
    for i = 0 to n_stores - 1 do
      let v = stores.(i) in
      wb_push a ((h_issue.(base + v) lsl 1) lor 1);
      wb_push a (drain lsl 1)
    done
  in
  (* accumulators *)
  let stall_add src dst cycles =
    let idx = (src * n) + dst in
    let cur = a.stall_cnt.(idx) in
    if cur = 0 then begin
      if a.stall_ntouched >= Array.length a.stall_touched then begin
        let bigger =
          Array.make (grown (a.stall_ntouched + 1) (Array.length a.stall_touched)) 0
        in
        Array.blit a.stall_touched 0 bigger 0 a.stall_ntouched;
        a.stall_touched <- bigger
      end;
      a.stall_touched.(a.stall_ntouched) <- idx;
      a.stall_ntouched <- a.stall_ntouched + 1
    end;
    a.stall_cnt.(idx) <- cur + cycles
  in
  let sync_stall = ref 0 in
  let spawn_stall = ref 0 in
  let squashes = ref 0 in
  let last_commit_end = ref 0 in
  let core_free = Array.make ncore 0 in
  let prev_spawn_base = ref (-p.c_spawn) (* thread 0 spawns at time 0 *) in
  let warm_end = ref 0 in
  (* ---- steady-state fast path (the [fast] flag) ----

     Once per-thread timing settles into a fixed point, the cycle-level
     replay repeats itself: the same RECV stalls, the same cache latency
     pattern, the same commit cadence, just shifted by a constant per
     window of threads. We detect that fixed point with two consecutive
     detection windows whose recorded timings are equal under a uniform
     shift, then stop executing threads and extrapolate their observable
     effects from the signature window. Exactness is preserved because

     - the cache-access sequence is timing-independent (addresses are a
       pure function of the iteration number and seeded coins, and the
       access order is thread-then-row order), so each extrapolated
       thread's loads are still replayed against the real caches and the
       resulting latency pattern is compared against the signature: any
       deviation (a stream wrapping its working set, an L2 eviction by a
       store fill) drops that thread back to exact execution mid-run;
     - iterations touched by a probabilistic memory-dependence coin are
       never extrapolated: the thread runs exactly and must land on its
       predicted times to keep the fast path engaged (a squash never
       matches, so misspeculation always falls back to exact replay);
     - the MDT and write-buffer bookkeeping keep running on recorded
       times, so [mdt_peak] and [wb_peak] stay cycle-exact.

     When the signature pattern is pure L1 hits, every line the loads'
     periodic streams can ever touch probes resident, and no coin remains
     ahead, even the cache replay is provably redundant (loads cannot
     miss, store fills/invalidates touch disjoint lines) and threads are
     extrapolated arithmetically. *)
  let fast_ok =
    fast && uniform_rr && (not traced)
    && Option.is_none observe
    && not
         (Array.exists
            (fun (e : Ts_ddg.Ddg.edge) ->
              e.kind = Ts_ddg.Ddg.Mem && e.prob >= 1.0)
            g.edges)
  in
  (* Distance-[dk] arrival cost per consumer period position. Round-robin
     keeps the legacy [dk * c_reg_com] thread-forwarding model inline (and
     bit-identical); explicit policies read the placement's physical
     ring-hop table. *)
  let comm_tbl =
    if uniform_rr then [||]
    else
      Array.init
        (place_period * (max_lookback + 1))
        (fun idx ->
          let pos = idx / (max_lookback + 1)
          and dk = idx mod (max_lookback + 1) in
          Ts_isa.Placement.comm_cycles place ~dk ~dst:pos)
  in
  (* Window length: a multiple of ncore (an offset must stay on one core
     across windows), at least the history horizon (so matching windows
     cover every lookback an extrapolated thread can make), and a multiple
     of 8 (the coarsest per-line iteration cadence of the address streams:
     strides 4/8/16 on 32-byte lines touch a new line every 8/4/2
     iterations, so streaming-phase miss patterns repeat per 8). *)
  let w_len =
    let base = 8 * ncore / gcd 8 ncore in
    base * ((horizon + base - 1) / base)
  in
  if a.win_len <> w_len then begin
    a.win_len <- w_len;
    a.win_pool <- []
  end;
  let max_stage = Array.fold_left max 0 k.K.stage in
  (* Address memoisation for the fast path: [Address_plan.addr] rolls a
     seeded coin per incoming memory-dependence edge on every call, which
     dominates the per-thread cost once the timing replay is gone. All
     coins are pre-rolled here — the rare realised redirects land in the
     per-consumer sorted [redir_*] CSR segments, everything else is the
     node's own affine stream, computed arithmetically. [addr_of] is
     exact: it reproduces [Address_plan.addr] including the
     first-realised-edge-wins redirect order. *)
  let own_streams =
    if fast_ok then Array.init n (fun v -> Address_plan.stream plan ~node:v)
    else [||]
  in
  let has_mem_in = Array.make n false in
  let redir_off = a.redir_off
  and redir_iter = ref a.redir_iter
  and redir_addr = ref a.redir_addr in
  (* Iterations where a probabilistic memory-dependence coin fires; the
     loads they redirect run in threads [i, i + max_stage]. *)
  let coin_iters =
    if not fast_ok then begin
      Array.fill redir_off 0 (n + 1) 0;
      [||]
    end
    else begin
      let acc = ref [] in
      (* incoming Mem edges per consumer, in edge-index order — the order
         [Address_plan.addr] consults them *)
      let by_dst = Array.make n [] in
      Array.iteri
        (fun idx (e : Ts_ddg.Ddg.edge) ->
          if e.kind = Ts_ddg.Ddg.Mem then begin
            by_dst.(e.dst) <- (idx, e) :: by_dst.(e.dst);
            has_mem_in.(e.dst) <- true
          end)
        g.edges;
      Array.iteri (fun v l -> by_dst.(v) <- List.rev l) by_dst;
      (* Realised (iter, addr) redirects per consumer, ascending by iter:
         collected per dst (reversed), then flattened into the CSR. *)
      let per_dst = Array.make n [] in
      let n_redir = ref 0 in
      Array.iteri
        (fun dst edges ->
          if edges <> [] then
            for it = 0 to total - 1 do
              let rec first = function
                | [] -> ()
                | (idx, _) :: rest ->
                    if Address_plan.realised plan ~edge_index:idx ~iter:it
                    then begin
                      acc := it :: !acc;
                      per_dst.(dst) <-
                        (it, Address_plan.addr plan ~node:dst ~iter:it)
                        :: per_dst.(dst);
                      incr n_redir
                    end
                    else first rest
              in
              first edges
            done)
        by_dst;
      arena_ensure_redir a !n_redir;
      redir_iter := a.redir_iter;
      redir_addr := a.redir_addr;
      let ri = !redir_iter and ra = !redir_addr in
      let off = ref 0 in
      for v = 0 to n - 1 do
        (* [per_dst.(v)] is descending by iter; fill its segment from the
           back so the CSR segment ends up ascending. *)
        let seg = List.length per_dst.(v) in
        redir_off.(v) <- !off;
        let at = ref (!off + seg - 1) in
        List.iter
          (fun (it, addr) ->
            ri.(!at) <- it;
            ra.(!at) <- addr;
            decr at)
          per_dst.(v);
        off := !off + seg
      done;
      redir_off.(n) <- !off;
      Array.of_list (List.sort_uniq compare !acc)
    end
  in
  let redir_iter = !redir_iter and redir_addr = !redir_addr in
  let addr_of ~node ~iter =
    if not fast_ok then Address_plan.addr plan ~node ~iter
    else begin
      let redirected =
        if has_mem_in.(node) then begin
          let rec bs lo hi =
            if lo >= hi then min_int
            else
              let m = (lo + hi) / 2 in
              let it = redir_iter.(m) in
              if it = iter then redir_addr.(m)
              else if it < iter then bs (m + 1) hi
              else bs lo m
          in
          bs redir_off.(node) redir_off.(node + 1)
        end
        else min_int
      in
      if redirected <> min_int then redirected
      else
        match own_streams.(node) with
        | Some (base, stride, ws) -> base + (stride * iter mod ws)
        | None -> Address_plan.addr plan ~node ~iter
    end
  in
  (* Is any coin iteration inside [lo, hi]? *)
  let coin_in lo hi =
    let len = Array.length coin_iters in
    len > 0
    &&
    let rec bs x b =
      if x >= b then x
      else
        let m = (x + b) / 2 in
        if coin_iters.(m) < lo then bs (m + 1) b else bs x m
    in
    let idx = bs 0 len in
    idx < len && coin_iters.(idx) <= hi
  in
  let coin_affects j = coin_in (j - max_stage) j in
  let no_coins_from j =
    let len = Array.length coin_iters in
    len = 0 || coin_iters.(len - 1) + max_stage < j
  in
  (* ---- analytic MDT occupancy ----

     The MDT's record/prune/retire sequence — hence its live count and
     peak — is a pure function of thread indices: every thread records
     every store exactly once in node order (squashed or not), each store
     stream revisits an address exactly every [P_v = ws / gcd stride ws]
     iterations, and retires run on the fixed 64-thread cadence. When no
     store's address can be redirected (no Mem edge lands on a store) and
     every P_v >= horizon — so the entry from [P_v] threads back is the
     only same-address entry alive, and is always stale when overwritten —
     the live/peak trajectory can be maintained with O(1) integer updates
     per record, and the hashtable only has to hold real entries close
     enough to a coin-affected thread that a conflict query could see
     them. Everywhere else, conflict queries probe load-region addresses
     that no store ever writes and answer None off an address mismatch no
     matter what the table holds. *)
  let store_periods =
    List.filter_map
      (fun v ->
        match if fast_ok then own_streams.(v) else None with
        | Some (_, stride, ws) -> Some (v, ws / gcd stride ws)
        | None -> None)
      store_l
  in
  let analytic_mdt =
    fast_ok
    && (not (List.exists (fun v -> has_mem_in.(v)) store_l))
    && List.length store_periods = n_stores
    && List.for_all (fun (_, pv) -> pv >= horizon) store_periods
  in
  let store_pv = Array.make n 0 in
  List.iter (fun (v, pv) -> store_pv.(v) <- pv) store_periods;
  (* A thread's stores must really sit in the table iff a coin-affected
     thread within [horizon] ahead could query them. *)
  let mdt_relevant t =
    Array.length coin_iters > 0 && coin_in (t - max_stage) (t + horizon - 1)
  in
  let av_live = ref 0 in
  let av_peak = ref 0 in
  let av_u = ref min_int in
  (* The record of store [v] by thread [j]: +1 entry, minus the entry from
     [j - P_v] if it is still in the table (recorded, not yet retired; it
     cannot have been pruned earlier, and it is always stale now). *)
  let av_record j v =
    let t1 = j - store_pv.(v) in
    let present = t1 >= 0 && t1 >= !av_u in
    if not present then begin
      incr av_live;
      if !av_live > !av_peak then av_peak := !av_live
    end
  in
  (* The retire after thread [j]: entries below [j - horizon] leave. Store
     [v]'s live entries are exactly threads [max (j-P_v+1) (max !av_u 0)
     .. j]. *)
  let av_retire j =
    let upto = j - horizon in
    let removed =
      List.fold_left
        (fun acc (_, pv) ->
          let lo = max (j - pv + 1) (max !av_u 0) in
          acc + max 0 (upto - lo))
        0 store_periods
    in
    av_live := !av_live - removed;
    if upto > !av_u then av_u := upto
  in
  let rec_cap = a.cap_n in
  let fresh_rec () =
    {
      r_valid = false;
      r_start = 0;
      r_end_exec = 0;
      r_commit_end = 0;
      r_spawn = 0;
      r_squashed = false;
      r_coin = false;
      r_stalls = [];
      r_finish = Array.make rec_cap 0;
      r_issue = Array.make rec_cap 0;
      r_lats = Array.make rec_cap 0;
    }
  in
  let fresh_window () =
    match a.win_pool with
    | w :: rest ->
        a.win_pool <- rest;
        Array.iter (fun r -> r.r_valid <- false) w;
        w
    | [] -> Array.init w_len (fun _ -> fresh_rec ())
  in
  let wprev = ref (if fast_ok then fresh_window () else [||]) in
  let wcur = ref (if fast_ok then fresh_window () else [||]) in
  let prev_clean = ref false in
  let engaged = ref false in
  let allhit = ref false in
  let sig0 = ref [||] in
  let sig_base = ref 0 in
  let engage_first = ref 0 in (* first extrapolation-eligible thread *)
  let delta = ref 0 in
  let sig_allhit = ref false in
  let engage_count = ref 0 in
  let extrap_count = ref 0 in
  let mismatch_count = ref 0 in
  let analytic_l1_hits = ref 0 in
  let lat_buf = a.lat_buf in
  (* Every L1 line each load's stream can touch, per (iteration mod ncore)
     residue: the stream revisits addresses with period ws / gcd(stride,
     ws), and a load's iterations on one core share a residue class. *)
  let line_sets =
    lazy
      (List.filter_map
         (fun v ->
           if (Ts_ddg.Ddg.node g v).Ts_ddg.Ddg.op <> Ts_isa.Opcode.Load then
             None
           else
             match Address_plan.stream plan ~node:v with
             | None -> Some (v, Array.make ncore [])
             | Some (base, stride, ws) ->
                 let pv = ws / gcd stride ws in
                 let l = pv * ncore / gcd pv ncore in
                 let per_res = Array.make ncore [] in
                 let seen = Hashtbl.create 64 in
                 for t = 0 to l - 1 do
                   let addr = base + (stride * t mod ws) in
                   let key = (t mod ncore, addr / cfg.line) in
                   if not (Hashtbl.mem seen key) then begin
                     Hashtbl.replace seen key ();
                     per_res.(t mod ncore) <- addr :: per_res.(t mod ncore)
                   end
                 done;
                 Some (v, per_res))
         by_row_l)
  in
  let residency_ok () =
    List.for_all
      (fun (v, per_res) ->
        let stage = k.K.stage.(v) in
        let ok = ref true in
        for c = 0 to ncore - 1 do
          let rr = (((c - stage) mod ncore) + ncore) mod ncore in
          List.iter
            (fun addr -> if not (Cache.probe l1.(c) addr) then ok := false)
            per_res.(rr)
        done;
        !ok)
      (Lazy.force line_sets)
  in
  (* Producer finish-time lookback over the history ring; [min_int] for
     "no such thread" (live-in). *)
  let past_finish_i jj v =
    if jj < 0 then min_int
    else
      let s = jj mod horizon in
      match Array.unsafe_get h_kind s with
      | 0 -> min_int
      | 1 -> Array.unsafe_get h_finish ((s * n) + v)
      | _ -> (Array.unsafe_get h_rec s).r_finish.(v) + Array.unsafe_get h_shift s
  in
  (* Thread-timing memoisation (see [Memo_tbl]): every cross-thread
     arrival a RECV fold can read, deduplicated. *)
  let memo_inputs =
    if not fast_ok then [||]
    else begin
      (* Per input, the domination threshold: an arrival with
         [f - start <= thr] can never influence the schedule, because
         every consumer's ready time is at least [start + row(consumer)]
         and arrivals only matter when they exceed it. Clamping the key
         slot there collapses all dominated-arrival variations into one
         memo class without changing the timing function. *)
      let seen : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
      let order = ref [] in
      Array.iteri
        (fun v l ->
          List.iter
            (fun ((e : Ts_ddg.Ddg.edge), dk) ->
              let key = (e.src, dk) in
              let lb = k.K.row.(v) - (dk * p.c_reg_com) in
              match Hashtbl.find_opt seen key with
              | Some cur -> if lb < cur then Hashtbl.replace seen key lb
              | None ->
                  Hashtbl.replace seen key lb;
                  order := key :: !order)
            l)
        reg_in;
      Array.of_list
        (List.rev_map
           (fun (src, dk) -> (src, dk, Hashtbl.find seen (src, dk)))
           !order)
    end
  in
  (* A store's lines can enter an L1 only through a coin-redirected load,
     and redirects only ever target the source of a memory-dependence
     edge: any other store's peer-L1 invalidates hit absent lines and are
     skipped under [fast_ok] (the L2 fill always happens — it drives L2
     evictions loads do see). *)
  let inval_needed =
    let ar = Array.make n true in
    if fast_ok then begin
      Array.fill ar 0 n false;
      Array.iter
        (fun (e : Ts_ddg.Ddg.edge) ->
          if e.kind = Ts_ddg.Ddg.Mem then ar.(e.src) <- true)
        g.edges
    end;
    ar
  in
  let memo = a.memo in
  let memo_cap = 4096 in
  let memo_hits = ref 0 in
  (* Replay this thread's load accesses against the real caches, in the
     same thread-then-row order exact execution would, leaving the
     latencies in [lat_buf]. *)
  let fill_lats j =
    let core = core_of j in
    for i = 0 to n_loads - 1 do
      let v = loads.(i) in
      let addr = addr_of ~node:v ~iter:(j - k.K.stage.(v)) in
      lat_buf.(v) <-
        (if l1_access core addr then cfg.l1_hit
         else if l2_access addr then cfg.l2_hit
         else cfg.mem_latency)
    done
  in
  (* The memo key is assembled in an exact-length scratch (so structural
     equality sees only live slots) and copied only on table insert. *)
  let n_inputs = Array.length memo_inputs in
  let key_scratch = Array.make (n_inputs + n_loads) 0 in
  let memo_key_fill j start =
    for i = 0 to n_inputs - 1 do
      let src, dk, thr = memo_inputs.(i) in
      let f = past_finish_i (j - dk) src in
      key_scratch.(i) <-
        (if f = min_int then thr (* live-in: available at loop entry *)
         else
           let r = f - start in
           if r < thr then thr else r)
    done;
    for i = 0 to n_loads - 1 do
      key_scratch.(n_inputs + i) <- lat_buf.(loads.(i))
    done
  in
  (* Per-thread results, threaded through run-local cells instead of a
     freshly allocated record per thread. [cur_stalls] is chronological;
     the empty list is the common (and allocation-free) case. *)
  let cur_start = ref 0 in
  let cur_end = ref 0 in
  let cur_spawn = ref 0 in
  let cur_squashed = ref false in
  let cur_stalls = ref [] in
  (* Per-cycle issue counts for finite-width cores; reset per thread. *)
  let iw_tbl : (int, int) Hashtbl.t =
    Hashtbl.create (if has_width then 64 else 1)
  in
  (* Execute one thread into its history-ring slot; [recv] false on
     re-execution (values present). [use_lats] short-circuits the load
     cache accesses with the latencies already in [lat_buf] (the caller
     replayed them); otherwise loads access the caches and the observed
     latency lands in [lat_buf]. Leaves start/end/stalls in the cells
     above. *)
  let exec_thread ~use_lats j ~base start ~recv =
    cur_start := start;
    (* Intra-thread dataflow reads default to 0 for not-yet-issued
       producers (matching a zero-initialised scratch thread), so the
       reused slot's finish plane must be wiped first. *)
    Array.fill h_finish base n 0;
    let end_exec = ref start in
    let stalls = ref [] in
    (* Schedule replay with blocking receives: instructions issue at their
       static kernel row plus the shift accumulated by earlier RECV stalls.
       A RECV on an empty queue (Voltron's queue model) blocks the in-order
       front end, so it pushes the remainder of the thread back — the
       semantics under which Definition 2's sync(x, y) is the per-thread
       serialisation that the Section 4.2 cost model assumes. Cache misses,
       in contrast, are absorbed out-of-order (lockup-free caches): they
       delay only their dataflow consumers, via the intra-dep fold. *)
    let shift = ref 0 in
    let core = core_of j in
    let lat_scale = Array.unsafe_get core_scale core in
    let width = Array.unsafe_get core_width core in
    if has_width then Hashtbl.reset iw_tbl;
    let comm_base =
      if uniform_rr then 0 else j mod place_period * (max_lookback + 1)
    in
    for idx = 0 to n - 1 do
      let v = Array.unsafe_get by_row idx in
      let nd = Ts_ddg.Ddg.node g v in
      let sched = start + k.K.row.(v) in
      let intra_ready = ref 0 in
      for i = intra_off.(v) to intra_off.(v + 1) - 1 do
        let f = Array.unsafe_get h_finish (base + Array.unsafe_get intra_src i) in
        if f > !intra_ready then intra_ready := f
      done;
      let inter_arrival = ref 0 and blame_src = ref (-1) in
      if recv then
        for i = reg_off.(v) to reg_off.(v + 1) - 1 do
          let src = Array.unsafe_get reg_src i in
          let dk = Array.unsafe_get reg_dk i in
          let f = past_finish_i (j - dk) src in
          if f <> min_int then begin
            let arr =
              f
              +
              if uniform_rr then dk * p.c_reg_com
              else Array.unsafe_get comm_tbl (comm_base + dk)
            in
            if arr > !inter_arrival then begin
              inter_arrival := arr;
              blame_src := src
            end
          end
        done;
      let slot = sched + !shift in
      let ready = if slot > !intra_ready then slot else !intra_ready in
      if recv && !inter_arrival > ready then begin
        let cycles = !inter_arrival - ready in
        (* The blocked RECV pushes the rest of the thread back. Delays of
           several RECVs overlap rather than add — while the front end
           sits at one empty queue the other queues fill — so the
           thread-level shift is the max of the individual delays
           (measured from each instruction's own slot), exactly the
           max(C_spn, C_ci, C_delay) structure of the Section 4.2 cost
           model. *)
        if !inter_arrival - sched > !shift then shift := !inter_arrival - sched;
        let blamed =
          if !blame_src >= 0 then Some (!blame_src, v) else None
        in
        stalls := (blamed, cycles, ready) :: !stalls
      end;
      let issue = if ready > !inter_arrival then ready else !inter_arrival in
      (* Finite issue width (heterogeneous cores only): at most [width]
         instructions may start per cycle, so an over-subscribed cycle
         slides the instruction forward. A structural slide is absorbed
         out-of-order like a cache miss — it delays dataflow consumers
         through the finish times, not the in-order front end. *)
      let issue =
        if width = 0 then issue
        else begin
          let c = ref issue in
          while
            match Hashtbl.find_opt iw_tbl !c with
            | Some used -> used >= width
            | None -> false
          do
            incr c
          done;
          let used =
            match Hashtbl.find_opt iw_tbl !c with Some u -> u | None -> 0
          in
          Hashtbl.replace iw_tbl !c (used + 1);
          !c
        end
      in
      let latency =
        match nd.op with
        | Ts_isa.Opcode.Load ->
            if use_lats then Array.unsafe_get lat_buf v
            else begin
              let addr = addr_of ~node:v ~iter:(j - k.K.stage.(v)) in
              let lat =
                if l1_access core addr then cfg.l1_hit
                else if l2_access addr then cfg.l2_hit
                else cfg.mem_latency
              in
              Array.unsafe_set lat_buf v lat;
              lat
            end
        | _ -> nd.latency * lat_scale
      in
      Array.unsafe_set h_issue (base + v) issue;
      let fin = issue + latency in
      Array.unsafe_set h_finish (base + v) fin;
      if fin > !end_exec then end_exec := fin
    done;
    cur_end := !end_exec;
    cur_stalls := List.rev !stalls
  in
  let account_stalls ~core ~j stalls =
    List.iter
      (fun (blamed, cycles, ts) ->
        sync_stall := !sync_stall + cycles;
        if traced then
          Trace.instant trace ~pid:trace_pid ~tid:core ~ts "sync-stall"
            ~args:
              ([ ("thread", J.Int j); ("cycles", J.Int cycles) ]
              @
              match blamed with
              | Some (src, dst) ->
                  [ ("producer", J.Int src); ("consumer", J.Int dst) ]
              | None -> []);
        match blamed with
        | Some (src, dst) -> stall_add src dst cycles
        | None -> ())
      stalls
  in
  let emit_exec_span ~core ~j name ~ts0 ~ts1 =
    Trace.begin_span trace ~pid:trace_pid ~tid:core ~ts:ts0 name
      ~args:[ ("thread", J.Int j) ];
    Trace.end_span trace ~pid:trace_pid ~tid:core ~ts:ts1 name
  in
  (* One exactly simulated thread: the seed simulator's loop body.
     [lats] true means the fast path already replayed this thread's load
     accesses into [lat_buf]. *)
  let exact_step j ~lats =
    let measured = j >= warmup in
    let core = core_of j in
    let base = j mod horizon * n in
    let spawn_ready = !prev_spawn_base + p.c_spawn in
    let start = max spawn_ready core_free.(core) in
    let spawn_cycles = max 0 (core_free.(core) - spawn_ready) in
    cur_spawn := spawn_cycles;
    if measured && spawn_cycles > 0 then
      spawn_stall := !spawn_stall + spawn_cycles;
    if fast_ok && (not check) && not (coin_affects j) then begin
      (* Coin-free thread: timing is a pure function of the arrival
         offsets and the load latencies (see [Memo_tbl]). Replay the
         loads first — the latency vector is half the key. *)
      if not lats then fill_lats j;
      memo_key_fill j start;
      match Memo_tbl.find_opt memo key_scratch with
      | Some m ->
          incr memo_hits;
          let mi = m.mv_issue and mf = m.mv_finish in
          for v = 0 to n - 1 do
            Array.unsafe_set h_issue (base + v) (Array.unsafe_get mi v + start);
            Array.unsafe_set h_finish (base + v) (Array.unsafe_get mf v + start)
          done;
          cur_start := start;
          cur_end := m.mv_end + start;
          cur_stalls :=
            List.map (fun (b, c, ts) -> (b, c, ts + start)) m.mv_stalls
      | None ->
          exec_thread ~use_lats:true j ~base start ~recv:true;
          if Memo_tbl.length memo < memo_cap then
            Memo_tbl.add memo (Array.copy key_scratch)
              {
                mv_issue =
                  Array.init n (fun v -> h_issue.(base + v) - start);
                mv_finish =
                  Array.init n (fun v -> h_finish.(base + v) - start);
                mv_end = !cur_end - start;
                mv_stalls =
                  List.map (fun (b, c, ts) -> (b, c, ts - start)) !cur_stalls;
              }
    end
    else exec_thread ~use_lats:lats j ~base start ~recv:true;
    if measured then account_stalls ~core ~j !cur_stalls;
    (* All of this thread's (and every later thread's) write-buffer events
       lie at or after [start]; older events are now final. *)
    wb_finalize start;
    (* MDT check: did any load read a location a less speculative thread
       had not yet written? A coin-free thread under [fast_ok] reads only
       its own stream regions, which no store ever writes (redirects only
       target store streams and the per-node regions are disjoint), so
       the probes are skipped — they could only answer [None]. *)
    let viol = ref None in
    if (not fast_ok) || coin_affects j then
      for i = 0 to n_loads - 1 do
        let v = loads.(i) in
        if mem_nonempty.(v) then begin
          let addr = addr_of ~node:v ~iter:(j - k.K.stage.(v)) in
          match
            mdt_conflict ~thread:j ~addr ~issue:h_issue.(base + v)
          with
          | Some t_detect ->
              viol :=
                Some
                  (match !viol with
                  | None -> t_detect
                  | Some t -> max t t_detect)
          | None -> ()
        end
      done;
    (match !viol with
    | None ->
        if traced && measured then
          emit_exec_span ~core ~j "exec" ~ts0:start ~ts1:!cur_end
    | Some t_detect ->
        if measured then incr squashes;
        let restart = t_detect + p.c_inv in
        if check && restart < t_detect + p.c_inv then
          Chk.failf "Sim.run: thread %d restarts at %d, before detection %d \
                     + invalidation overhead %d"
            j restart t_detect p.c_inv;
        (* The wasted attempt's stores sat in the buffer until the
           invalidation completed. *)
        wb_stores ~base ~drain:restart;
        if traced && measured then begin
          (* The wasted first attempt, cut off where the MDT caught the
             premature load; the re-execution follows after [c_inv]. *)
          emit_exec_span ~core ~j "exec (squashed)" ~ts0:start ~ts1:t_detect;
          Trace.instant trace ~pid:trace_pid ~tid:core ~ts:t_detect "squash"
            ~args:
              [
                ("thread", J.Int j);
                ("detected", J.Int t_detect);
                ("restart", J.Int restart);
              ]
        end;
        (* Keep the first attempt's RECV stalls: they were already
           accounted, and the detection-window record wants them. *)
        let stalls0 = !cur_stalls in
        exec_thread ~use_lats:false j ~base restart ~recv:false;
        cur_stalls := stalls0;
        if traced && measured then
          emit_exec_span ~core ~j "re-exec" ~ts0:restart ~ts1:!cur_end);
    if check then
      for idx = 0 to n - 1 do
        let v = by_row.(idx) in
        if h_issue.(base + v) < !cur_start then
          Chk.failf "Sim.run: thread %d issues node %d at %d, before its \
                     own start %d"
            j v h_issue.(base + v) !cur_start;
        if h_finish.(base + v) < h_issue.(base + v) then
          Chk.failf "Sim.run: thread %d finishes node %d at %d, before its \
                     issue %d"
            j v h_finish.(base + v) h_issue.(base + v)
      done;
    (* Record this thread's stores in the MDT. Under the analytic
       occupancy model the hashtable only takes the entries a
       coin-affected thread could query. *)
    let mdt_real = (not analytic_mdt) || mdt_relevant j in
    for i = 0 to n_stores - 1 do
      let v = stores.(i) in
      if analytic_mdt then av_record j v;
      if mdt_real then begin
        let addr = addr_of ~node:v ~iter:(j - k.K.stage.(v)) in
        mdt_record ~thread:j ~addr ~finish:h_finish.(base + v)
      end
    done;
    (* Sequential head-thread commit; the write buffer drains into L2 and
       invalidates stale L1 copies in the other cores. *)
    let commit_start = max !cur_end !last_commit_end in
    let commit_end = commit_start + p.c_commit in
    if check then begin
      if commit_start < !last_commit_end then
        Chk.failf "Sim.run: thread %d starts committing at %d while its \
                   predecessor commits until %d (sequential commit order \
                   violated)"
          j commit_start !last_commit_end;
      if commit_start < !cur_end then
        Chk.failf "Sim.run: thread %d starts committing at %d before it \
                   finished executing at %d"
          j commit_start !cur_end;
      if commit_end < commit_start + p.c_commit then
        Chk.failf "Sim.run: thread %d commit %d..%d is shorter than the \
                   commit overhead %d"
          j commit_start commit_end p.c_commit
    end;
    last_commit_end := commit_end;
    wb_stores ~base ~drain:commit_end;
    if j = warmup - 1 then begin
      warm_end := commit_end;
      Array.iter Cache.reset_stats l1;
      Cache.reset_stats l2;
      if check then begin
        Array.iter Ref.Cache.reset_stats rl1;
        Ref.Cache.reset_stats rl2.(0)
      end
    end;
    core_free.(core) <- commit_end;
    for i = 0 to n_stores - 1 do
      let v = stores.(i) in
      let addr = addr_of ~node:v ~iter:(j - k.K.stage.(v)) in
      l2_fill addr;
      if inval_needed.(v) then
        for c = 0 to ncore - 1 do
          if c <> core then l1_invalidate c addr
        done
    done;
    if traced && j >= warmup then begin
      Trace.begin_span trace ~pid:trace_pid ~tid:core ~ts:commit_start "commit"
        ~args:[ ("thread", J.Int j) ];
      Trace.end_span trace ~pid:trace_pid ~tid:core ~ts:commit_end "commit";
      (* Sampled occupancy: MDT entries live after this thread's stores,
         plus this thread's speculative-write-buffer footprint. *)
      if j land 31 = 0 then
        Trace.counter_sample trace ~pid:trace_pid ~ts:commit_end "occupancy"
          [
            ("mdt", float_of_int (Mdt.live_entries mdt));
            (* Write-buffer entries across all in-flight threads, as of
               this thread's start (the latest instant the event sweep has
               fully resolved). *)
            ("wb", float_of_int !wb_cur);
          ]
    end;
    (match observe with
    | Some f ->
        f
          {
            index = j;
            core;
            start = !cur_start;
            end_exec = !cur_end;
            commit_start;
            commit_end;
            squashed = !viol <> None;
          }
    | None -> ());
    h_kind.(j mod horizon) <- 1;
    cur_squashed := !viol <> None;
    (* Successors respawn from the (possibly re-executed) thread's start. *)
    prev_spawn_base := !cur_start;
    if j mod 64 = 63 then begin
      if analytic_mdt then begin
        av_retire j;
        (* keep the (tiny) coin-neighbourhood table pruned *)
        if Array.length coin_iters > 0 then Mdt.retire mdt ~upto:(j - horizon)
      end
      else mdt_retire ~upto:(j - horizon)
    end
  in
  (* ---- fast-path machinery ---- *)
  let record j =
    let o = j mod w_len in
    let r = (!wcur).(o) in
    r.r_valid <- true;
    r.r_start <- !cur_start;
    r.r_end_exec <- !cur_end;
    r.r_commit_end <- !last_commit_end;
    r.r_spawn <- !cur_spawn;
    r.r_squashed <- !cur_squashed;
    r.r_coin <- coin_affects j;
    r.r_stalls <- !cur_stalls;
    let base = j mod horizon * n in
    Array.blit h_finish base r.r_finish 0 n;
    Array.blit h_issue base r.r_issue 0 n;
    for i = 0 to n_loads - 1 do
      let v = loads.(i) in
      r.r_lats.(v) <- lat_buf.(v)
    done
  in
  (* [b.(i) = a.(i) + d] over the run's live prefix. *)
  let shift_eq a b d =
    let ok = ref true in
    for i = 0 to n - 1 do
      if b.(i) <> a.(i) + d then ok := false
    done;
    !ok
  in
  (* The history slot at [base] against a window record, under shift. *)
  let slot_shift_eq (rarr : int array) flat base d =
    let ok = ref true in
    for i = 0 to n - 1 do
      if flat.(base + i) <> rarr.(i) + d then ok := false
    done;
    !ok
  in
  let rec stalls_eq sa sb d =
    match (sa, sb) with
    | [], [] -> true
    | (ba, ca, ta) :: ra, (bb, cb, tb) :: rb ->
        ba = bb && ca = cb && tb = ta + d && stalls_eq ra rb d
    | _ -> false
  in
  let window_clean w =
    Array.for_all (fun r -> r.r_valid && (not r.r_squashed) && not r.r_coin) w
  in
  (* Leave the engaged regime at thread [j] (which just ran exactly, with
     live write-buffer sweeping, starting at [upto]). While engaged the
     extrapolated threads' write-buffer events were skipped — the steady
     state replays the signature window's already-recorded occupancy
     trajectory, so they cannot move the peak — but the exact threads that
     follow sweep again from [upto], so re-materialise the skipped pairs
     that are still in flight. Pairs that drained before [upto] net to
     zero at every future sweep point and stay skipped. *)
  let disengage ~j ~upto =
    let t = ref (j - 1) in
    let flowing = ref true in
    while !flowing && !t >= !engage_first do
      let tt = !t in
      let r = (!sig0).(tt mod w_len) in
      let shift = (tt - !sig_base) / w_len * !delta in
      let ce = r.r_commit_end + shift in
      if ce < upto then flowing := false
      else begin
        (* coin-affected threads ran exactly: their events are already in *)
        if not (coin_affects tt) then
          for i = 0 to n_stores - 1 do
            let v = stores.(i) in
            wb_push a (((r.r_issue.(v) + shift) lsl 1) lor 1);
            wb_push a (ce lsl 1)
          done;
        decr t
      end
    done;
    engaged := false;
    allhit := false;
    prev_clean := false;
    Array.iter (fun r -> r.r_valid <- false) !wprev;
    Array.iter (fun r -> r.r_valid <- false) !wcur
  in
  let try_engage next =
    let cur_clean = window_clean !wcur in
    (if !prev_clean && cur_clean then begin
       let wp = !wprev and wc = !wcur in
       let d = wc.(0).r_start - wp.(0).r_start in
       let ok = ref (d > 0) in
       for o = 0 to w_len - 1 do
         if !ok then begin
           let rp = wp.(o) and rc = wc.(o) in
           ok :=
             rc.r_start = rp.r_start + d
             && rc.r_end_exec = rp.r_end_exec + d
             && rc.r_commit_end = rp.r_commit_end + d
             && rc.r_spawn = rp.r_spawn
             && stalls_eq rp.r_stalls rc.r_stalls d
             && shift_eq rp.r_finish rc.r_finish d
             && shift_eq rp.r_issue rc.r_issue d
             &&
             let same = ref true in
             for i = 0 to n_loads - 1 do
               let v = loads.(i) in
               if rp.r_lats.(v) <> rc.r_lats.(v) then same := false
             done;
             !same
         end
       done;
       if !ok then begin
         engaged := true;
         (* The previous engagement's signature (if any) can be pooled:
            by now the history ring holds only really-executed threads,
            so nothing references its records. *)
         if Array.length !sig0 > 0 then a.win_pool <- !sig0 :: a.win_pool;
         sig0 := !wcur;
         sig_base := next - w_len;
         engage_first := next;
         delta := d;
         sig_allhit :=
           Array.for_all
             (fun r ->
               let all = ref true in
               for i = 0 to n_loads - 1 do
                 if r.r_lats.(loads.(i)) <> cfg.l1_hit then all := false
               done;
               !all)
             !sig0;
         incr engage_count;
         wcur := fresh_window ();
         prev_clean := false;
         Array.iter (fun r -> r.r_valid <- false) !wprev
       end
     end);
    if not !engaged then begin
      let t = !wprev in
      wprev := !wcur;
      wcur := t;
      prev_clean := cur_clean;
      Array.iter (fun r -> r.r_valid <- false) !wcur
    end
  in
  let try_allhit next =
    if no_coins_from next && !sig_allhit && residency_ok () then allhit := true
  in
  (* Replay an extrapolation candidate's loads against the real caches and
     compare the latency pattern with the signature. Always completes the
     full access sequence so a mismatching thread can continue exactly. *)
  let replay_loads j (r : fp_rec) =
    fill_lats j;
    let diff = ref false in
    for i = 0 to n_loads - 1 do
      let v = loads.(i) in
      if lat_buf.(v) <> r.r_lats.(v) then diff := true
    done;
    !diff
  in
  (* Apply one extrapolated thread's observable effects. [fills] is false
     only in the proven all-hit regime, where store fills/invalidates
     touch lines no load can ever read (disjoint stream regions) and the
     caches are no longer consulted at all. *)
  let extrapolate j (r : fp_rec) shift ~fills =
    let core = core_of j in
    let measured = j >= warmup in
    let start = r.r_start + shift in
    let commit_end = r.r_commit_end + shift in
    if measured && r.r_spawn > 0 then spawn_stall := !spawn_stall + r.r_spawn;
    if measured then
      List.iter
        (fun (blamed, cycles, _) ->
          sync_stall := !sync_stall + cycles;
          match blamed with
          | Some (src, dst) -> stall_add src dst cycles
          | None -> ())
        r.r_stalls;
    (* No write-buffer events while engaged: the steady state repeats the
       signature window's recorded occupancy trajectory (every event
       shifts uniformly), so the peak cannot move; [disengage]
       re-materialises in-flight pairs if exact execution resumes. *)
    let mdt_real = (not analytic_mdt) || mdt_relevant j in
    for i = 0 to n_stores - 1 do
      let v = stores.(i) in
      if analytic_mdt then av_record j v;
      if mdt_real || fills then begin
        let addr = addr_of ~node:v ~iter:(j - k.K.stage.(v)) in
        if mdt_real then
          mdt_record ~thread:j ~addr ~finish:(r.r_finish.(v) + shift);
        if fills then begin
          l2_fill addr;
          if inval_needed.(v) then
            for c = 0 to ncore - 1 do
              if c <> core then l1_invalidate c addr
            done
        end
      end
    done;
    last_commit_end := commit_end;
    if j = warmup - 1 then begin
      warm_end := commit_end;
      Array.iter Cache.reset_stats l1;
      Cache.reset_stats l2
    end;
    core_free.(core) <- commit_end;
    if (not fills) && measured then
      analytic_l1_hits := !analytic_l1_hits + n_loads;
    let s = j mod horizon in
    h_kind.(s) <- 2;
    h_rec.(s) <- r;
    h_shift.(s) <- shift;
    prev_spawn_base := start;
    if j mod 64 = 63 then begin
      if analytic_mdt then begin
        av_retire j;
        if Array.length coin_iters > 0 then Mdt.retire mdt ~upto:(j - horizon)
      end
      else mdt_retire ~upto:(j - horizon)
    end;
    incr extrap_count
  in
  for j = 0 to total - 1 do
    if !engaged then begin
      let o = j mod w_len in
      let shift = (j - !sig_base) / w_len * !delta in
      let r = (!sig0).(o) in
      if coin_affects j then begin
        (* A coin-touched iteration can redirect a load and squash: run it
           exactly and stay engaged only if it lands on its prediction. *)
        exact_step j ~lats:false;
        let base = j mod horizon * n in
        let same =
          (not !cur_squashed)
          && !cur_spawn = r.r_spawn
          && !cur_start = r.r_start + shift
          && !cur_end = r.r_end_exec + shift
          && !last_commit_end = r.r_commit_end + shift
          && slot_shift_eq r.r_finish h_finish base shift
          && slot_shift_eq r.r_issue h_issue base shift
        in
        if not same then disengage ~j ~upto:!cur_start
      end
      else if not !allhit then begin
        if replay_loads j r then begin
          (* The cache pattern moved (stream wrap, conflict eviction):
             finish this thread exactly — its cache accesses are already
             done and exact — and drop back to detection. *)
          incr mismatch_count;
          exact_step j ~lats:true;
          disengage ~j ~upto:!cur_start
        end
        else extrapolate j r shift ~fills:true
      end
      else extrapolate j r shift ~fills:false;
      if !engaged && (not !allhit) && (j + 1) mod w_len = 0 then
        try_allhit (j + 1)
    end
    else begin
      exact_step j ~lats:false;
      if fast_ok then begin
        record j;
        if (j + 1) mod w_len = 0 then try_engage (j + 1)
      end
    end
  done;
  wb_finalize max_int;
  if check then begin
    if !wb_cur <> 0 then
      Chk.failf "Sim.run: %d write-buffer entries never drained" !wb_cur;
    if !sync_stall < 0 then
      Chk.failf "Sim.run: negative sync stall total %d" !sync_stall;
    if !spawn_stall < 0 then
      Chk.failf "Sim.run: negative spawn stall total %d" !spawn_stall;
    if !last_commit_end < !warm_end then
      Chk.failf "Sim.run: last commit %d precedes the warmup boundary %d"
        !last_commit_end !warm_end;
    check_cache_stats ~what:"L2" l2 rl2.(0);
    Array.iteri
      (fun c l1c ->
        check_cache_stats ~what:(Printf.sprintf "L1 (core %d)" c) l1c rl1.(c))
      l1
  end;
  let l1_hits, l1_misses =
    Array.fold_left
      (fun (h, m) c ->
        let h', m' = Cache.stats c in
        (h + h', m + m'))
      (0, 0) l1
  in
  let l1_hits = l1_hits + !analytic_l1_hits in
  let l2_hits, l2_misses = Cache.stats l2 in
  let final_mdt_peak = if analytic_mdt then !av_peak else Mdt.peak_entries mdt in
  let pairs = pairs_per_iter * trip in
  (* Mirror run totals onto the default registry, in bulk, so the hot loop
     never touches a hashtable. *)
  Ts_obs.Metrics.incr ~by:trip m_threads;
  Ts_obs.Metrics.incr ~by:!squashes m_squashes;
  Ts_obs.Metrics.incr ~by:!sync_stall m_sync_stalls;
  Ts_obs.Metrics.incr ~by:!spawn_stall m_spawn_stalls;
  Ts_obs.Metrics.set_gauge m_mdt_peak (float_of_int final_mdt_peak);
  if !engage_count > 0 then
    Ts_obs.Metrics.incr ~by:!engage_count m_fp_engaged;
  if !extrap_count > 0 then Ts_obs.Metrics.incr ~by:!extrap_count m_fp_extrap;
  if !mismatch_count > 0 then
    Ts_obs.Metrics.incr ~by:!mismatch_count m_fp_mismatch;
  if !memo_hits > 0 then Ts_obs.Metrics.incr ~by:!memo_hits m_fp_memo;
  if traced then
    Trace.instant trace ~pid:trace_pid ~ts:!last_commit_end "sim.end"
      ~args:
        [
          ("cycles", J.Int (!last_commit_end - !warm_end));
          ("squashes", J.Int !squashes);
          ("sync_stall_cycles", J.Int !sync_stall);
        ];
  (* Return the detection windows to the pool for the next run on this
     domain. The sets {wprev, wcur} and the signature are distinct arrays
     whenever non-empty. *)
  if fast_ok then begin
    a.win_pool <- !wprev :: !wcur :: a.win_pool;
    if Array.length !sig0 > 0 then a.win_pool <- !sig0 :: a.win_pool
  end;
  let breakdown =
    let lst = ref [] in
    for i = a.stall_ntouched - 1 downto 0 do
      let idx = a.stall_touched.(i) in
      let c = a.stall_cnt.(idx) in
      if c > 0 then lst := ((idx / n, idx mod n), c) :: !lst
    done;
    List.sort (fun (_, x) (_, y) -> compare y x) !lst
  in
  {
    cycles = !last_commit_end - !warm_end;
    committed = trip;
    squashes = !squashes;
    misspec_rate = float_of_int !squashes /. float_of_int trip;
    sync_stall_cycles = !sync_stall;
    spawn_stall_cycles = !spawn_stall;
    send_recv_pairs = pairs;
    send_recv_cycles = pairs * p.c_reg_com;
    communication_overhead = !sync_stall + (pairs * p.c_reg_com);
    l1_hits;
    l1_misses;
    l2_hits;
    l2_misses;
    wb_peak = !wb_peak;
    mdt_peak = final_mdt_peak;
    stall_breakdown = breakdown;
  }

let check_fast_vs_exact (exact : stats) (fst : stats) =
  let ck name a b =
    if a <> b then
      Chk.failf "Sim.run: fast path diverged from exact replay on %s: %d vs %d"
        name b a
  in
  ck "cycles" exact.cycles fst.cycles;
  ck "committed" exact.committed fst.committed;
  ck "squashes" exact.squashes fst.squashes;
  ck "sync_stall_cycles" exact.sync_stall_cycles fst.sync_stall_cycles;
  ck "spawn_stall_cycles" exact.spawn_stall_cycles fst.spawn_stall_cycles;
  ck "send_recv_pairs" exact.send_recv_pairs fst.send_recv_pairs;
  ck "send_recv_cycles" exact.send_recv_cycles fst.send_recv_cycles;
  ck "communication_overhead" exact.communication_overhead
    fst.communication_overhead;
  ck "l1_hits" exact.l1_hits fst.l1_hits;
  ck "l1_misses" exact.l1_misses fst.l1_misses;
  ck "l2_hits" exact.l2_hits fst.l2_hits;
  ck "l2_misses" exact.l2_misses fst.l2_misses;
  ck "wb_peak" exact.wb_peak fst.wb_peak;
  ck "mdt_peak" exact.mdt_peak fst.mdt_peak;
  if exact.misspec_rate <> fst.misspec_rate then
    Chk.failf
      "Sim.run: fast path diverged from exact replay on misspec_rate: %g vs %g"
      fst.misspec_rate exact.misspec_rate;
  if
    List.sort compare exact.stall_breakdown
    <> List.sort compare fst.stall_breakdown
  then
    Chk.failf
      "Sim.run: fast path diverged from exact replay on stall_breakdown"

(* Wall-time per [run] call and the cycle-normalised cost of the
   simulated work: ns of host time per simulated cycle, the number the
   ROADMAP 10x-sim target has to move. *)
let m_run_ms = Ts_obs.Metrics.histogram Ts_obs.Metrics.default "sim.run_ms"

let m_ns_per_cycle =
  Ts_obs.Metrics.histogram Ts_obs.Metrics.default "sim.ns_per_cycle"

let timed_internal ?seed ?plan ~sync_mem ~warmup ~check ?observe ~trace
    ~trace_pid ~fast cfg k ~trip =
  Ts_obs.Prof.span (if fast then "sim.run.fast" else "sim.run.exact")
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let st =
    run_internal ?seed ?plan ~sync_mem ~warmup ~check ?observe ~trace
      ~trace_pid ~fast cfg k ~trip
  in
  let dt = Unix.gettimeofday () -. t0 in
  Ts_obs.Metrics.observe m_run_ms (dt *. 1000.0);
  if st.cycles > 0 then
    Ts_obs.Metrics.observe m_ns_per_cycle (dt *. 1e9 /. float_of_int st.cycles);
  st

let run ?seed ?plan ?(sync_mem = false) ?(warmup = 0) ?(check = false) ?observe
    ?(trace = Trace.null) ?(trace_pid = 0) ?(fast = false) cfg (k : K.t) ~trip
    =
  if fast && check then begin
    (* Cross-validate: the exact path runs with the full invariant checks
       (and carries any trace/observe hooks), the fast path runs clean on
       the same address plan, and the two stat records must agree
       field-for-field. *)
    let plan =
      match plan with Some pl -> pl | None -> Address_plan.create ?seed k.K.g
    in
    let exact =
      timed_internal ~plan ~sync_mem ~warmup ~check:true ?observe ~trace
        ~trace_pid ~fast:false cfg k ~trip
    in
    let fst =
      timed_internal ~plan ~sync_mem ~warmup ~check:false ~trace:Trace.null
        ~trace_pid ~fast:true cfg k ~trip
    in
    check_fast_vs_exact exact fst;
    fst
  end
  else
    timed_internal ?seed ?plan ~sync_mem ~warmup ~check ?observe ~trace
      ~trace_pid ~fast cfg k ~trip

let ipc (k : K.t) (s : stats) =
  float_of_int (Ts_ddg.Ddg.n_nodes k.K.g * s.committed) /. float_of_int (max 1 s.cycles)
