module K = Ts_modsched.Kernel
module Trace = Ts_obs.Trace
module J = Ts_obs.Json
module Chk = Ts_check.Invariant
module Ref = Ts_check.Ref_models

(* Simulator totals on the default metrics registry ([tsms --metrics]). *)
let m_threads = Ts_obs.Metrics.counter Ts_obs.Metrics.default "sim.threads"
let m_squashes = Ts_obs.Metrics.counter Ts_obs.Metrics.default "sim.squashes"

let m_sync_stalls =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "sim.sync_stall_cycles"

let m_spawn_stalls =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "sim.spawn_stall_cycles"

let m_mdt_peak = Ts_obs.Metrics.gauge Ts_obs.Metrics.default "sim.mdt_peak"

type stats = {
  cycles : int;
  committed : int;
  squashes : int;
  misspec_rate : float;
  sync_stall_cycles : int;
  spawn_stall_cycles : int;
  send_recv_pairs : int;
  send_recv_cycles : int;
  communication_overhead : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  wb_peak : int;
  mdt_peak : int;
  stall_breakdown : ((int * int) * int) list;
}

(* Per-thread record kept for the lookback window. *)
type thread_exec = {
  start : int;
  finish_of : int array; (* absolute completion time per node *)
  issue_of : int array;
  end_exec : int;
}

type thread_obs = {
  index : int;
  core : int;
  start : int;
  end_exec : int;
  commit_start : int;
  commit_end : int;
  squashed : bool;
}

(* --- Legacy TS_SIM_TRACE env-var debugging (deprecated) ---

   Kept for backwards compatibility with pre-Ts_obs debugging workflows,
   but parsed once up front with real error messages instead of failing
   with a bare [int_of_string] mid-simulation. *)

let parse_trace_range s =
  let bad () =
    Error
      (Printf.sprintf
         "TS_SIM_TRACE: expected a thread-index range LO-HI with 0 <= LO <= HI, \
          got %S" s)
  in
  match String.split_on_char '-' s with
  | [ lo; hi ] -> (
      match (int_of_string_opt (String.trim lo), int_of_string_opt (String.trim hi)) with
      | Some lo, Some hi when 0 <= lo && lo <= hi -> Ok (lo, hi)
      | _ -> bad ())
  | _ -> bad ()

let parse_trace_nodes ~n_nodes s =
  let parse_one tok =
    match int_of_string_opt (String.trim tok) with
    | Some v when 0 <= v && v < n_nodes -> Ok v
    | Some v ->
        Error
          (Printf.sprintf
             "TS_SIM_TRACE_NODES: node %d out of range (loop has %d nodes)" v
             n_nodes)
    | None ->
        Error
          (Printf.sprintf
             "TS_SIM_TRACE_NODES: expected comma-separated node indices, got %S"
             s)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match parse_one tok with Ok v -> go (v :: acc) rest | Error _ as e -> e)
  in
  go [] (String.split_on_char ',' s)

let legacy_deprecation_warned = ref false

let legacy_trace_env ~n_nodes =
  match Sys.getenv_opt "TS_SIM_TRACE" with
  | None -> None
  | Some s ->
      if not !legacy_deprecation_warned then begin
        legacy_deprecation_warned := true;
        prerr_endline
          "tsms: note: TS_SIM_TRACE/TS_SIM_TRACE_NODES are deprecated; prefer \
           the structured tracer (tsms simulate --trace FILE)"
      end;
      let range =
        match parse_trace_range s with
        | Ok r -> r
        | Error msg -> invalid_arg ("Sim.run: " ^ msg)
      in
      let nodes =
        match Sys.getenv_opt "TS_SIM_TRACE_NODES" with
        | None -> []
        | Some s -> (
            match parse_trace_nodes ~n_nodes s with
            | Ok vs -> vs
            | Error msg -> invalid_arg ("Sim.run: " ^ msg))
      in
      Some (range, nodes)

let run ?seed ?plan ?(sync_mem = false) ?(warmup = 0) ?(check = false) ?observe
    ?(trace = Trace.null) ?(trace_pid = 0) cfg (k : K.t) ~trip =
  if trip <= 0 then invalid_arg "Sim.run: trip must be positive";
  if warmup < 0 then invalid_arg "Sim.run: warmup must be non-negative";
  let total = warmup + trip in
  let g = k.K.g in
  let n = Ts_ddg.Ddg.n_nodes g in
  let p = cfg.Config.params in
  let ncore = p.ncore in
  let legacy = legacy_trace_env ~n_nodes:n in
  let traced = Trace.enabled trace in
  if traced then begin
    for c = 0 to ncore - 1 do
      Trace.thread_name trace ~pid:trace_pid ~tid:c (Printf.sprintf "core %d" c)
    done;
    Trace.instant trace ~pid:trace_pid ~ts:0 "sim.start"
      ~args:
        [
          ("loop", J.Str g.Ts_ddg.Ddg.name);
          ("trip", J.Int trip);
          ("warmup", J.Int warmup);
          ("ncore", J.Int ncore);
          ("ii", J.Int k.K.ii);
        ]
  end;
  let plan =
    match plan with Some pl -> pl | None -> Address_plan.create ?seed g
  in
  let l1 =
    Array.init ncore (fun _ ->
        Cache.create ~size:cfg.l1_size ~assoc:cfg.l1_assoc ~line:cfg.line)
  in
  let l2 = Cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc ~line:cfg.line in
  (* Shadow reference models for [check] mode. Every cache and MDT
     operation below goes through a wrapper that mirrors it onto the naive
     model and compares the answers; the wrappers are the only way the hot
     loop touches these structures, so an unchecked run is byte-identical
     to a checked one. *)
  let rl1 =
    Array.init ncore (fun _ ->
        Ref.Cache.create ~size:cfg.l1_size ~assoc:cfg.l1_assoc ~line:cfg.line)
  in
  let rl2 = Ref.Cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc ~line:cfg.line in
  let cache_access ~what real refm a =
    let hit = Cache.access real a in
    if check then begin
      let expect = Ref.Cache.access refm a in
      if hit <> expect then
        Chk.failf "Sim.run: %s access at addr %d was a %s but the reference \
                   LRU model says %s"
          what a
          (if hit then "hit" else "miss")
          (if expect then "hit" else "miss")
    end;
    hit
  in
  let cache_fill real refm a =
    Cache.fill real a;
    if check then Ref.Cache.fill refm a
  in
  let cache_invalidate real refm a =
    Cache.invalidate real a;
    if check then Ref.Cache.invalidate refm a
  in
  let check_cache_stats ~what real refm =
    if check then begin
      let h, m = Cache.stats real and h', m' = Ref.Cache.stats refm in
      if (h, m) <> (h', m') then
        Chk.failf "Sim.run: %s counted %d hits / %d misses but the reference \
                   LRU model counted %d / %d"
          what h m h' m'
    end
  in
  (* Inter-thread register dependences, grouped by consumer node. *)
  let reg_in = Array.make n [] in
  let mem_in = Array.make n [] in
  List.iter
    (fun (e : Ts_ddg.Ddg.edge) -> reg_in.(e.dst) <- (e, K.d_ker k e) :: reg_in.(e.dst))
    (K.inter_iter_reg_deps k);
  List.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      if sync_mem then reg_in.(e.dst) <- (e, K.d_ker k e) :: reg_in.(e.dst)
      else mem_in.(e.dst) <- (e, K.d_ker k e) :: mem_in.(e.dst))
    (K.inter_iter_mem_deps k);
  let intra_in = Array.make n [] in
  Array.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      if K.d_ker k e = 0 then intra_in.(e.dst) <- e :: intra_in.(e.dst))
    g.edges;
  (* Nodes in issue (row) order within a thread. *)
  let by_row = List.init n Fun.id in
  let by_row =
    List.sort (fun a b -> if k.K.row.(a) <> k.K.row.(b) then compare k.K.row.(a) k.K.row.(b) else compare a b) by_row
  in
  let max_lookback =
    List.fold_left
      (fun acc (e : Ts_ddg.Ddg.edge) -> max acc (K.d_ker k e))
      1
      (K.inter_iter_reg_deps k @ K.inter_iter_mem_deps k)
  in
  let horizon = max ncore (max_lookback + 1) in
  let history : thread_exec option array = Array.make horizon None in
  let past j =
    if j < 0 then None
    else match history.(j mod horizon) with
      | Some te -> Some te
      | None -> None
  in
  let mdt = Mdt.create ~horizon:ncore in
  let rmdt = Ref.Mdt.create ~horizon:ncore in
  let mdt_record ~thread ~addr ~finish =
    Mdt.record_store mdt ~thread ~addr ~finish;
    if check then begin
      Ref.Mdt.record_store rmdt ~thread ~addr ~finish;
      if Mdt.live_entries mdt <> Ref.Mdt.live_entries rmdt then
        Chk.failf "Sim.run: after a store by thread %d at addr %d the MDT \
                   holds %d live entries but the reference model holds %d"
          thread addr (Mdt.live_entries mdt) (Ref.Mdt.live_entries rmdt);
      if Mdt.peak_entries mdt <> Ref.Mdt.peak_entries rmdt then
        Chk.failf "Sim.run: MDT peak %d diverged from the reference model's %d"
          (Mdt.peak_entries mdt) (Ref.Mdt.peak_entries rmdt)
    end
  in
  let mdt_conflict ~thread ~addr ~issue =
    let got = Mdt.conflicting_store mdt ~thread ~addr ~issue in
    if check then begin
      let expect = Ref.Mdt.conflicting_store rmdt ~thread ~addr ~issue in
      if got <> expect then
        Chk.failf "Sim.run: MDT conflict query (thread %d, addr %d, issue %d) \
                   answered %s but the reference model says %s"
          thread addr issue
          (match got with None -> "none" | Some f -> string_of_int f)
          (match expect with None -> "none" | Some f -> string_of_int f)
    end;
    got
  in
  let mdt_retire ~upto =
    Mdt.retire mdt ~upto;
    if check then begin
      Ref.Mdt.retire rmdt ~upto;
      if Mdt.live_entries mdt <> Ref.Mdt.live_entries rmdt then
        Chk.failf "Sim.run: after retiring below thread %d the MDT holds %d \
                   live entries but the reference model holds %d"
          upto (Mdt.live_entries mdt) (Ref.Mdt.live_entries rmdt)
    end
  in
  let pairs_per_iter = K.send_recv_pairs_per_iter k in
  (* Speculative write-buffer occupancy, tracked as an event sweep: each
     executed store allocates an entry at its issue and frees it when the
     thread's commit drains the buffer (or when a squash invalidates it).
     Later threads both issue stores and commit after earlier threads'
     *starts* but not after their *commits*, so events cannot be swept in
     thread order directly; instead they accumulate in [wb_pending] and
     are folded into the running occupancy once the sweep point (the
     newest thread's start, a monotonically non-decreasing bound below
     every future event) passes them. Releases sort before allocations at
     the same instant, so a drain concurrent with an issue never inflates
     the peak. *)
  let wb_pending = ref [] in
  let wb_cur = ref 0 in
  let wb_peak = ref 0 in
  let wb_finalize upto =
    let ready, rest = List.partition (fun (t, _) -> t < upto) !wb_pending in
    wb_pending := rest;
    List.iter
      (fun (_, d) ->
        wb_cur := !wb_cur + d;
        if !wb_cur > !wb_peak then wb_peak := !wb_cur)
      (List.sort compare ready)
  in
  let wb_stores (te : thread_exec) ~drain =
    Array.iteri
      (fun v (nd : Ts_ddg.Ddg.node) ->
        if nd.op = Ts_isa.Opcode.Store then
          wb_pending := (te.issue_of.(v), 1) :: (drain, -1) :: !wb_pending)
      g.nodes
  in
  (* accumulators *)
  let stall_tbl : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let sync_stall = ref 0 in
  let spawn_stall = ref 0 in
  let squashes = ref 0 in
  let last_commit_end = ref 0 in
  let core_free = Array.make ncore 0 in
  let prev_spawn_base = ref (-p.c_spawn) (* thread 0 spawns at time 0 *) in
  (* Execute one thread; [recv] false on re-execution (values present). *)
  let exec_thread j start ~recv ~count_stalls =
    let core = j mod ncore in
    let issue_of = Array.make n 0 and finish_of = Array.make n 0 in
    let end_exec = ref start in
    (* Schedule replay with blocking receives: instructions issue at their
       static kernel row plus the shift accumulated by earlier RECV stalls.
       A RECV on an empty queue (Voltron's queue model) blocks the in-order
       front end, so it pushes the remainder of the thread back — the
       semantics under which Definition 2's sync(x, y) is the per-thread
       serialisation that the Section 4.2 cost model assumes. Cache misses,
       in contrast, are absorbed out-of-order (lockup-free caches): they
       delay only their dataflow consumers, via [intra_ready]. *)
    let shift = ref 0 in
    List.iter
      (fun v ->
        let nd = Ts_ddg.Ddg.node g v in
        let sched = start + k.K.row.(v) in
        let intra_ready =
          List.fold_left
            (fun acc (e : Ts_ddg.Ddg.edge) -> max acc finish_of.(e.src))
            0 intra_in.(v)
        in
        let inter_arrival, blamed =
          if not recv then (0, None)
          else
            List.fold_left
              (fun ((acc, blame) as cur) ((e : Ts_ddg.Ddg.edge), dk) ->
                match past (j - dk) with
                | None -> cur (* live-in: available at loop entry *)
                | Some te ->
                    let arr = te.finish_of.(e.src) + (dk * p.c_reg_com) in
                    if arr > acc then (arr, Some (e.src, e.dst)) else (acc, blame))
              (0, None) reg_in.(v)
        in
        let slot = sched + !shift in
        let ready = max slot intra_ready in
        if recv && inter_arrival > ready then begin
          let cycles = inter_arrival - ready in
          (* The blocked RECV pushes the rest of the thread back. Delays of
             several RECVs overlap rather than add — while the front end
             sits at one empty queue the other queues fill — so the
             thread-level shift is the max of the individual delays
             (measured from each instruction's own slot), exactly the
             max(C_spn, C_ci, C_delay) structure of the Section 4.2 cost
             model. *)
          shift := max !shift (inter_arrival - sched);
          if count_stalls then begin
            sync_stall := !sync_stall + cycles;
            if traced then
              Trace.instant trace ~pid:trace_pid ~tid:core ~ts:ready "sync-stall"
                ~args:
                  ([ ("thread", J.Int j); ("cycles", J.Int cycles) ]
                  @
                  match blamed with
                  | Some (src, dst) ->
                      [ ("producer", J.Int src); ("consumer", J.Int dst) ]
                  | None -> []);
            match blamed with
            | Some key ->
                let cur = try Hashtbl.find stall_tbl key with Not_found -> 0 in
                Hashtbl.replace stall_tbl key (cur + cycles)
            | None -> ()
          end
        end;
        let issue = max ready inter_arrival in
        let latency =
          match nd.op with
          | Ts_isa.Opcode.Load ->
              let a = Address_plan.addr plan ~node:v ~iter:(j - k.K.stage.(v)) in
              if cache_access ~what:(Printf.sprintf "L1 (core %d)" core) l1.(core) rl1.(core) a
              then cfg.l1_hit
              else if cache_access ~what:"L2" l2 rl2 a then cfg.l2_hit
              else cfg.mem_latency
          | Ts_isa.Opcode.Store -> nd.latency
          | _ -> nd.latency
        in
        issue_of.(v) <- issue;
        finish_of.(v) <- issue + latency;
        if finish_of.(v) > !end_exec then end_exec := finish_of.(v))
      by_row;
    { start; issue_of; finish_of; end_exec = !end_exec }
  in
  let emit_exec_span ~core ~j name (te : thread_exec) ~end_ts =
    Trace.begin_span trace ~pid:trace_pid ~tid:core ~ts:te.start name
      ~args:[ ("thread", J.Int j) ];
    Trace.end_span trace ~pid:trace_pid ~tid:core ~ts:end_ts name
  in
  let warm_end = ref 0 in
  for j = 0 to total - 1 do
    let measured = j >= warmup in
    let core = j mod ncore in
    let spawn_ready = !prev_spawn_base + p.c_spawn in
    let start = max spawn_ready core_free.(core) in
    if measured && core_free.(core) > spawn_ready then
      spawn_stall := !spawn_stall + (core_free.(core) - spawn_ready);
    let te = exec_thread j start ~recv:true ~count_stalls:measured in
    (* All of this thread's (and every later thread's) write-buffer events
       lie at or after [start]; older events are now final. *)
    wb_finalize start;
    (* MDT check: did any load read a location a less speculative thread
       had not yet written? *)
    let viol = ref None in
    Array.iteri
      (fun v (nd : Ts_ddg.Ddg.node) ->
        if nd.op = Ts_isa.Opcode.Load && mem_in.(v) <> [] then begin
          let a = Address_plan.addr plan ~node:v ~iter:(j - k.K.stage.(v)) in
          match mdt_conflict ~thread:j ~addr:a ~issue:te.issue_of.(v) with
          | Some t_detect ->
              viol := Some (match !viol with None -> t_detect | Some t -> max t t_detect)
          | None -> ()
        end)
      g.nodes;
    let te =
      match !viol with
      | None ->
          if traced && measured then
            emit_exec_span ~core ~j "exec" te ~end_ts:te.end_exec;
          te
      | Some t_detect ->
          if measured then incr squashes;
          let restart = t_detect + p.c_inv in
          if check && restart < t_detect + p.c_inv then
            Chk.failf "Sim.run: thread %d restarts at %d, before detection %d \
                       + invalidation overhead %d"
              j restart t_detect p.c_inv;
          (* The wasted attempt's stores sat in the buffer until the
             invalidation completed. *)
          wb_stores te ~drain:restart;
          if traced && measured then begin
            (* The wasted first attempt, cut off where the MDT caught the
               premature load; the re-execution follows after [c_inv]. *)
            emit_exec_span ~core ~j "exec (squashed)" te ~end_ts:t_detect;
            Trace.instant trace ~pid:trace_pid ~tid:core ~ts:t_detect "squash"
              ~args:
                [
                  ("thread", J.Int j);
                  ("detected", J.Int t_detect);
                  ("restart", J.Int restart);
                ]
          end;
          let te = exec_thread j restart ~recv:false ~count_stalls:false in
          if traced && measured then
            emit_exec_span ~core ~j "re-exec" te ~end_ts:te.end_exec;
          te
    in
    if check then
      List.iter
        (fun v ->
          if te.issue_of.(v) < te.start then
            Chk.failf "Sim.run: thread %d issues node %d at %d, before its \
                       own start %d"
              j v te.issue_of.(v) te.start;
          if te.finish_of.(v) < te.issue_of.(v) then
            Chk.failf "Sim.run: thread %d finishes node %d at %d, before its \
                       issue %d"
              j v te.finish_of.(v) te.issue_of.(v))
        by_row;
    (* Record this thread's stores in the MDT. *)
    Array.iteri
      (fun v (nd : Ts_ddg.Ddg.node) ->
        if nd.op = Ts_isa.Opcode.Store then
          let a = Address_plan.addr plan ~node:v ~iter:(j - k.K.stage.(v)) in
          mdt_record ~thread:j ~addr:a ~finish:te.finish_of.(v))
      g.nodes;
    (* Sequential head-thread commit; the write buffer drains into L2 and
       invalidates stale L1 copies in the other cores. *)
    let commit_start = max te.end_exec !last_commit_end in
    let commit_end = commit_start + p.c_commit in
    if check then begin
      if commit_start < !last_commit_end then
        Chk.failf "Sim.run: thread %d starts committing at %d while its \
                   predecessor commits until %d (sequential commit order \
                   violated)"
          j commit_start !last_commit_end;
      if commit_start < te.end_exec then
        Chk.failf "Sim.run: thread %d starts committing at %d before it \
                   finished executing at %d"
          j commit_start te.end_exec;
      if commit_end < commit_start + p.c_commit then
        Chk.failf "Sim.run: thread %d commit %d..%d is shorter than the \
                   commit overhead %d"
          j commit_start commit_end p.c_commit
    end;
    last_commit_end := commit_end;
    wb_stores te ~drain:commit_end;
    if j = warmup - 1 then begin
      warm_end := commit_end;
      Array.iter Cache.reset_stats l1;
      Cache.reset_stats l2;
      if check then begin
        Array.iter Ref.Cache.reset_stats rl1;
        Ref.Cache.reset_stats rl2
      end
    end;
    core_free.(core) <- commit_end;
    Array.iteri
      (fun v (nd : Ts_ddg.Ddg.node) ->
        if nd.op = Ts_isa.Opcode.Store then begin
          let a = Address_plan.addr plan ~node:v ~iter:(j - k.K.stage.(v)) in
          cache_fill l2 rl2 a;
          Array.iteri
            (fun c l1c -> if c <> core then cache_invalidate l1c rl1.(c) a)
            l1
        end)
      g.nodes;
    if traced && measured then begin
      Trace.begin_span trace ~pid:trace_pid ~tid:core ~ts:commit_start "commit"
        ~args:[ ("thread", J.Int j) ];
      Trace.end_span trace ~pid:trace_pid ~tid:core ~ts:commit_end "commit";
      (* Sampled occupancy: MDT entries live after this thread's stores,
         plus this thread's speculative-write-buffer footprint. *)
      if j land 31 = 0 then
        Trace.counter_sample trace ~pid:trace_pid ~ts:commit_end "occupancy"
          [
            ("mdt", float_of_int (Mdt.live_entries mdt));
            (* Write-buffer entries across all in-flight threads, as of
               this thread's start (the latest instant the event sweep has
               fully resolved). *)
            ("wb", float_of_int !wb_cur);
          ]
    end;
    (match observe with
    | Some f ->
        f
          {
            index = j;
            core;
            start = te.start;
            end_exec = te.end_exec;
            commit_start;
            commit_end;
            squashed = !viol <> None;
          }
    | None -> ());
    history.(j mod horizon) <- Some te;
    (match legacy with
    | Some ((lo, hi), nodes) when j >= lo && j <= hi ->
        Printf.eprintf "thread %d: start=%d end=%d commit=%d..%d" j te.start
          te.end_exec commit_start commit_end;
        List.iter
          (fun v -> Printf.eprintf " n%d@%d" v (te.issue_of.(v) - te.start))
          nodes;
        Printf.eprintf "\n"
    | _ -> ());
    (* Successors respawn from the (possibly re-executed) thread's start. *)
    prev_spawn_base := te.start;
    if j mod 64 = 63 then mdt_retire ~upto:(j - horizon)
  done;
  wb_finalize max_int;
  if check then begin
    if !wb_cur <> 0 then
      Chk.failf "Sim.run: %d write-buffer entries never drained" !wb_cur;
    if !sync_stall < 0 then
      Chk.failf "Sim.run: negative sync stall total %d" !sync_stall;
    if !spawn_stall < 0 then
      Chk.failf "Sim.run: negative spawn stall total %d" !spawn_stall;
    if !last_commit_end < !warm_end then
      Chk.failf "Sim.run: last commit %d precedes the warmup boundary %d"
        !last_commit_end !warm_end;
    check_cache_stats ~what:"L2" l2 rl2;
    Array.iteri
      (fun c l1c ->
        check_cache_stats ~what:(Printf.sprintf "L1 (core %d)" c) l1c rl1.(c))
      l1
  end;
  let l1_hits, l1_misses =
    Array.fold_left
      (fun (h, m) c ->
        let h', m' = Cache.stats c in
        (h + h', m + m'))
      (0, 0) l1
  in
  let l2_hits, l2_misses = Cache.stats l2 in
  let pairs = pairs_per_iter * trip in
  (* Mirror run totals onto the default registry, in bulk, so the hot loop
     never touches a hashtable. *)
  Ts_obs.Metrics.incr ~by:trip m_threads;
  Ts_obs.Metrics.incr ~by:!squashes m_squashes;
  Ts_obs.Metrics.incr ~by:!sync_stall m_sync_stalls;
  Ts_obs.Metrics.incr ~by:!spawn_stall m_spawn_stalls;
  Ts_obs.Metrics.set_gauge (m_mdt_peak)
    (float_of_int (Mdt.peak_entries mdt));
  if traced then
    Trace.instant trace ~pid:trace_pid ~ts:!last_commit_end "sim.end"
      ~args:
        [
          ("cycles", J.Int (!last_commit_end - !warm_end));
          ("squashes", J.Int !squashes);
          ("sync_stall_cycles", J.Int !sync_stall);
        ];
  {
    cycles = !last_commit_end - !warm_end;
    committed = trip;
    squashes = !squashes;
    misspec_rate = float_of_int !squashes /. float_of_int trip;
    sync_stall_cycles = !sync_stall;
    spawn_stall_cycles = !spawn_stall;
    send_recv_pairs = pairs;
    send_recv_cycles = pairs * p.c_reg_com;
    communication_overhead = !sync_stall + (pairs * p.c_reg_com);
    l1_hits;
    l1_misses;
    l2_hits;
    l2_misses;
    wb_peak = !wb_peak;
    mdt_peak = Mdt.peak_entries mdt;
    stall_breakdown =
      Hashtbl.fold (fun key v acc -> (key, v) :: acc) stall_tbl []
      |> List.sort (fun (_, a) (_, b) -> compare b a);
  }

let ipc (k : K.t) (s : stats) =
  float_of_int (Ts_ddg.Ddg.n_nodes k.K.g * s.committed) /. float_of_int (max 1 s.cycles)
