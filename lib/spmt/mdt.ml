type entry = { thread : int; finish : int }

type t = {
  mutable horizon : int;
  table : (int, entry list) Hashtbl.t; (* addr -> stores, newest first *)
  mutable live : int;
  mutable peak : int;
}

let create ~horizon = { horizon; table = Hashtbl.create 256; live = 0; peak = 0 }

(* [Hashtbl.clear] keeps the grown bucket table, so a cleared MDT starts
   the next run with the capacity the previous one needed — the arena
   reuse path. Observationally identical to a fresh [create]. *)
let clear t ~horizon =
  t.horizon <- horizon;
  Hashtbl.clear t.table;
  t.live <- 0;
  t.peak <- 0

let record_store t ~thread ~addr ~finish =
  let cur = try Hashtbl.find t.table addr with Not_found -> [] in
  (* Keep only in-flight entries for this address; the stale ones leave
     the table here (not through [retire]), so they must come off the
     live count too. *)
  let kept = List.filter (fun e -> e.thread > thread - t.horizon) cur in
  Hashtbl.replace t.table addr ({ thread; finish } :: kept);
  t.live <- t.live + 1 - (List.length cur - List.length kept);
  if t.live > t.peak then t.peak <- t.live

let conflicting_store t ~thread ~addr ~issue =
  match Hashtbl.find_opt t.table addr with
  | None -> None
  | Some entries ->
      List.fold_left
        (fun acc e ->
          if e.thread < thread && e.thread > thread - t.horizon && e.finish > issue
          then Some (match acc with None -> e.finish | Some f -> max f e.finish)
          else acc)
        None entries

let retire t ~upto =
  let removed = ref 0 in
  let updates =
    Hashtbl.fold
      (fun addr entries acc ->
        let kept = List.filter (fun e -> e.thread >= upto) entries in
        if List.length kept <> List.length entries then begin
          removed := !removed + List.length entries - List.length kept;
          (addr, kept) :: acc
        end
        else acc)
      t.table []
  in
  List.iter
    (fun (addr, kept) ->
      if kept = [] then Hashtbl.remove t.table addr
      else Hashtbl.replace t.table addr kept)
    updates;
  t.live <- t.live - !removed

let peak_entries t = t.peak
let live_entries t = t.live
