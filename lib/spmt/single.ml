type stats = {
  cycles : int;
  iterations : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
}

let run ?seed ?plan ?(warmup = 0) cfg (g : Ts_ddg.Ddg.t) ~trip =
  Ts_obs.Prof.span "sim.single" @@ fun () ->
  if trip <= 0 then invalid_arg "Single.run: trip must be positive";
  if warmup < 0 then invalid_arg "Single.run: warmup must be non-negative";
  let total = warmup + trip in
  let n = Ts_ddg.Ddg.n_nodes g in
  let plan =
    match plan with Some pl -> pl | None -> Address_plan.create ?seed g
  in
  let ls = Ts_modsched.List_sched.run g in
  let l1 = Cache.create ~size:cfg.Config.l1_size ~assoc:cfg.l1_assoc ~line:cfg.line in
  let l2 = Cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc ~line:cfg.line in
  (* The front end fetches one iteration's worth of instructions per
     [stride] cycles; dataflow does the rest. *)
  (* Sustained throughput is bounded by the front end AND by functional
     unit occupancy (an 11-multiply body cannot retire one iteration per
     [n / width] cycles on one multiplier): exactly the ResII bound. *)
  let stride = max 1 (Ts_ddg.Mii.res_ii g) in
  (* A 64-entry reorder window caps how far ahead the core runs: iteration
     i may not begin before iteration (i - window) has fully completed.
     (SimpleScalar-era cores had 16-64 RUU entries.) *)
  let rob = 64 in
  let window = max 1 (rob / max 1 n) in
  let preds_with_idx = Array.make n [] in
  Array.iteri
    (fun idx (e : Ts_ddg.Ddg.edge) ->
      preds_with_idx.(e.dst) <- (idx, e) :: preds_with_idx.(e.dst))
    g.edges;
  let order = List.init n Fun.id in
  let order =
    List.sort
      (fun a b ->
        if ls.Ts_modsched.List_sched.time.(a) <> ls.time.(b) then
          compare ls.time.(a) ls.time.(b)
        else compare a b)
      order
  in
  (* Loop-carried lookback window. *)
  let max_dist =
    Array.fold_left (fun acc (e : Ts_ddg.Ddg.edge) -> max acc e.distance) 1 g.edges
  in
  let horizon = max_dist + 1 in
  let horizon = max horizon (window + 1) in
  let history = Array.make horizon [||] in
  let iter_end = Array.make horizon 0 in
  let last_finish = ref 0 in
  let warm_end = ref 0 in
  for i = 0 to total - 1 do
    let start =
      let fetch = i * stride in
      if i < window then fetch else max fetch iter_end.((i - window) mod horizon)
    in
    let finish_of = Array.make n 0 in
    List.iter
      (fun v ->
        let nd = Ts_ddg.Ddg.node g v in
        let ready =
          List.fold_left
            (fun acc ((ei, e) : int * Ts_ddg.Ddg.edge) ->
              let src_iter = i - e.distance in
              if src_iter < 0 then acc
              else if e.distance = 0 then max acc finish_of.(e.src)
              else begin
                let past = history.(src_iter mod horizon) in
                if Array.length past = 0 then acc
                else
                  match e.kind with
                  | Ts_ddg.Ddg.Reg -> max acc past.(e.src)
                  | Ts_ddg.Ddg.Mem ->
                      (* A memory dependence only orders execution when it
                         actually aliases this iteration. *)
                      if Address_plan.realised plan ~edge_index:ei ~iter:i then
                        max acc past.(e.src)
                      else acc
              end)
            (start + ls.time.(v))
            preds_with_idx.(v)
        in
        let latency =
          match nd.op with
          | Ts_isa.Opcode.Load ->
              let a = Address_plan.addr plan ~node:v ~iter:i in
              if Cache.access l1 a then cfg.l1_hit
              else if Cache.access l2 a then cfg.l2_hit
              else cfg.mem_latency
          | _ -> nd.latency
        in
        finish_of.(v) <- ready + latency;
        if finish_of.(v) > !last_finish then last_finish := finish_of.(v))
      order;
    history.(i mod horizon) <- finish_of;
    iter_end.(i mod horizon) <- Array.fold_left max 0 finish_of;
    if i = warmup - 1 then begin
      warm_end := !last_finish;
      Cache.reset_stats l1;
      Cache.reset_stats l2
    end
  done;
  let l1_hits, l1_misses = Cache.stats l1 in
  let l2_hits, l2_misses = Cache.stats l2 in
  {
    cycles = !last_finish - !warm_end;
    iterations = trip;
    l1_hits;
    l1_misses;
    l2_hits;
    l2_misses;
  }
