(** Synthetic address streams for a loop's memory instructions.

    Every load/store node gets an affine stream [base + stride * iter]
    (array walking, the dominant SPECfp pattern), wrapped inside a
    per-node working set. Memory-dependence edges are {e realised}
    per-iteration with their profiled probability: when edge [x -> y]
    (distance [d]) fires at consumer iteration [i], the consumer's address
    is forced to equal the producer's address at iteration [i - d], which
    is what makes the MDT see a genuine cross-thread conflict. All
    randomness is seeded, so a loop replays identically across SMS, TMS
    and single-threaded runs. *)

type t

val create : ?seed:string -> Ts_ddg.Ddg.t -> t
(** Build streams for a DDG. The default seed is the loop's name. *)

val addr : t -> node:int -> iter:int -> int
(** Address accessed by memory node [node] at iteration [iter]. Raises
    [Invalid_argument] for a non-memory node. *)

val stream : t -> node:int -> (int * int * int) option
(** [(base, stride, working_set)] of the node's private affine stream,
    [None] for non-memory nodes. The simulator's steady-state fast path
    uses it to enumerate the L1 lines a load's stream can ever touch
    (the stream revisits addresses with period
    [working_set / gcd stride working_set]). *)

val realised : t -> edge_index:int -> iter:int -> bool
(** Does memory-dependence edge [edge_index] (index into the DDG's edge
    array) actually alias at consumer iteration [iter]? Decided by a coin
    with the edge's probability, seeded per (edge, iteration). *)
