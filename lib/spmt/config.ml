type t = {
  params : Ts_isa.Spmt_params.t;
  placement : Ts_isa.Placement.policy;
  l1_hit : int;
  l2_hit : int;
  mem_latency : int;
  l1_size : int;
  l1_assoc : int;
  l2_size : int;
  l2_assoc : int;
  line : int;
  wb_entries : int;
}

let default =
  {
    params = Ts_isa.Spmt_params.default;
    placement = Ts_isa.Placement.Round_robin;
    l1_hit = 3;
    l2_hit = 12;
    mem_latency = 80;
    l1_size = 16 * 1024;
    l1_assoc = 4;
    l2_size = 1024 * 1024;
    l2_assoc = 4;
    line = 32;
    wb_entries = 64;
  }

let two_core = { default with params = Ts_isa.Spmt_params.two_core }

let with_ncore t ncore =
  { t with params = Ts_isa.Spmt_params.with_ncore t.params ncore }

let with_placement t placement = { t with placement }

let pp ppf t =
  let p = t.params in
  let machine_row =
    if Ts_isa.Spmt_params.heterogeneous p then
      Printf.sprintf "%d (%s), unidirectional ring" p.ncore
        (Ts_isa.Spmt_params.mix_to_string p)
    else Printf.sprintf "%d, unidirectional ring" p.ncore
  in
  Format.fprintf ppf
    "@[<v>Fetch, Issue, Commit    bandwidth 4, out-of-order issue@,\
     Cores                   %s@,\
     Placement               %s@,\
     L1 D-Cache              %dKB, %d-way, %d cycle (hit)@,\
     L2 Cache (shared)       %dMB, %d-way, %d cycles (hit), %d cycles (miss)@,\
     SEND/RECV Latency       %d cycles@,\
     Spawn Overhead          %d cycles@,\
     Commit Overhead         %d cycles@,\
     Invalidation Overhead   %d cycles@,\
     Speculative write buffer %d entries@]" machine_row
    (Ts_isa.Placement.policy_to_string t.placement)
    (t.l1_size / 1024) t.l1_assoc t.l1_hit
    (t.l2_size / 1024 / 1024)
    t.l2_assoc t.l2_hit t.mem_latency p.c_reg_com p.c_spawn p.c_commit p.c_inv
    t.wb_entries
