(** Full simulator configuration — the paper's Table 1.

    A quad-core SpMT system on a unidirectional ring: per-core L1 caches and
    functional units, a shared L2, a memory disambiguation table between L1
    and L2, and a 64-entry speculative write buffer per core. The
    [params.cores] descriptors and the [placement] policy generalise the
    machine to asymmetric (big.LITTLE-style) rings; the defaults reproduce
    the paper exactly. *)

type t = {
  params : Ts_isa.Spmt_params.t;  (** cores + cost parameters *)
  placement : Ts_isa.Placement.policy;
      (** thread-to-core allocation (default {!Ts_isa.Placement.Round_robin},
          the paper's [j mod ncore]) *)
  l1_hit : int;  (** L1 D-cache hit latency (3) *)
  l2_hit : int;  (** shared L2 hit latency (12) *)
  mem_latency : int;  (** L2 miss latency (80) *)
  l1_size : int;  (** bytes (16 KB) *)
  l1_assoc : int;  (** ways (4) *)
  l2_size : int;  (** bytes (1 MB) *)
  l2_assoc : int;  (** ways (4) *)
  line : int;  (** cache line size in bytes (32) *)
  wb_entries : int;  (** speculative write buffer entries (64) *)
}

val default : t
(** Table 1 values, 4 homogeneous cores, round-robin placement. *)

val two_core : t
(** Same but 2 cores (the Figure 2 walkthrough). *)

val with_ncore : t -> int -> t
(** @raise Invalid_argument when the count is outside
    [1, {!Ts_isa.Spmt_params.max_ncore}]. *)

val with_placement : t -> Ts_isa.Placement.policy -> t

val pp : Format.formatter -> t -> unit
(** Render the Table 1 rows. *)
