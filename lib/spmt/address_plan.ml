type stream = { base : int; stride : int; working_set : int }

type t = {
  g : Ts_ddg.Ddg.t;
  root : Ts_base.Rng.t; (* never advanced; only derived from *)
  streams : stream option array; (* per node; None for non-memory nodes *)
  incoming_mem : (int * Ts_ddg.Ddg.edge) list array; (* per load: (edge index, edge) *)
}

(* Each memory instruction walks its own array region. Working sets of a
   few KB per stream give a realistic mix of L1 hits and streaming misses
   (a new 32-byte line every few iterations). *)
let create ?seed (g : Ts_ddg.Ddg.t) =
  let seed = match seed with Some s -> s | None -> g.name in
  let root = Ts_base.Rng.of_string seed in
  let region = 1 lsl 20 in
  let streams =
    Array.map
      (fun (nd : Ts_ddg.Ddg.node) ->
        if Ts_isa.Opcode.is_mem nd.op then begin
          let rng = Ts_base.Rng.derive2 root nd.id (-1) in
          let stride = Ts_base.Rng.pick rng [| 4; 8; 8; 8; 16 |] in
          (* 1-4 KB per stream: after the first pass over the array the
             stream is L1/L2 resident, so cache behaviour is visible but
             does not drown the scheduling effects under study (the
             SPECfp2000 loop kernels the paper measures are similarly
             cache-friendly on their simulator's 16KB/1MB hierarchy). *)
          let working_set = 1 lsl Ts_base.Rng.int_in rng 10 11 in
          (* Stagger the region bases: power-of-two-aligned arrays would
             all map onto the same cache sets and thrash. *)
          let colour = nd.id * 37 * 64 in
          Some { base = ((nd.id + 1) * region) + colour; stride; working_set }
        end
        else None)
      g.nodes
  in
  let incoming_mem = Array.make (Ts_ddg.Ddg.n_nodes g) [] in
  Array.iteri
    (fun idx (e : Ts_ddg.Ddg.edge) ->
      if e.kind = Ts_ddg.Ddg.Mem then
        incoming_mem.(e.dst) <- incoming_mem.(e.dst) @ [ (idx, e) ])
    g.edges;
  { g; root; streams; incoming_mem }

let own_addr t node iter =
  match t.streams.(node) with
  | None ->
      invalid_arg
        (Printf.sprintf "Address_plan.addr: node %d is not a memory instruction" node)
  | Some s -> s.base + (s.stride * iter mod s.working_set)

let stream t ~node =
  match t.streams.(node) with
  | None -> None
  | Some s -> Some (s.base, s.stride, s.working_set)

let realised t ~edge_index ~iter =
  let e = t.g.edges.(edge_index) in
  if e.kind <> Ts_ddg.Ddg.Mem then
    invalid_arg "Address_plan.realised: not a memory dependence edge";
  if iter < e.distance then false
  else if e.prob >= 1.0 then true
  else Ts_base.Rng.bool (Ts_base.Rng.derive2 t.root edge_index iter) e.prob

let addr t ~node ~iter =
  match t.streams.(node) with
  | None ->
      invalid_arg
        (Printf.sprintf "Address_plan.addr: node %d is not a memory instruction" node)
  | Some _ ->
      (* A load whose incoming memory dependence fires this iteration reads
         the producer store's location. *)
      let rec first = function
        | [] -> None
        | (idx, (e : Ts_ddg.Ddg.edge)) :: rest ->
            if realised t ~edge_index:idx ~iter then Some (e.src, iter - e.distance)
            else first rest
      in
      (match first t.incoming_mem.(node) with
      | Some (src, prod_iter) -> own_addr t src prod_iter
      | None -> own_addr t node iter)
