type edge_profile = {
  edge_index : int;
  occurrences : int;
  probability : float;
}

let measure ?plan (g : Ts_ddg.Ddg.t) ~train_iters =
  if train_iters <= 0 then invalid_arg "Profile.measure: train_iters must be positive";
  let plan = match plan with Some p -> p | None -> Address_plan.create g in
  let counts = Hashtbl.create 8 in
  Array.iteri
    (fun idx (e : Ts_ddg.Ddg.edge) ->
      if e.kind = Ts_ddg.Ddg.Mem then Hashtbl.replace counts idx 0)
    g.edges;
  for iter = 0 to train_iters - 1 do
    Array.iteri
      (fun idx (e : Ts_ddg.Ddg.edge) ->
        if e.kind = Ts_ddg.Ddg.Mem && iter >= e.distance then begin
          (* does the consumer's address this iteration match the producer's
             address [distance] iterations earlier? *)
          let consumer = Address_plan.addr plan ~node:e.dst ~iter in
          let producer = Address_plan.addr plan ~node:e.src ~iter:(iter - e.distance) in
          if consumer = producer then
            Hashtbl.replace counts idx (Hashtbl.find counts idx + 1)
        end)
      g.edges
  done;
  Hashtbl.fold
    (fun edge_index occurrences acc ->
      (* A distance-d dependence has no producer during the first d
         iterations, so it is observable on only [train_iters - d] of
         them; dividing by the full training count would deflate the
         probability (and with it C2 admission) for long distances. *)
      let window = train_iters - g.edges.(edge_index).distance in
      {
        edge_index;
        occurrences;
        probability =
          (if window <= 0 then 0.0
           else float_of_int occurrences /. float_of_int window);
      }
      :: acc)
    counts []
  |> List.sort (fun a b -> compare a.edge_index b.edge_index)

let floor_prob = 0.001

let apply (g : Ts_ddg.Ddg.t) profiles =
  let measured = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace measured p.edge_index p.probability) profiles;
  let b = Ts_ddg.Ddg.Builder.create ~name:g.name g.machine in
  Array.iter
    (fun (nd : Ts_ddg.Ddg.node) ->
      ignore (Ts_ddg.Ddg.Builder.add b ~name:nd.name ~latency:nd.latency nd.op))
    g.nodes;
  Array.iteri
    (fun idx (e : Ts_ddg.Ddg.edge) ->
      match e.kind with
      | Ts_ddg.Ddg.Reg -> Ts_ddg.Ddg.Builder.dep b ~dist:e.distance e.src e.dst
      | Ts_ddg.Ddg.Mem ->
          let prob =
            match Hashtbl.find_opt measured idx with
            | Some p -> Float.max floor_prob (Float.min 1.0 p)
            | None -> e.prob
          in
          Ts_ddg.Ddg.Builder.mem_dep b ~dist:e.distance ~prob e.src e.dst)
    g.edges;
  Ts_ddg.Ddg.Builder.build b

let profile ?(train_iters = 2000) g = apply g (measure g ~train_iters)
