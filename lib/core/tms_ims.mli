(** Thread-sensitive iterative modulo scheduling.

    Section 4.1 claims TMS "is not tied to any existing modulo scheduling
    algorithm": the Figure 3 structure — the [F(II, C_delay)] outer search
    plus the C1/C2 issue-slot admission — only needs a base scheduler that
    places one instruction at a time. This module instantiates it over
    {!Ts_sms.Ims} (Rau's iterative modulo scheduling) instead of SMS,
    substantiating the claim; the ablation bench compares the two
    instantiations. *)

type result = Tms.result = {
  kernel : Ts_modsched.Kernel.t;
  mii : int;
  c_delay_threshold : int;
  achieved_c_delay : int;
  p_max : float;
  misspec : float;
  f_min : float;
  attempts : int;
  fell_back : bool;
}

val schedule :
  ?trace:Ts_obs.Trace.t ->
  ?p_max:float ->
  ?max_ii:int ->
  ?point_memo:Tms.point_memo ->
  ?placement:Ts_isa.Placement.policy ->
  params:Ts_isa.Spmt_params.t ->
  Ts_ddg.Ddg.t ->
  result
(** TMS-over-IMS. Falls back to plain IMS if the grid is exhausted.
    [trace] receives the same ["tms.attempt"]/["tms.fallback"]/
    ["tms.result"] events as {!Tms.schedule}, with [base = "ims"].
    [point_memo] warm-starts the grid walk ({!Tms.point_memo}); providers
    must key IMS-engine outcomes separately from swing-engine ones — the
    two engines disagree at the same grid point. *)
