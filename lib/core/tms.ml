module K = Ts_modsched.Kernel
module S = Ts_modsched.Sched
module Trace = Ts_obs.Trace
module Metrics = Ts_obs.Metrics

(* Search counters on the default registry (dumped by [tsms --metrics]).
   Handles are atomic cells, so the hot-path cost is one fetch-and-add and
   totals are exact under the Parallel domain pool. *)
let m_attempts = Metrics.counter Metrics.default "tms.attempts"
let m_fallbacks = Metrics.counter Metrics.default "tms.fallbacks"
let m_schedules = Metrics.counter Metrics.default "tms.schedules"

let m_slot_resource =
  Metrics.counter Metrics.default "tms.slots.resource_reject"

let m_slot_c1 = Metrics.counter Metrics.default "tms.slots.c1_reject"
let m_slot_c2 = Metrics.counter Metrics.default "tms.slots.c2_reject"
let m_slot_admitted = Metrics.counter Metrics.default "tms.slots.admitted"

(* Grid points answered from a warm-start memo instead of a placement
   run (see [point_memo]). *)
let m_warm_hits = Metrics.counter Metrics.default "tms.warm.point_hits"

(* Latency distribution of one grid-point attempt (order repair
   included): the unit of work the sweep repeats thousands of times, so
   its p50/p90/p99 is what tells a slow search from a wide one. *)
let m_attempt_ms = Metrics.histogram Metrics.default "tms.attempt_ms"

type result = {
  kernel : K.t;
  mii : int;
  c_delay_threshold : int;
  achieved_c_delay : int;
  p_max : float;
  misspec : float;
  f_min : float;
  attempts : int;
  fell_back : bool;
}

let default_p_max = 0.05

(* §7.9(a) fix: the pure F_min++ walk stopped at the first feasible grid
   point, and on the synthetic suites that point sits at a high II with a
   small C_delay — the low-II/moderate-C_delay points the paper's TMS
   lands on exist, but the greedy swing placement misses them, so IIs ran
   40-60% above MII. Two repairs close the gap:

   - [default_f_slack]: after the first feasible point at [F0], keep
     walking objective groups up to [F0 + slack] and return the feasible
     point with the lowest II (the deepest pipelining). One-and-a-half
     cycles per iteration is below the cost model's resolution against
     the simulator (~6% MAE, Section 5), so the trade buys the paper's
     "add stages rather than raise II" preference at negligible modeled
     cost.
   - [default_place_retries]: when the swing order dead-ends at a grid
     point, hoist the blocking node to the front of the order and retry
     the placement, a bounded number of times. This keeps the inner
     solver in the SMS family (TMS stays an overlay on SMS, so it cannot
     systematically out-schedule the SMS baseline) while recovering most
     of the low-II points a single greedy pass rejects. *)
let default_f_slack = 1.5
let default_place_retries = 3

(* First [k] elements and the rest, in order ([k] is a small speculation
   window, so the non-tail recursion is fine). *)
let rec take_drop k = function
  | [] -> ([], [])
  | l when k <= 0 -> ([], l)
  | x :: tl ->
      let a, b = take_drop (k - 1) tl in
      (x :: a, b)

type slot_verdict = Admit | Reject_resource | Reject_c1 | Reject_c2

(* ISSUE_SLOT_SELECTION (Figure 3, lines 18-28) for node [v] at cycle [c]:
   resource fit, C1 on the new register dependences, C2 on the
   misspeculation frequency when new memory dependences appear.

   The inter-iteration dependence set of the partial schedule is NOT
   recomputed here: [Sched] maintains per-edge activity masks
   incrementally as nodes are placed/evicted, and this predicate only
   overlays the hypothesis "v issues at [cycle]" on the edges incident to
   [v] (found through the DDG's kind-partitioned incident indexes). All
   scans run over preallocated arrays — no lists are built. Rows/stages
   are computed from raw issue cycles; the kernel normalises by a multiple
   of II, so these values equal the final kernel's. *)
let admit ?c2obs s v ~cycle ~c_delay ~p_max ~c_reg_com =
  let g = S.ddg s in
  let ii = S.ii s in
  if not (S.fits s v ~cycle) then Reject_resource
  else begin
    let row t = Ts_base.Intmath.modulo t ii in
    let stage t = Ts_base.Intmath.div_floor t ii in
    let reg_arr = Ts_ddg.Ddg.reg_edge_array g in
    let mem_arr = Ts_ddg.Ddg.mem_edge_array g in
    let reg_mask = S.reg_active_mask s in
    let mem_mask = S.mem_active_mask s in
    (* Issue cycle under the hypothesis; only valid for placed nodes. *)
    let time_exn u =
      if u = v then cycle
      else match S.time s u with Some t -> t | None -> assert false
    in
    (* Inter-iteration status of partition edge [i] under the hypothesis:
       edges not touching [v] keep their incrementally-maintained flag. *)
    let hyp_active mask i (e : Ts_ddg.Ddg.edge) =
      if e.src <> v && e.dst <> v then mask.(i)
      else
        let placed u = u = v || S.time s u <> None in
        placed e.src && placed e.dst
        && e.distance + stage (time_exn e.dst) - stage (time_exn e.src) >= 1
    in
    (* Definition 2 for an active register dependence. *)
    let sync_of (e : Ts_ddg.Ddg.edge) =
      row (time_exn e.src) - row (time_exn e.dst)
      + Ts_ddg.Ddg.latency g e.src + c_reg_com
    in
    let c1_ok =
      let idxs = Ts_ddg.Ddg.incident_reg g v in
      let rec check k =
        if k >= Array.length idxs then true
        else
          let i = idxs.(k) in
          let e = reg_arr.(i) in
          if hyp_active reg_mask i e && sync_of e > c_delay then false
          else check (k + 1)
      in
      check 0
    in
    if not c1_ok then Reject_c1
    else begin
      let new_mem =
        let idxs = Ts_ddg.Ddg.incident_mem g v in
        let rec check k =
          if k >= Array.length idxs then false
          else
            let i = idxs.(k) in
            if hyp_active mem_mask i mem_arr.(i) then true else check (k + 1)
        in
        check 0
      in
      if not new_mem then Admit
      else begin
        (* A speculated dependence is preserved when some synchronised
           register dependence already orders the store before the load
           strongly enough (Section 4.2). *)
        let preserved (e : Ts_ddg.Ddg.edge) =
          let ts = time_exn e.src and td = time_exn e.dst in
          let dk = e.distance + stage td - stage ts in
          let need =
            float_of_int (row ts + Ts_ddg.Ddg.latency g e.src - row td)
            /. float_of_int dk
          in
          let nr = Array.length reg_arr in
          let rec go i =
            if i >= nr then false
            else
              let r = reg_arr.(i) in
              if
                hyp_active reg_mask i r
                && row (time_exn r.src) < row ts
                && float_of_int (sync_of r) >= need
              then true
              else go (i + 1)
          in
          go 0
        in
        (* P_M over the non-preserved speculated dependences, multiplied in
           edge order (bit-identical to the list-based seed computation). *)
        let acc = ref 1.0 in
        Array.iteri
          (fun i e ->
            if hyp_active mem_mask i e && not (preserved e) then
              acc := !acc *. (1.0 -. e.Ts_ddg.Ddg.prob))
          mem_arr;
        let freq = 1.0 -. !acc in
        let ok = freq <= p_max +. 1e-12 in
        (match c2obs with Some f -> f freq ok | None -> ());
        if ok then Admit else Reject_c2
      end
    end
  end

let admissible ?c2obs s v ~cycle ~c_delay ~p_max ~c_reg_com =
  admit ?c2obs s v ~cycle ~c_delay ~p_max ~c_reg_com = Admit

type reject = {
  node : int;
  window_empty : bool;
  resource_rejects : int;
  c1_rejects : int;
  c2_rejects : int;
}

let reject_reason r =
  if r.window_empty then "window-empty"
  else
    match (r.resource_rejects > 0, r.c1_rejects > 0, r.c2_rejects > 0) with
    | true, false, false -> "resource-exhausted"
    | false, true, false -> "c1-exhausted"
    | false, false, true -> "c2-exhausted"
    | _ -> "mixed-exhausted"

(* Slot-verdict counters are accumulated in a local tally and flushed to
   the shared metrics once per attempt: a fetch_and_add per slot check
   would ping-pong the counters' cache lines across the sweep's domains.
   The tally is also what lets the search evaluate grid points
   speculatively in parallel — an attempt the sequential walk would have
   skipped is simply discarded unflushed, so the metrics record exactly
   the sequential walk's totals at any pool size. *)
type slot_tally = {
  mutable t_resource : int;
  mutable t_c1 : int;
  mutable t_c2 : int;
  mutable t_admit : int;
}

let new_tally () = { t_resource = 0; t_c1 = 0; t_c2 = 0; t_admit = 0 }

let flush_tally t =
  Metrics.incr ~by:t.t_resource m_slot_resource;
  Metrics.incr ~by:t.t_c1 m_slot_c1;
  Metrics.incr ~by:t.t_c2 m_slot_c2;
  Metrics.incr ~by:t.t_admit m_slot_admitted

let try_schedule_tallied tally ?c2obs ?asap g ~order ~ii ~c_delay ~p_max
    ~c_reg_com =
  let s = S.create ?asap g ~ii in
  let rec place_all = function
    | [] -> Ok (K.of_schedule s)
    | (v, prefer) :: rest -> (
        match S.window ~prefer s v with
        | None ->
            Error
              { node = v; window_empty = true; resource_rejects = 0;
                c1_rejects = 0; c2_rejects = 0 }
        | Some (lo, hi, dir) ->
            let resource = ref 0 and c1 = ref 0 and c2 = ref 0 in
            let try_cycle c =
              match admit ?c2obs s v ~cycle:c ~c_delay ~p_max ~c_reg_com with
              | Admit ->
                  tally.t_admit <- tally.t_admit + 1;
                  S.place s v ~cycle:c;
                  true
              | Reject_resource -> incr resource; false
              | Reject_c1 -> incr c1; false
              | Reject_c2 -> incr c2; false
            in
            (* Walk the window in trial order without materialising it. *)
            let rec scan c step last =
              if try_cycle c then true
              else if c = last then false
              else scan (c + step) step last
            in
            let placed =
              match dir with S.Up -> scan lo 1 hi | S.Down -> scan hi (-1) lo
            in
            tally.t_resource <- tally.t_resource + !resource;
            tally.t_c1 <- tally.t_c1 + !c1;
            tally.t_c2 <- tally.t_c2 + !c2;
            if placed then place_all rest
            else
              Error
                { node = v; window_empty = false; resource_rejects = !resource;
                  c1_rejects = !c1; c2_rejects = !c2 })
  in
  place_all order

let try_schedule_explained ?asap g ~order ~ii ~c_delay ~p_max ~c_reg_com =
  let tally = new_tally () in
  let r = try_schedule_tallied tally ?asap g ~order ~ii ~c_delay ~p_max ~c_reg_com in
  flush_tally tally;
  r

let try_schedule ?asap g ~order ~ii ~c_delay ~p_max ~c_reg_com =
  match try_schedule_explained ?asap g ~order ~ii ~c_delay ~p_max ~c_reg_com with
  | Ok k -> Some k
  | Error _ -> None

(* ---- warm-start point memo ----

   A grid-point attempt is a pure function of (DDG, II, C_delay,
   c_reg_com, P_max): the swing order, the ASAP table and every placement
   decision are deterministic. [P_max] enters only through C2's
   [freq <= p_max + 1e-12] comparisons (including {!Tms_ims}'s post-pass
   misspeculation check, which has the same shape), so an attempt's
   outcome recorded at one P_max is valid verbatim at another P_max'
   whenever every comparison it made keeps its verdict: the first
   comparison then takes the same branch, which makes the second
   comparison identical, and so on. The envelope below captures exactly
   that condition — [po_c2_admit_max] is the largest frequency a
   comparison admitted and [po_c2_reject_min] the smallest it rejected,
   so the outcome transfers to P_max' iff

     po_c2_admit_max <= p_max' + 1e-12  &&  po_c2_reject_min > p_max' + 1e-12.

   A provider ({!Ts_harness.Cached}) persists outcomes keyed by
   (DDG, c_reg_com, II, C_delay) and answers [pm_find] only when the
   envelope covers the requested P_max, which makes a warm-started search
   bit-identical to a cold one by construction: the F-plateau walk, the
   attempt counters and the slot tallies replay the recorded values, and
   the kernels rebuild from the recorded issue times. *)

type point_outcome = {
  po_times : int array option; (* issue times of the scheduled kernel *)
  po_reject : reject option; (* the diagnosis when placement failed *)
  po_tally : int * int * int * int; (* resource / C1 / C2 / admitted *)
  po_c2_admit_max : float;
  po_c2_reject_min : float;
}

type point_memo = {
  pm_find : ii:int -> c_delay:int -> p_max:float -> point_outcome option;
  pm_store : ii:int -> c_delay:int -> p_max:float -> point_outcome -> unit;
}

let envelope_covers ~admit_max ~reject_min p_max =
  admit_max <= p_max +. 1e-12 && reject_min > p_max +. 1e-12

let finish ~params ~p_max ~mii ~attempts ~fell_back ~c_delay_threshold ~f_min kernel =
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
  {
    kernel;
    mii;
    c_delay_threshold;
    achieved_c_delay = K.c_delay kernel ~c_reg_com;
    p_max;
    misspec = Overheads.misspec_prob kernel ~c_reg_com;
    f_min;
    attempts;
    fell_back;
  }

(* One "tms.attempt" trace event per (II, C_delay) point tried, with the
   objective value, the accept/reject outcome and the reject reason
   (window-empty vs resource/C1/C2 slot exhaustion); searches are
   logical-time (Trace.tick), not cycle-time. *)
let attempt_event trace ~base ~ii ~c_delay ~f ?reason accepted =
  if Trace.enabled trace then
    let reason =
      match reason with
      | Some r -> r
      | None -> if accepted then "scheduled" else "placement-failed"
    in
    Trace.instant trace ~ts:(Trace.tick trace) "tms.attempt"
      ~args:
        [
          ("base", Ts_obs.Json.Str base);
          ("ii", Ts_obs.Json.Int ii);
          ("c_delay", Ts_obs.Json.Int c_delay);
          ("f", Ts_obs.Json.Float f);
          ("accepted", Ts_obs.Json.Bool accepted);
          ("reason", Ts_obs.Json.Str reason);
        ]

let result_event trace (r : result) =
  if Trace.enabled trace then
    Trace.instant trace ~ts:(Trace.tick trace) "tms.result"
      ~args:
        [
          ("ii", Ts_obs.Json.Int r.kernel.K.ii);
          ("c_delay", Ts_obs.Json.Int r.achieved_c_delay);
          ("c_delay_threshold", Ts_obs.Json.Int r.c_delay_threshold);
          ("p_max", Ts_obs.Json.Float r.p_max);
          ("p_m", Ts_obs.Json.Float r.misspec);
          ("f_min", Ts_obs.Json.Float r.f_min);
          ("attempts", Ts_obs.Json.Int r.attempts);
          ("fell_back", Ts_obs.Json.Bool r.fell_back);
        ]

let schedule ?(trace = Trace.null) ?(p_max = default_p_max) ?max_ii ?point_memo
    ?(placement = Ts_isa.Placement.Round_robin) ~params g =
  (* Definition 2 under the placement: the search prices the worst
     distance-1 hop cost and target-core speed of the compiled map
     ([effective_params] is the identity for round-robin). *)
  let params = Ts_isa.Placement.effective_params placement params in
  Ts_obs.Prof.span "tms.search" @@ fun () ->
  let mii = Ts_ddg.Mii.mii g in
  let ii_max =
    match max_ii with
    | Some m -> m
    | None ->
        (* II rarely exceeds the longest dependence path (Section 4.3);
           cap the search grid there and rely on the SMS fallback for the
           pathological remainder. *)
        min (Ts_ddg.Mii.ii_upper_bound g) (max (Ts_ddg.Mii.ldp g) mii + 8)
  in
  let max_lat =
    Array.fold_left (fun acc (nd : Ts_ddg.Ddg.node) -> max acc nd.latency) 1 g.nodes
  in
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
  let cd_max = ii_max - 1 + max_lat + c_reg_com in
  let order = Ts_sms.Order.compute_with_dirs g ~ii:mii in
  (* The grid revisits each II once per objective group: compute the ASAP
     table (a Bellman-Ford relaxation) once per II, not per grid point. *)
  let asap_cache = Hashtbl.create 8 in
  let asap_for ii =
    match Hashtbl.find_opt asap_cache ii with
    | Some a -> a
    | None ->
        let a = S.asap_table g ~ii in
        Hashtbl.add asap_cache ii a;
        a
  in
  let groups = Cost_model.f_groups params ~mii ~ii_max ~cd_max in
  if Trace.enabled trace then
    Trace.begin_span trace ~ts:(Trace.tick trace) "tms.search"
      ~args:
        [
          ("loop", Ts_obs.Json.Str g.Ts_ddg.Ddg.name);
          ("p_max", Ts_obs.Json.Float p_max);
          ("mii", Ts_obs.Json.Int mii);
          ("ii_max", Ts_obs.Json.Int ii_max);
        ];
  let attempts = ref 0 in
  (* Bounded order repair: when the swing order dead-ends, hoist the
     blocking node to the front (so it gets first pick of the window) and
     re-run the placement from scratch.  Each grid point restarts from
     the pristine swing order. *)
  let cold_point ~ii ~cd =
    let tally = new_tally () in
    (* C2 comparison envelope for the warm-start memo (see
       [point_outcome]); recorded across every order-repair retry. *)
    let admit_max = ref neg_infinity and reject_min = ref infinity in
    let c2obs freq ok =
      if ok then (if freq > !admit_max then admit_max := freq)
      else if freq < !reject_min then reject_min := freq
    in
    let rec go order k =
      let res =
        try_schedule_tallied tally ~c2obs ~asap:(asap_for ii) g ~order ~ii
          ~c_delay:cd ~p_max ~c_reg_com
      in
      match res with
      | Ok _ -> res
      | Error rej when k < default_place_retries ->
          let v = rej.node in
          let entry = List.find (fun (u, _) -> u = v) order in
          let rest = List.filter (fun (u, _) -> u <> v) order in
          go (entry :: rest) (k + 1)
      | Error _ -> res
    in
    let res = go order 0 in
    (match point_memo with
    | Some pm ->
        pm.pm_store ~ii ~c_delay:cd ~p_max
          {
            po_times =
              (match res with
              | Ok kernel -> Some (Array.copy kernel.K.time)
              | Error _ -> None);
            po_reject = (match res with Error r -> Some r | Ok _ -> None);
            po_tally = (tally.t_resource, tally.t_c1, tally.t_c2, tally.t_admit);
            po_c2_admit_max = !admit_max;
            po_c2_reject_min = !reject_min;
          }
    | None -> ());
    (res, tally)
  in
  let try_point ~ii ~cd =
    match point_memo with
    | None -> cold_point ~ii ~cd
    | Some pm -> (
        match pm.pm_find ~ii ~c_delay:cd ~p_max with
        | None -> cold_point ~ii ~cd
        | Some po -> (
            let tally_of (r, c1, c2, ad) =
              { t_resource = r; t_c1 = c1; t_c2 = c2; t_admit = ad }
            in
            match (po.po_times, po.po_reject) with
            | Some times, _ -> (
                (* A corrupted entry (times that no longer validate) falls
                   back to the cold attempt; the provider overwrites it. *)
                match K.of_times g ~ii times with
                | kernel ->
                    Metrics.incr m_warm_hits;
                    (Ok kernel, tally_of po.po_tally)
                | exception _ -> cold_point ~ii ~cd)
            | None, Some rej ->
                Metrics.incr m_warm_hits;
                (Error rej, tally_of po.po_tally)
            | None, None -> cold_point ~ii ~cd))
  in
  let timed_point ~ii ~cd =
    let at0 = Unix.gettimeofday () in
    let rt = try_point ~ii ~cd in
    (rt, Unix.gettimeofday () -. at0)
  in
  (* Traced searches stay strictly sequential (the tracer is a single
     shared sink and the "one event per attempt" contract depends on
     walk order); otherwise grid points fan out on the resident pool. *)
  let par = (not (Trace.enabled trace)) && Ts_base.Parallel.get_jobs () > 1 in
  (* Speculation window: enough in-flight points to feed every worker,
     small enough that a mid-chunk improvement of the incumbent wastes at
     most one chunk of evaluations. *)
  let spec_chunk = 2 * Ts_base.Parallel.get_jobs () in
  (* F-plateau walk: scan objective groups in ascending F.  After the
     first feasible point fixes F0, keep scanning until F exceeds
     F0 + default_f_slack, tie-breaking toward the lowest II seen so far
     (points at or above the incumbent II are skipped, and within a group
     the first success is the lowest-F placement for that II). *)
  let f0 = ref None in
  let best = ref None in
  let rec walk = function
    | [] -> ()
    | (f, points) :: rest ->
        let past_plateau =
          match !f0 with
          | Some f0v -> f > f0v +. default_f_slack +. 1e-9
          | None -> false
        in
        if not past_plateau then begin
          (* Speculative frontier, one chunk of points at a time: every
             point of the chunk still below the incumbent best II at
             chunk entry — a provable superset of the sequential walk's
             attempts within the chunk, since the incumbent only
             improves — is evaluated as a pool task ([try_point] is pure
             given the shared read-only DDG, order and ASAP tables).  The
             walk is then REPLAYED in sequential order, consuming a
             precomputed outcome only when the point is still worth
             attempting and discarding the rest unflushed, so counters,
             trace events and the chosen kernel stay bit-identical to
             [--jobs 1].  Chunking re-filters against the updated
             incumbent between chunks, bounding wasted speculation to one
             chunk per improvement. *)
          let replay pre (ii, cd) =
            let worth =
              match !best with
              | None -> true
              | Some (bii, _, _, _) -> ii < bii
            in
            if worth then begin
              incr attempts;
              Metrics.incr m_attempts;
              let (res, tally), dt =
                match List.assoc_opt (ii, cd) pre with
                | Some v -> v
                | None -> timed_point ~ii ~cd
              in
              flush_tally tally;
              Metrics.observe m_attempt_ms (dt *. 1000.0);
              match res with
              | Ok kernel ->
                  attempt_event trace ~base:"sms" ~ii ~c_delay:cd ~f
                    ~reason:"scheduled" true;
                  if !f0 = None then f0 := Some f;
                  best := Some (ii, cd, f, kernel)
              | Error rej ->
                  attempt_event trace ~base:"sms" ~ii ~c_delay:cd ~f
                    ~reason:(reject_reason rej) false
            end
          in
          let rec chunked = function
            | [] -> ()
            | points ->
                let now, later = take_drop spec_chunk points in
                let entry_bii =
                  match !best with
                  | None -> max_int
                  | Some (bii, _, _, _) -> bii
                in
                let cands =
                  List.filter (fun (ii, _) -> ii < entry_bii) now
                in
                let pre =
                  if par && List.length cands >= 2 then begin
                    (* ASAP tables live in a (single-domain) Hashtbl
                       cache: fill it for the chunk's IIs before fanning
                       out. *)
                    List.iter (fun (ii, _) -> ignore (asap_for ii)) cands;
                    Ts_base.Parallel.map
                      (fun (ii, cd) -> ((ii, cd), timed_point ~ii ~cd))
                      cands
                  end
                  else []
                in
                List.iter (replay pre) now;
                chunked later
          in
          chunked points;
          walk rest
        end
  in
  walk groups;
  let r =
    match !best with
    | Some (_, cd, f, kernel) ->
        finish ~params ~p_max ~mii ~attempts:!attempts ~fell_back:false
          ~c_delay_threshold:cd ~f_min:f kernel
    | None ->
        (* Grid exhausted: degenerate to SMS. *)
        Metrics.incr m_fallbacks;
        if Trace.enabled trace then
          Trace.instant trace ~ts:(Trace.tick trace) "tms.fallback"
            ~args:[ ("base", Ts_obs.Json.Str "sms") ];
        let sms = Ts_sms.Sms.schedule g in
        let kernel = sms.Ts_sms.Sms.kernel in
        let f_min =
          Cost_model.f_value params ~ii:kernel.K.ii
            ~c_delay:(max 1 (K.c_delay kernel ~c_reg_com))
        in
        finish ~params ~p_max ~mii ~attempts:!attempts ~fell_back:true
          ~c_delay_threshold:cd_max ~f_min kernel
  in
  Metrics.incr m_schedules;
  result_event trace r;
  if Trace.enabled trace then
    Trace.end_span trace ~ts:(Trace.tick trace) "tms.search";
  r

let schedule_sweep ?(trace = Trace.null) ?(p_maxes = [ 0.01; 0.05; 0.25 ])
    ?point_memo ?(placement = Ts_isa.Placement.Round_robin) ~params g =
  let params = Ts_isa.Placement.effective_params placement params in
  let n = 1000 in
  (* A shared point memo pays off twice here: the per-P_max searches walk
     the same (II, C_delay) grid, and most attempts' C2 envelopes cover
     several of the swept P_max values. *)
  let run p_max = schedule ~trace ~p_max ?point_memo ~params g in
  (* One worker domain per P_max. An enabled tracer is a single shared
     sink, so traced sweeps stay sequential (and their event order
     deterministic); results are identical either way. *)
  let results =
    if Trace.enabled trace then List.map run p_maxes
    else Ts_base.Parallel.map run p_maxes
  in
  let cost (r : result) =
    Cost_model.estimate params ~ii:r.kernel.K.ii
      ~c_delay:r.achieved_c_delay ~p_m:r.misspec ~n
  in
  match results with
  | [] -> invalid_arg "Tms.schedule_sweep: empty p_max list"
  | r0 :: rest ->
      let best =
        List.fold_left (fun best r -> if cost r < cost best then r else best) r0 rest
      in
      if Trace.enabled trace then
        Trace.instant trace ~ts:(Trace.tick trace) "tms.sweep.pick"
          ~args:
            [
              ("p_max", Ts_obs.Json.Float best.p_max);
              ("estimate", Ts_obs.Json.Float (cost best));
            ];
      best
