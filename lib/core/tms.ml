module K = Ts_modsched.Kernel
module S = Ts_modsched.Sched
module Trace = Ts_obs.Trace
module Metrics = Ts_obs.Metrics

(* Search counters on the default registry (dumped by [tsms --metrics]).
   Handles are plain int refs, so the hot-path cost is one increment. *)
let m_attempts = Metrics.counter Metrics.default "tms.attempts"
let m_fallbacks = Metrics.counter Metrics.default "tms.fallbacks"
let m_schedules = Metrics.counter Metrics.default "tms.schedules"

let m_slot_resource =
  Metrics.counter Metrics.default "tms.slots.resource_reject"

let m_slot_c1 = Metrics.counter Metrics.default "tms.slots.c1_reject"
let m_slot_c2 = Metrics.counter Metrics.default "tms.slots.c2_reject"
let m_slot_admitted = Metrics.counter Metrics.default "tms.slots.admitted"

type result = {
  kernel : K.t;
  mii : int;
  c_delay_threshold : int;
  achieved_c_delay : int;
  p_max : float;
  misspec : float;
  f_min : float;
  attempts : int;
  fell_back : bool;
}

let default_p_max = 0.05

(* Incremental view of the partial schedule: rows/stages computed directly
   from raw issue cycles (the kernel normalises by a multiple of II, so
   these values equal the final kernel's). *)
module Partial = struct
  let row ~ii t = Ts_base.Intmath.modulo t ii
  let stage ~ii t = Ts_base.Intmath.div_floor t ii

  let d_ker ~ii ~time_of (e : Ts_ddg.Ddg.edge) =
    match (time_of e.src, time_of e.dst) with
    | Some ts, Some td -> Some (e.distance + stage ~ii td - stage ~ii ts)
    | _ -> None

  let sync g ~ii ~c_reg_com ~time_of (e : Ts_ddg.Ddg.edge) =
    match (time_of e.src, time_of e.dst) with
    | Some ts, Some td ->
        Some (row ~ii ts - row ~ii td + Ts_ddg.Ddg.latency g e.src + c_reg_com)
    | _ -> None

  (* All inter-iteration dependences of [kind] among placed nodes. *)
  let inter_iter_deps g ~ii ~time_of kind =
    Array.to_list g.Ts_ddg.Ddg.edges
    |> List.filter_map (fun (e : Ts_ddg.Ddg.edge) ->
           if e.kind <> kind then None
           else
             match d_ker ~ii ~time_of e with
             | Some d when d >= 1 -> Some e
             | _ -> None)

  let preserved g ~ii ~c_reg_com ~time_of ~reg_deps (e : Ts_ddg.Ddg.edge) =
    match (time_of e.src, time_of e.dst, d_ker ~ii ~time_of e) with
    | Some ts, Some td, Some dk when dk >= 1 ->
        let need =
          float_of_int (row ~ii ts + Ts_ddg.Ddg.latency g e.src - row ~ii td)
          /. float_of_int dk
        in
        List.exists
          (fun (r : Ts_ddg.Ddg.edge) ->
            match (time_of r.src, sync g ~ii ~c_reg_com ~time_of r) with
            | Some tu, Some sy -> row ~ii tu < row ~ii ts && float_of_int sy >= need
            | _ -> false)
          reg_deps
    | _ -> false
end

(* ISSUE_SLOT_SELECTION (Figure 3, lines 18-28) for node [v] at cycle [c]:
   resource fit, C1 on the new register dependences, C2 on the
   misspeculation frequency when new memory dependences appear. *)
let admissible s v ~cycle ~c_delay ~p_max ~c_reg_com =
  let g = S.ddg s in
  let ii = S.ii s in
  if not (S.fits s v ~cycle) then begin
    Metrics.incr m_slot_resource;
    false
  end
  else begin
    let time_of u = if u = v then Some cycle else S.time s u in
    let incident (e : Ts_ddg.Ddg.edge) = e.src = v || e.dst = v in
    let new_deps kind =
      List.filter incident (Partial.inter_iter_deps g ~ii ~time_of kind)
    in
    let r_v = new_deps Ts_ddg.Ddg.Reg in
    let c1 =
      List.for_all
        (fun e ->
          match Partial.sync g ~ii ~c_reg_com ~time_of e with
          | Some sy -> sy <= c_delay
          | None -> true)
        r_v
    in
    if not c1 then begin
      Metrics.incr m_slot_c1;
      false
    end
    else begin
      let m_v = new_deps Ts_ddg.Ddg.Mem in
      if m_v = [] then begin
        Metrics.incr m_slot_admitted;
        true
      end
      else begin
        let reg_deps = Partial.inter_iter_deps g ~ii ~time_of Ts_ddg.Ddg.Reg in
        let mem_deps = Partial.inter_iter_deps g ~ii ~time_of Ts_ddg.Ddg.Mem in
        let m_all =
          List.filter
            (fun e -> not (Partial.preserved g ~ii ~c_reg_com ~time_of ~reg_deps e))
            mem_deps
        in
        let freq = Cost_model.p_m (List.map (fun (e : Ts_ddg.Ddg.edge) -> e.prob) m_all) in
        let ok = freq <= p_max +. 1e-12 in
        Metrics.incr (if ok then m_slot_admitted else m_slot_c2);
        ok
      end
    end
  end

let try_schedule g ~order ~ii ~c_delay ~p_max ~c_reg_com =
  let s = S.create g ~ii in
  let place_one (v, prefer) =
    match S.window ~prefer s v with
    | None -> false
    | Some w ->
        let rec try_cycles = function
          | [] -> false
          | c :: rest ->
              if admissible s v ~cycle:c ~c_delay ~p_max ~c_reg_com then begin
                S.place s v ~cycle:c;
                true
              end
              else try_cycles rest
        in
        try_cycles (S.candidate_cycles w)
  in
  if List.for_all place_one order then Some (K.of_schedule s) else None

let finish ~params ~p_max ~mii ~attempts ~fell_back ~c_delay_threshold ~f_min kernel =
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
  {
    kernel;
    mii;
    c_delay_threshold;
    achieved_c_delay = K.c_delay kernel ~c_reg_com;
    p_max;
    misspec = Overheads.misspec_prob kernel ~c_reg_com;
    f_min;
    attempts;
    fell_back;
  }

(* One "tms.attempt" trace event per (II, C_delay) point tried, with the
   objective value and the accept/reject outcome; searches are logical-time
   (Trace.tick), not cycle-time. *)
let attempt_event trace ~base ~ii ~c_delay ~f accepted =
  if Trace.enabled trace then
    Trace.instant trace ~ts:(Trace.tick trace) "tms.attempt"
      ~args:
        [
          ("base", Ts_obs.Json.Str base);
          ("ii", Ts_obs.Json.Int ii);
          ("c_delay", Ts_obs.Json.Int c_delay);
          ("f", Ts_obs.Json.Float f);
          ("accepted", Ts_obs.Json.Bool accepted);
          ( "reason",
            Ts_obs.Json.Str (if accepted then "scheduled" else "placement-failed")
          );
        ]

let result_event trace (r : result) =
  if Trace.enabled trace then
    Trace.instant trace ~ts:(Trace.tick trace) "tms.result"
      ~args:
        [
          ("ii", Ts_obs.Json.Int r.kernel.K.ii);
          ("c_delay", Ts_obs.Json.Int r.achieved_c_delay);
          ("c_delay_threshold", Ts_obs.Json.Int r.c_delay_threshold);
          ("p_max", Ts_obs.Json.Float r.p_max);
          ("p_m", Ts_obs.Json.Float r.misspec);
          ("f_min", Ts_obs.Json.Float r.f_min);
          ("attempts", Ts_obs.Json.Int r.attempts);
          ("fell_back", Ts_obs.Json.Bool r.fell_back);
        ]

let schedule ?(trace = Trace.null) ?(p_max = default_p_max) ?max_ii ~params g =
  let mii = Ts_ddg.Mii.mii g in
  let ii_max =
    match max_ii with
    | Some m -> m
    | None ->
        (* II rarely exceeds the longest dependence path (Section 4.3);
           cap the search grid there and rely on the SMS fallback for the
           pathological remainder. *)
        min (Ts_ddg.Mii.ii_upper_bound g) (max (Ts_ddg.Mii.ldp g) mii + 8)
  in
  let max_lat =
    Array.fold_left (fun acc (nd : Ts_ddg.Ddg.node) -> max acc nd.latency) 1 g.nodes
  in
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
  let cd_max = ii_max - 1 + max_lat + c_reg_com in
  let order = Ts_sms.Order.compute_with_dirs g ~ii:mii in
  let groups = Cost_model.f_groups params ~mii ~ii_max ~cd_max in
  if Trace.enabled trace then
    Trace.begin_span trace ~ts:(Trace.tick trace) "tms.search"
      ~args:
        [
          ("loop", Ts_obs.Json.Str g.Ts_ddg.Ddg.name);
          ("p_max", Ts_obs.Json.Float p_max);
          ("mii", Ts_obs.Json.Int mii);
          ("ii_max", Ts_obs.Json.Int ii_max);
        ];
  let attempts = ref 0 in
  let rec walk = function
    | [] ->
        (* Grid exhausted: degenerate to SMS. *)
        Metrics.incr m_fallbacks;
        if Trace.enabled trace then
          Trace.instant trace ~ts:(Trace.tick trace) "tms.fallback"
            ~args:[ ("base", Ts_obs.Json.Str "sms") ];
        let sms = Ts_sms.Sms.schedule g in
        let kernel = sms.Ts_sms.Sms.kernel in
        let f_min =
          Cost_model.f_value params ~ii:kernel.K.ii
            ~c_delay:(max 1 (K.c_delay kernel ~c_reg_com))
        in
        finish ~params ~p_max ~mii ~attempts:!attempts ~fell_back:true
          ~c_delay_threshold:cd_max ~f_min kernel
    | (f, points) :: rest ->
        let rec try_points = function
          | [] -> walk rest
          | (ii, cd) :: more -> (
              incr attempts;
              Metrics.incr m_attempts;
              let res = try_schedule g ~order ~ii ~c_delay:cd ~p_max ~c_reg_com in
              attempt_event trace ~base:"sms" ~ii ~c_delay:cd ~f (res <> None);
              match res with
              | Some kernel ->
                  finish ~params ~p_max ~mii ~attempts:!attempts ~fell_back:false
                    ~c_delay_threshold:cd ~f_min:f kernel
              | None -> try_points more)
        in
        try_points points
  in
  let r = walk groups in
  Metrics.incr m_schedules;
  result_event trace r;
  if Trace.enabled trace then
    Trace.end_span trace ~ts:(Trace.tick trace) "tms.search";
  r

let schedule_sweep ?(trace = Trace.null) ?(p_maxes = [ 0.01; 0.05; 0.25 ]) ~params
    g =
  let n = 1000 in
  let results = List.map (fun p_max -> schedule ~trace ~p_max ~params g) p_maxes in
  let cost (r : result) =
    Cost_model.estimate params ~ii:r.kernel.K.ii
      ~c_delay:r.achieved_c_delay ~p_m:r.misspec ~n
  in
  match results with
  | [] -> invalid_arg "Tms.schedule_sweep: empty p_max list"
  | r0 :: rest ->
      let best =
        List.fold_left (fun best r -> if cost r < cost best then r else best) r0 rest
      in
      if Trace.enabled trace then
        Trace.instant trace ~ts:(Trace.tick trace) "tms.sweep.pick"
          ~args:
            [
              ("p_max", Ts_obs.Json.Float best.p_max);
              ("estimate", Ts_obs.Json.Float (cost best));
            ];
      best
