module K = Ts_modsched.Kernel

type result = Tms.result = {
  kernel : K.t;
  mii : int;
  c_delay_threshold : int;
  achieved_c_delay : int;
  p_max : float;
  misspec : float;
  f_min : float;
  attempts : int;
  fell_back : bool;
}

(* Same attempt-latency histogram as the swing-order search: an attempt
   is an attempt whichever placement engine ran it. *)
let m_attempt_ms =
  Ts_obs.Metrics.histogram Ts_obs.Metrics.default "tms.attempt_ms"

let m_warm_hits =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "tms.warm.point_hits"

let schedule ?(trace = Ts_obs.Trace.null) ?(p_max = Tms.default_p_max) ?max_ii
    ?point_memo ?(placement = Ts_isa.Placement.Round_robin) ~params g =
  let params = Ts_isa.Placement.effective_params placement params in
  Ts_obs.Prof.span "tms_ims.search" @@ fun () ->
  let mii = Ts_ddg.Mii.mii g in
  let ii_max =
    match max_ii with
    | Some m -> m
    | None -> min (Ts_ddg.Mii.ii_upper_bound g) (max (Ts_ddg.Mii.ldp g) mii + 8)
  in
  let max_lat =
    Array.fold_left (fun acc (nd : Ts_ddg.Ddg.node) -> max acc nd.latency) 1 g.nodes
  in
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
  let cd_max = ii_max - 1 + max_lat + c_reg_com in
  let groups = Cost_model.f_groups params ~mii ~ii_max ~cd_max in
  (* Per-II caches: the grid revisits an II once per objective group, and
     both the ASAP relaxation and the priority sort depend only on
     (g, II). *)
  let per_ii = Hashtbl.create 8 in
  let cached ii =
    match Hashtbl.find_opt per_ii ii with
    | Some c -> c
    | None ->
        let c =
          (Ts_modsched.Sched.asap_table g ~ii, Ts_sms.Ims.priority_order g ~ii)
        in
        Hashtbl.add per_ii ii c;
        c
  in
  let attempts = ref 0 in
  let finish ~fell_back ~c_delay_threshold ~f_min kernel =
    {
      kernel;
      mii;
      c_delay_threshold;
      achieved_c_delay = K.c_delay kernel ~c_reg_com;
      p_max;
      misspec = Overheads.misspec_prob kernel ~c_reg_com;
      f_min;
      attempts = !attempts;
      fell_back;
    }
  in
  (* F-plateau walk with lowest-II tie-breaking, mirroring [Tms.schedule]
     (§7.9(a)).  IMS reports no blocking node, so there is no
     order-repair retry here — the plateau scan alone recovers the
     deeper-pipelining points. *)
  (* One grid-point attempt: an IMS pass under the TMS admissibility
     predicate, then a post-check.  Every placement passed [admissible],
     but IMS eviction can retract decisions those checks relied on:
     unscheduling the register dependence that preserved a speculative
     memory dependence un-preserves it behind C2's back (and moving a
     producer can likewise raise an already-checked sync past C_delay).
     Re-derive both claims on the finished kernel and reject the grid
     point if eviction broke them.  Pure given the shared read-only DDG
     and per-II caches, so points can be evaluated speculatively on the
     pool. *)
  let cold_point ~ii ~cd =
    (* C2 comparison envelope for the warm-start memo (the condition under
       which this outcome transfers to another P_max; see
       {!Tms.point_outcome}). The post-pass misspeculation check is a
       comparison of the same [freq <= p_max + 1e-12] shape, so it joins
       the envelope. *)
    let admit_max = ref neg_infinity and reject_min = ref infinity in
    let c2obs freq ok =
      if ok then (if freq > !admit_max then admit_max := freq)
      else if freq < !reject_min then reject_min := freq
    in
    let admissible s v ~cycle =
      Tms.admissible ~c2obs s v ~cycle ~c_delay:cd ~p_max ~c_reg_com
    in
    let asap, prio = cached ii in
    let at0 = Unix.gettimeofday () in
    let res = Ts_sms.Ims.try_ii ~admissible ~asap ~prio g ~ii in
    let dt = Unix.gettimeofday () -. at0 in
    let res =
      match res with
      | Some kernel when K.c_delay kernel ~c_reg_com <= cd ->
          let m = Overheads.misspec_prob kernel ~c_reg_com in
          let ok = m <= p_max +. 1e-12 in
          c2obs m ok;
          if ok then Some kernel else None
      | Some _ | None -> None
    in
    (match point_memo with
    | Some pm ->
        pm.Tms.pm_store ~ii ~c_delay:cd ~p_max
          {
            Tms.po_times =
              Option.map (fun (k : K.t) -> Array.copy k.K.time) res;
            po_reject = None;
            po_tally = (0, 0, 0, 0);
            po_c2_admit_max = !admit_max;
            po_c2_reject_min = !reject_min;
          }
    | None -> ());
    (res, dt)
  in
  let timed_point ~ii ~cd =
    match point_memo with
    | None -> cold_point ~ii ~cd
    | Some pm -> (
        match pm.Tms.pm_find ~ii ~c_delay:cd ~p_max with
        | None -> cold_point ~ii ~cd
        | Some { Tms.po_times = Some times; _ } -> (
            match K.of_times g ~ii times with
            | kernel ->
                Ts_obs.Metrics.incr m_warm_hits;
                (Some kernel, 0.0)
            | exception _ -> cold_point ~ii ~cd)
        | Some { Tms.po_times = None; _ } ->
            Ts_obs.Metrics.incr m_warm_hits;
            (None, 0.0))
  in
  let par =
    (not (Ts_obs.Trace.enabled trace)) && Ts_base.Parallel.get_jobs () > 1
  in
  let spec_chunk = 2 * Ts_base.Parallel.get_jobs () in
  let rec take_drop k = function
    | [] -> ([], [])
    | l when k <= 0 -> ([], l)
    | x :: tl ->
        let a, b = take_drop (k - 1) tl in
        (x :: a, b)
  in
  let f0 = ref None in
  let best = ref None in
  let rec walk = function
    | [] -> ()
    | (f, points) :: rest ->
        let past_plateau =
          match !f0 with
          | Some f0v -> f > f0v +. Tms.default_f_slack +. 1e-9
          | None -> false
        in
        if not past_plateau then begin
          (* Speculative frontier, chunked as in [Tms.schedule]: evaluate
             each chunk's points still below the incumbent best II at
             chunk entry as pool tasks (a superset of the sequential
             walk's attempts within the chunk), then replay the walk in
             order, consuming outcomes only for points still worth
             attempting — counters and the chosen kernel stay
             bit-identical to [--jobs 1]. *)
          let replay pre (ii, cd) =
            let worth =
              match !best with
              | None -> true
              | Some (bii, _, _, _) -> ii < bii
            in
            if worth then begin
              incr attempts;
              let res, dt =
                match List.assoc_opt (ii, cd) pre with
                | Some v -> v
                | None -> timed_point ~ii ~cd
              in
              Ts_obs.Metrics.observe m_attempt_ms (dt *. 1000.0);
              Tms.attempt_event trace ~base:"ims" ~ii ~c_delay:cd ~f
                (res <> None);
              match res with
              | Some kernel ->
                  if !f0 = None then f0 := Some f;
                  best := Some (ii, cd, f, kernel)
              | None -> ()
            end
          in
          let rec chunked = function
            | [] -> ()
            | points ->
                let now, later = take_drop spec_chunk points in
                let entry_bii =
                  match !best with
                  | None -> max_int
                  | Some (bii, _, _, _) -> bii
                in
                let cands =
                  List.filter (fun (ii, _) -> ii < entry_bii) now
                in
                let pre =
                  if par && List.length cands >= 2 then begin
                    (* The per-II cache Hashtbl is single-domain: fill it
                       for the chunk's IIs before fanning out. *)
                    List.iter (fun (ii, _) -> ignore (cached ii)) cands;
                    Ts_base.Parallel.map
                      (fun (ii, cd) -> ((ii, cd), timed_point ~ii ~cd))
                      cands
                  end
                  else []
                in
                List.iter (replay pre) now;
                chunked later
          in
          chunked points;
          walk rest
        end
  in
  walk groups;
  let r =
    match !best with
    | Some (_, cd, f, kernel) ->
        finish ~fell_back:false ~c_delay_threshold:cd ~f_min:f kernel
    | None ->
        (* grid exhausted: plain IMS fallback *)
        if Ts_obs.Trace.enabled trace then
          Ts_obs.Trace.instant trace ~ts:(Ts_obs.Trace.tick trace) "tms.fallback"
            ~args:[ ("base", Ts_obs.Json.Str "ims") ];
        let ims = Ts_sms.Ims.schedule g in
        let kernel = ims.Ts_sms.Ims.kernel in
        let f_min =
          Cost_model.f_value params ~ii:kernel.K.ii
            ~c_delay:(max 1 (K.c_delay kernel ~c_reg_com))
        in
        finish ~fell_back:true ~c_delay_threshold:cd_max ~f_min kernel
  in
  Tms.result_event trace r;
  r
