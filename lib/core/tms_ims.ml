module K = Ts_modsched.Kernel

type result = Tms.result = {
  kernel : K.t;
  mii : int;
  c_delay_threshold : int;
  achieved_c_delay : int;
  p_max : float;
  misspec : float;
  f_min : float;
  attempts : int;
  fell_back : bool;
}

(* Same attempt-latency histogram as the swing-order search: an attempt
   is an attempt whichever placement engine ran it. *)
let m_attempt_ms =
  Ts_obs.Metrics.histogram Ts_obs.Metrics.default "tms.attempt_ms"

let schedule ?(trace = Ts_obs.Trace.null) ?(p_max = Tms.default_p_max) ?max_ii
    ~params g =
  Ts_obs.Prof.span "tms_ims.search" @@ fun () ->
  let mii = Ts_ddg.Mii.mii g in
  let ii_max =
    match max_ii with
    | Some m -> m
    | None -> min (Ts_ddg.Mii.ii_upper_bound g) (max (Ts_ddg.Mii.ldp g) mii + 8)
  in
  let max_lat =
    Array.fold_left (fun acc (nd : Ts_ddg.Ddg.node) -> max acc nd.latency) 1 g.nodes
  in
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
  let cd_max = ii_max - 1 + max_lat + c_reg_com in
  let groups = Cost_model.f_groups params ~mii ~ii_max ~cd_max in
  (* Per-II caches: the grid revisits an II once per objective group, and
     both the ASAP relaxation and the priority sort depend only on
     (g, II). *)
  let per_ii = Hashtbl.create 8 in
  let cached ii =
    match Hashtbl.find_opt per_ii ii with
    | Some c -> c
    | None ->
        let c =
          (Ts_modsched.Sched.asap_table g ~ii, Ts_sms.Ims.priority_order g ~ii)
        in
        Hashtbl.add per_ii ii c;
        c
  in
  let attempts = ref 0 in
  let finish ~fell_back ~c_delay_threshold ~f_min kernel =
    {
      kernel;
      mii;
      c_delay_threshold;
      achieved_c_delay = K.c_delay kernel ~c_reg_com;
      p_max;
      misspec = Overheads.misspec_prob kernel ~c_reg_com;
      f_min;
      attempts = !attempts;
      fell_back;
    }
  in
  (* F-plateau walk with lowest-II tie-breaking, mirroring [Tms.schedule]
     (§7.9(a)).  IMS reports no blocking node, so there is no
     order-repair retry here — the plateau scan alone recovers the
     deeper-pipelining points. *)
  let f0 = ref None in
  let best = ref None in
  let rec walk = function
    | [] -> ()
    | (f, points) :: rest ->
        let past_plateau =
          match !f0 with
          | Some f0v -> f > f0v +. Tms.default_f_slack +. 1e-9
          | None -> false
        in
        if not past_plateau then begin
          List.iter
            (fun (ii, cd) ->
              let worth =
                match !best with
                | None -> true
                | Some (bii, _, _, _) -> ii < bii
              in
              if worth then begin
                incr attempts;
                let admissible s v ~cycle =
                  Tms.admissible s v ~cycle ~c_delay:cd ~p_max ~c_reg_com
                in
                let asap, prio = cached ii in
                let at0 = Unix.gettimeofday () in
                let res = Ts_sms.Ims.try_ii ~admissible ~asap ~prio g ~ii in
                Ts_obs.Metrics.observe m_attempt_ms
                  ((Unix.gettimeofday () -. at0) *. 1000.0);
                (* Every placement passed [admissible], but IMS eviction can
                   retract decisions those checks relied on: unscheduling the
                   register dependence that preserved a speculative memory
                   dependence un-preserves it behind C2's back (and moving a
                   producer can likewise raise an already-checked sync past
                   C_delay). Re-derive both claims on the finished kernel and
                   reject the grid point if eviction broke them. *)
                let res =
                  match res with
                  | Some kernel
                    when K.c_delay kernel ~c_reg_com <= cd
                         && Overheads.misspec_prob kernel ~c_reg_com
                            <= p_max +. 1e-12 ->
                      Some kernel
                  | Some _ | None -> None
                in
                Tms.attempt_event trace ~base:"ims" ~ii ~c_delay:cd ~f
                  (res <> None);
                match res with
                | Some kernel ->
                    if !f0 = None then f0 := Some f;
                    best := Some (ii, cd, f, kernel)
                | None -> ()
              end)
            points;
          walk rest
        end
  in
  walk groups;
  let r =
    match !best with
    | Some (_, cd, f, kernel) ->
        finish ~fell_back:false ~c_delay_threshold:cd ~f_min:f kernel
    | None ->
        (* grid exhausted: plain IMS fallback *)
        if Ts_obs.Trace.enabled trace then
          Ts_obs.Trace.instant trace ~ts:(Ts_obs.Trace.tick trace) "tms.fallback"
            ~args:[ ("base", Ts_obs.Json.Str "ims") ];
        let ims = Ts_sms.Ims.schedule g in
        let kernel = ims.Ts_sms.Ims.kernel in
        let f_min =
          Cost_model.f_value params ~ii:kernel.K.ii
            ~c_delay:(max 1 (K.c_delay kernel ~c_reg_com))
        in
        finish ~fell_back:true ~c_delay_threshold:cd_max ~f_min kernel
  in
  Tms.result_event trace r;
  r
