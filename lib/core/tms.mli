(** Thread-sensitive modulo scheduling (Figure 3) — the paper's
    contribution.

    TMS wraps the SMS inner loop with two changes:

    + instead of minimising II alone, it minimises the cost-model objective
      [F (II, C_delay)] ({!Cost_model.f_value}): candidate
      [(II, C_delay)] pairs are tried in increasing order of [F], starting
      from [F (MII, 1 + c_reg_com)];
    + an issue slot is admitted only if, with respect to the already
      scheduled instructions, (C1) every new inter-iteration register
      dependence has [sync <= C_delay], and (C2) when the node introduces
      new inter-iteration memory dependences, the misspeculation frequency
      of all non-preserved memory dependences stays within [P_max].

    Within one [F] value we try, for each II, the largest admissible
    [C_delay] (any schedule admitted under a smaller [C_delay] with the
    same [F] is admitted under the larger one, and the objective value is
    identical), in increasing II order.

    The walk does not stop at the first feasible point: greedy swing
    placement often misses the paper-preferred low-II points, whose [F]
    sits within a cycle or so of the optimum (DESIGN.md §7.9(a)).  After
    the first success fixes [F0], the search keeps scanning groups up to
    [F0 + default_f_slack] and returns the feasible point with the lowest
    II, re-trying each failed placement up to [default_place_retries]
    times with the blocking node hoisted to the front of the swing
    order.

    If the whole [(II, C_delay)] grid is exhausted — possible only when a
    memory dependence's probability alone exceeds [P_max] and no
    synchronised dependence can preserve it — TMS degenerates to SMS, as
    the paper's does implicitly once [C_delay] and [P_max] reach their
    upper bounds. *)

type result = {
  kernel : Ts_modsched.Kernel.t;
  mii : int;
  c_delay_threshold : int;  (** the admitted threshold the search used *)
  achieved_c_delay : int;  (** the schedule's actual max {!Ts_modsched.Kernel.sync} *)
  p_max : float;
  misspec : float;  (** [P_M] of the final kernel (equation 3) *)
  f_min : float;  (** objective value of the returned schedule *)
  attempts : int;  (** [(II, C_delay)] schedule attempts made *)
  fell_back : bool;  (** [true] if the SMS fallback was returned *)
}

val default_p_max : float
(** 0.05 — a handful of misspeculations per hundred iterations at most;
    the paper reports observed misspeculation frequencies below 0.1%. *)

val default_f_slack : float
(** 1.5 — how far past the first feasible objective value the grid walk
    keeps scanning for a lower-II point.  Below the cost model's
    resolution against the simulator (~6% MAE), so the deeper pipelining
    is free at modeled accuracy. *)

val default_place_retries : int
(** 3 — bounded order repair: how many times a failed placement is
    re-run with the blocking node hoisted to the front of the swing
    order before the grid point is abandoned. *)

type reject = {
  node : int;  (** the node whose placement failed *)
  window_empty : bool;  (** its scheduling window was empty *)
  resource_rejects : int;  (** slots rejected by the resource check *)
  c1_rejects : int;  (** slots rejected by C1 *)
  c2_rejects : int;  (** slots rejected by C2 *)
}
(** Why one [(II, C_delay)] attempt died: either the failing node had no
    window at all, or every candidate slot was rejected (with the
    per-condition counts). *)

type point_outcome = {
  po_times : int array option;
      (** issue times of the scheduled kernel; [None] = placement failed *)
  po_reject : reject option;  (** the diagnosis when placement failed *)
  po_tally : int * int * int * int;
      (** slot verdicts (resource, C1, C2, admitted) to replay into the
          [tms.slots.*] counters *)
  po_c2_admit_max : float;
      (** largest misspeculation frequency a C2 comparison admitted
          ([neg_infinity] when none did) *)
  po_c2_reject_min : float;
      (** smallest frequency C2 rejected ([infinity] when none) *)
}
(** The complete recorded outcome of one grid-point attempt. An attempt
    is deterministic given (DDG, II, C_delay, c_reg_com) except for its
    C2 comparisons against [P_max]; the admit/reject envelope captures
    the set of [P_max] values at which the recorded run would have made
    identical decisions, so one entry serves a whole [P_max] sweep. *)

type point_memo = {
  pm_find : ii:int -> c_delay:int -> p_max:float -> point_outcome option;
  pm_store : ii:int -> c_delay:int -> p_max:float -> point_outcome -> unit;
}
(** Warm-start provider ({!Ts_harness.Cached} backs one with the persist
    store). [pm_find] must answer only outcomes whose envelope covers the
    requested [p_max] (see {!envelope_covers}) and that were recorded by
    the same scheduling engine on the same DDG and [c_reg_com]; under
    that contract a warm-started search returns bit-identical results to
    a cold one — the walk merely replays recorded outcomes. Both
    callbacks may be invoked concurrently from pool worker domains. *)

val envelope_covers : admit_max:float -> reject_min:float -> float -> bool
(** [envelope_covers ~admit_max ~reject_min p_max]: would every recorded
    C2 comparison keep its verdict at [p_max]? *)

val schedule :
  ?trace:Ts_obs.Trace.t ->
  ?p_max:float ->
  ?max_ii:int ->
  ?point_memo:point_memo ->
  ?placement:Ts_isa.Placement.policy ->
  params:Ts_isa.Spmt_params.t ->
  Ts_ddg.Ddg.t ->
  result
(** Run TMS. [max_ii] bounds the II grid (default
    {!Ts_ddg.Mii.ii_upper_bound}).

    [placement] (default {!Ts_isa.Placement.Round_robin}) makes the
    search price Definition 2 under the given thread-to-core map: the
    params are first passed through
    {!Ts_isa.Placement.effective_params}, so C1 admission and the F
    objective see the worst distance-1 ring-hop cost and target-core
    speed. Round-robin is the identity — results (and warm-start keys)
    are unchanged. When combining with a caching provider, key on the
    effective params.

    [point_memo] warm-starts the grid walk from previously recorded
    attempt outcomes; hits are counted on [tms.warm.point_hits] and the
    returned result is bit-identical to a cold search.

    [trace] (default {!Ts_obs.Trace.null}) receives a ["tms.search"] span
    enclosing one ["tms.attempt"] instant event per [(II, C_delay)] point
    tried (args: [ii], [c_delay], objective [f], [accepted], [reason]), a
    ["tms.fallback"] event if the grid is exhausted, and a ["tms.result"]
    event carrying the returned kernel's [II], achieved [C_delay],
    misspeculation estimate [p_m], [f_min] and attempt count. Search
    events use the tracer's logical clock ({!Ts_obs.Trace.tick}).

    Slot-level admission outcomes (resource/C1/C2 rejections, admissions)
    are counted on {!Ts_obs.Metrics.default} under [tms.slots.*]. *)

val reject_reason : reject -> string
(** Compact label for traces: ["window-empty"],
    ["resource-exhausted"], ["c1-exhausted"], ["c2-exhausted"], or
    ["mixed-exhausted"] when several conditions contributed. *)

val try_schedule_explained :
  ?asap:int array ->
  Ts_ddg.Ddg.t ->
  order:(int * Ts_modsched.Sched.direction) list ->
  ii:int ->
  c_delay:int ->
  p_max:float ->
  c_reg_com:int ->
  (Ts_modsched.Kernel.t, reject) Stdlib.result
(** One TMS attempt at a fixed [(II, C_delay)] (Figure 3 lines 8-15) with
    the failure diagnosis. [asap] must be
    [Ts_modsched.Sched.asap_table g ~ii] when supplied (grid searches
    cache it per II). *)

val try_schedule :
  ?asap:int array ->
  Ts_ddg.Ddg.t ->
  order:(int * Ts_modsched.Sched.direction) list ->
  ii:int ->
  c_delay:int ->
  p_max:float ->
  c_reg_com:int ->
  Ts_modsched.Kernel.t option
(** {!try_schedule_explained} without the diagnosis, exposed for tests
    and for the ablation benches. *)

type slot_verdict = Admit | Reject_resource | Reject_c1 | Reject_c2

val admit :
  ?c2obs:(float -> bool -> unit) ->
  Ts_modsched.Sched.t ->
  int ->
  cycle:int ->
  c_delay:int ->
  p_max:float ->
  c_reg_com:int ->
  slot_verdict
(** The bare [ISSUE_SLOT_SELECTION] predicate (Figure 3 lines 18-28) with
    the rejecting condition: resource fit, C1 on the new inter-iteration
    register dependences, C2 on the resulting misspeculation frequency.
    Allocation-free: it reads the partial schedule's incrementally
    maintained dependence masks ({!Ts_modsched.Sched.reg_active_mask})
    and only examines the edges incident to the candidate node.

    [c2obs] observes every C2 comparison as [(frequency, admitted)] — the
    hook the warm-start envelope ({!point_outcome}) is built from. *)

val admissible :
  ?c2obs:(float -> bool -> unit) ->
  Ts_modsched.Sched.t ->
  int ->
  cycle:int ->
  c_delay:int ->
  p_max:float ->
  c_reg_com:int ->
  bool
(** [admit ... = Admit]. Exposed so other base schedulers can be made
    thread-sensitive (see {!Tms_ims}) and for tests. *)

val attempt_event :
  Ts_obs.Trace.t ->
  base:string ->
  ii:int ->
  c_delay:int ->
  f:float ->
  ?reason:string ->
  bool ->
  unit
(** Emit one ["tms.attempt"] instant event (no-op on the null tracer);
    shared with the other thread-sensitive instantiations ({!Tms_ims}).
    [base] names the underlying scheduler (["sms"], ["ims"]); [reason]
    defaults to ["scheduled"] / ["placement-failed"] by acceptance —
    pass {!reject_reason} for the diagnosis. *)

val result_event : Ts_obs.Trace.t -> result -> unit
(** Emit the ["tms.result"] event for a finished search. *)

val schedule_sweep :
  ?trace:Ts_obs.Trace.t ->
  ?p_maxes:float list ->
  ?point_memo:point_memo ->
  ?placement:Ts_isa.Placement.policy ->
  params:Ts_isa.Spmt_params.t ->
  Ts_ddg.Ddg.t ->
  result
(** Section 4.3: "several values for [P_max] can be tried so that the best
    schedule for a loop can be picked". Runs {!schedule} for each value
    (default [\[0.01; 0.05; 0.25\]]) and keeps the schedule with the lowest
    cost-model estimate {!Cost_model.estimate}. A shared [point_memo]
    also deduplicates attempts {e across} the swept values: most C2
    envelopes cover several [P_max]es at once. *)
