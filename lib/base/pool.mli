(** Resident work-stealing domain pool.

    Worker domains are spawned once per process (lazily, on first use)
    and reused for every parallel batch; nothing on the hot path calls
    [Domain.spawn]. Each worker owns an SPMC deque — owner pushes/pops
    at the back (LIFO), thieves take from the front (FIFO) — and a task
    that opens a parallel batch from inside a worker runs help-first:
    it pushes the children onto its own deque and works/steals until
    the batch drains, so nesting never spawns domains and never blocks
    a worker while tasks are runnable.

    This is the engine under {!Parallel.map}; most code should use that.
    The [submit]/[await] futures are for callers that want overlapping
    heterogeneous work rather than fork-join batches. *)

(** {1 Pool sizing}

    The size is resolved, in order, from {!set_jobs} (the CLI's
    [--jobs N]), the [TSMS_JOBS] environment variable, and finally
    [Domain.recommended_domain_count () - 1]. The pool only ever grows
    (up to {!cap}): a batch asking for more workers than are resident
    spawns the difference, and they stay. *)

val available : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val set_jobs : int -> unit
(** Fix the default parallelism for the whole process (overrides
    [TSMS_JOBS]). Raises [Invalid_argument] when [n < 1]. *)

val env_jobs : unit -> int option
(** The [TSMS_JOBS] environment variable, if set and non-empty. Raises
    [Invalid_argument] when it is not a positive integer. *)

val get_jobs : unit -> int
(** The default parallelism: the {!set_jobs} value, else [TSMS_JOBS],
    else {!available}. *)

val cap : int
(** Hard bound on resident worker domains; [ensure]-style growth clamps
    to it. *)

val size_now : unit -> int
(** Resident worker count right now (0 until the first parallel batch).
    Grow-only; used by tests to assert nesting does not explode the
    domain count. *)

(** {1 Telemetry} *)

type event =
  | Task_done of { worker : int; index : int; wall_s : float }
      (** One batch item finished: which worker ran it, its index within
          the batch, wall seconds (including any nested batch it helped
          drain while waiting). *)
  | Worker_exit of { worker : int; busy_s : float; tasks : int }
      (** Per-batch, per-slot account at the join: seconds spent inside
          this batch's tasks and how many the slot ran. Emitted for every
          pool slot including workers that ran zero tasks — idle workers
          count in utilization. Worker 0 is the (non-pool) caller. *)
  | Steal of { thief : int; victim : int }
      (** Worker [thief] took a task from the front of [victim]'s
          deque. *)
  | Idle of { worker : int; wait_s : float }
      (** A worker found no task anywhere and slept for [wait_s] seconds
          until new work arrived. *)

val set_observer : (event -> unit) option -> unit
(** Install (or clear) the process-global pool telemetry hook. The
    observer runs on the domain that produced the event, so it must be
    domain-safe. When no observer is installed the pool takes no
    timestamps at all. *)

val get_observer : unit -> (event -> unit) option
(** The currently installed hook (tests save/restore around their own). *)

(** {1 Workers} *)

val worker_id : unit -> int
(** 1-based id of the calling pool worker, or 0 for any other domain. *)

val in_worker : unit -> bool
(** [worker_id () > 0]. *)

(** {1 Futures} *)

type 'a future

val submit : (unit -> 'a) -> 'a future
(** Enqueue [f] on the pool (growing it to the configured size on first
    use). From inside a worker the task goes to the caller's own deque
    (help-first nesting); from outside it is injected round-robin. *)

val await : 'a future -> 'a
(** Block until the future resolves, re-raising if the task raised.
    A pool worker awaiting helps: it runs other pool tasks while it
    waits, so awaiting inside a task cannot deadlock the pool. *)

(** {1 Batches} *)

val run_batch : jobs:int -> n:int -> (int -> unit) -> unit
(** [run_batch ~jobs ~n body] runs [body 0] … [body (n-1)] and returns
    when all have finished. [body] must not raise. With [jobs <= 1] or
    [n = 1] the batch runs inline on the calling domain, in index order —
    the strict sequential path. Otherwise the items become pool tasks:
    a worker caller helps until the batch drains; an outside caller
    blocks. Emits [Task_done] per item and, at the join, [Worker_exit]
    for every slot (zero-task workers included) when an observer is
    installed. *)

val shutdown_for_tests : unit -> unit
(** Stop and join the resident workers, forgetting the pool so the next
    batch builds a fresh one. Only for tests that need to observe pool
    growth from a clean slate; never call while tasks are in flight. *)
