(** Deterministic parallel map over the resident domain pool.

    Independent units of work — the per-[P_max] TMS searches of a sweep,
    the per-benchmark rows of Table 2, the per-loop simulations of the
    DOACROSS studies — run on the process-wide work-stealing pool
    ({!Pool}) while results come back in input order, so every caller
    stays bit-for-bit deterministic at any pool size.

    The parallelism is resolved, in order, from: an explicit [?jobs]
    argument, {!set_jobs} (the CLI's [--jobs N]), the [TSMS_JOBS]
    environment variable, and finally [Domain.recommended_domain_count ()
    - 1] (one core left for the caller). Workers are spawned once and
    reused; no call to [map] spawns a domain after the pool is warm.
    Nested [map]s parallelize too: a map reached from inside a pool
    worker enqueues its items on that worker's own deque and helps drain
    them (help-first), so the live domain count stays bounded by the pool
    size at any nesting depth. *)

val available : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val set_jobs : int -> unit
(** Fix the default parallelism for the whole process (overrides
    [TSMS_JOBS]). Raises [Invalid_argument] when [n < 1]. *)

val env_jobs : unit -> int option
(** The [TSMS_JOBS] environment variable, if set and non-empty. Raises
    [Invalid_argument] when it is not a positive integer — callers that
    want an early, friendly diagnosis (the CLI) can probe this before the
    first {!map}. *)

val get_jobs : unit -> int
(** The parallelism {!map} will use when called without [?jobs]: the
    {!set_jobs} value, else [TSMS_JOBS], else {!available}. Raises
    [Invalid_argument] if [TSMS_JOBS] is set but is not a positive
    integer. *)

exception Map_errors of (int * exn) list
(** Every task that raised, as [(input index, exception)] pairs in input
    order. No failure is dropped and no result is discarded early: all
    items run to completion before this is raised. *)

type event = Pool.event =
  | Task_done of { worker : int; index : int; wall_s : float }
      (** One task finished (successfully or by raising): which worker
          ran it, its input index, and its wall time in seconds. *)
  | Worker_exit of { worker : int; busy_s : float; tasks : int }
      (** Per-map, per-slot account at the join: seconds this pool slot
          spent inside the map's tasks and how many it ran. Emitted for
          every slot including workers that ran zero tasks; worker 0 is
          the (non-pool) caller, and the sequential path reports as
          worker 0 too. *)
  | Steal of { thief : int; victim : int }
      (** Worker [thief] took a task from the front of [victim]'s
          deque. *)
  | Idle of { worker : int; wait_s : float }
      (** A pool worker found nothing to run anywhere and slept for
          [wait_s] seconds until new work arrived. *)

val set_observer : (event -> unit) option -> unit
(** Install (or clear) the process-global pool telemetry hook. The
    observer runs on the worker domain that produced the event, so it
    must be domain-safe; the observability layer installs one that feeds
    the [pool.*] metrics. [map] reads the hook once at entry — installing
    it mid-sweep affects subsequent maps only. When no observer is
    installed the pool takes no timestamps at all. *)

val get_observer : unit -> (event -> unit) option
(** The currently installed hook (tests save/restore around their own). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [List.map f xs] computed on the resident domain pool.
    Results are in input order. Runs strictly sequentially (inline on the
    calling domain) when the effective [jobs] is 1 or the list has at
    most one element. Otherwise the items become pool tasks; the pool is
    grown (once) to the effective [jobs], so a later map asking for less
    than the resident size may still be run by more workers — [jobs]
    caps growth, not concurrency. If any [f x] raises, every item is
    still attempted and {!Map_errors} is raised in the caller with the
    complete failure list — identical on the sequential and pooled paths.
    [f] must be safe to call from multiple domains at once. *)
