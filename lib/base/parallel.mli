(** A small Domain pool for embarrassingly parallel sweeps.

    Independent units of work — the per-[P_max] TMS searches of a sweep,
    the per-benchmark rows of Table 2, the per-loop simulations of the
    DOACROSS studies — run on a pool of worker domains while results come
    back in input order, so every caller stays bit-for-bit deterministic
    at any pool size.

    The pool size is resolved, in order, from: an explicit [?jobs]
    argument, {!set_jobs} (the CLI's [--jobs N]), the [TSMS_JOBS]
    environment variable, and finally [Domain.recommended_domain_count ()
    - 1] (one core left for the caller). Nested [map]s never spawn:
    work inside a worker domain runs sequentially, which bounds the live
    domain count by the pool size. *)

val available : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val set_jobs : int -> unit
(** Fix the default pool size for the whole process (overrides
    [TSMS_JOBS]). Raises [Invalid_argument] when [n < 1]. *)

val env_jobs : unit -> int option
(** The [TSMS_JOBS] environment variable, if set and non-empty. Raises
    [Invalid_argument] when it is not a positive integer — callers that
    want an early, friendly diagnosis (the CLI) can probe this before the
    first {!map}. *)

val get_jobs : unit -> int
(** The pool size {!map} will use when called without [?jobs]: the
    {!set_jobs} value, else [TSMS_JOBS], else {!available}. Raises
    [Invalid_argument] if [TSMS_JOBS] is set but is not a positive
    integer. *)

exception Map_errors of (int * exn) list
(** Every task that raised, as [(input index, exception)] pairs in input
    order. No failure is dropped and no result is discarded early: all
    items run to completion before this is raised. *)

type event =
  | Task_done of { worker : int; index : int; wall_s : float }
      (** One task finished (successfully or by raising): which worker
          ran it, its input index, and its wall time in seconds. *)
  | Worker_exit of { worker : int; busy_s : float; tasks : int }
      (** A worker drained the queue: total seconds spent inside tasks
          and how many it ran. Emitted for the sequential path too (as
          worker 0), but only when it ran at least one task. *)

val set_observer : (event -> unit) option -> unit
(** Install (or clear) the process-global pool telemetry hook. The
    observer runs on the worker domain that produced the event, so it
    must be domain-safe; the observability layer installs one that feeds
    the [pool.*] metrics. [map] reads the hook once at entry — installing
    it mid-sweep affects subsequent maps only. When no observer is
    installed the pool takes no timestamps at all. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [List.map f xs] computed on up to [jobs] worker domains.
    Results are in input order. Runs sequentially (no domains spawned)
    when the effective [jobs] is 1, the list has at most one element, or
    the caller is itself a pool worker. If any [f x] raises, every item is
    still attempted and {!Map_errors} is raised in the caller with the
    complete failure list — identical on the sequential and pooled paths.
    [f] must be safe to call from multiple domains at once. *)
