(* Resident work-stealing domain pool.

   Worker domains are spawned once per process (lazily, at the first
   parallel batch) and live until exit; the per-call [Domain.spawn] of
   the original [Parallel.map] is gone from the hot path.  Each worker
   owns an SPMC deque: the owner pushes and pops at the back (LIFO — the
   freshest task is cache-warm, and nested children run before their
   siblings' parents), thieves take from the front (FIFO — they get the
   oldest, coarsest task, which is the one most worth moving to another
   core).  There is deliberately no central run queue and no shared task
   cursor: the classic scaling bottleneck of a mutex/counter-protected
   central task list is exactly what this module replaces.  Each deque
   has its own tiny mutex; thieves use [try_lock], so a busy victim is a
   reason to scan on, never a convoy to queue behind.

   Nested parallelism is help-first: a task that opens a parallel batch
   from inside a worker pushes the children onto its own deque and then
   works — popping its own children, stealing others' tasks — until the
   batch drains.  Nothing ever blocks a worker on a condition variable
   while tasks are runnable, and no nested batch spawns a domain, so the
   live domain count is bounded by the pool size at any nesting depth.

   Sleep/wake: a worker that finds nothing to run anywhere goes to sleep
   on the pool condition variable.  Submissions bump an epoch counter
   before checking for sleepers; sleepers register themselves before
   re-checking the epoch under the pool lock — the classic
   ticket/re-check pairing that closes the lost-wakeup race without
   taking the pool lock on the (common) no-sleeper submission path. *)

(* ---- pool sizing ----------------------------------------------------- *)

let available () = max 1 (Domain.recommended_domain_count () - 1)

(* 0 = unset: resolve from TSMS_JOBS, then the machine. *)
let configured = Atomic.make 0

let set_jobs n =
  if n < 1 then invalid_arg "Parallel.set_jobs: jobs must be >= 1";
  Atomic.set configured n

let env_jobs () =
  match Sys.getenv_opt "TSMS_JOBS" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ ->
          invalid_arg
            (Printf.sprintf "TSMS_JOBS must be a positive integer, got %S" s))

let get_jobs () =
  match Atomic.get configured with
  | 0 -> ( match env_jobs () with Some n -> n | None -> available ())
  | n -> n

(* Hard bound on resident workers; [ensure] clamps to it. Well below the
   OCaml runtime's domain limit, far above any sane --jobs. *)
let cap = 64

(* ---- telemetry ------------------------------------------------------- *)

(* [ts_base] sits below the metrics registry in the library graph, so the
   pool reports raw events through an injectable observer and the
   observability layer (which every binary links) feeds them into the
   [pool.*] metrics.  When no observer is installed the pool takes no
   timestamps at all. *)
type event =
  | Task_done of { worker : int; index : int; wall_s : float }
  | Worker_exit of { worker : int; busy_s : float; tasks : int }
  | Steal of { thief : int; victim : int }
  | Idle of { worker : int; wait_s : float }

let observer : (event -> unit) option Atomic.t = Atomic.make None
let set_observer f = Atomic.set observer f
let get_observer () = Atomic.get observer

(* ---- SPMC deque ------------------------------------------------------ *)

type task = unit -> unit

module Deque = struct
  (* Circular buffer under a per-deque mutex.  [head] is the steal end
     (oldest task), [head + len - 1] the owner end (newest).  The mutex
     is held for a handful of loads/stores — contention is per-victim,
     not process-global. *)
  type t = {
    mutable buf : task array;
    mutable head : int;
    mutable len : int;
    lock : Mutex.t;
  }

  let nop () = ()

  let create () =
    { buf = Array.make 32 nop; head = 0; len = 0; lock = Mutex.create () }

  let grow d =
    let old = Array.length d.buf in
    let buf = Array.make (2 * old) nop in
    for i = 0 to d.len - 1 do
      buf.(i) <- d.buf.((d.head + i) mod old)
    done;
    d.buf <- buf;
    d.head <- 0

  let push d t =
    Mutex.lock d.lock;
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- t;
    d.len <- d.len + 1;
    Mutex.unlock d.lock

  (* Owner end: newest first (LIFO). *)
  let pop d =
    Mutex.lock d.lock;
    let r =
      if d.len = 0 then None
      else begin
        d.len <- d.len - 1;
        let i = (d.head + d.len) mod Array.length d.buf in
        let t = d.buf.(i) in
        d.buf.(i) <- nop;
        Some t
      end
    in
    Mutex.unlock d.lock;
    r

  (* Thief end: oldest first (FIFO).  Non-blocking: a locked victim is
     skipped, the thief scans on. *)
  let steal d =
    if d.len = 0 || not (Mutex.try_lock d.lock) then None
    else begin
      let r =
        if d.len = 0 then None
        else begin
          let t = d.buf.(d.head) in
          d.buf.(d.head) <- nop;
          d.head <- (d.head + 1) mod Array.length d.buf;
          d.len <- d.len - 1;
          Some t
        end
      in
      Mutex.unlock d.lock;
      r
    end
end

(* ---- the pool -------------------------------------------------------- *)

type t = {
  deques : Deque.t array;  (* cap + 1 slots; index 0 (the caller) unused *)
  size : int Atomic.t;  (* spawned workers, ids 1..size; grow-only *)
  lock : Mutex.t;  (* guards growth, [doms] and the sleep condition *)
  wake : Condition.t;
  sleepers : int Atomic.t;
  epoch : int Atomic.t;  (* bumped on every submission *)
  stop : bool Atomic.t;
  rr : int Atomic.t;  (* round-robin injection cursor *)
  mutable doms : unit Domain.t list;
}

(* 0 = not a pool worker (the caller's domain). *)
let wid_key = Domain.DLS.new_key (fun () -> 0)
let worker_id () = Domain.DLS.get wid_key
let in_worker () = worker_id () > 0

(* Own deque first (LIFO), then steal round the other workers starting
   just past ourselves (FIFO victims, deterministic scan order — the
   randomness that load-balances is the timing itself). *)
let find_task p w =
  match Deque.pop p.deques.(w) with
  | Some _ as t -> t
  | None ->
      let sz = Atomic.get p.size in
      let rec scan k =
        if k >= sz then None
        else
          let v = (((w - 1) + k) mod sz) + 1 in
          match Deque.steal p.deques.(v) with
          | Some _ as t ->
              (match Atomic.get observer with
              | Some f -> f (Steal { thief = w; victim = v })
              | None -> ());
              t
          | None -> scan (k + 1)
      in
      scan 1

(* Tasks are wrapped by their submitters and do not raise; the catch-all
   is a backstop so a bug in a wrapper can never kill a resident worker. *)
let run_task t = try t () with _ -> ()

let rec worker_loop p w =
  if not (Atomic.get p.stop) then begin
    (match find_task p w with
    | Some t -> run_task t
    | None -> (
        (* Read the epoch, look once more (a submission may have landed
           between the failed scan and the epoch read), then sleep until
           the epoch moves. *)
        let e = Atomic.get p.epoch in
        match find_task p w with
        | Some t -> run_task t
        | None ->
            let obs = Atomic.get observer in
            let t0 =
              match obs with Some _ -> Unix.gettimeofday () | None -> 0.0
            in
            Mutex.lock p.lock;
            Atomic.incr p.sleepers;
            while Atomic.get p.epoch = e && not (Atomic.get p.stop) do
              Condition.wait p.wake p.lock
            done;
            Atomic.decr p.sleepers;
            Mutex.unlock p.lock;
            (match obs with
            | Some f -> f (Idle { worker = w; wait_s = Unix.gettimeofday () -. t0 })
            | None -> ())));
    worker_loop p w
  end

let spawn_locked p w =
  let d =
    Domain.spawn (fun () ->
        Domain.DLS.set wid_key w;
        worker_loop p w)
  in
  p.doms <- d :: p.doms

let ensure p n =
  let n = min n cap in
  if Atomic.get p.size < n then begin
    Mutex.lock p.lock;
    while Atomic.get p.size < n && not (Atomic.get p.stop) do
      let w = Atomic.get p.size + 1 in
      spawn_locked p w;
      Atomic.set p.size w
    done;
    Mutex.unlock p.lock
  end

let create () =
  {
    deques = Array.init (cap + 1) (fun _ -> Deque.create ());
    size = Atomic.make 0;
    lock = Mutex.create ();
    wake = Condition.create ();
    sleepers = Atomic.make 0;
    epoch = Atomic.make 0;
    stop = Atomic.make false;
    rr = Atomic.make 0;
    doms = [];
  }

let shutdown p =
  Atomic.set p.stop true;
  Mutex.lock p.lock;
  Condition.broadcast p.wake;
  let doms = p.doms in
  p.doms <- [];
  Mutex.unlock p.lock;
  List.iter Domain.join doms

let the_pool : t option Atomic.t = Atomic.make None
let init_lock = Mutex.create ()

let get () =
  match Atomic.get the_pool with
  | Some p -> p
  | None ->
      Mutex.lock init_lock;
      let p =
        match Atomic.get the_pool with
        | Some p -> p
        | None ->
            let p = create () in
            Atomic.set the_pool (Some p);
            (* Workers never outlive the process: wake and join them so
               exit cannot race a domain mid-GC. *)
            at_exit (fun () -> shutdown p);
            p
      in
      Mutex.unlock init_lock;
      p

let size_now () =
  match Atomic.get the_pool with Some p -> Atomic.get p.size | None -> 0

(* Tests that measure pool growth need a clean slate; the at_exit hook
   registered for the old pool becomes a no-op second shutdown. *)
let shutdown_for_tests () =
  match Atomic.get the_pool with
  | None -> ()
  | Some p ->
      Atomic.set the_pool None;
      shutdown p

(* ---- submission ------------------------------------------------------ *)

let wake_sleepers p =
  if Atomic.get p.sleepers > 0 then begin
    Mutex.lock p.lock;
    Condition.broadcast p.wake;
    Mutex.unlock p.lock
  end

(* From outside the pool: round-robin over the worker deques — initial
   balance without a central queue; stealing corrects the rest. *)
let inject p t =
  let sz = max 1 (Atomic.get p.size) in
  let k = (Atomic.fetch_and_add p.rr 1 mod sz) + 1 in
  Deque.push p.deques.(k) t;
  Atomic.incr p.epoch;
  wake_sleepers p

(* From a worker: own deque (LIFO — help-first nesting). *)
let push_self p w t =
  Deque.push p.deques.(w) t;
  Atomic.incr p.epoch;
  wake_sleepers p

let submit_task p t =
  let w = worker_id () in
  if w > 0 then push_self p w t else inject p t

(* Spin briefly, then sleep in sub-millisecond slices: on a machine with
   fewer cores than domains (CI runners, the 1-CPU container) a helper
   that busy-waits would starve the very worker it is waiting on. *)
let idle_backoff misses =
  if misses < 64 then Domain.cpu_relax () else Unix.sleepf 0.0002

(* ---- futures --------------------------------------------------------- *)

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = { st : 'a state Atomic.t; m : Mutex.t; c : Condition.t }

let fulfilled fut =
  match Atomic.get fut.st with Pending -> false | Done _ | Failed _ -> true

let submit f =
  let p = get () in
  ensure p (max 1 (min (get_jobs ()) cap));
  let fut =
    { st = Atomic.make Pending; m = Mutex.create (); c = Condition.create () }
  in
  submit_task p (fun () ->
      let r = match f () with v -> Done v | exception e -> Failed e in
      Atomic.set fut.st r;
      Mutex.lock fut.m;
      Condition.broadcast fut.c;
      Mutex.unlock fut.m);
  fut

let await fut =
  let p = get () in
  let w = worker_id () in
  let rec go misses =
    match Atomic.get fut.st with
    | Done v -> v
    | Failed e -> raise e
    | Pending ->
        if w > 0 then (
          (* Help-first: run whatever is runnable while we wait. *)
          match find_task p w with
          | Some t ->
              run_task t;
              go 0
          | None ->
              idle_backoff misses;
              go (misses + 1))
        else begin
          Mutex.lock fut.m;
          while not (fulfilled fut) do
            Condition.wait fut.c fut.m
          done;
          Mutex.unlock fut.m;
          go 0
        end
  in
  go 0

(* ---- indexed batches (the Parallel.map engine) ----------------------- *)

(* Runs [body 0 .. body (n-1)] and returns when all are done.  [body]
   must not raise (Parallel.map captures failures itself).

   [jobs <= 1] or [n = 1] runs inline on the calling domain — the strict
   sequential path the golden equivalence suite compares against.
   Otherwise the batch rides the pool: a caller that is itself a pool
   worker pushes the children onto its own deque and helps until the
   batch drains (no new domains at any nesting depth); an outside caller
   injects round-robin and blocks on the batch condition.

   Telemetry (only when an observer is installed): one [Task_done] per
   item on the domain that ran it, then — from the joining caller — one
   [Worker_exit] per pool slot *including workers that ran zero tasks*,
   so utilization and idle-fraction metrics see the idle workers too.
   Per-task wall time includes any nested batch the task helped with
   while it waited. *)
let run_batch ~jobs ~n body =
  if n > 0 then begin
    let obs = get_observer () in
    if jobs <= 1 || n = 1 then begin
      let w = worker_id () in
      match obs with
      | None ->
          for i = 0 to n - 1 do
            body i
          done
      | Some f ->
          let busy = ref 0.0 in
          for i = 0 to n - 1 do
            let t0 = Unix.gettimeofday () in
            body i;
            let dt = Unix.gettimeofday () -. t0 in
            busy := !busy +. dt;
            f (Task_done { worker = w; index = i; wall_s = dt })
          done;
          f (Worker_exit { worker = w; busy_s = !busy; tasks = n })
    end
    else begin
      let p = get () in
      ensure p (min jobs cap);
      let remaining = Atomic.make n in
      let bm = Mutex.create () and bc = Condition.create () in
      (* Per-slot accounting: each index is written only by the domain
         that owns that worker id, and read after the join. *)
      let busy = Array.make (cap + 1) 0.0 in
      let ran = Array.make (cap + 1) 0 in
      let task i () =
        let w = worker_id () in
        (match obs with
        | None -> body i
        | Some f ->
            let t0 = Unix.gettimeofday () in
            body i;
            let dt = Unix.gettimeofday () -. t0 in
            busy.(w) <- busy.(w) +. dt;
            f (Task_done { worker = w; index = i; wall_s = dt }));
        ran.(w) <- ran.(w) + 1;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock bm;
          Condition.broadcast bc;
          Mutex.unlock bm
        end
      in
      let w0 = worker_id () in
      if w0 > 0 then begin
        for i = n - 1 downto 0 do
          push_self p w0 (task i)
        done;
        let rec help misses =
          if Atomic.get remaining > 0 then
            match find_task p w0 with
            | Some t ->
                run_task t;
                help 0
            | None ->
                idle_backoff misses;
                help (misses + 1)
        in
        help 0
      end
      else begin
        for i = 0 to n - 1 do
          inject p (task i)
        done;
        Mutex.lock bm;
        while Atomic.get remaining > 0 do
          Condition.wait bc bm
        done;
        Mutex.unlock bm
      end;
      match obs with
      | None -> ()
      | Some f ->
          let sz = Atomic.get p.size in
          for w = 0 to sz do
            f (Worker_exit { worker = w; busy_s = busy.(w); tasks = ran.(w) })
          done
    end
  end
