let available () = max 1 (Domain.recommended_domain_count () - 1)

(* 0 = unset: resolve from TSMS_JOBS, then the machine. *)
let configured = Atomic.make 0

let set_jobs n =
  if n < 1 then invalid_arg "Parallel.set_jobs: jobs must be >= 1";
  Atomic.set configured n

let env_jobs () =
  match Sys.getenv_opt "TSMS_JOBS" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ ->
          invalid_arg
            (Printf.sprintf "TSMS_JOBS must be a positive integer, got %S" s))

let get_jobs () =
  match Atomic.get configured with
  | 0 -> ( match env_jobs () with Some n -> n | None -> available ())
  | n -> n

(* Workers flag themselves so a parallel map reached from inside another
   parallel map degrades to List.map instead of spawning domains
   quadratically (OCaml caps live domains well below that). *)
let inside_worker = Domain.DLS.new_key (fun () -> false)

exception Map_errors of (int * exn) list

(* Pool telemetry hook. [ts_base] sits below the metrics registry in the
   library graph, so the pool reports raw events through an injectable
   observer and the observability layer (which every binary links) feeds
   them into histograms. The hook is process-global and read once per
   [map] call, so installing it mid-sweep affects the next map, not the
   running one. *)
type event =
  | Task_done of { worker : int; index : int; wall_s : float }
  | Worker_exit of { worker : int; busy_s : float; tasks : int }

let observer : (event -> unit) option Atomic.t = Atomic.make None
let set_observer f = Atomic.set observer f

let () =
  Printexc.register_printer (function
    | Map_errors fs ->
        Some
          (Printf.sprintf "Parallel.map: %d task(s) failed: %s"
             (List.length fs)
             (String.concat "; "
                (List.map
                   (fun (i, e) ->
                     Printf.sprintf "[%d] %s" i (Printexc.to_string e))
                   fs)))
    | _ -> None)

(* Every item always runs, whatever happens to its siblings: failures are
   collected per index and raised together at the join, so one bad task
   neither hides the other failures nor discards the results in flight
   (a supervising caller can see exactly which inputs failed). *)
let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> get_jobs () in
  let n = List.length xs in
  let input = Array.of_list xs in
  let out = Array.make n None in
  let errs = Array.make n None in
  let run i = try out.(i) <- Some (f input.(i)) with e -> errs.(i) <- Some e in
  let obs = Atomic.get observer in
  (* [timed w i] still stores the result/error via [run]; the observer
     sees the wall time of the attempt whether it succeeded or raised. *)
  let timed w i =
    match obs with
    | None ->
        run i;
        0.0
    | Some notify ->
        let t0 = Unix.gettimeofday () in
        run i;
        let dt = Unix.gettimeofday () -. t0 in
        notify (Task_done { worker = w; index = i; wall_s = dt });
        dt
  in
  let worker_exit w busy tasks =
    match obs with
    | Some notify when tasks > 0 ->
        notify (Worker_exit { worker = w; busy_s = busy; tasks })
    | _ -> ()
  in
  if jobs <= 1 || n <= 1 || Domain.DLS.get inside_worker then begin
    let busy = ref 0.0 in
    for i = 0 to n - 1 do
      busy := !busy +. timed 0 i
    done;
    worker_exit 0 !busy n
  end
  else begin
    let next = Atomic.make 0 in
    let worker w () =
      Domain.DLS.set inside_worker true;
      let busy = ref 0.0 in
      let tasks = ref 0 in
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          busy := !busy +. timed w i;
          incr tasks;
          go ()
        end
      in
      go ();
      worker_exit w !busy !tasks
    in
    let domains = List.init (min jobs n) (fun w -> Domain.spawn (worker w)) in
    List.iter Domain.join domains
  end;
  let failures = ref [] in
  for i = n - 1 downto 0 do
    match errs.(i) with Some e -> failures := (i, e) :: !failures | None -> ()
  done;
  if !failures <> [] then raise (Map_errors !failures);
  Array.to_list (Array.map (function Some v -> v | None -> assert false) out)
