(* [Parallel.map] over the resident work-stealing pool ([Pool]).

   The map itself only captures results and failures; scheduling, worker
   lifetime, nesting and telemetry live in [Pool.run_batch]. Nested maps
   parallelize too — a map reached from inside a pool worker enqueues its
   items on the worker's own deque and helps drain them, instead of the
   old degradation to [List.map]. *)

(* Sizing knobs live with the pool; re-exported here so existing callers
   (CLI, bench, tests) keep their [Parallel.set_jobs] spelling. *)
let available = Pool.available
let set_jobs = Pool.set_jobs
let env_jobs = Pool.env_jobs
let get_jobs = Pool.get_jobs

type event = Pool.event =
  | Task_done of { worker : int; index : int; wall_s : float }
  | Worker_exit of { worker : int; busy_s : float; tasks : int }
  | Steal of { thief : int; victim : int }
  | Idle of { worker : int; wait_s : float }

let set_observer = Pool.set_observer
let get_observer = Pool.get_observer

exception Map_errors of (int * exn) list

let () =
  Printexc.register_printer (function
    | Map_errors fs ->
        Some
          (Printf.sprintf "Parallel.map: %d task(s) failed: %s"
             (List.length fs)
             (String.concat "; "
                (List.map
                   (fun (i, e) ->
                     Printf.sprintf "[%d] %s" i (Printexc.to_string e))
                   fs)))
    | _ -> None)

(* Every item always runs, whatever happens to its siblings: failures are
   collected per index and raised together at the join, so one bad task
   neither hides the other failures nor discards the results in flight
   (a supervising caller can see exactly which inputs failed). *)
let map ?jobs f xs =
  match xs with
  | [] -> []
  | _ :: _ ->
      let jobs = match jobs with Some j -> max 1 j | None -> get_jobs () in
      let input = Array.of_list xs in
      let n = Array.length input in
      (* The result array is sized once from the first value produced
         (whichever task that is) — no per-item [option] box. The single
         CAS publishes it; losers write into the winner's array. *)
      let out : 'b array option Atomic.t = Atomic.make None in
      let store i v =
        match Atomic.get out with
        | Some a -> a.(i) <- v
        | None ->
            let fresh = Array.make n v in
            if Atomic.compare_and_set out None (Some fresh) then ()
            else
              (match Atomic.get out with
              | Some a -> a.(i) <- v
              | None -> assert false)
      in
      let errs : exn option array = Array.make n None in
      let body i =
        match f input.(i) with
        | v -> store i v
        | exception e -> errs.(i) <- Some e
      in
      Pool.run_batch ~jobs ~n body;
      let failures = ref [] in
      for i = n - 1 downto 0 do
        match errs.(i) with
        | Some e -> failures := (i, e) :: !failures
        | None -> ()
      done;
      if !failures <> [] then raise (Map_errors !failures);
      (match Atomic.get out with
      | Some a -> Array.to_list a
      | None -> assert false)
