(** Data dependence graphs for innermost loops.

    A DDG describes one loop body: nodes are instructions, edges are flow
    dependences annotated with an iteration {e distance} (0 = within the
    same iteration) and, for memory dependences, the profiled probability
    that the dependence actually occurs at run time (Section 4.2 of the
    paper). Register dependences always hold, so their probability is 1.

    Only flow (true) dependences are represented, matching the paper: its
    Definition 4 restricts both [RegDep] and [MemDep] to flow dependences,
    and anti/output register dependences are eliminated by the renaming
    post-pass of Section 3. *)

type dep_kind = Reg | Mem

type node = {
  id : int;  (** dense index, [0 .. n_nodes - 1] *)
  name : string;  (** label for printing, e.g. ["n0"] *)
  op : Ts_isa.Opcode.t;
  latency : int;  (** result latency; defaults to the machine's *)
}

type edge = {
  src : int;
  dst : int;
  kind : dep_kind;
  distance : int;  (** iteration distance, [>= 0] *)
  prob : float;  (** dependence probability; [1.0] for register deps *)
}

type t = private {
  name : string;
  machine : Ts_isa.Machine.t;
  nodes : node array;
  edges : edge array;
  succs : edge list array;  (** outgoing edges per node *)
  preds : edge list array;  (** incoming edges per node *)
  reg_arr : edge array;  (** register edges, in [edges] order *)
  mem_arr : edge array;  (** memory edges, in [edges] order *)
  inc_reg : int array array;
      (** per node, indices into [reg_arr] of the register edges whose
          source or sink is the node (self edges listed once) *)
  inc_mem : int array array;  (** same, into [mem_arr] *)
}

val n_nodes : t -> int
val node : t -> int -> node
val latency : t -> int -> int
(** Latency of node [i]. *)

val reg_edge_array : t -> edge array
(** All register dependence edges in [edges]-array order. Built once at
    graph construction; callers must not mutate it. *)

val mem_edge_array : t -> edge array
(** All memory dependence edges in [edges]-array order (do not mutate). *)

val incident_reg : t -> int -> int array
(** Indices into {!reg_edge_array} of the register edges incident to a
    node (as source or sink; self edges once). Do not mutate. *)

val incident_mem : t -> int -> int array
(** Same for memory edges, indexing {!mem_edge_array}. *)

val mem_edges : t -> edge list
(** All memory dependence edges. *)

val reg_edges : t -> edge list
(** All register dependence edges. *)

val n_mem_ops : t -> int
(** Number of load/store nodes. *)

(** Incremental construction with validation at [build] time. *)
module Builder : sig
  type b

  val create : ?name:string -> Ts_isa.Machine.t -> b

  val add : b -> ?name:string -> ?latency:int -> Ts_isa.Opcode.t -> int
  (** Append an instruction; returns its node id. [latency] overrides the
      machine's default (used to replicate the paper's Figure 1 numbers). *)

  val dep : b -> ?dist:int -> ?prob:float -> int -> int -> unit
  (** [dep b x y] adds a register flow dependence [x -> y]. Default
      [dist = 0]. [prob] must be 1.0 (the default) for register deps. *)

  val mem_dep : b -> ?dist:int -> ?prob:float -> int -> int -> unit
  (** [mem_dep b x y] adds a memory flow dependence from store [x] to load
      [y]. Default [dist = 1], [prob = 1.0]. *)

  val build : b -> t
  (** Validate and freeze. Raises [Invalid_argument] on: dangling node ids,
      negative distances, probabilities outside (0, 1], register
      dependences sourced at a store or a branch, memory dependences not of
      the store-to-load form, or a zero-distance self dependence. *)
end

val validate : t -> unit
(** Re-run the [Builder.build] checks (useful after parsing). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump. *)
