type dep_kind = Reg | Mem

type node = { id : int; name : string; op : Ts_isa.Opcode.t; latency : int }

type edge = { src : int; dst : int; kind : dep_kind; distance : int; prob : float }

type t = {
  name : string;
  machine : Ts_isa.Machine.t;
  nodes : node array;
  edges : edge array;
  succs : edge list array;
  preds : edge list array;
  reg_arr : edge array;
  mem_arr : edge array;
  inc_reg : int array array;
  inc_mem : int array array;
}

let n_nodes t = Array.length t.nodes
let node t i = t.nodes.(i)
let latency t i = t.nodes.(i).latency

let reg_edge_array t = t.reg_arr
let mem_edge_array t = t.mem_arr
let incident_reg t v = t.inc_reg.(v)
let incident_mem t v = t.inc_mem.(v)

let mem_edges t = Array.to_list t.mem_arr
let reg_edges t = Array.to_list t.reg_arr

let n_mem_ops t =
  Array.fold_left
    (fun acc n -> if Ts_isa.Opcode.is_mem n.op then acc + 1 else acc)
    0 t.nodes

let check_edges name nodes edges =
  let n = Array.length nodes in
  let fail fmt = Printf.ksprintf invalid_arg ("Ddg %s: " ^^ fmt) name in
  Array.iter
    (fun e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        fail "edge %d -> %d references a missing node" e.src e.dst;
      if e.distance < 0 then fail "edge %d -> %d has negative distance" e.src e.dst;
      if not (e.prob > 0.0 && e.prob <= 1.0) then
        fail "edge %d -> %d has probability %g outside (0, 1]" e.src e.dst e.prob;
      if e.src = e.dst && e.distance = 0 then
        fail "node %d depends on itself within an iteration" e.src;
      match e.kind with
      | Reg ->
          if e.prob <> 1.0 then
            fail "register dependence %d -> %d must have probability 1" e.src e.dst;
          let op = nodes.(e.src).op in
          if op = Ts_isa.Opcode.Store || op = Ts_isa.Opcode.Branch then
            fail "register dependence sourced at %s node %d (produces no value)"
              (Ts_isa.Opcode.to_string op) e.src
      | Mem ->
          if nodes.(e.src).op <> Ts_isa.Opcode.Store then
            fail "memory dependence %d -> %d must be sourced at a store" e.src e.dst;
          if nodes.(e.dst).op <> Ts_isa.Opcode.Load then
            fail "memory dependence %d -> %d must sink at a load" e.src e.dst)
    edges

(* Edges of one kind, in [edges]-array order, plus for every node the
   indices (into that partition) of the edges touching it. Self edges
   appear once in their node's index list. *)
let partition_by_kind nodes edges kind =
  let part =
    Array.of_list (List.filter (fun e -> e.kind = kind) (Array.to_list edges))
  in
  let n = Array.length nodes in
  let inc = Array.make n [] in
  Array.iteri
    (fun i e ->
      inc.(e.src) <- i :: inc.(e.src);
      if e.dst <> e.src then inc.(e.dst) <- i :: inc.(e.dst))
    part;
  (part, Array.map (fun l -> Array.of_list (List.rev l)) inc)

let make ~name ~machine ~nodes ~edges =
  check_edges name nodes edges;
  let n = Array.length nodes in
  let succs = Array.make n [] and preds = Array.make n [] in
  (* Build adjacency in edge order (stable, deterministic). *)
  Array.iter
    (fun e ->
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    edges;
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  let reg_arr, inc_reg = partition_by_kind nodes edges Reg in
  let mem_arr, inc_mem = partition_by_kind nodes edges Mem in
  { name; machine; nodes; edges; succs; preds; reg_arr; mem_arr; inc_reg; inc_mem }

let validate t = check_edges t.name t.nodes t.edges

module Builder = struct
  type b = {
    bname : string;
    bmachine : Ts_isa.Machine.t;
    mutable bnodes : node list; (* reversed *)
    mutable bedges : edge list; (* reversed *)
    mutable count : int;
  }

  let create ?(name = "loop") machine =
    { bname = name; bmachine = machine; bnodes = []; bedges = []; count = 0 }

  let add b ?name ?latency op =
    let id = b.count in
    let name = match name with Some s -> s | None -> Printf.sprintf "n%d" id in
    let latency =
      match latency with Some l -> l | None -> Ts_isa.Machine.latency b.bmachine op
    in
    b.bnodes <- { id; name; op; latency } :: b.bnodes;
    b.count <- id + 1;
    id

  let dep b ?(dist = 0) ?(prob = 1.0) src dst =
    b.bedges <- { src; dst; kind = Reg; distance = dist; prob } :: b.bedges

  let mem_dep b ?(dist = 1) ?(prob = 1.0) src dst =
    b.bedges <- { src; dst; kind = Mem; distance = dist; prob } :: b.bedges

  let build b =
    make ~name:b.bname ~machine:b.bmachine
      ~nodes:(Array.of_list (List.rev b.bnodes))
      ~edges:(Array.of_list (List.rev b.bedges))
end

let pp ppf t =
  Format.fprintf ppf "loop %s (machine %s, %d nodes, %d edges)@." t.name
    t.machine.Ts_isa.Machine.name (n_nodes t) (Array.length t.edges);
  Array.iter
    (fun (nd : node) ->
      Format.fprintf ppf "  %s: %a (lat %d)@." nd.name Ts_isa.Opcode.pp nd.op
        nd.latency)
    t.nodes;
  Array.iter
    (fun e ->
      Format.fprintf ppf "  %s -> %s [%s, d=%d%s]@." t.nodes.(e.src).name
        t.nodes.(e.dst).name
        (match e.kind with Reg -> "reg" | Mem -> "mem")
        e.distance
        (if e.prob < 1.0 then Printf.sprintf ", p=%g" e.prob else ""))
    t.edges
