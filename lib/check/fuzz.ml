module K = Ts_modsched.Kernel
module Inv = Ts_check.Invariant
module R = Ts_check.Ref_models
module Rng = Ts_base.Rng

type point = { ncore : int; c_reg_com : int }

type config = {
  seeds : int;
  trip : int;
  warmup : int;
  tol_rel : float;
  tol_abs : float;
  points : point list;
  unit_rounds : int;
  shrink_budget : int;
}

let default_config =
  {
    seeds = 200;
    trip = 96;
    warmup = 16;
    (* Calibrated over ~1800 (seed, point, scheduler) runs; see
       EXPERIMENTS.md ("The tolerance band"). Observed ratios against the
       uniform-memory simulation: [0.32, 1.89], median 1.00. *)
    tol_rel = 4.0;
    tol_abs = 100.0;
    points =
      [
        (* ncore = 1 is the degenerate single-core machine: T_lb/ncore
           dominates F and the ring has one stop — historically a class
           of wedge bugs on its own. *)
        { ncore = 1; c_reg_com = 3 };
        { ncore = 2; c_reg_com = 1 };
        { ncore = 4; c_reg_com = 3 };
        { ncore = 8; c_reg_com = 8 };
      ];
    unit_rounds = 40;
    shrink_budget = 150;
  }

type failure = {
  seed : int;
  subject : string;
  point : point option;
  reason : string;
  ddg : Ts_ddg.Ddg.t option;
}

let pp_point ppf p =
  Format.fprintf ppf "ncore=%d, c_reg_com=%d" p.ncore p.c_reg_com

let pp_failure ppf f =
  Format.fprintf ppf "@[<v>counterexample: subject=%s" f.subject;
  if f.seed >= 0 then Format.fprintf ppf ", seed=%d" f.seed;
  (match f.point with
  | Some p -> Format.fprintf ppf ", %a" pp_point p
  | None -> ());
  Format.fprintf ppf "@,%s" f.reason;
  (match f.ddg with
  | Some g ->
      Format.fprintf ppf "@,--- shrunken loop (%s.ddg) ---@,%s"
        g.Ts_ddg.Ddg.name
        (Ts_ddg.Parse.to_string g)
  | None -> ());
  Format.fprintf ppf "@]"

(* --- phase 0: unit-level differential streams --- *)

let check_mdt_model ~rounds =
  let result = ref None in
  let round = ref 0 in
  while !result = None && !round < rounds do
    let rng = Rng.of_string (Printf.sprintf "tsms-check/mdt/%d" !round) in
    let horizon = 1 + Rng.int rng 6 in
    let real = Ts_spmt.Mdt.create ~horizon in
    let refm = R.Mdt.create ~horizon in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          result :=
            Some (Printf.sprintf "mdt round %d (horizon %d): %s" !round horizon s))
        fmt
    in
    let thread = ref horizon in
    let clock = ref 0 in
    let step = ref 0 in
    while !result = None && !step < 200 do
      incr step;
      clock := !clock + 1 + Rng.int rng 4;
      let addr = 8 * Rng.int rng 6 in
      (match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
          let finish = !clock + Rng.int rng 40 in
          Ts_spmt.Mdt.record_store real ~thread:!thread ~addr ~finish;
          R.Mdt.record_store refm ~thread:!thread ~addr ~finish
      | 4 | 5 | 6 ->
          let issue = !clock - Rng.int rng 60 in
          let got =
            Ts_spmt.Mdt.conflicting_store real ~thread:!thread ~addr ~issue
          in
          let expect = R.Mdt.conflicting_store refm ~thread:!thread ~addr ~issue in
          if got <> expect then
            fail
              "conflicting_store (thread %d, addr %d, issue %d) = %s, reference \
               says %s"
              !thread addr issue
              (match got with None -> "none" | Some f -> string_of_int f)
              (match expect with None -> "none" | Some f -> string_of_int f)
      | 7 ->
          let upto = !thread - horizon + Rng.int_in rng (-3) 3 in
          Ts_spmt.Mdt.retire real ~upto;
          R.Mdt.retire refm ~upto
      | _ -> thread := !thread + 1 + Rng.int rng 2);
      if !result = None then begin
        if Ts_spmt.Mdt.live_entries real <> R.Mdt.live_entries refm then
          fail "live entries %d, reference says %d"
            (Ts_spmt.Mdt.live_entries real)
            (R.Mdt.live_entries refm)
        else if Ts_spmt.Mdt.peak_entries real <> R.Mdt.peak_entries refm then
          fail "peak entries %d, reference says %d"
            (Ts_spmt.Mdt.peak_entries real)
            (R.Mdt.peak_entries refm)
      end
    done;
    incr round
  done;
  !result

let cache_geometries = [| (256, 2, 32); (1024, 4, 32); (128, 1, 32); (512, 2, 64) |]

let check_cache_model ~rounds =
  let result = ref None in
  let round = ref 0 in
  while !result = None && !round < rounds do
    let rng = Rng.of_string (Printf.sprintf "tsms-check/cache/%d" !round) in
    let size, assoc, line = Rng.pick rng cache_geometries in
    let real = Ts_spmt.Cache.create ~size ~assoc ~line in
    let refm = R.Cache.create ~size ~assoc ~line in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          result :=
            Some
              (Printf.sprintf "cache round %d (%dB %d-way, %dB lines): %s" !round
                 size assoc line s))
        fmt
    in
    let step = ref 0 in
    while !result = None && !step < 300 do
      incr step;
      (* a pool of 3x-capacity blocks, so sets keep conflicting *)
      let addr = (line * Rng.int rng (3 * size / line)) + Rng.int rng line in
      (match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 ->
          let got = Ts_spmt.Cache.access real addr in
          let expect = R.Cache.access refm addr in
          if got <> expect then
            fail "access %d = %b, reference says %b" addr got expect
      | 5 | 6 ->
          let got = Ts_spmt.Cache.probe real addr in
          let expect = R.Cache.probe refm addr in
          if got <> expect then
            fail "probe %d = %b, reference says %b" addr got expect
      | 7 ->
          Ts_spmt.Cache.fill real addr;
          R.Cache.fill refm addr
      | 8 ->
          Ts_spmt.Cache.invalidate real addr;
          R.Cache.invalidate refm addr
      | _ ->
          if Rng.bool rng 0.25 then begin
            Ts_spmt.Cache.reset_stats real;
            R.Cache.reset_stats refm
          end);
      if !result = None && Ts_spmt.Cache.stats real <> R.Cache.stats refm then begin
        let h, m = Ts_spmt.Cache.stats real and h', m' = R.Cache.stats refm in
        fail "stats (%d, %d), reference says (%d, %d)" h m h' m'
      end
    done;
    incr round
  done;
  !result

let check_mrt_model ~rounds =
  let machines = [| Ts_isa.Machine.spmt_core; Ts_isa.Machine.toy |] in
  let opcodes = Array.of_list Ts_isa.Opcode.all in
  let result = ref None in
  let round = ref 0 in
  while !result = None && !round < rounds do
    let rng = Rng.of_string (Printf.sprintf "tsms-check/mrt/%d" !round) in
    let machine = Rng.pick rng machines in
    let ii = 1 + Rng.int rng 6 in
    let real = Ts_modsched.Mrt.create machine ~ii in
    let refm = R.Mrt.create machine ~ii in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          result :=
            Some
              (Printf.sprintf "mrt round %d (%s, ii=%d): %s" !round
                 machine.Ts_isa.Machine.name ii s))
        fmt
    in
    let reserved = ref [] in
    let step = ref 0 in
    while !result = None && !step < 120 do
      incr step;
      let op = Rng.pick rng opcodes in
      let cycle = Rng.int_in rng (-3) (3 * ii) in
      let got = Ts_modsched.Mrt.fits real op ~cycle in
      let expect = R.Mrt.fits refm op ~cycle in
      if got <> expect then
        fail "fits %s at cycle %d = %b, reference says %b"
          (Ts_isa.Opcode.to_string op) cycle got expect
      else begin
        if got && Rng.bool rng 0.7 then begin
          Ts_modsched.Mrt.reserve real op ~cycle;
          R.Mrt.reserve refm op ~cycle;
          reserved := (op, cycle) :: !reserved
        end;
        if !reserved <> [] && Rng.bool rng 0.25 then begin
          let i = Rng.int rng (List.length !reserved) in
          let o, c = List.nth !reserved i in
          reserved := List.filteri (fun j _ -> j <> i) !reserved;
          Ts_modsched.Mrt.release real o ~cycle:c;
          R.Mrt.release refm o ~cycle:c
        end
      end
    done;
    incr round
  done;
  !result

(* --- per-seed loop battery --- *)

let loop_for_seed seed =
  let rng = Rng.of_string (Printf.sprintf "tsms-check/loop/%d" seed) in
  let base = Ts_workload.Gen.default_profile in
  let lo = 0.005 +. Rng.float rng 0.05 in
  let profile =
    {
      base with
      Ts_workload.Gen.name = Printf.sprintf "fuzz%d" seed;
      n_inst = 8 + Rng.int rng 18;
      mem_frac = 0.2 +. Rng.float rng 0.25;
      self_loop_rate = Rng.float rng 0.3;
      n_extra_sccs = Rng.int rng 3;
      mem_dep_rate = Rng.float rng 1.2;
      mem_prob = (lo, lo +. Rng.float rng 0.25);
      mem_rec = Rng.bool rng 0.3;
    }
  in
  Ts_workload.Gen.generate rng profile

(* Self-test of [Kernel.of_times]'s dependence guard: perturb the valid
   schedule by pulling one node a single cycle below its tightest
   non-self in-edge bound. The perturbed array still fits resources (we
   verify that from first principles first), so a correct guard must
   reject it for the dependence violation — and because every in-edge is
   then violated by at most one cycle while every producer latency is at
   least one, a guard that forgets the latency term accepts it. *)
let dep_guard_selftest (k : K.t) =
  let g = k.g in
  let ii = k.ii in
  let n = Ts_ddg.Ddg.n_nodes g in
  let result = ref None in
  let dst = ref 0 in
  while !result = None && !dst < n do
    let preds = g.preds.(!dst) in
    let eligible =
      List.exists (fun (e : Ts_ddg.Ddg.edge) -> e.src <> e.dst) preds
      && List.for_all
           (fun (e : Ts_ddg.Ddg.edge) -> Ts_ddg.Ddg.latency g e.src >= 1)
           preds
    in
    if eligible then begin
      let bound =
        List.fold_left
          (fun acc (e : Ts_ddg.Ddg.edge) ->
            if e.src = e.dst then acc
            else
              max acc
                (k.time.(e.src) + Ts_ddg.Ddg.latency g e.src - (ii * e.distance)))
          min_int preds
      in
      let t' = Array.copy k.time in
      t'.(!dst) <- bound - 1;
      if Inv.resource_violations g ~ii t' = [] then
        match K.of_times g ~ii t' with
        | (_ : K.t) ->
            result :=
              Some
                (Printf.sprintf
                   "Kernel.of_times accepted a schedule of %s (ii=%d) that \
                    violates a dependence into node %s by one cycle"
                   g.Ts_ddg.Ddg.name ii (Ts_ddg.Ddg.node g !dst).name)
        | exception Invalid_argument _ -> ()
    end;
    incr dst
  done;
  !result

(* Probe the C1 admission boundary with the kernel's own slots: rebuild
   the partial schedule with every node but the max-sync consumer placed,
   then the consumer's own slot must be admitted at [C_delay = max sync]
   and rejected at [max sync - 1] (P_max = 1 neutralises C2; the
   resources are the kernel's own, so they fit). *)
let c1_boundary_selftest ~c_reg_com (k : K.t) =
  let g = k.g in
  let ii = k.ii in
  let stage v = Ts_base.Intmath.div_floor k.time.(v) ii in
  let sync (e : Ts_ddg.Ddg.edge) =
    Ts_base.Intmath.modulo k.time.(e.src) ii
    - Ts_base.Intmath.modulo k.time.(e.dst) ii
    + Ts_ddg.Ddg.latency g e.src + c_reg_com
  in
  let best =
    List.fold_left
      (fun acc (e : Ts_ddg.Ddg.edge) ->
        if e.distance + stage e.dst - stage e.src >= 1 then
          match acc with
          | Some b when sync b >= sync e -> acc
          | _ -> Some e
        else acc)
      None (Ts_ddg.Ddg.reg_edges g)
  in
  match best with
  | None -> None (* no inter-iteration register dependences: C1 is vacuous *)
  | Some e -> (
      let v = e.dst in
      let s_max = sync e in
      match
        let s = Ts_modsched.Sched.create g ~ii in
        for u = 0 to Ts_ddg.Ddg.n_nodes g - 1 do
          if u <> v then Ts_modsched.Sched.place s u ~cycle:k.time.(u)
        done;
        let ok c_delay =
          Ts_tms.Tms.admissible s v ~cycle:k.time.(v) ~c_delay ~p_max:1.0
            ~c_reg_com
        in
        (ok s_max, ok (s_max - 1))
      with
      | exception Invalid_argument msg ->
          Some
            (Printf.sprintf
               "re-placing the kernel's own slots was rejected while probing \
                the C1 boundary: %s"
               msg)
      | false, _ ->
          Some
            (Printf.sprintf
               "admission rejects the kernel's own slot for node %s at \
                C_delay = max sync = %d (C1 boundary broken)"
               (Ts_ddg.Ddg.node g v).name s_max)
      | true, true ->
          Some
            (Printf.sprintf
               "admission accepts node %s with sync = %d under C_delay = %d \
                (C1 boundary broken)"
               (Ts_ddg.Ddg.node g v).name s_max (s_max - 1))
      | true, false -> None)

(* Two simulations: the realistic configuration exercises the runtime
   invariants (including the cache/MDT reference mirroring), and a
   uniform-memory configuration — every access at the L1 hit cost — is
   compared against the analytic cost model, which knows nothing about
   cache misses. With memory flattened the model's median error is zero
   and its worst observed ratio stays under 2x either way, so the
   multiplicative band below has real teeth. *)
let sim_band cfg sim_cfg (params : Ts_isa.Spmt_params.t) (k : K.t) =
  let (_ : Ts_spmt.Sim.stats) =
    Ts_spmt.Sim.run ~warmup:cfg.warmup ~check:true sim_cfg k ~trip:cfg.trip
  in
  let flat_cfg =
    { sim_cfg with l2_hit = sim_cfg.Ts_spmt.Config.l1_hit; mem_latency = sim_cfg.l1_hit }
  in
  let stats =
    Ts_spmt.Sim.run ~warmup:cfg.warmup ~check:true flat_cfg k ~trip:cfg.trip
  in
  let c_delay = K.c_delay k ~c_reg_com:params.c_reg_com in
  let p_m = Ts_tms.Overheads.misspec_prob k ~c_reg_com:params.c_reg_com in
  let est =
    Ts_tms.Cost_model.estimate params ~ii:k.K.ii ~c_delay ~p_m ~n:cfg.trip
  in
  let cycles = float_of_int stats.Ts_spmt.Sim.cycles in
  let hi = (cfg.tol_rel *. est) +. cfg.tol_abs in
  let lo = (est /. cfg.tol_rel) -. cfg.tol_abs in
  if cycles > hi || cycles < lo then
    Some
      (Printf.sprintf
         "uniform-memory simulation took %d cycles for %d iterations but the \
          cost model estimates %.1f: outside the band [%.1f, %.1f] \
          (estimate / %.1f - %.0f .. estimate * %.1f + %.0f)"
         stats.Ts_spmt.Sim.cycles cfg.trip est lo hi cfg.tol_rel cfg.tol_abs
         cfg.tol_rel cfg.tol_abs)
  else None

let test_loop cfg point g =
  let params =
    {
      Ts_isa.Spmt_params.default with
      ncore = point.ncore;
      c_reg_com = point.c_reg_com;
    }
  in
  let sim_cfg = { Ts_spmt.Config.default with params } in
  let battery (k : K.t) claim =
    match Inv.check_kernel ?claim k with
    | _ :: _ as vs -> Some (Inv.report vs)
    | [] -> (
        match dep_guard_selftest k with
        | Some _ as r -> r
        | None -> (
            match c1_boundary_selftest ~c_reg_com:params.c_reg_com k with
            | Some _ as r -> r
            | None -> sim_band cfg sim_cfg params k))
  in
  let subjects =
    [
      ( "sms",
        fun () ->
          try Some ((Ts_sms.Sms.schedule g).kernel, None)
          with Ts_sms.Sms.No_schedule _ -> None );
      ( "tms",
        fun () ->
          try
            let r = Ts_tms.Tms.schedule ~params g in
            let claim =
              if r.fell_back then None
              else
                Some
                  {
                    Inv.c_delay = r.c_delay_threshold;
                    p_max = r.p_max;
                    c_reg_com = params.c_reg_com;
                  }
            in
            Some (r.kernel, claim)
          with Ts_sms.Sms.No_schedule _ -> None );
      ( "tms-ims",
        fun () ->
          try
            let r = Ts_tms.Tms_ims.schedule ~params g in
            let claim =
              if r.fell_back then None
              else
                Some
                  {
                    Inv.c_delay = r.c_delay_threshold;
                    p_max = r.p_max;
                    c_reg_com = params.c_reg_com;
                  }
            in
            Some (r.kernel, claim)
          with Ts_sms.Ims.No_schedule _ | Ts_sms.Sms.No_schedule _ -> None );
    ]
  in
  List.find_map
    (fun (subject, produce) ->
      let reason =
        try
          match produce () with None -> None | Some (k, claim) -> battery k claim
        with
        | Inv.Check_failed msg -> Some msg
        | Invalid_argument msg -> Some ("unexpected Invalid_argument: " ^ msg)
      in
      match reason with Some r -> Some (subject, r) | None -> None)
    subjects

let check_seed cfg seed =
  let g = loop_for_seed seed in
  List.find_map
    (fun point ->
      match test_loop cfg point g with
      | Some (subject, reason) ->
          Some { seed; subject; point = Some point; reason; ddg = Some g }
      | None -> None)
    cfg.points

(* --- greedy shrinking --- *)

let rebuild (g : Ts_ddg.Ddg.t) ~drop_node ~drop_edge =
  let n = Ts_ddg.Ddg.n_nodes g in
  let b = Ts_ddg.Ddg.Builder.create ~name:g.name g.machine in
  let map = Array.make n (-1) in
  Array.iter
    (fun (nd : Ts_ddg.Ddg.node) ->
      if not (drop_node nd.id) then
        map.(nd.id) <-
          Ts_ddg.Ddg.Builder.add b ~name:nd.name ~latency:nd.latency nd.op)
    g.nodes;
  Array.iteri
    (fun i (e : Ts_ddg.Ddg.edge) ->
      if (not (drop_edge i)) && map.(e.src) >= 0 && map.(e.dst) >= 0 then
        match e.kind with
        | Ts_ddg.Ddg.Reg ->
            Ts_ddg.Ddg.Builder.dep b ~dist:e.distance map.(e.src) map.(e.dst)
        | Ts_ddg.Ddg.Mem ->
            Ts_ddg.Ddg.Builder.mem_dep b ~dist:e.distance ~prob:e.prob
              map.(e.src) map.(e.dst))
    g.edges;
  Ts_ddg.Ddg.Builder.build b

let shrink ?(budget = 150) still_fails g0 =
  let cur = ref g0 in
  let budget = ref budget in
  let candidate f =
    decr budget;
    match f () with
    | exception Invalid_argument _ -> None
    | g' -> if still_fails g' then Some g' else None
  in
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    let n = Ts_ddg.Ddg.n_nodes !cur in
    let v = ref (n - 1) in
    while (not !progress) && !v >= 0 && !budget > 0 do
      if n > 2 then begin
        let dropped = !v in
        match
          candidate (fun () ->
              rebuild !cur ~drop_node:(( = ) dropped) ~drop_edge:(fun _ -> false))
        with
        | Some g' ->
            cur := g';
            progress := true
        | None -> ()
      end;
      decr v
    done;
    if not !progress then begin
      let ne = Array.length (!cur).Ts_ddg.Ddg.edges in
      let i = ref (ne - 1) in
      while (not !progress) && !i >= 0 && !budget > 0 do
        let dropped = !i in
        match
          candidate (fun () ->
              rebuild !cur ~drop_node:(fun _ -> false) ~drop_edge:(( = ) dropped))
        with
        | Some g' ->
            cur := g';
            progress := true
        | None -> ()
      done
    end
  done;
  !cur

let run ?jobs ?(log = ignore) cfg =
  log "phase 0: reference-model differential streams (mdt, cache, mrt)";
  let unit_failure subject = function
    | Some reason -> Some { seed = -1; subject; point = None; reason; ddg = None }
    | None -> None
  in
  match
    List.find_map Fun.id
      [
        unit_failure "mdt-model" (check_mdt_model ~rounds:cfg.unit_rounds);
        unit_failure "cache-model" (check_cache_model ~rounds:cfg.unit_rounds);
        unit_failure "mrt-model" (check_mrt_model ~rounds:cfg.unit_rounds);
      ]
  with
  | Some _ as f -> f
  | None -> (
      log
        (Printf.sprintf "phase 1: %d fuzz seeds x %d points x 3 schedulers"
           cfg.seeds (List.length cfg.points));
      let results =
        Ts_base.Parallel.map ?jobs (check_seed cfg) (List.init cfg.seeds Fun.id)
      in
      match List.find_map Fun.id results with
      | None -> None
      | Some f -> (
          match (f.ddg, f.point) with
          | Some g0, Some point ->
              log
                (Printf.sprintf
                   "seed %d failed (%s at ncore=%d, c_reg_com=%d); shrinking \
                    the %d-node loop"
                   f.seed f.subject point.ncore point.c_reg_com
                   (Ts_ddg.Ddg.n_nodes g0));
              let still_fails g = test_loop cfg point g <> None in
              let g' = shrink ~budget:cfg.shrink_budget still_fails g0 in
              let subject, reason =
                match test_loop cfg point g' with
                | Some sr -> sr
                | None -> (f.subject, f.reason)
              in
              Some { f with subject; reason; ddg = Some g' }
          | _ -> Some f))
