type violation = { what : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.what v.detail

let report vs =
  String.concat "\n" (List.map (fun v -> v.what ^ ": " ^ v.detail) vs)

type claim = { c_delay : int; p_max : float; c_reg_com : int }

exception Check_failed of string

let fail msg = raise (Check_failed msg)
let failf fmt = Printf.ksprintf fail fmt

(* Collector: checks push violations; callers read the reversed list. The
   polymorphic record field keeps [add] usable at several format arities
   within one function. *)
type adder = { add : 'a. string -> ('a, unit, string, unit) format4 -> 'a }

let make () =
  let acc = ref [] in
  let add what fmt =
    Printf.ksprintf (fun detail -> acc := { what; detail } :: !acc) fmt
  in
  (acc, { add })

let name g v = (Ts_ddg.Ddg.node g v).Ts_ddg.Ddg.name

let shape_violations (g : Ts_ddg.Ddg.t) ~ii time =
  let acc, { add } = make () in
  let n = Ts_ddg.Ddg.n_nodes g in
  if ii <= 0 then add "shape" "ii=%d is not positive" ii;
  if n = 0 then add "shape" "empty loop";
  if Array.length time <> n then
    add "shape" "time array has %d entries for %d nodes" (Array.length time) n;
  List.rev !acc

let dependence_violations (g : Ts_ddg.Ddg.t) ~ii time =
  let acc, { add } = make () in
  Array.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      let need = time.(e.src) + Ts_ddg.Ddg.latency g e.src - (ii * e.distance) in
      if time.(e.dst) < need then
        add "dependence"
          "%s -> %s (kind=%s, dist=%d): t(dst)=%d < t(src)+lat-II*d=%d"
          (name g e.src) (name g e.dst)
          (match e.kind with Ts_ddg.Ddg.Reg -> "reg" | Ts_ddg.Ddg.Mem -> "mem")
          e.distance time.(e.dst) need)
    g.edges;
  List.rev !acc

(* Recount resource usage from the machine description alone: how many
   instructions issue in each modulo row, and how many occupancy slots
   each FU cell sees once multi-cycle [busy] reservations are unrolled
   (wrapping around the table when busy > II, hence per-cell demand
   counting rather than interval logic). *)
let resource_violations (g : Ts_ddg.Ddg.t) ~ii time =
  let acc, { add } = make () in
  let n = Ts_ddg.Ddg.n_nodes g in
  let m = g.machine in
  let issue = Array.make ii 0 in
  for v = 0 to n - 1 do
    issue.(Ts_base.Intmath.modulo time.(v) ii) <-
      issue.(Ts_base.Intmath.modulo time.(v) ii) + 1
  done;
  for r = 0 to ii - 1 do
    if issue.(r) > m.Ts_isa.Machine.issue_width then
      add "resource" "row %d issues %d instructions, issue width is %d" r
        issue.(r) m.Ts_isa.Machine.issue_width
  done;
  List.iter
    (fun fu ->
      let units = Ts_isa.Machine.fu_count m fu in
      let demand = Array.make ii 0 in
      for v = 0 to n - 1 do
        let d = m.Ts_isa.Machine.describe (Ts_ddg.Ddg.node g v).op in
        if d.fu = fu then begin
          let r0 = Ts_base.Intmath.modulo time.(v) ii in
          for k = 0 to d.busy - 1 do
            let c = (r0 + k) mod ii in
            demand.(c) <- demand.(c) + 1
          done
        end
      done;
      for c = 0 to ii - 1 do
        if demand.(c) > units then
          add "resource" "%s cell %d holds %d reservations for %d units"
            (Ts_isa.Machine.fu_to_string fu)
            c demand.(c) units
      done)
    Ts_isa.Machine.fu_all;
  List.rev !acc

let check_times g ~ii time =
  match shape_violations g ~ii time with
  | _ :: _ as vs -> vs (* times are unusable; don't index out of bounds *)
  | [] -> dependence_violations g ~ii time @ resource_violations g ~ii time

(* Everything below re-derives row/stage/d_ker/sync from (time, ii) with
   plain arithmetic; the kernel's own fields are compared against the
   derivation rather than trusted. *)

let kernel_shape_violations (k : Ts_modsched.Kernel.t) =
  let acc, { add } = make () in
  let n = Ts_ddg.Ddg.n_nodes k.g in
  let ii = k.ii in
  if Array.length k.row <> n then add "shape" "row array size mismatch";
  if Array.length k.stage <> n then add "shape" "stage array size mismatch";
  if !acc = [] then begin
    let mint = Array.fold_left min k.time.(0) k.time in
    if mint < 0 || mint >= ii then
      add "normalisation" "earliest issue %d is outside [0, II=%d)" mint ii;
    let max_stage = ref 0 in
    for v = 0 to n - 1 do
      let row = Ts_base.Intmath.modulo k.time.(v) ii in
      let stage = Ts_base.Intmath.div_floor k.time.(v) ii in
      if k.row.(v) <> row then
        add "shape" "node %s: row=%d but time %d mod II=%d gives %d"
          (name k.g v) k.row.(v) k.time.(v) ii row;
      if k.stage.(v) <> stage then
        add "shape" "node %s: stage=%d but time %d / II=%d gives %d"
          (name k.g v) k.stage.(v) k.time.(v) ii stage;
      if stage > !max_stage then max_stage := stage
    done;
    if k.n_stages <> !max_stage + 1 then
      add "shape" "n_stages=%d but deepest stage is %d" k.n_stages !max_stage
  end;
  List.rev !acc

(* Kernel distance, from the time array (Definition 1). *)
let dker (k : Ts_modsched.Kernel.t) (e : Ts_ddg.Ddg.edge) =
  e.distance
  + Ts_base.Intmath.div_floor k.time.(e.dst) k.ii
  - Ts_base.Intmath.div_floor k.time.(e.src) k.ii

(* Synchronisation delay (Definition 2), from the time array. *)
let sync (k : Ts_modsched.Kernel.t) ~c_reg_com (e : Ts_ddg.Ddg.edge) =
  Ts_base.Intmath.modulo k.time.(e.src) k.ii
  - Ts_base.Intmath.modulo k.time.(e.dst) k.ii
  + Ts_ddg.Ddg.latency k.g e.src + c_reg_com

let dker_violations (k : Ts_modsched.Kernel.t) =
  let acc, { add } = make () in
  Array.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      let d = dker k e in
      if d < 0 then
        add "d_ker" "%s -> %s: kernel distance %d < 0 (dist=%d)"
          (name k.g e.src) (name k.g e.dst) d e.distance)
    k.g.edges;
  List.rev !acc

(* C2's preservation rule (Section 4.2): a speculated memory dependence is
   preserved when some synchronised register dependence whose producer
   issues earlier in the row already forces the consumer thread to wait at
   least [(row src + lat src - row dst) / d_ker] cycles per hop. *)
let claim_violations (k : Ts_modsched.Kernel.t) { c_delay; p_max; c_reg_com } =
  let acc, { add } = make () in
  let reg_deps =
    List.filter (fun e -> dker k e >= 1) (Ts_ddg.Ddg.reg_edges k.g)
  in
  List.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      let s = sync k ~c_reg_com e in
      if s > c_delay then
        add "C1" "%s -> %s: sync=%d exceeds the admitted C_delay=%d"
          (name k.g e.src) (name k.g e.dst) s c_delay)
    reg_deps;
  let row v = Ts_base.Intmath.modulo k.time.(v) k.ii in
  let preserved (e : Ts_ddg.Ddg.edge) =
    let need =
      float_of_int (row e.src + Ts_ddg.Ddg.latency k.g e.src - row e.dst)
      /. float_of_int (dker k e)
    in
    List.exists
      (fun (r : Ts_ddg.Ddg.edge) ->
        row r.src < row e.src && float_of_int (sync k ~c_reg_com r) >= need)
      reg_deps
  in
  let freq =
    1.0
    -. List.fold_left
         (fun acc (e : Ts_ddg.Ddg.edge) ->
           if dker k e >= 1 && not (preserved e) then acc *. (1.0 -. e.prob)
           else acc)
         1.0
         (Ts_ddg.Ddg.mem_edges k.g)
  in
  (* The scheduler admits at [p_max +. 1e-12]; leave a little more float
     headroom here so re-deriving the product in a different fold order
     cannot manufacture a spurious violation. *)
  if freq > p_max +. 1e-9 then
    add "C2" "misspeculation frequency %.6f exceeds the admitted P_max=%.6f"
      freq p_max;
  List.rev !acc

let check_kernel ?claim (k : Ts_modsched.Kernel.t) =
  match shape_violations k.g ~ii:k.ii k.time with
  | _ :: _ as vs -> vs
  | [] ->
      kernel_shape_violations k
      @ dependence_violations k.g ~ii:k.ii k.time
      @ resource_violations k.g ~ii:k.ii k.time
      @ dker_violations k
      @ (match claim with None -> [] | Some c -> claim_violations k c)

let check_kernel_exn ?claim k =
  match check_kernel ?claim k with
  | [] -> ()
  | vs ->
      failf "kernel of %s (ii=%d) violates %d invariant(s):\n%s"
        k.g.Ts_ddg.Ddg.name k.ii (List.length vs) (report vs)
