(** Deterministic differential fuzzing of the whole pipeline.

    Three unit-level phases first drive the production [Mdt], [Cache] and
    [Mrt] structures against the naive {!Ref_models} with randomized
    (fixed-seed) operation streams biased toward their boundary cases
    (horizon edges, set conflicts, busy-cycle wrap-around). Then, per
    fuzz seed, a loop is generated with {!Ts_workload.Gen}, scheduled
    with SMS, TMS and TMS-over-IMS at several [(ncore, c_reg_com)]
    points, and each resulting kernel is

    - validated from first principles ({!Invariant.check_kernel}),
      including the C1/C2 claim for non-fallback TMS results;
    - used as a self-test of [Kernel.of_times]'s dependence guard (a
      one-cycle perturbation of a feasible schedule must be rejected);
    - probed at the C1 admission boundary (the kernel's own max-sync slot
      must be admitted at [C_delay = max sync] and rejected one below);
    - simulated with [Sim.run ~check:true] (runtime invariants plus
      MDT/cache reference mirroring) under the realistic memory
      hierarchy;
    - simulated again with memory flattened to the L1 hit cost and
      compared against {!Ts_tms.Cost_model.estimate} — which models no
      cache — within the configured multiplicative tolerance band.

    Everything is seeded from the fuzz seed through {!Ts_base.Rng}, so a
    failure reproduces bit-for-bit; a failing loop is then shrunk by
    greedy node/edge deletion and printed as a parseable [.ddg] file. *)

type point = { ncore : int; c_reg_com : int }

type config = {
  seeds : int;  (** fuzz seeds to try (0, 1, ...) *)
  trip : int;  (** measured iterations per simulation *)
  warmup : int;  (** warmup iterations per simulation *)
  tol_rel : float;
      (** multiplicative sim-vs-cost-model tolerance: cycles must lie in
          [[est / tol_rel - tol_abs, est * tol_rel + tol_abs]] *)
  tol_abs : float;  (** absolute slack added to both band edges, in cycles *)
  points : point list;  (** machine points exercised per seed *)
  unit_rounds : int;  (** rounds per unit-level differential phase *)
  shrink_budget : int;  (** max candidate re-tests while shrinking *)
}

val default_config : config
(** 200 seeds, trip 96, warmup 16, points [(1,3); (2,1); (4,3); (8,8)]
    (the first being the degenerate single-core machine), and the
    tolerance band documented in EXPERIMENTS.md. *)

type failure = {
  seed : int;  (** fuzz seed, or -1 for a unit-level phase *)
  subject : string;
      (** what failed: ["mdt-model"], ["cache-model"], ["mrt-model"], or
          the scheduler name (["sms"], ["tms"], ["tms-ims"]) *)
  point : point option;  (** the machine point, for per-seed failures *)
  reason : string;
  ddg : Ts_ddg.Ddg.t option;  (** shrunken counterexample loop *)
}

val pp_failure : Format.formatter -> failure -> unit
(** Human-readable report; includes the [.ddg] text when a loop is
    attached. *)

val check_mdt_model : rounds:int -> string option
(** Differential streams over [Ts_spmt.Mdt] vs {!Ref_models.Mdt}. *)

val check_cache_model : rounds:int -> string option
(** Differential streams over [Ts_spmt.Cache] vs {!Ref_models.Cache}. *)

val check_mrt_model : rounds:int -> string option
(** Differential streams over [Ts_modsched.Mrt] vs {!Ref_models.Mrt}. *)

val loop_for_seed : int -> Ts_ddg.Ddg.t
(** The generated loop for a fuzz seed (shape varies with the seed). *)

val test_loop : config -> point -> Ts_ddg.Ddg.t -> (string * string) option
(** Run the full per-kernel battery on one loop at one point;
    [(subject, reason)] for the first failure. Deterministic. *)

val check_seed : config -> int -> failure option
(** {!loop_for_seed} + {!test_loop} at every configured point. The
    returned failure carries the unshrunk loop. *)

val shrink :
  ?budget:int -> (Ts_ddg.Ddg.t -> bool) -> Ts_ddg.Ddg.t -> Ts_ddg.Ddg.t
(** [shrink still_fails g] greedily deletes nodes and edges while
    [still_fails] holds, to a fixpoint or until the budget of candidate
    evaluations runs out. *)

val run : ?jobs:int -> ?log:(string -> unit) -> config -> failure option
(** Unit phases, then every seed (on up to [jobs] domains, results
    deterministic regardless); the smallest failing seed's failure is
    shrunk and returned. [log] receives progress lines. *)
