(** First-principles kernel validation.

    Everything here is re-derived from the raw schedule — the DDG, the II
    and the per-node issue times — without going through [Kernel]'s or
    [Mrt]'s own helpers, so a bug in the schedulers' incremental
    bookkeeping (a mis-maintained reservation table, a stale dependence
    mask, an off-by-one in an admission predicate) shows up as a
    disagreement here rather than being silently replicated.

    The checks cover the full contract a {!Ts_modsched.Kernel.t} must
    satisfy:

    - shape: [time]/[row]/[stage] arrays are mutually consistent and
      normalised (earliest issue in [\[0, II)]);
    - dependence feasibility: [t(v) >= t(u) + lat(u) - II * d(u, v)] for
      every edge (paper Section 2);
    - [d_ker >= 0] for every edge (Definition 1 — no dependence may travel
      backwards in thread order);
    - resource feasibility: per-row issue-slot usage and per-cell
      functional-unit occupancy (including multi-cycle [busy] wrap-around)
      recounted from scratch against the machine description;
    - optionally, the thread-sensitive admission conditions the scheduler
      {e claims} the kernel satisfies: C1 ([sync <= C_delay] for every
      inter-iteration register dependence, Definition 2) and C2 (the
      misspeculation frequency of non-preserved inter-iteration memory
      dependences stays within [P_max], Section 4.2). *)

type violation = { what : string; detail : string }
(** One broken invariant: a short category tag and a human-readable
    description with the offending numbers. *)

val pp_violation : Format.formatter -> violation -> unit

val report : violation list -> string
(** All violations, one per line (empty string for []). *)

type claim = { c_delay : int; p_max : float; c_reg_com : int }
(** The admission thresholds a thread-sensitive scheduler reports a kernel
    was accepted under ({!Ts_tms}'s [c_delay_threshold] and [p_max], plus
    the [c_reg_com] the sync computation used). *)

exception Check_failed of string
(** Raised by the [_exn] enforcement entry points (and by [Sim.run
    ~check:true]) with a full {!report}. *)

val dependence_violations : Ts_ddg.Ddg.t -> ii:int -> int array -> violation list
(** Dependence feasibility of a raw time array at [ii]. *)

val resource_violations : Ts_ddg.Ddg.t -> ii:int -> int array -> violation list
(** Resource feasibility (issue width + per-FU occupancy, with busy-cycle
    wrap-around) of a raw time array at [ii], recounted naively. *)

val check_times : Ts_ddg.Ddg.t -> ii:int -> int array -> violation list
(** [dependence_violations @ resource_violations], plus basic shape
    checks; the contract of [Kernel.of_times]'s input. *)

val check_kernel : ?claim:claim -> Ts_modsched.Kernel.t -> violation list
(** Every kernel invariant listed above, derived from [(g, ii, time)]
    alone; the kernel's [row]/[stage]/[n_stages] fields are treated as
    claims to verify, not as inputs. With [?claim], additionally checks C1
    and C2 against the stated thresholds. *)

val check_kernel_exn : ?claim:claim -> Ts_modsched.Kernel.t -> unit
(** Raises {!Check_failed} with the {!report} when {!check_kernel} finds
    anything. *)

val fail : string -> 'a
(** [raise (Check_failed msg)] — shared by the simulator's inline checks
    so every checker failure is the same exception. *)

val failf : ('a, unit, string, 'b) format4 -> 'a
(** [Printf]-style {!fail}. *)
