(** Naive reference semantics for the simulator's stateful structures.

    Each model here implements the same observable contract as its
    production counterpart ({!Ts_spmt} [Cache]/[Mdt], {!Ts_modsched}
    [Mrt]) with the simplest data structure that can express it — flat
    lists scanned in O(n), timestamps instead of maintained age
    permutations — so the two implementations share no code and no
    algorithmic shortcuts. Differential tests drive both with the same
    operation stream and compare every answer; [Sim.run ~check:true]
    mirrors its cache and MDT traffic through these at runtime. *)

(** Set-associative LRU cache: per-set slots carrying a last-use
    timestamp from a global counter. The victim is the slot least
    recently touched; invalidation clears a slot's tag but {e not} its
    recency (matching the production cache, whose age permutation is
    untouched by invalidation). *)
module Cache : sig
  type t

  val create : size:int -> assoc:int -> line:int -> t
  val access : t -> int -> bool
  val probe : t -> int -> bool
  val invalidate : t -> int -> unit
  val fill : t -> int -> unit
  val stats : t -> int * int
  val reset_stats : t -> unit
end

(** Memory disambiguation table: one flat list of
    [(thread, addr, finish)] store records. A load in [thread] conflicts
    with the latest-finishing store to the same address by a less
    speculative thread still in flight ([thread - horizon < t' < thread])
    that finishes after the load issues. Recording a store drops stale
    same-address records; [retire] drops everything below a thread
    bound. *)
module Mdt : sig
  type t

  val create : horizon:int -> t
  val record_store : t -> thread:int -> addr:int -> finish:int -> unit
  val conflicting_store : t -> thread:int -> addr:int -> issue:int -> int option
  val retire : t -> upto:int -> unit
  val live_entries : t -> int
  val peak_entries : t -> int
end

(** Modulo reservation table: a bag of [(opcode, row)] reservations,
    re-counted in full on every query. [fits] unrolls each reservation's
    multi-cycle FU occupancy (with wrap-around when [busy > II]) and
    checks both per-row issue width and per-cell unit counts. *)
module Mrt : sig
  type t

  val create : Ts_isa.Machine.t -> ii:int -> t
  val fits : t -> Ts_isa.Opcode.t -> cycle:int -> bool
  val reserve : t -> Ts_isa.Opcode.t -> cycle:int -> unit
  (** No feasibility check: the reference is driven in lock-step with a
      production table that already validated the slot. *)

  val release : t -> Ts_isa.Opcode.t -> cycle:int -> unit
  (** Removes one matching reservation; raises [Invalid_argument] if none
      exists. *)
end
