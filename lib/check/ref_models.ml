module Cache = struct
  type slot = { mutable tag : int; mutable last_use : int }

  type t = {
    n_sets : int;
    line : int;
    sets : slot array array;
    mutable clock : int; (* global recency counter; larger = more recent *)
    mutable hits : int;
    mutable misses : int;
  }

  let create ~size ~assoc ~line =
    let n_sets = size / (assoc * line) in
    {
      n_sets;
      line;
      (* Way 0 starts most recent, matching the production cache's initial
         age permutation, so cold evictions fill ways back-to-front in the
         same order. *)
      sets =
        Array.init n_sets (fun _ ->
            Array.init assoc (fun w -> { tag = -1; last_use = -w }));
      clock = 0;
      hits = 0;
      misses = 0;
    }

  let locate t addr =
    let block = addr / t.line in
    (block, t.sets.(block mod t.n_sets))

  let find set block = Array.find_opt (fun s -> s.tag = block) set

  let touch t slot =
    t.clock <- t.clock + 1;
    slot.last_use <- t.clock

  let victim set =
    Array.fold_left (fun best s -> if s.last_use < best.last_use then s else best)
      set.(0) set

  let access t addr =
    let block, set = locate t addr in
    match find set block with
    | Some s ->
        t.hits <- t.hits + 1;
        touch t s;
        true
    | None ->
        t.misses <- t.misses + 1;
        let s = victim set in
        s.tag <- block;
        touch t s;
        false

  let probe t addr =
    let block, set = locate t addr in
    find set block <> None

  let invalidate t addr =
    let block, set = locate t addr in
    match find set block with Some s -> s.tag <- -1 | None -> ()

  let fill t addr =
    let block, set = locate t addr in
    match find set block with
    | Some s -> touch t s
    | None ->
        let s = victim set in
        s.tag <- block;
        touch t s

  let stats t = (t.hits, t.misses)

  let reset_stats t =
    t.hits <- 0;
    t.misses <- 0
end

module Mdt = struct
  type entry = { thread : int; addr : int; finish : int }

  type t = { horizon : int; mutable entries : entry list; mutable peak : int }

  let create ~horizon = { horizon; entries = []; peak = 0 }

  let record_store t ~thread ~addr ~finish =
    t.entries <-
      { thread; addr; finish }
      :: List.filter
           (fun e -> e.addr <> addr || e.thread > thread - t.horizon)
           t.entries;
    let live = List.length t.entries in
    if live > t.peak then t.peak <- live

  let conflicting_store t ~thread ~addr ~issue =
    List.fold_left
      (fun acc e ->
        if
          e.addr = addr && e.thread < thread
          && e.thread > thread - t.horizon
          && e.finish > issue
        then Some (match acc with None -> e.finish | Some f -> max f e.finish)
        else acc)
      None t.entries

  let retire t ~upto =
    t.entries <- List.filter (fun e -> e.thread >= upto) t.entries

  let live_entries t = List.length t.entries
  let peak_entries t = t.peak
end

module Mrt = struct
  type t = {
    machine : Ts_isa.Machine.t;
    ii : int;
    mutable rs : (Ts_isa.Opcode.t * int) list; (* (op, modulo row) *)
  }

  let create machine ~ii =
    if ii <= 0 then invalid_arg "Ref_models.Mrt.create: ii must be positive";
    { machine; ii; rs = [] }

  let row t cycle = Ts_base.Intmath.modulo cycle t.ii

  (* Per-cell occupancy of one FU across all reservations (plus an
     optional extra op at [extra_row]), unrolling busy cycles with
     wrap-around. *)
  let fu_demand t fu ?extra ~extra_row () =
    let demand = Array.make t.ii 0 in
    let count op r0 =
      let d = t.machine.Ts_isa.Machine.describe op in
      if d.fu = fu then
        for k = 0 to d.busy - 1 do
          let c = (r0 + k) mod t.ii in
          demand.(c) <- demand.(c) + 1
        done
    in
    List.iter (fun (op, r) -> count op r) t.rs;
    (match extra with Some op -> count op extra_row | None -> ());
    demand

  let fits t op ~cycle =
    let r0 = row t cycle in
    let issue_here =
      List.fold_left (fun acc (_, r) -> if r = r0 then acc + 1 else acc) 0 t.rs
    in
    if issue_here >= t.machine.Ts_isa.Machine.issue_width then false
    else
      let fu = (t.machine.Ts_isa.Machine.describe op).fu in
      let units = Ts_isa.Machine.fu_count t.machine fu in
      let demand = fu_demand t fu ~extra:op ~extra_row:r0 () in
      Array.for_all (fun d -> d <= units) demand

  let reserve t op ~cycle = t.rs <- (op, row t cycle) :: t.rs

  let release t op ~cycle =
    let r0 = row t cycle in
    let rec drop = function
      | [] -> invalid_arg "Ref_models.Mrt.release: not reserved"
      | (o, r) :: rest when o = op && r = r0 -> rest
      | x :: rest -> x :: drop rest
    in
    t.rs <- drop t.rs
end
