(** Iterative modulo scheduling (Rau, MICRO'94) — the classic alternative
    to SMS.

    The paper stresses that TMS "is not tied to any existing modulo
    scheduling algorithm" (Section 4.1): its admission conditions drop into
    any scheduler that tries issue slots for one instruction at a time.
    This module provides that second scheduler, so the claim can be tested
    (see {!Ts_tms.Tms_ims}).

    IMS differs from SMS in two ways: nodes are prioritised by height alone
    (no SCC-driven ordering), and instead of restarting when an instruction
    does not fit, IMS {e forces} it into a slot and evicts whatever
    conflicts, retrying the evicted instructions later within an operation
    budget. *)

type result = {
  kernel : Ts_modsched.Kernel.t;
  mii : int;
  attempts : int;  (** IIs tried *)
  placements : int;  (** total placement operations, evictions included *)
}

exception No_schedule of string

val schedule :
  ?max_ii:int -> ?budget_ratio:int -> Ts_ddg.Ddg.t -> result
(** Schedule a loop. [budget_ratio] (default 6) bounds the placement
    operations per II attempt at [ratio * n_nodes], after which the II is
    increased, as in Rau's formulation. *)

val priority_order : Ts_ddg.Ddg.t -> ii:int -> int list
(** Rau's height-based placement priority at [ii] (highest first, ties by
    node id). Deterministic in [(g, ii)]; grid searches that revisit an II
    compute it once and feed it back through [try_ii ?prio]. *)

val try_ii :
  ?budget_ratio:int ->
  ?admissible:(Ts_modsched.Sched.t -> int -> cycle:int -> bool) ->
  ?asap:int array ->
  ?prio:int list ->
  Ts_ddg.Ddg.t ->
  ii:int ->
  Ts_modsched.Kernel.t option
(** One IMS attempt at a fixed II. [admissible] adds an extra admission
    predicate on (partial schedule, node, cycle) — resource feasibility is
    always checked; thread-sensitive wrappers pass their C1/C2 checks
    here. [asap] and [prio] must equal [Ts_modsched.Sched.asap_table g
    ~ii] and {!priority_order} when supplied (per-II caches for grid
    searches). *)
