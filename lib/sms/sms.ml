type result = { kernel : Ts_modsched.Kernel.t; mii : int; attempts : int }

exception No_schedule of string

let try_ii g ~ii ~order =
  let s = Ts_modsched.Sched.create g ~ii in
  let place_one (v, prefer) =
    match Ts_modsched.Sched.window ~prefer s v with
    | None -> false
    | Some w ->
        let rec try_cycles = function
          | [] -> false
          | c :: rest ->
              if Ts_modsched.Sched.fits s v ~cycle:c then begin
                Ts_modsched.Sched.place s v ~cycle:c;
                true
              end
              else try_cycles rest
        in
        try_cycles (Ts_modsched.Sched.candidate_cycles w)
  in
  if List.for_all place_one order then Some (Ts_modsched.Kernel.of_schedule s)
  else None

module Trace = Ts_obs.Trace

let m_attempts = Ts_obs.Metrics.counter Ts_obs.Metrics.default "sms.attempts"

let m_schedules =
  Ts_obs.Metrics.counter Ts_obs.Metrics.default "sms.schedules"

let phase_span trace name f =
  if not (Trace.enabled trace) then f ()
  else begin
    Trace.begin_span trace ~ts:(Trace.tick trace) name;
    Fun.protect ~finally:(fun () -> Trace.end_span trace ~ts:(Trace.tick trace) name) f
  end

let schedule ?(trace = Trace.null) ?max_ii g =
  Ts_obs.Prof.span "sms.schedule" @@ fun () ->
  let mii = Ts_ddg.Mii.mii g in
  let max_ii =
    match max_ii with Some m -> m | None -> Ts_ddg.Mii.ii_upper_bound g
  in
  let order =
    phase_span trace "sms.order" (fun () -> Order.compute_with_dirs g ~ii:mii)
  in
  let rec go ii attempts =
    if ii > max_ii then
      raise
        (No_schedule
           (Printf.sprintf "SMS: no schedule for %s with II in [%d, %d]" g.name mii
              max_ii))
    else begin
      Ts_obs.Metrics.incr m_attempts;
      let res = try_ii g ~ii ~order in
      if Trace.enabled trace then
        Trace.instant trace ~ts:(Trace.tick trace) "sms.attempt"
          ~args:
            [
              ("ii", Ts_obs.Json.Int ii);
              ("accepted", Ts_obs.Json.Bool (res <> None));
            ];
      match res with
      | Some kernel -> { kernel; mii; attempts }
      | None -> go (ii + 1) (attempts + 1)
    end
  in
  let r = phase_span trace "sms.placement" (fun () -> go mii 1) in
  Ts_obs.Metrics.incr m_schedules;
  r
