(** Swing modulo scheduling (the paper's baseline).

    For each candidate II starting at MII, walk the nodes in the
    {!Order.compute} order and place each at the first resource-feasible
    cycle of its scheduling window ({!Ts_modsched.Sched.window}) — the
    "lifetime-minimal" strategy whose inter-thread behaviour TMS improves.
    If any node cannot be placed the II is increased and the schedule
    restarted, exactly as in GCC 4.1.1. *)

type result = {
  kernel : Ts_modsched.Kernel.t;
  mii : int;  (** the MII the search started from *)
  attempts : int;  (** IIs tried, including the successful one *)
}

exception No_schedule of string
(** Raised when no II up to the bound admits a schedule (indicates a
    malformed machine/loop pair; cannot happen for loops our generators
    emit). *)

val schedule : ?trace:Ts_obs.Trace.t -> ?max_ii:int -> Ts_ddg.Ddg.t -> result
(** Schedule a loop. [max_ii] defaults to {!Ts_ddg.Mii.ii_upper_bound}.

    [trace] (default {!Ts_obs.Trace.null}) receives ["sms.order"] and
    ["sms.placement"] phase spans on the tracer's logical clock, plus one
    ["sms.attempt"] instant event per II tried. Attempt totals are counted
    on {!Ts_obs.Metrics.default} under [sms.*]. *)

val try_ii :
  Ts_ddg.Ddg.t ->
  ii:int ->
  order:(int * Ts_modsched.Sched.direction) list ->
  Ts_modsched.Kernel.t option
(** One SMS attempt at a fixed II with a precomputed order (exposed for
    TMS, which wraps the same inner loop with extra admission checks, and
    for tests). *)
