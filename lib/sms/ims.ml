module S = Ts_modsched.Sched

type result = {
  kernel : Ts_modsched.Kernel.t;
  mii : int;
  attempts : int;
  placements : int;
}

exception No_schedule of string

(* Height-based priority: longest latency path to any sink (over
   intra-iteration edges), highest first, as in Rau's HRMS ordering. *)
let priority_order g ~ii =
  let p = Order.priorities g ~ii in
  List.sort
    (fun a b ->
      if p.height.(a) <> p.height.(b) then compare p.height.(b) p.height.(a)
      else compare a b)
    (List.init (Ts_ddg.Ddg.n_nodes g) Fun.id)

let try_ii_counting ?(budget_ratio = 6) ?(admissible = fun _ _ ~cycle:_ -> true)
    ?asap ?prio (g : Ts_ddg.Ddg.t) ~ii =
  let n = Ts_ddg.Ddg.n_nodes g in
  let s = S.create ?asap g ~ii in
  let budget = ref (budget_ratio * n) in
  let placements = ref 0 in
  let prev_time = Array.make n min_int in
  let prio = match prio with Some p -> p | None -> priority_order g ~ii in
  let pick_unscheduled () = List.find_opt (fun v -> not (S.is_scheduled s v)) prio in
  let lat u = Ts_ddg.Ddg.latency g u in
  (* earliest start w.r.t. currently scheduled predecessors *)
  let early v =
    List.fold_left
      (fun acc (e : Ts_ddg.Ddg.edge) ->
        match S.time s e.src with
        | None -> acc
        | Some tu -> max acc (tu + lat e.src - (ii * e.distance)))
      0 g.preds.(v)
  in
  (* after placing v, evict scheduled successors whose dependence broke *)
  let evict_broken_succs v c =
    List.iter
      (fun (e : Ts_ddg.Ddg.edge) ->
        if e.src = v && e.dst <> v then
          match S.time s e.dst with
          | Some tw when tw < c + lat v - (ii * e.distance) -> S.unplace s e.dst
          | _ -> ())
      g.succs.(v)
  in
  (* clear resource conflicts at [c] until v fits there (bounded) *)
  let force_fit v c =
    let guard = ref 0 in
    while (not (S.fits s v ~cycle:c)) && !guard < n do
      incr guard;
      (* evict the scheduled node occupying the same modulo cycle that was
         placed least recently (round-robin-ish fairness via list order) *)
      let row = Ts_base.Intmath.modulo c ii in
      match
        List.find_opt
          (fun w ->
            match S.time s w with
            | Some tw -> Ts_base.Intmath.modulo tw ii = row
            | None -> false)
          (S.scheduled_nodes s)
      with
      | Some w -> S.unplace s w
      | None -> guard := n (* conflict from a wrapped busy unit elsewhere *)
    done;
    S.fits s v ~cycle:c
  in
  let ok = ref true in
  let continue_ = ref true in
  while !continue_ && !ok do
    match pick_unscheduled () with
    | None -> continue_ := false
    | Some v ->
        if !budget <= 0 then ok := false
        else begin
          decr budget;
          incr placements;
          let e0 = early v in
          (* normal scan: the first admissible, resource-free slot *)
          let rec scan c =
            if c > e0 + ii - 1 then None
            else if S.fits s v ~cycle:c && admissible s v ~cycle:c then Some c
            else scan (c + 1)
          in
          match scan e0 with
          | Some c ->
              S.place s v ~cycle:c;
              prev_time.(v) <- c;
              evict_broken_succs v c
          | None ->
              (* forced placement: at least one cycle past any previous
                 attempt, evicting whatever occupies it *)
              let base = max e0 (prev_time.(v) + 1) in
              let rec force c =
                if c > base + ii - 1 then false
                else if admissible s v ~cycle:c && force_fit v c then begin
                  S.place s v ~cycle:c;
                  prev_time.(v) <- c;
                  evict_broken_succs v c;
                  true
                end
                else force (c + 1)
              in
              if not (force base) then ok := false
        end
  done;
  if !ok && S.is_complete s then (Some (Ts_modsched.Kernel.of_schedule s), !placements)
  else (None, !placements)

let try_ii ?budget_ratio ?admissible ?asap ?prio g ~ii =
  fst (try_ii_counting ?budget_ratio ?admissible ?asap ?prio g ~ii)

let schedule ?max_ii ?budget_ratio g =
  let mii = Ts_ddg.Mii.mii g in
  let max_ii =
    match max_ii with Some m -> m | None -> Ts_ddg.Mii.ii_upper_bound g
  in
  let placements = ref 0 in
  let rec go ii attempts =
    if ii > max_ii then
      raise
        (No_schedule
           (Printf.sprintf "IMS: no schedule for %s with II in [%d, %d]" g.name
              mii max_ii))
    else
      match try_ii_counting ?budget_ratio g ~ii with
      | Some kernel, p ->
          placements := !placements + p;
          { kernel; mii; attempts; placements = !placements }
      | None, p ->
          placements := !placements + p;
          go (ii + 1) (attempts + 1)
  in
  go mii 1
