(** Nested span profiling: where does the wall-time (and allocation) go?

    [span "tms.search" f] times [f] and attributes the interval to the
    span name, subtracting the time spent in spans nested inside it on
    the same domain — so a report line's "self" column is the time truly
    spent in that phase, not double-counted into its callers. Each span
    also records the allocation (words, via [Gc.quick_stat]) and the
    minor/major collection counts over its extent.

    Disabled by default: a [span] call then costs one atomic read plus
    the closure call, which is why instrumentation can stay on
    permanently in the search/simulator/persistence hot paths. The CLI's
    [--profile table|json] flag enables it for the run and prints the
    report at exit (on the failure path too).

    Domain behaviour: every domain has its own span stack, so pool
    workers nest correctly and without contention. Aggregation across
    domains sums self-times, so under a parallel sweep the per-span
    totals can legitimately exceed the wall clock, and a span on the
    spawning domain does not see worker spans as children (its self time
    includes the wait at the join). *)

val set_enabled : bool -> unit
(** Turn profiling on (clearing any previous aggregates and starting the
    wall clock) or off. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Clear aggregates and restart the report wall clock. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], attributing its wall time, allocation and GC
    counts to [name]. Exception-safe: the frame is closed and accounted
    even when [f] raises. No-op (beyond one atomic read) when disabled. *)

type row = {
  name : string;
  count : int;  (** completed calls *)
  total_s : float;  (** inclusive wall seconds, summed over calls *)
  self_s : float;  (** [total_s] minus time in same-domain child spans *)
  self_mwords : float;  (** millions of words allocated, net of children *)
  minor_gcs : int;
  major_gcs : int;
}

type report = { wall_s : float; rows : row list }
(** [wall_s] is the time since profiling was enabled (or {!reset});
    [rows] are sorted by descending [self_s], ties by name. *)

val report : unit -> report

val coverage : report -> float
(** Fraction of [wall_s] attributed to span self-time (can exceed 1.0
    under a parallel sweep). *)

val render_table : report -> string
(** Aligned table: span, calls, total/self seconds, self %% of wall,
    allocation and GC counts, with a closing wall-clock/coverage row. *)

val to_json : report -> Json.t
(** [{"version": 1, "wall_s": ..., "coverage": ..., "spans": [...]}] in
    the same order as {!report} rows. *)
