type format = Chrome | Jsonl

type sink = To_buffer of Buffer.t | To_channel of out_channel

(* Domain-safety: traced sweeps hand one trace to every pool worker, so
   the logical clock is an atomic (ticks are unique and monotonic across
   domains) and event writes are serialised by a per-trace mutex — a
   line is either fully written or not yet written, never interleaved.
   The null trace stays a single branch with no locking. *)
type active = {
  format : format;
  sink : sink;
  mutable first : bool; (* no comma before the first Chrome event *)
  mutable closed : bool;
  clock : int Atomic.t;
  write_lock : Mutex.t;
}

type t = Null | Active of active

let null = Null
let enabled = function Null -> false | Active _ -> true

let make format sink =
  let a =
    { format; sink; first = true; closed = false; clock = Atomic.make 0;
      write_lock = Mutex.create () }
  in
  (match format with
  | Chrome -> (
      match sink with
      | To_buffer b -> Buffer.add_string b "[\n"
      | To_channel oc -> output_string oc "[\n")
  | Jsonl -> ());
  Active a

let to_buffer ?(format = Chrome) buf = make format (To_buffer buf)
let to_file ?(format = Chrome) path = make format (To_channel (open_out path))

let close = function
  | Null -> ()
  | Active a ->
      Mutex.lock a.write_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock a.write_lock) @@ fun () ->
      if not a.closed then begin
        a.closed <- true;
        let footer = match a.format with Chrome -> "\n]\n" | Jsonl -> "" in
        match a.sink with
        | To_buffer b -> Buffer.add_string b footer
        | To_channel oc ->
            output_string oc footer;
            close_out oc
      end

let tick = function
  | Null -> 0
  | Active a -> Atomic.fetch_and_add a.clock 1

let emit a (fields : (string * Json.t) list) =
  let line = Json.to_string (Json.Obj fields) in
  Mutex.lock a.write_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock a.write_lock) @@ fun () ->
  if a.closed then invalid_arg "Trace: emit after close";
  match a.format with
  | Chrome -> (
      let sep = if a.first then "" else ",\n" in
      a.first <- false;
      match a.sink with
      | To_buffer b ->
          Buffer.add_string b sep;
          Buffer.add_string b line
      | To_channel oc ->
          output_string oc sep;
          output_string oc line)
  | Jsonl -> (
      match a.sink with
      | To_buffer b ->
          Buffer.add_string b line;
          Buffer.add_char b '\n'
      | To_channel oc ->
          output_string oc line;
          output_char oc '\n')

let event t ~ph ?(pid = 0) ?(tid = 0) ?(args = []) ?ts name extra =
  match t with
  | Null -> ()
  | Active a ->
      let fields =
        [ ("name", Json.Str name); ("ph", Json.Str ph) ]
        @ (match ts with Some ts -> [ ("ts", Json.Int ts) ] | None -> [])
        @ [ ("pid", Json.Int pid); ("tid", Json.Int tid) ]
        @ extra
        @ (match args with [] -> [] | _ -> [ ("args", Json.Obj args) ])
      in
      emit a fields

let begin_span t ?pid ?tid ?args ~ts name =
  event t ~ph:"B" ?pid ?tid ?args ~ts name []

let end_span t ?pid ?tid ~ts name = event t ~ph:"E" ?pid ?tid ~ts name []

let instant t ?pid ?tid ?args ~ts name =
  event t ~ph:"i" ?pid ?tid ?args ~ts name [ ("s", Json.Str "t") ]

let counter_sample t ?pid ?tid ~ts name values =
  event t ~ph:"C" ?pid ?tid
    ~args:(List.map (fun (k, v) -> (k, Json.Float v)) values)
    ~ts name []

let process_name t ?pid name =
  event t ~ph:"M" ?pid ~args:[ ("name", Json.Str name) ] "process_name" []

let thread_name t ?pid ?tid name =
  event t ~ph:"M" ?pid ?tid ~args:[ ("name", Json.Str name) ] "thread_name" []
