type format = Chrome | Jsonl

type sink = To_buffer of Buffer.t | To_channel of out_channel

type active = {
  format : format;
  sink : sink;
  mutable first : bool; (* no comma before the first Chrome event *)
  mutable closed : bool;
  mutable clock : int;
}

type t = Null | Active of active

let null = Null
let enabled = function Null -> false | Active _ -> true

let make format sink =
  let a = { format; sink; first = true; closed = false; clock = 0 } in
  (match format with
  | Chrome -> (
      match sink with
      | To_buffer b -> Buffer.add_string b "[\n"
      | To_channel oc -> output_string oc "[\n")
  | Jsonl -> ());
  Active a

let to_buffer ?(format = Chrome) buf = make format (To_buffer buf)
let to_file ?(format = Chrome) path = make format (To_channel (open_out path))

let close = function
  | Null -> ()
  | Active a ->
      if not a.closed then begin
        a.closed <- true;
        let footer = match a.format with Chrome -> "\n]\n" | Jsonl -> "" in
        match a.sink with
        | To_buffer b -> Buffer.add_string b footer
        | To_channel oc ->
            output_string oc footer;
            close_out oc
      end

let tick = function
  | Null -> 0
  | Active a ->
      let c = a.clock in
      a.clock <- c + 1;
      c

let emit a (fields : (string * Json.t) list) =
  if a.closed then invalid_arg "Trace: emit after close";
  let line = Json.to_string (Json.Obj fields) in
  match a.format with
  | Chrome -> (
      let sep = if a.first then "" else ",\n" in
      a.first <- false;
      match a.sink with
      | To_buffer b ->
          Buffer.add_string b sep;
          Buffer.add_string b line
      | To_channel oc ->
          output_string oc sep;
          output_string oc line)
  | Jsonl -> (
      match a.sink with
      | To_buffer b ->
          Buffer.add_string b line;
          Buffer.add_char b '\n'
      | To_channel oc ->
          output_string oc line;
          output_char oc '\n')

let event t ~ph ?(pid = 0) ?(tid = 0) ?(args = []) ?ts name extra =
  match t with
  | Null -> ()
  | Active a ->
      let fields =
        [ ("name", Json.Str name); ("ph", Json.Str ph) ]
        @ (match ts with Some ts -> [ ("ts", Json.Int ts) ] | None -> [])
        @ [ ("pid", Json.Int pid); ("tid", Json.Int tid) ]
        @ extra
        @ (match args with [] -> [] | _ -> [ ("args", Json.Obj args) ])
      in
      emit a fields

let begin_span t ?pid ?tid ?args ~ts name =
  event t ~ph:"B" ?pid ?tid ?args ~ts name []

let end_span t ?pid ?tid ~ts name = event t ~ph:"E" ?pid ?tid ~ts name []

let instant t ?pid ?tid ?args ~ts name =
  event t ~ph:"i" ?pid ?tid ?args ~ts name [ ("s", Json.Str "t") ]

let counter_sample t ?pid ?tid ~ts name values =
  event t ~ph:"C" ?pid ?tid
    ~args:(List.map (fun (k, v) -> (k, Json.Float v)) values)
    ~ts name []

let process_name t ?pid name =
  event t ~ph:"M" ?pid ~args:[ ("name", Json.Str name) ] "process_name" []

let thread_name t ?pid ?tid name =
  event t ~ph:"M" ?pid ?tid ~args:[ ("name", Json.Str name) ] "thread_name" []
