(** Throttled stderr heartbeat for long-running sweeps.

    {!Ts_resil.Supervise.sweep_map} creates a handle per sweep and calls
    {!step} as each task completes (from whatever pool domain ran it);
    when enabled — the CLI's [--progress] flag — at most one line per
    second reports done/total, elapsed time, an ETA extrapolated from
    the completion rate, and this sweep's cache hit-rate, retry and
    failure counts read from the default metrics registry. Disabled
    (the default), a step costs two atomic operations, so the harness
    can call into it unconditionally. *)

type t

val set_enabled : bool -> unit
(** Global switch, normally driven by [--progress]. Handles can be
    created while disabled and start reporting if it is enabled
    mid-run. *)

val enabled : unit -> bool

val set_sink : (string -> unit) option -> unit
(** Redirect heartbeat lines (tests); [None] restores stderr. *)

val set_min_interval : float -> unit
(** Seconds between heartbeat lines (default 1.0; 0 prints every step).
    @raise Invalid_argument when negative. *)

val start : what:string -> total:int -> t
(** New handle for a sweep of [total] tasks, labelled [what] in every
    line. Snapshots the cache/retry/failure counters so the heartbeat
    reports per-sweep deltas. [total <= 0] means the run is open-ended
    (a server's request stream): lines report a bare completion count
    with no "x/y" fraction and no ETA — never a division by zero or a
    negative/nonsense estimate. A known total never reports more than
    [total] done, even if stepped past it. *)

val step : t -> unit
(** Mark one task done; prints a heartbeat when enabled and the throttle
    interval has elapsed. Domain-safe. *)

val finish : t -> unit
(** Print the closing line (bypasses the throttle) when enabled. *)
