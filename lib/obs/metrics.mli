(** Named counters, gauges and histograms for the scheduler search and the
    SpMT simulator.

    Metrics are registered in a {!registry} by name; handles are cheap
    cells, so instrumentation sites pay one integer (or float) update per
    event — there is no sink to configure, and nothing is emitted unless
    the registry is explicitly dumped ({!render_table}, {!to_json}). The
    process-wide {!default} registry is what the CLI's [--metrics] flag
    prints after a subcommand runs.

    All operations are domain-safe: counters and gauges are atomic cells
    (counter totals are exact — identical at any {!Ts_base.Parallel} pool
    size), histograms take a per-histogram mutex, and registration is
    serialised per registry.

    Naming convention: dotted lower-case paths grouped by subsystem, e.g.
    [tms.attempts], [tms.slots.c1_reject], [sim.squashes]. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val default : registry
(** The process-wide registry used by built-in instrumentation. *)

val reset : registry -> unit
(** Zero every metric (registrations survive; handles stay valid). *)

val counter : registry -> string -> counter
(** Register (or fetch the existing) monotonic counter [name].
    @raise Invalid_argument if [name] is registered as a different kind. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1). @raise Invalid_argument if [by < 0] — counters
    are monotonic by construction. *)

val counter_value : counter -> int

val gauge : registry -> string -> gauge
(** A last-value-wins instantaneous measurement. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : registry -> string -> histogram
(** Running count/sum/min/max summary of an observed distribution. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val render_table : registry -> string
(** All registered metrics as an aligned {!Ts_base.Tablefmt} table, rows
    sorted by metric name. Histograms render count/mean/min/max. *)

val to_json : registry -> Json.t
(** [Obj] keyed by metric name; counters as [Int], gauges as [Float],
    histograms as [Obj {count; sum; min; max}]. Keys sorted. *)
