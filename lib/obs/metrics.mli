(** Named counters, gauges and histograms for the scheduler search and the
    SpMT simulator.

    Metrics are registered in a {!registry} by name; handles are cheap
    cells, so instrumentation sites pay one integer (or float) update per
    event — there is no sink to configure, and nothing is emitted unless
    the registry is explicitly dumped ({!render_table}, {!to_json},
    {!render_prom}). The process-wide {!default} registry is what the
    CLI's [--metrics] flag prints after a subcommand runs.

    All operations are domain-safe: counters and gauges are atomic cells
    (counter totals are exact — identical at any {!Ts_base.Parallel} pool
    size), histograms take a per-histogram mutex, and registration is
    serialised per registry.

    Histograms bucket observations on a log₂ scale (8 sub-buckets per
    octave, so quantile estimates carry at most ~9% relative error) over
    the range [2^-30, 2^34). Bucketing is a pure function of the value:
    bucket counts are identical whatever domain observed the sample and
    in whatever order, which is what makes {!merge_histogram} (and the
    [--jobs 1] vs [--jobs 4] totals) deterministic.

    Naming convention: dotted lower-case paths grouped by subsystem, e.g.
    [tms.attempts], [tms.slots.c1_reject], [sim.squashes]. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val default : registry
(** The process-wide registry used by built-in instrumentation. *)

val reset : registry -> unit
(** Zero every metric (registrations survive; handles stay valid). *)

val counter : registry -> string -> counter
(** Register (or fetch the existing) monotonic counter [name].
    @raise Invalid_argument if [name] is registered as a different kind. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1). @raise Invalid_argument if [by < 0] — counters
    are monotonic by construction. *)

val counter_value : counter -> int

val gauge : registry -> string -> gauge
(** A last-value-wins instantaneous measurement. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : registry -> string -> histogram
(** Register (or fetch) a bucketed log₂-scale histogram. *)

val observe : histogram -> float -> unit
(** Record one sample. Values below the bucket range (including zeros and
    negatives) are tracked in an underflow bucket; values above it in an
    overflow bucket; exact min/max/sum/count are kept alongside. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_mean : histogram -> float
(** Mean of all observations; [nan] when empty. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile (e.g. [0.5] for p50) from
    the bucket counts, interpolating inside the winning bucket and
    clamping to the exact recorded min/max. Relative error is bounded by
    the bucket width (~9%). Returns [nan] when the histogram is empty.
    @raise Invalid_argument when [q] is outside [0, 1]. *)

val bucket_counts : histogram -> (float * int) list
(** Non-empty buckets as [(upper bound, count)] pairs in ascending bound
    order. Underflow/overflow samples are not included. *)

val merge_histogram : src:histogram -> into:histogram -> unit
(** Add [src]'s buckets, count, sum and min/max into [into]. Bucket
    counts are order-independent, so merging per-domain histograms gives
    the same result whatever the interleaving. [src] is unchanged; a
    self-merge is a no-op. *)

val merge : src:registry -> into:registry -> unit
(** Merge every metric of [src] into the same-named metric of [into]
    (registering it if missing): counters add, histograms merge
    bucketwise, gauges keep the maximum (the only order-independent
    choice for last-value cells). A self-merge is a no-op.
    @raise Invalid_argument on a name registered with different kinds. *)

val render_table : registry -> string
(** All registered metrics as an aligned {!Ts_base.Tablefmt} table, rows
    sorted by metric name. The first three columns are always
    [name | kind | value]; histogram rows add mean/p50/p90/p99/min/max. *)

val to_json : registry -> Json.t
(** Versioned snapshot: [{"version": 2, "metrics": {...}}] with keys
    sorted; counters as [Int], gauges as [Float], histograms as objects
    with count/sum/min/max/p50/p90/p99/underflow/overflow and a sparse
    [buckets] array of [[upper bound, count]] pairs. *)

val render_prom : registry -> string
(** Prometheus text exposition (format 0.0.4) of the whole registry:
    metric names are prefixed [tsms_] and sanitised (non-alphanumerics
    become ['_']), each preceded by a [# TYPE] line. Histograms emit
    cumulative [_bucket{le="..."}] samples for every non-empty bucket
    bound plus [+Inf], then [_sum] and [_count] — ready to serve from
    ROADMAP's [tsms serve] scrape endpoint. *)
