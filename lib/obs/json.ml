type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then
        (* %.17g roundtrips; strip a trailing "." ambiguity by always
           producing a valid JSON number (OCaml never prints "1." here). *)
        Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

exception Parse_error of int * string

(* Recursive-descent parser over a string with an index ref. *)
let parse s =
  let n = String.length s in
  let i = ref 0 in
  let fail msg = raise (Parse_error (!i, msg)) in
  let peek () = if !i < n then Some s.[!i] else None in
  let advance () = incr i in
  let skip_ws () =
    while !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !i + String.length word <= n && String.sub s !i (String.length word) = word
    then begin
      i := !i + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail "unterminated string"
      else
        match s.[!i] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !i >= n then fail "unterminated escape"
             else
               match s.[!i] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !i + 4 > n then fail "short \\u escape";
                   let hex = String.sub s !i 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   i := !i + 4;
                   (* Re-encode as UTF-8; enough for validation purposes. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !i in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !i < n && is_num_char s.[!i] do
      advance ()
    done;
    let tok = String.sub s start (!i - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some v -> Int v
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let parse_member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let members = ref [ parse_member () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            members := parse_member () :: !members;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !members)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !i <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "at offset %d: %s" pos msg)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_str = function Str s -> Some s | _ -> None
