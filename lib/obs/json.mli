(** Minimal JSON values: emission for the trace/metrics sinks and a small
    parser so tests and CI can validate emitted artifacts without an
    external JSON dependency.

    Only what the observability layer needs: no streaming, no numbers
    outside OCaml's [int]/[float], object member order preserved. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Compact (single-line) rendering; strings are escaped per RFC 8259.
    Non-finite floats are rendered as [null] (JSON has no NaN/inf). *)

val to_string : t -> string

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. Numbers
    without [.], [e] or [E] parse as [Int], others as [Float]. The error
    string includes a character offset. *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks up [key]; [None] on missing key or
    non-object. *)

val to_int : t -> int option
(** [Int n] as [Some n], anything else [None]. *)

val to_str : t -> string option
