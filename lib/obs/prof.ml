(* Nested span profiling with self-time attribution.

   Each domain keeps its own stack of open frames in domain-local
   storage, so spans nest correctly inside pool workers without any
   locking on the hot path; a frame records wall-clock and Gc.quick_stat
   baselines at entry, and children report their totals into the parent
   so the parent can subtract them (self = total - children). Closed
   frames are folded into one global table under a mutex — span names
   are few, so contention is negligible next to the work being timed.

   When disabled (the default), [span] costs one atomic read. *)

type agg = {
  mutable count : int;
  mutable total_s : float;
  mutable self_s : float;
  mutable self_words : float; (* allocated words net of children *)
  mutable minor_gcs : int; (* minor collections during the span *)
  mutable major_gcs : int;
}

let enabled_flag = Atomic.make false
let started_at = Atomic.make 0.0
let table : (string, agg) Hashtbl.t = Hashtbl.create 32
let table_lock = Mutex.create ()

let enabled () = Atomic.get enabled_flag

let reset () =
  Mutex.lock table_lock;
  Hashtbl.reset table;
  Mutex.unlock table_lock;
  Atomic.set started_at (Unix.gettimeofday ())

let set_enabled b =
  if b then reset ();
  Atomic.set enabled_flag b

type frame = {
  name : string;
  t0 : float;
  words0 : float;
  minor0 : int;
  major0 : int;
  mutable child_s : float;
  mutable child_words : float;
}

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let words_now (q : Gc.stat) = q.Gc.minor_words +. q.Gc.major_words -. q.Gc.promoted_words

let account name ~total_s ~self_s ~self_words ~minor_gcs ~major_gcs =
  Mutex.lock table_lock;
  (match Hashtbl.find_opt table name with
  | Some a ->
      a.count <- a.count + 1;
      a.total_s <- a.total_s +. total_s;
      a.self_s <- a.self_s +. self_s;
      a.self_words <- a.self_words +. self_words;
      a.minor_gcs <- a.minor_gcs + minor_gcs;
      a.major_gcs <- a.major_gcs + major_gcs
  | None ->
      Hashtbl.add table name
        { count = 1; total_s; self_s; self_words; minor_gcs; major_gcs });
  Mutex.unlock table_lock

let span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let q = Gc.quick_stat () in
    let fr =
      { name; t0 = Unix.gettimeofday (); words0 = words_now q;
        minor0 = q.Gc.minor_collections; major0 = q.Gc.major_collections;
        child_s = 0.0; child_words = 0.0 }
    in
    stack := fr :: !stack;
    Fun.protect f ~finally:(fun () ->
        (match !stack with
        | top :: rest when top == fr -> stack := rest
        | _ ->
            (* A child span escaped its parent's extent (e.g. an exception
               skipped a finally); drop down to this frame to resync. *)
            let rec pop = function
              | top :: rest -> if top == fr then rest else pop rest
              | [] -> []
            in
            stack := pop !stack);
        let q1 = Gc.quick_stat () in
        let total_s = Unix.gettimeofday () -. fr.t0 in
        let words = words_now q1 -. fr.words0 in
        account name ~total_s
          ~self_s:(Float.max 0.0 (total_s -. fr.child_s))
          ~self_words:(Float.max 0.0 (words -. fr.child_words))
          ~minor_gcs:(q1.Gc.minor_collections - fr.minor0)
          ~major_gcs:(q1.Gc.major_collections - fr.major0);
        match !stack with
        | parent :: _ ->
            parent.child_s <- parent.child_s +. total_s;
            parent.child_words <- parent.child_words +. words
        | [] -> ())
  end

type row = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  self_mwords : float; (* millions of words allocated, net of children *)
  minor_gcs : int;
  major_gcs : int;
}

type report = { wall_s : float; rows : row list }

let report () =
  let wall_s = Unix.gettimeofday () -. Atomic.get started_at in
  Mutex.lock table_lock;
  let rows =
    Hashtbl.fold
      (fun name (a : agg) acc ->
        { name; count = a.count; total_s = a.total_s; self_s = a.self_s;
          self_mwords = a.self_words /. 1e6; minor_gcs = a.minor_gcs;
          major_gcs = a.major_gcs }
        :: acc)
      table []
  in
  Mutex.unlock table_lock;
  let rows =
    List.sort
      (fun a b ->
        match compare b.self_s a.self_s with 0 -> compare a.name b.name | c -> c)
      rows
  in
  { wall_s; rows }

let coverage r =
  if r.wall_s <= 0.0 then 0.0
  else List.fold_left (fun acc row -> acc +. row.self_s) 0.0 r.rows /. r.wall_s

let render_table r =
  let open Ts_base.Tablefmt in
  let t =
    create ~title:"profile"
      [ ("span", Left); ("calls", Right); ("total s", Right);
        ("self s", Right); ("self %", Right); ("alloc Mw", Right);
        ("minor gc", Right); ("major gc", Right) ]
  in
  List.iter
    (fun row ->
      add_row t
        [ row.name; string_of_int row.count;
          Printf.sprintf "%.3f" row.total_s; Printf.sprintf "%.3f" row.self_s;
          (if r.wall_s > 0.0 then
             Printf.sprintf "%.1f" (100.0 *. row.self_s /. r.wall_s)
           else "-");
          Printf.sprintf "%.2f" row.self_mwords; string_of_int row.minor_gcs;
          string_of_int row.major_gcs ])
    r.rows;
  add_sep t;
  add_row t
    [ "(wall)"; ""; Printf.sprintf "%.3f" r.wall_s; "";
      Printf.sprintf "%.1f" (100.0 *. coverage r); ""; ""; "" ];
  render t

let to_json r =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("wall_s", Json.Float r.wall_s);
      ("coverage", Json.Float (coverage r));
      ( "spans",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("name", Json.Str row.name);
                   ("count", Json.Int row.count);
                   ("total_s", Json.Float row.total_s);
                   ("self_s", Json.Float row.self_s);
                   ("self_mwords", Json.Float row.self_mwords);
                   ("minor_gcs", Json.Int row.minor_gcs);
                   ("major_gcs", Json.Int row.major_gcs);
                 ])
             r.rows) );
    ]
