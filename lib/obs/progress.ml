(* Stderr heartbeat for long sweeps.

   A progress handle counts completed steps atomically (workers step from
   their own domains); printing is throttled to one line per
   [min_interval] seconds and serialised by a mutex. Each line folds in
   the registry counters that tell an operator whether a slow sweep is
   slow because of cache misses, retries or failures. Disabled by
   default — [step] on a disabled handle is one atomic increment and one
   atomic read. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Injectable sink and throttle so tests can capture lines and drop the
   rate limit. Default: one line per second to stderr. Atomic, not a
   plain ref: workers read it from their own domains while a test (or
   the server) swaps it. *)
let sink : (string -> unit) Atomic.t = Atomic.make prerr_endline

let set_sink = function
  | Some f -> Atomic.set sink f
  | None -> Atomic.set sink prerr_endline
let min_interval = Atomic.make 1.0

let set_min_interval s =
  if s < 0.0 then invalid_arg "Progress.set_min_interval";
  Atomic.set min_interval s

type t = {
  what : string;
  total : int;
  steps : int Atomic.t;
  t0 : float;
  last_print : float Atomic.t;
  print_lock : Mutex.t;
  (* Counter values at [start], so a heartbeat reports this sweep's
     cache/retry/failure activity, not the whole process history. *)
  hits0 : int;
  misses0 : int;
  retries0 : int;
  failures0 : int;
}

let c name = Metrics.counter Metrics.default name
let cv name = Metrics.counter_value (c name)

let start ~what ~total =
  {
    what;
    total;
    steps = Atomic.make 0;
    t0 = Unix.gettimeofday ();
    last_print = Atomic.make 0.0;
    print_lock = Mutex.create ();
    hits0 = cv "persist.hits";
    misses0 = cv "persist.misses";
    retries0 = cv "supervise.retries";
    failures0 = cv "supervise.failures";
  }

let line t ~done_ ~now =
  let elapsed = now -. t.t0 in
  (* [total <= 0] means the sweep is open-ended (a server's request
     stream): there is no "x/y" fraction and no ETA to extrapolate.
     A known total that has been overshot (double-counted steps) must
     clamp rather than print a negative ETA. *)
  let progress =
    if t.total <= 0 then Printf.sprintf "%d done" done_
    else Printf.sprintf "%d/%d done" (min done_ t.total) t.total
  in
  let eta =
    if t.total > 0 && done_ > 0 && t.total > done_ then
      Printf.sprintf "%.1fs" (elapsed /. float_of_int done_ *. float_of_int (t.total - done_))
    else "-"
  in
  let hits = cv "persist.hits" - t.hits0 in
  let misses = cv "persist.misses" - t.misses0 in
  let cache =
    if hits + misses = 0 then "-"
    else Printf.sprintf "%.0f%%" (100.0 *. float_of_int hits /. float_of_int (hits + misses))
  in
  let retries = cv "supervise.retries" - t.retries0 in
  let failures = cv "supervise.failures" - t.failures0 in
  Printf.sprintf "[%s] %s, elapsed %.1fs, eta %s, cache %s, retries %d, failures %d"
    t.what progress elapsed eta cache retries failures

let maybe_print t ~final =
  if Atomic.get enabled_flag then begin
    let now = Unix.gettimeofday () in
    let last = Atomic.get t.last_print in
    if final || now -. last >= Atomic.get min_interval then begin
      Mutex.lock t.print_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.print_lock) @@ fun () ->
      (* Re-check under the lock: another worker may have just printed. *)
      let last = Atomic.get t.last_print in
      if final || now -. last >= Atomic.get min_interval then begin
        Atomic.set t.last_print now;
        (Atomic.get sink) (line t ~done_:(Atomic.get t.steps) ~now)
      end
    end
  end

let step t =
  ignore (Atomic.fetch_and_add t.steps 1);
  maybe_print t ~final:false

let finish t = maybe_print t ~final:true
