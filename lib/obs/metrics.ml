(* Domain-safety: counters and gauges are Atomic cells (counters use
   fetch-and-add, so totals are exact under any number of worker domains);
   histograms update several fields together and take a tiny per-histogram
   mutex; the registry table itself is guarded by a per-registry mutex so
   concurrent registration/reset/dump cannot corrupt it. *)

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  lock : Mutex.t;
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram
type registry = { tbl : (string, metric) Hashtbl.t; reg_lock : Mutex.t }

let create () : registry = { tbl = Hashtbl.create 32; reg_lock = Mutex.create () }
let default : registry = create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let reset reg =
  with_lock reg.reg_lock @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c 0
      | Gauge g -> Atomic.set g 0.0
      | Histogram h ->
          with_lock h.lock @@ fun () ->
          h.n <- 0;
          h.sum <- 0.0;
          h.minv <- infinity;
          h.maxv <- neg_infinity)
    reg.tbl

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register reg name make extract expected =
  with_lock reg.reg_lock @@ fun () ->
  match Hashtbl.find_opt reg.tbl name with
  | Some m -> (
      match extract m with
      | Some handle -> handle
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name m)
               expected))
  | None ->
      let handle, m = make () in
      Hashtbl.add reg.tbl name m;
      handle

let counter reg name =
  register reg name
    (fun () ->
      let c = Atomic.make 0 in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)
    "counter"

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic (by < 0)";
  ignore (Atomic.fetch_and_add c by)

let counter_value c = Atomic.get c

let gauge reg name =
  register reg name
    (fun () ->
      let g = Atomic.make 0.0 in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram reg name =
  register reg name
    (fun () ->
      let h =
        { lock = Mutex.create (); n = 0; sum = 0.0; minv = infinity;
          maxv = neg_infinity }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)
    "histogram"

let observe h v =
  with_lock h.lock @@ fun () ->
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.minv then h.minv <- v;
  if v > h.maxv then h.maxv <- v

let histogram_count h = with_lock h.lock (fun () -> h.n)
let histogram_sum h = with_lock h.lock (fun () -> h.sum)

(* Consistent (n, sum, min, max) snapshot for rendering. *)
let histogram_snapshot h =
  with_lock h.lock (fun () -> (h.n, h.sum, h.minv, h.maxv))

let sorted_bindings reg =
  with_lock reg.reg_lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) reg.tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let render_table reg =
  let open Ts_base.Tablefmt in
  let t =
    create ~title:"metrics"
      [ ("name", Left); ("kind", Left); ("value", Right); ("detail", Left) ]
  in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c ->
          add_row t [ name; "counter"; string_of_int (Atomic.get c); "" ]
      | Gauge g ->
          add_row t [ name; "gauge"; Printf.sprintf "%g" (Atomic.get g); "" ]
      | Histogram h ->
          let n, sum, minv, maxv = histogram_snapshot h in
          let detail =
            if n = 0 then "empty"
            else
              Printf.sprintf "mean=%.2f min=%g max=%g"
                (sum /. float_of_int n)
                minv maxv
          in
          add_row t [ name; "histogram"; string_of_int n; detail ])
    (sorted_bindings reg);
  render t

let to_json reg =
  Json.Obj
    (List.map
       (fun (name, m) ->
         let v =
           match m with
           | Counter c -> Json.Int (Atomic.get c)
           | Gauge g -> Json.Float (Atomic.get g)
           | Histogram h ->
               let n, sum, minv, maxv = histogram_snapshot h in
               Json.Obj
                 [
                   ("count", Json.Int n);
                   ("sum", Json.Float sum);
                   ("min", if n = 0 then Json.Null else Json.Float minv);
                   ("max", if n = 0 then Json.Null else Json.Float maxv);
                 ]
         in
         (name, v))
       (sorted_bindings reg))
