type counter = { mutable count : int }
type gauge = { mutable value : float }

type histogram = {
  mutable n : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram
type registry = (string, metric) Hashtbl.t

let create () : registry = Hashtbl.create 32
let default : registry = create ()

let reset reg =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.value <- 0.0
      | Histogram h ->
          h.n <- 0;
          h.sum <- 0.0;
          h.min <- infinity;
          h.max <- neg_infinity)
    reg

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register reg name make extract expected =
  match Hashtbl.find_opt reg name with
  | Some m -> (
      match extract m with
      | Some handle -> handle
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name m)
               expected))
  | None ->
      let handle, m = make () in
      Hashtbl.add reg name m;
      handle

let counter reg name =
  register reg name
    (fun () ->
      let c = { count = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)
    "counter"

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic (by < 0)";
  c.count <- c.count + by

let counter_value c = c.count

let gauge reg name =
  register reg name
    (fun () ->
      let g = { value = 0.0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let set_gauge g v = g.value <- v
let gauge_value g = g.value

let histogram reg name =
  register reg name
    (fun () ->
      let h = { n = 0; sum = 0.0; min = infinity; max = neg_infinity } in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)
    "histogram"

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min then h.min <- v;
  if v > h.max then h.max <- v

let histogram_count h = h.n
let histogram_sum h = h.sum

let sorted_bindings reg =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) reg []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let render_table reg =
  let open Ts_base.Tablefmt in
  let t =
    create ~title:"metrics"
      [ ("name", Left); ("kind", Left); ("value", Right); ("detail", Left) ]
  in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> add_row t [ name; "counter"; string_of_int c.count; "" ]
      | Gauge g -> add_row t [ name; "gauge"; Printf.sprintf "%g" g.value; "" ]
      | Histogram h ->
          let detail =
            if h.n = 0 then "empty"
            else
              Printf.sprintf "mean=%.2f min=%g max=%g"
                (h.sum /. float_of_int h.n)
                h.min h.max
          in
          add_row t [ name; "histogram"; string_of_int h.n; detail ])
    (sorted_bindings reg);
  render t

let to_json reg =
  Json.Obj
    (List.map
       (fun (name, m) ->
         let v =
           match m with
           | Counter c -> Json.Int c.count
           | Gauge g -> Json.Float g.value
           | Histogram h ->
               Json.Obj
                 [
                   ("count", Json.Int h.n);
                   ("sum", Json.Float h.sum);
                   ("min", if h.n = 0 then Json.Null else Json.Float h.min);
                   ("max", if h.n = 0 then Json.Null else Json.Float h.max);
                 ]
         in
         (name, v))
       (sorted_bindings reg))
