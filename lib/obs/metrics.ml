(* Domain-safety: counters and gauges are Atomic cells (counters use
   fetch-and-add, so totals are exact under any number of worker domains);
   histograms update several fields together and take a tiny per-histogram
   mutex; the registry table itself is guarded by a per-registry mutex so
   concurrent registration/reset/dump cannot corrupt it. *)

type counter = int Atomic.t
type gauge = float Atomic.t

(* Histograms bucket on a log2 scale with [sub_buckets] sub-buckets per
   octave: bucket [i] covers [2^(min_exp + i/8), 2^(min_exp + (i+1)/8)).
   Eight sub-buckets per octave bound the relative quantile error by
   2^(1/8) - 1 ~ 9%. Values below the lowest bound (including zeros,
   negatives and NaNs) land in [under]; values at or above the highest
   bound land in [over]. Bucketing is a pure function of the value, so
   bucket counts merge deterministically across domains — unlike a
   mergesort of raw samples, the result does not depend on arrival
   order. *)
let sub_buckets = 8
let min_exp = -30 (* 2^-30 ~ 9.3e-10 *)
let max_exp = 34 (* 2^34 ~ 1.7e10 *)
let n_buckets = (max_exp - min_exp) * sub_buckets
let low_cut = Float.exp2 (float_of_int min_exp)

(* Lower bound of bucket [i]; [bound n_buckets] is the top of the range. *)
let bound i =
  Float.exp2 (float_of_int ((min_exp * sub_buckets) + i) /. float_of_int sub_buckets)

let bucket_index v =
  (* floor(8 * log2 v) computed via frexp so powers of two land exactly on
     their bucket edge on every platform. *)
  let m, e = Float.frexp v in
  (* v = m * 2^e with m in [0.5, 1): log2 v = (e - 1) + log2 (2m). *)
  let frac = Float.log2 (2.0 *. m) in
  let sub = int_of_float (frac *. float_of_int sub_buckets) in
  let sub = if sub >= sub_buckets then sub_buckets - 1 else max 0 sub in
  ((e - 1 - min_exp) * sub_buckets) + sub

type histogram = {
  lock : Mutex.t;
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
  mutable under : int;
  mutable over : int;
  buckets : int array;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram
type registry = { tbl : (string, metric) Hashtbl.t; reg_lock : Mutex.t }

let create () : registry = { tbl = Hashtbl.create 32; reg_lock = Mutex.create () }
let default : registry = create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let reset reg =
  with_lock reg.reg_lock @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c 0
      | Gauge g -> Atomic.set g 0.0
      | Histogram h ->
          with_lock h.lock @@ fun () ->
          h.n <- 0;
          h.sum <- 0.0;
          h.minv <- infinity;
          h.maxv <- neg_infinity;
          h.under <- 0;
          h.over <- 0;
          Array.fill h.buckets 0 n_buckets 0)
    reg.tbl

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register reg name make extract expected =
  with_lock reg.reg_lock @@ fun () ->
  match Hashtbl.find_opt reg.tbl name with
  | Some m -> (
      match extract m with
      | Some handle -> handle
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name m)
               expected))
  | None ->
      let handle, m = make () in
      Hashtbl.add reg.tbl name m;
      handle

let counter reg name =
  register reg name
    (fun () ->
      let c = Atomic.make 0 in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)
    "counter"

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic (by < 0)";
  ignore (Atomic.fetch_and_add c by)

let counter_value c = Atomic.get c

let gauge reg name =
  register reg name
    (fun () ->
      let g = Atomic.make 0.0 in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram reg name =
  register reg name
    (fun () ->
      let h =
        { lock = Mutex.create (); n = 0; sum = 0.0; minv = infinity;
          maxv = neg_infinity; under = 0; over = 0;
          buckets = Array.make n_buckets 0 }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)
    "histogram"

let observe h v =
  with_lock h.lock @@ fun () ->
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.minv then h.minv <- v;
  if v > h.maxv then h.maxv <- v;
  if not (v >= low_cut) then h.under <- h.under + 1
  else
    let i = bucket_index v in
    if i >= n_buckets then h.over <- h.over + 1 else h.buckets.(i) <- h.buckets.(i) + 1

let histogram_count h = with_lock h.lock (fun () -> h.n)
let histogram_sum h = with_lock h.lock (fun () -> h.sum)

let histogram_mean h =
  with_lock h.lock (fun () ->
      if h.n = 0 then Float.nan else h.sum /. float_of_int h.n)

(* Quantile estimate from the bucket counts: find the bucket holding the
   ceil(q*n)-th smallest sample and interpolate linearly inside it, then
   clamp to the recorded min/max (which are exact). Must be called with
   the histogram lock held. *)
let quantile_locked h q =
  if h.n = 0 then Float.nan
    (* The extremes are tracked exactly; don't round them through a
       bucket. *)
  else if q <= 0.0 then h.minv
  else if q >= 1.0 then h.maxv
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.n))) in
    let rank = min rank h.n in
    if rank <= h.under then h.minv
    else begin
      let cum = ref h.under in
      let res = ref None in
      (try
         for i = 0 to n_buckets - 1 do
           let c = h.buckets.(i) in
           if c > 0 then begin
             cum := !cum + c;
             if rank <= !cum then begin
               let lo = bound i and hi = bound (i + 1) in
               let frac = 1.0 -. (float_of_int (!cum - rank) /. float_of_int c) in
               res := Some (lo +. ((hi -. lo) *. frac));
               raise Exit
             end
           end
         done
       with Exit -> ());
      match !res with
      | Some v -> Float.min h.maxv (Float.max h.minv v)
      | None -> h.maxv (* rank fell in the overflow bucket *)
    end
  end

let quantile h q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Metrics.quantile: q must be in [0, 1]";
  with_lock h.lock (fun () -> quantile_locked h q)

let bucket_counts h =
  with_lock h.lock @@ fun () ->
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then acc := (bound (i + 1), h.buckets.(i)) :: !acc
  done;
  !acc

let merge_histogram ~src ~into =
  if src != into then begin
    (* Snapshot src first, then fold into dst: taking both locks at once
       would need a global order to stay deadlock-free. *)
    let n, sum, minv, maxv, under, over, buckets =
      with_lock src.lock (fun () ->
          (src.n, src.sum, src.minv, src.maxv, src.under, src.over,
           Array.copy src.buckets))
    in
    if n > 0 then
      with_lock into.lock @@ fun () ->
      into.n <- into.n + n;
      into.sum <- into.sum +. sum;
      if minv < into.minv then into.minv <- minv;
      if maxv > into.maxv then into.maxv <- maxv;
      into.under <- into.under + under;
      into.over <- into.over + over;
      for i = 0 to n_buckets - 1 do
        into.buckets.(i) <- into.buckets.(i) + buckets.(i)
      done
  end

let sorted_bindings reg =
  with_lock reg.reg_lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) reg.tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge ~src ~into =
  if src != into then
    List.iter
      (fun (name, m) ->
        match m with
        | Counter c ->
            let v = Atomic.get c in
            if v > 0 then incr ~by:v (counter into name)
        | Gauge g ->
            (* Gauges are last-value-wins; across registries the best we
               can do deterministically is take the max. *)
            let v = Atomic.get g in
            let dst = gauge into name in
            if v > Atomic.get dst then Atomic.set dst v
        | Histogram h -> merge_histogram ~src:h ~into:(histogram into name))
      (sorted_bindings src)

let fmt_stat v =
  if Float.is_nan v then "-" else Printf.sprintf "%.4g" v

let render_table reg =
  let open Ts_base.Tablefmt in
  let t =
    create ~title:"metrics"
      [ ("name", Left); ("kind", Left); ("value", Right); ("mean", Right);
        ("p50", Right); ("p90", Right); ("p99", Right); ("min", Right);
        ("max", Right) ]
  in
  let blank = [ ""; ""; ""; ""; "" ] in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c ->
          add_row t ([ name; "counter"; string_of_int (Atomic.get c); "" ] @ blank)
      | Gauge g ->
          add_row t
            ([ name; "gauge"; Printf.sprintf "%g" (Atomic.get g); "" ] @ blank)
      | Histogram h ->
          let n, sum, minv, maxv, p50, p90, p99 =
            with_lock h.lock (fun () ->
                (h.n, h.sum, h.minv, h.maxv, quantile_locked h 0.50,
                 quantile_locked h 0.90, quantile_locked h 0.99))
          in
          if n = 0 then add_row t ([ name; "histogram"; "0"; "-" ] @ blank)
          else
            add_row t
              [ name; "histogram"; string_of_int n;
                fmt_stat (sum /. float_of_int n); fmt_stat p50; fmt_stat p90;
                fmt_stat p99; fmt_stat minv; fmt_stat maxv ])
    (sorted_bindings reg);
  render t

let json_version = 2

let histogram_json h =
  let n, sum, minv, maxv, p50, p90, p99, under, over, buckets =
    with_lock h.lock (fun () ->
        let nz = ref [] in
        for i = n_buckets - 1 downto 0 do
          if h.buckets.(i) > 0 then nz := (bound (i + 1), h.buckets.(i)) :: !nz
        done;
        (h.n, h.sum, h.minv, h.maxv, quantile_locked h 0.50,
         quantile_locked h 0.90, quantile_locked h 0.99, h.under, h.over, !nz))
  in
  let stat v = if n = 0 then Json.Null else Json.Float v in
  Json.Obj
    [
      ("count", Json.Int n);
      ("sum", Json.Float sum);
      ("min", stat minv);
      ("max", stat maxv);
      ("p50", stat p50);
      ("p90", stat p90);
      ("p99", stat p99);
      ("underflow", Json.Int under);
      ("overflow", Json.Int over);
      ( "buckets",
        Json.List
          (List.map
             (fun (le, c) -> Json.List [ Json.Float le; Json.Int c ])
             buckets) );
    ]

let to_json reg =
  Json.Obj
    [
      ("version", Json.Int json_version);
      ( "metrics",
        Json.Obj
          (List.map
             (fun (name, m) ->
               let v =
                 match m with
                 | Counter c -> Json.Int (Atomic.get c)
                 | Gauge g -> Json.Float (Atomic.get g)
                 | Histogram h -> histogram_json h
               in
               (name, v))
             (sorted_bindings reg)) );
    ]

(* Prometheus text exposition (version 0.0.4): one [# TYPE] line per
   metric, names prefixed [tsms_] with non-[a-zA-Z0-9_] mapped to '_'.
   Histogram buckets are cumulative and sparse — only bucket bounds that
   hold samples are emitted, plus the mandatory [+Inf]. *)
let prom_name name =
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    match Bytes.get b i with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
    | _ -> Bytes.set b i '_'
  done;
  "tsms_" ^ Bytes.to_string b

let prom_float v = Printf.sprintf "%.9g" v

let render_prom reg =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      let pname = prom_name name in
      match m with
      | Counter c ->
          Printf.bprintf buf "# TYPE %s counter\n%s %d\n" pname pname
            (Atomic.get c)
      | Gauge g ->
          Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" pname pname
            (prom_float (Atomic.get g))
      | Histogram h ->
          let n, sum, under, buckets =
            with_lock h.lock (fun () ->
                let nz = ref [] in
                for i = n_buckets - 1 downto 0 do
                  if h.buckets.(i) > 0 then
                    nz := (bound (i + 1), h.buckets.(i)) :: !nz
                done;
                (h.n, h.sum, h.under, !nz))
          in
          Printf.bprintf buf "# TYPE %s histogram\n" pname;
          let cum = ref under in
          List.iter
            (fun (le, c) ->
              cum := !cum + c;
              Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" pname
                (prom_float le) !cum)
            buckets;
          Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" pname n;
          Printf.bprintf buf "%s_sum %s\n" pname (prom_float sum);
          Printf.bprintf buf "%s_count %d\n" pname n)
    (sorted_bindings reg);
  Buffer.contents buf

(* Pool telemetry: [Ts_base.Parallel] sits below this library, so it
   reports raw worker events through an injected observer and we feed
   them into [pool.*] metrics here. Installed at module initialisation —
   Metrics is linked into every binary that uses the pool. *)
let () =
  let task_ms = histogram default "pool.task_ms" in
  let busy_ms = histogram default "pool.worker_busy_ms" in
  let tasks = counter default "pool.tasks" in
  let steals = counter default "pool.steals" in
  let idle_waits = counter default "pool.idle_waits" in
  let idle_ms = histogram default "pool.idle_ms" in
  Ts_base.Parallel.set_observer
    (Some
       (function
         | Ts_base.Parallel.Task_done { wall_s; _ } ->
             incr tasks;
             observe task_ms (wall_s *. 1000.0)
         | Ts_base.Parallel.Worker_exit { busy_s; _ } ->
             observe busy_ms (busy_s *. 1000.0)
         | Ts_base.Parallel.Steal _ -> incr steals
         | Ts_base.Parallel.Idle { wait_s; _ } ->
             incr idle_waits;
             observe idle_ms (wait_s *. 1000.0)))
