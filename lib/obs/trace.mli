(** Structured span/event tracing for the TMS search and the SpMT
    simulator.

    A tracer either is the {!null} sink — every emit is a single pattern
    match and returns, so instrumentation can stay unconditionally wired
    into hot paths — or writes events to a buffer/channel in one of two
    formats:

    - {!Chrome}: a JSON array of Chrome trace-event objects ([ph] in
      [B]/[E]/[i]/[C]/[M]), loadable in Perfetto or [chrome://tracing].
      Spans go on [(pid, tid)] tracks; the simulator uses one track per
      core with timestamps in cycles (shown as microseconds by the viewer).
    - {!Jsonl}: the same event objects, one per line, no enclosing array —
      greppable and streamable, used for the TMS search log.

    Timestamps are caller-supplied integers (simulation cycles). Code with
    no natural clock (the schedulers) can draw monotonically increasing
    logical timestamps from {!tick}.

    Tracers must be {!close}d: the Chrome format needs its closing bracket,
    and file-backed sinks hold an [out_channel].

    Active tracers are domain-safe: {!tick} is an atomic counter (unique,
    monotonic timestamps across pool workers) and event writes are
    serialised by a per-trace mutex, so a sweep under [--jobs N] can hand
    one tracer to every worker and still produce a valid event stream
    (event order across domains follows the lock, not the ticks). *)

type t

type format = Chrome | Jsonl

val null : t
(** Discards everything; emitting to it costs one branch. *)

val enabled : t -> bool
(** [false] exactly for {!null}. Guard expensive argument construction:
    [if Trace.enabled tr then ...]. *)

val to_buffer : ?format:format -> Buffer.t -> t
(** Collect events into [buf] (default {!Chrome}); used by tests. *)

val to_file : ?format:format -> string -> t
(** Open [path] for writing (default {!Chrome}).
    @raise Sys_error if the file cannot be opened. *)

val close : t -> unit
(** Flush, write the Chrome closing bracket, and release the sink (no-op
    for {!null}; idempotent). Emitting after [close] is an error. *)

val tick : t -> int
(** Next value of the tracer's logical clock (starts at 0, advances by 1
    per call; always 0 on {!null}). *)

val begin_span :
  t -> ?pid:int -> ?tid:int -> ?args:(string * Json.t) list -> ts:int ->
  string -> unit
(** Open a duration span named [name] on track [(pid, tid)] (defaults 0).
    Every [begin_span] must be matched by an {!end_span} on the same
    track. *)

val end_span : t -> ?pid:int -> ?tid:int -> ts:int -> string -> unit

val instant :
  t -> ?pid:int -> ?tid:int -> ?args:(string * Json.t) list -> ts:int ->
  string -> unit
(** A zero-duration marker (thread-scoped). *)

val counter_sample :
  t -> ?pid:int -> ?tid:int -> ts:int -> string -> (string * float) list ->
  unit
(** A [ph:"C"] sample: Perfetto renders each series as a stacked area
    chart under the named counter track. *)

val process_name : t -> ?pid:int -> string -> unit
(** Metadata: label process [pid] in the viewer (e.g. one process per
    simulated scheduler variant). *)

val thread_name : t -> ?pid:int -> ?tid:int -> string -> unit
(** Metadata: label track [(pid, tid)] (e.g. ["core 2"]). *)
