type selected = {
  bench : string;
  loops : Ts_ddg.Ddg.t list;
  coverage : float;
  trip : int;
}

let rec make_loop ?(attempt = 0) ~bench ~index ~profile () =
  let rng =
    Ts_base.Rng.of_string
      (Printf.sprintf "doacross/%s/%d/try%d" bench index attempt)
  in
  let g = Gen.generate rng profile in
  (* as in Spec_suite: redraw the rare body the swing ordering cannot
     schedule at any II (GCC would skip such a loop) *)
  if attempt >= 6 then g
  else
    match Ts_sms.Sms.schedule g with
    | (_ : Ts_sms.Sms.result) -> g
    | exception Ts_sms.Sms.No_schedule _ ->
        make_loop ~attempt:(attempt + 1) ~bench ~index ~profile ()

(* Table 3 row: 4 loops, 27 inst, 3 SCCs, MII 11, LDP 29, LC 21.6%. The
   paper notes art's selected MIIs are resource-constrained: these are
   multiply-heavy dot-product kernels, so the single multiplier sets
   ResII near 11 while the recurrences stay small. *)
let art =
  {
    bench = "art";
    loops =
      List.init 4 (fun i ->
          make_loop ~bench:"art" ~index:i
            ~profile:
              {
                Gen.default_profile with
                Gen.name = Printf.sprintf "art_sel%d" i;
                n_inst = 27;
                mem_frac = 0.25;
                fp_frac = 0.8;
                fmul_frac = 0.65;
                target_rec_ii = None;
                n_extra_sccs = 3;
                ldp_target = Some 29;
                mem_prob = (0.0001, 0.0006);
                mem_dep_rate = 1.0;
                self_loop_rate = 0.0;
              }
            ());
    coverage = 0.216;
    trip = 600;
  }

(* 1 loop, 82 inst, 3 SCCs, MII 20 (resource-bound), LDP 26, LC 58.5%.
   Speculation matters here (Section 5.2: -19% without it), so its memory
   dependences get non-trivial (but still small) probabilities. *)
let equake =
  {
    bench = "equake";
    loops =
      [
        make_loop ~bench:"equake" ~index:0
          ~profile:
            {
              Gen.default_profile with
              Gen.name = "equake_sel0";
              n_inst = 82;
              target_rec_ii = None;
              n_extra_sccs = 3;
              ldp_target = Some 26;
              mem_prob = (0.0001, 0.0005);
              mem_dep_rate = 1.0;
              self_loop_rate = 0.0;
            }
          ();
      ];
    coverage = 0.585;
    trip = 600;
  }

(* 1 loop, 102 inst, 8 SCCs, MII 62 (a big always-taken recurrence), LDP
   89, LC 33.4%. The paper notes its largest SCC is formed by flow
   dependences with probability 1; we build it from register flow
   dependences, which are always enforced. *)
let lucas =
  {
    bench = "lucas";
    loops =
      [
        make_loop ~bench:"lucas" ~index:0
          ~profile:
            {
              Gen.default_profile with
              Gen.name = "lucas_sel0";
              n_inst = 102;
              target_rec_ii = Some 58;
              n_extra_sccs = 8;
              ldp_target = Some 89;
              mem_prob = (0.0001, 0.0004);
              mem_dep_rate = 0.6;
              self_loop_rate = 0.0;
            }
          ();
      ];
    coverage = 0.334;
    trip = 400;
  }

(* 1 loop, 72 inst, 3 SCCs, MII 18 (resource-bound), LDP 34, LC 14.3%.
   Also speculation-sensitive (-21.4% without it). *)
let fma3d =
  {
    bench = "fma3d";
    loops =
      [
        make_loop ~bench:"fma3d" ~index:0
          ~profile:
            {
              Gen.default_profile with
              Gen.name = "fma3d_sel0";
              n_inst = 72;
              target_rec_ii = None;
              n_extra_sccs = 3;
              ldp_target = Some 34;
              mem_prob = (0.00006, 0.0003);
              mem_dep_rate = 1.6;
              self_loop_rate = 0.0;
            }
          ();
      ];
    coverage = 0.143;
    trip = 600;
  }

let all = [ art; equake; lucas; fma3d ]
