type bench = {
  name : string;
  n_loops : int;
  avg_inst : float;
  avg_mii : float;
  coverage : float;
  rec_frac : float;
  mem_prob : float * float;
  trip : int;
  fp_frac : float;
  fmul_frac : float;
}

(* Columns 2-4 from Table 2. [coverage] is a documented synthetic constant
   (the paper does not report per-benchmark loop coverage for Table 2);
   [rec_frac] encodes the paper's qualitative notes: art is
   recurrence-bound (its MII is well above #inst/width), wupwise has one
   dominant SCC, most others are resource-bound.

   [mem_prob] ranges are calibrated to the SPECfp2000 profile regime the
   paper reports (§7.9(b)): per-dependence misspeculation probabilities
   of a few 0.01%, so simulated squash rates over the suite land below
   0.1% of committed iterations (Section 5.2) while the dependences stay
   frequent enough that C2 and dependence preservation remain live. *)
let benchmarks =
  [
    { name = "wupwise"; n_loops = 16; avg_inst = 16.2; avg_mii = 4.4;
      coverage = 0.40; rec_frac = 0.35; mem_prob = (0.0001, 0.0006); trip = 400; fp_frac = 0.6; fmul_frac = 0.28 };
    { name = "swim"; n_loops = 11; avg_inst = 25.7; avg_mii = 6.0;
      coverage = 0.55; rec_frac = 0.10; mem_prob = (0.0001, 0.0006); trip = 400; fp_frac = 0.6; fmul_frac = 0.28 };
    { name = "mgrid"; n_loops = 10; avg_inst = 34.3; avg_mii = 8.3;
      coverage = 0.60; rec_frac = 0.10; mem_prob = (0.0001, 0.0006); trip = 400; fp_frac = 0.6; fmul_frac = 0.28 };
    { name = "applu"; n_loops = 41; avg_inst = 46.8; avg_mii = 11.9;
      coverage = 0.45; rec_frac = 0.20; mem_prob = (0.0001, 0.0006); trip = 400; fp_frac = 0.6; fmul_frac = 0.28 };
    { name = "mesa"; n_loops = 51; avg_inst = 24.3; avg_mii = 5.7;
      coverage = 0.30; rec_frac = 0.10; mem_prob = (0.0001, 0.0006); trip = 400; fp_frac = 0.6; fmul_frac = 0.28 };
    { name = "art"; n_loops = 10; avg_inst = 16.1; avg_mii = 7.6;
      (* art is multiplier-bound (dot-product kernels): its MII sits well
         above #inst/width without being recurrence-limited *)
      coverage = 0.45; rec_frac = 0.15; mem_prob = (0.0001, 0.0005); trip = 400;
      fp_frac = 0.85; fmul_frac = 0.70 };
    { name = "equake"; n_loops = 5; avg_inst = 43.6; avg_mii = 11.4;
      coverage = 0.60; rec_frac = 0.30; mem_prob = (0.0001, 0.0005); trip = 400; fp_frac = 0.6; fmul_frac = 0.28 };
    { name = "facerec"; n_loops = 26; avg_inst = 31.7; avg_mii = 8.0;
      coverage = 0.45; rec_frac = 0.15; mem_prob = (0.0001, 0.0006); trip = 400; fp_frac = 0.6; fmul_frac = 0.28 };
    { name = "ammp"; n_loops = 11; avg_inst = 35.6; avg_mii = 9.6;
      coverage = 0.30; rec_frac = 0.30; mem_prob = (0.0001, 0.0006); trip = 400; fp_frac = 0.6; fmul_frac = 0.28 };
    { name = "lucas"; n_loops = 24; avg_inst = 169.6; avg_mii = 42.2;
      coverage = 0.35; rec_frac = 0.30; mem_prob = (0.0001, 0.0006); trip = 200; fp_frac = 0.6; fmul_frac = 0.28 };
    { name = "fma3d"; n_loops = 170; avg_inst = 29.0; avg_mii = 7.3;
      coverage = 0.25; rec_frac = 0.15; mem_prob = (0.0001, 0.0005); trip = 400; fp_frac = 0.6; fmul_frac = 0.28 };
    { name = "sixtrack"; n_loops = 340; avg_inst = 41.2; avg_mii = 10.7;
      coverage = 0.35; rec_frac = 0.20; mem_prob = (0.0001, 0.0006); trip = 400; fp_frac = 0.6; fmul_frac = 0.28 };
    { name = "apsi"; n_loops = 63; avg_inst = 29.0; avg_mii = 7.7;
      coverage = 0.40; rec_frac = 0.20; mem_prob = (0.0001, 0.0006); trip = 400; fp_frac = 0.6; fmul_frac = 0.28 };
  ]

let find name = List.find (fun b -> b.name = name) benchmarks

let total_loops = List.fold_left (fun acc b -> acc + b.n_loops) 0 benchmarks

let rec loop_of ?(attempt = 0) bench index =
  let rng =
    Ts_base.Rng.of_string
      (Printf.sprintf "spec/%s/loop%d/try%d" bench.name index attempt)
  in
  (* instruction count: uniform within +-40% of the benchmark average *)
  let spread = 0.4 in
  let lo = int_of_float (bench.avg_inst *. (1.0 -. spread)) in
  let hi = int_of_float (bench.avg_inst *. (1.0 +. spread)) in
  let n_inst = max 6 (Ts_base.Rng.int_in rng lo (max lo hi)) in
  let recurrence = Ts_base.Rng.bool rng bench.rec_frac in
  let target_rec_ii =
    if recurrence then
      (* scale the benchmark's MII target to this loop's size *)
      let scaled = bench.avg_mii *. float_of_int n_inst /. bench.avg_inst in
      Some (max 2 (int_of_float (Float.round scaled)))
    else None
  in
  let profile =
    {
      Gen.default_profile with
      Gen.name = Printf.sprintf "%s_%d" bench.name index;
      n_inst;
      target_rec_ii;
      mem_prob = bench.mem_prob;
      fp_frac = bench.fp_frac;
      fmul_frac = bench.fmul_frac;
      self_loop_rate = (if recurrence then 0.10 else 0.12);
      n_extra_sccs = (if recurrence then Ts_base.Rng.int rng 2 else 0);
    }
  in
  let g = Gen.generate rng profile in
  (* The paper's 778 loops are exactly those GCC's modulo scheduler
     accepts; mirror that by redrawing the rare body SMS cannot schedule
     (diamond patterns can make the swing ordering paint itself into a
     corner at every II, in which case GCC simply skips the loop). *)
  if attempt >= 6 then g
  else
    match Ts_sms.Sms.schedule g with
    | (_ : Ts_sms.Sms.result) -> g
    | exception Ts_sms.Sms.No_schedule _ ->
        loop_of ~attempt:(attempt + 1) bench index

let loops bench = List.init bench.n_loops (fun i -> loop_of bench i)
