type profile = {
  name : string;
  machine : Ts_isa.Machine.t;
  n_inst : int;
  mem_frac : float;
  fp_frac : float;
  fmul_frac : float;
  fanin : float;
  self_loop_rate : float;
  target_rec_ii : int option;
  n_extra_sccs : int;
  mem_dep_rate : float;
  mem_prob : float * float;
  mem_rec : bool;
  ldp_target : int option;
}

let default_profile =
  {
    name = "loop";
    machine = Ts_isa.Machine.spmt_core;
    n_inst = 24;
    mem_frac = 0.3;
    fp_frac = 0.6;
    fmul_frac = 0.28;
    fanin = 1.4;
    self_loop_rate = 0.12;
    target_rec_ii = None;
    n_extra_sccs = 0;
    mem_dep_rate = 0.5;
    mem_prob = (0.0001, 0.0006);
    mem_rec = false;
    ldp_target = None;
  }

(* Forward reachability over all edges recorded so far. *)
let reaches edges n src dst =
  let adj = Array.make n [] in
  List.iter (fun (u, v, _, _) -> adj.(u) <- v :: adj.(u)) edges;
  let seen = Array.make n false in
  let rec go u =
    if u = dst then true
    else if seen.(u) then false
    else begin
      seen.(u) <- true;
      List.exists go adj.(u)
    end
  in
  go src

let generate rng p =
  let open Ts_isa.Opcode in
  let n = max 4 p.n_inst in
  (* --- opcode layout: loads early, stores late, compute in between --- *)
  let n_mem = max 2 (int_of_float (Float.round (p.mem_frac *. float_of_int n))) in
  let n_store = max 1 (n_mem / 3) in
  let n_load = max 1 (n_mem - n_store) in
  let n_rest = n - n_load - n_store in
  let n_fp = int_of_float (Float.round (p.fp_frac *. float_of_int n_rest)) in
  let ops = Array.make n Ialu in
  (* loads into the first 60%, stores into the last 30% *)
  let place count op lo hi =
    let placed = ref 0 in
    let guard = ref 0 in
    while !placed < count && !guard < 10_000 do
      incr guard;
      let i = Ts_base.Rng.int_in rng lo (max lo hi) in
      if ops.(i) = Ialu then begin
        ops.(i) <- op;
        incr placed
      end
    done;
    (* fall back to a linear sweep if the random probes kept colliding *)
    let i = ref 0 in
    while !placed < count && !i < n do
      if ops.(!i) = Ialu then begin
        ops.(!i) <- op;
        incr placed
      end;
      incr i
    done
  in
  place n_load Load 0 (max 0 ((n * 3 / 5) - 1));
  place n_store Store (n * 7 / 10) (n - 1);
  let fp_placed = ref 0 in
  for i = 0 to n - 1 do
    if ops.(i) = Ialu && !fp_placed < n_fp then begin
      if Ts_base.Rng.bool rng (p.fp_frac *. 1.2) then begin
        ops.(i) <- (if Ts_base.Rng.bool rng p.fmul_frac then Fmul else Fadd);
        incr fp_placed
      end
    end
  done;
  (* occasional integer multiply in the remaining ALU ops *)
  for i = 0 to n - 1 do
    if ops.(i) = Ialu && Ts_base.Rng.bool rng 0.05 then ops.(i) <- Imul
  done;
  let lat op = Ts_isa.Machine.latency p.machine op in
  let producer_ok i = ops.(i) <> Store in
  (* --- register flow edges (distance 0, forward only) --- *)
  let edges = ref [] in
  (* (src, dst, dist, kind) with kind: 0 = reg, 1 = mem; probs tracked apart *)
  let edge_set = Hashtbl.create 64 in
  (* Incremental latency depth (edges are added in roughly ascending id
     order, so this tracks the true longest path closely); used to cap the
     LDP at [ldp_target]. *)
  let depth = Array.init n (fun i -> lat ops.(i)) in
  let ldp_cap = match p.ldp_target with Some t -> t | None -> max_int in
  let add_edge src dst dist kind =
    let key = (src, dst, dist, kind) in
    if not (Hashtbl.mem edge_set key) then begin
      Hashtbl.replace edge_set key ();
      if dist = 0 && kind = 0 then
        depth.(dst) <- max depth.(dst) (depth.(src) + lat ops.(dst));
      edges := (src, dst, dist, kind) :: !edges
    end
  in
  (* --- the main recurrence circuit, if requested (built first so the
     depth cap on random edges accounts for it) --- *)
  let in_circuit = Array.make n false in
  (match p.target_rec_ii with
  | None -> ()
  | Some target ->
      let start = Ts_base.Rng.int rng (max 1 (n / 3)) in
      let members = ref [] in
      let acc = ref 0 in
      let i = ref start in
      (* keep loads off the circuit: a recurrence through memory would see
         its latency inflated by cache misses at run time, whereas real
         DOACROSS recurrences are arithmetic chains *)
      while !acc < target && !i < n do
        if producer_ok !i && ops.(!i) <> Load then begin
          members := !i :: !members;
          acc := !acc + lat ops.(!i)
        end;
        incr i
      done;
      (match List.rev !members with
      | [] | [ _ ] -> ()
      | first :: _ as ms ->
          List.iter (fun v -> in_circuit.(v) <- true) ms;
          let rec chain = function
            | a :: (b :: _ as rest) ->
                add_edge a b 0 0;
                chain rest
            | [ last ] -> add_edge last first 1 0
            | [] -> ()
          in
          chain ms));
  (* --- random register flow edges (distance 0, forward only) --- *)
  let pick_producer v =
    (* Half local (recently computed values), half uniform (loop-invariant
       style reuse): the uniform component keeps dependence chains shallow,
       as in real loop bodies where most instructions hang directly off a
       load or an induction variable. The depth guard enforces the LDP
       cap. *)
    let rec try_pick attempts =
      if attempts = 0 then None
      else begin
        let u =
          if Ts_base.Rng.bool rng 0.5 then v - 1 - Ts_base.Rng.int rng (max 1 (min v 8))
          else Ts_base.Rng.int rng v
        in
        if u >= 0 && producer_ok u && depth.(u) + lat ops.(v) <= ldp_cap then Some u
        else try_pick (attempts - 1)
      end
    in
    try_pick 8
  in
  for v = 1 to n - 1 do
    let wanted =
      1 + (if Ts_base.Rng.bool rng (Float.max 0.0 (p.fanin -. 1.0)) then 1 else 0)
    in
    (* Circuit members take no random inputs: any extra path entering the
       circuit would combine with its back edge into a longer recurrence
       than the one we calibrated (and drag loads onto the critical
       cycle). *)
    for _ = 1 to wanted do
      match pick_producer v with
      | Some u -> if not in_circuit.(v) then add_edge u v 0 0
      | None -> ()
    done
  done;
  (* --- accumulators --- *)
  for v = 0 to n - 1 do
    if
      producer_ok v && ops.(v) <> Load && (not in_circuit.(v))
      && Ts_base.Rng.bool rng p.self_loop_rate
    then add_edge v v 1 0
  done;
  (* --- extra small recurrences: accumulator self-loops on distinct nodes --- *)
  let extra = ref p.n_extra_sccs in
  let guard = ref 0 in
  while !extra > 0 && !guard < 1000 do
    incr guard;
    let v = Ts_base.Rng.int rng n in
    if producer_ok v && ops.(v) <> Load && not in_circuit.(v)
       && not (Hashtbl.mem edge_set (v, v, 1, 0))
    then begin
      add_edge v v 1 0;
      decr extra
    end
  done;
  (* --- top up the longest dependence path to its target --- *)
  (match p.ldp_target with
  | None -> ()
  | Some target ->
      let deepest () =
        (* deepest register-producing node (stores cannot start a chain) *)
        let best = ref (-1) in
        for i = 0 to n - 1 do
          if producer_ok i && (!best = -1 || depth.(i) > depth.(!best)) then best := i
        done;
        !best
      in
      let guard = ref 0 in
      let continue_ = ref true in
      while !continue_ && !guard < 4 * n do
        incr guard;
        let d = deepest () in
        if d = -1 || depth.(d) >= target then continue_ := false
        else begin
          (* extend from the deepest node to a later, shallow, off-circuit
             node *)
          let cand = ref (-1) in
          for v = d + 1 to n - 1 do
            if !cand = -1 && (not in_circuit.(v))
               && depth.(d) + lat ops.(v) <= target + 4
            then cand := v
          done;
          if !cand = -1 then continue_ := false else add_edge d !cand 0 0
        end
      done);
  (* --- cross-iteration memory dependences --- *)
  let loads = List.filter (fun i -> ops.(i) = Load) (List.init n Fun.id) in
  let stores = List.filter (fun i -> ops.(i) = Store) (List.init n Fun.id) in
  let loads_arr = Array.of_list loads in
  let probs = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let count =
        (if Ts_base.Rng.bool rng (Float.min 1.0 p.mem_dep_rate) then 1 else 0)
        + (if Ts_base.Rng.bool rng (Float.max 0.0 (p.mem_dep_rate -. 1.0)) then 1 else 0)
      in
      for _ = 1 to count do
        if Array.length loads_arr > 0 then begin
          let l = Ts_base.Rng.pick rng loads_arr in
          let dist = if Ts_base.Rng.bool rng 0.8 then 1 else 2 in
          let lo, hi = p.mem_prob in
          let prob = lo +. Ts_base.Rng.float rng (hi -. lo) in
          let creates_cycle = reaches !edges n l s in
          if (p.mem_rec || not creates_cycle)
             && not (Hashtbl.mem edge_set (s, l, dist, 1))
          then begin
            add_edge s l dist 1;
            Hashtbl.replace probs (s, l, dist) prob
          end
        end
      done)
    stores;
  (* --- materialise --- *)
  let b = Ts_ddg.Ddg.Builder.create ~name:p.name p.machine in
  Array.iter (fun op -> ignore (Ts_ddg.Ddg.Builder.add b op)) ops;
  List.iter
    (fun (src, dst, dist, kind) ->
      if kind = 0 then Ts_ddg.Ddg.Builder.dep b ~dist src dst
      else
        let prob = try Hashtbl.find probs (src, dst, dist) with Not_found -> 0.01 in
        Ts_ddg.Ddg.Builder.mem_dep b ~dist ~prob src dst)
    (List.rev !edges);
  Ts_ddg.Ddg.Builder.build b
