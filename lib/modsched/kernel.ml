type t = {
  g : Ts_ddg.Ddg.t;
  ii : int;
  time : int array;
  row : int array;
  stage : int array;
  n_stages : int;
}

let check_constraints (g : Ts_ddg.Ddg.t) ~ii time =
  Array.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      let lhs = time.(e.dst) and rhs = time.(e.src) + Ts_ddg.Ddg.latency g e.src - (ii * e.distance) in
      if lhs < rhs then
        invalid_arg
          (Printf.sprintf
             "Kernel: dependence %s -> %s violated (t=%d < %d) at ii=%d"
             (Ts_ddg.Ddg.node g e.src).name (Ts_ddg.Ddg.node g e.dst).name lhs rhs ii))
    g.edges

let check_resources (g : Ts_ddg.Ddg.t) ~ii time =
  let mrt = Mrt.create g.machine ~ii in
  Array.iteri
    (fun v cycle ->
      let op = (Ts_ddg.Ddg.node g v).op in
      if not (Mrt.fits mrt op ~cycle) then
        invalid_arg
          (Printf.sprintf "Kernel: resource overflow at cycle %d (node %s)" cycle
             (Ts_ddg.Ddg.node g v).name);
      Mrt.reserve mrt op ~cycle)
    time

let of_times g ~ii raw =
  if Array.length raw <> Ts_ddg.Ddg.n_nodes g then
    invalid_arg "Kernel.of_times: time array size mismatch";
  if Array.length raw = 0 then invalid_arg "Kernel.of_times: empty loop";
  check_constraints g ~ii raw;
  check_resources g ~ii raw;
  let mint = Array.fold_left min raw.(0) raw in
  (* Normalise by a multiple of II: rows and stage differences (hence d_ker
     and sync) are then identical to those computed on the raw schedule
     times, which lets TMS's incremental admission checks agree exactly
     with the final kernel's metrics. *)
  let base = ii * Ts_base.Intmath.div_floor mint ii in
  let time = Array.map (fun c -> c - base) raw in
  let row = Array.map (fun c -> Ts_base.Intmath.modulo c ii) time in
  let stage = Array.map (fun c -> Ts_base.Intmath.div_floor c ii) time in
  let n_stages = 1 + Array.fold_left max 0 stage in
  { g; ii; time; row; stage; n_stages }

let of_schedule s = of_times (Sched.ddg s) ~ii:(Sched.ii s) (Sched.times_exn s)

let validate t =
  check_constraints t.g ~ii:t.ii t.time;
  check_resources t.g ~ii:t.ii t.time

let d_ker t (e : Ts_ddg.Ddg.edge) = e.distance + t.stage.(e.dst) - t.stage.(e.src)

let inter_iter_reg_deps t =
  List.filter (fun e -> d_ker t e >= 1) (Ts_ddg.Ddg.reg_edges t.g)

let inter_iter_mem_deps t =
  List.filter (fun e -> d_ker t e >= 1) (Ts_ddg.Ddg.mem_edges t.g)

let sync t ~c_reg_com (e : Ts_ddg.Ddg.edge) =
  t.row.(e.src) - t.row.(e.dst) + Ts_ddg.Ddg.latency t.g e.src + c_reg_com

let c_delay t ~c_reg_com =
  List.fold_left (fun acc e -> max acc (sync t ~c_reg_com e)) 0 (inter_iter_reg_deps t)

(* A producer's value is born at its issue and dies at the issue of its last
   register consumer ([+ II * d] unrolls the consumer into absolute time).
   Values with no consumer still occupy a register for at least one cycle;
   stores and branches produce no register value and contribute nothing. *)
let produces_value (op : Ts_isa.Opcode.t) =
  match op with Store | Branch -> false | _ -> true

let lifetimes t =
  let n = Ts_ddg.Ddg.n_nodes t.g in
  let res = ref [] in
  for v = 0 to n - 1 do
    if produces_value (Ts_ddg.Ddg.node t.g v).op then begin
      let consumers =
        List.filter (fun (e : Ts_ddg.Ddg.edge) -> e.kind = Ts_ddg.Ddg.Reg) t.g.succs.(v)
      in
      let birth = t.time.(v) in
      let death =
        List.fold_left
          (fun acc (e : Ts_ddg.Ddg.edge) ->
            max acc (t.time.(e.dst) + (t.ii * e.distance)))
          (birth + 1) consumers
      in
      res := (v, birth, death) :: !res
    end
  done;
  List.rev !res

let max_live t =
  let lts = lifetimes t in
  let best = ref 0 in
  for c = 0 to t.ii - 1 do
    let live =
      List.fold_left
        (fun acc (_, birth, death) ->
          (* Number of k with birth <= c + k*ii < death. *)
          let kmax = Ts_base.Intmath.div_floor (death - 1 - c) t.ii in
          let kmin = Ts_base.Intmath.div_ceil (birth - c) t.ii in
          acc + max 0 (kmax - kmin + 1))
        0 lts
    in
    if live > !best then best := live
  done;
  !best

let copies_needed t =
  List.fold_left
    (fun acc (_, birth, death) ->
      acc + max 0 (Ts_base.Intmath.div_ceil (death - birth) t.ii - 1))
    0 (lifetimes t)

let producers t =
  let n = Ts_ddg.Ddg.n_nodes t.g in
  let hops = Array.make n 0 in
  List.iter
    (fun (e : Ts_ddg.Ddg.edge) -> hops.(e.src) <- max hops.(e.src) (d_ker t e))
    (inter_iter_reg_deps t);
  let res = ref [] in
  for v = n - 1 downto 0 do
    if hops.(v) > 0 then res := (v, hops.(v)) :: !res
  done;
  !res

let send_recv_pairs_per_iter t =
  List.fold_left (fun acc (_, h) -> acc + h) 0 (producers t)

let span t =
  let best = ref 0 in
  Array.iteri
    (fun v c -> best := max !best (c + Ts_ddg.Ddg.latency t.g v))
    t.time;
  !best

let pp ppf t =
  Format.fprintf ppf "kernel of %s: ii=%d, stages=%d, maxlive=%d@." t.g.name t.ii
    t.n_stages (max_live t);
  for r = 0 to t.ii - 1 do
    let here =
      List.filter (fun v -> t.row.(v) = r) (List.init (Ts_ddg.Ddg.n_nodes t.g) Fun.id)
    in
    let cells =
      List.map
        (fun v ->
          Printf.sprintf "%s[s%d]" (Ts_ddg.Ddg.node t.g v).name t.stage.(v))
        here
    in
    Format.fprintf ppf "  row %2d: %s@." r (String.concat " " cells)
  done

let fits_registers t = max_live t <= t.g.machine.Ts_isa.Machine.n_registers
