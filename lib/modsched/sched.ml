type direction = Up | Down

type t = {
  g : Ts_ddg.Ddg.t;
  ii : int;
  time : int option array;
  mrt : Mrt.t;
  asap_tbl : int array;
  mutable placed_rev : int list;
  mutable n_placed : int;
  reg_active : bool array;
  mem_active : bool array;
}

let asap_table (g : Ts_ddg.Ddg.t) ~ii =
  let n = Ts_ddg.Ddg.n_nodes g in
  let asap = Array.make n 0 in
  (* Longest path from a virtual source; II >= RecII makes all cycles
     non-positive so relaxation converges within n rounds. *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    Array.iter
      (fun (e : Ts_ddg.Ddg.edge) ->
        let cand = asap.(e.src) + Ts_ddg.Ddg.latency g e.src - (ii * e.distance) in
        if cand > asap.(e.dst) then begin
          asap.(e.dst) <- cand;
          changed := true
        end)
      g.edges;
    incr rounds;
    if !rounds > n + 1 then
      invalid_arg
        (Printf.sprintf "Sched.create: ii=%d below RecII for loop %s" ii g.name)
  done;
  asap

let create ?asap g ~ii =
  let n = Ts_ddg.Ddg.n_nodes g in
  {
    g;
    ii;
    time = Array.make n None;
    mrt = Mrt.create g.machine ~ii;
    asap_tbl = (match asap with Some a -> a | None -> asap_table g ~ii);
    placed_rev = [];
    n_placed = 0;
    reg_active = Array.make (Array.length (Ts_ddg.Ddg.reg_edge_array g)) false;
    mem_active = Array.make (Array.length (Ts_ddg.Ddg.mem_edge_array g)) false;
  }

let ddg t = t.g
let ii t = t.ii
let time t v = t.time.(v)
let is_scheduled t v = t.time.(v) <> None
let n_scheduled t = t.n_placed
let scheduled_nodes t = List.rev t.placed_rev
let asap t v = t.asap_tbl.(v)
let reg_active_mask t = t.reg_active
let mem_active_mask t = t.mem_active

let window ?(prefer = Up) t v =
  let lat u = Ts_ddg.Ddg.latency t.g u in
  let early =
    List.fold_left
      (fun acc (e : Ts_ddg.Ddg.edge) ->
        match t.time.(e.src) with
        | None -> acc
        | Some tu ->
            let bound = tu + lat e.src - (t.ii * e.distance) in
            Some (match acc with None -> bound | Some a -> max a bound))
      None t.g.preds.(v)
  in
  let late =
    List.fold_left
      (fun acc (e : Ts_ddg.Ddg.edge) ->
        match t.time.(e.dst) with
        | None -> acc
        | Some ts ->
            let bound = ts - lat v + (t.ii * e.distance) in
            Some (match acc with None -> bound | Some a -> min a bound))
      None t.g.succs.(v)
  in
  match (early, late) with
  | None, None ->
      (* No scheduled neighbours: start at ASAP, ascending — there is
         nothing to be close to, and an early start keeps the stage count
         down. *)
      let a = t.asap_tbl.(v) in
      Some (a, a + t.ii - 1, Up)
  | Some e, None -> Some (e, e + t.ii - 1, Up)
  | None, Some l -> Some (l - t.ii + 1, l, Down)
  | Some e, Some l ->
      let hi = min l (e + t.ii - 1) in
      if e > hi then None else Some (e, hi, prefer)

let candidate_cycles (lo, hi, dir) =
  let rec up c = if c > hi then [] else c :: up (c + 1) in
  let rec down c = if c < lo then [] else c :: down (c - 1) in
  match dir with Up -> up lo | Down -> down hi

let fits t v ~cycle = Mrt.fits t.mrt (Ts_ddg.Ddg.node t.g v).op ~cycle

(* Whether an edge with both endpoints placed is an inter-iteration
   dependence of the partial schedule (paper Definition 1, kernel
   distance >= 1). Stages come from raw issue cycles; the kernel
   normalises by a multiple of II, which preserves stage differences. *)
let edge_active t (e : Ts_ddg.Ddg.edge) =
  match (t.time.(e.src), t.time.(e.dst)) with
  | Some ts, Some td ->
      e.distance
      + Ts_base.Intmath.div_floor td t.ii
      - Ts_base.Intmath.div_floor ts t.ii
      >= 1
  | _ -> false

(* Re-derive the active flags of the edges incident to [v] after it was
   placed or evicted; only these can have changed. *)
let refresh_incident t v =
  let update mask arr idxs =
    Array.iter (fun i -> mask.(i) <- edge_active t arr.(i)) idxs
  in
  update t.reg_active (Ts_ddg.Ddg.reg_edge_array t.g) (Ts_ddg.Ddg.incident_reg t.g v);
  update t.mem_active (Ts_ddg.Ddg.mem_edge_array t.g) (Ts_ddg.Ddg.incident_mem t.g v)

let place t v ~cycle =
  if is_scheduled t v then
    invalid_arg (Printf.sprintf "Sched.place: node %d already scheduled" v);
  Mrt.reserve t.mrt (Ts_ddg.Ddg.node t.g v).op ~cycle;
  t.time.(v) <- Some cycle;
  t.placed_rev <- v :: t.placed_rev;
  t.n_placed <- t.n_placed + 1;
  refresh_incident t v

let unplace t v =
  match t.time.(v) with
  | None -> invalid_arg (Printf.sprintf "Sched.unplace: node %d not scheduled" v)
  | Some cycle ->
      Mrt.release t.mrt (Ts_ddg.Ddg.node t.g v).op ~cycle;
      t.time.(v) <- None;
      t.placed_rev <- List.filter (fun w -> w <> v) t.placed_rev;
      t.n_placed <- t.n_placed - 1;
      refresh_incident t v

let is_complete t = t.n_placed = Ts_ddg.Ddg.n_nodes t.g

let times_exn t =
  Array.map
    (function
      | Some c -> c
      | None -> invalid_arg "Sched.times_exn: incomplete schedule")
    t.time
