(** Partial modulo schedules and scheduling windows.

    A partial schedule maps a growing subset of the DDG's nodes to issue
    cycles (arbitrary integers; the kernel extraction normalises them) and
    keeps the modulo reservation table in sync. The scheduling window of an
    unplaced node [v] (Section 4.1) is derived from its already-scheduled
    neighbours:

    - predecessors give the earliest start
      [E = max (t(u) + lat(u) - II * d(u, v))];
    - successors give the latest start
      [L = min (t(s) - lat(v) + II * d(v, s))];
    - both: try [E .. min (L, E + II - 1)] upward; only predecessors: try
      [E .. E + II - 1] upward; only successors: try [L] downward to
      [L - II + 1] (the paper's "[7, 0] with the largest cycle tried
      first"); neither: try [ASAP(v) .. ASAP(v) + II - 1] upward. *)

type t

val asap_table : Ts_ddg.Ddg.t -> ii:int -> int array
(** Per-node static earliest start times at [ii] (longest path from a
    virtual source over weights [lat - II * distance], clamped at 0).
    Depends only on [(g, ii)], so grid searches that revisit an II can
    compute it once and feed it back through [create ?asap]. Raises
    [Invalid_argument] when [ii] is below the recurrence-constrained
    minimum (the relaxation would diverge). *)

val create : ?asap:int array -> Ts_ddg.Ddg.t -> ii:int -> t
(** Empty schedule at the given II. [asap] must be [asap_table g ~ii] (it
    is trusted and shared, not copied); when absent it is computed. *)

val ddg : t -> Ts_ddg.Ddg.t
val ii : t -> int

val time : t -> int -> int option
(** Issue cycle of a node, if placed. *)

val is_scheduled : t -> int -> bool
val n_scheduled : t -> int

val scheduled_nodes : t -> int list
(** Placed node ids, in placement order. *)

val asap : t -> int -> int
(** Static earliest start of a node at this II (longest-path from the
    virtual source over weights [lat - II * distance], clamped at 0). *)

val reg_active_mask : t -> bool array
(** One flag per edge of {!Ts_ddg.Ddg.reg_edge_array}: [true] iff both
    endpoints are placed and the dependence is inter-iteration in the
    partial schedule (kernel distance [>= 1]). Maintained incrementally by
    {!place}/{!unplace} — admission checks read it instead of rescanning
    the edge array. Callers must not mutate it. *)

val mem_active_mask : t -> bool array
(** Same, for {!Ts_ddg.Ddg.mem_edge_array}. *)

type direction = Up | Down

val window : ?prefer:direction -> t -> int -> (int * int * direction) option
(** [window t v] is [(lo, hi, dir)] — candidate cycles are
    [lo .. hi]; [dir] says which end to try first ([Up] = ascending).
    [None] when the window is empty (scheduled neighbours are
    contradictory at this II and the attempt must restart).

    When only predecessors (successors) are scheduled the scan direction is
    forced to [Up] ([Down]) — as close to them as possible; a node with no
    scheduled neighbours starts at its ASAP, ascending. When both sides
    are scheduled, [prefer] (default [Up]) decides: SMS passes the
    direction of the ordering sweep that emitted the node, so nodes
    ordered bottom-up are placed as late as their window allows, next to
    their consumers. *)

val fits : t -> int -> cycle:int -> bool
(** Resource check for placing node [v] at [cycle] (pure). *)

val place : t -> int -> cycle:int -> unit
(** Place a node; reserves resources. Raises [Invalid_argument] if the node
    is already placed or does not fit. *)

val unplace : t -> int -> unit
(** Evict a placed node, releasing its resources (iterative modulo
    scheduling backtracks this way). Raises [Invalid_argument] if the node
    is not placed. *)

val candidate_cycles : int * int * direction -> int list
(** The cycles of a window in trial order. *)

val is_complete : t -> bool

val times_exn : t -> int array
(** All issue cycles; raises if the schedule is incomplete. *)
