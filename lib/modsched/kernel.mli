(** Kernels: completed modulo schedules, normalised and analysed.

    The kernel of a modulo-scheduled loop is the II-cycle steady-state
    body. Issue times are normalised so the earliest instruction is at
    cycle 0; [stage v = time v / II] and [row v = time v mod II]. The
    kernel distance of a dependence (paper Definition 1) is
    [d_ker (u, v) = d (u, v) + stage v - stage u]: the number of {e
    threads} the dependence crosses in the SpMT execution model, where each
    thread executes one kernel iteration.

    Everything Section 5 measures statically lives here: the
    synchronisation delay of register dependences (Definition 2), the
    schedule's achieved [C_delay], MaxLive, the register-copy post-pass
    count, and the SEND/RECV communication plan that the simulator
    replays. *)

type t = private {
  g : Ts_ddg.Ddg.t;
  ii : int;
  time : int array;
      (** issue cycles normalised by a multiple of II (min in [0, II)), so
          rows equal the raw schedule's cycles mod II *)
  row : int array;  (** [time.(v) mod ii] *)
  stage : int array;  (** [time.(v) / ii] *)
  n_stages : int;
}

val of_schedule : Sched.t -> t
(** Normalise a complete schedule. Raises [Invalid_argument] if incomplete
    or if any dependence constraint [t(v) >= t(u) + lat(u) - II * d] is
    violated. *)

val of_times : Ts_ddg.Ddg.t -> ii:int -> int array -> t
(** Same, from a raw time array (used by tests). *)

val d_ker : t -> Ts_ddg.Ddg.edge -> int
(** Definition 1. Always [>= 0] for a valid kernel (a negative value would
    mean a dependence travelling backwards in thread order). *)

val inter_iter_reg_deps : t -> Ts_ddg.Ddg.edge list
(** Register flow dependences with [d_ker >= 1]: the paper's [RegDep] set
    over all instructions — these become synchronised SEND/RECV
    dependences. *)

val inter_iter_mem_deps : t -> Ts_ddg.Ddg.edge list
(** Memory dependences with [d_ker >= 1]: the speculated dependences
    tracked by the MDT. *)

val sync : t -> c_reg_com:int -> Ts_ddg.Ddg.edge -> int
(** Definition 2:
    [sync (x, y) = row x - row y + lat x + c_reg_com]. Defined for any
    inter-iteration register dependence (the paper states it for kernel
    distance 1; dependences with a larger distance are relayed hop-by-hop
    by the copy post-pass and the same per-hop bound applies). *)

val c_delay : t -> c_reg_com:int -> int
(** Achieved synchronisation delay of the schedule: the maximum [sync] over
    [inter_iter_reg_deps], or 0 when the kernel has none (a DOALL-style
    kernel whose threads never wait on registers). *)

val lifetimes : t -> (int * int * int) list
(** [(node, birth, death)] register lifetimes, one per value-producing
    node (stores and branches produce none): born at the producer's issue
    cycle, dead at its last register consumer's issue ([+ II * distance]
    unrolls the consumer into absolute time), and held at least one cycle
    even with no consumer. *)

val max_live : t -> int
(** Maximum number of simultaneously-live register lifetimes at any cycle
    of the steady-state kernel (the MaxLive column of Tables 2 and 3). *)

val copies_needed : t -> int
(** Register copies the post-pass inserts: one per extra II window a value
    stays live beyond its first, summed over producers (this also covers
    relaying multi-hop inter-thread values through adjacent cores). *)

val producers : t -> (int * int) list
(** [(node, hops)] for every node whose value crosses threads, where
    [hops] is the largest [d_ker] among its register consumers. Each hop
    is one SEND/RECV pair per kernel iteration at run time. *)

val send_recv_pairs_per_iter : t -> int
(** Total SEND/RECV pairs a thread executes per iteration: the sum of
    [hops] over [producers]. *)

val span : t -> int
(** Cycles from the first issue to the last completion of one iteration
    ([max (time v + lat v)]); the length of a thread executed alone. *)

val validate : t -> unit
(** Re-check all dependence constraints and resource limits. *)

val pp : Format.formatter -> t -> unit
(** Kernel listing by row, with stage annotations, like Figure 2(b)/(e). *)

val fits_registers : t -> bool
(** Does the kernel's MaxLive fit the machine's register file? GCC's
    modulo scheduler abandons schedules that would spill; the suite
    statistics confirm TMS's larger MaxLive stays within budget. *)
