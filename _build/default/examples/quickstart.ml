(* Quickstart: the paper's motivating example, end to end.

   Builds the Figure 1 DDG, shows why MII = 8, schedules it with SMS and
   TMS, prints both kernels with their synchronisation delays, and runs
   both on the simulated two-core SpMT machine.

     dune exec examples/quickstart.exe *)

module K = Ts_modsched.Kernel

let () =
  let g = Ts_workload.Motivating.ddg () in
  Printf.printf "== the loop ==\n";
  Format.printf "%a@." Ts_ddg.Ddg.pp g;
  Printf.printf "ResII = %d (the unpipelined multiply), RecII = %d (the circuit\n"
    (Ts_ddg.Mii.res_ii g) (Ts_ddg.Mii.rec_ii g);
  Printf.printf "n0..n5 closed by the speculated store-to-load dependence), MII = %d.\n\n"
    (Ts_ddg.Mii.mii g);

  let cfg = Ts_spmt.Config.two_core in
  let params = cfg.Ts_spmt.Config.params in
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in

  Printf.printf "== SMS (the baseline) ==\n";
  let sms = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  Format.printf "%a@." K.pp sms;
  List.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      Printf.printf "  sync(%s -> %s) = %d cycles\n"
        (Ts_ddg.Ddg.node g e.src).name (Ts_ddg.Ddg.node g e.dst).name
        (K.sync sms ~c_reg_com e))
    (K.inter_iter_reg_deps sms);
  Printf.printf
    "SMS packs dependent instructions tightly, so its worst synchronised\n\
     dependence costs C_delay = %d cycles per thread.\n\n"
    (K.c_delay sms ~c_reg_com);

  Printf.printf "== TMS ==\n";
  let tms = Ts_tms.Tms.schedule_sweep ~params g in
  let tk = tms.Ts_tms.Tms.kernel in
  Format.printf "%a@." K.pp tk;
  Printf.printf
    "TMS found a schedule with the same II=%d but C_delay = %d, accepting a\n\
     misspeculation frequency of %.1f%% on the speculated memory dependences\n\
     (P_max sweep picked %g).\n\n"
    tk.K.ii tms.Ts_tms.Tms.achieved_c_delay
    (tms.Ts_tms.Tms.misspec *. 100.0)
    tms.Ts_tms.Tms.p_max;

  Printf.printf "== two-core SpMT simulation (2000 iterations) ==\n";
  let plan = Ts_spmt.Address_plan.create g in
  let trip = 2000 and warmup = 512 in
  let run k = Ts_spmt.Sim.run ~plan ~warmup cfg k ~trip in
  let s1 = run sms and s2 = run tk in
  let per (st : Ts_spmt.Sim.stats) = float_of_int st.cycles /. float_of_int trip in
  Printf.printf "  SMS: %.2f cycles/iteration, %d RECV-stall cycles, %d squashes\n"
    (per s1) s1.Ts_spmt.Sim.sync_stall_cycles s1.Ts_spmt.Sim.squashes;
  Printf.printf "  TMS: %.2f cycles/iteration, %d RECV-stall cycles, %d squashes\n"
    (per s2) s2.Ts_spmt.Sim.sync_stall_cycles s2.Ts_spmt.Sim.squashes;
  Printf.printf "  speedup of TMS over SMS: %.1f%%\n\n"
    (Ts_base.Stats.speedup_percent ~baseline:(float_of_int s1.Ts_spmt.Sim.cycles)
       ~improved:(float_of_int s2.Ts_spmt.Sim.cycles));

  Printf.printf "== how the threads overlap (cf. Figure 2(c)/(f)) ==\n";
  Printf.printf "SMS:\n%s\nTMS:\n%s"
    (Ts_spmt.Timeline.render ~ncore:2 (Ts_spmt.Timeline.collect ~n_threads:8 cfg sms))
    (Ts_spmt.Timeline.render ~ncore:2 (Ts_spmt.Timeline.collect ~n_threads:8 cfg tk))
