(* Design-space sweep: how the TMS/SMS trade-off moves with the machine.

   The paper evaluates one point (4 cores, 3-cycle SEND/RECV); its
   conclusion sketches extensions. This example re-runs a representative
   DOACROSS loop across core counts and ring latencies, and across P_max,
   to show where thread-sensitivity pays off:

   - more cores raise the value of a small C_delay (the T_lb/ncore term
     shrinks, so the serial C_delay term dominates sooner);
   - a slower interconnect inflates every sync(x, y) and with it the
     whole TMS advantage;
   - P_max trades misspeculation for TLP.

     dune exec examples/design_space.exe *)

let loop () = List.hd Ts_workload.Doacross.equake.Ts_workload.Doacross.loops

let simulate cfg kernel plan =
  Ts_spmt.Sim.run ~plan ~warmup:512 cfg kernel ~trip:1500

let () =
  let g = loop () in
  let plan = Ts_spmt.Address_plan.create g in
  Printf.printf "loop: %s (%d instructions, MII %d)\n\n" g.Ts_ddg.Ddg.name
    (Ts_ddg.Ddg.n_nodes g) (Ts_ddg.Mii.mii g);

  let open Ts_base.Tablefmt in
  let t =
    create ~title:"core count and ring latency sweep (TMS vs SMS, cycles/iteration)"
      [ ("cores", Right); ("C_reg_com", Right); ("SMS II/Cd", Right);
        ("TMS II/Cd", Right); ("SMS c/i", Right); ("TMS c/i", Right);
        ("TMS gain", Right) ]
  in
  List.iter
    (fun ncore ->
      List.iter
        (fun c_reg_com ->
          let params =
            { Ts_isa.Spmt_params.default with ncore; c_reg_com }
          in
          let cfg = { Ts_spmt.Config.default with params } in
          let sms = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
          let tms_r = Ts_tms.Tms.schedule_sweep ~params g in
          let tms = tms_r.Ts_tms.Tms.kernel in
          let s1 = simulate cfg sms plan and s2 = simulate cfg tms plan in
          let per (st : Ts_spmt.Sim.stats) =
            float_of_int st.cycles /. 1500.0
          in
          add_row t
            [ string_of_int ncore; string_of_int c_reg_com;
              Printf.sprintf "%d/%d" sms.Ts_modsched.Kernel.ii
                (Ts_modsched.Kernel.c_delay sms ~c_reg_com);
              Printf.sprintf "%d/%d" tms.Ts_modsched.Kernel.ii
                tms_r.Ts_tms.Tms.achieved_c_delay;
              cell_f1 (per s1); cell_f1 (per s2);
              cell_pct
                (Ts_base.Stats.speedup_percent
                   ~baseline:(float_of_int s1.Ts_spmt.Sim.cycles)
                   ~improved:(float_of_int s2.Ts_spmt.Sim.cycles)) ])
        [ 1; 3; 6 ])
    [ 2; 4; 8 ];
  print t;

  print_newline ();
  let t2 =
    create ~title:"P_max sweep (4 cores): speculation vs synchronisation"
      [ ("P_max", Right); ("TMS II", Right); ("C_delay", Right);
        ("predicted P_M", Right); ("measured misspec", Right); ("cycles/iter", Right) ]
  in
  let cfg = Ts_spmt.Config.default in
  List.iter
    (fun p_max ->
      let r = Ts_tms.Tms.schedule ~p_max ~params:cfg.Ts_spmt.Config.params g in
      let st = simulate cfg r.Ts_tms.Tms.kernel plan in
      add_row t2
        [ Printf.sprintf "%g" p_max;
          string_of_int r.Ts_tms.Tms.kernel.Ts_modsched.Kernel.ii;
          string_of_int r.Ts_tms.Tms.achieved_c_delay;
          Printf.sprintf "%.4f" r.Ts_tms.Tms.misspec;
          Printf.sprintf "%.4f" st.Ts_spmt.Sim.misspec_rate;
          cell_f1 (float_of_int st.Ts_spmt.Sim.cycles /. 1500.0) ])
    [ 0.0; 0.005; 0.02; 0.05; 0.25; 1.0 ];
  print t2
