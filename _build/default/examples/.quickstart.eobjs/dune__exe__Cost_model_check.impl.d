examples/cost_model_check.ml: List Printf Ts_base Ts_ddg Ts_modsched Ts_spmt Ts_tms Ts_workload
