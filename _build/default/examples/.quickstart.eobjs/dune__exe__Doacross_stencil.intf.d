examples/doacross_stencil.mli:
