examples/cost_model_check.mli:
