examples/doacross_stencil.ml: Printf Ts_base Ts_ddg Ts_modsched Ts_sms Ts_spmt Ts_tms
