examples/quickstart.mli:
