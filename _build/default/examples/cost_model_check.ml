(* Cost-model validation: Section 4.2's analytical T against the simulator.

   For a sample of suite loops, compare the model's per-iteration estimate
   T/N = T_nomiss/N + T_mis_spec/N (computed from the TMS schedule's
   achieved C_delay and P_M) against the measured steady-state
   cycles/iteration. The model is the objective TMS minimises, so how well
   it tracks the simulator bounds how good TMS's choices can be.

     dune exec examples/cost_model_check.exe *)

let () =
  let cfg = Ts_spmt.Config.default in
  let params = cfg.Ts_spmt.Config.params in
  let open Ts_base.Tablefmt in
  let t =
    create ~title:"cost model vs simulator (TMS schedules, cycles/iteration)"
      [ ("loop", Left); ("II", Right); ("C_delay", Right); ("P_M", Right);
        ("model", Right); ("simulated", Right); ("error", Right) ]
  in
  let errors = ref [] in
  List.iter
    (fun bench_name ->
      let bench = Ts_workload.Spec_suite.find bench_name in
      let loops = Ts_workload.Spec_suite.loops bench in
      List.iteri
        (fun i g ->
          if i < 3 then begin
            let r = Ts_tms.Tms.schedule_sweep ~params g in
            let k = r.Ts_tms.Tms.kernel in
            let trip = 1200 in
            let st = Ts_spmt.Sim.run ~warmup:512 cfg k ~trip in
            let model =
              Ts_tms.Cost_model.estimate params ~ii:k.Ts_modsched.Kernel.ii
                ~c_delay:r.Ts_tms.Tms.achieved_c_delay ~p_m:r.Ts_tms.Tms.misspec
                ~n:trip
              /. float_of_int trip
            in
            let sim = float_of_int st.Ts_spmt.Sim.cycles /. float_of_int trip in
            let err = (sim -. model) /. sim *. 100.0 in
            errors := abs_float err :: !errors;
            add_row t
              [ g.Ts_ddg.Ddg.name;
                string_of_int k.Ts_modsched.Kernel.ii;
                string_of_int r.Ts_tms.Tms.achieved_c_delay;
                Printf.sprintf "%.3f" r.Ts_tms.Tms.misspec;
                cell_f1 model; cell_f1 sim; cell_pct err ]
          end)
        loops)
    [ "wupwise"; "swim"; "art"; "equake"; "fma3d" ];
  print t;
  Printf.printf "\nmean absolute error: %.1f%%\n"
    (Ts_base.Stats.mean !errors)
