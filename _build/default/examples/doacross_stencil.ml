(* Two DOACROSS loops with very different SpMT fortunes.

   Loop A is a tight first-order stencil, a.(i) <- c1*a.(i-1) + c2*b.(i):
   its cross-iteration store-to-load dependence always aliases, so it must
   be synchronised, and the synchronisation delay is as long as the whole
   recurrence — no schedule can make SpMT beat a single core here. The
   example shows TMS recognising that (it degenerates to an SMS-like
   schedule rather than inflating II for nothing).

   Loop B is an indirect update, a.(idx i) <- f (a.(idx i), ...), over a
   large table: profiling says consecutive iterations almost never touch
   the same entry (p = 0.03), so TMS speculates the dependence and
   pipelines the loop across the cores, where the single core is limited
   by its issue width and memory ports.

   Both loops are written in the textual .ddg format (a parser demo);
   `tsms schedule <file>` accepts the same text from a file.

     dune exec examples/doacross_stencil.exe *)

let tight_stencil =
  {|
loop tight_stencil
machine spmt
node adr_a  ialu
node adr_b  ialu
node ld_prev load
node ld_b    load
node mul1    fmul
node mul2    fmul
node sum     fadd
node st_a    store
edge adr_a adr_a reg 1
edge adr_b adr_b reg 1
edge adr_a ld_prev reg 0
edge adr_a st_a reg 0
edge adr_b ld_b reg 0
edge ld_prev mul1 reg 0
edge ld_b mul2 reg 0
edge mul1 sum reg 0
edge mul2 sum reg 0
edge sum st_a reg 0
edge st_a ld_prev mem 1 1.0
|}

let indirect_update =
  {|
loop indirect_update
machine spmt
# gather the index and four neighbours
node adr_i ialu
node ld_ix load
node adr0  ialu
node adr1  ialu
node adr2  ialu
node adr3  ialu
node ld0   load
node ld1   load
node ld2   load
node ld3   load
# read-modify-write of the table entry
node ld_t  load
node w0    fmul
node w1    fmul
node w2    fmul
node w3    fmul
node s01   fadd
node s23   fadd
node s     fadd
node upd   fadd
node st_t  store
# a running norm on the side
node nacc  fadd
edge adr_i adr_i reg 1
edge adr_i ld_ix reg 0
edge ld_ix adr0 reg 0
edge ld_ix adr1 reg 0
edge ld_ix adr2 reg 0
edge ld_ix adr3 reg 0
edge adr0 ld0 reg 0
edge adr1 ld1 reg 0
edge adr2 ld2 reg 0
edge adr3 ld3 reg 0
edge ld_ix ld_t reg 0
edge ld0 w0 reg 0
edge ld1 w1 reg 0
edge ld2 w2 reg 0
edge ld3 w3 reg 0
edge w0 s01 reg 0
edge w1 s01 reg 0
edge w2 s23 reg 0
edge w3 s23 reg 0
edge s01 s reg 0
edge s23 s reg 0
edge ld_t upd reg 0
edge s upd reg 0
edge upd st_t reg 0
edge s nacc reg 0
edge nacc nacc reg 1
# consecutive iterations rarely hit the same table entry
edge st_t ld_t mem 1 0.03
|}

let run_one text =
  let g = Ts_ddg.Parse.of_string text in
  let cfg = Ts_spmt.Config.default in
  let params = cfg.Ts_spmt.Config.params in
  Printf.printf "== %s: %d instructions, MII=%d (ResII=%d, RecII=%d) ==\n"
    g.Ts_ddg.Ddg.name (Ts_ddg.Ddg.n_nodes g) (Ts_ddg.Mii.mii g)
    (Ts_ddg.Mii.res_ii g) (Ts_ddg.Mii.rec_ii g);
  let sms = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  let tms_r = Ts_tms.Tms.schedule_sweep ~params g in
  let tms = tms_r.Ts_tms.Tms.kernel in
  Printf.printf "SMS: II=%d, C_delay=%d | TMS: II=%d, C_delay=%d, P_M=%.3f\n"
    sms.Ts_modsched.Kernel.ii
    (Ts_modsched.Kernel.c_delay sms ~c_reg_com:params.c_reg_com)
    tms.Ts_modsched.Kernel.ii tms_r.Ts_tms.Tms.achieved_c_delay
    tms_r.Ts_tms.Tms.misspec;
  let plan = Ts_spmt.Address_plan.create g in
  let trip = 3000 and warmup = 512 in
  let s_sms = Ts_spmt.Sim.run ~plan ~warmup cfg sms ~trip in
  let s_tms = Ts_spmt.Sim.run ~plan ~warmup cfg tms ~trip in
  let s_1t = Ts_spmt.Single.run ~plan ~warmup cfg g ~trip in
  let per c = float_of_int c /. float_of_int trip in
  Printf.printf
    "  single-threaded %6.2f c/i | SMS %6.2f c/i | TMS %6.2f c/i (%d squashes)\n"
    (per s_1t.Ts_spmt.Single.cycles) (per s_sms.Ts_spmt.Sim.cycles)
    (per s_tms.Ts_spmt.Sim.cycles) s_tms.Ts_spmt.Sim.squashes;
  Printf.printf "  TMS over single-threaded: %+.1f%%\n\n"
    (Ts_base.Stats.speedup_percent
       ~baseline:(float_of_int s_1t.Ts_spmt.Single.cycles)
       ~improved:(float_of_int s_tms.Ts_spmt.Sim.cycles))

let () =
  run_one tight_stencil;
  run_one indirect_update;
  Printf.printf
    "Loop A's recurrence spans its whole body, so per-thread synchronisation\n\
     costs more than just running it on one core: SpMT parallelisation is\n\
     not worth it, and a compiler using the Section 4.2 cost model would\n\
     reject it. Loop B's carried dependence is speculation-friendly: TMS\n\
     hides it and the four cores split the resource-bound body.\n"
