(* The .ddg textual format and the DOT export. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample =
  {|# comment
loop demo
machine toy
node a ialu
node l load
node m fmul 6
node s store
edge a l reg 0
edge l m reg 0
edge m s reg 0
edge a a reg 1
edge s l mem 1 0.25
|}

let test_parse_basic () =
  let g = Ts_ddg.Parse.of_string sample in
  Alcotest.(check string) "name" "demo" g.Ts_ddg.Ddg.name;
  Alcotest.(check string) "machine" "toy" g.machine.Ts_isa.Machine.name;
  check_int "nodes" 4 (Ts_ddg.Ddg.n_nodes g);
  check_int "edges" 5 (Array.length g.edges)

let test_parse_latency_override () =
  let g = Ts_ddg.Parse.of_string sample in
  check_int "fmul override" 6 (Ts_ddg.Ddg.latency g 2);
  check_int "machine default load" 2 (Ts_ddg.Ddg.latency g 1)

let test_parse_mem_edge () =
  let g = Ts_ddg.Parse.of_string sample in
  match Ts_ddg.Ddg.mem_edges g with
  | [ e ] ->
      check_int "src is the store" 3 e.src;
      check_int "dst is the load" 1 e.dst;
      Alcotest.(check (float 1e-9)) "probability" 0.25 e.prob
  | _ -> Alcotest.fail "expected one mem edge"

let test_roundtrip () =
  let g = Ts_ddg.Parse.of_string sample in
  let g2 = Ts_ddg.Parse.of_string (Ts_ddg.Parse.to_string g) in
  check_int "nodes" (Ts_ddg.Ddg.n_nodes g) (Ts_ddg.Ddg.n_nodes g2);
  check_int "edges" (Array.length g.edges) (Array.length g2.edges);
  Alcotest.(check string) "idempotent print" (Ts_ddg.Parse.to_string g)
    (Ts_ddg.Parse.to_string g2)

let expect_error ?line text =
  match Ts_ddg.Parse.of_string text with
  | _ -> Alcotest.fail "expected parse error"
  | exception Ts_ddg.Parse.Error (ln, _) -> (
      match line with Some l -> check_int "error line" l ln | None -> ())

let test_error_unknown_opcode () =
  expect_error ~line:1 "node x frobnicate"

let test_error_unknown_directive () = expect_error ~line:1 "frobnicate yes"

let test_error_undeclared_node () =
  expect_error ~line:2 "node a ialu\nedge a b reg 0"

let test_error_duplicate_node () =
  expect_error ~line:2 "node a ialu\nnode a ialu"

let test_error_bad_distance () =
  expect_error "node a ialu\nnode b ialu\nedge a b reg x"

let test_error_bad_kind () =
  expect_error "node a ialu\nnode b ialu\nedge a b wibble 0"

let test_error_unknown_machine () = expect_error "machine vax"

let test_error_machine_after_nodes () =
  expect_error "node a ialu\nmachine toy"

let test_error_semantic () =
  (* parses but fails DDG validation: reg dep from a store *)
  expect_error "node s store\nnode b ialu\nedge s b reg 0"

let test_comments_and_blanks () =
  let g = Ts_ddg.Parse.of_string "\n# only a comment\nnode a ialu # trailing\n\n" in
  check_int "one node" 1 (Ts_ddg.Ddg.n_nodes g)

let test_default_machine () =
  let g = Ts_ddg.Parse.of_string "node a ialu" in
  Alcotest.(check string) "spmt by default" "spmt" g.machine.Ts_isa.Machine.name

let test_dot_output () =
  let g = Ts_ddg.Parse.of_string sample in
  let dot = Ts_ddg.Dot.to_string g in
  check_bool "digraph" true (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  check_bool "has dashed mem edge" true
    (let rec contains i =
       i + 6 <= String.length dot
       && (String.sub dot i 6 = "dashed" || contains (i + 1))
     in
     contains 0)

let prop_roundtrip_generated =
  QCheck.Test.make ~count:40 ~name:"print/parse roundtrip on generated loops"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      let g2 = Ts_ddg.Parse.of_string (Ts_ddg.Parse.to_string g) in
      Ts_ddg.Ddg.n_nodes g = Ts_ddg.Ddg.n_nodes g2
      && Array.length g.edges = Array.length g2.edges
      && Ts_ddg.Mii.mii g = Ts_ddg.Mii.mii g2
      && Ts_ddg.Parse.to_string g = Ts_ddg.Parse.to_string g2)

let suite =
  [
    Alcotest.test_case "parse: basic" `Quick test_parse_basic;
    Alcotest.test_case "parse: latency override" `Quick test_parse_latency_override;
    Alcotest.test_case "parse: memory edge" `Quick test_parse_mem_edge;
    Alcotest.test_case "parse: roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "error: unknown opcode" `Quick test_error_unknown_opcode;
    Alcotest.test_case "error: unknown directive" `Quick test_error_unknown_directive;
    Alcotest.test_case "error: undeclared node" `Quick test_error_undeclared_node;
    Alcotest.test_case "error: duplicate node" `Quick test_error_duplicate_node;
    Alcotest.test_case "error: bad distance" `Quick test_error_bad_distance;
    Alcotest.test_case "error: bad kind" `Quick test_error_bad_kind;
    Alcotest.test_case "error: unknown machine" `Quick test_error_unknown_machine;
    Alcotest.test_case "error: machine after nodes" `Quick test_error_machine_after_nodes;
    Alcotest.test_case "error: semantic validation" `Quick test_error_semantic;
    Alcotest.test_case "parse: comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "parse: default machine" `Quick test_default_machine;
    Alcotest.test_case "dot: output shape" `Quick test_dot_output;
    QCheck_alcotest.to_alcotest prop_roundtrip_generated;
  ]
