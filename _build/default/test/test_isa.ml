(* Opcode and Machine descriptions. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_opcode_roundtrip () =
  List.iter
    (fun op ->
      match Ts_isa.Opcode.of_string (Ts_isa.Opcode.to_string op) with
      | Some op' -> check_bool "roundtrip" true (op = op')
      | None -> Alcotest.fail "roundtrip failed")
    Ts_isa.Opcode.all

let test_opcode_aliases () =
  check_bool "ld alias" true (Ts_isa.Opcode.of_string "ld" = Some Ts_isa.Opcode.Load);
  check_bool "st alias" true (Ts_isa.Opcode.of_string "st" = Some Ts_isa.Opcode.Store);
  check_bool "br alias" true (Ts_isa.Opcode.of_string "br" = Some Ts_isa.Opcode.Branch);
  check_bool "unknown" true (Ts_isa.Opcode.of_string "bogus" = None)

let test_is_mem () =
  check_bool "load" true (Ts_isa.Opcode.is_mem Ts_isa.Opcode.Load);
  check_bool "store" true (Ts_isa.Opcode.is_mem Ts_isa.Opcode.Store);
  List.iter
    (fun op ->
      if op <> Ts_isa.Opcode.Load && op <> Ts_isa.Opcode.Store then
        check_bool "non-mem" false (Ts_isa.Opcode.is_mem op))
    Ts_isa.Opcode.all

let test_machine_positive_params () =
  List.iter
    (fun m ->
      check_bool "issue width positive" true (m.Ts_isa.Machine.issue_width > 0);
      List.iter
        (fun op ->
          let d = m.Ts_isa.Machine.describe op in
          check_bool "latency >= 1" true (d.latency >= 1);
          check_bool "busy >= 1" true (d.busy >= 1);
          check_bool "op's unit exists" true (Ts_isa.Machine.fu_count m d.fu > 0))
        Ts_isa.Opcode.all)
    [ Ts_isa.Machine.spmt_core; Ts_isa.Machine.toy ]

let test_spmt_latencies () =
  let m = Ts_isa.Machine.spmt_core in
  check_int "load = L1 hit" 3 (Ts_isa.Machine.latency m Ts_isa.Opcode.Load);
  check_int "ialu" 1 (Ts_isa.Machine.latency m Ts_isa.Opcode.Ialu);
  check_int "fmul" 4 (Ts_isa.Machine.latency m Ts_isa.Opcode.Fmul);
  check_int "issue width" 4 m.issue_width

let test_toy_unpipelined_mul () =
  let m = Ts_isa.Machine.toy in
  let d = m.Ts_isa.Machine.describe Ts_isa.Opcode.Fmul in
  check_int "mul busy 4" 4 d.busy;
  check_int "one multiplier" 1 (Ts_isa.Machine.fu_count m d.fu)

let test_by_name () =
  check_bool "spmt" true (Ts_isa.Machine.by_name "spmt" <> None);
  check_bool "toy" true (Ts_isa.Machine.by_name "toy" <> None);
  check_bool "unknown" true (Ts_isa.Machine.by_name "vax" = None)

let test_fu_count_absent () =
  (* a machine with no branch units would return 0 rather than raise *)
  let m = Ts_isa.Machine.toy in
  check_bool "all listed classes positive" true
    (List.for_all (fun fu -> Ts_isa.Machine.fu_count m fu >= 0) Ts_isa.Machine.fu_all)

let test_spmt_params_default () =
  let p = Ts_isa.Spmt_params.default in
  check_int "4 cores" 4 p.ncore;
  check_int "3-cycle SEND/RECV" 3 p.c_reg_com;
  check_int "3-cycle spawn" 3 p.c_spawn;
  check_int "2-cycle commit" 2 p.c_commit;
  check_int "15-cycle invalidation" 15 p.c_inv

let test_spmt_params_with_ncore () =
  let p = Ts_isa.Spmt_params.with_ncore Ts_isa.Spmt_params.default 8 in
  check_int "ncore" 8 p.ncore;
  check_int "other fields kept" 3 p.c_reg_com;
  check_int "two_core" 2 Ts_isa.Spmt_params.two_core.ncore

let suite =
  [
    Alcotest.test_case "opcode: to/of_string roundtrip" `Quick test_opcode_roundtrip;
    Alcotest.test_case "opcode: aliases" `Quick test_opcode_aliases;
    Alcotest.test_case "opcode: is_mem" `Quick test_is_mem;
    Alcotest.test_case "machine: sane parameters" `Quick test_machine_positive_params;
    Alcotest.test_case "machine: spmt latencies" `Quick test_spmt_latencies;
    Alcotest.test_case "machine: toy unpipelined mul" `Quick test_toy_unpipelined_mul;
    Alcotest.test_case "machine: by_name" `Quick test_by_name;
    Alcotest.test_case "machine: fu_count total" `Quick test_fu_count_absent;
    Alcotest.test_case "spmt_params: Table 1 defaults" `Quick test_spmt_params_default;
    Alcotest.test_case "spmt_params: with_ncore" `Quick test_spmt_params_with_ncore;
  ]
