(* The loop generator and the calibrated suites. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_gen_deterministic () =
  let a = Fixtures.generated ~seed:5 () and b = Fixtures.generated ~seed:5 () in
  Alcotest.(check string) "identical loops" (Ts_ddg.Parse.to_string a)
    (Ts_ddg.Parse.to_string b)

let test_gen_size () =
  let g = Fixtures.generated ~n_inst:30 () in
  check_int "exact size" 30 (Ts_ddg.Ddg.n_nodes g)

let test_gen_has_memory () =
  let g = Fixtures.generated () in
  check_bool "has loads and stores" true (Ts_ddg.Ddg.n_mem_ops g >= 2)

let test_gen_rec_target () =
  let rng = Ts_base.Rng.of_string "rectest" in
  let g =
    Ts_workload.Gen.generate rng
      { Ts_workload.Gen.default_profile with n_inst = 40; target_rec_ii = Some 15 }
  in
  let rc = Ts_ddg.Mii.rec_ii g in
  check_bool (Printf.sprintf "RecII %d near target 15" rc) true (rc >= 13 && rc <= 22)

let test_gen_ldp_target () =
  let rng = Ts_base.Rng.of_string "ldptest" in
  let g =
    Ts_workload.Gen.generate rng
      { Ts_workload.Gen.default_profile with n_inst = 40; ldp_target = Some 25 }
  in
  let ldp = Ts_ddg.Mii.ldp g in
  check_bool (Printf.sprintf "LDP %d near target 25" ldp) true (ldp >= 18 && ldp <= 33)

let test_gen_extra_sccs () =
  let rng = Ts_base.Rng.of_string "scctest" in
  let g =
    Ts_workload.Gen.generate rng
      { Ts_workload.Gen.default_profile with
        n_inst = 40; n_extra_sccs = 3; self_loop_rate = 0.0 }
  in
  check_int "three recurrences" 3 (Ts_ddg.Scc.count_non_trivial g)

let test_gen_mem_prob_range () =
  let rng = Ts_base.Rng.of_string "probtest" in
  let g =
    Ts_workload.Gen.generate rng
      { Ts_workload.Gen.default_profile with
        n_inst = 40; mem_dep_rate = 1.5; mem_prob = (0.2, 0.4) }
  in
  List.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      check_bool "prob in range" true (e.prob >= 0.2 && e.prob <= 0.4))
    (Ts_ddg.Ddg.mem_edges g)

let test_gen_no_mem_rec_by_default () =
  (* with mem_rec = false, memory deps never create cycles through the DDG:
     removing them must not change RecII *)
  let g = Fixtures.generated ~seed:11 ~n_inst:30 () in
  let b = Ts_ddg.Ddg.Builder.create ~name:"stripped" g.machine in
  Array.iter (fun (nd : Ts_ddg.Ddg.node) -> ignore (Ts_ddg.Ddg.Builder.add b ~latency:nd.latency nd.op)) g.nodes;
  Array.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      if e.kind = Ts_ddg.Ddg.Reg then Ts_ddg.Ddg.Builder.dep b ~dist:e.distance e.src e.dst)
    g.edges;
  let stripped = Ts_ddg.Ddg.Builder.build b in
  check_int "mem deps close no cycles" (Ts_ddg.Mii.rec_ii stripped) (Ts_ddg.Mii.rec_ii g)

let test_suite_structure () =
  check_int "13 benchmarks" 13 (List.length Ts_workload.Spec_suite.benchmarks);
  check_int "778 loops" 778 Ts_workload.Spec_suite.total_loops

let test_suite_find () =
  let b = Ts_workload.Spec_suite.find "lucas" in
  check_int "lucas loop count" 24 b.Ts_workload.Spec_suite.n_loops;
  check_bool "unknown raises" true
    (match Ts_workload.Spec_suite.find "nope" with
    | _ -> false
    | exception Not_found -> true)

let test_suite_loops_schedulable () =
  (* every generated suite loop admits an SMS schedule by construction *)
  let b = Ts_workload.Spec_suite.find "wupwise" in
  List.iter
    (fun g -> ignore (Ts_sms.Sms.schedule g))
    (Ts_workload.Spec_suite.loops b)

let test_suite_calibration () =
  (* a benchmark's generated statistics land near its Table 2 targets *)
  List.iter
    (fun name ->
      let b = Ts_workload.Spec_suite.find name in
      let loops = Ts_workload.Spec_suite.loops b in
      let mean f = Ts_base.Stats.mean (List.map f loops) in
      let inst = mean (fun g -> float_of_int (Ts_ddg.Ddg.n_nodes g)) in
      let mii = mean (fun g -> float_of_int (Ts_ddg.Mii.mii g)) in
      check_bool
        (Printf.sprintf "%s inst %.1f within 20%% of %.1f" name inst b.avg_inst)
        true
        (abs_float (inst -. b.avg_inst) /. b.avg_inst < 0.20);
      check_bool
        (Printf.sprintf "%s mii %.1f within 30%% of %.1f" name mii b.avg_mii)
        true
        (abs_float (mii -. b.avg_mii) /. b.avg_mii < 0.30))
    [ "wupwise"; "mgrid"; "art"; "lucas" ]

let test_doacross_structure () =
  check_int "four benchmarks" 4 (List.length Ts_workload.Doacross.all);
  let total =
    List.fold_left
      (fun acc (s : Ts_workload.Doacross.selected) -> acc + List.length s.loops)
      0 Ts_workload.Doacross.all
  in
  check_int "seven loops" 7 total

let test_doacross_table3_shape () =
  (* art: 27 instructions, 3 SCCs; lucas recurrence-bound; equake/fma3d
     resource-bound *)
  List.iter
    (fun g ->
      check_int "art size" 27 (Ts_ddg.Ddg.n_nodes g);
      check_int "art sccs" 3 (Ts_ddg.Scc.count_non_trivial g))
    Ts_workload.Doacross.art.loops;
  let lucas = List.hd Ts_workload.Doacross.lucas.loops in
  check_bool "lucas recurrence-bound" true
    (Ts_ddg.Mii.rec_ii lucas > Ts_ddg.Mii.res_ii lucas);
  let equake = List.hd Ts_workload.Doacross.equake.loops in
  check_bool "equake resource-bound" true
    (Ts_ddg.Mii.res_ii equake >= Ts_ddg.Mii.rec_ii equake);
  let fma3d = List.hd Ts_workload.Doacross.fma3d.loops in
  check_bool "fma3d resource-bound" true
    (Ts_ddg.Mii.res_ii fma3d >= Ts_ddg.Mii.rec_ii fma3d)

let test_doacross_coverage_values () =
  let lc =
    List.map
      (fun (s : Ts_workload.Doacross.selected) -> s.coverage)
      Ts_workload.Doacross.all
  in
  Alcotest.(check (list (float 1e-9))) "Table 3 LC column"
    [ 0.216; 0.585; 0.334; 0.143 ] lc

let test_motivating_paper_numbers () =
  let g = Ts_workload.Motivating.ddg () in
  check_int "nine instructions" 9 (Ts_ddg.Ddg.n_nodes g);
  check_int "ResII 4" 4 (Ts_ddg.Mii.res_ii g);
  check_int "RecII 8" 8 (Ts_ddg.Mii.rec_ii g);
  check_int "three speculated deps" 3 (List.length (Ts_ddg.Ddg.mem_edges g))

let prop_gen_ldp_capped =
  QCheck.Test.make ~count:30 ~name:"ldp_target caps the dependence path"
    QCheck.(int_bound 200)
    (fun seed ->
      let rng = Ts_base.Rng.of_string (Printf.sprintf "capped/%d" seed) in
      let g =
        Ts_workload.Gen.generate rng
          { Ts_workload.Gen.default_profile with n_inst = 30; ldp_target = Some 20 }
      in
      (* the incremental depth tracker is approximate: allow slack *)
      Ts_ddg.Mii.ldp g <= 32)

let suite =
  [
    Alcotest.test_case "gen: deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "gen: exact size" `Quick test_gen_size;
    Alcotest.test_case "gen: memory ops present" `Quick test_gen_has_memory;
    Alcotest.test_case "gen: RecII target" `Quick test_gen_rec_target;
    Alcotest.test_case "gen: LDP target" `Quick test_gen_ldp_target;
    Alcotest.test_case "gen: extra SCC count" `Quick test_gen_extra_sccs;
    Alcotest.test_case "gen: mem probability range" `Quick test_gen_mem_prob_range;
    Alcotest.test_case "gen: mem deps close no cycles" `Quick
      test_gen_no_mem_rec_by_default;
    Alcotest.test_case "suite: 13 benchmarks, 778 loops" `Quick test_suite_structure;
    Alcotest.test_case "suite: find" `Quick test_suite_find;
    Alcotest.test_case "suite: loops schedulable" `Quick test_suite_loops_schedulable;
    Alcotest.test_case "suite: calibration vs Table 2" `Slow test_suite_calibration;
    Alcotest.test_case "doacross: structure" `Quick test_doacross_structure;
    Alcotest.test_case "doacross: Table 3 shape" `Quick test_doacross_table3_shape;
    Alcotest.test_case "doacross: LC column" `Quick test_doacross_coverage_values;
    Alcotest.test_case "motivating: paper numbers" `Quick test_motivating_paper_numbers;
    QCheck_alcotest.to_alcotest prop_gen_ldp_capped;
  ]
