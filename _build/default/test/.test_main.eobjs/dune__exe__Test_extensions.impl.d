test/test_extensions.ml: Alcotest Array Fixtures Format Fun List QCheck QCheck_alcotest String Ts_ddg Ts_harness Ts_isa Ts_modsched Ts_sms Ts_spmt Ts_tms Ts_workload
