test/test_harness.ml: Alcotest Lazy List Printf String Ts_harness Ts_isa Ts_spmt
