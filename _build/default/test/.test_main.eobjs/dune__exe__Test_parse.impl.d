test/test_parse.ml: Alcotest Array Fixtures QCheck QCheck_alcotest String Ts_ddg Ts_isa
