test/test_kernel.ml: Alcotest Array Fixtures Format List QCheck QCheck_alcotest String Ts_ddg Ts_isa Ts_modsched Ts_sms
