test/test_profile.ml: Alcotest Array Fixtures List Printf QCheck QCheck_alcotest Ts_ddg Ts_isa Ts_modsched Ts_sms Ts_spmt Ts_tms Ts_workload
