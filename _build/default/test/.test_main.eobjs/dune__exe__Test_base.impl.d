test/test_base.ml: Alcotest List QCheck QCheck_alcotest String Ts_base
