test/test_order_sms.ml: Alcotest Array Fixtures Fun Hashtbl List Printf QCheck QCheck_alcotest Ts_ddg Ts_isa Ts_modsched Ts_sms
