test/test_cache_mdt.ml: Alcotest QCheck QCheck_alcotest Ts_spmt
