test/test_sched.ml: Alcotest Fixtures Ts_ddg Ts_isa Ts_modsched
