test/fixtures.ml: List Printf QCheck Ts_base Ts_ddg Ts_isa Ts_workload
