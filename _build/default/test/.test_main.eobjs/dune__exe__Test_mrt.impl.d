test/test_mrt.ml: Alcotest Fun Int64 List QCheck QCheck_alcotest Ts_base Ts_isa Ts_modsched
