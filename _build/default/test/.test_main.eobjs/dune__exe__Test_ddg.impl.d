test/test_ddg.ml: Alcotest Array Fixtures List QCheck QCheck_alcotest Ts_ddg Ts_isa
