test/test_workload.ml: Alcotest Array Fixtures List Printf QCheck QCheck_alcotest Ts_base Ts_ddg Ts_sms Ts_workload
