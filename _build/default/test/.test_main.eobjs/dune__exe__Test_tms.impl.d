test/test_tms.ml: Alcotest Fixtures List Printf QCheck QCheck_alcotest Ts_ddg Ts_isa Ts_modsched Ts_sms Ts_tms Ts_workload
