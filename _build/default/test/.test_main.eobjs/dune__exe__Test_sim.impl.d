test/test_sim.ml: Alcotest Array Fixtures List Printf QCheck QCheck_alcotest String Ts_ddg Ts_isa Ts_modsched Ts_sms Ts_spmt Ts_tms Ts_workload
