test/test_scc_mii.ml: Alcotest Array Fixtures Fun List QCheck QCheck_alcotest Ts_ddg Ts_isa
