test/test_cost_model.ml: Alcotest List Ts_ddg Ts_isa Ts_modsched Ts_tms
