test/test_rng.ml: Alcotest Array Fun Int64 Printf QCheck QCheck_alcotest Ts_base
