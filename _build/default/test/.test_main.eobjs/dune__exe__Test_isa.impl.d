test/test_isa.ml: Alcotest List Ts_isa
