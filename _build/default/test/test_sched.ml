(* Partial schedules and scheduling windows. *)

module S = Ts_modsched.Sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let window_exn ?prefer s v =
  match S.window ?prefer s v with
  | Some w -> w
  | None -> Alcotest.fail "expected a window"

let test_empty_schedule () =
  let g = Fixtures.chain 3 in
  let s = S.create g ~ii:2 in
  check_int "nothing scheduled" 0 (S.n_scheduled s);
  check_bool "not complete" false (S.is_complete s);
  check_bool "no time" true (S.time s 0 = None)

let test_asap_chain () =
  let g = Fixtures.chain 3 in
  let s = S.create g ~ii:2 in
  check_int "asap n0" 0 (S.asap s 0);
  check_int "asap n1" 1 (S.asap s 1);
  check_int "asap n2" 2 (S.asap s 2)

let test_asap_carried () =
  (* accumulator: load(3) feeds fadd; asap fadd = 3 despite the self dep *)
  let g = Fixtures.accumulator () in
  let s = S.create g ~ii:3 in
  check_int "asap acc" 3 (S.asap s 1)

let test_window_no_neighbours () =
  let g = Fixtures.chain 3 in
  let s = S.create g ~ii:4 in
  let lo, hi, dir = window_exn s 1 in
  check_int "starts at asap" 1 lo;
  check_int "II slots wide" 4 (hi - lo + 1);
  check_bool "ascending" true (dir = S.Up)

let test_window_pred_only () =
  let g = Fixtures.chain 3 in
  let s = S.create g ~ii:4 in
  S.place s 0 ~cycle:2;
  let lo, hi, dir = window_exn s 1 in
  check_int "early = t(pred) + lat" 3 lo;
  check_int "width II" 4 (hi - lo + 1);
  check_bool "ascending" true (dir = S.Up)

let test_window_succ_only () =
  let g = Fixtures.chain 3 in
  let s = S.create g ~ii:4 in
  S.place s 2 ~cycle:10;
  let lo, hi, dir = window_exn s 1 in
  check_int "late = t(succ) - lat" 9 hi;
  check_int "width II" 4 (hi - lo + 1);
  check_bool "descending" true (dir = S.Down)

let test_window_both () =
  let g = Fixtures.chain 3 in
  let s = S.create g ~ii:8 in
  S.place s 0 ~cycle:0;
  S.place s 2 ~cycle:6;
  let lo, hi, dir = window_exn s 1 in
  check_int "early" 1 lo;
  check_int "late" 5 hi;
  check_bool "prefer defaults up" true (dir = S.Up);
  let _, _, dir2 = window_exn ~prefer:S.Down s 1 in
  check_bool "prefer down honoured" true (dir2 = S.Down)

let test_window_carried_distance () =
  (* succ scheduled via a distance-1 edge widens the window by II *)
  let g = Fixtures.accumulator () in
  let s = S.create g ~ii:5 in
  S.place s 1 ~cycle:3 (* the accumulator *);
  (* load -> acc (d0): late = 3 - 3 = 0; also acc's self dep doesn't
     constrain the load *)
  let _, hi, _ = window_exn s 0 in
  check_int "late bound via d0 edge" 0 hi

let test_window_empty () =
  let g = Fixtures.chain 3 in
  let s = S.create g ~ii:2 in
  S.place s 0 ~cycle:0;
  S.place s 2 ~cycle:0;
  (* n1 needs t >= 1 and t <= -1: impossible *)
  check_bool "dead window" true (S.window s 1 = None)

let test_candidate_cycles () =
  Alcotest.(check (list int)) "up" [ 2; 3; 4 ] (S.candidate_cycles (2, 4, S.Up));
  Alcotest.(check (list int)) "down" [ 4; 3; 2 ] (S.candidate_cycles (2, 4, S.Down))

let test_place_reserves_resources () =
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let l1 = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load in
  let l2 = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load in
  let l3 = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load in
  let g = Ts_ddg.Ddg.Builder.build b in
  let s = S.create g ~ii:2 in
  S.place s l1 ~cycle:0;
  S.place s l2 ~cycle:0;
  check_bool "third load does not fit" false (S.fits s l3 ~cycle:0);
  check_bool "fits next cycle" true (S.fits s l3 ~cycle:1)

let test_double_place_raises () =
  let g = Fixtures.chain 2 in
  let s = S.create g ~ii:2 in
  S.place s 0 ~cycle:0;
  Alcotest.check_raises "double place"
    (Invalid_argument "Sched.place: node 0 already scheduled") (fun () ->
      S.place s 0 ~cycle:1)

let test_times_exn_incomplete () =
  let g = Fixtures.chain 2 in
  let s = S.create g ~ii:2 in
  Alcotest.check_raises "incomplete"
    (Invalid_argument "Sched.times_exn: incomplete schedule") (fun () ->
      ignore (S.times_exn s))

let test_complete () =
  let g = Fixtures.chain 2 in
  let s = S.create g ~ii:2 in
  S.place s 0 ~cycle:0;
  S.place s 1 ~cycle:1;
  check_bool "complete" true (S.is_complete s);
  Alcotest.(check (array int)) "times" [| 0; 1 |] (S.times_exn s);
  Alcotest.(check (list int)) "placement order" [ 0; 1 ] (S.scheduled_nodes s)

let test_create_below_recii_raises () =
  let g = Fixtures.accumulator () in
  check_bool "raises below RecII" true
    (match S.create g ~ii:2 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "create: empty" `Quick test_empty_schedule;
    Alcotest.test_case "asap: chain" `Quick test_asap_chain;
    Alcotest.test_case "asap: carried dep ignored at horizon" `Quick test_asap_carried;
    Alcotest.test_case "window: no neighbours" `Quick test_window_no_neighbours;
    Alcotest.test_case "window: predecessors only" `Quick test_window_pred_only;
    Alcotest.test_case "window: successors only" `Quick test_window_succ_only;
    Alcotest.test_case "window: both sides" `Quick test_window_both;
    Alcotest.test_case "window: carried distance" `Quick test_window_carried_distance;
    Alcotest.test_case "window: empty (dead)" `Quick test_window_empty;
    Alcotest.test_case "candidate_cycles order" `Quick test_candidate_cycles;
    Alcotest.test_case "place: reserves resources" `Quick test_place_reserves_resources;
    Alcotest.test_case "place: double placement raises" `Quick test_double_place_raises;
    Alcotest.test_case "times_exn: incomplete raises" `Quick test_times_exn_incomplete;
    Alcotest.test_case "complete schedule" `Quick test_complete;
    Alcotest.test_case "create: below RecII raises" `Quick test_create_below_recii_raises;
  ]
