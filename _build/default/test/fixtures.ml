(* Shared loop fixtures for the test suite. *)

module B = Ts_ddg.Ddg.Builder

(* n0 -> n1 -> ... -> n(k-1), all ialu, distance 0. *)
let chain ?(machine = Ts_isa.Machine.spmt_core) k =
  let b = B.create ~name:(Printf.sprintf "chain%d" k) machine in
  let ids = List.init k (fun _ -> B.add b Ts_isa.Opcode.Ialu) in
  let rec link = function
    | a :: (c :: _ as rest) ->
        B.dep b a c;
        link rest
    | _ -> ()
  in
  link ids;
  B.build b

(* One floating-point accumulator: acc += x, carried distance 1. *)
let accumulator () =
  let b = B.create ~name:"acc" Ts_isa.Machine.spmt_core in
  let x = B.add b Ts_isa.Opcode.Load in
  let acc = B.add b Ts_isa.Opcode.Fadd in
  B.dep b x acc;
  B.dep b ~dist:1 acc acc;
  B.build b

(* a -> b, a -> c, b -> d, c -> d. *)
let diamond () =
  let b = B.create ~name:"diamond" Ts_isa.Machine.spmt_core in
  let a = B.add b Ts_isa.Opcode.Load in
  let x = B.add b Ts_isa.Opcode.Fadd in
  let y = B.add b Ts_isa.Opcode.Fmul in
  let d = B.add b Ts_isa.Opcode.Store in
  B.dep b a x;
  B.dep b a y;
  B.dep b x d;
  B.dep b y d;
  B.build b

(* A two-SCC loop: a recurrence of latency 6 over distance 2 plus a
   self-loop accumulator. *)
let two_scc () =
  let b = B.create ~name:"two_scc" Ts_isa.Machine.spmt_core in
  let u = B.add b Ts_isa.Opcode.Fadd in
  let v = B.add b Ts_isa.Opcode.Fadd in
  let w = B.add b Ts_isa.Opcode.Ialu in
  B.dep b u v;
  B.dep b ~dist:2 v u;
  B.dep b ~dist:1 w w;
  B.build b

(* Store-to-load memory dependence with a probability (speculation
   candidate) alongside a register pipeline. *)
let spec_loop () =
  let b = B.create ~name:"spec" Ts_isa.Machine.spmt_core in
  let ld = B.add b Ts_isa.Opcode.Load in
  let f = B.add b Ts_isa.Opcode.Fmul in
  let st = B.add b Ts_isa.Opcode.Store in
  B.dep b ld f;
  B.dep b f st;
  B.mem_dep b ~dist:1 ~prob:0.1 st ld;
  B.build b

let motivating = Ts_workload.Motivating.ddg

(* A deterministic generated loop of moderate size. *)
let generated ?(seed = 0) ?(n_inst = 24) () =
  let rng = Ts_base.Rng.of_string (Printf.sprintf "testgen/%d" seed) in
  Ts_workload.Gen.generate rng
    { Ts_workload.Gen.default_profile with Ts_workload.Gen.n_inst }

(* QCheck arbitrary over generated loops, shrinking on the seed. *)
let arb_loop =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "loop(seed=%d, n=%d)" seed n)
    QCheck.Gen.(pair (int_bound 500) (int_range 6 40))

let loop_of_arb (seed, n_inst) = generated ~seed ~n_inst ()
