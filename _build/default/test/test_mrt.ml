(* Modulo reservation table. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let m = Ts_isa.Machine.spmt_core

let test_fits_empty () =
  let t = Ts_modsched.Mrt.create m ~ii:4 in
  List.iter
    (fun op -> check_bool "fits in empty table" true (Ts_modsched.Mrt.fits t op ~cycle:0))
    [ Ts_isa.Opcode.Ialu; Ts_isa.Opcode.Load; Ts_isa.Opcode.Fmul ]

let test_unit_exhaustion () =
  (* spmt has 2 memory ports: a third load in the same modulo cycle fails *)
  let t = Ts_modsched.Mrt.create m ~ii:4 in
  Ts_modsched.Mrt.reserve t Ts_isa.Opcode.Load ~cycle:1;
  Ts_modsched.Mrt.reserve t Ts_isa.Opcode.Store ~cycle:1;
  check_bool "ports full" false (Ts_modsched.Mrt.fits t Ts_isa.Opcode.Load ~cycle:1);
  check_bool "other cycle free" true (Ts_modsched.Mrt.fits t Ts_isa.Opcode.Load ~cycle:2)

let test_issue_width () =
  let t = Ts_modsched.Mrt.create m ~ii:4 in
  (* 4-wide: four ALU ops fill cycle 0's issue slots *)
  for _ = 1 to 4 do
    Ts_modsched.Mrt.reserve t Ts_isa.Opcode.Ialu ~cycle:0
  done;
  check_bool "issue slots exhausted" false
    (Ts_modsched.Mrt.fits t Ts_isa.Opcode.Fadd ~cycle:0);
  check_int "used slots" 4 (Ts_modsched.Mrt.used_issue_slots t 0)

let test_modulo_wrap () =
  let t = Ts_modsched.Mrt.create m ~ii:4 in
  Ts_modsched.Mrt.reserve t Ts_isa.Opcode.Load ~cycle:9;
  Ts_modsched.Mrt.reserve t Ts_isa.Opcode.Load ~cycle:(-3);
  (* 9 mod 4 = 1 and -3 mod 4 = 1: both ports used at modulo cycle 1 *)
  check_bool "wrapped" false (Ts_modsched.Mrt.fits t Ts_isa.Opcode.Load ~cycle:5)

let test_unpipelined_occupancy () =
  (* toy's multiplier is busy 4 cycles; at ii=8 two muls fit, offset apart *)
  let t = Ts_modsched.Mrt.create Ts_isa.Machine.toy ~ii:8 in
  Ts_modsched.Mrt.reserve t Ts_isa.Opcode.Fmul ~cycle:0;
  check_bool "occupied cycles 0-3" false
    (Ts_modsched.Mrt.fits t Ts_isa.Opcode.Fmul ~cycle:3);
  check_bool "free at cycle 4" true (Ts_modsched.Mrt.fits t Ts_isa.Opcode.Fmul ~cycle:4)

let test_unpipelined_too_big () =
  (* busy 4 > ii * units = 3: can never fit *)
  let t = Ts_modsched.Mrt.create Ts_isa.Machine.toy ~ii:3 in
  check_bool "cannot fit" false (Ts_modsched.Mrt.fits t Ts_isa.Opcode.Fmul ~cycle:0)

let test_wrap_multiplicity () =
  (* busy 8 multiplier at ii 8 occupies every cycle once: a second cannot fit
     anywhere (1 unit) *)
  let t = Ts_modsched.Mrt.create Ts_isa.Machine.toy ~ii:8 in
  Ts_modsched.Mrt.reserve t Ts_isa.Opcode.Fdiv ~cycle:0;
  check_bool "fully occupied" false (Ts_modsched.Mrt.fits t Ts_isa.Opcode.Fmul ~cycle:5)

let test_release () =
  let t = Ts_modsched.Mrt.create m ~ii:4 in
  Ts_modsched.Mrt.reserve t Ts_isa.Opcode.Load ~cycle:0;
  Ts_modsched.Mrt.reserve t Ts_isa.Opcode.Load ~cycle:0;
  check_bool "full" false (Ts_modsched.Mrt.fits t Ts_isa.Opcode.Load ~cycle:0);
  Ts_modsched.Mrt.release t Ts_isa.Opcode.Load ~cycle:0;
  check_bool "one slot back" true (Ts_modsched.Mrt.fits t Ts_isa.Opcode.Load ~cycle:0)

let test_reserve_overflow_raises () =
  let t = Ts_modsched.Mrt.create m ~ii:2 in
  Ts_modsched.Mrt.reserve t Ts_isa.Opcode.Imul ~cycle:0;
  Alcotest.check_raises "second imul rejected"
    (Invalid_argument "Mrt.reserve: imul does not fit at cycle 0 (ii=2)")
    (fun () -> Ts_modsched.Mrt.reserve t Ts_isa.Opcode.Imul ~cycle:0)

let test_create_bad_ii () =
  Alcotest.check_raises "ii 0" (Invalid_argument "Mrt.create: ii must be positive")
    (fun () -> ignore (Ts_modsched.Mrt.create m ~ii:0))

let prop_capacity_never_exceeded =
  QCheck.Test.make ~count:100 ~name:"greedy fill never exceeds capacity"
    QCheck.(pair small_int (int_range 1 12))
    (fun (seed, ii) ->
      let rng = Ts_base.Rng.create (Int64.of_int seed) in
      let t = Ts_modsched.Mrt.create m ~ii in
      let ops = [| Ts_isa.Opcode.Ialu; Ts_isa.Opcode.Load; Ts_isa.Opcode.Fmul;
                   Ts_isa.Opcode.Fadd; Ts_isa.Opcode.Store |] in
      for _ = 1 to 50 do
        let op = Ts_base.Rng.pick rng ops in
        let c = Ts_base.Rng.int rng (2 * ii) in
        if Ts_modsched.Mrt.fits t op ~cycle:c then Ts_modsched.Mrt.reserve t op ~cycle:c
      done;
      (* issue width is respected at every modulo cycle *)
      List.init ii Fun.id
      |> List.for_all (fun c ->
             Ts_modsched.Mrt.used_issue_slots t c <= m.Ts_isa.Machine.issue_width))

let suite =
  [
    Alcotest.test_case "fits: empty table" `Quick test_fits_empty;
    Alcotest.test_case "fits: unit exhaustion" `Quick test_unit_exhaustion;
    Alcotest.test_case "fits: issue width" `Quick test_issue_width;
    Alcotest.test_case "fits: modulo wrap" `Quick test_modulo_wrap;
    Alcotest.test_case "fits: unpipelined occupancy" `Quick test_unpipelined_occupancy;
    Alcotest.test_case "fits: busy > capacity" `Quick test_unpipelined_too_big;
    Alcotest.test_case "fits: wrapped multiplicity" `Quick test_wrap_multiplicity;
    Alcotest.test_case "release undoes reserve" `Quick test_release;
    Alcotest.test_case "reserve: overflow raises" `Quick test_reserve_overflow_raises;
    Alcotest.test_case "create: bad ii" `Quick test_create_bad_ii;
    QCheck_alcotest.to_alcotest prop_capacity_never_exceeded;
  ]
