(* The Section 4.2 cost model and the Definitions 3-4 overhead analysis. *)

let feq = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let p = Ts_isa.Spmt_params.default (* 4 cores, spn 3, ci 2, inv 15, com 3 *)

let test_f_value_serial_bound () =
  (* big C_delay dominates: F = C_delay *)
  feq "serial" 20.0 (Ts_tms.Cost_model.f_value p ~ii:10 ~c_delay:20)

let test_f_value_throughput_bound () =
  (* T_lb/ncore dominates: (40 + 2 + max(3,4)) / 4 = 11.5 *)
  feq "throughput" 11.5 (Ts_tms.Cost_model.f_value p ~ii:40 ~c_delay:4)

let test_f_value_spawn_floor () =
  (* tiny loop: the spawn overhead floors F at 3 *)
  feq "floor" 3.0 (Ts_tms.Cost_model.f_value p ~ii:2 ~c_delay:1)

let test_f_min_start () =
  (* F(MII, 1 + c_reg_com) *)
  feq "start" (Ts_tms.Cost_model.f_value p ~ii:8 ~c_delay:4)
    (Ts_tms.Cost_model.f_min_start p ~mii:8)

let test_f_monotone () =
  check_bool "monotone in ii" true
    (Ts_tms.Cost_model.f_value p ~ii:20 ~c_delay:5
     >= Ts_tms.Cost_model.f_value p ~ii:10 ~c_delay:5);
  check_bool "monotone in c_delay" true
    (Ts_tms.Cost_model.f_value p ~ii:10 ~c_delay:9
     >= Ts_tms.Cost_model.f_value p ~ii:10 ~c_delay:5)

let test_t_nomiss_scales () =
  feq "N scaling" (100.0 *. Ts_tms.Cost_model.f_value p ~ii:10 ~c_delay:5)
    (Ts_tms.Cost_model.t_nomiss p ~ii:10 ~c_delay:5 ~n:100)

let test_p_m () =
  feq "empty" 0.0 (Ts_tms.Cost_model.p_m []);
  feq "single" 0.1 (Ts_tms.Cost_model.p_m [ 0.1 ]);
  feq "composition" (1.0 -. (0.9 *. 0.8)) (Ts_tms.Cost_model.p_m [ 0.1; 0.2 ])

let test_misspec_penalty () =
  (* II + C_inv - max(0, C_delay - C_spn) *)
  feq "penalty" 20.0 (Ts_tms.Cost_model.misspec_penalty p ~ii:10 ~c_delay:8);
  feq "no credit below spawn" 25.0
    (Ts_tms.Cost_model.misspec_penalty p ~ii:10 ~c_delay:2)

let test_estimate_components () =
  let n = 50 in
  feq "estimate = nomiss + misspec"
    (Ts_tms.Cost_model.t_nomiss p ~ii:10 ~c_delay:5 ~n
     +. Ts_tms.Cost_model.t_mis_spec p ~ii:10 ~c_delay:5 ~p_m:0.1 ~n)
    (Ts_tms.Cost_model.estimate p ~ii:10 ~c_delay:5 ~p_m:0.1 ~n)

(* --- Overheads (Definitions 3-4) --- *)

module B = Ts_ddg.Ddg.Builder
module K = Ts_modsched.Kernel

(* producer store at a late row, consumer load at row 0 next iteration,
   plus a register dependence whose sync may or may not preserve it *)
let preserved_fixture ~reg_row ~reg_lat =
  let b = B.create Ts_isa.Machine.spmt_core in
  let u = B.add b ~latency:reg_lat Ts_isa.Opcode.Ialu in
  let v = B.add b Ts_isa.Opcode.Ialu in
  let st = B.add b Ts_isa.Opcode.Store in
  let ld = B.add b Ts_isa.Opcode.Load in
  B.dep b ~dist:1 u v;
  B.mem_dep b ~dist:1 ~prob:0.2 st ld;
  let g = B.build b in
  let k = K.of_times g ~ii:8 [| reg_row; 1; 6; 0 |] in
  (g, k)

let test_preserved_yes () =
  (* reg dep u(row 2, lat 6) -> v: sync = 2 - 1 + 6 + 3 = 10;
     mem dep needs (6 + 1 - 0)/1 = 7 <= 10 and row(u)=2 < row(st)=6 *)
  let _, k = preserved_fixture ~reg_row:2 ~reg_lat:6 in
  let reg_deps = K.inter_iter_reg_deps k in
  let mem = List.hd (K.inter_iter_mem_deps k) in
  check_bool "preserved" true
    (Ts_tms.Overheads.preserved k ~c_reg_com:3 ~reg_deps mem);
  feq "P_M excludes preserved deps" 0.0 (Ts_tms.Overheads.misspec_prob k ~c_reg_com:3)

let test_preserved_insufficient_sync () =
  (* reg dep with lat 1: sync = 2 - 1 + 1 + 3 = 5 < 7 -> not preserved *)
  let _, k = preserved_fixture ~reg_row:2 ~reg_lat:1 in
  let reg_deps = K.inter_iter_reg_deps k in
  let mem = List.hd (K.inter_iter_mem_deps k) in
  check_bool "not preserved" false
    (Ts_tms.Overheads.preserved k ~c_reg_com:3 ~reg_deps mem);
  feq "P_M counts it" 0.2 (Ts_tms.Overheads.misspec_prob k ~c_reg_com:3)

let test_preserved_guard_row_order () =
  (* the synchronising producer must issue before the store: u at row 7
     (after the store's row 6) cannot preserve it even with enough sync
     (sync = 7 - 1 + 2 + 3 = 11 >= 7) *)
  let _, k = preserved_fixture ~reg_row:7 ~reg_lat:2 in
  let reg_deps = K.inter_iter_reg_deps k in
  let mem = List.hd (K.inter_iter_mem_deps k) in
  check_bool "guard rejects" false
    (Ts_tms.Overheads.preserved k ~c_reg_com:3 ~reg_deps mem)

let test_no_reg_deps_nothing_preserved () =
  let b = B.create Ts_isa.Machine.spmt_core in
  let st = B.add b Ts_isa.Opcode.Store in
  let ld = B.add b Ts_isa.Opcode.Load in
  B.mem_dep b ~dist:1 ~prob:0.3 st ld;
  let g = B.build b in
  let k = K.of_times g ~ii:4 [| 2; 0 |] in
  feq "bare mem dep counts fully" 0.3 (Ts_tms.Overheads.misspec_prob k ~c_reg_com:3)

let suite =
  [
    Alcotest.test_case "F: serial bound" `Quick test_f_value_serial_bound;
    Alcotest.test_case "F: throughput bound" `Quick test_f_value_throughput_bound;
    Alcotest.test_case "F: spawn floor" `Quick test_f_value_spawn_floor;
    Alcotest.test_case "F_min start (Fig 3 line 5)" `Quick test_f_min_start;
    Alcotest.test_case "F: monotonicity" `Quick test_f_monotone;
    Alcotest.test_case "T_nomiss scales with N" `Quick test_t_nomiss_scales;
    Alcotest.test_case "P_M (equation 3)" `Quick test_p_m;
    Alcotest.test_case "misspeculation penalty" `Quick test_misspec_penalty;
    Alcotest.test_case "estimate = sum of components" `Quick test_estimate_components;
    Alcotest.test_case "preserved: sufficient sync (Def 3)" `Quick test_preserved_yes;
    Alcotest.test_case "preserved: insufficient sync" `Quick test_preserved_insufficient_sync;
    Alcotest.test_case "preserved: row-order guard" `Quick test_preserved_guard_row_order;
    Alcotest.test_case "P_M without register deps" `Quick test_no_reg_deps_nothing_preserved;
  ]
