(* DDG construction, validation and accessors. *)

module B = Ts_ddg.Ddg.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_builder_basic () =
  let g = Fixtures.chain 4 in
  check_int "nodes" 4 (Ts_ddg.Ddg.n_nodes g);
  check_int "edges" 3 (Array.length g.edges);
  check_int "node ids dense" 2 (Ts_ddg.Ddg.node g 2).id

let test_builder_names () =
  let b = B.create Ts_isa.Machine.spmt_core in
  let a = B.add b ~name:"alpha" Ts_isa.Opcode.Ialu in
  let c = B.add b Ts_isa.Opcode.Ialu in
  let g = B.build b in
  Alcotest.(check string) "explicit name" "alpha" (Ts_ddg.Ddg.node g a).name;
  Alcotest.(check string) "default name" "n1" (Ts_ddg.Ddg.node g c).name

let test_latency_default_and_override () =
  let b = B.create Ts_isa.Machine.spmt_core in
  let d = B.add b Ts_isa.Opcode.Fmul in
  let o = B.add b ~latency:7 Ts_isa.Opcode.Fmul in
  let g = B.build b in
  check_int "machine default" 4 (Ts_ddg.Ddg.latency g d);
  check_int "override" 7 (Ts_ddg.Ddg.latency g o)

let test_adjacency () =
  let g = Fixtures.diamond () in
  check_int "a has two successors" 2 (List.length g.succs.(0));
  check_int "d has two predecessors" 2 (List.length g.preds.(3));
  check_int "a has no predecessors" 0 (List.length g.preds.(0))

let test_edge_kind_partition () =
  let g = Fixtures.spec_loop () in
  check_int "one mem edge" 1 (List.length (Ts_ddg.Ddg.mem_edges g));
  check_int "two reg edges" 2 (List.length (Ts_ddg.Ddg.reg_edges g));
  check_int "two memory ops" 2 (Ts_ddg.Ddg.n_mem_ops g)

let build_invalid f =
  let b = B.create Ts_isa.Machine.spmt_core in
  f b;
  match B.build b with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_reject_dangling () =
  build_invalid (fun b ->
      let a = B.add b Ts_isa.Opcode.Ialu in
      B.dep b a 5)

let test_reject_negative_distance () =
  build_invalid (fun b ->
      let a = B.add b Ts_isa.Opcode.Ialu in
      let c = B.add b Ts_isa.Opcode.Ialu in
      B.dep b ~dist:(-1) a c)

let test_reject_bad_probability () =
  build_invalid (fun b ->
      let s = B.add b Ts_isa.Opcode.Store in
      let l = B.add b Ts_isa.Opcode.Load in
      B.mem_dep b ~prob:0.0 s l);
  build_invalid (fun b ->
      let s = B.add b Ts_isa.Opcode.Store in
      let l = B.add b Ts_isa.Opcode.Load in
      B.mem_dep b ~prob:1.5 s l)

let test_reject_store_reg_producer () =
  build_invalid (fun b ->
      let s = B.add b Ts_isa.Opcode.Store in
      let c = B.add b Ts_isa.Opcode.Ialu in
      B.dep b s c)

let test_reject_mem_dep_shape () =
  (* memory flow dependences must be store -> load *)
  build_invalid (fun b ->
      let l = B.add b Ts_isa.Opcode.Load in
      let l2 = B.add b Ts_isa.Opcode.Load in
      B.mem_dep b l l2);
  build_invalid (fun b ->
      let s = B.add b Ts_isa.Opcode.Store in
      let s2 = B.add b Ts_isa.Opcode.Store in
      B.mem_dep b s s2)

let test_reject_zero_distance_self () =
  build_invalid (fun b ->
      let a = B.add b Ts_isa.Opcode.Ialu in
      B.dep b ~dist:0 a a)

let test_reject_reg_prob () =
  build_invalid (fun b ->
      let a = B.add b Ts_isa.Opcode.Ialu in
      let c = B.add b Ts_isa.Opcode.Ialu in
      B.dep b ~prob:0.5 a c)

let test_self_dep_distance_one_ok () =
  let g = Fixtures.accumulator () in
  Ts_ddg.Ddg.validate g;
  check_int "edges" 2 (Array.length g.edges)

let test_validate_ok () =
  Ts_ddg.Ddg.validate (Fixtures.motivating ());
  Ts_ddg.Ddg.validate (Fixtures.generated ())

let prop_generated_validates =
  QCheck.Test.make ~count:60 ~name:"generated loops always validate"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      Ts_ddg.Ddg.validate g;
      true)

let prop_adjacency_consistent =
  QCheck.Test.make ~count:40 ~name:"succs/preds mirror the edge array"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      let count_succ =
        Array.fold_left (fun acc l -> acc + List.length l) 0 g.succs
      in
      let count_pred =
        Array.fold_left (fun acc l -> acc + List.length l) 0 g.preds
      in
      count_succ = Array.length g.edges
      && count_pred = Array.length g.edges
      && Array.for_all
           (fun (e : Ts_ddg.Ddg.edge) ->
             List.memq e g.succs.(e.src) && List.memq e g.preds.(e.dst))
           g.edges)

let suite =
  [
    Alcotest.test_case "builder: basic construction" `Quick test_builder_basic;
    Alcotest.test_case "builder: names" `Quick test_builder_names;
    Alcotest.test_case "builder: latency override" `Quick test_latency_default_and_override;
    Alcotest.test_case "adjacency lists" `Quick test_adjacency;
    Alcotest.test_case "reg/mem edge partition" `Quick test_edge_kind_partition;
    Alcotest.test_case "reject: dangling node" `Quick test_reject_dangling;
    Alcotest.test_case "reject: negative distance" `Quick test_reject_negative_distance;
    Alcotest.test_case "reject: probability out of range" `Quick test_reject_bad_probability;
    Alcotest.test_case "reject: store as register producer" `Quick test_reject_store_reg_producer;
    Alcotest.test_case "reject: non store-to-load mem dep" `Quick test_reject_mem_dep_shape;
    Alcotest.test_case "reject: zero-distance self dep" `Quick test_reject_zero_distance_self;
    Alcotest.test_case "reject: register dep with probability" `Quick test_reject_reg_prob;
    Alcotest.test_case "self dep at distance 1 is fine" `Quick test_self_dep_distance_one_ok;
    Alcotest.test_case "validate accepts good graphs" `Quick test_validate_ok;
    QCheck_alcotest.to_alcotest prop_generated_validates;
    QCheck_alcotest.to_alcotest prop_adjacency_consistent;
  ]
