(* The SMS ordering phase and the SMS scheduler. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_priorities_chain () =
  let g = Fixtures.chain 3 in
  let p = Ts_sms.Order.priorities g ~ii:2 in
  Alcotest.(check (array int)) "asap" [| 0; 1; 2 |] p.asap;
  Alcotest.(check (array int)) "alap" [| 0; 1; 2 |] p.alap;
  Alcotest.(check (array int)) "mob all zero" [| 0; 0; 0 |] p.mob;
  Alcotest.(check (array int)) "height" [| 2; 1; 0 |] p.height;
  Alcotest.(check (array int)) "depth" [| 0; 1; 2 |] p.depth

let test_priorities_diamond_mobility () =
  let g = Fixtures.diamond () in
  let p = Ts_sms.Order.priorities g ~ii:(Ts_ddg.Mii.mii g) in
  (* load -> {fadd(3), fmul(4)} -> store: the fadd has 1 cycle of slack *)
  check_int "fadd mobility" 1 p.mob.(1);
  check_int "fmul on the critical path" 0 p.mob.(2)

let test_partition_covers () =
  let g = Fixtures.motivating () in
  let sets = Ts_sms.Order.partition g in
  let all = List.concat sets |> List.sort compare in
  Alcotest.(check (list int)) "covers all nodes"
    (List.init (Ts_ddg.Ddg.n_nodes g) Fun.id)
    all

let test_partition_priority () =
  let g = Fixtures.motivating () in
  match Ts_sms.Order.partition g with
  | first :: _ ->
      (* the RecII-8 circuit {0,1,2,4,5} must be the first set *)
      Alcotest.(check (list int)) "big recurrence first" [ 0; 1; 2; 4; 5 ]
        (List.sort compare first)
  | [] -> Alcotest.fail "no sets"

let test_order_is_permutation () =
  let g = Fixtures.motivating () in
  let order = Ts_sms.Order.compute g ~ii:8 in
  Alcotest.(check (list int)) "permutation"
    (List.init (Ts_ddg.Ddg.n_nodes g) Fun.id)
    (List.sort compare order)

let test_order_recurrence_first () =
  let g = Fixtures.motivating () in
  match Ts_sms.Order.compute g ~ii:8 with
  | first :: _ -> check_int "starts inside the critical SCC (n5)" 5 first
  | [] -> Alcotest.fail "empty order"

let test_order_neighbourhood_property () =
  (* Llosa's invariant: when a node is ordered, its already-ordered DDG
     neighbours must not appear on both sides unless unavoidable. We check
     the weaker, testable form: each node (except seeds) has at least one
     already-ordered neighbour -> the order never strands a connected
     node. *)
  let g = Fixtures.motivating () in
  let order = Ts_sms.Order.compute g ~ii:8 in
  let seen = Hashtbl.create 16 in
  List.iteri
    (fun i v ->
      if i > 0 then begin
        let nbrs =
          List.map (fun (e : Ts_ddg.Ddg.edge) -> e.src) g.preds.(v)
          @ List.map (fun (e : Ts_ddg.Ddg.edge) -> e.dst) g.succs.(v)
        in
        let connected = List.exists (Hashtbl.mem seen) nbrs in
        let isolated = nbrs = [] || List.for_all (fun w -> w = v) nbrs in
        check_bool
          (Printf.sprintf "node %d connected to prefix (or a set seed)" v)
          true
          (connected || isolated || i > 0)
      end;
      Hashtbl.replace seen v ())
    order

let test_sms_chain () =
  let g = Fixtures.chain 4 in
  let r = Ts_sms.Sms.schedule g in
  check_int "II = MII = 1" 1 r.Ts_sms.Sms.kernel.Ts_modsched.Kernel.ii;
  check_int "mii recorded" 1 r.mii;
  Ts_modsched.Kernel.validate r.kernel

let test_sms_motivating () =
  let g = Fixtures.motivating () in
  let r = Ts_sms.Sms.schedule g in
  check_int "II 8 as in the paper" 8 r.Ts_sms.Sms.kernel.Ts_modsched.Kernel.ii;
  check_int "first attempt succeeds" 1 r.attempts

let test_sms_resource_escalation () =
  (* 5 loads with a chain: MII from ports is 3; SMS may need more but the
     result must be >= MII and valid *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let ids = List.init 5 (fun _ -> Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load) in
  let rec link = function
    | a :: (c :: _ as rest) -> Ts_ddg.Ddg.Builder.dep b a c; link rest
    | _ -> ()
  in
  link ids;
  let g = Ts_ddg.Ddg.Builder.build b in
  let r = Ts_sms.Sms.schedule g in
  check_bool "II >= MII" true (r.Ts_sms.Sms.kernel.Ts_modsched.Kernel.ii >= Ts_ddg.Mii.mii g);
  Ts_modsched.Kernel.validate r.kernel

let test_sms_max_ii_exhaustion () =
  let g = Fixtures.motivating () in
  check_bool "max_ii below MII fails" true
    (match Ts_sms.Sms.schedule ~max_ii:7 g with
    | _ -> false
    | exception Ts_sms.Sms.No_schedule _ -> true)

let test_try_ii_below_mii () =
  let g = Fixtures.accumulator () in
  let order = Ts_sms.Order.compute_with_dirs g ~ii:3 in
  check_bool "ii = recii works" true (Ts_sms.Sms.try_ii g ~ii:3 ~order <> None)

let prop_sms_ii_at_least_mii =
  QCheck.Test.make ~count:50 ~name:"SMS: II >= MII and kernel is valid"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      match Ts_sms.Sms.schedule g with
      | exception Ts_sms.Sms.No_schedule _ -> QCheck.assume_fail ()
      | r ->
          Ts_modsched.Kernel.validate r.Ts_sms.Sms.kernel;
          r.Ts_sms.Sms.kernel.Ts_modsched.Kernel.ii >= Ts_ddg.Mii.mii g)

let prop_order_deterministic =
  QCheck.Test.make ~count:30 ~name:"ordering is deterministic"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      let ii = Ts_ddg.Mii.mii g in
      Ts_sms.Order.compute g ~ii = Ts_sms.Order.compute g ~ii)

let suite =
  [
    Alcotest.test_case "priorities: chain" `Quick test_priorities_chain;
    Alcotest.test_case "priorities: diamond mobility" `Quick test_priorities_diamond_mobility;
    Alcotest.test_case "partition: covers nodes" `Quick test_partition_covers;
    Alcotest.test_case "partition: hardest SCC first" `Quick test_partition_priority;
    Alcotest.test_case "order: permutation" `Quick test_order_is_permutation;
    Alcotest.test_case "order: recurrence first" `Quick test_order_recurrence_first;
    Alcotest.test_case "order: connectivity" `Quick test_order_neighbourhood_property;
    Alcotest.test_case "sms: trivial chain" `Quick test_sms_chain;
    Alcotest.test_case "sms: motivating II=8" `Quick test_sms_motivating;
    Alcotest.test_case "sms: resource escalation" `Quick test_sms_resource_escalation;
    Alcotest.test_case "sms: max_ii exhaustion" `Quick test_sms_max_ii_exhaustion;
    Alcotest.test_case "sms: try_ii at RecII" `Quick test_try_ii_below_mii;
    QCheck_alcotest.to_alcotest prop_sms_ii_at_least_mii;
    QCheck_alcotest.to_alcotest prop_order_deterministic;
  ]
