(* SCC computation and MII bounds. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_scc_chain () =
  let g = Fixtures.chain 5 in
  check_int "five singleton components" 5 (List.length (Ts_ddg.Scc.compute g));
  check_int "no non-trivial SCC" 0 (Ts_ddg.Scc.count_non_trivial g)

let test_scc_self_loop () =
  let g = Fixtures.accumulator () in
  check_int "one non-trivial SCC" 1 (Ts_ddg.Scc.count_non_trivial g);
  match Ts_ddg.Scc.non_trivial g with
  | [ [ v ] ] -> check_int "the accumulator" 1 v
  | _ -> Alcotest.fail "expected one singleton self-loop component"

let test_scc_two_components () =
  let g = Fixtures.two_scc () in
  check_int "two non-trivial SCCs" 2 (Ts_ddg.Scc.count_non_trivial g);
  let comps = Ts_ddg.Scc.non_trivial g in
  check_bool "recurrence pair present" true (List.mem [ 0; 1 ] comps)

let test_scc_motivating () =
  (* the big circuit + three self-loops *)
  let g = Fixtures.motivating () in
  check_int "four non-trivial SCCs" 4 (Ts_ddg.Scc.count_non_trivial g)

let test_scc_reverse_topological () =
  let g = Fixtures.chain 3 in
  match Ts_ddg.Scc.compute g with
  | [ [ a ]; [ b ]; [ c ] ] ->
      (* successors must appear before their predecessors *)
      check_bool "order" true (a > b && b > c)
  | _ -> Alcotest.fail "expected three singletons"

let test_component_of () =
  let g = Fixtures.two_scc () in
  let owner = Ts_ddg.Scc.component_of g in
  check_bool "recurrence nodes share a component" true (owner.(0) = owner.(1));
  check_bool "accumulator separate" true (owner.(2) <> owner.(0))

let test_res_ii_issue_width () =
  (* 9 single-cycle ALU ops on a 4-wide machine with 4 ALUs: ceil(9/4) = 3 *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  for _ = 1 to 9 do
    ignore (Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu)
  done;
  let g = Ts_ddg.Ddg.Builder.build b in
  check_int "issue-width bound" 3 (Ts_ddg.Mii.res_ii g)

let test_res_ii_unit_bound () =
  (* 3 multiplies on the toy machine's single unpipelined multiplier:
     3 * busy 4 = 12 cycles of occupancy *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.toy in
  for _ = 1 to 3 do
    ignore (Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Fmul)
  done;
  let g = Ts_ddg.Ddg.Builder.build b in
  check_int "occupancy bound" 12 (Ts_ddg.Mii.res_ii g)

let test_res_ii_mem_ports () =
  (* 6 loads on 2 ports -> 3, above ceil(6/4) = 2 *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  for _ = 1 to 6 do
    ignore (Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load)
  done;
  let g = Ts_ddg.Ddg.Builder.build b in
  check_int "memory-port bound" 3 (Ts_ddg.Mii.res_ii g)

let test_rec_ii_acyclic () =
  check_int "acyclic" 0 (Ts_ddg.Mii.rec_ii (Fixtures.chain 4));
  check_int "diamond acyclic" 0 (Ts_ddg.Mii.rec_ii (Fixtures.diamond ()))

let test_rec_ii_self_loop () =
  (* fadd accumulator: latency 3 over distance 1 *)
  check_int "self loop" 3 (Ts_ddg.Mii.rec_ii (Fixtures.accumulator ()))

let test_rec_ii_distance_two () =
  (* two fadds (3+3) over total distance 2 -> ceil(6/2) = 3 *)
  let g = Fixtures.two_scc () in
  check_int "distance-2 recurrence" 3 (Ts_ddg.Mii.rec_ii g)

let test_rec_ii_motivating () =
  let g = Fixtures.motivating () in
  check_int "paper RecII" 8 (Ts_ddg.Mii.rec_ii g);
  check_int "paper ResII" 4 (Ts_ddg.Mii.res_ii g);
  check_int "paper MII" 8 (Ts_ddg.Mii.mii g)

let test_rec_ii_of_nodes () =
  let g = Fixtures.two_scc () in
  check_int "restricted to the pair" 3 (Ts_ddg.Mii.rec_ii_of_nodes g [ 0; 1 ]);
  check_int "restricted to the self-loop" 1 (Ts_ddg.Mii.rec_ii_of_nodes g [ 2 ])

let test_feasible () =
  let g = Fixtures.accumulator () in
  check_bool "ii = rec_ii feasible" true (Ts_ddg.Mii.feasible g ~ii:3);
  check_bool "ii below rec_ii infeasible" false (Ts_ddg.Mii.feasible g ~ii:2)

let test_ldp_chain () =
  (* 4 ialu in a chain: 4 cycles *)
  check_int "chain ldp" 4 (Ts_ddg.Mii.ldp (Fixtures.chain 4))

let test_ldp_diamond () =
  (* load(3) -> fmul(4) -> store(1) = 8 *)
  check_int "diamond ldp" 8 (Ts_ddg.Mii.ldp (Fixtures.diamond ()))

let test_ldp_ignores_carried () =
  (* the accumulator's self-dep is distance 1 and must not cycle LDP *)
  check_int "acc ldp" 6 (Ts_ddg.Mii.ldp (Fixtures.accumulator ()))

let test_ii_upper_bound_schedulable () =
  let g = Fixtures.motivating () in
  check_bool "upper bound is feasible" true
    (Ts_ddg.Mii.feasible g ~ii:(Ts_ddg.Mii.ii_upper_bound g))

let prop_mii_bounds =
  QCheck.Test.make ~count:60 ~name:"mii = max(res, rec) >= 1; ldp >= max latency"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      let res = Ts_ddg.Mii.res_ii g
      and rc = Ts_ddg.Mii.rec_ii g
      and mii = Ts_ddg.Mii.mii g in
      mii = max 1 (max res rc)
      && mii >= 1
      && Ts_ddg.Mii.ldp g
         >= Array.fold_left
              (fun acc (nd : Ts_ddg.Ddg.node) -> max acc nd.latency)
              0 g.nodes)

let prop_feasible_monotone =
  QCheck.Test.make ~count:40 ~name:"recurrence feasibility is monotone in II"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      let rc = Ts_ddg.Mii.rec_ii g in
      (rc = 0 || not (Ts_ddg.Mii.feasible g ~ii:(rc - 1)))
      && Ts_ddg.Mii.feasible g ~ii:rc
      && Ts_ddg.Mii.feasible g ~ii:(rc + 5))

let prop_scc_partition =
  QCheck.Test.make ~count:40 ~name:"SCCs partition the nodes"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      let comps = Ts_ddg.Scc.compute g in
      let all = List.concat comps |> List.sort compare in
      all = List.init (Ts_ddg.Ddg.n_nodes g) Fun.id)

let suite =
  [
    Alcotest.test_case "scc: chain is trivial" `Quick test_scc_chain;
    Alcotest.test_case "scc: self loop" `Quick test_scc_self_loop;
    Alcotest.test_case "scc: two components" `Quick test_scc_two_components;
    Alcotest.test_case "scc: motivating has 4" `Quick test_scc_motivating;
    Alcotest.test_case "scc: reverse topological order" `Quick test_scc_reverse_topological;
    Alcotest.test_case "scc: component_of" `Quick test_component_of;
    Alcotest.test_case "res_ii: issue width" `Quick test_res_ii_issue_width;
    Alcotest.test_case "res_ii: unpipelined unit" `Quick test_res_ii_unit_bound;
    Alcotest.test_case "res_ii: memory ports" `Quick test_res_ii_mem_ports;
    Alcotest.test_case "rec_ii: acyclic" `Quick test_rec_ii_acyclic;
    Alcotest.test_case "rec_ii: self loop" `Quick test_rec_ii_self_loop;
    Alcotest.test_case "rec_ii: distance 2" `Quick test_rec_ii_distance_two;
    Alcotest.test_case "rec_ii: motivating (paper values)" `Quick test_rec_ii_motivating;
    Alcotest.test_case "rec_ii: node subset" `Quick test_rec_ii_of_nodes;
    Alcotest.test_case "feasible: threshold" `Quick test_feasible;
    Alcotest.test_case "ldp: chain" `Quick test_ldp_chain;
    Alcotest.test_case "ldp: diamond" `Quick test_ldp_diamond;
    Alcotest.test_case "ldp: ignores carried deps" `Quick test_ldp_ignores_carried;
    Alcotest.test_case "ii_upper_bound: feasible" `Quick test_ii_upper_bound_schedulable;
    QCheck_alcotest.to_alcotest prop_mii_bounds;
    QCheck_alcotest.to_alcotest prop_feasible_monotone;
    QCheck_alcotest.to_alcotest prop_scc_partition;
  ]
