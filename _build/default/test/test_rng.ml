(* SplitMix64 RNG: determinism, independence, distribution sanity. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_deterministic () =
  let a = Ts_base.Rng.create 42L and b = Ts_base.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Ts_base.Rng.next_int64 a)
      (Ts_base.Rng.next_int64 b)
  done

let test_of_string_deterministic () =
  let a = Ts_base.Rng.of_string "hello" and b = Ts_base.Rng.of_string "hello" in
  Alcotest.(check int64) "same" (Ts_base.Rng.next_int64 a) (Ts_base.Rng.next_int64 b)

let test_of_string_distinct () =
  let a = Ts_base.Rng.of_string "hello" and b = Ts_base.Rng.of_string "world" in
  check_bool "different streams" false
    (Ts_base.Rng.next_int64 a = Ts_base.Rng.next_int64 b)

let test_split_independent () =
  let root = Ts_base.Rng.create 7L in
  let a = Ts_base.Rng.split root "a" in
  let b = Ts_base.Rng.split root "b" in
  check_bool "split streams differ" false
    (Ts_base.Rng.next_int64 a = Ts_base.Rng.next_int64 b)

let test_split_no_disturb () =
  let r1 = Ts_base.Rng.create 7L and r2 = Ts_base.Rng.create 7L in
  let _ = Ts_base.Rng.split r1 "x" in
  Alcotest.(check int64) "split does not advance parent" (Ts_base.Rng.next_int64 r1)
    (Ts_base.Rng.next_int64 r2)

let test_derive2_deterministic () =
  let root = Ts_base.Rng.create 99L in
  let a = Ts_base.Rng.derive2 root 3 14 and b = Ts_base.Rng.derive2 root 3 14 in
  Alcotest.(check int64) "same derivation" (Ts_base.Rng.next_int64 a)
    (Ts_base.Rng.next_int64 b)

let test_derive2_distinct () =
  let root = Ts_base.Rng.create 99L in
  let a = Ts_base.Rng.derive2 root 3 14 and b = Ts_base.Rng.derive2 root 14 3 in
  check_bool "argument order matters" false
    (Ts_base.Rng.next_int64 a = Ts_base.Rng.next_int64 b)

let test_int_bounds () =
  let r = Ts_base.Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Ts_base.Rng.int r 7 in
    check_bool "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_int_in_bounds () =
  let r = Ts_base.Rng.create 2L in
  for _ = 1 to 1000 do
    let v = Ts_base.Rng.int_in r (-3) 5 in
    check_bool "-3 <= v <= 5" true (v >= -3 && v <= 5)
  done

let test_int_covers_range () =
  let r = Ts_base.Rng.create 3L in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Ts_base.Rng.int r 5) <- true
  done;
  Array.iteri (fun i s -> check_bool (Printf.sprintf "value %d seen" i) true s) seen

let test_float_bounds () =
  let r = Ts_base.Rng.create 4L in
  for _ = 1 to 1000 do
    let v = Ts_base.Rng.float r 2.5 in
    check_bool "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_bool_probability () =
  let r = Ts_base.Rng.create 5L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Ts_base.Rng.bool r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_bool (Printf.sprintf "rate %.3f near 0.3" rate) true
    (rate > 0.27 && rate < 0.33)

let test_bool_extremes () =
  let r = Ts_base.Rng.create 6L in
  check_bool "p=0 never true" false (Ts_base.Rng.bool r 0.0);
  check_bool "p=1 always true" true (Ts_base.Rng.bool r 1.0)

let test_shuffle_permutation () =
  let r = Ts_base.Rng.create 8L in
  let a = Array.init 50 Fun.id in
  Ts_base.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_pick_member () =
  let r = Ts_base.Rng.create 9L in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check_bool "member" true (Array.mem (Ts_base.Rng.pick r a) a)
  done

let test_pick_weighted_bias () =
  let r = Ts_base.Rng.create 10L in
  let heavy = ref 0 in
  for _ = 1 to 5000 do
    if Ts_base.Rng.pick_weighted r [| ("a", 9.0); ("b", 1.0) |] = "a" then incr heavy
  done;
  check_bool "weighted pick is biased" true (!heavy > 4000)

let test_pick_weighted_single () =
  let r = Ts_base.Rng.create 11L in
  check_int "single choice" 1
    (Ts_base.Rng.pick_weighted r [| (1, 0.5) |])

let prop_int_in_range =
  QCheck.Test.make ~count:500 ~name:"rng int always in bound"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Ts_base.Rng.create (Int64.of_int seed) in
      let v = Ts_base.Rng.int r bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "create: deterministic" `Quick test_deterministic;
    Alcotest.test_case "of_string: deterministic" `Quick test_of_string_deterministic;
    Alcotest.test_case "of_string: distinct labels" `Quick test_of_string_distinct;
    Alcotest.test_case "split: independent" `Quick test_split_independent;
    Alcotest.test_case "split: parent undisturbed" `Quick test_split_no_disturb;
    Alcotest.test_case "derive2: deterministic" `Quick test_derive2_deterministic;
    Alcotest.test_case "derive2: order matters" `Quick test_derive2_distinct;
    Alcotest.test_case "int: bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in: bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int: covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float: bounds" `Quick test_float_bounds;
    Alcotest.test_case "bool: probability" `Quick test_bool_probability;
    Alcotest.test_case "bool: extremes" `Quick test_bool_extremes;
    Alcotest.test_case "shuffle: permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "pick: member" `Quick test_pick_member;
    Alcotest.test_case "pick_weighted: bias" `Quick test_pick_weighted_bias;
    Alcotest.test_case "pick_weighted: single" `Quick test_pick_weighted_single;
    QCheck_alcotest.to_alcotest prop_int_in_range;
  ]
