(* bench/main.exe — regenerates every table and figure of the paper and
   (optionally) times the pipeline stages with Bechamel.

   Usage:
     bench/main.exe                      reproduce everything (full suite)
     bench/main.exe table2 fig4          specific experiments
     bench/main.exe --limit 8 all        cap loops per benchmark
     bench/main.exe micro                Bechamel micro-benchmarks
                                         (one Test.make per table/figure) *)

let usage () =
  prerr_endline
    "usage: main.exe [--limit N] [all|table1|fig2|table2|fig4|table3|fig5|fig6|ablation|micro]...";
  exit 2

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure, timing the unit of
   work that experiment repeats (a schedule, a simulation, ...). *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let params = Ts_isa.Spmt_params.default in
  let cfg4 = Ts_spmt.Config.default in
  let motivating = Ts_workload.Motivating.ddg () in
  let swim = List.hd (Ts_workload.Spec_suite.loops (Ts_workload.Spec_suite.find "swim")) in
  let equake = List.hd Ts_workload.Doacross.equake.Ts_workload.Doacross.loops in
  let equake_kernel =
    (Ts_tms.Tms.schedule_sweep ~params equake).Ts_tms.Tms.kernel
  in
  let equake_sms = (Ts_sms.Sms.schedule equake).Ts_sms.Sms.kernel in
  let plan = Ts_spmt.Address_plan.create equake in
  let tests =
    [
      (* Table 1 is configuration only: time its pretty-printer. *)
      Test.make ~name:"table1:render-config"
        (Staged.stage (fun () ->
             ignore (Format.asprintf "%a" Ts_spmt.Config.pp Ts_spmt.Config.default)));
      (* Figure 2: SMS and TMS on the motivating example. *)
      Test.make ~name:"fig2:sms+tms-motivating"
        (Staged.stage (fun () ->
             ignore (Ts_sms.Sms.schedule motivating);
             ignore (Ts_tms.Tms.schedule_sweep ~params motivating)));
      (* Table 2's unit of work: scheduling one suite loop both ways. *)
      Test.make ~name:"table2:schedule-suite-loop"
        (Staged.stage (fun () ->
             ignore (Ts_sms.Sms.schedule swim);
             ignore (Ts_tms.Tms.schedule_sweep ~params swim)));
      (* Figure 4's unit of work: one SpMT simulation of a scheduled loop. *)
      Test.make ~name:"fig4:simulate-400-iters"
        (Staged.stage (fun () ->
             ignore (Ts_spmt.Sim.run ~plan cfg4 equake_kernel ~trip:400)));
      (* Table 3: DOACROSS analysis metrics. *)
      Test.make ~name:"table3:loop-metrics"
        (Staged.stage (fun () ->
             ignore (Ts_ddg.Mii.mii equake);
             ignore (Ts_ddg.Mii.ldp equake);
             ignore (Ts_ddg.Scc.count_non_trivial equake)));
      (* Figure 5: the single-threaded baseline simulation. *)
      Test.make ~name:"fig5:single-threaded-400-iters"
        (Staged.stage (fun () ->
             ignore (Ts_spmt.Single.run ~plan cfg4 equake ~trip:400)));
      (* Figure 6: stall/communication accounting (simulation + analysis). *)
      Test.make ~name:"fig6:sim-with-accounting"
        (Staged.stage (fun () ->
             let st = Ts_spmt.Sim.run ~plan cfg4 equake_sms ~trip:400 in
             ignore st.Ts_spmt.Sim.stall_breakdown));
      (* Ablation: TMS at P_max = 0 plus a synchronised-memory run. *)
      Test.make ~name:"ablation:nospec-schedule+sim"
        (Staged.stage (fun () ->
             let r = Ts_tms.Tms.schedule ~p_max:0.0 ~params equake in
             ignore
               (Ts_spmt.Sim.run ~plan ~sync_mem:true cfg4 r.Ts_tms.Tms.kernel
                  ~trip:400)));
    ]
  in
  let test = Test.make_grouped ~name:"tsms" ~fmt:"%s %s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  (* Plain-text report: nanoseconds per run, OLS estimate. *)
  print_endline "Bechamel micro-benchmarks (monotonic clock, ns/run):";
  Hashtbl.iter
    (fun _ tbl ->
      let rows =
        Hashtbl.fold (fun name result acc -> (name, result) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun (name, result) ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-40s %12.0f\n" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        rows)
    results

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let limit = ref None in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--limit" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v > 0 -> limit := Some v
        | _ -> usage ());
        parse rest
    | "--help" :: _ | "-h" :: _ -> usage ()
    | name :: rest ->
        names := name :: !names;
        parse rest
  in
  parse args;
  let names = match List.rev !names with [] -> [ "all" ] | ns -> ns in
  List.iter
    (fun name ->
      if name = "micro" then micro ()
      else
        try
          Ts_harness.Experiments.run ?limit:!limit ~names:[ name ] (fun block ->
              print_string block;
              print_newline ())
        with Invalid_argument msg ->
          prerr_endline ("bench: " ^ msg);
          usage ())
    names
