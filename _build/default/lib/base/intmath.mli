(** Integer division helpers with well-defined rounding for negatives.

    OCaml's [/] truncates toward zero; modulo arithmetic over schedule
    cycles (which may be negative during construction) needs floor/ceiling
    semantics. *)

val div_floor : int -> int -> int
(** [div_floor a b] rounds toward negative infinity. [b > 0]. *)

val div_ceil : int -> int -> int
(** [div_ceil a b] rounds toward positive infinity. [b > 0]. *)

val modulo : int -> int -> int
(** [modulo a b] is the representative of [a] in [\[0, b)]. [b > 0]. *)
