let div_floor a b =
  assert (b > 0);
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

let div_ceil a b =
  assert (b > 0);
  if a >= 0 then (a + b - 1) / b else -((-a) / b)

let modulo a b =
  let m = a mod b in
  if m < 0 then m + b else m
