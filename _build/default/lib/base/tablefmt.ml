type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  cols : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ?title cols = { title; cols; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.cols then
    invalid_arg "Tablefmt.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.cols in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc r ->
            match r with
            | Sep -> acc
            | Cells cs -> max acc (String.length (List.nth cs i)))
          (String.length h) rows)
      headers
  in
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let line_of cells =
    let padded =
      List.map2
        (fun (w, (_, a)) c -> pad a w c)
        (List.combine widths t.cols)
        cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let sep_line =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 1024 in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf sep_line;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line_of headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep_line;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      (match r with
      | Sep -> Buffer.add_string buf sep_line
      | Cells cs -> Buffer.add_string buf (line_of cs));
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf sep_line;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print t = print_string (render t)

let cell_int = string_of_int
let cell_f1 x = Printf.sprintf "%.1f" x
let cell_f2 x = Printf.sprintf "%.2f" x
let cell_pct x = Printf.sprintf "%.1f%%" x
