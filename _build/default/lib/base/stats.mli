(** Small statistics helpers used when aggregating per-loop metrics into the
    per-benchmark rows the paper reports. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val mean_int : int list -> float
(** Arithmetic mean of integers; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 for the empty list. All inputs must be positive. *)

val weighted_mean : (float * float) list -> float
(** [weighted_mean \[(v, w); ...\]] with positive total weight. *)

val percent_change : float -> float -> float
(** [percent_change base v] is [(v - base) / base * 100]. *)

val speedup_percent : baseline:float -> improved:float -> float
(** [speedup_percent ~baseline ~improved] is the paper's "speedup of X over
    Y" convention: [(baseline / improved - 1) * 100], i.e. +100% means twice
    as fast. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp into [\[lo, hi\]]. *)

val round1 : float -> float
(** Round to one decimal place (used when printing table rows). *)
