(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    experiment is reproducible bit-for-bit. The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA'14): a tiny, fast, well-distributed
    generator whose streams can be split deterministically, which lets us
    give every (suite, benchmark, loop, role) tuple its own independent
    stream. *)

type t
(** A mutable generator. Distinct values of [t] evolve independently. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val of_string : string -> t
(** [of_string s] seeds a generator from an arbitrary label (FNV-1a hash of
    [s]); used to derive per-entity streams from readable names. *)

val split : t -> string -> t
(** [split t label] derives a new independent generator from [t]'s current
    state and [label], without disturbing [t]'s own stream. *)

val derive2 : t -> int -> int -> t
(** [derive2 t a b] derives an independent generator from [t]'s current
    state and the pair [(a, b)], without disturbing [t]. Cheaper than
    {!split} with a formatted label; used in simulator hot paths (one
    stream per (edge, iteration)). *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val pick_weighted : t -> ('a * float) array -> 'a
(** [pick_weighted t choices] picks proportionally to the (positive)
    weights. The array must be non-empty with positive total weight. *)
