(* SplitMix64. State advances by the golden-gamma constant; outputs are the
   finalised mix of the state. See Steele, Lea & Flood, OOPSLA'14. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }

(* FNV-1a, 64-bit: stable string hashing independent of OCaml's [Hashtbl]
   internals (which may change across compiler releases). *)
let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_string s = create (fnv1a s)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t label =
  (* Derive from the *current* state without consuming an output of [t]:
     mixing with the label hash keeps sibling streams independent. *)
  create (mix64 (Int64.add t.state (fnv1a label)))

let derive2 t a b =
  let ha = mix64 (Int64.mul (Int64.of_int (a + 1)) golden_gamma) in
  let hb = mix64 (Int64.mul (Int64.of_int (b + 0x9E37)) 0xC2B2AE3D27D4EB4FL) in
  create (mix64 (Int64.add t.state (Int64.add ha hb)))

let int t bound =
  assert (bound > 0);
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next_int64 t) mask) in
  v mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits into the mantissa. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_weighted t choices =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 choices in
  assert (total > 0.0);
  let x = float t total in
  let rec go i acc =
    if i = Array.length choices - 1 then fst choices.(i)
    else
      let acc = acc +. snd choices.(i) in
      if x < acc then fst choices.(i) else go (i + 1) acc
  in
  go 0 0.0
