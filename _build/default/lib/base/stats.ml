let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_int xs = mean (List.map float_of_int xs)

let geomean = function
  | [] -> 0.0
  | xs ->
      let logsum =
        List.fold_left
          (fun acc x ->
            assert (x > 0.0);
            acc +. log x)
          0.0 xs
      in
      exp (logsum /. float_of_int (List.length xs))

let weighted_mean vws =
  let num = List.fold_left (fun acc (v, w) -> acc +. (v *. w)) 0.0 vws in
  let den = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 vws in
  assert (den > 0.0);
  num /. den

let percent_change base v = (v -. base) /. base *. 100.0

let speedup_percent ~baseline ~improved =
  assert (improved > 0.0);
  ((baseline /. improved) -. 1.0) *. 100.0

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let round1 x = Float.round (x *. 10.0) /. 10.0
