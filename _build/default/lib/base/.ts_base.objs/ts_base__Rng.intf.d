lib/base/rng.mli:
