lib/base/tablefmt.ml: Buffer List Printf String
