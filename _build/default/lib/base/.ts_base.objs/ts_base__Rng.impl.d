lib/base/rng.ml: Array Char Int64 String
