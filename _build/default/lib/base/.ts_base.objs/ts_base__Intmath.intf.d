lib/base/intmath.mli:
