lib/base/stats.ml: Float List
