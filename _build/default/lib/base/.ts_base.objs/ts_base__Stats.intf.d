lib/base/stats.mli:
