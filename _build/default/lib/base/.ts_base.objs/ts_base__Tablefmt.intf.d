lib/base/tablefmt.mli:
