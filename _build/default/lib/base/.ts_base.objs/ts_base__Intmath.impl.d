lib/base/intmath.ml:
