type row = {
  bench : string;
  loop_speedup : float;
  program_speedup : float;
  single_cycles : int;
  tms_cycles : int;
}

let compute (runs : Doacross_runs.t list) =
  List.map
    (fun (r : Doacross_runs.t) ->
      let single_cycles =
        List.fold_left
          (fun a l -> a + l.Doacross_runs.sim_single.Ts_spmt.Single.cycles)
          0 r.loops
      in
      let tms_cycles =
        List.fold_left
          (fun a l -> a + l.Doacross_runs.sim_tms.Ts_spmt.Sim.cycles)
          0 r.loops
      in
      let loop_speedup =
        Ts_base.Stats.speedup_percent
          ~baseline:(float_of_int single_cycles)
          ~improved:(float_of_int tms_cycles)
      in
      {
        bench = r.sel.bench;
        loop_speedup;
        program_speedup =
          Fig4.program_speedup_of ~coverage:r.sel.coverage
            ~loop_speedup_pct:loop_speedup;
        single_cycles;
        tms_cycles;
      })
    runs

let averages rows =
  ( Ts_base.Stats.mean (List.map (fun r -> r.loop_speedup) rows),
    Ts_base.Stats.mean (List.map (fun r -> r.program_speedup) rows) )

let render rows =
  let open Ts_base.Tablefmt in
  let t =
    create
      ~title:"Figure 5: speedups of TMS over single-threaded code (DOACROSS loops)"
      [
        ("Benchmark", Left); ("1T cycles", Right); ("TMS cycles", Right);
        ("Loop speedup", Right); ("Program speedup", Right);
      ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.bench; cell_int r.single_cycles; cell_int r.tms_cycles;
          cell_pct r.loop_speedup; cell_pct r.program_speedup;
        ])
    rows;
  let lavg, pavg = averages rows in
  add_sep t;
  add_row t [ "average"; ""; ""; cell_pct lavg; cell_pct pavg ];
  render t
