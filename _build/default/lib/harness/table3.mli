(** Table 3: the selected DOACROSS loops and their TMS schedules.

    Per benchmark: loop count, loop coverage (LC), average instruction
    count, average non-trivial SCC count, average MII, average LDP, and
    the TMS schedule's average II, MaxLive (ML) and C_delay (D). Shape:
    art and lucas are recurrence-bound (MII well above #inst / issue
    width); lucas's C_delay is of the order of its II (its recurrence
    spans the whole kernel) while the others keep D far below II. *)

type row = {
  bench : string;
  n_loops : int;
  coverage : float;
  avg_inst : float;
  avg_scc : float;
  avg_mii : float;
  avg_ldp : float;
  tms_ii : float;
  tms_maxlive : float;
  tms_c_delay : float;
}

val compute : Doacross_runs.t list -> row list
val render : row list -> string
