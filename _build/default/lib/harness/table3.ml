module K = Ts_modsched.Kernel

type row = {
  bench : string;
  n_loops : int;
  coverage : float;
  avg_inst : float;
  avg_scc : float;
  avg_mii : float;
  avg_ldp : float;
  tms_ii : float;
  tms_maxlive : float;
  tms_c_delay : float;
}

let compute (runs : Doacross_runs.t list) =
  List.map
    (fun (r : Doacross_runs.t) ->
      let favg f = Ts_base.Stats.mean (List.map f r.loops) in
      {
        bench = r.sel.bench;
        n_loops = List.length r.loops;
        coverage = r.sel.coverage;
        avg_inst = favg (fun l -> float_of_int (Ts_ddg.Ddg.n_nodes l.Doacross_runs.g));
        avg_scc =
          favg (fun l -> float_of_int (Ts_ddg.Scc.count_non_trivial l.Doacross_runs.g));
        avg_mii = favg (fun l -> float_of_int (Ts_ddg.Mii.mii l.Doacross_runs.g));
        avg_ldp = favg (fun l -> float_of_int (Ts_ddg.Mii.ldp l.Doacross_runs.g));
        tms_ii =
          favg (fun l -> float_of_int l.Doacross_runs.tms.Ts_tms.Tms.kernel.K.ii);
        tms_maxlive =
          favg (fun l ->
              float_of_int (K.max_live l.Doacross_runs.tms.Ts_tms.Tms.kernel));
        tms_c_delay =
          favg (fun l -> float_of_int l.Doacross_runs.tms.Ts_tms.Tms.achieved_c_delay);
      })
    runs

let render rows =
  let open Ts_base.Tablefmt in
  let t =
    create ~title:"Table 3: selected DOACROSS loops and their TMS-scheduled loops"
      [
        ("Benchmark", Left); ("#Loops", Right); ("LC", Right); ("AVG #Inst", Right);
        ("AVG #SCC", Right); ("AVG MII", Right); ("AVG LDP", Right);
        ("TMS AVG II", Right); ("TMS AVG ML", Right); ("TMS AVG D", Right);
      ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.bench; cell_int r.n_loops;
          cell_pct (r.coverage *. 100.0);
          cell_f1 r.avg_inst; cell_f1 r.avg_scc; cell_f1 r.avg_mii;
          cell_f1 r.avg_ldp; cell_f1 r.tms_ii; cell_f1 r.tms_maxlive;
          cell_f1 r.tms_c_delay;
        ])
    rows;
  render t
