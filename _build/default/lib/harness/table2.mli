(** Table 2: SMS and TMS compared with traditional modulo-scheduling
    metrics over the whole suite.

    For each benchmark: loop count, average instruction count, average
    MII, then per scheduler the average II, MaxLive and achieved C_delay.
    The shape criteria (Section 5.1): TMS trades a somewhat larger II and
    MaxLive for a much smaller C_delay, i.e. a smaller II-to-C_delay gap —
    more TLP. *)

type row = {
  bench : string;
  n_loops : int;
  avg_inst : float;
  avg_mii : float;
  sms_ii : float;
  sms_maxlive : float;
  sms_c_delay : float;
  tms_ii : float;
  tms_maxlive : float;
  tms_c_delay : float;
}

val row_of_runs :
  params:Ts_isa.Spmt_params.t ->
  Ts_workload.Spec_suite.bench ->
  Suite.loop_run list ->
  row

val compute :
  ?limit:int -> params:Ts_isa.Spmt_params.t -> unit -> row list
(** One row per benchmark, in Table 2 order. [limit] caps loops per
    benchmark (for quick runs). *)

val render : row list -> string
(** The table as aligned text. *)
