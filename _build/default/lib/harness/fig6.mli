(** Figure 6: synchronisation behaviour of TMS vs SMS on the selected
    DOACROSS loops.

    (a) synchronisation stalls under TMS, normalised to SMS (the paper
    sees reductions above 50% for art, equake and fma3d, less for the
    recurrence-bound lucas);
    (b) the percentage increase in dynamically executed SEND/RECV pairs
    under TMS (TMS trades a little communication for TLP; even lucas adds
    only about three pairs per iteration);
    (c) communication overhead (stall cycles + C_reg_com per pair),
    normalised to SMS — down despite (b). *)

type row = {
  bench : string;
  sms_stall : int;
  tms_stall : int;
  stall_norm : float;  (** TMS / SMS, in [0, ...) — Fig. 6(a) *)
  sms_pairs : int;
  tms_pairs : int;
  pairs_increase : float;  (** percent — Fig. 6(b) *)
  extra_pairs_per_iter : float;  (** absolute SEND/RECV pairs added per iteration *)
  sms_comm : int;
  tms_comm : int;
  comm_norm : float;  (** TMS / SMS — Fig. 6(c) *)
}

val compute : Doacross_runs.t list -> row list
val render : row list -> string
