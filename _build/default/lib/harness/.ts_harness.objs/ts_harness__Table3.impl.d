lib/harness/table3.ml: Doacross_runs List Ts_base Ts_ddg Ts_modsched Ts_tms
