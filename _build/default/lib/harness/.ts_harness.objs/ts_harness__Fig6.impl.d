lib/harness/fig6.ml: Doacross_runs List Ts_base Ts_spmt
