lib/harness/fig5.mli: Doacross_runs
