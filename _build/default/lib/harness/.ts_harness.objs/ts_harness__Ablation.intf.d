lib/harness/ablation.mli: Doacross_runs Ts_spmt
