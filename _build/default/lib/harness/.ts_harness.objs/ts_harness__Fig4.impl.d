lib/harness/fig4.ml: List Suite Ts_base Ts_sms Ts_spmt Ts_tms Ts_workload
