lib/harness/ablation.ml: Doacross_runs List Printf Ts_base Ts_spmt Ts_tms
