lib/harness/fig6.mli: Doacross_runs
