lib/harness/suite.ml: List Ts_ddg Ts_sms Ts_tms Ts_workload
