lib/harness/scaling.ml: List Ts_base Ts_modsched Ts_sms Ts_spmt Ts_tms Ts_workload
