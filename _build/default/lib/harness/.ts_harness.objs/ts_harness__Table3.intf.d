lib/harness/table3.mli: Doacross_runs
