lib/harness/fig5.ml: Doacross_runs Fig4 List Ts_base Ts_spmt
