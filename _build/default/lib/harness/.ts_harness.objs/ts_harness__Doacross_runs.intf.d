lib/harness/doacross_runs.mli: Ts_ddg Ts_sms Ts_spmt Ts_tms Ts_workload
