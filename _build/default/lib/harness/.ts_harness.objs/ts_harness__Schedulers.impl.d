lib/harness/schedulers.ml: List Printf Ts_base Ts_ddg Ts_isa Ts_modsched Ts_sms Ts_spmt Ts_tms Ts_workload
