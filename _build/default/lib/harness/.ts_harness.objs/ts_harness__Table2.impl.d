lib/harness/table2.ml: List Suite Ts_base Ts_ddg Ts_isa Ts_modsched Ts_sms Ts_tms Ts_workload
