lib/harness/scaling.mli:
