lib/harness/fig4.mli: Ts_spmt
