lib/harness/unrolling.mli: Ts_spmt
