lib/harness/experiments.mli:
