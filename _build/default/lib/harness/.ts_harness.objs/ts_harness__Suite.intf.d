lib/harness/suite.mli: Ts_ddg Ts_isa Ts_sms Ts_tms Ts_workload
