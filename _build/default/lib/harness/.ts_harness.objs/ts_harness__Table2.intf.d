lib/harness/table2.mli: Suite Ts_isa Ts_workload
