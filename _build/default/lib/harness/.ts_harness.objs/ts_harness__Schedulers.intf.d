lib/harness/schedulers.mli: Ts_spmt
