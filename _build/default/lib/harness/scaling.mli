(** Insights experiment: core-count scaling.

    Section 5 closes by analysing where further speedups would come from;
    the cost model says the serial component [max(C_spn, C_ci, C_delay)]
    caps scaling once [T_lb / ncore] falls below it. This bench measures
    the DOACROSS loops on 2/4/8/16 cores under SMS and TMS: TMS keeps
    scaling until its small C_delay becomes the wall, while SMS hits its
    large C_delay almost immediately — the gap between the two grows with
    the core count. *)

type row = {
  bench : string;
  ncore : int;
  sms_cpi : float;  (** SMS cycles per iteration *)
  tms_cpi : float;
  tms_gain : float;  (** percent speedup of TMS over SMS *)
  model_floor : float;  (** the cost model's serial floor for the TMS schedule *)
}

val compute : ?ncores:int list -> unit -> row list
(** Default core counts: 2, 4, 8, 16. One representative loop per DOACROSS
    benchmark; schedules are re-derived per core count (the cost model
    depends on [ncore]). *)

val render : row list -> string
