type loop_data = {
  g : Ts_ddg.Ddg.t;
  plan : Ts_spmt.Address_plan.t;
  sms : Ts_sms.Sms.result;
  tms : Ts_tms.Tms.result;
  sim_sms : Ts_spmt.Sim.stats;
  sim_tms : Ts_spmt.Sim.stats;
  sim_single : Ts_spmt.Single.stats;
}

type t = { sel : Ts_workload.Doacross.selected; loops : loop_data list }

(* Longest address-stream wrap is 2KB / 4B = 512 iterations: after that
   every stream is cache-resident and the measurement is steady-state. *)
let warmup = 512

let compute ~cfg =
  let params = cfg.Ts_spmt.Config.params in
  List.map
    (fun (sel : Ts_workload.Doacross.selected) ->
      let loops =
        List.map
          (fun g ->
            let plan = Ts_spmt.Address_plan.create g in
            let sms = Ts_sms.Sms.schedule g in
            let tms = Ts_tms.Tms.schedule_sweep ~params g in
            let trip = sel.trip in
            {
              g;
              plan;
              sms;
              tms;
              sim_sms = Ts_spmt.Sim.run ~plan ~warmup cfg sms.Ts_sms.Sms.kernel ~trip;
              sim_tms = Ts_spmt.Sim.run ~plan ~warmup cfg tms.Ts_tms.Tms.kernel ~trip;
              sim_single = Ts_spmt.Single.run ~plan ~warmup cfg g ~trip;
            })
          sel.loops
      in
      { sel; loops })
    Ts_workload.Doacross.all
