(** Figure 4: speedups of TMS over SMS on the quad-core SpMT system.

    Every loop of every benchmark is simulated under both schedules with
    identical address streams; the per-benchmark loop speedup is the ratio
    of total SMS cycles to total TMS cycles, and the program speedup
    applies Amdahl's law with the benchmark's loop coverage ratio. The
    paper reports positive loop speedups everywhere but wupwise, 28%
    average loop speedup and 10% average program speedup. *)

type row = {
  bench : string;
  loop_speedup : float;  (** percent *)
  program_speedup : float;  (** percent *)
  sms_cycles : int;
  tms_cycles : int;
}

val program_speedup_of : coverage:float -> loop_speedup_pct:float -> float
(** Amdahl: program speedup (percent) from a loop speedup (percent) and
    the fraction of program time spent in the loops. *)

val compute :
  ?limit:int -> cfg:Ts_spmt.Config.t -> unit -> row list

val averages : row list -> float * float
(** [(avg loop speedup, avg program speedup)], simple means as in the
    paper's "28% and 10%". *)

val render : row list -> string
