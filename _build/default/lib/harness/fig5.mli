(** Figure 5: speedups of TMS over single-threaded code on the selected
    DOACROSS loops.

    The paper reports loop speedups between 37% and 210% (average 73%)
    and program speedups up to 24% (equake, thanks to its 58.5% loop
    coverage; average 12%). *)

type row = {
  bench : string;
  loop_speedup : float;  (** percent *)
  program_speedup : float;  (** percent *)
  single_cycles : int;
  tms_cycles : int;
}

val compute : Doacross_runs.t list -> row list
val averages : row list -> float * float
val render : row list -> string
