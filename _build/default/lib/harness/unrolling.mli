(** Future-work experiment: unrolling as a communication/parallelism knob.

    The paper's conclusion proposes incorporating loop unrolling into TMS
    "to trade off between communication and parallelism by varying thread
    granularities". This bench runs TMS over each DOACROSS loop unrolled
    1-4 times and reports, per source iteration: II (granularity), SEND/RECV
    pairs (communication), simulated cycles, and the misspeculation rate
    (rollback cost grows with granularity). *)

type row = {
  bench : string;
  factor : int;
  ii : int;  (** kernel II of the unrolled body *)
  ii_per_iter : float;  (** II / factor — granularity-normalised *)
  pairs_per_iter : float;  (** SEND/RECV pairs per source iteration *)
  c_delay : int;
  cycles_per_iter : float;  (** simulated, per source iteration *)
  misspec : float;  (** squashes per committed thread *)
}

val compute : ?factors:int list -> cfg:Ts_spmt.Config.t -> unit -> row list
(** One row per (loop, factor); factors default to [1; 2; 3; 4]. Uses one
    representative loop per DOACROSS benchmark. *)

val render : row list -> string
