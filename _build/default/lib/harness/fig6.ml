type row = {
  bench : string;
  sms_stall : int;
  tms_stall : int;
  stall_norm : float;
  sms_pairs : int;
  tms_pairs : int;
  pairs_increase : float;
  extra_pairs_per_iter : float;
  sms_comm : int;
  tms_comm : int;
  comm_norm : float;
}

let compute (runs : Doacross_runs.t list) =
  List.map
    (fun (r : Doacross_runs.t) ->
      let sum f = List.fold_left (fun a l -> a + f l) 0 r.loops in
      let sms_stall = sum (fun l -> l.Doacross_runs.sim_sms.Ts_spmt.Sim.sync_stall_cycles) in
      let tms_stall = sum (fun l -> l.Doacross_runs.sim_tms.Ts_spmt.Sim.sync_stall_cycles) in
      let sms_pairs = sum (fun l -> l.Doacross_runs.sim_sms.Ts_spmt.Sim.send_recv_pairs) in
      let tms_pairs = sum (fun l -> l.Doacross_runs.sim_tms.Ts_spmt.Sim.send_recv_pairs) in
      let sms_comm =
        sum (fun l -> l.Doacross_runs.sim_sms.Ts_spmt.Sim.communication_overhead)
      in
      let tms_comm =
        sum (fun l -> l.Doacross_runs.sim_tms.Ts_spmt.Sim.communication_overhead)
      in
      let committed =
        sum (fun l -> l.Doacross_runs.sim_tms.Ts_spmt.Sim.committed)
      in
      let norm a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b in
      {
        bench = r.sel.bench;
        sms_stall;
        tms_stall;
        stall_norm = norm tms_stall sms_stall;
        sms_pairs;
        tms_pairs;
        pairs_increase =
          (if sms_pairs = 0 then 0.0
           else Ts_base.Stats.percent_change (float_of_int sms_pairs) (float_of_int tms_pairs));
        extra_pairs_per_iter =
          float_of_int (tms_pairs - sms_pairs) /. float_of_int (max 1 committed);
        sms_comm;
        tms_comm;
        comm_norm = norm tms_comm sms_comm;
      })
    runs

let render rows =
  let open Ts_base.Tablefmt in
  let t =
    create
      ~title:
        "Figure 6: synchronisation of TMS vs SMS (a: stalls, b: SEND/RECV pairs, c: communication overhead)"
      [
        ("Benchmark", Left);
        ("SMS stalls", Right); ("TMS stalls", Right); ("a) TMS/SMS", Right);
        ("SMS pairs", Right); ("TMS pairs", Right); ("b) increase", Right);
        ("extra/iter", Right);
        ("SMS comm", Right); ("TMS comm", Right); ("c) TMS/SMS", Right);
      ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.bench;
          cell_int r.sms_stall; cell_int r.tms_stall; cell_f2 r.stall_norm;
          cell_int r.sms_pairs; cell_int r.tms_pairs; cell_pct r.pairs_increase;
          cell_f1 r.extra_pairs_per_iter;
          cell_int r.sms_comm; cell_int r.tms_comm; cell_f2 r.comm_norm;
        ])
    rows;
  render t
