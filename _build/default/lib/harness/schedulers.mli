(** Scheduler ablation: base algorithm and admission conditions.

    Two claims get exercised here. First, Section 4.1's "TMS is not tied to
    any existing modulo scheduling algorithm": the same Figure 3 search runs
    over SMS and over Rau's IMS, and both reach similar C_delay and similar
    simulated performance. Second, the admission conditions matter
    separately: C1 alone (P_max = 1, speculate everything) already removes
    most synchronisation stalls, while C2 reins the misspeculation the
    unbounded variant incurs. *)

type row = {
  loop : string;
  variant : string;  (** "sms", "ims", "ts-sms", "ts-sms-c1" (P_max = 1), "ts-ims" *)
  ii : int;
  c_delay : int;
  misspec_static : float;  (** P_M predicted by the schedule *)
  cycles_per_iter : float;  (** simulated on the quad-core machine *)
  misspec_dynamic : float;  (** measured squash rate *)
}

val compute : cfg:Ts_spmt.Config.t -> row list
(** Five variants over one representative loop per DOACROSS benchmark. *)

val render : row list -> string
