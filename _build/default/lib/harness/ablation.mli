(** The Section 5.2 speculation ablation.

    "Without speculation, all inter-thread memory dependences will have to
    be synchronised, resulting in some loss of TLP … the performance gain
    for the loop would be reduced by 19.0% for equake and 21.4% for
    fma3d." We reproduce it by re-scheduling with [P_max = 0] (every
    speculated dependence must be preserved, otherwise the scheduler keeps
    escalating) and simulating with [sync_mem] (memory dependences wait
    like register dependences, the MDT never squashes). *)

type row = {
  bench : string;
  spec_gain : float;  (** TMS-over-single loop speedup, percent *)
  nospec_gain : float;  (** same without speculation *)
  gain_reduction : float;  (** percent of the gain lost, the paper's metric *)
  misspec_rate : float;  (** measured with speculation on *)
}

val compute : cfg:Ts_spmt.Config.t -> Doacross_runs.t list -> row list
val render : row list -> string
