let cdiv a b = (a + b - 1) / b

let res_ii (g : Ddg.t) =
  let m = g.machine in
  (* Occupancy per functional-unit class. *)
  let demand = Hashtbl.create 8 in
  Array.iter
    (fun (nd : Ddg.node) ->
      let d = m.Ts_isa.Machine.describe nd.op in
      let cur = try Hashtbl.find demand d.fu with Not_found -> 0 in
      Hashtbl.replace demand d.fu (cur + d.busy))
    g.nodes;
  let fu_bound =
    Hashtbl.fold
      (fun fu busy acc ->
        let units = Ts_isa.Machine.fu_count m fu in
        if units = 0 then
          invalid_arg
            (Printf.sprintf "Mii.res_ii: machine %s has no %s unit"
               m.Ts_isa.Machine.name
               (Ts_isa.Machine.fu_to_string fu));
        max acc (cdiv busy units))
      demand 0
  in
  let width_bound = cdiv (Ddg.n_nodes g) m.Ts_isa.Machine.issue_width in
  max 1 (max fu_bound width_bound)

(* Positive-cycle test: with t(dst) >= t(src) + lat(src) - ii * distance,
   [ii] is recurrence-feasible iff the graph with those edge weights has no
   positive-weight cycle. Bellman-Ford from a virtual source connected to
   every node with weight 0; if any distance still relaxes after n rounds, a
   positive cycle exists. [mask] restricts the test to a node subset. *)
let feasible_masked (g : Ddg.t) ~mask ~ii =
  let n = Ddg.n_nodes g in
  let dist = Array.make n 0 in
  let changed = ref true in
  let rounds = ref 0 in
  let ok = ref true in
  while !changed && !ok do
    changed := false;
    Array.iter
      (fun (e : Ddg.edge) ->
        if mask e.src && mask e.dst then begin
          let w = Ddg.latency g e.src - (ii * e.distance) in
          if dist.(e.src) + w > dist.(e.dst) then begin
            dist.(e.dst) <- dist.(e.src) + w;
            changed := true
          end
        end)
      g.edges;
    incr rounds;
    if !changed && !rounds > n then ok := false
  done;
  !ok

let feasible g ~ii = feasible_masked g ~mask:(fun _ -> true) ~ii

let rec_ii_masked (g : Ddg.t) ~mask =
  let upper = Array.fold_left (fun acc (nd : Ddg.node) -> acc + nd.latency) 1 g.nodes in
  if feasible_masked g ~mask ~ii:0 then 0
  else begin
    (* Smallest feasible ii in [1, upper]; upper is always feasible since
       every cycle has distance >= 1. *)
    let lo = ref 1 and hi = ref upper in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if feasible_masked g ~mask ~ii:mid then hi := mid else lo := mid + 1
    done;
    !lo
  end

let rec_ii g = rec_ii_masked g ~mask:(fun _ -> true)

let rec_ii_of_nodes g nodes =
  let n = Ddg.n_nodes g in
  let in_set = Array.make n false in
  List.iter (fun v -> in_set.(v) <- true) nodes;
  rec_ii_masked g ~mask:(fun v -> in_set.(v))

let mii g = max 1 (max (res_ii g) (rec_ii g))

let ldp (g : Ddg.t) =
  let n = Ddg.n_nodes g in
  (* Longest path by DP over a topological order of distance-0 edges. *)
  let indeg = Array.make n 0 in
  let zero_succs v =
    List.filter (fun (e : Ddg.edge) -> e.distance = 0) g.succs.(v)
  in
  for v = 0 to n - 1 do
    List.iter (fun (e : Ddg.edge) -> indeg.(e.dst) <- indeg.(e.dst) + 1) (zero_succs v)
  done;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let best = Array.init n (fun v -> Ddg.latency g v) in
  let seen = ref 0 in
  let result = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    result := max !result best.(v);
    List.iter
      (fun (e : Ddg.edge) ->
        let cand = best.(v) + Ddg.latency g e.dst in
        if cand > best.(e.dst) then best.(e.dst) <- cand;
        indeg.(e.dst) <- indeg.(e.dst) - 1;
        if indeg.(e.dst) = 0 then Queue.add e.dst queue)
      (zero_succs v)
  done;
  if !seen <> n then
    invalid_arg (Printf.sprintf "Mii.ldp: loop %s has a zero-distance cycle" g.name);
  !result

let ii_upper_bound (g : Ddg.t) =
  (* A serial layout issues one instruction after the previous finishes, so
     II = total latency always admits a schedule. +1 guards the empty DDG. *)
  Array.fold_left (fun acc (nd : Ddg.node) -> acc + max 1 nd.latency) 1 g.nodes
