(** Textual [.ddg] loop format.

    A small line-oriented format so loops can be written by hand, checked
    into test fixtures, and fed to the CLI:

    {v
    # comment
    loop dotprod
    machine spmt
    node acc  fadd            # optional: node NAME OPCODE [LATENCY]
    node ld1  load
    node st1  store
    edge ld1 acc reg 0        # edge SRC DST KIND DISTANCE [PROB]
    edge acc acc reg 1
    edge st1 ld1 mem 1 0.05
    v}

    Node names must be declared before use. [machine] is optional and
    defaults to [spmt]. *)

exception Error of int * string
(** [(line number, message)] for any syntactic or semantic problem. *)

val of_string : string -> Ddg.t
val of_file : string -> Ddg.t

val to_string : Ddg.t -> string
(** Print back in the same format ([of_string (to_string g)] round-trips). *)
