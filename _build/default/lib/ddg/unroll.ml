let by (g : Ddg.t) ~factor =
  if factor < 1 then invalid_arg "Unroll.by: factor must be >= 1";
  let n = Ddg.n_nodes g in
  let b =
    Ddg.Builder.create
      ~name:(if factor = 1 then g.name else Printf.sprintf "%s_x%d" g.name factor)
      g.machine
  in
  (* copy j of node v gets id j*n + v *)
  let ids = Array.make (factor * n) 0 in
  for j = 0 to factor - 1 do
    Array.iter
      (fun (nd : Ddg.node) ->
        ids.((j * n) + nd.id) <-
          Ddg.Builder.add b
            ~name:(if factor = 1 then nd.name else Printf.sprintf "%s#%d" nd.name j)
            ~latency:nd.latency nd.op)
      g.nodes
  done;
  (* A dependence u -d-> v: copy j of the consumer reads the producer from
     source iteration (k*i + j) - d = k*(i - nd) + j', i.e. producer copy
     j' = (j - d) mod k at new distance nd = (d - j + j') / k. *)
  for j = 0 to factor - 1 do
    Array.iter
      (fun (e : Ddg.edge) ->
        let j' = ((j - e.distance) mod factor + factor) mod factor in
        let nd = (e.distance - j + j') / factor in
        let src = ids.((j' * n) + e.src) and dst = ids.((j * n) + e.dst) in
        match e.kind with
        | Ddg.Reg -> Ddg.Builder.dep b ~dist:nd src dst
        | Ddg.Mem -> Ddg.Builder.mem_dep b ~dist:nd ~prob:e.prob src dst)
      g.edges
  done;
  Ddg.Builder.build b
