(** Strongly-connected components of a DDG (Tarjan's algorithm).

    Recurrences in a loop appear as non-trivial SCCs of its DDG; the SMS
    node-ordering phase processes SCCs in decreasing order of their
    recurrence-constrained II, and Table 3 reports SCC counts for the
    selected DOACROSS loops. *)

type component = int list
(** Node ids of one component, ascending. *)

val compute : Ddg.t -> component list
(** All SCCs in reverse topological order of the condensation (i.e. a
    component appears after every component it depends on). Singleton
    components are included. *)

val non_trivial : Ddg.t -> component list
(** Components that contain a recurrence: more than one node, or a single
    node with a self-dependence. *)

val count_non_trivial : Ddg.t -> int
(** [List.length (non_trivial t)] — the "#SCC" column of Table 3. *)

val component_of : Ddg.t -> int array
(** [component_of t] maps each node id to the index of its component in
    [compute t]. *)
