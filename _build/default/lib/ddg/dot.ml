let to_string (g : Ddg.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" g.name);
  Array.iter
    (fun (nd : Ddg.node) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\\n%s/%d\"];\n" nd.id nd.name
           (Ts_isa.Opcode.to_string nd.op) nd.latency))
    g.nodes;
  Array.iter
    (fun (e : Ddg.edge) ->
      let style = match e.kind with Ddg.Reg -> "solid" | Ddg.Mem -> "dashed" in
      let label =
        match e.kind with
        | Ddg.Reg -> if e.distance > 0 then Printf.sprintf "d=%d" e.distance else ""
        | Ddg.Mem -> Printf.sprintf "d=%d p=%g" e.distance e.prob
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [style=%s, label=\"%s\"];\n" e.src e.dst style
           label))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))
