(** Loop unrolling on DDGs.

    The paper's conclusion names unrolling as the lever for trading
    communication against parallelism by varying thread granularity (and
    its evaluation already uses it: art's two 11-instruction loops are
    unrolled four times before scheduling). Unrolling by [k] replicates
    the body [k] times and rewires every dependence: a dependence of
    distance [d] from copy [j] lands on copy [(j - d) mod k], at a new
    distance of [(d - j + j') / k] new iterations. Distances can only
    shrink (divided by [k]), so carried dependences progressively become
    intra-body and the SEND/RECV per source iteration drops — at the price
    of a larger II and coarser misspeculation rollback. *)

val by : Ddg.t -> factor:int -> Ddg.t
(** [by g ~factor] unrolls [factor] times ([factor >= 1]; 1 returns an
    identical copy). Node [n] of copy [j] is named ["<n>#<j>"]. The result
    validates by construction; latencies and probabilities are
    preserved. *)
