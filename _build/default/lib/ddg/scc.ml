type component = int list

(* Iterative Tarjan: explicit stack of (node, remaining successor list)
   frames so deep graphs cannot overflow the OCaml stack. *)
let compute (g : Ddg.t) : component list =
  let n = Ddg.n_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let succ_ids v = List.map (fun (e : Ddg.edge) -> e.dst) g.succs.(v) in
  let visit root =
    let frames = ref [ (root, succ_ids root) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> assert false
      | (v, succs) :: rest -> (
          match succs with
          | w :: more ->
              frames := (v, more) :: rest;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                frames := (w, succ_ids w) :: !frames
              end
              else if on_stack.(w) then
                lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
              if lowlink.(v) = index.(v) then begin
                (* v is the root of a component: pop down to v. *)
                let rec pop acc =
                  match !stack with
                  | [] -> assert false
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      if w = v then w :: acc else pop (w :: acc)
                in
                let comp = pop [] in
                components := List.sort compare comp :: !components
              end;
              frames := rest;
              (match rest with
              | (u, _) :: _ -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
              | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (* Tarjan emits components in reverse topological order of the
     condensation already. *)
  List.rev !components

let is_non_trivial (g : Ddg.t) = function
  | [] -> false
  | [ v ] -> List.exists (fun (e : Ddg.edge) -> e.dst = v) g.succs.(v)
  | _ :: _ :: _ -> true

let non_trivial g = List.filter (is_non_trivial g) (compute g)

let count_non_trivial g = List.length (non_trivial g)

let component_of g =
  let comps = compute g in
  let owner = Array.make (Ddg.n_nodes g) (-1) in
  List.iteri (fun ci comp -> List.iter (fun v -> owner.(v) <- ci) comp) comps;
  owner
