(** Lower bounds on the initiation interval, and the LDP metric.

    [MII = max(ResII, RecII)]:
    - {b ResII} is the resource-constrained bound: for each functional-unit
      class, the total unit-occupancy demanded by one iteration divided by
      the number of units, and the issue-width bound [ceil(n / width)].
    - {b RecII} is the recurrence-constrained bound: the maximum over all
      dependence cycles of [ceil(total latency / total distance)]. We
      compute it exactly by binary search on II with a Bellman–Ford
      positive-cycle test on edge weights [lat(src) - II * distance].

    {b LDP} (longest dependence path, Section 5) is the longest
    latency-weighted path through the intra-iteration (distance-0) subgraph;
    together with MII it delineates the II range in which ILP is
    exploitable. *)

val res_ii : Ddg.t -> int
(** Resource-constrained minimum II (at least 1). *)

val rec_ii : Ddg.t -> int
(** Recurrence-constrained minimum II; 0 when the DDG is acyclic. *)

val rec_ii_of_nodes : Ddg.t -> int list -> int
(** RecII of the subgraph induced by the given nodes (used to prioritise
    SCCs in the SMS ordering phase). *)

val mii : Ddg.t -> int
(** [max (res_ii t) (rec_ii t)], at least 1. *)

val ldp : Ddg.t -> int
(** Longest dependence path: maximum sum of node latencies along a path of
    distance-0 edges. Raises [Invalid_argument] if the distance-0 subgraph
    has a cycle (such a loop has no valid schedule at any II). *)

val feasible : Ddg.t -> ii:int -> bool
(** Whether the recurrence constraints admit [ii] (no positive cycle); used
    both by [rec_ii] and by property tests. *)

val ii_upper_bound : Ddg.t -> int
(** A guaranteed-schedulable II upper bound used to terminate the II
    escalation loops: every node can be laid out serially below it. *)
