exception Error of int * string

let fail ln fmt = Printf.ksprintf (fun m -> raise (Error (ln, m))) fmt

let tokens line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

type pending_edge = {
  ln : int;
  src : string;
  dst : string;
  kind : Ddg.dep_kind;
  distance : int;
  prob : float;
}

let of_string text =
  let lines = String.split_on_char '\n' text in
  let name = ref "loop" in
  let machine = ref Ts_isa.Machine.spmt_core in
  let machine_set = ref false in
  let nodes = ref [] in
  (* (line, name, opcode, latency option), reversed *)
  let edges = ref [] in
  let parse_int ln what s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail ln "%s: expected an integer, got %S" what s
  in
  let parse_float ln what s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> fail ln "%s: expected a number, got %S" what s
  in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      match tokens line with
      | [] -> ()
      | [ "loop"; n ] -> name := n
      | [ "machine"; m ] -> (
          match Ts_isa.Machine.by_name m with
          | Some mc ->
              if !nodes <> [] then fail ln "machine must precede node declarations";
              machine := mc;
              machine_set := true
          | None -> fail ln "unknown machine %S" m)
      | "node" :: n :: op :: rest -> (
          ignore !machine_set;
          match Ts_isa.Opcode.of_string op with
          | None -> fail ln "unknown opcode %S" op
          | Some opc ->
              let lat =
                match rest with
                | [] -> None
                | [ l ] -> Some (parse_int ln "latency" l)
                | _ -> fail ln "node: too many fields"
              in
              if List.exists (fun (_, n', _, _) -> n' = n) !nodes then
                fail ln "duplicate node name %S" n;
              nodes := (ln, n, opc, lat) :: !nodes)
      | "edge" :: src :: dst :: kind :: dist :: rest ->
          let kind =
            match kind with
            | "reg" -> Ddg.Reg
            | "mem" -> Ddg.Mem
            | k -> fail ln "unknown dependence kind %S (want reg|mem)" k
          in
          let distance = parse_int ln "distance" dist in
          let prob =
            match rest with
            | [] -> 1.0
            | [ p ] -> parse_float ln "probability" p
            | _ -> fail ln "edge: too many fields"
          in
          edges := { ln; src; dst; kind; distance; prob } :: !edges
      | w :: _ -> fail ln "unknown directive %S" w)
    lines;
  let b = Ddg.Builder.create ~name:!name !machine in
  let ids = Hashtbl.create 16 in
  List.iter
    (fun (_, n, opc, lat) ->
      let id =
        match lat with
        | Some latency -> Ddg.Builder.add b ~name:n ~latency opc
        | None -> Ddg.Builder.add b ~name:n opc
      in
      Hashtbl.replace ids n id)
    (List.rev !nodes);
  List.iter
    (fun e ->
      let lookup n =
        match Hashtbl.find_opt ids n with
        | Some id -> id
        | None -> fail e.ln "edge references undeclared node %S" n
      in
      let src = lookup e.src and dst = lookup e.dst in
      match e.kind with
      | Ddg.Reg -> Ddg.Builder.dep b ~dist:e.distance ~prob:e.prob src dst
      | Ddg.Mem -> Ddg.Builder.mem_dep b ~dist:e.distance ~prob:e.prob src dst)
    (List.rev !edges);
  try Ddg.Builder.build b with Invalid_argument m -> raise (Error (0, m))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let to_string (g : Ddg.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "loop %s\n" g.name);
  Buffer.add_string buf (Printf.sprintf "machine %s\n" g.machine.Ts_isa.Machine.name);
  Array.iter
    (fun (nd : Ddg.node) ->
      Buffer.add_string buf
        (Printf.sprintf "node %s %s %d\n" nd.name
           (Ts_isa.Opcode.to_string nd.op) nd.latency))
    g.nodes;
  Array.iter
    (fun (e : Ddg.edge) ->
      let kind = match e.kind with Ddg.Reg -> "reg" | Ddg.Mem -> "mem" in
      if e.prob = 1.0 then
        Buffer.add_string buf
          (Printf.sprintf "edge %s %s %s %d\n" g.nodes.(e.src).name
             g.nodes.(e.dst).name kind e.distance)
      else
        Buffer.add_string buf
          (Printf.sprintf "edge %s %s %s %d %g\n" g.nodes.(e.src).name
             g.nodes.(e.dst).name kind e.distance e.prob))
    g.edges;
  Buffer.contents buf
