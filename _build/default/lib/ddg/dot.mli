(** Graphviz export of DDGs (debugging aid and documentation figures). *)

val to_string : Ddg.t -> string
(** DOT source: register dependences as solid edges, memory dependences as
    dashed edges; inter-iteration edges are labelled with their distance
    and memory edges with their probability. *)

val to_file : Ddg.t -> string -> unit
(** Write [to_string] to a path. *)
