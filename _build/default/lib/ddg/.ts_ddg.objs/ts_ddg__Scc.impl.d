lib/ddg/scc.ml: Array Ddg List
