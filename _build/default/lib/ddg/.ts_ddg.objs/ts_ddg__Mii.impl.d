lib/ddg/mii.ml: Array Ddg Hashtbl List Printf Queue Ts_isa
