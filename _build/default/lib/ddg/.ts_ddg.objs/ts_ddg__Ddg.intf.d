lib/ddg/ddg.mli: Format Ts_isa
