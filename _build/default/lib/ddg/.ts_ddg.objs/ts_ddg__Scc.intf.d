lib/ddg/scc.mli: Ddg
