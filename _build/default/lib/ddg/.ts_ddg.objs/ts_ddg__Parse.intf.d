lib/ddg/parse.mli: Ddg
