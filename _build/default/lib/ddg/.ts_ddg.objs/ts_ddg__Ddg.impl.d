lib/ddg/ddg.ml: Array Format List Printf Ts_isa
