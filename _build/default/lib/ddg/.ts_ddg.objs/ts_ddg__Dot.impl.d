lib/ddg/dot.ml: Array Buffer Ddg Fun Printf Ts_isa
