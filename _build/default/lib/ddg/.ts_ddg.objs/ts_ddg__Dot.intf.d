lib/ddg/dot.mli: Ddg
