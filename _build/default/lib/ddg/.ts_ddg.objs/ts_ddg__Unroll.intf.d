lib/ddg/unroll.mli: Ddg
