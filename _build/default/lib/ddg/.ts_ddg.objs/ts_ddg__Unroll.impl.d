lib/ddg/unroll.ml: Array Ddg Printf
