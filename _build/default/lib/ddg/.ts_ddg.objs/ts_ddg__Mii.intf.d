lib/ddg/mii.mli: Ddg
