lib/ddg/parse.ml: Array Buffer Ddg Fun Hashtbl List Printf String Ts_isa
