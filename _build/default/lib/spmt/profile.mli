(** Dependence profiling — the paper's "train input" pass.

    The probabilities that drive TMS's C2 condition come from profiling:
    "The train input sets are used to collect profiling information"
    (Section 5). This module closes that loop for the synthetic substrate:
    it executes a loop's address streams for a training run, counts how
    often each store-to-load pair actually aliases, and rebuilds the DDG
    with the {e measured} probabilities — which is what a compiler would
    see, rather than the generator's ground truth.

    Measured and ground-truth probabilities converge as the training run
    grows (the generator realises each dependence i.i.d.), but short runs
    give noisy profiles; the scheduling pipeline must tolerate that, and
    the tests exercise it. *)

type edge_profile = {
  edge_index : int;  (** index into the DDG's edge array *)
  occurrences : int;  (** iterations in which the dependence aliased *)
  probability : float;  (** occurrences / training iterations *)
}

val measure :
  ?plan:Address_plan.t -> Ts_ddg.Ddg.t -> train_iters:int -> edge_profile list
(** Run the address streams for [train_iters] iterations and count, for
    every memory dependence edge, the iterations whose consumer load reads
    the address some in-flight producer store wrote. One entry per memory
    edge, in edge order. *)

val apply : Ts_ddg.Ddg.t -> edge_profile list -> Ts_ddg.Ddg.t
(** Rebuild the loop with each memory dependence's probability replaced by
    the measured one. Dependences that never fired during training are
    kept at a 0.1% floor (a compiler cannot prove them absent, and a zero
    probability would make C2 vacuous). *)

val profile : ?train_iters:int -> Ts_ddg.Ddg.t -> Ts_ddg.Ddg.t
(** [measure] + [apply] with a fresh default address plan
    ([train_iters] defaults to 2000). *)
