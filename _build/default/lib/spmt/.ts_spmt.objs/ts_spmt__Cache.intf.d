lib/spmt/cache.mli:
