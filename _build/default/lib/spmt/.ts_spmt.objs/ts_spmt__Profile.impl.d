lib/spmt/profile.ml: Address_plan Array Float Hashtbl List Ts_ddg
