lib/spmt/config.ml: Format Ts_isa
