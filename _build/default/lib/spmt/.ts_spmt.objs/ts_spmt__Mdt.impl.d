lib/spmt/mdt.ml: Hashtbl List
