lib/spmt/sim.ml: Address_plan Array Cache Config Fun Hashtbl List Mdt Printf String Sys Ts_ddg Ts_isa Ts_modsched
