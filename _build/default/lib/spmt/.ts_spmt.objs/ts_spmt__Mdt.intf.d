lib/spmt/mdt.mli:
