lib/spmt/single.ml: Address_plan Array Cache Config Fun List Ts_ddg Ts_isa Ts_modsched
