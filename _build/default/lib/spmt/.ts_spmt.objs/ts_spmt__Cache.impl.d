lib/spmt/cache.ml: Array Fun
