lib/spmt/timeline.mli: Config Sim Ts_modsched
