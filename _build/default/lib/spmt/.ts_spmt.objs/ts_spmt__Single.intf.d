lib/spmt/single.mli: Address_plan Config Ts_ddg
