lib/spmt/address_plan.ml: Array Printf Ts_base Ts_ddg Ts_isa
