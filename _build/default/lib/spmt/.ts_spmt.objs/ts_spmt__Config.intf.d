lib/spmt/config.mli: Format Ts_isa
