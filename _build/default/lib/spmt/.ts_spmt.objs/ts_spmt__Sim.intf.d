lib/spmt/sim.mli: Address_plan Config Ts_modsched
