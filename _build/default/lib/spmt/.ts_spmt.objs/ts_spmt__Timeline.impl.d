lib/spmt/timeline.ml: Array Buffer Bytes List Printf Sim
