lib/spmt/profile.mli: Address_plan Ts_ddg
