lib/spmt/address_plan.mli: Ts_ddg
