type t = {
  n_sets : int;
  assoc : int;
  line : int;
  tags : int array array; (* per set, per way: block tag or -1 *)
  lru : int array array; (* per set, per way: age; 0 = most recent *)
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let create ~size ~assoc ~line =
  if not (is_pow2 size && is_pow2 assoc && is_pow2 line) then
    invalid_arg "Cache.create: size, assoc and line must be powers of two";
  if size < assoc * line then invalid_arg "Cache.create: size too small";
  let n_sets = size / (assoc * line) in
  {
    n_sets;
    assoc;
    line;
    tags = Array.init n_sets (fun _ -> Array.make assoc (-1));
    lru = Array.init n_sets (fun _ -> Array.init assoc Fun.id);
    hits = 0;
    misses = 0;
  }

let locate t addr =
  let block = addr / t.line in
  let set = block mod t.n_sets in
  (block, set)

let find_way t set block =
  let ways = t.tags.(set) in
  let rec go i = if i = t.assoc then None else if ways.(i) = block then Some i else go (i + 1) in
  go 0

let touch t set way =
  let ages = t.lru.(set) in
  let old = ages.(way) in
  for i = 0 to t.assoc - 1 do
    if ages.(i) < old then ages.(i) <- ages.(i) + 1
  done;
  ages.(way) <- 0

let victim t set =
  let ages = t.lru.(set) in
  let best = ref 0 in
  for i = 1 to t.assoc - 1 do
    if ages.(i) > ages.(!best) then best := i
  done;
  !best

let access t addr =
  let block, set = locate t addr in
  match find_way t set block with
  | Some way ->
      t.hits <- t.hits + 1;
      touch t set way;
      true
  | None ->
      t.misses <- t.misses + 1;
      let way = victim t set in
      t.tags.(set).(way) <- block;
      touch t set way;
      false

let probe t addr =
  let block, set = locate t addr in
  find_way t set block <> None

let invalidate t addr =
  let block, set = locate t addr in
  match find_way t set block with
  | Some way -> t.tags.(set).(way) <- -1
  | None -> ()

let fill t addr =
  let block, set = locate t addr in
  match find_way t set block with
  | Some way -> touch t set way
  | None ->
      let way = victim t set in
      t.tags.(set).(way) <- block;
      touch t set way

let stats t = (t.hits, t.misses)

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
