let collect ?from_thread ?(n_threads = 12) ?(warmup = 512) cfg kernel =
  let from_thread = match from_thread with Some f -> f | None -> warmup in
  let acc = ref [] in
  let observe (o : Sim.thread_obs) =
    if o.index >= from_thread && o.index < from_thread + n_threads then
      acc := o :: !acc
  in
  let trip = max 1 (from_thread + n_threads - warmup) in
  ignore (Sim.run ~warmup ~observe cfg kernel ~trip);
  List.rev !acc

let render ~ncore (obs : Sim.thread_obs list) =
  if obs = [] then "(no threads observed)\n"
  else begin
    let t0 = List.fold_left (fun acc o -> min acc o.Sim.start) max_int obs in
    let t1 = List.fold_left (fun acc o -> max acc o.Sim.commit_end) 0 obs in
    let span = max 1 (t1 - t0) in
    let width = min 160 span in
    let scale t = (t - t0) * (width - 1) / span in
    let lanes = Array.init ncore (fun _ -> Bytes.make width ' ') in
    List.iter
      (fun (o : Sim.thread_obs) ->
        let lane = lanes.(o.core) in
        let a = scale o.start and b = scale o.end_exec in
        for x = a to min b (width - 1) do
          Bytes.set lane x '='
        done;
        let cs = scale o.commit_start and ce = scale o.commit_end in
        for x = cs to min ce (width - 1) do
          Bytes.set lane x 'c'
        done;
        if o.squashed then Bytes.set lane (min ((a + b) / 2) (width - 1)) '!')
      obs;
    let buf = Buffer.create ((ncore + 2) * (width + 12)) in
    Buffer.add_string buf
      (Printf.sprintf "threads %d..%d, cycles %d..%d ('=' run, 'c' commit, '!' squash)\n"
         (List.fold_left (fun a o -> min a o.Sim.index) max_int obs)
         (List.fold_left (fun a o -> max a o.Sim.index) 0 obs)
         t0 t1);
    Array.iteri
      (fun c lane ->
        Buffer.add_string buf (Printf.sprintf "core%-2d |%s|\n" c (Bytes.to_string lane)))
      lanes;
    Buffer.contents buf
  end
