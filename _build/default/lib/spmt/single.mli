(** The single-threaded baseline of Section 5.2.

    The loop body is list-scheduled once ({!Ts_modsched.List_sched}) and
    iterations execute back to back on one core: new iterations enter at
    the body's ResII rate (front-end width and functional-unit occupancy
    both bound sustained throughput), a 128-entry reorder window caps
    run-ahead, and dataflow (including loop-carried register and realised
    memory dependences, and real cache latencies) determines completion.
    No spawns, no SEND/RECV, no speculation. *)

type stats = {
  cycles : int;
  iterations : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
}

val run :
  ?seed:string ->
  ?plan:Address_plan.t ->
  ?warmup:int ->
  Config.t ->
  Ts_ddg.Ddg.t ->
  trip:int ->
  stats
(** Execute [trip] iterations sequentially. Pass the same [plan] and
    [warmup] as the SpMT runs to compare on identical (steady-state)
    memory behaviour. *)
