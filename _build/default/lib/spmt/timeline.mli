(** ASCII execution timelines: how threads overlap on the cores.

    Renders a window of committed threads as one lane per core —
    '.' spawned-but-waiting is not shown (the lane is blank), '=' executing,
    'c' committing, '!' marks a squashed-and-re-executed thread — so the
    pipelining behaviour that Figures 2(c)/(f) sketch is visible for any
    simulated loop:

    {v
    core0 |==========c    ==========c
    core1 |   ==========c    =====!====c
    v} *)

val collect :
  ?from_thread:int ->
  ?n_threads:int ->
  ?warmup:int ->
  Config.t ->
  Ts_modsched.Kernel.t ->
  Sim.thread_obs list
(** Simulate and keep the lifecycle of [n_threads] (default 12) threads
    starting at [from_thread] (default [warmup], i.e. the first
    steady-state thread). *)

val render : ncore:int -> Sim.thread_obs list -> string
(** Draw the lanes. [ncore] must cover every observation's core. Time is
    rebased to the earliest start and compressed to at most ~160
    columns. *)
