lib/modsched/mrt.mli: Ts_isa
