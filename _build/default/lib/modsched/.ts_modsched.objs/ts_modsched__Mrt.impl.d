lib/modsched/mrt.ml: Array Hashtbl List Printf Ts_isa
