lib/modsched/kernel.ml: Array Format Fun List Mrt Printf Sched String Ts_base Ts_ddg Ts_isa
