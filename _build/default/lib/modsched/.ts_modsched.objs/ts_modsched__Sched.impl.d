lib/modsched/sched.ml: Array List Mrt Printf Ts_ddg
