lib/modsched/codegen.mli: Format Kernel
