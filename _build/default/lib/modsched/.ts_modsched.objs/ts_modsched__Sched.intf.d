lib/modsched/sched.mli: Ts_ddg
