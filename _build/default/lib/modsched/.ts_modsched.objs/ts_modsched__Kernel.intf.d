lib/modsched/kernel.mli: Format Sched Ts_ddg
