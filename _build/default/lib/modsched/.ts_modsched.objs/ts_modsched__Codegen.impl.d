lib/modsched/codegen.ml: Array Format Fun Kernel List Ts_base Ts_ddg Ts_isa
