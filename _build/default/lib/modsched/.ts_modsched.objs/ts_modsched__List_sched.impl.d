lib/modsched/list_sched.ml: Array Hashtbl List Printf Ts_ddg Ts_isa
