lib/modsched/list_sched.mli: Ts_ddg
