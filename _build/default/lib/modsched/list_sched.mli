(** Greedy list scheduling of a single iteration.

    The "single-threaded code" baseline of Section 5.2 runs the loop
    unpipelined: each iteration's body is scheduled in isolation on one
    core, respecting intra-iteration (distance-0) dependences and the
    core's functional units, and consecutive iterations are chained by the
    loop-carried dependences at run time (the simulator does the
    chaining). This module produces that per-iteration schedule.

    The heuristic is critical-path list scheduling: ready nodes are placed
    cycle by cycle, highest latency-height first. *)

type t = {
  g : Ts_ddg.Ddg.t;
  time : int array;  (** issue cycle of every node, starting at 0 *)
  makespan : int;  (** first cycle after the last completion *)
}

val run : Ts_ddg.Ddg.t -> t
(** Schedule one iteration. Raises [Invalid_argument] if the distance-0
    subgraph is cyclic. *)

val validate : t -> unit
(** Check dependence and resource feasibility of the result. *)
