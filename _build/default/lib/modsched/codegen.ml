type inst =
  | Spawn
  | Op of int
  | Recv of { value : int; hop : int }
  | Send of { value : int; hop : int }
  | Copy of { value : int; hop : int }

type t = {
  kernel : Kernel.t;
  listing : (int * inst) list;
  n_sends : int;
  n_recvs : int;
  n_copies : int;
}

let of_kernel (k : Kernel.t) =
  let g = k.Kernel.g in
  let items = ref [] in
  let add row i = items := (row, i) :: !items in
  add 0 Spawn;
  Array.iter (fun (nd : Ts_ddg.Ddg.node) -> add k.Kernel.row.(nd.id) (Op nd.id)) g.nodes;
  (* Earliest same-thread consumer row per (value, hop): the RECV must sit
     no later than that. A hop-h RECV serves consumers at kernel distance
     h. *)
  let sends = ref 0 and recvs = ref 0 and copies = ref 0 in
  List.iter
    (fun (v, hops) ->
      let lat = Ts_ddg.Ddg.latency g v in
      let send1_row = Ts_base.Intmath.modulo (k.Kernel.row.(v) + lat) k.Kernel.ii in
      for hop = 1 to hops do
        (* consumers served by this hop *)
        let consumer_rows =
          List.filter_map
            (fun (e : Ts_ddg.Ddg.edge) ->
              if e.kind = Ts_ddg.Ddg.Reg && e.src = v && Kernel.d_ker k e = hop
              then Some k.Kernel.row.(e.dst)
              else None)
            g.succs.(v)
        in
        let recv_row =
          match consumer_rows with
          | [] -> 0 (* pure relay hop: receive at thread start *)
          | rows -> List.fold_left min (List.hd rows) rows
        in
        add recv_row (Recv { value = v; hop });
        incr recvs;
        if hop = 1 then add send1_row (Send { value = v; hop })
        else begin
          (* relay: copy the received value and forward it *)
          add recv_row (Copy { value = v; hop });
          incr copies;
          add recv_row (Send { value = v; hop })
        end;
        incr sends
      done)
    (Kernel.producers k);
  let listing =
    List.stable_sort (fun (r1, _) (r2, _) -> compare r1 r2) (List.rev !items)
  in
  { kernel = k; listing; n_sends = !sends; n_recvs = !recvs; n_copies = !copies }

let thread_slice (k : Kernel.t) ~thread ~trip =
  if trip <= 0 then invalid_arg "Codegen.thread_slice: trip must be positive";
  let n = Ts_ddg.Ddg.n_nodes k.Kernel.g in
  List.init n Fun.id
  |> List.filter (fun v ->
         let src_iter = thread - k.Kernel.stage.(v) in
         src_iter >= 0 && src_iter < trip)
  |> List.sort (fun a b ->
         if k.Kernel.row.(a) <> k.Kernel.row.(b) then
           compare k.Kernel.row.(a) k.Kernel.row.(b)
         else compare a b)

let n_threads (k : Kernel.t) ~trip = trip + k.Kernel.n_stages - 1

let pp ppf t =
  let g = t.kernel.Kernel.g in
  let name v = (Ts_ddg.Ddg.node g v).name in
  Format.fprintf ppf "thread program for %s (II = %d):@." g.name t.kernel.Kernel.ii;
  let last_row = ref (-1) in
  List.iter
    (fun (row, i) ->
      if row <> !last_row then begin
        Format.fprintf ppf "  ; row %d@." row;
        last_row := row
      end;
      match i with
      | Spawn -> Format.fprintf ppf "    spawn  next_iteration@."
      | Op v ->
          Format.fprintf ppf "    %-6s %s@."
            (Ts_isa.Opcode.to_string (Ts_ddg.Ddg.node g v).op)
            (name v)
      | Recv { value; hop } -> Format.fprintf ppf "    recv   %s (hop %d)@." (name value) hop
      | Send { value; hop } -> Format.fprintf ppf "    send   %s (hop %d)@." (name value) hop
      | Copy { value; hop } -> Format.fprintf ppf "    copy   %s (hop %d)@." (name value) hop)
    t.listing;
  Format.fprintf ppf "  ; %d sends, %d recvs, %d relay copies per iteration@."
    t.n_sends t.n_recvs t.n_copies
