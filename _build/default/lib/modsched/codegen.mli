(** Thread code generation: the Section 3 post-pass, materialised.

    After scheduling, the paper's compiler (a) renames overlapping
    lifetimes with register copies so that every inter-iteration register
    dependence has distance 1, and (b) inserts SEND/RECV pairs so each
    value crossing threads hops between adjacent cores. This module builds
    the actual per-thread instruction listing — the spawn, the RECVs for
    incoming values, the body in kernel-row order, the SENDs after each
    producer, and the relay copies for multi-hop values — so the result of
    scheduling is inspectable as code, and the communication counts used by
    the simulator are backed by real instruction positions. *)

type inst =
  | Spawn  (** first instruction of every thread (3 cycles) *)
  | Op of int  (** DDG node id, at its kernel row *)
  | Recv of { value : int; hop : int }
      (** receive node [value]'s datum, [hop] hops from its producer
          (1 = direct neighbour); placed just before its first consumer *)
  | Send of { value : int; hop : int }
      (** forward node [value]'s datum to the successor core; hop 1 sits
          right after the producer completes, relay hops after their
          RECV *)
  | Copy of { value : int; hop : int }
      (** lifetime-renaming copy backing a relay hop *)

type t = {
  kernel : Kernel.t;
  listing : (int * inst) list;  (** (row, instruction), sorted by row *)
  n_sends : int;
  n_recvs : int;
  n_copies : int;
}

val of_kernel : Kernel.t -> t
(** Generate the thread program. Guaranteed: [n_sends = n_recvs =
    Kernel.send_recv_pairs_per_iter]; every body op appears exactly once at
    its kernel row; RECV of a value precedes every same-thread consumer's
    row. *)

val pp : Format.formatter -> t -> unit
(** Assembly-like listing, one line per instruction, grouped by row. *)

val thread_slice : Kernel.t -> thread:int -> trip:int -> int list
(** Prologue/epilogue structure of the pipelined loop. When the loop runs
    [trip] source iterations, thread [j] executes exactly the instructions
    whose stage [s] satisfies [0 <= j - s < trip] (a stage-[s] instruction
    in thread [j] belongs to source iteration [j - s]). The first
    [n_stages - 1] threads are the ramp-up (prologue) and the last
    [n_stages - 1] the drain (epilogue); every thread in between runs the
    full kernel. Returns the node ids, in row order. The total number of
    threads is [trip + n_stages - 1], and summing slice sizes over all
    threads gives [trip * n_nodes] — every source instruction exactly
    once. *)

val n_threads : Kernel.t -> trip:int -> int
(** [trip + n_stages - 1]. *)
