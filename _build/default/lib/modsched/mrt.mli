(** Modulo reservation table.

    Tracks functional-unit and issue-slot occupancy modulo II. An
    instruction placed at cycle [c] occupies one issue slot at [c mod II]
    and its functional unit for [busy] consecutive modulo cycles starting
    at [c mod II] (unpipelined units have [busy > 1]). *)

type t

val create : Ts_isa.Machine.t -> ii:int -> t

val ii : t -> int

val fits : t -> Ts_isa.Opcode.t -> cycle:int -> bool
(** Can an instruction of this class be placed at [cycle] without exceeding
    any unit count or the issue width? [cycle] may be any integer (it is
    reduced modulo II). *)

val reserve : t -> Ts_isa.Opcode.t -> cycle:int -> unit
(** Claim the resources. Raises [Invalid_argument] if [fits] is false. *)

val release : t -> Ts_isa.Opcode.t -> cycle:int -> unit
(** Undo a [reserve] (used by schedulers that eject instructions). *)

val used_issue_slots : t -> int -> int
(** Issue slots currently taken at a modulo cycle (for tests/statistics). *)
