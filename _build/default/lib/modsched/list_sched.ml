type t = { g : Ts_ddg.Ddg.t; time : int array; makespan : int }

(* Latency height over distance-0 edges: priority for the ready list. *)
let heights (g : Ts_ddg.Ddg.t) =
  let n = Ts_ddg.Ddg.n_nodes g in
  let h = Array.make n 0 in
  let state = Array.make n 0 in
  (* 0 = unvisited, 1 = visiting, 2 = done *)
  let rec visit v =
    if state.(v) = 1 then
      invalid_arg (Printf.sprintf "List_sched: zero-distance cycle in %s" g.name);
    if state.(v) = 0 then begin
      state.(v) <- 1;
      let best = ref 0 in
      List.iter
        (fun (e : Ts_ddg.Ddg.edge) ->
          if e.distance = 0 then begin
            visit e.dst;
            best := max !best h.(e.dst)
          end)
        g.succs.(v);
      h.(v) <- Ts_ddg.Ddg.latency g v + !best;
      state.(v) <- 2
    end
  in
  for v = 0 to n - 1 do
    visit v
  done;
  h

let run (g : Ts_ddg.Ddg.t) =
  let n = Ts_ddg.Ddg.n_nodes g in
  let h = heights g in
  let time = Array.make n (-1) in
  (* Earliest cycle allowed by scheduled distance-0 predecessors. *)
  let ready_at v =
    List.fold_left
      (fun acc (e : Ts_ddg.Ddg.edge) ->
        if e.distance = 0 then
          match time.(e.src) with
          | -1 -> None
          | tu -> (
              let b = tu + Ts_ddg.Ddg.latency g e.src in
              match acc with None -> None | Some a -> Some (max a b))
        else acc)
      (Some 0) g.preds.(v)
  in
  let unplaced = ref n in
  let cycle = ref 0 in
  (* A fresh one-cycle reservation per cycle: reuse Mrt with ii = 1 is wrong
     for busy > 1 units, so keep explicit busy-until times per unit class. *)
  let module M = Ts_isa.Machine in
  let busy_until = Hashtbl.create 8 in
  List.iter
    (fun fu -> Hashtbl.replace busy_until fu (Array.make (max 1 (M.fu_count g.machine fu)) 0))
    M.fu_all;
  while !unplaced > 0 do
    let issued = ref 0 in
    let progressed = ref true in
    while !issued < g.machine.M.issue_width && !progressed do
      progressed := false;
      (* Best ready node at this cycle. *)
      let best = ref None in
      for v = 0 to n - 1 do
        if time.(v) = -1 then
          match ready_at v with
          | Some r when r <= !cycle -> (
              let d = g.machine.M.describe (Ts_ddg.Ddg.node g v).op in
              let units = Hashtbl.find busy_until d.fu in
              let slot = ref (-1) in
              Array.iteri (fun i b -> if !slot = -1 && b <= !cycle then slot := i) units;
              if !slot >= 0 then
                match !best with
                | Some (bv, _) when h.(bv) >= h.(v) -> ()
                | _ -> best := Some (v, !slot))
          | _ -> ()
      done;
      match !best with
      | None -> ()
      | Some (v, slot) ->
          let d = g.machine.M.describe (Ts_ddg.Ddg.node g v).op in
          let units = Hashtbl.find busy_until d.fu in
          units.(slot) <- !cycle + d.busy;
          time.(v) <- !cycle;
          decr unplaced;
          incr issued;
          progressed := true
    done;
    incr cycle
  done;
  let makespan =
    Array.to_list time
    |> List.mapi (fun v c -> c + Ts_ddg.Ddg.latency g v)
    |> List.fold_left max 0
  in
  { g; time; makespan }

let validate t =
  let g = t.g in
  Array.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      if e.distance = 0 then
        if t.time.(e.dst) < t.time.(e.src) + Ts_ddg.Ddg.latency g e.src then
          invalid_arg "List_sched.validate: dependence violated")
    g.edges;
  (* Per-cycle issue-width check. *)
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      let cur = try Hashtbl.find counts c with Not_found -> 0 in
      Hashtbl.replace counts c (cur + 1))
    t.time;
  Hashtbl.iter
    (fun _ k ->
      if k > g.machine.Ts_isa.Machine.issue_width then
        invalid_arg "List_sched.validate: issue width exceeded")
    counts
