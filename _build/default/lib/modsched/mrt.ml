type t = {
  machine : Ts_isa.Machine.t;
  ii : int;
  issue : int array; (* issue slots used per modulo cycle *)
  fu_use : (Ts_isa.Machine.fu, int array) Hashtbl.t;
}

let create machine ~ii =
  if ii <= 0 then invalid_arg "Mrt.create: ii must be positive";
  let fu_use = Hashtbl.create 8 in
  List.iter
    (fun fu -> Hashtbl.replace fu_use fu (Array.make ii 0))
    Ts_isa.Machine.fu_all;
  { machine; ii; issue = Array.make ii 0; fu_use }

let ii t = t.ii

let modulo t c =
  let m = c mod t.ii in
  if m < 0 then m + t.ii else m

let fits t op ~cycle =
  let d = t.machine.Ts_isa.Machine.describe op in
  let units = Ts_isa.Machine.fu_count t.machine d.fu in
  let use = Hashtbl.find t.fu_use d.fu in
  let c0 = modulo t cycle in
  if t.issue.(c0) >= t.machine.Ts_isa.Machine.issue_width then false
  else if d.busy > t.ii * units then false
  else begin
    (* When [busy > ii] an occupancy wraps around the table and lands on the
       same cell more than once, so count per-cell demand first. *)
    let demand = Array.make t.ii 0 in
    for k = 0 to d.busy - 1 do
      let c = (c0 + k) mod t.ii in
      demand.(c) <- demand.(c) + 1
    done;
    let ok = ref true in
    for c = 0 to t.ii - 1 do
      if use.(c) + demand.(c) > units then ok := false
    done;
    !ok
  end

let apply t op ~cycle delta =
  let d = t.machine.Ts_isa.Machine.describe op in
  let use = Hashtbl.find t.fu_use d.fu in
  let c0 = modulo t cycle in
  t.issue.(c0) <- t.issue.(c0) + delta;
  for k = 0 to d.busy - 1 do
    let c = (c0 + k) mod t.ii in
    use.(c) <- use.(c) + delta
  done

let reserve t op ~cycle =
  if not (fits t op ~cycle) then
    invalid_arg
      (Printf.sprintf "Mrt.reserve: %s does not fit at cycle %d (ii=%d)"
         (Ts_isa.Opcode.to_string op) cycle t.ii);
  apply t op ~cycle 1

let release t op ~cycle =
  apply t op ~cycle (-1);
  let d = t.machine.Ts_isa.Machine.describe op in
  let use = Hashtbl.find t.fu_use d.fu in
  Array.iter (fun v -> if v < 0 then invalid_arg "Mrt.release: not reserved") use;
  if Array.exists (fun v -> v < 0) t.issue then
    invalid_arg "Mrt.release: not reserved"

let used_issue_slots t c = t.issue.(modulo t c)
