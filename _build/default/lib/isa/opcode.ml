type t = Ialu | Imul | Fadd | Fmul | Fdiv | Load | Store | Copy | Branch

let all = [ Ialu; Imul; Fadd; Fmul; Fdiv; Load; Store; Copy; Branch ]

let to_string = function
  | Ialu -> "ialu"
  | Imul -> "imul"
  | Fadd -> "fadd"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Load -> "load"
  | Store -> "store"
  | Copy -> "copy"
  | Branch -> "branch"

let of_string = function
  | "ialu" -> Some Ialu
  | "imul" -> Some Imul
  | "fadd" -> Some Fadd
  | "fmul" -> Some Fmul
  | "fdiv" -> Some Fdiv
  | "load" | "ld" -> Some Load
  | "store" | "st" -> Some Store
  | "copy" -> Some Copy
  | "branch" | "br" -> Some Branch
  | _ -> None

let is_mem = function
  | Load | Store -> true
  | Ialu | Imul | Fadd | Fmul | Fdiv | Copy | Branch -> false

let pp ppf op = Format.pp_print_string ppf (to_string op)
