type t = {
  ncore : int;
  c_reg_com : int;
  c_spawn : int;
  c_commit : int;
  c_inv : int;
}

let default = { ncore = 4; c_reg_com = 3; c_spawn = 3; c_commit = 2; c_inv = 15 }
let two_core = { default with ncore = 2 }
let with_ncore t ncore = { t with ncore }

let pp ppf t =
  Format.fprintf ppf
    "{ ncore = %d; c_reg_com = %d; c_spawn = %d; c_commit = %d; c_inv = %d }"
    t.ncore t.c_reg_com t.c_spawn t.c_commit t.c_inv
