type fu = Fu_ialu | Fu_imul | Fu_falu | Fu_fmul | Fu_mem | Fu_br

let fu_all = [ Fu_ialu; Fu_imul; Fu_falu; Fu_fmul; Fu_mem; Fu_br ]

let fu_to_string = function
  | Fu_ialu -> "ialu"
  | Fu_imul -> "imul"
  | Fu_falu -> "falu"
  | Fu_fmul -> "fmul"
  | Fu_mem -> "mem"
  | Fu_br -> "br"

type op_desc = { latency : int; fu : fu; busy : int }

type t = {
  name : string;
  issue_width : int;
  fu_counts : (fu * int) list;
  describe : Opcode.t -> op_desc;
  n_registers : int;
}

let fu_count t fu =
  match List.assoc_opt fu t.fu_counts with Some n -> n | None -> 0

let latency t op = (t.describe op).latency

(* SimpleScalar-flavoured latencies for the Table 1 core. The paper gives
   cache latencies only; FU latencies follow the simulator defaults its
   infrastructure (SimpleScalar) ships with. *)
let spmt_core =
  let describe : Opcode.t -> op_desc = function
    | Ialu -> { latency = 1; fu = Fu_ialu; busy = 1 }
    | Imul -> { latency = 3; fu = Fu_imul; busy = 1 }
    | Fadd -> { latency = 3; fu = Fu_falu; busy = 1 }
    | Fmul -> { latency = 4; fu = Fu_fmul; busy = 1 }
    | Fdiv -> { latency = 16; fu = Fu_fmul; busy = 16 }
    | Load -> { latency = 3; fu = Fu_mem; busy = 1 }
    | Store -> { latency = 1; fu = Fu_mem; busy = 1 }
    | Copy -> { latency = 1; fu = Fu_ialu; busy = 1 }
    | Branch -> { latency = 1; fu = Fu_br; busy = 1 }
  in
  {
    name = "spmt";
    issue_width = 4;
    fu_counts =
      [ (Fu_ialu, 4); (Fu_imul, 1); (Fu_falu, 2); (Fu_fmul, 1); (Fu_mem, 2); (Fu_br, 1) ];
    describe;
    n_registers = 64;
  }

(* Figure 1's example machine: the single multiplier is unpipelined with a
   4-cycle occupancy, so one mul in the loop body yields ResII = 4. *)
let toy =
  let describe : Opcode.t -> op_desc = function
    | Ialu -> { latency = 1; fu = Fu_ialu; busy = 1 }
    | Imul -> { latency = 4; fu = Fu_imul; busy = 4 }
    | Fadd -> { latency = 1; fu = Fu_falu; busy = 1 }
    | Fmul -> { latency = 4; fu = Fu_fmul; busy = 4 }
    | Fdiv -> { latency = 8; fu = Fu_fmul; busy = 8 }
    | Load -> { latency = 2; fu = Fu_mem; busy = 1 }
    | Store -> { latency = 1; fu = Fu_mem; busy = 1 }
    | Copy -> { latency = 1; fu = Fu_ialu; busy = 1 }
    | Branch -> { latency = 1; fu = Fu_br; busy = 1 }
  in
  {
    name = "toy";
    issue_width = 4;
    fu_counts =
      [ (Fu_ialu, 2); (Fu_imul, 1); (Fu_falu, 1); (Fu_fmul, 1); (Fu_mem, 1); (Fu_br, 1) ];
    describe;
    n_registers = 32;
  }

let by_name = function
  | "spmt" -> Some spmt_core
  | "toy" -> Some toy
  | _ -> None
