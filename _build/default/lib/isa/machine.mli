(** Machine descriptions: functional units, latencies, issue width.

    A machine description is everything the modulo scheduler needs to build
    a modulo reservation table: how many of each functional unit a core has,
    which unit each opcode class occupies, for how many cycles the unit is
    busy per issue (1 when fully pipelined), and the result latency. *)

type fu =
  | Fu_ialu  (** integer ALUs *)
  | Fu_imul  (** integer multiplier *)
  | Fu_falu  (** floating-point adders *)
  | Fu_fmul  (** floating-point multiplier/divider *)
  | Fu_mem   (** memory ports *)
  | Fu_br    (** branch unit *)

val fu_all : fu list
val fu_to_string : fu -> string

type op_desc = {
  latency : int;  (** result latency in cycles (register-file to register-file) *)
  fu : fu;  (** functional unit class occupied *)
  busy : int;  (** initiation interval on the unit: 1 = fully pipelined *)
}

type t = {
  name : string;
  issue_width : int;  (** instructions issued per cycle, all classes combined *)
  fu_counts : (fu * int) list;  (** units available per class *)
  describe : Opcode.t -> op_desc;  (** per-opcode resource/latency data *)
  n_registers : int;
      (** architectural registers available to the kernel; a schedule whose
          MaxLive exceeds this would spill, and GCC's modulo scheduler
          rejects it *)
}

val fu_count : t -> fu -> int
(** Number of units of a class (0 when the class is absent). *)

val latency : t -> Opcode.t -> int
(** Shorthand for [(describe op).latency]. *)

val spmt_core : t
(** One core of the Table 1 quad-core SpMT system: 4-wide issue, two memory
    ports, SimpleScalar-like latencies (ialu 1, imul 3, fadd 3, fmul 4,
    fdiv 16 unpipelined, load 3 = L1 hit, store 1, branch 1). *)

val toy : t
(** The small machine of the paper's Figure 1 motivating example: 2-wide,
    one unit per class, mul latency 4 on an unpipelined multiplier (so one
    mul per loop gives ResII = 4), load latency 2, everything else 1. *)

val by_name : string -> t option
(** Look up ["spmt"] or ["toy"] (used by the [.ddg] parser and the CLI). *)
