(** Instruction opcode classes.

    The scheduler does not need full instruction semantics — only the
    latency/resource class of each operation and whether it touches memory.
    This is the same abstraction level GCC's modulo scheduler works at once
    the DDG has been built. *)

type t =
  | Ialu  (** integer ALU op: add, sub, logic, compare *)
  | Imul  (** integer multiply *)
  | Fadd  (** floating-point add/sub/convert *)
  | Fmul  (** floating-point multiply *)
  | Fdiv  (** floating-point divide / sqrt (long, unpipelined) *)
  | Load  (** memory load *)
  | Store (** memory store *)
  | Copy  (** register-to-register copy (inserted by the post-pass) *)
  | Branch (** loop back-branch and compare-and-branch *)

val all : t list
(** Every opcode class, in declaration order. *)

val to_string : t -> string
val of_string : string -> t option
(** Parse the lowercase name used by the [.ddg] textual format. *)

val is_mem : t -> bool
(** [true] for {!Load} and {!Store}. *)

val pp : Format.formatter -> t -> unit
