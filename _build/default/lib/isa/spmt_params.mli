(** SpMT cost parameters shared by the TMS cost model and the simulator.

    These are the Table 1 values the scheduler itself needs: the number of
    cores, the SEND/RECV register-communication latency [c_reg_com]
    (Definition 2), and the spawn / commit / invalidation overheads of the
    Section 4.2 cost model. The full simulator configuration (caches, MDT,
    write buffer) lives in [Ts_spmt.Config] and embeds one of these. *)

type t = {
  ncore : int;  (** cores participating in the loop (paper: 4) *)
  c_reg_com : int;  (** SEND + hop + RECV latency (paper: 3) *)
  c_spawn : int;  (** thread spawn overhead [C_spn] (paper: 3) *)
  c_commit : int;  (** head-thread commit overhead [C_ci] (paper: 2) *)
  c_inv : int;  (** squash/invalidation overhead [C_inv] (paper: 15) *)
}

val default : t
(** The Table 1 quad-core configuration. *)

val two_core : t
(** The Figure 2 walkthrough uses two cores; identical costs otherwise. *)

val with_ncore : t -> int -> t
(** Same costs, different core count (used by the scaling ablations). *)

val pp : Format.formatter -> t -> unit
