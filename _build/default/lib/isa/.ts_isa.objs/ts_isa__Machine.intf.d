lib/isa/machine.mli: Opcode
