lib/isa/spmt_params.ml: Format
