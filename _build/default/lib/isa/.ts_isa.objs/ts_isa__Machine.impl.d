lib/isa/machine.ml: List Opcode
