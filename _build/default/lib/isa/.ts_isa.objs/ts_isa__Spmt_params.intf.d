lib/isa/spmt_params.mli: Format
