lib/core/overheads.ml: Array Cost_model List Ts_ddg Ts_modsched
