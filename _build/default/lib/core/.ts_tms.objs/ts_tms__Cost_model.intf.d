lib/core/cost_model.mli: Ts_isa
