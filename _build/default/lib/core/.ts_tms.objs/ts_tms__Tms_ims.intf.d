lib/core/tms_ims.mli: Tms Ts_ddg Ts_isa Ts_modsched
