lib/core/tms.ml: Array Cost_model List Overheads Ts_base Ts_ddg Ts_isa Ts_modsched Ts_sms
