lib/core/tms_ims.ml: Array Cost_model Overheads Tms Ts_ddg Ts_isa Ts_modsched Ts_sms
