lib/core/cost_model.ml: Float Hashtbl List Ts_isa
