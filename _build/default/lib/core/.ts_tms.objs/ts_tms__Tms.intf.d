lib/core/tms.mli: Ts_ddg Ts_isa Ts_modsched
