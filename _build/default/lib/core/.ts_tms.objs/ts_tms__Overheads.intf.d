lib/core/overheads.mli: Ts_ddg Ts_modsched
