module K = Ts_modsched.Kernel

let preserved (k : K.t) ~c_reg_com ~reg_deps (e : Ts_ddg.Ddg.edge) =
  let dker = K.d_ker k e in
  assert (dker >= 1);
  let need =
    float_of_int (k.row.(e.src) + Ts_ddg.Ddg.latency k.g e.src - k.row.(e.dst))
    /. float_of_int dker
  in
  List.exists
    (fun (r : Ts_ddg.Ddg.edge) ->
      k.row.(r.src) < k.row.(e.src)
      && float_of_int (K.sync k ~c_reg_com r) >= need)
    reg_deps

let non_preserved_mem_deps k ~c_reg_com =
  let reg_deps = K.inter_iter_reg_deps k in
  List.filter
    (fun e -> not (preserved k ~c_reg_com ~reg_deps e))
    (K.inter_iter_mem_deps k)

let misspec_prob k ~c_reg_com =
  Cost_model.p_m
    (List.map (fun (e : Ts_ddg.Ddg.edge) -> e.prob) (non_preserved_mem_deps k ~c_reg_com))
