type t = Ts_isa.Spmt_params.t

let f_value (p : t) ~ii ~c_delay =
  let t_lb = ii + p.c_commit + max p.c_spawn c_delay in
  let serial = max p.c_spawn (max p.c_commit c_delay) in
  max (float_of_int serial) (float_of_int t_lb /. float_of_int p.ncore)

let f_min_start (p : t) ~mii = f_value p ~ii:mii ~c_delay:(1 + p.c_reg_com)

let t_nomiss p ~ii ~c_delay ~n = f_value p ~ii ~c_delay *. float_of_int n

let p_m probs = 1.0 -. List.fold_left (fun acc pe -> acc *. (1.0 -. pe)) 1.0 probs

let misspec_penalty (p : t) ~ii ~c_delay =
  float_of_int (ii + p.c_inv - max 0 (c_delay - p.c_spawn))

let t_mis_spec p ~ii ~c_delay ~p_m ~n =
  misspec_penalty p ~ii ~c_delay *. p_m *. float_of_int n

let estimate p ~ii ~c_delay ~p_m ~n =
  t_nomiss p ~ii ~c_delay ~n +. t_mis_spec p ~ii ~c_delay ~p_m ~n

let f_groups (p : t) ~mii ~ii_max ~cd_max =
  let cd_min = 1 + p.c_reg_com in
  let tbl = Hashtbl.create 64 in
  for ii = mii to ii_max do
    for cd = cd_min to cd_max do
      let f = f_value p ~ii ~c_delay:cd in
      let key = int_of_float (Float.round (f *. float_of_int p.ncore)) in
      let cur = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key ((ii, cd) :: cur)
    done
  done;
  Hashtbl.fold (fun k pts acc -> (k, pts) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (key, pts) ->
         let best = Hashtbl.create 8 in
         List.iter
           (fun (ii, cd) ->
             let cur = try Hashtbl.find best ii with Not_found -> min_int in
             if cd > cur then Hashtbl.replace best ii cd)
           pts;
         let points =
           Hashtbl.fold (fun ii cd acc -> (ii, cd) :: acc) best []
           |> List.sort compare
         in
         (float_of_int key /. float_of_int p.ncore, points))
