(** Inter-thread overhead analysis of a kernel (Definitions 2–4).

    Given a finished kernel, classify its inter-iteration dependences the
    way the TMS admission conditions do: register dependences are
    synchronised and each costs a {!Ts_modsched.Kernel.sync} delay; memory
    dependences are speculated, and a speculated dependence is harmless
    when it is {e preserved} — some synchronised dependence already forces
    enough lag between consecutive threads that the producer store is
    guaranteed to complete before the consumer load issues. *)

val preserved :
  Ts_modsched.Kernel.t ->
  c_reg_com:int ->
  reg_deps:Ts_ddg.Ddg.edge list ->
  Ts_ddg.Ddg.edge -> bool
(** Definition 3. [preserved k ~c_reg_com ~reg_deps e] holds when some
    [u -> v] in [reg_deps] satisfies both [row u < row x] (the paper's
    guard: the synchronising producer issues earlier than the store in the
    kernel) and
    [sync (u, v) >= (row x + lat x - row y) / d_ker (x, y)] — the
    per-thread lag the synchronisation enforces covers the lag the memory
    dependence needs, compounded over the [d_ker] threads it spans. *)

val non_preserved_mem_deps :
  Ts_modsched.Kernel.t -> c_reg_com:int -> Ts_ddg.Ddg.edge list
(** The kernel's set [M]: inter-iteration memory dependences not preserved
    by the kernel's full inter-iteration register dependence set. *)

val misspec_prob : Ts_modsched.Kernel.t -> c_reg_com:int -> float
(** [P_M] (equation 3) over {!non_preserved_mem_deps}. *)
