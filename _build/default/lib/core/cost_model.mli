(** The Section 4.2 cost model: execution time of a modulo-scheduled loop on
    an SpMT multicore.

    [T = T_nomiss + T_mis_spec] where, for a loop of [N] iterations:

    - [T_nomiss = max (C_spn, C_ci, C_delay, T_lb / ncore) * N] with
      [T_lb = II + C_ci + max (C_spn, C_delay)] (equation 2): threads are
      serialised by whichever is largest of the spawn overhead, the commit
      overhead and the synchronisation delay — unless cores saturate, in
      which case throughput is one thread of length [T_lb] per [ncore]
      cores.
    - [T_mis_spec = (II + C_inv - max (0, C_delay - C_spn)) * P_M * N]
      where [P_M = 1 - prod (1 - p_e)] over the non-preserved inter-thread
      memory dependences (equation 3). *)

type t = Ts_isa.Spmt_params.t

val f_value : t -> ii:int -> c_delay:int -> float
(** The objective [F (II, C_delay) = T_nomiss / N] of Figure 3 line 4. *)

val f_min_start : t -> mii:int -> float
(** [F (MII, 1 + c_reg_com)] — Figure 3 line 5, the smallest conceivable
    objective value ([1 + c_reg_com] is the smallest possible non-zero
    synchronisation delay by Definition 2). *)

val t_nomiss : t -> ii:int -> c_delay:int -> n:int -> float
(** Equation 2. *)

val p_m : float list -> float
(** Equation 3: misspeculation probability of a kernel iteration from the
    probabilities of its non-preserved inter-thread memory dependences. *)

val misspec_penalty : t -> ii:int -> c_delay:int -> float
(** Cycles lost per misspeculation:
    [II + C_inv - max (0, C_delay - C_spn)]. *)

val t_mis_spec : t -> ii:int -> c_delay:int -> p_m:float -> n:int -> float

val estimate : t -> ii:int -> c_delay:int -> p_m:float -> n:int -> float
(** [T = T_nomiss + T_mis_spec]: the model's prediction for a scheduled
    kernel, comparable against the simulator's measurement. *)

val f_groups :
  t -> mii:int -> ii_max:int -> cd_max:int -> (float * (int * int) list) list
(** The Figure 3 "for every (II, C_delay) s.t. F = F_min" enumeration,
    shared by every thread-sensitive scheduler: candidate [(II, C_delay)]
    points grouped by objective value, groups in increasing [F] order. [F]
    is a multiple of [1/ncore] so grouping is exact. Within a group only
    the largest [C_delay] per II is kept (identical objective, weakest
    admission constraints), points ordered by increasing II. *)
