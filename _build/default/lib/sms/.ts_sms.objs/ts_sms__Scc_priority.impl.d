lib/sms/scc_priority.ml: List Ts_ddg
