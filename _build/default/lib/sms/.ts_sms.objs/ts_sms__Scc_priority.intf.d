lib/sms/scc_priority.mli: Ts_ddg
