lib/sms/order.ml: Array Fun List Printf Queue Scc_priority Ts_ddg Ts_modsched
