lib/sms/sms.ml: List Order Printf Ts_ddg Ts_modsched
