lib/sms/ims.ml: Array Fun List Order Printf Ts_base Ts_ddg Ts_modsched
