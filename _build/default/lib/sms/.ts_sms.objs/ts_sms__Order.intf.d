lib/sms/order.mli: Ts_ddg Ts_modsched
