lib/sms/sms.mli: Ts_ddg Ts_modsched
