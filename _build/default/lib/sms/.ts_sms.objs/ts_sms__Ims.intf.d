lib/sms/ims.mli: Ts_ddg Ts_modsched
