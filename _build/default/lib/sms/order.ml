type prio = {
  asap : int array;
  alap : int array;
  mob : int array;
  height : int array;
  depth : int array;
}

let relax_until_fixed ~n ~what step =
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := step ();
    incr rounds;
    if !changed && !rounds > n + 1 then
      invalid_arg (Printf.sprintf "Order.priorities: %s did not converge" what)
  done

let priorities (g : Ts_ddg.Ddg.t) ~ii =
  let n = Ts_ddg.Ddg.n_nodes g in
  let lat v = Ts_ddg.Ddg.latency g v in
  let asap = Array.make n 0 in
  relax_until_fixed ~n ~what:"asap" (fun () ->
      let c = ref false in
      Array.iter
        (fun (e : Ts_ddg.Ddg.edge) ->
          let cand = asap.(e.src) + lat e.src - (ii * e.distance) in
          if cand > asap.(e.dst) then begin
            asap.(e.dst) <- cand;
            c := true
          end)
        g.edges;
      !c);
  let horizon = Array.fold_left max 0 (Array.mapi (fun v a -> a + lat v) asap) in
  let alap = Array.init n (fun v -> horizon - lat v) in
  relax_until_fixed ~n ~what:"alap" (fun () ->
      let c = ref false in
      Array.iter
        (fun (e : Ts_ddg.Ddg.edge) ->
          let cand = alap.(e.dst) - lat e.src + (ii * e.distance) in
          if cand < alap.(e.src) then begin
            alap.(e.src) <- cand;
            c := true
          end)
        g.edges;
      !c);
  let mob = Array.init n (fun v -> alap.(v) - asap.(v)) in
  (* Height and depth over the acyclic distance-0 subgraph. *)
  let height = Array.make n 0 and depth = Array.make n 0 in
  relax_until_fixed ~n ~what:"height" (fun () ->
      let c = ref false in
      Array.iter
        (fun (e : Ts_ddg.Ddg.edge) ->
          if e.distance = 0 then begin
            let cand = height.(e.dst) + lat e.src in
            if cand > height.(e.src) then begin
              height.(e.src) <- cand;
              c := true
            end;
            let cand = depth.(e.src) + lat e.src in
            if cand > depth.(e.dst) then begin
              depth.(e.dst) <- cand;
              c := true
            end
          end)
        g.edges;
      !c);
  { asap; alap; mob; height; depth }

(* Reachability over all DDG edges from a seed set. *)
let reachable (g : Ts_ddg.Ddg.t) ~forward seeds =
  let n = Ts_ddg.Ddg.n_nodes g in
  let mark = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun v ->
      if not mark.(v) then begin
        mark.(v) <- true;
        Queue.add v queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let nexts =
      if forward then List.map (fun (e : Ts_ddg.Ddg.edge) -> e.dst) g.succs.(v)
      else List.map (fun (e : Ts_ddg.Ddg.edge) -> e.src) g.preds.(v)
    in
    List.iter
      (fun w ->
        if not mark.(w) then begin
          mark.(w) <- true;
          Queue.add w queue
        end)
      nexts
  done;
  mark

let partition (g : Ts_ddg.Ddg.t) =
  let n = Ts_ddg.Ddg.n_nodes g in
  let sccs = Scc_priority.sorted g in
  let covered = Array.make n false in
  let sets = ref [] in
  List.iter
    (fun (comp, _rec_ii) ->
      let fresh = List.filter (fun v -> not covered.(v)) comp in
      if fresh <> [] then begin
        let set =
          if List.exists Fun.id (Array.to_list covered) then begin
            (* Nodes on paths between the covered region and this SCC. *)
            let covered_seeds =
              List.filteri (fun v _ -> covered.(v)) (List.init n (fun v -> (v, ())))
              |> List.map fst
            in
            let from_covered = reachable g ~forward:true covered_seeds in
            let to_covered = reachable g ~forward:false covered_seeds in
            let from_scc = reachable g ~forward:true fresh in
            let to_scc = reachable g ~forward:false fresh in
            let on_path v =
              (from_covered.(v) && to_scc.(v)) || (from_scc.(v) && to_covered.(v))
            in
            List.filter
              (fun v -> not covered.(v) && (List.mem v fresh || on_path v))
              (List.init n Fun.id)
          end
          else fresh
        in
        List.iter (fun v -> covered.(v) <- true) set;
        sets := set :: !sets
      end)
    sccs;
  let rest = List.filter (fun v -> not covered.(v)) (List.init n Fun.id) in
  let sets = if rest = [] then !sets else rest :: !sets in
  List.rev sets

type dir = Bottom_up | Top_down

let compute_with_dirs (g : Ts_ddg.Ddg.t) ~ii =
  let n = Ts_ddg.Ddg.n_nodes g in
  let p = priorities g ~ii in
  let ordered = Array.make n false in
  let order_rev = ref [] in
  let emit ~dir v =
    ordered.(v) <- true;
    let d =
      match dir with
      | Bottom_up -> Ts_modsched.Sched.Down
      | Top_down -> Ts_modsched.Sched.Up
    in
    order_rev := (v, d) :: !order_rev
  in
  let preds v = List.map (fun (e : Ts_ddg.Ddg.edge) -> e.src) g.preds.(v) in
  let succs v = List.map (fun (e : Ts_ddg.Ddg.edge) -> e.dst) g.succs.(v) in
  let best_by key set =
    match set with
    | [] -> None
    | v0 :: rest ->
        let better a b =
          let ka = key a and kb = key b in
          if ka <> kb then ka > kb
          else if p.mob.(a) <> p.mob.(b) then p.mob.(a) < p.mob.(b)
          else a < b
        in
        Some (List.fold_left (fun acc v -> if better v acc then v else acc) v0 rest)
  in
  let process_set set =
    let in_set = Array.make n false in
    List.iter (fun v -> in_set.(v) <- true) set;
    let members () = List.filter (fun v -> in_set.(v) && not ordered.(v)) set in
    let pred_of_ordered () =
      List.sort_uniq compare
        (List.concat_map
           (fun v -> if ordered.(v) then preds v else [])
           (List.init n Fun.id))
      |> List.filter (fun v -> in_set.(v) && not ordered.(v))
    in
    let succ_of_ordered () =
      List.sort_uniq compare
        (List.concat_map
           (fun v -> if ordered.(v) then succs v else [])
           (List.init n Fun.id))
      |> List.filter (fun v -> in_set.(v) && not ordered.(v))
    in
    let start () =
      let pr = pred_of_ordered () in
      if pr <> [] then Some (pr, Bottom_up)
      else
        let su = succ_of_ordered () in
        if su <> [] then Some (su, Top_down)
        else
          match best_by (fun v -> p.asap.(v)) (members ()) with
          | Some v -> Some ([ v ], Bottom_up)
          | None -> None
    in
    let rec sweep r dir exhausted =
      match r with
      | [] ->
          if members () = [] then ()
          else begin
            (* Swap direction; if both directions yield nothing twice, the
               set has disconnected nodes left: restart from a fresh seed. *)
            let r', dir' =
              match dir with
              | Bottom_up -> (succ_of_ordered (), Top_down)
              | Top_down -> (pred_of_ordered (), Bottom_up)
            in
            if r' = [] then
              if exhausted then (
                match start () with
                | Some (r0, d0) -> sweep r0 d0 false
                | None -> ())
              else sweep [] dir' true
            else sweep r' dir' false
          end
      | _ ->
          let key = match dir with Bottom_up -> p.depth | Top_down -> p.height in
          let v =
            match best_by (fun v -> key.(v)) r with
            | Some v -> v
            | None -> assert false
          in
          emit ~dir v;
          let grow = match dir with Bottom_up -> preds v | Top_down -> succs v in
          let r =
            List.sort_uniq compare
              (List.filter
                 (fun w -> in_set.(w) && not ordered.(w))
                 (grow @ List.filter (fun w -> w <> v) r))
          in
          sweep r dir false
    in
    match start () with Some (r, d) -> sweep r d false | None -> ()
  in
  List.iter process_set (partition g);
  let order = List.rev !order_rev in
  assert (List.length order = n);
  order

let compute g ~ii = List.map fst (compute_with_dirs g ~ii)
