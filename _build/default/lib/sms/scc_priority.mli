(** Recurrence priorities for the ordering phase. *)

val sorted : Ts_ddg.Ddg.t -> (int list * int) list
(** Non-trivial SCCs paired with their RecII, in decreasing RecII order
    (ties: the component containing the smallest node id first). The most
    constrained recurrence is scheduled first. *)
