let sorted g =
  let comps = Ts_ddg.Scc.non_trivial g in
  let with_ii = List.map (fun c -> (c, Ts_ddg.Mii.rec_ii_of_nodes g c)) comps in
  List.stable_sort
    (fun (c1, ii1) (c2, ii2) ->
      if ii1 <> ii2 then compare ii2 ii1 else compare (List.hd c1) (List.hd c2))
    with_ii
