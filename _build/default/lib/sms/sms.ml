type result = { kernel : Ts_modsched.Kernel.t; mii : int; attempts : int }

exception No_schedule of string

let try_ii g ~ii ~order =
  let s = Ts_modsched.Sched.create g ~ii in
  let place_one (v, prefer) =
    match Ts_modsched.Sched.window ~prefer s v with
    | None -> false
    | Some w ->
        let rec try_cycles = function
          | [] -> false
          | c :: rest ->
              if Ts_modsched.Sched.fits s v ~cycle:c then begin
                Ts_modsched.Sched.place s v ~cycle:c;
                true
              end
              else try_cycles rest
        in
        try_cycles (Ts_modsched.Sched.candidate_cycles w)
  in
  if List.for_all place_one order then Some (Ts_modsched.Kernel.of_schedule s)
  else None

let schedule ?max_ii g =
  let mii = Ts_ddg.Mii.mii g in
  let max_ii =
    match max_ii with Some m -> m | None -> Ts_ddg.Mii.ii_upper_bound g
  in
  let order = Order.compute_with_dirs g ~ii:mii in
  let rec go ii attempts =
    if ii > max_ii then
      raise
        (No_schedule
           (Printf.sprintf "SMS: no schedule for %s with II in [%d, %d]" g.name mii
              max_ii))
    else
      match try_ii g ~ii ~order with
      | Some kernel -> { kernel; mii; attempts }
      | None -> go (ii + 1) (attempts + 1)
  in
  go mii 1
