(** The SMS node-ordering phase (Llosa, PACT'96; GCC's [modulo-sched.c]).

    The ordering guarantees that when a node is scheduled, its already
    scheduled neighbours lie on one side only whenever possible, so the
    scheduling window never gets squeezed from both ends needlessly, and
    that recurrence nodes — which have the least scheduling freedom — come
    first.

    TMS reuses this order verbatim as its [Q_0] (Figure 3, line 3). *)

type prio = {
  asap : int array;  (** earliest start at the given II *)
  alap : int array;  (** latest start at the given II *)
  mob : int array;  (** mobility: [alap - asap] *)
  height : int array;  (** latency height over distance-0 edges *)
  depth : int array;  (** latency depth over distance-0 edges *)
}

val priorities : Ts_ddg.Ddg.t -> ii:int -> prio
(** Compute the per-node priority functions. [ii] must be
    recurrence-feasible (normally MII). *)

val partition : Ts_ddg.Ddg.t -> int list list
(** Step 1: node sets in scheduling priority order — each non-trivial SCC
    in decreasing RecII order together with the nodes on DDG paths linking
    it to the already-covered sets, then all remaining nodes. The sets are
    disjoint and cover the graph. *)

val compute : Ts_ddg.Ddg.t -> ii:int -> int list
(** Step 2: the full node order, alternating bottom-up (highest depth
    first, extending through predecessors) and top-down (highest height
    first, extending through successors) sweeps inside each set. Ties are
    broken by lower mobility, then lower node id. *)

val compute_with_dirs :
  Ts_ddg.Ddg.t -> ii:int -> (int * Ts_modsched.Sched.direction) list
(** Like {!compute}, also reporting for each node the direction of the
    sweep that emitted it: nodes found bottom-up should be placed as late
    as possible ([Down]), nodes found top-down as early as possible
    ([Up]). The scheduling phase feeds this to
    {!Ts_modsched.Sched.window}. *)
