(** The seven selected DOACROSS loops of Table 3 / Section 5.2.

    Four loops from art (the paper unrolls its two 11-instruction loops
    four times; we generate four ~27-instruction recurrence-bound bodies),
    and one loop each from equake, lucas and fma3d, generated to match
    Table 3's structural columns: instruction count, number of non-trivial
    SCCs, MII (recurrence-bound for art and lucas, resource-bound for
    equake and fma3d), and LDP well above MII. All their enclosing loops
    are DOACROSS in the paper, i.e. these bodies carry genuine
    cross-iteration dependences. *)

type selected = {
  bench : string;  (** source benchmark name *)
  loops : Ts_ddg.Ddg.t list;  (** the selected loop bodies *)
  coverage : float;  (** Table 3's LC column (0.216, 0.585, 0.334, 0.143) *)
  trip : int;  (** iterations simulated per loop *)
}

val art : selected
val equake : selected
val lucas : selected
val fma3d : selected

val all : selected list
(** In Table 3 order: art, equake, lucas, fma3d. Seven loops total. *)
