(** Synthetic stand-ins for the 13 SPECfp2000 benchmarks of Table 2.

    The paper modulo-schedules 778 innermost loops drawn from SPECfp2000
    (galgel excluded). We cannot run GCC on SPEC sources here, so each
    benchmark is replaced by a deterministic generator calibrated against
    the three per-benchmark statistics Table 2 reports — loop count,
    average instruction count and average MII — plus a recurrence/memory
    profile inferred from the paper's discussion (art is recurrence-bound;
    wupwise has one dominant non-trivial SCC; lucas has very large bodies;
    etc.). Loop coverage ratios (needed to turn loop speedups into program
    speedups, Fig. 4) are not reported in the paper for these benchmarks,
    so plausible per-benchmark constants are used and documented here. *)

type bench = {
  name : string;
  n_loops : int;  (** Table 2 column 2 *)
  avg_inst : float;  (** Table 2 column 3 (target) *)
  avg_mii : float;  (** Table 2 column 4 (target) *)
  coverage : float;  (** fraction of program time in the scheduled loops *)
  rec_frac : float;  (** fraction of loops given a dominant recurrence *)
  mem_prob : float * float;  (** memory-dependence probability range *)
  trip : int;  (** iterations per loop when simulated *)
  fp_frac : float;  (** floating-point share of non-memory instructions *)
  fmul_frac : float;  (** multiply share of the floating point mix *)
}

val benchmarks : bench list
(** The 13 benchmarks, in Table 2 order. Loop counts sum to 778. *)

val find : string -> bench
(** Lookup by name. Raises [Not_found]. *)

val loops : bench -> Ts_ddg.Ddg.t list
(** The benchmark's loop bodies (deterministic in the benchmark name). *)

val total_loops : int
(** 778. *)
