(** The paper's Figure 1 motivating example.

    Nine instructions n0..n8 on the {!Ts_isa.Machine.toy} machine, with the
    recurrence circuit (n0, n1, n2, n4, n5) closed by the low-probability
    memory dependence n5 -> n0, giving RecII = 8; the unpipelined multiply
    gives ResII = 4; so MII = 8. The register dependences n6 -> n0 and
    n7 -> n3 (distance 1) are the ones SMS schedules "tightly" — producing
    an 11-cycle synchronisation delay on a two-core SpMT machine — and TMS
    relaxes. *)

val ddg : unit -> Ts_ddg.Ddg.t
(** Build a fresh copy of the DDG. [Mii.mii] of the result is 8. *)

val mem_dep_prob : float
(** The "negligibly small" probability used on the three memory
    dependences (0.02). *)
