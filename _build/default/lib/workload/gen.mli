(** Random loop-body generator.

    Produces DDGs with controllable shape so that a synthetic suite can be
    calibrated against Table 2's per-benchmark statistics (instruction
    count, MII, recurrence structure, memory-dependence probabilities).
    Generation is driven entirely by the supplied RNG, so a (seed, profile)
    pair always yields the same loop. *)

type profile = {
  name : string;
  machine : Ts_isa.Machine.t;
  n_inst : int;  (** exact instruction count *)
  mem_frac : float;  (** fraction of loads + stores (loads 2:1 stores) *)
  fp_frac : float;  (** fraction of the rest that is floating point *)
  fmul_frac : float;
      (** fraction of the floating-point ops that are multiplies; the
          machine has a single (pipelined) multiplier, so a high value
          makes the loop multiplier-bound (art's dot-product kernels) *)
  fanin : float;  (** mean register inputs per instruction (1..2) *)
  self_loop_rate : float;  (** accumulator probability per eligible node *)
  target_rec_ii : int option;
      (** if set, inject a distance-1 recurrence circuit whose latency sum
          approximates this RecII (DOACROSS loops); [None] leaves only
          accumulators *)
  n_extra_sccs : int;  (** additional small recurrences (Table 3's #SCC) *)
  mem_dep_rate : float;  (** expected cross-iteration memory dependences
                             per store *)
  mem_prob : float * float;  (** probability range for those dependences *)
  mem_rec : bool;
      (** allow memory dependences that close recurrences (as in the
          motivating example); when false, only store-to-load pairs that do
          not create a new cycle are considered *)
  ldp_target : int option;
      (** if set, chain extra distance-0 edges (avoiding the recurrence
          circuit) until the longest dependence path reaches roughly this
          many cycles — Table 3 reports LDP well above MII *)
}

val default_profile : profile
(** A medium, mostly resource-bound loop on the SpMT machine. *)

val generate : Ts_base.Rng.t -> profile -> Ts_ddg.Ddg.t
(** Generate one loop. The result always validates, is schedulable (its
    distance-0 subgraph is acyclic), and has at least one store and one
    load when [mem_frac > 0]. *)
