lib/workload/gen.ml: Array Float Fun Hashtbl List Ts_base Ts_ddg Ts_isa
