lib/workload/doacross.ml: Gen List Printf Ts_base Ts_ddg Ts_sms
