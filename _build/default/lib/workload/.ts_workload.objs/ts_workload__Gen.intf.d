lib/workload/gen.mli: Ts_base Ts_ddg Ts_isa
