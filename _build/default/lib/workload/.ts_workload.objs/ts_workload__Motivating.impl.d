lib/workload/motivating.ml: Ts_ddg Ts_isa
