lib/workload/spec_suite.ml: Float Gen List Printf Ts_base Ts_sms
