lib/workload/doacross.mli: Ts_ddg
