lib/workload/spec_suite.mli: Ts_ddg
