lib/workload/motivating.mli: Ts_ddg
