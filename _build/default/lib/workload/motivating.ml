let mem_dep_prob = 0.02

let ddg () =
  let open Ts_isa.Opcode in
  let b = Ts_ddg.Ddg.Builder.create ~name:"motivating" Ts_isa.Machine.toy in
  let n0 = Ts_ddg.Ddg.Builder.add b ~name:"n0" Load in
  let n1 = Ts_ddg.Ddg.Builder.add b ~name:"n1" Ialu in
  let n2 = Ts_ddg.Ddg.Builder.add b ~name:"n2" Load in
  let n3 = Ts_ddg.Ddg.Builder.add b ~name:"n3" Load in
  let n4 = Ts_ddg.Ddg.Builder.add b ~name:"n4" ~latency:2 Fmul in
  let n5 = Ts_ddg.Ddg.Builder.add b ~name:"n5" Store in
  let n6 = Ts_ddg.Ddg.Builder.add b ~name:"n6" Ialu in
  let n7 = Ts_ddg.Ddg.Builder.add b ~name:"n7" Ialu in
  let n8 = Ts_ddg.Ddg.Builder.add b ~name:"n8" Ialu in
  (* The critical recurrence: n0 -> n1 -> n2 -> n4 -> n5 within an
     iteration, closed by the speculated store-to-load dependence
     n5 -> n0 one iteration later. Total latency 2+1+2+2+1 = 8 over
     distance 1: RecII = 8. *)
  Ts_ddg.Ddg.Builder.dep b n0 n1;
  Ts_ddg.Ddg.Builder.dep b n1 n2;
  Ts_ddg.Ddg.Builder.dep b n2 n4;
  Ts_ddg.Ddg.Builder.dep b n4 n5;
  Ts_ddg.Ddg.Builder.mem_dep b ~dist:1 ~prob:mem_dep_prob n5 n0;
  Ts_ddg.Ddg.Builder.mem_dep b ~dist:1 ~prob:mem_dep_prob n5 n2;
  Ts_ddg.Ddg.Builder.mem_dep b ~dist:1 ~prob:mem_dep_prob n5 n3;
  (* The loop-carried register dependences SMS packs tightly. *)
  Ts_ddg.Ddg.Builder.dep b ~dist:1 n6 n0;
  Ts_ddg.Ddg.Builder.dep b ~dist:1 n6 n6;
  Ts_ddg.Ddg.Builder.dep b ~dist:1 n7 n3;
  Ts_ddg.Ddg.Builder.dep b ~dist:1 n7 n7;
  Ts_ddg.Ddg.Builder.dep b ~dist:1 n8 n5;
  Ts_ddg.Ddg.Builder.dep b ~dist:1 n8 n8;
  Ts_ddg.Ddg.Builder.build b
