(* Stats, Intmath, Tablefmt and the Parallel/Pool engine. *)

let feq = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)

(* --- Stats --- *)

let test_mean () =
  feq "mean" 2.0 (Ts_base.Stats.mean [ 1.0; 2.0; 3.0 ]);
  feq "empty" 0.0 (Ts_base.Stats.mean [])

let test_mean_int () = feq "mean_int" 2.5 (Ts_base.Stats.mean_int [ 2; 3 ])

let test_geomean () =
  feq "geomean" 2.0 (Ts_base.Stats.geomean [ 1.0; 4.0 ]);
  feq "empty" 0.0 (Ts_base.Stats.geomean [])

let test_weighted_mean () =
  feq "weighted" 1.25 (Ts_base.Stats.weighted_mean [ (1.0, 3.0); (2.0, 1.0) ])

let test_percent_change () =
  feq "up" 50.0 (Ts_base.Stats.percent_change 2.0 3.0);
  feq "down" (-25.0) (Ts_base.Stats.percent_change 4.0 3.0)

let test_speedup () =
  feq "2x faster = +100%" 100.0
    (Ts_base.Stats.speedup_percent ~baseline:10.0 ~improved:5.0);
  feq "same = 0%" 0.0 (Ts_base.Stats.speedup_percent ~baseline:5.0 ~improved:5.0);
  feq "slower is negative" (-50.0)
    (Ts_base.Stats.speedup_percent ~baseline:5.0 ~improved:10.0)

let test_clamp () =
  feq "below" 1.0 (Ts_base.Stats.clamp ~lo:1.0 ~hi:2.0 0.0);
  feq "above" 2.0 (Ts_base.Stats.clamp ~lo:1.0 ~hi:2.0 9.0);
  feq "inside" 1.5 (Ts_base.Stats.clamp ~lo:1.0 ~hi:2.0 1.5)

let test_round1 () =
  feq "round down" 1.2 (Ts_base.Stats.round1 1.24);
  feq "round up" 1.3 (Ts_base.Stats.round1 1.25)

(* --- Intmath --- *)

let test_div_floor () =
  check_int "7/2" 3 (Ts_base.Intmath.div_floor 7 2);
  check_int "-7/2" (-4) (Ts_base.Intmath.div_floor (-7) 2);
  check_int "-8/2" (-4) (Ts_base.Intmath.div_floor (-8) 2);
  check_int "0/5" 0 (Ts_base.Intmath.div_floor 0 5)

let test_div_ceil () =
  check_int "7/2" 4 (Ts_base.Intmath.div_ceil 7 2);
  check_int "-7/2" (-3) (Ts_base.Intmath.div_ceil (-7) 2);
  check_int "8/2" 4 (Ts_base.Intmath.div_ceil 8 2)

let test_modulo () =
  check_int "7 mod 3" 1 (Ts_base.Intmath.modulo 7 3);
  check_int "-1 mod 3" 2 (Ts_base.Intmath.modulo (-1) 3);
  check_int "-3 mod 3" 0 (Ts_base.Intmath.modulo (-3) 3)

let prop_floor_ceil =
  QCheck.Test.make ~count:1000 ~name:"div_floor <= div_ceil, consistent with mod"
    QCheck.(pair (int_range (-10000) 10000) (int_range 1 100))
    (fun (a, b) ->
      let f = Ts_base.Intmath.div_floor a b in
      let c = Ts_base.Intmath.div_ceil a b in
      let m = Ts_base.Intmath.modulo a b in
      f <= c
      && (f * b) + m = a
      && m >= 0 && m < b
      && if a mod b = 0 then f = c else c = f + 1)

(* --- Tablefmt --- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t =
    Ts_base.Tablefmt.create
      [ ("name", Ts_base.Tablefmt.Left); ("v", Ts_base.Tablefmt.Right) ]
  in
  Ts_base.Tablefmt.add_row t [ "a"; "1" ];
  Ts_base.Tablefmt.add_row t [ "bb"; "22" ];
  let s = Ts_base.Tablefmt.render t in
  Alcotest.(check bool) "contains header" true (contains s "name");
  Alcotest.(check bool) "contains cells" true (contains s "bb" && contains s "22")

let test_table_align () =
  let t =
    Ts_base.Tablefmt.create
      [ ("x", Ts_base.Tablefmt.Right) ]
  in
  Ts_base.Tablefmt.add_row t [ "1" ];
  Ts_base.Tablefmt.add_row t [ "100" ];
  let lines = String.split_on_char '\n' (Ts_base.Tablefmt.render t) in
  (* every row line has the same width *)
  let widths =
    List.filter_map
      (fun l -> if String.length l > 0 then Some (String.length l) else None)
      lines
  in
  match widths with
  | [] -> Alcotest.fail "no lines"
  | w :: rest -> List.iter (fun w' -> check_int "equal line widths" w w') rest

let test_table_mismatch () =
  let t = Ts_base.Tablefmt.create [ ("a", Ts_base.Tablefmt.Left) ] in
  Alcotest.check_raises "cell count mismatch"
    (Invalid_argument "Tablefmt.add_row: cell count mismatch") (fun () ->
      Ts_base.Tablefmt.add_row t [ "1"; "2" ])

let test_table_title () =
  let t = Ts_base.Tablefmt.create ~title:"My Table" [ ("a", Ts_base.Tablefmt.Left) ] in
  Ts_base.Tablefmt.add_row t [ "x" ];
  let s = Ts_base.Tablefmt.render t in
  Alcotest.(check bool) "title on first line" true
    (String.length s > 8 && String.sub s 0 8 = "My Table")

let test_cells () =
  Alcotest.(check string) "int" "42" (Ts_base.Tablefmt.cell_int 42);
  Alcotest.(check string) "f1" "1.5" (Ts_base.Tablefmt.cell_f1 1.46);
  Alcotest.(check string) "f2" "1.46" (Ts_base.Tablefmt.cell_f2 1.456);
  Alcotest.(check string) "pct" "12.5%" (Ts_base.Tablefmt.cell_pct 12.49)

(* --- Parallel / Pool --- *)

(* Variable-length pure work keyed on the input, so task completion order
   (and hence steal order) varies run to run while the value is fixed. *)
let spin seed =
  let rounds = 500 + (seed * 7919 mod 4000) in
  let x = ref seed in
  for _ = 1 to rounds do
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF
  done;
  !x

(* Depth-3 map-inside-map: inner maps ride the pool help-first instead of
   spawning, so the resident domain count must not grow past the batch
   size no matter how deep the nesting. *)
let test_pool_nested () =
  let bound = max (Ts_base.Pool.size_now ()) 4 in
  let expected =
    List.init 6 (fun a ->
        List.init 5 (fun b ->
            List.init 4 (fun c -> spin ((a * 100) + (b * 10) + c))))
  in
  let got =
    Ts_base.Parallel.map ~jobs:4
      (fun a ->
        Ts_base.Parallel.map ~jobs:4
          (fun b ->
            Ts_base.Parallel.map ~jobs:4
              (fun c -> spin ((a * 100) + (b * 10) + c))
              (List.init 4 Fun.id))
          (List.init 5 Fun.id))
      (List.init 6 Fun.id)
  in
  Alcotest.(check bool) "depth-3 nested results" true (got = expected);
  Alcotest.(check bool) "no domain explosion" true
    (Ts_base.Pool.size_now () <= bound)

(* Whatever order thieves drain the deques in, results come back in input
   order with input-indexed values. *)
let test_pool_steal_determinism () =
  let items = List.init 40 Fun.id in
  let expected = List.map spin items in
  for _ = 1 to 5 do
    let got = Ts_base.Parallel.map ~jobs:4 spin items in
    Alcotest.(check bool) "deterministic result order" true (got = expected)
  done

(* Failure indices refer to input positions, not execution order: under
   stealing the failing tasks finish in arbitrary order, but Map_errors
   must list them ascending and identically to the sequential path. *)
let test_pool_map_errors_fidelity () =
  let f i =
    ignore (spin i);
    if i mod 7 = 3 then failwith (Printf.sprintf "boom-%d" i) else i * i
  in
  let items = List.init 50 Fun.id in
  let run jobs =
    match Ts_base.Parallel.map ~jobs f items with
    | _ -> Alcotest.fail "expected Map_errors"
    | exception Ts_base.Parallel.Map_errors fs ->
        List.map (fun (i, e) -> (i, Printexc.to_string e)) fs
  in
  let seq = run 1 in
  let par = run 4 in
  Alcotest.(check bool) "identical failures at jobs 1 and 4" true (seq = par);
  Alcotest.(check (list int)) "ascending input indices"
    [ 3; 10; 17; 24; 31; 38; 45 ]
    (List.map fst par)

(* Worker_exit must cover every pool slot, including workers that ran
   zero tasks of the batch — a 2-item batch on a 4-worker pool leaves
   idle slots, and utilization metrics need to see them. *)
let test_pool_worker_exit_zero () =
  let saved = Ts_base.Parallel.get_observer () in
  let lock = Mutex.create () in
  let exits = ref [] in
  Ts_base.Parallel.set_observer
    (Some
       (function
         | Ts_base.Parallel.Worker_exit { worker; tasks; _ } ->
             Mutex.lock lock;
             exits := (worker, tasks) :: !exits;
             Mutex.unlock lock
         | _ -> ()));
  let r = Ts_base.Parallel.map ~jobs:4 (fun x -> x + 1) [ 1; 2 ] in
  Ts_base.Parallel.set_observer saved;
  Alcotest.(check (list int)) "results" [ 2; 3 ] r;
  let exits = !exits in
  let total = List.fold_left (fun a (_, t) -> a + t) 0 exits in
  check_int "task accounting sums to n" 2 total;
  check_int "one exit per pool slot (caller included)"
    (Ts_base.Pool.size_now () + 1)
    (List.length exits);
  Alcotest.(check bool) "zero-task workers reported" true
    (List.exists (fun (_, t) -> t = 0) exits)

let test_pool_futures () =
  let futs = List.init 10 (fun i -> Ts_base.Pool.submit (fun () -> spin i)) in
  Alcotest.(check (list int)) "futures resolve in submission order"
    (List.init 10 spin)
    (List.map Ts_base.Pool.await futs);
  let bad = Ts_base.Pool.submit (fun () -> failwith "nope") in
  Alcotest.check_raises "await re-raises" (Failure "nope") (fun () ->
      ignore (Ts_base.Pool.await bad))

let suite =
  [
    Alcotest.test_case "stats: mean" `Quick test_mean;
    Alcotest.test_case "stats: mean_int" `Quick test_mean_int;
    Alcotest.test_case "stats: geomean" `Quick test_geomean;
    Alcotest.test_case "stats: weighted_mean" `Quick test_weighted_mean;
    Alcotest.test_case "stats: percent_change" `Quick test_percent_change;
    Alcotest.test_case "stats: speedup_percent" `Quick test_speedup;
    Alcotest.test_case "stats: clamp" `Quick test_clamp;
    Alcotest.test_case "stats: round1" `Quick test_round1;
    Alcotest.test_case "intmath: div_floor" `Quick test_div_floor;
    Alcotest.test_case "intmath: div_ceil" `Quick test_div_ceil;
    Alcotest.test_case "intmath: modulo" `Quick test_modulo;
    QCheck_alcotest.to_alcotest prop_floor_ceil;
    Alcotest.test_case "tablefmt: render" `Quick test_table_render;
    Alcotest.test_case "tablefmt: aligned widths" `Quick test_table_align;
    Alcotest.test_case "tablefmt: arity check" `Quick test_table_mismatch;
    Alcotest.test_case "tablefmt: title" `Quick test_table_title;
    Alcotest.test_case "tablefmt: cell formatters" `Quick test_cells;
    Alcotest.test_case "pool: nested maps, no domain explosion" `Quick
      test_pool_nested;
    Alcotest.test_case "pool: steal order vs result order" `Quick
      test_pool_steal_determinism;
    Alcotest.test_case "pool: Map_errors index fidelity" `Quick
      test_pool_map_errors_fidelity;
    Alcotest.test_case "pool: zero-task Worker_exit" `Quick
      test_pool_worker_exit_zero;
    Alcotest.test_case "pool: futures submit/await" `Quick test_pool_futures;
  ]
