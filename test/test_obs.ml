(* The Ts_obs observability layer: JSON emission/parsing, the metrics
   registry, the Chrome/JSONL tracer, the simulator's structured trace
   (validity + determinism), and the hardened legacy env parsing. *)

module J = Ts_obs.Json
module Metrics = Ts_obs.Metrics
module Trace = Ts_obs.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Json --- *)

let test_json_roundtrip () =
  let samples =
    [
      J.Null;
      J.Bool true;
      J.Int (-42);
      J.Float 1.5;
      J.Str "plain";
      J.Str "esc \"quotes\" \\ and\nnewline\ttab";
      J.List [ J.Int 1; J.Str "two"; J.List [] ];
      J.Obj [ ("a", J.Int 1); ("b", J.Obj [ ("c", J.Bool false) ]) ];
    ]
  in
  List.iter
    (fun v ->
      match J.parse (J.to_string v) with
      | Ok v' -> check_bool (J.to_string v) true (v = v')
      | Error msg -> Alcotest.failf "roundtrip %s: %s" (J.to_string v) msg)
    samples

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "\"unterminated"; "12 34"; "{\"a\" 1}"; "tru" ]

let test_json_member () =
  let v = J.Obj [ ("x", J.Int 7); ("y", J.Str "s") ] in
  check_bool "x" true (J.member "x" v = Some (J.Int 7));
  check_bool "missing" true (J.member "z" v = None);
  check_bool "non-obj" true (J.member "x" (J.Int 3) = None);
  check_bool "to_int" true (J.to_int (J.Int 5) = Some 5 && J.to_int J.Null = None);
  check_bool "to_str" true (J.to_str (J.Str "a") = Some "a")

(* --- Metrics --- *)

let test_counters_monotonic () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "test.counter" in
  let prev = ref (Metrics.counter_value c) in
  for i = 1 to 10 do
    Metrics.incr ~by:(i mod 3) c;
    let v = Metrics.counter_value c in
    check_bool "non-decreasing" true (v >= !prev);
    prev := v
  done;
  check_bool "negative increment rejected" true
    (match Metrics.incr ~by:(-1) c with
    | () -> false
    | exception Invalid_argument _ -> true);
  (* Same name returns the same underlying cell; wrong kind is an error. *)
  Metrics.incr (Metrics.counter reg "test.counter");
  check_int "shared handle" (!prev + 1) (Metrics.counter_value c);
  check_bool "kind clash rejected" true
    (match Metrics.gauge reg "test.counter" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_metrics_table () =
  let reg = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter reg "b.counter");
  Metrics.set_gauge (Metrics.gauge reg "a.gauge") 2.5;
  let h = Metrics.histogram reg "c.hist" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 6.0 ];
  check_int "hist count" 3 (Metrics.histogram_count h);
  (match J.parse (J.to_string (Metrics.to_json reg)) with
  | Ok (J.Obj kvs) ->
      check_bool "sorted keys" true
        (List.map fst kvs = [ "a.gauge"; "b.counter"; "c.hist" ]);
      check_bool "counter value" true (List.assoc "b.counter" kvs = J.Int 3)
  | Ok _ -> Alcotest.fail "metrics json not an object"
  | Error msg -> Alcotest.failf "metrics json invalid: %s" msg);
  let table = Metrics.render_table reg in
  check_bool "counter row" true (contains table "b.counter");
  check_bool "histogram detail" true (contains table "mean=3.00")

(* --- Trace --- *)

(* Events of a Chrome trace buffer, or fail the test on invalid JSON. *)
let parse_chrome buf =
  match J.parse (Buffer.contents buf) with
  | Ok (J.List events) -> events
  | Ok _ -> Alcotest.fail "chrome trace is not a JSON array"
  | Error msg -> Alcotest.failf "chrome trace invalid: %s" msg

(* Per-(pid, tid) track: B/E counts balance and never go negative in file
   order. *)
let check_balanced events =
  let depth : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match J.member "ph" ev with
      | Some (J.Str ("B" | "E" as ph)) ->
          let get k = Option.bind (J.member k ev) J.to_int in
          let key = (Option.value ~default:0 (get "pid"),
                     Option.value ~default:0 (get "tid")) in
          let d = Option.value ~default:0 (Hashtbl.find_opt depth key) in
          let d = if ph = "B" then d + 1 else d - 1 in
          check_bool "end without begin" true (d >= 0);
          Hashtbl.replace depth key d
      | _ -> ())
    events;
  Hashtbl.iter (fun _ d -> check_int "unclosed spans" 0 d) depth

let test_trace_chrome_shape () =
  let buf = Buffer.create 256 in
  let tr = Trace.to_buffer buf in
  check_bool "enabled" true (Trace.enabled tr);
  check_bool "null disabled" false (Trace.enabled Trace.null);
  Trace.process_name tr ~pid:1 "proc";
  Trace.thread_name tr ~pid:1 ~tid:2 "track";
  Trace.begin_span tr ~pid:1 ~tid:2 ~ts:10 "outer"
    ~args:[ ("k", J.Str "v") ];
  Trace.begin_span tr ~pid:1 ~tid:2 ~ts:11 "inner";
  Trace.instant tr ~pid:1 ~tid:2 ~ts:12 "mark";
  Trace.counter_sample tr ~pid:1 ~ts:12 "occ" [ ("x", 3.0) ];
  Trace.end_span tr ~pid:1 ~tid:2 ~ts:13 "inner";
  Trace.end_span tr ~pid:1 ~tid:2 ~ts:14 "outer";
  Trace.close tr;
  Trace.close tr (* idempotent *);
  let events = parse_chrome buf in
  check_int "event count" 8 (List.length events);
  check_balanced events;
  (* Every event carries name/ph/pid/tid. *)
  List.iter
    (fun ev ->
      List.iter
        (fun k -> check_bool ("has " ^ k) true (J.member k ev <> None))
        [ "name"; "ph"; "pid"; "tid" ])
    events

let test_trace_null_noop () =
  (* The null sink accepts everything silently and ticks stay at 0. *)
  Trace.begin_span Trace.null ~ts:0 "x";
  Trace.end_span Trace.null ~ts:1 "x";
  Trace.instant Trace.null ~ts:2 "y";
  Trace.close Trace.null;
  check_int "tick" 0 (Trace.tick Trace.null);
  check_int "tick again" 0 (Trace.tick Trace.null)

let test_trace_jsonl () =
  let buf = Buffer.create 256 in
  let tr = Trace.to_buffer ~format:Trace.Jsonl buf in
  Trace.instant tr ~ts:1 "a";
  Trace.instant tr ~ts:2 "b";
  Trace.close tr;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check_int "two lines" 2 (List.length lines);
  List.iter
    (fun l ->
      match J.parse l with
      | Ok (J.Obj _) -> ()
      | Ok _ -> Alcotest.fail "jsonl line is not an object"
      | Error msg -> Alcotest.failf "jsonl line invalid: %s" msg)
    lines

(* --- Simulator tracing --- *)

let sim_setup () =
  let g = Ts_workload.Motivating.ddg () in
  let cfg = Ts_spmt.Config.default in
  let params = cfg.Ts_spmt.Config.params in
  let plan = Ts_spmt.Address_plan.create ~seed:"obs" g in
  let tms = Ts_tms.Tms.schedule_sweep ~params g in
  (cfg, plan, tms.Ts_tms.Tms.kernel)

let test_sim_trace_valid () =
  let cfg, plan, kernel = sim_setup () in
  let buf = Buffer.create 4096 in
  let tr = Trace.to_buffer buf in
  let _st = Ts_spmt.Sim.run ~plan ~warmup:64 ~trace:tr cfg kernel ~trip:512 in
  Trace.close tr;
  let events = parse_chrome buf in
  check_balanced events;
  let count name =
    List.length
      (List.filter (fun ev -> J.member "name" ev = Some (J.Str name)) events)
  in
  check_bool "has exec spans" true (count "exec" > 0);
  check_bool "has commit spans" true (count "commit" > 0);
  check_bool "has squash or sync-stall instants" true
    (count "squash" + count "sync-stall" > 0);
  check_bool "has occupancy samples" true (count "occupancy" > 0)

let test_sim_trace_deterministic () =
  (* Tracing must not perturb the simulation: identical stats with the
     null sink and with a live buffer sink. *)
  let cfg, plan, kernel = sim_setup () in
  let st_null = Ts_spmt.Sim.run ~plan ~warmup:64 cfg kernel ~trip:512 in
  let buf = Buffer.create 4096 in
  let tr = Trace.to_buffer buf in
  let st_traced =
    Ts_spmt.Sim.run ~plan ~warmup:64 ~trace:tr cfg kernel ~trip:512
  in
  Trace.close tr;
  check_bool "stats identical" true (st_null = st_traced);
  check_bool "trace non-empty" true (Buffer.length buf > 2)

let test_search_log_attempts () =
  let g = Ts_workload.Motivating.ddg () in
  let params = Ts_isa.Spmt_params.default in
  let buf = Buffer.create 4096 in
  let tr = Trace.to_buffer ~format:Trace.Jsonl buf in
  let r = Ts_tms.Tms.schedule ~trace:tr ~p_max:0.05 ~params g in
  Trace.close tr;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  let events =
    List.map
      (fun l ->
        match J.parse l with
        | Ok ev -> ev
        | Error msg -> Alcotest.failf "search log line invalid: %s" msg)
      lines
  in
  let attempts =
    List.filter (fun ev -> J.member "name" ev = Some (J.Str "tms.attempt")) events
  in
  check_int "one event per attempt" r.Ts_tms.Tms.attempts (List.length attempts);
  check_bool "has result event" true
    (List.exists (fun ev -> J.member "name" ev = Some (J.Str "tms.result")) events)

(* --- Legacy env parsing --- *)

let test_legacy_range_parse () =
  check_bool "ok" true (Ts_spmt.Sim.parse_trace_range "3-17" = Ok (3, 17));
  check_bool "ws ok" true (Ts_spmt.Sim.parse_trace_range " 0 - 0 " = Ok (0, 0));
  List.iter
    (fun s ->
      match Ts_spmt.Sim.parse_trace_range s with
      | Ok _ -> Alcotest.failf "expected error for %S" s
      | Error msg ->
          check_bool "error names the var" true (contains msg "TS_SIM_TRACE"))
    [ ""; "x"; "5"; "7-3"; "-1-4"; "a-b"; "1-2-3" ]

let test_legacy_nodes_parse () =
  check_bool "ok" true
    (Ts_spmt.Sim.parse_trace_nodes ~n_nodes:9 "0,3, 8" = Ok [ 0; 3; 8 ]);
  List.iter
    (fun s ->
      match Ts_spmt.Sim.parse_trace_nodes ~n_nodes:9 s with
      | Ok _ -> Alcotest.failf "expected error for %S" s
      | Error msg ->
          check_bool "error names the var" true
            (contains msg "TS_SIM_TRACE_NODES"))
    [ ""; "x"; "1,,2"; "9"; "-1" ]

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json member accessors" `Quick test_json_member;
    Alcotest.test_case "counters monotonic" `Quick test_counters_monotonic;
    Alcotest.test_case "metrics table" `Quick test_metrics_table;
    Alcotest.test_case "chrome trace shape" `Quick test_trace_chrome_shape;
    Alcotest.test_case "null tracer no-op" `Quick test_trace_null_noop;
    Alcotest.test_case "jsonl format" `Quick test_trace_jsonl;
    Alcotest.test_case "sim trace valid + balanced" `Quick test_sim_trace_valid;
    Alcotest.test_case "sim trace deterministic" `Quick test_sim_trace_deterministic;
    Alcotest.test_case "search log attempts" `Quick test_search_log_attempts;
    Alcotest.test_case "legacy range parse" `Quick test_legacy_range_parse;
    Alcotest.test_case "legacy nodes parse" `Quick test_legacy_nodes_parse;
  ]
