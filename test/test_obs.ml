(* The Ts_obs observability layer: JSON emission/parsing, the metrics
   registry, the Chrome/JSONL tracer, the simulator's structured trace
   (validity + determinism), domain-safety of the tracer, and the hard
   error on the removed TS_SIM_TRACE env vars. *)

module J = Ts_obs.Json
module Metrics = Ts_obs.Metrics
module Trace = Ts_obs.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Json --- *)

let test_json_roundtrip () =
  let samples =
    [
      J.Null;
      J.Bool true;
      J.Int (-42);
      J.Float 1.5;
      J.Str "plain";
      J.Str "esc \"quotes\" \\ and\nnewline\ttab";
      J.List [ J.Int 1; J.Str "two"; J.List [] ];
      J.Obj [ ("a", J.Int 1); ("b", J.Obj [ ("c", J.Bool false) ]) ];
    ]
  in
  List.iter
    (fun v ->
      match J.parse (J.to_string v) with
      | Ok v' -> check_bool (J.to_string v) true (v = v')
      | Error msg -> Alcotest.failf "roundtrip %s: %s" (J.to_string v) msg)
    samples

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "\"unterminated"; "12 34"; "{\"a\" 1}"; "tru" ]

let test_json_member () =
  let v = J.Obj [ ("x", J.Int 7); ("y", J.Str "s") ] in
  check_bool "x" true (J.member "x" v = Some (J.Int 7));
  check_bool "missing" true (J.member "z" v = None);
  check_bool "non-obj" true (J.member "x" (J.Int 3) = None);
  check_bool "to_int" true (J.to_int (J.Int 5) = Some 5 && J.to_int J.Null = None);
  check_bool "to_str" true (J.to_str (J.Str "a") = Some "a")

(* --- Metrics --- *)

let test_counters_monotonic () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "test.counter" in
  let prev = ref (Metrics.counter_value c) in
  for i = 1 to 10 do
    Metrics.incr ~by:(i mod 3) c;
    let v = Metrics.counter_value c in
    check_bool "non-decreasing" true (v >= !prev);
    prev := v
  done;
  check_bool "negative increment rejected" true
    (match Metrics.incr ~by:(-1) c with
    | () -> false
    | exception Invalid_argument _ -> true);
  (* Same name returns the same underlying cell; wrong kind is an error. *)
  Metrics.incr (Metrics.counter reg "test.counter");
  check_int "shared handle" (!prev + 1) (Metrics.counter_value c);
  check_bool "kind clash rejected" true
    (match Metrics.gauge reg "test.counter" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_metrics_table () =
  let reg = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter reg "b.counter");
  Metrics.set_gauge (Metrics.gauge reg "a.gauge") 2.5;
  let h = Metrics.histogram reg "c.hist" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 6.0 ];
  check_int "hist count" 3 (Metrics.histogram_count h);
  (match J.parse (J.to_string (Metrics.to_json reg)) with
  | Ok json ->
      check_bool "versioned" true (J.member "version" json = Some (J.Int 2));
      (match J.member "metrics" json with
      | Some (J.Obj kvs) ->
          check_bool "sorted keys" true
            (List.map fst kvs = [ "a.gauge"; "b.counter"; "c.hist" ]);
          check_bool "counter value" true (List.assoc "b.counter" kvs = J.Int 3);
          let hist = List.assoc "c.hist" kvs in
          check_bool "hist count json" true
            (J.member "count" hist = Some (J.Int 3));
          check_bool "hist p50" true
            (match J.member "p50" hist with
            | Some (J.Float p) -> p >= 1.5 && p <= 2.5
            | _ -> false)
      | _ -> Alcotest.fail "metrics json has no metrics object")
  | Error msg -> Alcotest.failf "metrics json invalid: %s" msg);
  let table = Metrics.render_table reg in
  check_bool "counter row" true (contains table "b.counter");
  check_bool "quantile columns" true
    (contains table "p50" && contains table "p99");
  (* Mean of {1, 2, 6} is exactly 3; rendered with %.4g. *)
  check_bool "histogram mean" true (contains table "3")

(* --- Trace --- *)

(* Events of a Chrome trace buffer, or fail the test on invalid JSON. *)
let parse_chrome buf =
  match J.parse (Buffer.contents buf) with
  | Ok (J.List events) -> events
  | Ok _ -> Alcotest.fail "chrome trace is not a JSON array"
  | Error msg -> Alcotest.failf "chrome trace invalid: %s" msg

(* Per-(pid, tid) track: B/E counts balance and never go negative in file
   order. *)
let check_balanced events =
  let depth : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match J.member "ph" ev with
      | Some (J.Str ("B" | "E" as ph)) ->
          let get k = Option.bind (J.member k ev) J.to_int in
          let key = (Option.value ~default:0 (get "pid"),
                     Option.value ~default:0 (get "tid")) in
          let d = Option.value ~default:0 (Hashtbl.find_opt depth key) in
          let d = if ph = "B" then d + 1 else d - 1 in
          check_bool "end without begin" true (d >= 0);
          Hashtbl.replace depth key d
      | _ -> ())
    events;
  Hashtbl.iter (fun _ d -> check_int "unclosed spans" 0 d) depth

let test_trace_chrome_shape () =
  let buf = Buffer.create 256 in
  let tr = Trace.to_buffer buf in
  check_bool "enabled" true (Trace.enabled tr);
  check_bool "null disabled" false (Trace.enabled Trace.null);
  Trace.process_name tr ~pid:1 "proc";
  Trace.thread_name tr ~pid:1 ~tid:2 "track";
  Trace.begin_span tr ~pid:1 ~tid:2 ~ts:10 "outer"
    ~args:[ ("k", J.Str "v") ];
  Trace.begin_span tr ~pid:1 ~tid:2 ~ts:11 "inner";
  Trace.instant tr ~pid:1 ~tid:2 ~ts:12 "mark";
  Trace.counter_sample tr ~pid:1 ~ts:12 "occ" [ ("x", 3.0) ];
  Trace.end_span tr ~pid:1 ~tid:2 ~ts:13 "inner";
  Trace.end_span tr ~pid:1 ~tid:2 ~ts:14 "outer";
  Trace.close tr;
  Trace.close tr (* idempotent *);
  let events = parse_chrome buf in
  check_int "event count" 8 (List.length events);
  check_balanced events;
  (* Every event carries name/ph/pid/tid. *)
  List.iter
    (fun ev ->
      List.iter
        (fun k -> check_bool ("has " ^ k) true (J.member k ev <> None))
        [ "name"; "ph"; "pid"; "tid" ])
    events

let test_trace_null_noop () =
  (* The null sink accepts everything silently and ticks stay at 0. *)
  Trace.begin_span Trace.null ~ts:0 "x";
  Trace.end_span Trace.null ~ts:1 "x";
  Trace.instant Trace.null ~ts:2 "y";
  Trace.close Trace.null;
  check_int "tick" 0 (Trace.tick Trace.null);
  check_int "tick again" 0 (Trace.tick Trace.null)

let test_trace_jsonl () =
  let buf = Buffer.create 256 in
  let tr = Trace.to_buffer ~format:Trace.Jsonl buf in
  Trace.instant tr ~ts:1 "a";
  Trace.instant tr ~ts:2 "b";
  Trace.close tr;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check_int "two lines" 2 (List.length lines);
  List.iter
    (fun l ->
      match J.parse l with
      | Ok (J.Obj _) -> ()
      | Ok _ -> Alcotest.fail "jsonl line is not an object"
      | Error msg -> Alcotest.failf "jsonl line invalid: %s" msg)
    lines

(* --- Simulator tracing --- *)

let sim_setup () =
  let g = Ts_workload.Motivating.ddg () in
  let cfg = Ts_spmt.Config.default in
  let params = cfg.Ts_spmt.Config.params in
  let plan = Ts_spmt.Address_plan.create ~seed:"obs" g in
  let tms = Ts_tms.Tms.schedule_sweep ~params g in
  (cfg, plan, tms.Ts_tms.Tms.kernel)

let test_sim_trace_valid () =
  let cfg, plan, kernel = sim_setup () in
  let buf = Buffer.create 4096 in
  let tr = Trace.to_buffer buf in
  let _st = Ts_spmt.Sim.run ~plan ~warmup:64 ~trace:tr cfg kernel ~trip:512 in
  Trace.close tr;
  let events = parse_chrome buf in
  check_balanced events;
  let count name =
    List.length
      (List.filter (fun ev -> J.member "name" ev = Some (J.Str name)) events)
  in
  check_bool "has exec spans" true (count "exec" > 0);
  check_bool "has commit spans" true (count "commit" > 0);
  check_bool "has squash or sync-stall instants" true
    (count "squash" + count "sync-stall" > 0);
  check_bool "has occupancy samples" true (count "occupancy" > 0)

let test_sim_trace_deterministic () =
  (* Tracing must not perturb the simulation: identical stats with the
     null sink and with a live buffer sink. *)
  let cfg, plan, kernel = sim_setup () in
  let st_null = Ts_spmt.Sim.run ~plan ~warmup:64 cfg kernel ~trip:512 in
  let buf = Buffer.create 4096 in
  let tr = Trace.to_buffer buf in
  let st_traced =
    Ts_spmt.Sim.run ~plan ~warmup:64 ~trace:tr cfg kernel ~trip:512
  in
  Trace.close tr;
  check_bool "stats identical" true (st_null = st_traced);
  check_bool "trace non-empty" true (Buffer.length buf > 2)

let test_search_log_attempts () =
  let g = Ts_workload.Motivating.ddg () in
  let params = Ts_isa.Spmt_params.default in
  let buf = Buffer.create 4096 in
  let tr = Trace.to_buffer ~format:Trace.Jsonl buf in
  let r = Ts_tms.Tms.schedule ~trace:tr ~p_max:0.05 ~params g in
  Trace.close tr;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  let events =
    List.map
      (fun l ->
        match J.parse l with
        | Ok ev -> ev
        | Error msg -> Alcotest.failf "search log line invalid: %s" msg)
      lines
  in
  let attempts =
    List.filter (fun ev -> J.member "name" ev = Some (J.Str "tms.attempt")) events
  in
  check_int "one event per attempt" r.Ts_tms.Tms.attempts (List.length attempts);
  check_bool "has result event" true
    (List.exists (fun ev -> J.member "name" ev = Some (J.Str "tms.result")) events)

(* --- Tracer domain-safety --- *)

let test_trace_parallel_writers () =
  (* Four worker domains emitting into one Jsonl tracer: every line must
     still be a complete JSON object (no interleaved writes) and no event
     may be lost. Ticks are atomic, so they must come out unique. *)
  let buf = Buffer.create 8192 in
  let tr = Trace.to_buffer ~format:Trace.Jsonl buf in
  let per_task = 25 and n_tasks = 16 in
  ignore
    (Ts_base.Parallel.map ~jobs:4
       (fun task ->
         for k = 0 to per_task - 1 do
           let ts = Trace.tick tr in
           Trace.instant tr ~tid:task ~ts
             (Printf.sprintf "t%d.%d" task k)
         done)
       (List.init n_tasks Fun.id));
  Trace.close tr;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check_int "no lost or torn lines" (n_tasks * per_task) (List.length lines);
  let ts_seen = Hashtbl.create 512 in
  List.iter
    (fun l ->
      match J.parse l with
      | Ok (J.Obj _ as ev) -> (
          match Option.bind (J.member "ts" ev) J.to_int with
          | Some ts ->
              check_bool "unique ts" false (Hashtbl.mem ts_seen ts);
              Hashtbl.replace ts_seen ts ()
          | None -> Alcotest.fail "event without ts")
      | Ok _ -> Alcotest.fail "jsonl line is not an object"
      | Error msg -> Alcotest.failf "torn jsonl line %S: %s" l msg)
    lines

(* --- Removed legacy env vars --- *)

(* Setting the removed TS_SIM_TRACE / TS_SIM_TRACE_NODES debug vars is a
   hard error pointing at --trace; an empty value counts as unset (there
   is no unsetenv, so "" is how the variable is cleared). *)
let with_env var value f =
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var "") f

let expect_legacy_error var value =
  with_env var value @@ fun () ->
  let cfg, plan, kernel = sim_setup () in
  match Ts_spmt.Sim.run ~plan ~warmup:8 cfg kernel ~trip:32 with
  | _ -> Alcotest.failf "%s=%S: expected Invalid_argument" var value
  | exception Invalid_argument msg ->
      check_bool "error names the var" true (contains msg var);
      check_bool "error names the replacement" true (contains msg "--trace")

let test_legacy_env_rejected () =
  expect_legacy_error "TS_SIM_TRACE" "3-17";
  expect_legacy_error "TS_SIM_TRACE" "garbage";
  expect_legacy_error "TS_SIM_TRACE_NODES" "0,3,8"

let test_legacy_env_empty_ok () =
  with_env "TS_SIM_TRACE" "" @@ fun () ->
  let cfg, plan, kernel = sim_setup () in
  let st = Ts_spmt.Sim.run ~plan ~warmup:8 cfg kernel ~trip:32 in
  check_bool "runs" true (st.Ts_spmt.Sim.cycles > 0)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json member accessors" `Quick test_json_member;
    Alcotest.test_case "counters monotonic" `Quick test_counters_monotonic;
    Alcotest.test_case "metrics table" `Quick test_metrics_table;
    Alcotest.test_case "chrome trace shape" `Quick test_trace_chrome_shape;
    Alcotest.test_case "null tracer no-op" `Quick test_trace_null_noop;
    Alcotest.test_case "jsonl format" `Quick test_trace_jsonl;
    Alcotest.test_case "sim trace valid + balanced" `Quick test_sim_trace_valid;
    Alcotest.test_case "sim trace deterministic" `Quick test_sim_trace_deterministic;
    Alcotest.test_case "search log attempts" `Quick test_search_log_attempts;
    Alcotest.test_case "trace parallel writers" `Quick test_trace_parallel_writers;
    Alcotest.test_case "legacy env rejected" `Quick test_legacy_env_rejected;
    Alcotest.test_case "legacy env empty ok" `Quick test_legacy_env_empty_ok;
  ]
