(* Reference TMS search: the pre-optimisation implementation, kept as a
   golden oracle for the equivalence tests. This is the list-based seed
   algorithm — inter-iteration dependence sets recomputed from scratch on
   every admissibility check, ASAP tables recomputed per attempt — with
   tracing and metrics stripped. It must NOT be "improved": its whole
   value is that it computes the answer the slow, obviously-correct way.
   The optimised [Ts_tms.Tms] search must return byte-identical kernels,
   [f_min] and attempt counts. *)

module K = Ts_modsched.Kernel
module S = Ts_modsched.Sched
module Cost_model = Ts_tms.Cost_model
module Overheads = Ts_tms.Overheads

type result = {
  kernel : K.t;
  f_min : float;
  attempts : int;
  fell_back : bool;
}

(* Incremental view of the partial schedule: rows/stages computed directly
   from raw issue cycles. *)
module Partial = struct
  let row ~ii t = Ts_base.Intmath.modulo t ii
  let stage ~ii t = Ts_base.Intmath.div_floor t ii

  let d_ker ~ii ~time_of (e : Ts_ddg.Ddg.edge) =
    match (time_of e.src, time_of e.dst) with
    | Some ts, Some td -> Some (e.distance + stage ~ii td - stage ~ii ts)
    | _ -> None

  let sync g ~ii ~c_reg_com ~time_of (e : Ts_ddg.Ddg.edge) =
    match (time_of e.src, time_of e.dst) with
    | Some ts, Some td ->
        Some (row ~ii ts - row ~ii td + Ts_ddg.Ddg.latency g e.src + c_reg_com)
    | _ -> None

  let inter_iter_deps g ~ii ~time_of kind =
    Array.to_list g.Ts_ddg.Ddg.edges
    |> List.filter_map (fun (e : Ts_ddg.Ddg.edge) ->
           if e.kind <> kind then None
           else
             match d_ker ~ii ~time_of e with
             | Some d when d >= 1 -> Some e
             | _ -> None)

  let preserved g ~ii ~c_reg_com ~time_of ~reg_deps (e : Ts_ddg.Ddg.edge) =
    match (time_of e.src, time_of e.dst, d_ker ~ii ~time_of e) with
    | Some ts, Some td, Some dk when dk >= 1 ->
        let need =
          float_of_int (row ~ii ts + Ts_ddg.Ddg.latency g e.src - row ~ii td)
          /. float_of_int dk
        in
        List.exists
          (fun (r : Ts_ddg.Ddg.edge) ->
            match (time_of r.src, sync g ~ii ~c_reg_com ~time_of r) with
            | Some tu, Some sy -> row ~ii tu < row ~ii ts && float_of_int sy >= need
            | _ -> false)
          reg_deps
    | _ -> false
end

let admissible s v ~cycle ~c_delay ~p_max ~c_reg_com =
  let g = S.ddg s in
  let ii = S.ii s in
  if not (S.fits s v ~cycle) then false
  else begin
    let time_of u = if u = v then Some cycle else S.time s u in
    let incident (e : Ts_ddg.Ddg.edge) = e.src = v || e.dst = v in
    let new_deps kind =
      List.filter incident (Partial.inter_iter_deps g ~ii ~time_of kind)
    in
    let r_v = new_deps Ts_ddg.Ddg.Reg in
    let c1 =
      List.for_all
        (fun e ->
          match Partial.sync g ~ii ~c_reg_com ~time_of e with
          | Some sy -> sy <= c_delay
          | None -> true)
        r_v
    in
    if not c1 then false
    else begin
      let m_v = new_deps Ts_ddg.Ddg.Mem in
      if m_v = [] then true
      else begin
        let reg_deps = Partial.inter_iter_deps g ~ii ~time_of Ts_ddg.Ddg.Reg in
        let mem_deps = Partial.inter_iter_deps g ~ii ~time_of Ts_ddg.Ddg.Mem in
        let m_all =
          List.filter
            (fun e -> not (Partial.preserved g ~ii ~c_reg_com ~time_of ~reg_deps e))
            mem_deps
        in
        let freq =
          Cost_model.p_m (List.map (fun (e : Ts_ddg.Ddg.edge) -> e.prob) m_all)
        in
        freq <= p_max +. 1e-12
      end
    end
  end

(* Returns [Ok kernel], or [Error v] naming the first node whose
   placement failed (empty window or every candidate slot rejected) —
   the oracle counterpart of [Tms.try_schedule_explained]'s blame. *)
let try_schedule g ~order ~ii ~c_delay ~p_max ~c_reg_com =
  let s = S.create g ~ii in
  let place_one (v, prefer) =
    match S.window ~prefer s v with
    | None -> false
    | Some w ->
        let rec try_cycles = function
          | [] -> false
          | c :: rest ->
              if admissible s v ~cycle:c ~c_delay ~p_max ~c_reg_com then begin
                S.place s v ~cycle:c;
                true
              end
              else try_cycles rest
        in
        try_cycles (S.candidate_cycles w)
  in
  let rec go = function
    | [] -> Ok (K.of_schedule s)
    | ((v, _) as entry) :: rest ->
        if place_one entry then go rest else Error v
  in
  go order

let schedule ?(p_max = Ts_tms.Tms.default_p_max) ?max_ii ~params g =
  let mii = Ts_ddg.Mii.mii g in
  let ii_max =
    match max_ii with
    | Some m -> m
    | None -> min (Ts_ddg.Mii.ii_upper_bound g) (max (Ts_ddg.Mii.ldp g) mii + 8)
  in
  let max_lat =
    Array.fold_left (fun acc (nd : Ts_ddg.Ddg.node) -> max acc nd.latency) 1 g.nodes
  in
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
  let cd_max = ii_max - 1 + max_lat + c_reg_com in
  let order = Ts_sms.Order.compute_with_dirs g ~ii:mii in
  let groups = Cost_model.f_groups params ~mii ~ii_max ~cd_max in
  let attempts = ref 0 in
  (* Bounded order repair (mirrors [Tms.schedule]): on failure, hoist the
     blocking node to the front of the swing order and retry, up to
     [Tms.default_place_retries] times per grid point. *)
  let try_point ~ii ~cd =
    let rec go order k =
      match try_schedule g ~order ~ii ~c_delay:cd ~p_max ~c_reg_com with
      | Ok kernel -> Some kernel
      | Error v when k < Ts_tms.Tms.default_place_retries ->
          let entry = List.find (fun (u, _) -> u = v) order in
          let rest = List.filter (fun (u, _) -> u <> v) order in
          go (entry :: rest) (k + 1)
      | Error _ -> None
    in
    go order 0
  in
  (* F-plateau walk with lowest-II tie-breaking (mirrors [Tms.schedule]):
     keep scanning groups up to [F0 + Tms.default_f_slack] past the first
     feasible objective value, skipping points at or above the incumbent
     II. *)
  let f0 = ref None in
  let best = ref None in
  let rec walk = function
    | [] -> ()
    | (f, points) :: rest ->
        let past_plateau =
          match !f0 with
          | Some f0v -> f > f0v +. Ts_tms.Tms.default_f_slack +. 1e-9
          | None -> false
        in
        if not past_plateau then begin
          List.iter
            (fun (ii, cd) ->
              let worth =
                match !best with
                | None -> true
                | Some (bii, _, _) -> ii < bii
              in
              if worth then begin
                incr attempts;
                match try_point ~ii ~cd with
                | Some kernel ->
                    if !f0 = None then f0 := Some f;
                    best := Some (ii, f, kernel)
                | None -> ()
              end)
            points;
          walk rest
        end
  in
  walk groups;
  match !best with
  | Some (_, f, kernel) ->
      { kernel; f_min = f; attempts = !attempts; fell_back = false }
  | None ->
      let sms = Ts_sms.Sms.schedule g in
      let kernel = sms.Ts_sms.Sms.kernel in
      let f_min =
        Cost_model.f_value params ~ii:kernel.K.ii
          ~c_delay:(max 1 (K.c_delay kernel ~c_reg_com))
      in
      { kernel; f_min; attempts = !attempts; fell_back = true }

let schedule_sweep ?(p_maxes = [ 0.01; 0.05; 0.25 ]) ~params g =
  let n = 1000 in
  let results =
    List.map (fun p_max -> (p_max, schedule ~p_max ~params g)) p_maxes
  in
  let c_reg_com = params.Ts_isa.Spmt_params.c_reg_com in
  let cost (r : result) =
    Cost_model.estimate params ~ii:r.kernel.K.ii
      ~c_delay:(K.c_delay r.kernel ~c_reg_com)
      ~p_m:(Overheads.misspec_prob r.kernel ~c_reg_com)
      ~n
  in
  match results with
  | [] -> invalid_arg "Ref_tms.schedule_sweep: empty p_max list"
  | (_, r0) :: rest ->
      List.fold_left (fun best (_, r) -> if cost r < cost best then r else best) r0 rest
