(* Heterogeneous machine model and thread-to-core placement policies:
   parameter validation at the library boundary, the core-mix grammar,
   the compiled placement maps, the non-round-robin communication model,
   and the simulator under asymmetric (big.LITTLE) rings. *)

module P = Ts_isa.Spmt_params
module Pl = Ts_isa.Placement

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let raises_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let mix s =
  match P.mix_of_string s with
  | Ok m -> m
  | Error e -> Alcotest.failf "mix %S rejected: %s" s e

let hetero_params s = P.apply_mix P.default (mix s)

(* --- ncore validation (library boundary + smart constructors) --- *)

let test_ncore_validation () =
  raises_invalid "with_ncore 0" (fun () -> P.with_ncore P.default 0);
  raises_invalid "with_ncore -3" (fun () -> P.with_ncore P.default (-3));
  raises_invalid "with_ncore 65" (fun () -> P.with_ncore P.default 65);
  check_int "ncore 1 accepted" 1 (P.with_ncore P.default 1).P.ncore;
  check_int "ncore 64 accepted" 64 (P.with_ncore P.default 64).P.ncore;
  raises_invalid "Config.with_ncore 0" (fun () ->
      Ts_spmt.Config.with_ncore Ts_spmt.Config.default 0);
  raises_invalid "Config.with_ncore 65" (fun () ->
      Ts_spmt.Config.with_ncore Ts_spmt.Config.default 65);
  (* A record-hacked params (bypassing the smart constructors) is caught
     by the simulator's boundary validation, not simulated garbage. *)
  let bad = { P.default with P.ncore = 0 } in
  raises_invalid "Sim.run on ncore = 0" (fun () ->
      Ts_spmt.Sim.run
        { Ts_spmt.Config.default with Ts_spmt.Config.params = bad }
        (Ts_sms.Sms.schedule (Ts_workload.Motivating.ddg ())).Ts_sms.Sms.kernel
        ~trip:8);
  let short = { P.default with P.cores = [| P.fast_core |] } in
  raises_invalid "validate on mismatched descriptor count" (fun () ->
      P.validate ~who:"test" short)

let test_mix_grammar () =
  (match mix "4" with
  | 4, [||] -> ()
  | n, c -> Alcotest.failf "\"4\" parsed to (%d, %d descs)" n (Array.length c));
  let n, cores = mix "2fast+2slow" in
  check_int "2fast+2slow count" 4 n;
  check_bool "descriptors" true
    (cores = [| P.fast_core; P.fast_core; P.slow_core; P.slow_core |]);
  let n, cores = mix "fast+slow" in
  check_int "bare kinds count 1 each" 2 n;
  check_bool "fast then slow" true (cores = [| P.fast_core; P.slow_core |]);
  List.iter
    (fun s ->
      match P.mix_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "mix %S accepted" s)
    [ ""; "0"; "65"; "0fast"; "banana"; "2fast+"; "33fast+32slow"; "-2" ];
  (* Rendering roundtrips through the same grammar. *)
  check_string "mix_to_string hetero" "2fast+2slow"
    (P.mix_to_string (hetero_params "2fast+2slow"));
  check_string "mix_to_string homog" "4" (P.mix_to_string P.default);
  (* Spelling the homogeneous machine out explicitly normalises away, so
     it cannot disable the homogeneous fast paths. *)
  check_bool "all-default array normalises" false
    (P.heterogeneous
       (P.with_cores P.default (Array.make 4 P.default_core)))

(* --- placement maps and the communication model --- *)

let test_policies_degenerate_on_homogeneous () =
  List.iter
    (fun pol ->
      let t = Pl.make pol P.default in
      check_int "period = ncore" 4 (Pl.period t);
      check_bool "identity map" true (Pl.seq t = [| 0; 1; 2; 3 |]))
    Pl.all

let test_policy_maps_on_big_little () =
  let p = hetero_params "2fast+2slow" in
  check_bool "rr map" true (Pl.seq (Pl.make Pl.Round_robin p) = [| 0; 1; 2; 3 |]);
  check_bool "locality map" true
    (Pl.seq (Pl.make Pl.Locality p) = [| 0; 1; 2; 3; 0; 1 |]);
  check_bool "sync map" true (Pl.seq (Pl.make Pl.Sync_aware p) = [| 0; 1 |]);
  check_int "locality reaches all cores" 4 (Pl.cores_used (Pl.make Pl.Locality p));
  check_int "sync uses the fast tier only" 2
    (Pl.cores_used (Pl.make Pl.Sync_aware p))

let test_comm_model () =
  let p = hetero_params "2fast+2slow" in
  let rr = Pl.make Pl.Round_robin p in
  (* Round-robin keeps the paper's thread-forwarding model verbatim. *)
  check_int "rr dk=1" 3 (Pl.comm_cycles rr ~dk:1 ~dst:5);
  check_int "rr dk=3" 9 (Pl.comm_cycles rr ~dk:3 ~dst:7);
  let loc = Pl.make Pl.Locality p in
  (* [0 1 2 3 0 1]: thread 1 (fast core 1) hears thread 0 (core 0) over
     one hop; thread 2 (slow core 2) pays the receiver's slowdown. *)
  check_int "1-hop to fast" 3 (Pl.comm_cycles loc ~dk:1 ~dst:1);
  check_int "1-hop to slow" 4 (Pl.comm_cycles loc ~dk:1 ~dst:2);
  (* Same-core forwarding (thread 4 on core 0 hears thread 3 on core 3:
     1 hop; thread 0->4 is dk=4: both on core 0, register forward). *)
  check_int "same-core forward" 1 (Pl.comm_cycles loc ~dk:4 ~dst:4);
  (* The cost model's view: round-robin is the identity, the others fold
     the worst distance-1 cost and the reachable core count in. *)
  check_bool "rr effective = identity" true
    (Pl.effective_params Pl.Round_robin p = p);
  let eff = Pl.effective_params Pl.Locality p in
  check_int "locality effective ncore" 4 eff.P.ncore;
  (* Worst distance-1 cost in the period is the wrap: position 5 (core 1)
     feeding position 0 (core 0) is 3 ring hops = 9 cycles. *)
  check_int "locality effective c_reg_com" 9 eff.P.c_reg_com;
  check_bool "effective params are homogeneous" false (P.heterogeneous eff);
  let effs = Pl.effective_params Pl.Sync_aware p in
  check_int "sync effective ncore" 2 effs.P.ncore

let test_policy_strings () =
  List.iter
    (fun pol ->
      check_bool "roundtrip" true
        (Pl.policy_of_string (Pl.policy_to_string pol) = Some pol))
    Pl.all;
  check_bool "rr alias" true (Pl.policy_of_string "rr" = Some Pl.Round_robin);
  check_bool "locality-aware alias" true
    (Pl.policy_of_string "locality-aware" = Some Pl.Locality);
  check_bool "sync-aware alias" true
    (Pl.policy_of_string "sync-aware" = Some Pl.Sync_aware);
  check_bool "unknown" true (Pl.policy_of_string "bogus" = None)

(* --- simulator: core-count extremes (both engines) --- *)

let stats_equal (a : Ts_spmt.Sim.stats) (b : Ts_spmt.Sim.stats) = a = b

let run_extreme ~ncore g =
  let params = P.with_ncore P.default ncore in
  let cfg = Ts_spmt.Config.with_ncore Ts_spmt.Config.default ncore in
  List.iter
    (fun (engine, k) ->
      let trip = 300 in
      let exact = Ts_spmt.Sim.run ~warmup:64 cfg k ~trip in
      Alcotest.(check bool)
        (Printf.sprintf "%s ncore=%d commits every iteration" engine ncore)
        true
        (exact.Ts_spmt.Sim.committed = trip && exact.Ts_spmt.Sim.cycles > 0);
      let fast = Ts_spmt.Sim.run ~warmup:64 ~fast:true cfg k ~trip in
      Alcotest.(check bool)
        (Printf.sprintf "%s ncore=%d fast = exact" engine ncore)
        true (stats_equal exact fast))
    [
      ("tms", (Ts_tms.Tms.schedule_sweep ~params g).Ts_tms.Tms.kernel);
      ("tms-ims", (Ts_tms.Tms_ims.schedule ~params g).Ts_tms.Tms.kernel);
    ]

let test_single_core () = run_extreme ~ncore:1 (Ts_workload.Motivating.ddg ())
let test_sixty_four_cores () = run_extreme ~ncore:64 (Ts_workload.Motivating.ddg ())

(* --- simulator: heterogeneous rings --- *)

let test_placements_coincide_on_homogeneous () =
  let g = Ts_workload.Motivating.ddg () in
  let params = P.default in
  let k = (Ts_tms.Tms.schedule_sweep ~params g).Ts_tms.Tms.kernel in
  let stats pol =
    Ts_spmt.Sim.run ~warmup:64
      (Ts_spmt.Config.with_placement Ts_spmt.Config.default pol)
      k ~trip:300
  in
  let rr = stats Pl.Round_robin in
  check_bool "locality = rr on homogeneous" true
    (stats_equal rr (stats Pl.Locality));
  check_bool "sync = rr on homogeneous" true
    (stats_equal rr (stats Pl.Sync_aware))

let test_slow_tier_costs_cycles () =
  let g = Ts_workload.Motivating.ddg () in
  let k = (Ts_tms.Tms.schedule_sweep ~params:P.two_core g).Ts_tms.Tms.kernel in
  let cycles s =
    let params = hetero_params s in
    (Ts_spmt.Sim.run ~warmup:64
       { Ts_spmt.Config.default with Ts_spmt.Config.params }
       k ~trip:300)
      .Ts_spmt.Sim.cycles
  in
  check_bool "2slow no faster than 2fast" true (cycles "2slow" >= cycles "2fast")

let equake_loop () =
  match
    List.find_opt
      (fun (s : Ts_workload.Doacross.selected) -> s.bench = "equake")
      Ts_workload.Doacross.all
  with
  | Some { loops = g :: _; _ } -> g
  | _ -> Alcotest.fail "equake loop missing from the DOACROSS selection"

let test_locality_beats_rr_on_equake () =
  (* The acceptance experiment: on 2fast+2slow, locality produces a
     different placement than round-robin and a lower CPI (it also does
     on lucas and fma3d; art trades slightly the other way — the
     ablation table carries the full picture). *)
  let g = equake_loop () in
  let params = hetero_params "2fast+2slow" in
  let trip = 1500 and warmup = Ts_harness.Defaults.warmup in
  let run pol =
    let k =
      (Ts_tms.Tms.schedule_sweep ~placement:pol ~params g).Ts_tms.Tms.kernel
    in
    Ts_spmt.Sim.run ~warmup
      (Ts_spmt.Config.with_placement
         { Ts_spmt.Config.default with Ts_spmt.Config.params }
         pol)
      k ~trip
  in
  let rr = run Pl.Round_robin and loc = run Pl.Locality in
  check_bool "placements differ" true
    (Pl.seq (Pl.make Pl.Round_robin params) <> Pl.seq (Pl.make Pl.Locality params));
  check_bool "locality CPI < round-robin CPI" true
    (loc.Ts_spmt.Sim.cycles < rr.Ts_spmt.Sim.cycles);
  check_bool "locality cuts sync stalls" true
    (loc.Ts_spmt.Sim.sync_stall_cycles < rr.Ts_spmt.Sim.sync_stall_cycles)

let suite =
  [
    Alcotest.test_case "params: ncore validation" `Quick test_ncore_validation;
    Alcotest.test_case "params: core-mix grammar" `Quick test_mix_grammar;
    Alcotest.test_case "placement: degenerate on homogeneous" `Quick
      test_policies_degenerate_on_homogeneous;
    Alcotest.test_case "placement: big.LITTLE maps" `Quick
      test_policy_maps_on_big_little;
    Alcotest.test_case "placement: communication model" `Quick test_comm_model;
    Alcotest.test_case "placement: policy strings" `Quick test_policy_strings;
    Alcotest.test_case "sim: ncore=1 degrades gracefully" `Quick
      test_single_core;
    Alcotest.test_case "sim: ncore=64" `Quick test_sixty_four_cores;
    Alcotest.test_case "sim: placements coincide on homogeneous" `Quick
      test_placements_coincide_on_homogeneous;
    Alcotest.test_case "sim: slow tier costs cycles" `Quick
      test_slow_tier_costs_cycles;
    Alcotest.test_case "sim: locality beats round-robin on equake" `Slow
      test_locality_beats_rr_on_equake;
  ]
