(* Cache model and MDT. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_cache_cold_miss_then_hit () =
  let c = Ts_spmt.Cache.create ~size:1024 ~assoc:2 ~line:32 in
  check_bool "cold miss" false (Ts_spmt.Cache.access c 0x100);
  check_bool "hit" true (Ts_spmt.Cache.access c 0x100);
  check_bool "same line hits" true (Ts_spmt.Cache.access c 0x11f);
  check_bool "next line misses" false (Ts_spmt.Cache.access c 0x120)

let test_cache_lru_eviction () =
  (* 2-way set: 3 conflicting lines evict the least recently used *)
  let c = Ts_spmt.Cache.create ~size:256 ~assoc:2 ~line:32 in
  (* 4 sets; lines 0, 4, 8 map to set 0 *)
  ignore (Ts_spmt.Cache.access c 0);
  ignore (Ts_spmt.Cache.access c (4 * 32));
  ignore (Ts_spmt.Cache.access c (8 * 32));
  check_bool "line 0 evicted" false (Ts_spmt.Cache.probe c 0);
  check_bool "line 4*32 kept" true (Ts_spmt.Cache.probe c (4 * 32))

let test_cache_lru_touch () =
  let c = Ts_spmt.Cache.create ~size:256 ~assoc:2 ~line:32 in
  ignore (Ts_spmt.Cache.access c 0);
  ignore (Ts_spmt.Cache.access c (4 * 32));
  ignore (Ts_spmt.Cache.access c 0);
  (* reuse line 0 *)
  ignore (Ts_spmt.Cache.access c (8 * 32));
  check_bool "line 0 survives (recently used)" true (Ts_spmt.Cache.probe c 0);
  check_bool "line 4*32 evicted" false (Ts_spmt.Cache.probe c (4 * 32))

let test_cache_invalidate_and_fill () =
  let c = Ts_spmt.Cache.create ~size:1024 ~assoc:2 ~line:32 in
  Ts_spmt.Cache.fill c 0x200;
  check_bool "filled" true (Ts_spmt.Cache.probe c 0x200);
  Ts_spmt.Cache.invalidate c 0x200;
  check_bool "invalidated" false (Ts_spmt.Cache.probe c 0x200);
  (* invalidate of absent line is a no-op *)
  Ts_spmt.Cache.invalidate c 0x9999

let test_cache_stats () =
  let c = Ts_spmt.Cache.create ~size:1024 ~assoc:2 ~line:32 in
  ignore (Ts_spmt.Cache.access c 0);
  ignore (Ts_spmt.Cache.access c 0);
  ignore (Ts_spmt.Cache.access c 64);
  check_bool "stats" true (Ts_spmt.Cache.stats c = (1, 2));
  Ts_spmt.Cache.reset_stats c;
  check_bool "reset" true (Ts_spmt.Cache.stats c = (0, 0));
  check_bool "content survives reset" true (Ts_spmt.Cache.probe c 0)

let test_cache_bad_geometry () =
  check_bool "non power of two" true
    (match Ts_spmt.Cache.create ~size:1000 ~assoc:2 ~line:32 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "too small" true
    (match Ts_spmt.Cache.create ~size:32 ~assoc:2 ~line:32 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_cache_hit_after_access =
  QCheck.Test.make ~count:200 ~name:"immediately after access, probe hits"
    QCheck.(small_int)
    (fun addr ->
      let c = Ts_spmt.Cache.create ~size:4096 ~assoc:4 ~line:32 in
      ignore (Ts_spmt.Cache.access c addr);
      Ts_spmt.Cache.probe c addr)

(* --- MDT --- *)

let test_mdt_conflict_detection () =
  let m = Ts_spmt.Mdt.create ~horizon:4 in
  Ts_spmt.Mdt.record_store m ~thread:5 ~addr:0x40 ~finish:100;
  (* a load in thread 6 issued before the store completed: conflict at 100 *)
  check_bool "conflict" true
    (Ts_spmt.Mdt.conflicting_store m ~thread:6 ~addr:0x40 ~issue:90 = Some 100);
  (* issued after completion: no conflict *)
  check_bool "ordered" true
    (Ts_spmt.Mdt.conflicting_store m ~thread:6 ~addr:0x40 ~issue:101 = None);
  (* different address: no conflict *)
  check_bool "other addr" true
    (Ts_spmt.Mdt.conflicting_store m ~thread:6 ~addr:0x44 ~issue:90 = None)

let test_mdt_horizon () =
  let m = Ts_spmt.Mdt.create ~horizon:4 in
  Ts_spmt.Mdt.record_store m ~thread:1 ~addr:0x40 ~finish:100;
  (* thread 6 is more than horizon away: thread 1 committed long ago *)
  check_bool "out of window" true
    (Ts_spmt.Mdt.conflicting_store m ~thread:6 ~addr:0x40 ~issue:0 = None)

let test_mdt_less_speculative_only () =
  let m = Ts_spmt.Mdt.create ~horizon:4 in
  Ts_spmt.Mdt.record_store m ~thread:7 ~addr:0x40 ~finish:100;
  (* a store by a MORE speculative thread never squashes an older one *)
  check_bool "younger store ignored" true
    (Ts_spmt.Mdt.conflicting_store m ~thread:6 ~addr:0x40 ~issue:0 = None)

let test_mdt_latest_finish () =
  let m = Ts_spmt.Mdt.create ~horizon:8 in
  Ts_spmt.Mdt.record_store m ~thread:1 ~addr:0x40 ~finish:50;
  Ts_spmt.Mdt.record_store m ~thread:2 ~addr:0x40 ~finish:80;
  check_bool "latest completion wins" true
    (Ts_spmt.Mdt.conflicting_store m ~thread:4 ~addr:0x40 ~issue:10 = Some 80)

let test_mdt_retire () =
  let m = Ts_spmt.Mdt.create ~horizon:8 in
  Ts_spmt.Mdt.record_store m ~thread:1 ~addr:0x40 ~finish:50;
  Ts_spmt.Mdt.retire m ~upto:2;
  check_bool "retired" true
    (Ts_spmt.Mdt.conflicting_store m ~thread:3 ~addr:0x40 ~issue:0 = None)

let test_mdt_peak () =
  let m = Ts_spmt.Mdt.create ~horizon:8 in
  Ts_spmt.Mdt.record_store m ~thread:1 ~addr:1 ~finish:1;
  Ts_spmt.Mdt.record_store m ~thread:1 ~addr:2 ~finish:1;
  check_int "peak" 2 (Ts_spmt.Mdt.peak_entries m)

let test_mdt_live_count_drops_horizon_expired () =
  (* Regression: [record_store] prunes entries that fell out of the
     horizon, and the live count must drop with them. It used to grow by
     one per store regardless of pruning, so long runs reported an MDT
     occupancy that drifted arbitrarily far above the real table size. *)
  let m = Ts_spmt.Mdt.create ~horizon:2 in
  Ts_spmt.Mdt.record_store m ~thread:1 ~addr:0x40 ~finish:10;
  Ts_spmt.Mdt.record_store m ~thread:2 ~addr:0x40 ~finish:20;
  check_int "both within horizon" 2 (Ts_spmt.Mdt.live_entries m);
  (* thread 5 is 4 past thread 1 and 3 past thread 2: both expire *)
  Ts_spmt.Mdt.record_store m ~thread:5 ~addr:0x40 ~finish:50;
  check_int "expired entries leave the live count" 1
    (Ts_spmt.Mdt.live_entries m);
  check_int "peak saw the crowded moment" 2 (Ts_spmt.Mdt.peak_entries m)

(* --- differential properties against the Ts_check reference models --- *)

(* Deterministic op streams from Ts_base.Rng: each QCheck case is a seed. *)

let prop_mdt_matches_reference =
  QCheck.Test.make ~count:60 ~name:"MDT matches the naive reference model"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Ts_base.Rng.of_string (Printf.sprintf "test-mdt/%d" seed) in
      let horizon = 1 + Ts_base.Rng.int rng 5 in
      let real = Ts_spmt.Mdt.create ~horizon in
      let refm = Ts_check.Ref_models.Mdt.create ~horizon in
      let thread = ref horizon in
      let ok = ref true in
      for step = 1 to 120 do
        let addr = 8 * Ts_base.Rng.int rng 5 in
        (match Ts_base.Rng.int rng 8 with
        | 0 | 1 | 2 ->
            let finish = (10 * step) + Ts_base.Rng.int rng 30 in
            Ts_spmt.Mdt.record_store real ~thread:!thread ~addr ~finish;
            Ts_check.Ref_models.Mdt.record_store refm ~thread:!thread ~addr
              ~finish
        | 3 | 4 ->
            let issue = (10 * step) - Ts_base.Rng.int rng 100 in
            if
              Ts_spmt.Mdt.conflicting_store real ~thread:!thread ~addr ~issue
              <> Ts_check.Ref_models.Mdt.conflicting_store refm ~thread:!thread
                   ~addr ~issue
            then ok := false
        | 5 ->
            let upto = !thread - horizon + Ts_base.Rng.int_in rng (-2) 2 in
            Ts_spmt.Mdt.retire real ~upto;
            Ts_check.Ref_models.Mdt.retire refm ~upto
        | _ -> thread := !thread + 1 + Ts_base.Rng.int rng 2);
        if
          Ts_spmt.Mdt.live_entries real
          <> Ts_check.Ref_models.Mdt.live_entries refm
          || Ts_spmt.Mdt.peak_entries real
             <> Ts_check.Ref_models.Mdt.peak_entries refm
        then ok := false
      done;
      !ok)

let prop_cache_matches_reference =
  QCheck.Test.make ~count:60
    ~name:"cache matches the reference model (incl. fill/invalidate)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Ts_base.Rng.of_string (Printf.sprintf "test-cache/%d" seed) in
      let size = 256 and assoc = 2 and line = 32 in
      let real = Ts_spmt.Cache.create ~size ~assoc ~line in
      let refm = Ts_check.Ref_models.Cache.create ~size ~assoc ~line in
      let ok = ref true in
      for _ = 1 to 200 do
        let addr = line * Ts_base.Rng.int rng (3 * size / line) in
        (match Ts_base.Rng.int rng 8 with
        | 0 | 1 | 2 | 3 ->
            if
              Ts_spmt.Cache.access real addr
              <> Ts_check.Ref_models.Cache.access refm addr
            then ok := false
        | 4 | 5 ->
            if
              Ts_spmt.Cache.probe real addr
              <> Ts_check.Ref_models.Cache.probe refm addr
            then ok := false
        | 6 ->
            Ts_spmt.Cache.fill real addr;
            Ts_check.Ref_models.Cache.fill refm addr
        | _ ->
            Ts_spmt.Cache.invalidate real addr;
            Ts_check.Ref_models.Cache.invalidate refm addr);
        if Ts_spmt.Cache.stats real <> Ts_check.Ref_models.Cache.stats refm then
          ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "cache: cold miss then hit" `Quick test_cache_cold_miss_then_hit;
    Alcotest.test_case "cache: LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache: LRU touch order" `Quick test_cache_lru_touch;
    Alcotest.test_case "cache: invalidate and fill" `Quick test_cache_invalidate_and_fill;
    Alcotest.test_case "cache: stats and reset" `Quick test_cache_stats;
    Alcotest.test_case "cache: bad geometry" `Quick test_cache_bad_geometry;
    QCheck_alcotest.to_alcotest prop_cache_hit_after_access;
    Alcotest.test_case "mdt: conflict detection" `Quick test_mdt_conflict_detection;
    Alcotest.test_case "mdt: horizon" `Quick test_mdt_horizon;
    Alcotest.test_case "mdt: ordering direction" `Quick test_mdt_less_speculative_only;
    Alcotest.test_case "mdt: latest finish" `Quick test_mdt_latest_finish;
    Alcotest.test_case "mdt: retire" `Quick test_mdt_retire;
    Alcotest.test_case "mdt: peak entries" `Quick test_mdt_peak;
    Alcotest.test_case "mdt: live count drops expired entries" `Quick
      test_mdt_live_count_drops_horizon_expired;
    QCheck_alcotest.to_alcotest prop_mdt_matches_reference;
    QCheck_alcotest.to_alcotest prop_cache_matches_reference;
  ]
