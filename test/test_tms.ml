(* The TMS algorithm (Figure 3). *)

module K = Ts_modsched.Kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let params = Ts_isa.Spmt_params.default
let two_core = Ts_isa.Spmt_params.two_core

let test_motivating_beats_sms () =
  let g = Fixtures.motivating () in
  let sms = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  let tms = Ts_tms.Tms.schedule_sweep ~params:two_core g in
  check_int "SMS C_delay (paper: 11)" 11 (K.c_delay sms ~c_reg_com:3);
  check_int "TMS C_delay (paper: small)" 4 tms.Ts_tms.Tms.achieved_c_delay;
  check_int "same II as SMS" 8 tms.Ts_tms.Tms.kernel.K.ii;
  check_bool "did not fall back" false tms.Ts_tms.Tms.fell_back

let test_c1_enforced () =
  (* every attempted threshold bounds the achieved delay *)
  let g = Fixtures.motivating () in
  let order = Ts_sms.Order.compute_with_dirs g ~ii:8 in
  List.iter
    (fun cd ->
      match Ts_tms.Tms.try_schedule g ~order ~ii:8 ~c_delay:cd ~p_max:1.0 ~c_reg_com:3 with
      | Some k ->
          check_bool
            (Printf.sprintf "achieved %d <= threshold %d" (K.c_delay k ~c_reg_com:3) cd)
            true
            (K.c_delay k ~c_reg_com:3 <= cd)
      | None -> ())
    [ 4; 5; 7; 9; 11; 15 ]

let test_c2_enforced () =
  (* with p_max 1.0 the motivating example schedules at cd=4; with a
     p_max below any single dependence probability it cannot keep all
     three mem deps speculated at that threshold *)
  let g = Fixtures.motivating () in
  let order = Ts_sms.Order.compute_with_dirs g ~ii:8 in
  let loose = Ts_tms.Tms.try_schedule g ~order ~ii:8 ~c_delay:4 ~p_max:1.0 ~c_reg_com:3 in
  check_bool "loose P_max succeeds" true (loose <> None);
  (match loose with
  | Some k ->
      check_bool "misspec positive when speculating" true
        (Ts_tms.Overheads.misspec_prob k ~c_reg_com:3 > 0.0)
  | None -> ());
  let strict = Ts_tms.Tms.try_schedule g ~order ~ii:8 ~c_delay:4 ~p_max:0.0 ~c_reg_com:3 in
  (match strict with
  | Some k ->
      Alcotest.(check (float 1e-9)) "P_max=0 forces zero misspec" 0.0
        (Ts_tms.Overheads.misspec_prob k ~c_reg_com:3)
  | None -> ())

let test_p_max_zero_end_to_end () =
  let g = Fixtures.motivating () in
  let r = Ts_tms.Tms.schedule ~p_max:0.0 ~params:two_core g in
  Alcotest.(check (float 1e-9)) "no residual misspeculation" 0.0 r.Ts_tms.Tms.misspec

let test_f_min_is_achieved_objective () =
  let g = Fixtures.motivating () in
  let r = Ts_tms.Tms.schedule ~p_max:0.25 ~params:two_core g in
  (* the search returns the first (II, C_delay) group that schedules, so
     the reported F_min equals F at the returned threshold *)
  Alcotest.(check (float 1e-9)) "F consistency" r.Ts_tms.Tms.f_min
    (Ts_tms.Cost_model.f_value two_core ~ii:r.Ts_tms.Tms.kernel.K.ii
       ~c_delay:r.Ts_tms.Tms.c_delay_threshold)

let test_doall_loop_trivial () =
  (* a pure chain has no carried deps, but at II = MII its tail wraps into
     the next stage and becomes an inter-thread dependence; TMS may trade
     a cycle or two of II to keep that sync small, never more *)
  let g = Fixtures.chain 6 in
  let r = Ts_tms.Tms.schedule ~params g in
  let mii = Ts_ddg.Mii.mii g in
  check_bool "II within MII + 2" true
    (r.Ts_tms.Tms.kernel.K.ii >= mii && r.Ts_tms.Tms.kernel.K.ii <= mii + 2);
  check_bool "achieved delay bounded by threshold" true
    (r.Ts_tms.Tms.achieved_c_delay <= r.Ts_tms.Tms.c_delay_threshold);
  check_bool "objective matches the cost model" true
    (r.Ts_tms.Tms.f_min
     <= Ts_tms.Cost_model.f_value params ~ii:mii
          ~c_delay:(max 4 r.Ts_tms.Tms.achieved_c_delay)
        +. 1.0)

let test_sweep_picks_lowest_cost () =
  let g = Fixtures.motivating () in
  let rs =
    List.map (fun p_max -> Ts_tms.Tms.schedule ~p_max ~params:two_core g)
      [ 0.01; 0.05; 0.25 ]
  in
  let best = Ts_tms.Tms.schedule_sweep ~params:two_core g in
  let cost (r : Ts_tms.Tms.result) =
    Ts_tms.Cost_model.estimate two_core ~ii:r.Ts_tms.Tms.kernel.K.ii
      ~c_delay:r.Ts_tms.Tms.achieved_c_delay ~p_m:r.Ts_tms.Tms.misspec ~n:1000
  in
  List.iter (fun r -> check_bool "sweep minimal" true (cost best <= cost r)) rs

let test_fallback_on_impossible () =
  (* a probability-1 memory recurrence with P_max 0 that no register sync
     can preserve within the tiny grid: TMS must fall back to SMS *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let st = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Store in
  let ld = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load in
  Ts_ddg.Ddg.Builder.dep b ld st;
  Ts_ddg.Ddg.Builder.mem_dep b ~dist:1 ~prob:1.0 st ld;
  let g = Ts_ddg.Ddg.Builder.build b in
  let r = Ts_tms.Tms.schedule ~p_max:0.0 ~params g in
  check_bool "fell back or preserved" true
    (r.Ts_tms.Tms.fell_back || r.Ts_tms.Tms.misspec = 0.0);
  K.validate r.Ts_tms.Tms.kernel

let prop_tms_valid_and_bounded =
  QCheck.Test.make ~count:25 ~name:"TMS kernels valid; II >= MII; C1 respected"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      match Ts_tms.Tms.schedule ~params g with
      | exception Ts_sms.Sms.No_schedule _ -> QCheck.assume_fail ()
      | r ->
          K.validate r.Ts_tms.Tms.kernel;
          r.Ts_tms.Tms.kernel.K.ii >= Ts_ddg.Mii.mii g
          && (r.Ts_tms.Tms.fell_back
             || r.Ts_tms.Tms.achieved_c_delay <= r.Ts_tms.Tms.c_delay_threshold))

let test_ims_eviction_keeps_claims () =
  (* Regression (found by `tsms check`, seed 35 shrunk): IMS eviction can
     unschedule the register dependence that preserved a speculative
     memory dependence, so a kernel whose every placement passed
     admission still ends up violating C2. TMS-over-IMS must re-derive
     C1/C2 on the finished kernel and reject the grid point instead of
     returning the kernel with a false claim. *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let n0 = Ts_ddg.Ddg.Builder.add b ~latency:3 Ts_isa.Opcode.Load in
  let n1 = Ts_ddg.Ddg.Builder.add b ~latency:3 Ts_isa.Opcode.Fadd in
  let n2 = Ts_ddg.Ddg.Builder.add b ~latency:3 Ts_isa.Opcode.Fadd in
  let n8 = Ts_ddg.Ddg.Builder.add b ~latency:3 Ts_isa.Opcode.Load in
  let n17 = Ts_ddg.Ddg.Builder.add b ~latency:1 Ts_isa.Opcode.Store in
  Ts_ddg.Ddg.Builder.dep b n0 n1;
  Ts_ddg.Ddg.Builder.dep b n1 n2;
  Ts_ddg.Ddg.Builder.dep b n2 n8;
  Ts_ddg.Ddg.Builder.dep b n8 n17;
  Ts_ddg.Ddg.Builder.mem_dep b ~dist:1 ~prob:0.145595 n17 n0;
  let g = Ts_ddg.Ddg.Builder.build b in
  let params8 = { params with Ts_isa.Spmt_params.ncore = 8; c_reg_com = 8 } in
  let r = Ts_tms.Tms_ims.schedule ~params:params8 g in
  K.validate r.Ts_tms.Tms_ims.kernel;
  check_bool
    (Printf.sprintf "claimed P_max honoured (misspec %.4f, P_max %.4f)"
       r.Ts_tms.Tms_ims.misspec r.Ts_tms.Tms_ims.p_max)
    true
    (r.Ts_tms.Tms_ims.fell_back
    || r.Ts_tms.Tms_ims.misspec <= r.Ts_tms.Tms_ims.p_max +. 1e-12);
  check_bool "claimed C_delay honoured" true
    (r.Ts_tms.Tms_ims.fell_back
    || r.Ts_tms.Tms_ims.achieved_c_delay <= r.Ts_tms.Tms_ims.c_delay_threshold)

let test_doacross_c_delay_regression () =
  (* on the Table 3 loops TMS's achieved C_delay never exceeds SMS's
     (lucas ties: its recurrence pins the delay for both schedulers) *)
  List.iter
    (fun (sel : Ts_workload.Doacross.selected) ->
      List.iter
        (fun g ->
          let sms = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
          let tms = Ts_tms.Tms.schedule_sweep ~params g in
          check_bool
            (Printf.sprintf "%s: TMS %d <= SMS %d" g.Ts_ddg.Ddg.name
               tms.Ts_tms.Tms.achieved_c_delay (K.c_delay sms ~c_reg_com:3))
            true
            (tms.Ts_tms.Tms.achieved_c_delay <= K.c_delay sms ~c_reg_com:3))
        sel.loops)
    Ts_workload.Doacross.all

let suite =
  [
    Alcotest.test_case "motivating: beats SMS (paper Fig 2)" `Quick
      test_motivating_beats_sms;
    Alcotest.test_case "C1: threshold enforced" `Quick test_c1_enforced;
    Alcotest.test_case "C2: P_max enforced" `Quick test_c2_enforced;
    Alcotest.test_case "P_max = 0 end to end" `Quick test_p_max_zero_end_to_end;
    Alcotest.test_case "F_min consistency" `Quick test_f_min_is_achieved_objective;
    Alcotest.test_case "DOALL chain: trivial" `Quick test_doall_loop_trivial;
    Alcotest.test_case "sweep: lowest estimated cost" `Quick test_sweep_picks_lowest_cost;
    Alcotest.test_case "fallback on impossible constraints" `Quick
      test_fallback_on_impossible;
    QCheck_alcotest.to_alcotest prop_tms_valid_and_bounded;
    Alcotest.test_case "IMS eviction cannot break C1/C2 claims" `Quick
      test_ims_eviction_keeps_claims;
    Alcotest.test_case "DOACROSS loops: C_delay regression" `Slow
      test_doacross_c_delay_regression;
  ]
