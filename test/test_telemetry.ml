(* The deep-profiling layer: bucketed histogram quantiles and merging,
   the Prometheus exposition, the Prof span profiler, the Progress
   heartbeat, and the bench regression gate. *)

module J = Ts_obs.Json
module Metrics = Ts_obs.Metrics
module Prof = Ts_obs.Prof
module Progress = Ts_obs.Progress
module Regress = Ts_harness.Regress

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Histogram quantiles --- *)

(* Log2 buckets with 8 sub-buckets per octave bound the relative
   quantile error by 2^(1/8) - 1 < 9.1%; allow 10% in the checks. *)
let within_rel ~expect actual =
  Float.abs (actual -. expect) <= 0.10 *. expect

let test_hist_quantiles () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "q" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  check_bool "p50" true (within_rel ~expect:500.0 (Metrics.quantile h 0.5));
  check_bool "p90" true (within_rel ~expect:900.0 (Metrics.quantile h 0.9));
  check_bool "p99" true (within_rel ~expect:990.0 (Metrics.quantile h 0.99));
  (* The extremes are tracked exactly, not through buckets. *)
  check_bool "p0 is min" true (Metrics.quantile h 0.0 = 1.0);
  check_bool "p100 is max" true (Metrics.quantile h 1.0 = 1000.0);
  check_bool "mean" true
    (Float.abs (Metrics.histogram_mean h -. 500.5) < 1e-9);
  check_bool "bad q rejected" true
    (match Metrics.quantile h 1.5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_hist_skewed () =
  (* A heavy-tailed latency shape: the p99 must land in the tail, not be
     dragged down by the mass at the bottom. *)
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "skew" in
  for _ = 1 to 990 do Metrics.observe h 1.0 done;
  for _ = 1 to 10 do Metrics.observe h 1000.0 done;
  check_bool "p50 at the mass" true (within_rel ~expect:1.0 (Metrics.quantile h 0.5));
  check_bool "p90 at the mass" true (within_rel ~expect:1.0 (Metrics.quantile h 0.9));
  check_bool "p999 in the tail" true
    (within_rel ~expect:1000.0 (Metrics.quantile h 0.999))

let test_hist_oddballs () =
  (* Zero, negative and NaN observations land in the underflow bucket
     and never corrupt the positive-value statistics. *)
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "odd" in
  List.iter (Metrics.observe h) [ 0.0; -3.0; Float.nan; 4.0 ];
  check_int "all counted" 4 (Metrics.histogram_count h);
  check_bool "quantiles clamp to underflow min" true
    (Metrics.quantile h 0.0 <= 0.0);
  check_bool "max unaffected" true (Metrics.quantile h 1.0 = 4.0)

(* --- Merge determinism (jobs=1 vs jobs=4) --- *)

(* The same multiset of observations, recorded either into one histogram
   or sharded across four and merged, must produce identical buckets,
   count, extremes and quantiles: bucketing a value is a pure function
   of the value, so the split cannot show through. *)
let test_hist_merge_deterministic () =
  let values =
    List.init 500 (fun i -> Float.of_int (1 + (i * 7 mod 311)) *. 0.37)
  in
  let reg = Metrics.create () in
  let whole = Metrics.histogram reg "whole" in
  List.iter (Metrics.observe whole) values;
  let shards =
    List.init 4 (fun s -> (s, Metrics.histogram reg (Printf.sprintf "s%d" s)))
  in
  List.iteri
    (fun i v -> Metrics.observe (List.assoc (i mod 4) shards) v)
    values;
  let merged = Metrics.histogram reg "merged" in
  (* Merge in a scrambled order: merging must be order-insensitive. *)
  List.iter
    (fun s -> Metrics.merge_histogram ~src:(List.assoc s shards) ~into:merged)
    [ 2; 0; 3; 1 ];
  check_int "count" (Metrics.histogram_count whole)
    (Metrics.histogram_count merged);
  check_bool "sum" true
    (Float.abs (Metrics.histogram_sum whole -. Metrics.histogram_sum merged)
     < 1e-6);
  check_bool "min/max" true
    (Metrics.quantile whole 0.0 = Metrics.quantile merged 0.0
    && Metrics.quantile whole 1.0 = Metrics.quantile merged 1.0);
  check_bool "buckets identical" true
    (Metrics.bucket_counts whole = Metrics.bucket_counts merged);
  List.iter
    (fun q ->
      check_bool
        (Printf.sprintf "q%.2f identical" q)
        true
        (Metrics.quantile whole q = Metrics.quantile merged q))
    [ 0.25; 0.5; 0.9; 0.99 ]

let test_registry_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~by:2 (Metrics.counter a "c");
  Metrics.incr ~by:5 (Metrics.counter b "c");
  Metrics.set_gauge (Metrics.gauge a "g") 1.0;
  Metrics.set_gauge (Metrics.gauge b "g") 3.0;
  Metrics.observe (Metrics.histogram a "h") 1.0;
  Metrics.observe (Metrics.histogram b "h") 2.0;
  Metrics.merge ~src:b ~into:a;
  check_int "counters add" 7 (Metrics.counter_value (Metrics.counter a "c"));
  check_bool "gauges max" true
    (Metrics.gauge_value (Metrics.gauge a "g") = 3.0);
  check_int "histograms union" 2
    (Metrics.histogram_count (Metrics.histogram a "h"))

(* --- JSON and Prometheus exposition --- *)

let test_hist_json_shape () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "io" in
  List.iter (Metrics.observe h) [ 2.0; 2.0; 8.0 ];
  let json = Metrics.to_json reg in
  let hist =
    match Option.bind (J.member "metrics" json) (J.member "io") with
    | Some j -> j
    | None -> Alcotest.fail "no metrics.io in json"
  in
  check_bool "count" true (J.member "count" hist = Some (J.Int 3));
  check_bool "sum" true (J.member "sum" hist = Some (J.Float 12.0));
  check_bool "min" true (J.member "min" hist = Some (J.Float 2.0));
  check_bool "max" true (J.member "max" hist = Some (J.Float 8.0));
  (match J.member "buckets" hist with
  | Some (J.List buckets) ->
      (* Sparse: only octaves that saw values, each [upper_bound, count]. *)
      check_int "two occupied buckets" 2 (List.length buckets);
      let total =
        List.fold_left
          (fun acc b ->
            match b with
            | J.List [ J.Float _; J.Int c ] -> acc + c
            | _ -> Alcotest.fail "bucket is not [le, count]")
          0 buckets
      in
      check_int "bucket counts sum to n" 3 total
  | _ -> Alcotest.fail "no buckets list");
  (* Round-trips through the parser. *)
  check_bool "parses back" true
    (match J.parse (J.to_string json) with Ok _ -> true | Error _ -> false)

let test_prom_exposition () =
  let reg = Metrics.create () in
  Metrics.incr ~by:4 (Metrics.counter reg "tms.attempts");
  Metrics.set_gauge (Metrics.gauge reg "pool-size") 4.0;
  let h = Metrics.histogram reg "sim.run_ms" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 2.0; 100.0 ];
  let text = Metrics.render_prom reg in
  check_bool "counter type line" true
    (contains text "# TYPE tsms_tms_attempts counter");
  check_bool "counter sample" true (contains text "tsms_tms_attempts 4");
  check_bool "gauge sanitized" true (contains text "tsms_pool_size 4");
  check_bool "histogram type line" true
    (contains text "# TYPE tsms_sim_run_ms histogram");
  check_bool "inf bucket" true
    (contains text "tsms_sim_run_ms_bucket{le=\"+Inf\"} 4");
  check_bool "sum line" true (contains text "tsms_sim_run_ms_sum 103.5");
  check_bool "count line" true (contains text "tsms_sim_run_ms_count 4");
  (* Bucket samples must be cumulative: counts never decrease in file
     order, and the last one before +Inf is <= 4. *)
  let bucket_counts =
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           if
             contains line "tsms_sim_run_ms_bucket"
             && not (contains line "+Inf")
           then
             match String.rindex_opt line ' ' with
             | Some i ->
                 int_of_string_opt
                   (String.sub line (i + 1) (String.length line - i - 1))
             | None -> None
           else None)
  in
  check_bool "has finite buckets" true (bucket_counts <> []);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "cumulative" true (monotone bucket_counts);
  check_bool "bounded by count" true
    (List.for_all (fun c -> c <= 4) bucket_counts)

(* --- Prof --- *)

let spin_ms ms =
  let t0 = Unix.gettimeofday () in
  let x = ref 0 in
  while (Unix.gettimeofday () -. t0) *. 1000.0 < ms do
    incr x
  done;
  !x

let test_prof_nesting () =
  Prof.set_enabled true;
  Fun.protect ~finally:(fun () -> Prof.set_enabled false) @@ fun () ->
  let r =
    Prof.span "outer" @@ fun () ->
    ignore (Prof.span "inner" (fun () -> spin_ms 20.0));
    ignore (spin_ms 10.0);
    17
  in
  check_int "span returns the value" 17 r;
  let report = Prof.report () in
  let find name =
    match List.find_opt (fun (row : Prof.row) -> row.name = name) report.rows
    with
    | Some row -> row
    | None -> Alcotest.failf "no %s row" name
  in
  let outer = find "outer" and inner = find "inner" in
  check_int "outer count" 1 outer.count;
  check_int "inner count" 1 inner.count;
  check_bool "inner nested in outer" true (inner.total_s <= outer.total_s);
  (* Outer's self excludes inner: ~10ms of its ~30ms total. *)
  check_bool "self excludes child" true
    (outer.self_s < outer.total_s -. 0.010);
  check_bool "self covers own work" true (outer.self_s >= 0.005);
  check_bool "coverage positive" true (Prof.coverage report > 0.0);
  let table = Prof.render_table report in
  check_bool "table has both spans" true
    (contains table "outer" && contains table "inner");
  match Prof.to_json report with
  | J.Obj kvs ->
      check_bool "versioned" true (List.assoc_opt "version" kvs = Some (J.Int 1));
      check_bool "has spans" true
        (match List.assoc_opt "spans" kvs with
        | Some (J.List (_ :: _)) -> true
        | _ -> false)
  | _ -> Alcotest.fail "profile json not an object"

let test_prof_exception_safe () =
  Prof.set_enabled true;
  Fun.protect ~finally:(fun () -> Prof.set_enabled false) @@ fun () ->
  (match Prof.span "boom" (fun () -> failwith "x") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  (* The frame was popped and counted despite the raise; a sibling span
     must attribute cleanly afterwards. *)
  ignore (Prof.span "after" (fun () -> spin_ms 1.0));
  let report = Prof.report () in
  let names = List.map (fun (r : Prof.row) -> r.name) report.rows in
  check_bool "raised span counted" true (List.mem "boom" names);
  check_bool "sibling counted" true (List.mem "after" names)

let test_prof_disabled_noop () =
  Prof.set_enabled false;
  Prof.reset ();
  let r = Prof.span "ghost" (fun () -> 3) in
  check_int "value passes through" 3 r;
  check_bool "nothing recorded" true ((Prof.report ()).rows = [])

let test_prof_parallel () =
  (* Spans on worker domains aggregate without crashing, and self-time
     sums can exceed the spawning domain's wall clock. *)
  Prof.set_enabled true;
  Fun.protect ~finally:(fun () -> Prof.set_enabled false) @@ fun () ->
  ignore
    (Ts_base.Parallel.map ~jobs:4
       (fun i -> Prof.span "worker" (fun () -> spin_ms (2.0 +. float_of_int i)))
       (List.init 8 Fun.id));
  let report = Prof.report () in
  match List.find_opt (fun (r : Prof.row) -> r.name = "worker") report.rows with
  | Some row -> check_int "all worker spans counted" 8 row.count
  | None -> Alcotest.fail "no worker row"

(* --- Progress --- *)

let test_progress_heartbeat () =
  let lines = ref [] in
  Progress.set_sink (Some (fun l -> lines := l :: !lines));
  Progress.set_min_interval 0.0;
  Progress.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Progress.set_enabled false;
      Progress.set_min_interval 1.0;
      Progress.set_sink None)
  @@ fun () ->
  let p = Progress.start ~what:"sweep" ~total:3 in
  Progress.step p;
  Progress.step p;
  Progress.step p;
  Progress.finish p;
  let lines = List.rev !lines in
  check_bool "heartbeats emitted" true (List.length lines >= 2);
  List.iter
    (fun l -> check_bool ("labelled: " ^ l) true (contains l "[sweep]"))
    lines;
  let final = List.nth lines (List.length lines - 1) in
  check_bool "final says 3/3" true (contains final "3/3");
  check_bool "reports retries" true (contains final "retries");
  check_bool "no eta once done" true (contains final "eta -")

(* total <= 0 means open-ended (the serve daemon's request stream): no
   fraction, no ETA, and — the original bug — no division by zero or
   negative/NaN ETA. An overshot known total must clamp, not go
   negative. *)
let test_progress_open_ended_total () =
  let lines = ref [] in
  Progress.set_sink (Some (fun l -> lines := l :: !lines));
  Progress.set_min_interval 0.0;
  Progress.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Progress.set_enabled false;
      Progress.set_min_interval 1.0;
      Progress.set_sink None)
  @@ fun () ->
  let p = Progress.start ~what:"serve" ~total:0 in
  Progress.step p;
  Progress.step p;
  Progress.step p;
  Progress.finish p;
  let all = List.rev !lines in
  check_bool "emits heartbeats" true (all <> []);
  let final = List.nth all (List.length all - 1) in
  check_bool "counts without a fraction" true (contains final "3 done");
  List.iter
    (fun l ->
      check_bool ("no fraction: " ^ l) false (contains l "/");
      check_bool ("no eta: " ^ l) true (contains l "eta -");
      check_bool ("no nan: " ^ l) false (contains l "nan");
      check_bool ("no inf: " ^ l) false (contains l "inf"))
    all;
  (* Negative totals behave like 0 (unknown), not like a fraction. *)
  let q = Progress.start ~what:"serve" ~total:(-1) in
  lines := [];
  Progress.step q;
  Progress.finish q;
  List.iter
    (fun l -> check_bool ("negative total open-ended: " ^ l) true (contains l "eta -"))
    !lines

let test_progress_overshoot_clamps () =
  let lines = ref [] in
  Progress.set_sink (Some (fun l -> lines := l :: !lines));
  Progress.set_min_interval 0.0;
  Progress.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Progress.set_enabled false;
      Progress.set_min_interval 1.0;
      Progress.set_sink None)
  @@ fun () ->
  let p = Progress.start ~what:"sweep" ~total:2 in
  Progress.step p;
  Progress.step p;
  Progress.step p;
  Progress.step p;
  Progress.finish p;
  let final = List.hd !lines in
  check_bool "overshoot clamps to total" true (contains final "2/2 done");
  check_bool "no negative eta" false (contains final "eta -0");
  check_bool "eta suppressed at completion" true (contains final "eta -")

let test_progress_disabled_silent () =
  let lines = ref [] in
  Progress.set_sink (Some (fun l -> lines := l :: !lines));
  Progress.set_enabled false;
  Fun.protect ~finally:(fun () -> Progress.set_sink None) @@ fun () ->
  let p = Progress.start ~what:"quiet" ~total:2 in
  Progress.step p;
  Progress.step p;
  Progress.finish p;
  check_bool "no output when disabled" true (!lines = []);
  check_bool "negative interval rejected" true
    (match Progress.set_min_interval (-1.0) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- Regress --- *)

let bench_doc ~search_wall ~exact_wall =
  J.Obj
    [
      ("bench", J.Str "search");
      ("jobs", J.Int 4);
      ( "workloads",
        J.Obj
          [
            ( "equake",
              J.Obj
                [
                  ("wall_s", J.Float search_wall);
                  ("attempts", J.Int 5000);
                  ("attempts_per_sec", J.Float (5000.0 /. search_wall));
                ] );
            ("applu", J.Obj [ ("exact_wall_s", J.Float exact_wall) ]);
          ] );
      ("total_wall_s", J.Float (search_wall +. exact_wall));
    ]

let test_regress_pass_and_fail () =
  let baseline = bench_doc ~search_wall:1.0 ~exact_wall:2.0 in
  (* 20% slower passes at 1.5x; being faster is never a failure. *)
  let ok_fresh = bench_doc ~search_wall:1.2 ~exact_wall:1.0 in
  let o =
    Regress.compare_json ~what:"search" ~tolerance:1.5 ~baseline
      ~fresh:ok_fresh
  in
  check_bool "passes" true (Regress.ok o);
  check_int "three time leaves" 3 (List.length o.Regress.verdicts);
  (* attempts / attempts_per_sec / jobs are not compared. *)
  check_bool "no derived leaves" true
    (List.for_all
       (fun (v : Regress.verdict) -> not (contains v.Regress.path "attempts"))
       o.Regress.verdicts);
  (* A 4x slowdown on one leg fails, and worst names that leg. *)
  let bad_fresh = bench_doc ~search_wall:4.0 ~exact_wall:2.0 in
  let o =
    Regress.compare_json ~what:"search" ~tolerance:1.5 ~baseline
      ~fresh:bad_fresh
  in
  check_bool "fails" false (Regress.ok o);
  (match Regress.worst o with
  | Some w ->
      check_bool "worst is the slow leg" true
        (contains w.Regress.path "equake");
      check_bool "worst ratio" true (Float.abs (w.Regress.ratio -. 4.0) < 1e-9)
  | None -> Alcotest.fail "no worst verdict");
  let table = Regress.render o in
  check_bool "renders REGRESSION" true (contains table "REGRESSION");
  check_bool "renders FAIL" true (contains table "FAIL")

let test_regress_missing_leaf () =
  let baseline = bench_doc ~search_wall:1.0 ~exact_wall:2.0 in
  let fresh =
    J.Obj [ ("workloads", J.Obj [ ("applu", J.Obj [ ("exact_wall_s", J.Float 2.0) ]) ]) ]
  in
  let o = Regress.compare_json ~what:"search" ~tolerance:1.5 ~baseline ~fresh in
  check_bool "missing leaf fails the gate" false (Regress.ok o);
  check_bool "missing names the path" true
    (List.exists (fun p -> contains p "equake") o.Regress.missing);
  check_bool "present leaf still compared" true
    (List.length o.Regress.verdicts >= 1);
  check_bool "tolerance < 1 rejected" true
    (match
       Regress.compare_json ~what:"x" ~tolerance:0.5 ~baseline ~fresh
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "hist quantiles uniform" `Quick test_hist_quantiles;
    Alcotest.test_case "hist quantiles skewed" `Quick test_hist_skewed;
    Alcotest.test_case "hist oddball values" `Quick test_hist_oddballs;
    Alcotest.test_case "hist merge deterministic" `Quick
      test_hist_merge_deterministic;
    Alcotest.test_case "registry merge" `Quick test_registry_merge;
    Alcotest.test_case "hist json shape" `Quick test_hist_json_shape;
    Alcotest.test_case "prometheus exposition" `Quick test_prom_exposition;
    Alcotest.test_case "prof nesting + self time" `Quick test_prof_nesting;
    Alcotest.test_case "prof exception safe" `Quick test_prof_exception_safe;
    Alcotest.test_case "prof disabled noop" `Quick test_prof_disabled_noop;
    Alcotest.test_case "prof parallel workers" `Quick test_prof_parallel;
    Alcotest.test_case "progress heartbeat" `Quick test_progress_heartbeat;
    Alcotest.test_case "progress disabled silent" `Quick
      test_progress_disabled_silent;
    Alcotest.test_case "progress open-ended total" `Quick
      test_progress_open_ended_total;
    Alcotest.test_case "progress overshoot clamps" `Quick
      test_progress_overshoot_clamps;
    Alcotest.test_case "regress pass/fail" `Quick test_regress_pass_and_fail;
    Alcotest.test_case "regress missing leaf" `Quick test_regress_missing_leaf;
  ]
