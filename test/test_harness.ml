(* End-to-end experiment harness on reduced inputs: the paper's qualitative
   claims must hold on every run. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let params = Ts_isa.Spmt_params.default
let cfg = Ts_spmt.Config.default

let table2_rows = lazy (Ts_harness.Table2.compute ~limit:3 ~params ())
let fig4_rows = lazy (Ts_harness.Fig4.compute ~limit:3 ~cfg ())
let doacross = lazy (Ts_harness.Doacross_runs.compute ~cfg)

let test_table2_shape () =
  let rows = Lazy.force table2_rows in
  check_int "13 rows" 13 (List.length rows);
  List.iter
    (fun (r : Ts_harness.Table2.row) ->
      (* TMS's order-repair retries can out-place SMS's single greedy
         pass on individual loops, so per-benchmark TMS II may dip below
         SMS II on small subsets — but never below MII. *)
      check_bool (r.bench ^ ": TMS II >= MII") true (r.tms_ii >= r.avg_mii -. 1e-9);
      check_bool (r.bench ^ ": TMS C_delay <= SMS C_delay") true
        (r.tms_c_delay <= r.sms_c_delay);
      check_bool (r.bench ^ ": SMS II >= MII") true (r.sms_ii >= r.avg_mii -. 1e-9))
    rows;
  (* Suite-wide, TMS still trades a larger II than SMS for its C_delay. *)
  let mean f = Ts_base.Stats.mean (List.map f rows) in
  let tms_ii = mean (fun (r : Ts_harness.Table2.row) -> r.tms_ii) in
  let sms_ii = mean (fun (r : Ts_harness.Table2.row) -> r.sms_ii) in
  check_bool "suite mean: TMS II >= SMS II" true (tms_ii >= sms_ii -. 1e-9)

let test_table2_ii_band () =
  (* §7.9(a): the paper reports TMS IIs ~25-40% above MII. Before the
     F-plateau/lowest-II fix we sat at 40-60%; assert the per-benchmark
     II inflation stays in the paper's ballpark on average and never
     returns to the old regime. *)
  let rows = Lazy.force table2_rows in
  let ratios =
    List.map
      (fun (r : Ts_harness.Table2.row) -> r.tms_ii /. r.avg_mii)
      rows
  in
  let mean = Ts_base.Stats.mean ratios in
  check_bool
    (Printf.sprintf "mean TMS II / MII = %.2f in [1.0, 1.45]" mean)
    true
    (mean >= 1.0 && mean <= 1.45);
  List.iter2
    (fun (r : Ts_harness.Table2.row) ratio ->
      check_bool
        (Printf.sprintf "%s: TMS II %.0f%% above MII (< 75%%)" r.bench
           ((ratio -. 1.) *. 100.))
        true (ratio < 1.75))
    rows ratios

let test_table2_tlp_gap () =
  (* the gap between II and C_delay (the paper's TLP indicator) must be
     wider under TMS for most benchmarks *)
  let rows = Lazy.force table2_rows in
  let wider =
    List.length
      (List.filter
         (fun (r : Ts_harness.Table2.row) ->
           r.tms_ii -. r.tms_c_delay > r.sms_ii -. r.sms_c_delay)
         rows)
  in
  check_bool (Printf.sprintf "%d/13 wider" wider) true (wider >= 10)

let test_fig4_positive () =
  let rows = Lazy.force fig4_rows in
  check_int "13 rows" 13 (List.length rows);
  List.iter
    (fun (r : Ts_harness.Fig4.row) ->
      check_bool (r.bench ^ " loop speedup not negative") true
        (r.loop_speedup >= -2.0);
      check_bool (r.bench ^ " program <= loop speedup") true
        (r.program_speedup <= r.loop_speedup +. 1e-9))
    rows;
  let lavg, pavg = Ts_harness.Fig4.averages rows in
  check_bool "meaningful average loop speedup" true (lavg > 10.0);
  check_bool "program speedup diluted by coverage" true (pavg < lavg)

let test_amdahl () =
  Alcotest.(check (float 1e-6)) "full coverage passes through" 50.0
    (Ts_harness.Fig4.program_speedup_of ~coverage:1.0 ~loop_speedup_pct:50.0);
  Alcotest.(check (float 1e-6)) "zero coverage, no speedup" 0.0
    (Ts_harness.Fig4.program_speedup_of ~coverage:0.0 ~loop_speedup_pct:50.0);
  let half = Ts_harness.Fig4.program_speedup_of ~coverage:0.5 ~loop_speedup_pct:50.0 in
  check_bool "half coverage in between" true (half > 0.0 && half < 50.0)

let test_table3_shape () =
  let rows = Ts_harness.Table3.compute (Lazy.force doacross) in
  check_int "four rows" 4 (List.length rows);
  List.iter
    (fun (r : Ts_harness.Table3.row) ->
      check_bool (r.bench ^ ": LDP above MII") true (r.avg_ldp > r.avg_mii);
      check_bool (r.bench ^ ": II >= MII") true (r.tms_ii >= r.avg_mii))
    rows;
  let lucas = List.find (fun (r : Ts_harness.Table3.row) -> r.bench = "lucas") rows in
  check_bool "lucas: C_delay of the order of II (paper: 62 vs 64)" true
    (lucas.tms_c_delay >= 0.8 *. lucas.tms_ii)

let test_fig5_shape () =
  let rows = Ts_harness.Fig5.compute (Lazy.force doacross) in
  check_int "four rows" 4 (List.length rows);
  List.iter
    (fun (r : Ts_harness.Fig5.row) ->
      check_bool (r.bench ^ " positive speedup over single-threaded") true
        (r.loop_speedup > 0.0))
    rows;
  (* equake has the largest coverage, hence the largest program speedup *)
  let best =
    List.fold_left
      (fun acc (r : Ts_harness.Fig5.row) ->
        if r.program_speedup > acc.Ts_harness.Fig5.program_speedup then r else acc)
      (List.hd rows) rows
  in
  Alcotest.(check string) "equake leads program speedup (paper: 24%)" "equake"
    best.bench

let test_fig6_shape () =
  let rows = Ts_harness.Fig6.compute (Lazy.force doacross) in
  List.iter
    (fun (r : Ts_harness.Fig6.row) ->
      check_bool (r.bench ^ ": TMS stalls never above SMS") true
        (r.stall_norm <= 1.0 +. 1e-9);
      check_bool (r.bench ^ ": comm overhead never above SMS") true
        (r.comm_norm <= 1.0 +. 1e-9))
    rows;
  (* strong reduction for the resource-bound loops, none for lucas *)
  let by name = List.find (fun (r : Ts_harness.Fig6.row) -> r.bench = name) rows in
  check_bool "art reduced > 50%" true ((by "art").stall_norm < 0.5);
  check_bool "equake reduced > 50%" true ((by "equake").stall_norm < 0.5);
  check_bool "fma3d reduced > 50%" true ((by "fma3d").stall_norm < 0.5);
  check_bool "lucas least impressive (paper)" true
    ((by "lucas").stall_norm >= (by "art").stall_norm);
  (* Fig. 6b: TMS trades extra SEND/RECV pairs for fewer stalls. The
     §7.9(a) lowest-II tie-break restores the paper's direction on the
     resource-bound art (pre-fix, every benchmark showed a decrease). *)
  check_bool "art: TMS issues more SEND/RECV pairs" true
    ((by "art").pairs_increase > 0.0)

let test_ablation_shape () =
  let rows = Ts_harness.Ablation.compute ~cfg (Lazy.force doacross) in
  List.iter
    (fun (r : Ts_harness.Ablation.row) ->
      check_bool (r.bench ^ ": no-spec never faster") true
        (r.nospec_gain <= r.spec_gain +. 1e-9);
      (* §7.9(b): workload probabilities are calibrated so simulated
         misspeculation stays in the paper's reported range (< 0.1%). *)
      check_bool (r.bench ^ ": misspec below 0.1%") true (r.misspec_rate < 0.001))
    rows;
  let by name = List.find (fun (r : Ts_harness.Ablation.row) -> r.bench = name) rows in
  check_bool "equake loses from disabling speculation (paper: 19%)" true
    ((by "equake").gain_reduction > 5.0);
  check_bool "fma3d loses from disabling speculation (paper: 21.4%)" true
    ((by "fma3d").gain_reduction > 5.0)

let test_experiments_renderers () =
  (* every renderer produces non-empty output with its headline *)
  check_bool "table1" true
    (String.length (Ts_harness.Experiments.table1 ()) > 100);
  check_bool "fig2" true (String.length (Ts_harness.Experiments.fig2 ()) > 200);
  let t2 = Ts_harness.Table2.render (Lazy.force table2_rows) in
  check_bool "table2 text" true (String.length t2 > 200)

let test_experiments_unknown_name () =
  check_bool "unknown experiment rejected" true
    (match Ts_harness.Experiments.run ~names:[ "fig9" ] (fun _ -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "table2: SMS/TMS shape" `Slow test_table2_shape;
    Alcotest.test_case "table2: II within paper band of MII" `Slow
      test_table2_ii_band;
    Alcotest.test_case "table2: TLP gap widens" `Slow test_table2_tlp_gap;
    Alcotest.test_case "fig4: speedups" `Slow test_fig4_positive;
    Alcotest.test_case "amdahl helper" `Quick test_amdahl;
    Alcotest.test_case "table3: shape" `Slow test_table3_shape;
    Alcotest.test_case "fig5: single-threaded comparison" `Slow test_fig5_shape;
    Alcotest.test_case "fig6: stalls and communication" `Slow test_fig6_shape;
    Alcotest.test_case "ablation: speculation matters" `Slow test_ablation_shape;
    Alcotest.test_case "experiments: renderers" `Slow test_experiments_renderers;
    Alcotest.test_case "experiments: unknown name" `Quick test_experiments_unknown_name;
  ]
