(* Kernel extraction and its static metrics (Definitions 1-2, MaxLive,
   copies, SEND/RECV planning). *)

module K = Ts_modsched.Kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* chain of 3 ialu at ii=2: times 0,1,2 -> stages 0,0,1 *)
let chain_kernel () = K.of_times (Fixtures.chain 3) ~ii:2 [| 0; 1; 2 |]

let test_normalisation_rows_stages () =
  let k = chain_kernel () in
  Alcotest.(check (array int)) "rows" [| 0; 1; 0 |] k.K.row;
  Alcotest.(check (array int)) "stages" [| 0; 0; 1 |] k.K.stage;
  check_int "n_stages" 2 k.K.n_stages

let test_normalisation_multiple_of_ii () =
  (* raw times shifted by +5: normalisation subtracts a multiple of II, so
     rows are unchanged mod II *)
  let k = K.of_times (Fixtures.chain 3) ~ii:2 [| 5; 6; 7 |] in
  Alcotest.(check (array int)) "rows preserved" [| 1; 0; 1 |] k.K.row;
  check_bool "min time within [0, ii)" true
    (Array.fold_left min max_int k.K.time < 2)

let test_constraint_violation_rejected () =
  check_bool "violated dependence rejected" true
    (match K.of_times (Fixtures.chain 3) ~ii:2 [| 0; 0; 2 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_resource_violation_rejected () =
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  for _ = 1 to 3 do
    ignore (Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load)
  done;
  let g = Ts_ddg.Ddg.Builder.build b in
  check_bool "3 loads on 2 ports rejected" true
    (match K.of_times g ~ii:2 [| 0; 0; 0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_d_ker_basic () =
  let k = chain_kernel () in
  let e01 = k.K.g.edges.(0) and e12 = k.K.g.edges.(1) in
  check_int "same-stage d0 edge" 0 (K.d_ker k e01);
  check_int "stage-crossing d0 edge" 1 (K.d_ker k e12)

let test_d_ker_turned_intra () =
  (* the paper's n8 -> n5: a distance-1 dependence whose producer sits one
     stage later becomes intra-thread (d_ker = 0) *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let p = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  let c = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  Ts_ddg.Ddg.Builder.dep b ~dist:1 p c;
  let g = Ts_ddg.Ddg.Builder.build b in
  let k = K.of_times g ~ii:3 [| 4; 2 |] in
  check_int "d_ker 0" 0 (K.d_ker k g.edges.(0))

let test_inter_iter_partition () =
  let k = chain_kernel () in
  check_int "one inter-thread reg dep" 1 (List.length (K.inter_iter_reg_deps k));
  check_int "no mem deps" 0 (List.length (K.inter_iter_mem_deps k))

let test_sync_definition2 () =
  (* sync(x, y) = row x - row y + lat x + c_reg_com *)
  let k = chain_kernel () in
  let e12 = k.K.g.edges.(1) in
  (* row(n1)=1, row(n2)=0, lat 1, c 3 -> 5 *)
  check_int "sync" 5 (K.sync k ~c_reg_com:3 e12)

let test_sync_motivating_paper_value () =
  let g = Fixtures.motivating () in
  let sms = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  check_int "SMS C_delay is the paper's 11" 11 (K.c_delay sms ~c_reg_com:3)

let test_c_delay_no_deps () =
  (* single-stage chain entirely within one iteration: no inter deps *)
  let k = K.of_times (Fixtures.chain 3) ~ii:4 [| 0; 1; 2 |] in
  check_int "c_delay zero" 0 (K.c_delay k ~c_reg_com:3)

let test_max_live_chain () =
  let k = chain_kernel () in
  (* lifetimes: n0:[0,1) n1:[1,2) and the tail n2 holds its (unconsumed)
     result for one cycle, [2,3) — rows 0 and 1 each see one of
     {n0, n2} plus nothing else, so two values coexist at row 0 *)
  check_int "max_live" 2 (K.max_live k)

let test_max_live_overlap () =
  (* producer consumed 2*ii later: the value spans two kernel instances;
     the consumer's own (unconsumed) result occupies a third register *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let p = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  let c = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  Ts_ddg.Ddg.Builder.dep b p c;
  let g = Ts_ddg.Ddg.Builder.build b in
  let k = K.of_times g ~ii:2 [| 0; 4 |] in
  check_int "three live copies" 3 (K.max_live k)

let test_max_live_counts_dead_producers () =
  (* Regression: a value-producing node with no register consumer still
     occupies a register for at least one cycle. Two loads issuing in the
     same row, each feeding only a store through memory, used to report
     max_live = 0. Stores and branches produce no value and stay out. *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let s = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Store in
  let l1 = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load in
  let l2 = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load in
  Ts_ddg.Ddg.Builder.mem_dep b ~dist:1 ~prob:0.5 s l1;
  Ts_ddg.Ddg.Builder.mem_dep b ~dist:1 ~prob:0.5 s l2;
  let g = Ts_ddg.Ddg.Builder.build b in
  let k = K.of_times g ~ii:4 [| 0; 1; 1 |] in
  check_int "both loaded values occupy registers" 2 (K.max_live k);
  check_int "store holds no register" 2
    (List.length (K.lifetimes k))

let test_max_live_motivating () =
  (* pin the figure the register-pressure analyses consume *)
  let g = Fixtures.motivating () in
  let sms = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  check_int "motivating SMS max_live" 5 (K.max_live sms)

let test_copies_needed () =
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let p = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  let c = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  Ts_ddg.Ddg.Builder.dep b p c;
  let g = Ts_ddg.Ddg.Builder.build b in
  let k = K.of_times g ~ii:2 [| 0; 4 |] in
  (* lifetime 4 cycles = 2 II windows -> 1 copy *)
  check_int "one copy" 1 (K.copies_needed k);
  let k2 = K.of_times g ~ii:2 [| 0; 1 |] in
  check_int "short lifetime, no copy" 0 (K.copies_needed k2)

let test_producers_and_pairs () =
  let k = chain_kernel () in
  (match K.producers k with
  | [ (v, hops) ] ->
      check_int "producer is n1" 1 v;
      check_int "one hop" 1 hops
  | _ -> Alcotest.fail "expected exactly one producer");
  check_int "pairs per iter" 1 (K.send_recv_pairs_per_iter k)

let test_producers_shared () =
  (* one producer feeding two cross-thread consumers: one pair only *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let p = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  let c1 = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  let c2 = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  Ts_ddg.Ddg.Builder.dep b ~dist:1 p c1;
  Ts_ddg.Ddg.Builder.dep b ~dist:1 p c2;
  let g = Ts_ddg.Ddg.Builder.build b in
  let k = K.of_times g ~ii:3 [| 0; 1; 2 |] in
  check_int "shared producer, one pair" 1 (K.send_recv_pairs_per_iter k)

let test_multi_hop_producer () =
  (* distance-2 consumer: the value relays over 2 hops *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let p = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  let c = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  Ts_ddg.Ddg.Builder.dep b ~dist:2 p c;
  let g = Ts_ddg.Ddg.Builder.build b in
  let k = K.of_times g ~ii:3 [| 0; 1 |] in
  check_int "two hops" 2 (K.send_recv_pairs_per_iter k)

let test_span () =
  let k = chain_kernel () in
  check_int "span = last issue + lat" 3 (K.span k)

let test_pp_runs () =
  let k = chain_kernel () in
  check_bool "pp output non-empty" true
    (String.length (Format.asprintf "%a" K.pp k) > 0)

let prop_sms_kernels_valid =
  QCheck.Test.make ~count:40 ~name:"SMS kernels validate; d_ker >= 0; rows in range"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      match Ts_sms.Sms.schedule g with
      | exception Ts_sms.Sms.No_schedule _ -> QCheck.assume_fail ()
      | r ->
          let k = r.Ts_sms.Sms.kernel in
          K.validate k;
          Array.for_all (fun (e : Ts_ddg.Ddg.edge) -> K.d_ker k e >= 0) g.edges
          && Array.for_all (fun r -> r >= 0 && r < k.K.ii) k.K.row
          && Array.for_all (fun t -> t >= 0) k.K.time)

let prop_max_live_positive =
  QCheck.Test.make ~count:30 ~name:"MaxLive >= 1 when a value crosses the kernel"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      match Ts_sms.Sms.schedule g with
      | exception Ts_sms.Sms.No_schedule _ -> QCheck.assume_fail ()
      | r ->
          let k = r.Ts_sms.Sms.kernel in
          K.max_live k >= if Ts_ddg.Ddg.reg_edges g = [] then 0 else 1)

let suite =
  [
    Alcotest.test_case "normalise: rows and stages" `Quick test_normalisation_rows_stages;
    Alcotest.test_case "normalise: multiple of II" `Quick test_normalisation_multiple_of_ii;
    Alcotest.test_case "reject: dependence violation" `Quick test_constraint_violation_rejected;
    Alcotest.test_case "reject: resource violation" `Quick test_resource_violation_rejected;
    Alcotest.test_case "d_ker: basic (Def 1)" `Quick test_d_ker_basic;
    Alcotest.test_case "d_ker: carried dep turned intra" `Quick test_d_ker_turned_intra;
    Alcotest.test_case "inter-iteration dep partition" `Quick test_inter_iter_partition;
    Alcotest.test_case "sync: Definition 2" `Quick test_sync_definition2;
    Alcotest.test_case "sync: paper's C_delay=11 for SMS" `Quick test_sync_motivating_paper_value;
    Alcotest.test_case "c_delay: no inter deps" `Quick test_c_delay_no_deps;
    Alcotest.test_case "max_live: chain" `Quick test_max_live_chain;
    Alcotest.test_case "max_live: overlapping lifetime" `Quick test_max_live_overlap;
    Alcotest.test_case "max_live: dead producers counted" `Quick test_max_live_counts_dead_producers;
    Alcotest.test_case "max_live: motivating loop pinned" `Quick test_max_live_motivating;
    Alcotest.test_case "copies_needed" `Quick test_copies_needed;
    Alcotest.test_case "producers and SEND/RECV pairs" `Quick test_producers_and_pairs;
    Alcotest.test_case "producers: shared consumer" `Quick test_producers_shared;
    Alcotest.test_case "producers: multi-hop" `Quick test_multi_hop_producer;
    Alcotest.test_case "span" `Quick test_span;
    Alcotest.test_case "pp renders" `Quick test_pp_runs;
    QCheck_alcotest.to_alcotest prop_sms_kernels_valid;
    QCheck_alcotest.to_alcotest prop_max_live_positive;
  ]
